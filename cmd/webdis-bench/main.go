// Webdis-bench regenerates the WEBDIS paper's figures and the derived
// experiments as text reports (see DESIGN.md's experiment index and
// EXPERIMENTS.md for the recorded outcomes).
//
// Usage:
//
//	webdis-bench -list
//	webdis-bench -exp campus
//	webdis-bench -exp all
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"webdis/internal/experiments"
)

func main() {
	// A deployment is many communicating processes folded into one; on a
	// single-CPU box give the runtime a second scheduling slot so an idle
	// M can sit in blocking netpoll and field socket readiness promptly
	// while a busy Query Processor saturates the other. Without it every
	// TCP delivery waits for sysmon's ~10ms poll beat, which drowns the
	// latency experiments.
	if runtime.GOMAXPROCS(0) < 2 {
		runtime.GOMAXPROCS(2)
	}
	list := flag.Bool("list", false, "list available experiments")
	exp := flag.String("exp", "all", "experiment to run, or 'all'")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-12s %-24s %s\n", e.Name, e.Paper, e.Brief)
		}
		return
	}
	run := func(e experiments.Experiment) {
		fmt.Printf("════ %s (%s) ════\n", e.Name, e.Paper)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "webdis-bench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	e, ok := experiments.Lookup(*exp)
	if !ok {
		fmt.Fprintf(os.Stderr, "webdis-bench: unknown experiment %q (try -list)\n", *exp)
		os.Exit(2)
	}
	run(e)
}
