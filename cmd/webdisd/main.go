// Webdisd is the WEBDIS query-server daemon: one per participating web
// site, exactly like the paper's per-site Java daemon. It serves the
// documents of its site (from a deterministic generated web, so every
// daemon regenerates the same corpus) and processes web-query clones
// arriving on its TCP endpoint.
//
// A deployment is described by a peers file with one line per site:
//
//	<site-host> <query-addr> [<doc-addr>]
//
// e.g.
//
//	csa.iisc.ernet.in               127.0.0.1:7101 127.0.0.1:7201
//	dsl.serc.iisc.ernet.in          127.0.0.1:7102 127.0.0.1:7202
//
// Start one daemon per line:
//
//	webdisd -web campus -peers peers.txt -site dsl.serc.iisc.ernet.in
//
// and query the deployment with the webdis client.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"webdis/internal/netsim"
	"webdis/internal/nodeproc"
	"webdis/internal/server"
	"webdis/internal/webgraph"
	"webdis/internal/webserver"
)

func main() {
	spec := flag.String("web", "campus", "web specification shared by all daemons")
	seed := flag.Int64("seed", 1, "generator seed shared by all daemons")
	pages := flag.Int("pages", 0, "scale the generator to at least this many pages (must match the webgen -pages used to build -store)")
	peersPath := flag.String("peers", "", "peers file: '<site> <query-addr> [doc-addr]' per line (required)")
	site := flag.String("site", "", "site this daemon serves (required; must appear in the peers file)")
	dedup := flag.String("dedup", "subsume", "log table mode: off, exact, subsume, strong")
	planner := flag.Bool("planner", true, "apply pushed-down plan fragments and decide ship-query vs ship-data per edge (false = naive shipping)")
	wirev := flag.String("wire", "v2", "wire format: v2 negotiates the binary codec (v1 peers still interoperate), v1 pins every session to framed gob")
	storeDir := flag.String("store", "", "serve local databases from the persistent site store under this directory (opened if present, built once otherwise; e.g. a webgen -out directory)")
	poolPages := flag.Int("poolpages", 0, "buffer-pool page cap for -store (0 = default)")
	dbcache := flag.Int("dbcache", 0, "retain constructed node databases in an LRU of this many entries (0 = build per evaluation, the paper's default)")
	mutate := flag.Duration("mutate", 0, "apply one step of the seeded web mutation schedule this often (0 = frozen web); give every daemon the same -mutate and -mutseed so their copies of the corpus stay in sync")
	mutseed := flag.Int64("mutseed", 20, "mutation schedule seed shared by all daemons")
	verbose := flag.Bool("v", false, "trace query processing to stderr")
	flag.Parse()

	if *peersPath == "" || *site == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *pages > 0 {
		scaled, err := webgraph.ScaleSpec(*spec, *pages)
		if err != nil {
			fatal(err)
		}
		*spec = scaled
	}
	web, err := webgraph.FromSpec(*spec, *seed)
	if err != nil {
		fatal(err)
	}
	peers, err := readPeers(*peersPath)
	if err != nil {
		fatal(err)
	}
	me, ok := peers[*site]
	if !ok {
		fatal(fmt.Errorf("site %q not in peers file", *site))
	}
	if len(web.URLsAt(*site)) == 0 {
		fatal(fmt.Errorf("web %q has no pages at site %q", *spec, *site))
	}

	tr := netsim.NewTCP()
	for host, p := range peers {
		tr.Register(server.Endpoint(host), p.query)
		if p.docs != "" {
			tr.Register(webserver.Endpoint(host), p.docs)
		}
	}

	host := webserver.NewHost(*site, web)
	if me.docs != "" {
		if err := host.Start(tr); err != nil {
			fatal(err)
		}
		defer host.Stop()
	}

	opts := server.Options{DedupSet: true}
	if *storeDir != "" {
		opts.Store = server.StoreOptions{Dir: *storeDir, PoolPages: *poolPages}
	}
	if *dbcache > 0 {
		opts.CacheDBs = true
		opts.DBCacheEntries = *dbcache
	}
	if *planner {
		opts.Planner = server.PlannerOptions{Enabled: true}
		for _, p := range peers {
			if p.docs == "" {
				// A ship-data edge downloads documents from their home
				// site's doc endpoint; a peer without one would make
				// such an edge dead-end. Pin every edge to ship-query —
				// pushdown and statistics still run.
				opts.Planner.NoShipData = true
				break
			}
		}
	}
	switch *wirev {
	case "v2":
		// The default: sessions negotiate v2 and fall back per peer.
	case "v1":
		opts.WireV1 = true
	default:
		fatal(fmt.Errorf("unknown wire format %q (want v1 or v2)", *wirev))
	}
	switch *dedup {
	case "off":
		opts.Dedup = nodeproc.DedupOff
		opts.MaxHops = 64
	case "exact":
		opts.Dedup = nodeproc.DedupExact
	case "subsume":
		opts.Dedup = nodeproc.DedupSubsume
	case "strong":
		opts.Dedup = nodeproc.DedupStrong
	default:
		fatal(fmt.Errorf("unknown dedup mode %q", *dedup))
	}
	if *verbose {
		opts.Trace = func(e server.Event) {
			fmt.Fprintf(os.Stderr, "[%s] %-40s %-12s %s %s\n", e.Site, e.Node, e.State, e.Action, e.Detail)
		}
	}

	met := &server.Metrics{}
	s := server.New(*site, host, tr, met, opts)
	if err := s.Start(); err != nil {
		fatal(err)
	}
	defer s.Stop()
	fmt.Printf("webdisd: serving %s (%d pages) on %s\n", *site, len(web.URLsAt(*site)), me.query)

	if *mutate > 0 {
		// Every daemon replays the same deterministic schedule against
		// its own copy of the generated web; this daemon invalidates
		// (and notifies watches) only for mutations landing on its site.
		mut := webgraph.NewMutator(web, webgraph.MutationPlan{Seed: *mutseed})
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(*mutate)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				m, ok := mut.Step()
				if !ok {
					return
				}
				edited, rewired := m.Touched()
				mine := func(urls []string) []string {
					var out []string
					for _, u := range urls {
						if webgraph.Host(u) == *site {
							out = append(out, u)
						}
					}
					return out
				}
				if ed, rw := mine(edited), mine(rewired); len(ed)+len(rw) > 0 {
					s.InvalidateDocs(ed, rw)
					fmt.Printf("webdisd: mutation %v\n", m)
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	m := met.Snapshot()
	fmt.Printf("webdisd: shutting down; evaluations=%d forwards=%d duplicates=%d dead-ends=%d\n",
		m.Evaluations, m.ClonesForwarded+m.LocalClones, m.DupDropped, m.DeadEnds)
}

type peer struct {
	query, docs string
}

func readPeers(path string) (map[string]peer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]peer)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("bad peers line %q", line)
		}
		p := peer{query: fields[1]}
		if len(fields) > 2 {
			p.docs = fields[2]
		}
		out[fields[0]] = p
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "webdisd:", err)
	os.Exit(1)
}
