// Webdis is the WEBDIS user-site client: it submits a DISQL query to a
// deployment of webdisd daemons over TCP, collects results on its own
// listening socket (the paper's Result Collector), and prints the result
// tables after the Current Hosts Table protocol detects completion.
//
// Usage:
//
//	webdis -peers peers.txt -listen 127.0.0.1:7300 -query 'select d.url from ...'
//	webdis -peers peers.txt -listen 127.0.0.1:7300 -file query.disql
//	webdis -peers peers.txt -listen 127.0.0.1:7300 -file query.disql -trace text
//	webdis -explain -query 'select count(*) from ...'
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"os/user"
	"strings"
	"syscall"
	"time"

	"webdis/internal/client"
	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/plan"
	"webdis/internal/server"
	"webdis/internal/trace"
	"webdis/internal/webserver"
)

func main() {
	peersPath := flag.String("peers", "", "peers file shared with the daemons (required)")
	listen := flag.String("listen", "127.0.0.1:7300", "host:port for the result collector")
	query := flag.String("query", "", "DISQL query text")
	file := flag.String("file", "", "file containing the DISQL query")
	timeout := flag.Duration("timeout", time.Minute, "give up after this long (0 = wait forever)")
	hybrid := flag.Bool("hybrid", false, "process clones for sites without a daemon centrally (needs doc addresses in the peers file)")
	traceMode := flag.String("trace", "", "print the query's causal clone tree after completion: text, dot, or chrome (trace_event JSON)")
	explain := flag.Bool("explain", false, "print the distributed plan (operator trees, pushdown, edge policy) and exit without running the query")
	naive := flag.Bool("naive", false, "turn the cost-based planner off: no pushed-down fragments on root clones, raw rows fold classically (with -explain, show the naive plan)")
	watch := flag.Bool("watch", false, "register the query as a standing continuous query: print the baseline result set, then stream typed add/remove row deltas as the daemons report web mutations (run webdisd with -mutate), until interrupted")
	wirev := flag.String("wire", "v2", "wire format: v2 negotiates the binary codec, v1 pins every session to framed gob")
	flag.Parse()

	if (*peersPath == "" && !*explain) || (*query == "" && *file == "") {
		flag.Usage()
		os.Exit(2)
	}
	src := *query
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}
	w, err := disql.Parse(src)
	if err != nil {
		fatal(err)
	}
	if *explain {
		fmt.Print(plan.Explain(w, !*naive))
		return
	}

	tr := netsim.NewTCP()
	sites, err := registerPeers(tr, *peersPath)
	if err != nil {
		fatal(err)
	}

	username := "webdis"
	if u, err := user.Current(); err == nil && u.Username != "" {
		username = u.Username
	}
	if *wirev != "v1" && *wirev != "v2" {
		fatal(fmt.Errorf("unknown wire format %q (want v1 or v2)", *wirev))
	}
	c := client.NewWith(tr, username, "tcp://"+*listen, client.Options{Planner: !*naive, WireV1: *wirev == "v1"})
	c.SetHybrid(*hybrid)
	var journal *trace.Journal
	if *traceMode != "" {
		switch *traceMode {
		case "text", "dot", "chrome":
		default:
			fatal(fmt.Errorf("unknown -trace mode %q (want text, dot or chrome)", *traceMode))
		}
		// Tracing over TCP: the daemons' journals stay remote, but the
		// span ids they echo on every result message let the client
		// stitch the clone tree from its own collector socket.
		journal = trace.NewJournal("tcp://"+*listen, 0)
		c.SetJournal(journal)
	}

	fmt.Printf("webdis: %s\n", w)
	if *watch {
		runWatch(c, w, sites)
		return
	}
	start := time.Now()
	q, err := c.Submit(w)
	if err != nil {
		fatal(err)
	}
	if err := q.Wait(*timeout); err != nil {
		fatal(err)
	}
	for _, table := range q.Results() {
		fmt.Printf("\nnode-query q%d: %s\n", table.Stage+1, strings.Join(table.Cols, ", "))
		for _, row := range table.Rows {
			fmt.Printf("  %q\n", row)
		}
	}
	st := q.Stats()
	fmt.Printf("\ncompleted in %v (CHT: %d entries, %d result messages)\n",
		time.Since(start).Round(time.Millisecond), st.EntriesAdded, st.ResultMsgs)
	if journal != nil {
		jy := trace.BuildJourney(q.ID().String(), q.TraceEvents())
		switch *traceMode {
		case "text":
			fmt.Printf("\nclone tree (%d spans, complete=%v):\n", len(jy.Spans), jy.Complete())
			fmt.Print(jy.Tree())
		case "dot":
			fmt.Print(jy.DOT())
		case "chrome":
			data, err := jy.ChromeTrace()
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(data))
		}
	}
}

// runWatch registers w as a standing query over every peer site, prints
// the baseline, then streams deltas until interrupted.
func runWatch(c *client.Client, w *disql.WebQuery, sites []string) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		cancel()
	}()

	wa, err := c.Watch(ctx, w, sites)
	if err != nil {
		fatal(err)
	}
	defer wa.Close()
	rows := 0
	for _, table := range wa.Results() {
		fmt.Printf("\nnode-query q%d baseline: %s\n", table.Stage+1, strings.Join(table.Cols, ", "))
		for _, row := range table.Rows {
			fmt.Printf("  %q\n", row)
		}
		rows += len(table.Rows)
	}
	fmt.Printf("\nwatching %d sites (%d baseline rows); deltas follow, ^C to stop\n", len(sites), rows)
	for delta := range wa.Stream(ctx) {
		fmt.Printf("epoch %d  %-6s  q%d %q\n", delta.Epoch, delta.Op, delta.Stage+1, delta.Row)
	}
	if err := wa.Err(); err != nil {
		fatal(err)
	}
	fmt.Printf("watch closed at epoch %d\n", wa.Epoch())
}

func registerPeers(tr *netsim.TCPTransport, path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var sites []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("bad peers line %q", line)
		}
		sites = append(sites, fields[0])
		tr.Register(server.Endpoint(fields[0]), fields[1])
		if len(fields) > 2 {
			tr.Register(webserver.Endpoint(fields[0]), fields[2])
		}
	}
	return sites, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "webdis:", err)
	os.Exit(1)
}
