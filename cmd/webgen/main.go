// Webgen generates a synthetic web and reports on it: summary statistics,
// a Graphviz DOT rendering of its link graph, or the HTML of a single
// page.
//
// Usage:
//
//	webgen -web campus -stats
//	webgen -web tree:f=3,d=4,pps=4 -dot > web.dot
//	webgen -web figure1 -dump http://s4.example/n4.html
//	webgen -web tree -pages 5000 -out /var/lib/webdis/store
package main

import (
	"flag"
	"fmt"
	"os"

	"webdis/internal/index"
	"webdis/internal/store"
	"webdis/internal/webgraph"
)

func main() {
	spec := flag.String("web", "campus", "web specification (see webgraph.FromSpec)")
	seed := flag.Int64("seed", 1, "generator seed")
	pages := flag.Int("pages", 0, "scale the generator to at least this many pages (generated webs only)")
	stats := flag.Bool("stats", false, "print summary statistics")
	dot := flag.Bool("dot", false, "print the link graph in Graphviz DOT syntax")
	dump := flag.String("dump", "", "print the HTML of the page at this URL")
	list := flag.Bool("list", false, "list all page URLs")
	search := flag.String("search", "", "query the web's search index for this term")
	out := flag.String("out", "", "build each site's persistent store (heap file, catalog, text index) under this directory")
	flag.Parse()

	if *pages > 0 {
		scaled, err := webgraph.ScaleSpec(*spec, *pages)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webgen:", err)
			os.Exit(2)
		}
		*spec = scaled
	}
	web, err := webgraph.FromSpec(*spec, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "webgen:", err)
		os.Exit(2)
	}
	did := false
	if *out != "" {
		did = true
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "webgen:", err)
			os.Exit(1)
		}
		get := func(u string) ([]byte, error) {
			html, ok := web.HTML(u)
			if !ok {
				return nil, fmt.Errorf("no page at %s", u)
			}
			return html, nil
		}
		for _, host := range web.Hosts() {
			st, err := store.Build(*out, host, web.URLsAt(host), get, store.Options{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "webgen: building store for %s: %v\n", host, err)
				os.Exit(1)
			}
			fmt.Printf("  %-40s %d docs, %d pages -> %s\n", host, st.Docs(), st.Pages(), store.Dir(*out, host))
			st.Close()
		}
	}
	if *stats {
		did = true
		fmt.Printf("web %q: %d pages on %d sites, %d bytes total, start node %s\n",
			*spec, web.NumPages(), web.NumSites(), web.TotalBytes(), web.First())
		for _, host := range web.Hosts() {
			fmt.Printf("  %-40s %d pages\n", host, len(web.URLsAt(host)))
		}
	}
	if *list {
		did = true
		for _, u := range web.URLs() {
			fmt.Println(u)
		}
	}
	if *dot {
		did = true
		fmt.Print(web.DOT())
	}
	if *search != "" {
		did = true
		ix, err := index.Build(web)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webgen:", err)
			os.Exit(1)
		}
		hits := ix.Lookup(*search, 10)
		fmt.Printf("index(%q): %d documents, %d terms, top %d hits:\n",
			*search, ix.Docs(), ix.Terms(), len(hits))
		for _, h := range hits {
			fmt.Printf("  %4d  %s\n", h.Score, h.URL)
		}
	}
	if *dump != "" {
		did = true
		html, ok := web.HTML(*dump)
		if !ok {
			fmt.Fprintf(os.Stderr, "webgen: no page at %s\n", *dump)
			os.Exit(1)
		}
		os.Stdout.Write(html)
	}
	if !did {
		fmt.Printf("web %q: %d pages on %d sites (use -stats, -list, -dot or -dump)\n",
			*spec, web.NumPages(), web.NumSites())
	}
}
