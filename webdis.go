// Package webdis is a from-scratch Go implementation of WEBDIS, the
// distributed Web query processing engine of Gupta, Haritsa and Ramanath
// ("Distributed Query Processing on the Web", ICDE 2000; IISc DSL
// TR-1999-01).
//
// WEBDIS answers declarative queries over hyperlinked documents by *query
// shipping*: instead of downloading documents to the user's machine, the
// query itself migrates from web site to web site along the hyperlink
// paths described by Path Regular Expressions; each site evaluates the
// local part of the query against virtual relations built from its own
// documents and streams results straight back to the user-site. A Current
// Hosts Table protocol detects distributed completion, a per-site
// Node-query Log Table suppresses duplicate recomputation, and
// cancellation is passive — closing the user-site's result socket starves
// every in-flight clone.
//
// # Quick start
//
//	web := webdis.CampusWeb() // or your own webdis.NewWeb()
//	d, err := webdis.NewDeployment(webdis.Config{Web: web})
//	if err != nil { ... }
//	defer d.Close()
//
//	q, err := d.Run(`
//	    select d0.url, d1.url, r.text
//	    from document d0 such that "http://csa.iisc.ernet.in/index.html" L d0,
//	    where d0.title contains "lab"
//	         document d1 such that d0 G·(L*1) d1,
//	         relinfon r such that r.delimiter = "hr",
//	    where (r.text contains "convener")`, 0)
//	for _, table := range q.Results() { ... }
//
// The deployment runs one query server per site of the synthetic web on
// an instrumented in-process transport; the same servers also run over
// real TCP (see cmd/webdisd and cmd/webdis). Traffic is counted per edge,
// which is what the benchmark harness (bench_test.go, cmd/webdis-bench)
// uses to regenerate the paper's figures and the experiments of
// EXPERIMENTS.md.
package webdis

import (
	"time"

	"webdis/internal/centralized"
	"webdis/internal/client"
	"webdis/internal/cluster"
	"webdis/internal/core"
	"webdis/internal/disql"
	"webdis/internal/index"
	"webdis/internal/netsim"
	"webdis/internal/nodeproc"
	"webdis/internal/nodequery"
	"webdis/internal/plan"
	"webdis/internal/pre"
	"webdis/internal/sched"
	"webdis/internal/server"
	"webdis/internal/webgraph"
	"webdis/internal/wire"
)

// Core deployment types.
type (
	// Config describes a deployment: the web corpus, the network model
	// and the per-server engine options.
	Config = core.Config
	// Deployment is a running WEBDIS installation: one query server and
	// one document host per site, plus a user-site client.
	Deployment = core.Deployment
	// Query is one in-flight or finished web-query at the user-site.
	Query = client.Query
	// ResultTable is the merged result of one node-query.
	ResultTable = client.ResultTable
	// QueryStats describes a query's CHT protocol activity.
	QueryStats = client.Stats
	// WebQuery is the parsed formal query Q = S p1 q1 … pn qn.
	WebQuery = disql.WebQuery
)

// Engine configuration.
type (
	// ServerOptions configure every query server of a deployment (dedup
	// mode, clone batching, hop bound, trace hook, wire-format pinning
	// via WireV1 and the per-frame gob byte oracle via WireOracle).
	ServerOptions = server.Options
	// NetOptions configure the simulated network fabric.
	NetOptions = netsim.Options
	// Metrics aggregates engine counters across a deployment.
	Metrics = server.Metrics
	// MetricsSnapshot is a plain-integer copy of Metrics.
	MetricsSnapshot = server.Snapshot
	// DedupMode selects the Node-query Log Table behaviour.
	DedupMode = nodeproc.DedupMode
	// TraceEvent is one record of a server's processing.
	TraceEvent = server.Event
	// RetryPolicy bounds the forward/dispatch retry loop of every query
	// server (ServerOptions.Retry); the zero value sends exactly once, the
	// paper's behaviour.
	RetryPolicy = server.RetryPolicy
	// BatchOptions bound the server-side result batcher
	// (ServerOptions.ResultBatch): reports coalesce into size/age-bounded
	// frames instead of one message per processed clone. The zero value is
	// the paper's one-report-per-message behaviour.
	BatchOptions = server.BatchOptions
	// FaultPlan is a seeded, deterministic fault schedule for the simulated
	// fabric (NetOptions.Faults): probabilistic message drops, mid-frame
	// severs, transient down windows and asymmetric partitions.
	FaultPlan = netsim.FaultPlan
	// DownWindow is one transient outage of a FaultPlan.
	DownWindow = netsim.DownWindow
	// EdgeBlock is one asymmetric partition of a FaultPlan.
	EdgeBlock = netsim.EdgeBlock
	// CrashWindow is one endpoint-level process kill of a FaultPlan:
	// established connections sever and dials refuse until the restart.
	CrashWindow = netsim.CrashWindow
	// ClusterOptions tune the replica membership table of a replicated
	// deployment (Config.Replicas / Config.ReplicasFor).
	ClusterOptions = cluster.Options
	// ClusterMembership is the live replica table (Deployment.Cluster):
	// health states, incarnations and the replica picker.
	ClusterMembership = cluster.Membership
	// ReplicaInfo is one replica's row in a membership snapshot.
	ReplicaInfo = cluster.Info
	// SchedOptions configure every server's clone scheduler
	// (ServerOptions.Sched): FIFO (the zero value, the paper's queue),
	// weighted fair drain, and watermark admission control.
	SchedOptions = sched.Options
	// SchedStats is a point-in-time summary of one server's queue.
	SchedStats = sched.Stats
	// StoreOptions configure the persistent page-based site store
	// (ServerOptions.Store): slotted-page heap files, a bounded buffer
	// pool, and an on-disk inverted text index per site. The zero value
	// keeps the in-RAM Database Constructor.
	StoreOptions = server.StoreOptions
	// PlannerOptions configure the cost-based distributed planner
	// (ServerOptions.Planner): plan-fragment pushdown of GROUP BY /
	// ORDER BY / LIMIT work to the sites, statistics piggybacking, and
	// the per-edge ship-query-vs-ship-data decision.
	PlannerOptions = server.PlannerOptions
	// OutputSpec is a query's aggregation/ordering contract (WebQuery.
	// Output): aggregate select items, GROUP BY, ORDER BY and LIMIT.
	OutputSpec = nodequery.OutputSpec
	// SyntaxError is the typed error every DISQL parse failure returns,
	// carrying the byte offset of the offending token (-1 when the error
	// is structural rather than positional).
	SyntaxError = disql.SyntaxError
)

// Multi-query workloads.
type (
	// Budget is a wire-carried execution budget: an absolute deadline,
	// hop/clone/row quotas, a first-N row target (Budget.FirstN, which
	// arms active early termination at the user-site) and a scheduling
	// weight. It travels on every clone message; children inherit it
	// decremented. The zero Budget is unlimited. Submit with
	// Deployment.SubmitBudget or Session.SubmitBudget.
	Budget = wire.Budget
	// Session is a multi-query user-site session: one result endpoint
	// shared by many concurrent queries (Deployment.NewSession).
	Session = client.Session
	// ClientOptions configure the user-site client in one struct (hybrid
	// fallback, reap grace, metrics, tracing, index resolver) — the
	// consolidated replacement for the deprecated Client.Set* setters.
	ClientOptions = client.Options
	// StreamRow is one result row delivered incrementally by
	// Query.Stream: the node-query stage it answers and the row itself.
	// (Query.Rows, the pull-iterator form, yields the pair directly.)
	StreamRow = client.StreamRow
)

// Typed error taxonomy: how a query failed or degraded, matchable with
// errors.Is against Query.Wait/WaitContext returns and Query.Err.
var (
	// ErrCancelled: the query was cancelled (Query.Cancel, or a cancelled
	// submit/wait context).
	ErrCancelled = client.ErrCancelled
	// ErrTimeout: a Wait deadline passed before completion; the query
	// keeps running until cancelled.
	ErrTimeout = client.ErrTimeout
	// ErrShed: at least one site refused the query under admission
	// control (Query.Shed reports the same as a bool).
	ErrShed = client.ErrShed
	// ErrExpired: budget enforcement clipped the query (Query.Expired).
	ErrExpired = client.ErrExpired
	// ErrPartial: completion was forced by the orphan-CHT reaper, so part
	// of the web went unanswered (Query.Partial).
	ErrPartial = client.ErrPartial
)

// Continuous queries over a mutating web: register a standing query with
// Deployment.Watch, drive the seeded mutation schedule with
// Deployment.Mutate, and consume typed add/remove row deltas.
type (
	// Watch is one standing query: a delta-maintained result set that
	// tracks the mutating web, with a change feed (Watch.Deltas /
	// Watch.Stream), epoch barriers (Watch.WaitEpoch) and snapshots in
	// Query.Results shape (Watch.Results).
	Watch = client.Watch
	// WatchOptions configure one standing query (Deployment.Watch).
	WatchOptions = core.WatchOptions
	// WatchConfig is the deployment-wide continuous-query group
	// (Config.Watch): the mutation schedule and the default re-derivation
	// budget.
	WatchConfig = core.WatchConfig
	// Delta is one standing-result change: the epoch that produced it,
	// the add/remove op, the node-query stage and the row.
	Delta = client.Delta
	// DeltaOp types a Delta as an addition or a removal.
	DeltaOp = client.DeltaOp
	// MutationPlan is a seeded, deterministic web mutation schedule
	// (Config.Watch.Mutations); the zero value is a frozen web.
	MutationPlan = webgraph.MutationPlan
	// Mutation is one applied web change (Deployment.Mutate).
	Mutation = webgraph.Mutation
	// MutationKind classifies a Mutation: text edit, link rewire, page
	// birth or page death.
	MutationKind = webgraph.MutationKind
	// ExecConfig is the execution option group of Config (Config.Exec):
	// transport, server options, client behaviour and tracing, previously
	// spread over flat Config fields.
	ExecConfig = core.ExecConfig
)

// Delta operations.
const (
	DeltaRemove = client.DeltaRemove
	DeltaAdd    = client.DeltaAdd
)

// Web mutation kinds (MutationPlan op mix; Mutation.Kind).
const (
	MutEditText   = webgraph.MutEditText
	MutRewireLink = webgraph.MutRewireLink
	MutAddPage    = webgraph.MutAddPage
	MutRemovePage = webgraph.MutRemovePage
)

// Watch-specific errors, matchable with errors.Is.
var (
	// ErrWatchOutput: grouped/ordered queries cannot be watched — their
	// output contract is not incrementally maintainable row-by-row.
	ErrWatchOutput = client.ErrWatchOutput
	// ErrWatchCorrelated: correlated stages (a later predicate reading an
	// earlier stage's document) are not watchable.
	ErrWatchCorrelated = client.ErrWatchCorrelated
	// ErrWatchClosed: the watch was closed (final error of a drained
	// delta feed).
	ErrWatchClosed = client.ErrWatchClosed
)

// Log-table dedup modes (paper Section 3.1.1 and extensions).
const (
	DedupOff     = nodeproc.DedupOff
	DedupExact   = nodeproc.DedupExact
	DedupSubsume = nodeproc.DedupSubsume // the paper's scheme; the default
	DedupStrong  = nodeproc.DedupStrong
)

// Synthetic web construction.
type (
	// Web is a synthetic document corpus grouped into sites.
	Web = webgraph.Web
	// Page is one synthetic web resource under construction.
	Page = webgraph.Page
	// TreeOpts parameterize the Tree generator.
	TreeOpts = webgraph.TreeOpts
	// RandomOpts parameterize the Random generator.
	RandomOpts = webgraph.RandomOpts
)

// NewWeb returns an empty synthetic web; add pages with Web.NewPage.
func NewWeb() *Web { return webgraph.NewWeb() }

// CampusWeb builds the paper's Section 5 campus web (Figures 7 and 8).
func CampusWeb() *Web { return webgraph.Campus() }

// Figure1Web builds the traversal example of the paper's Figure 1.
func Figure1Web() *Web { return webgraph.Figure1() }

// Figure5Web builds the duplicate-arrivals example of the paper's
// Figure 5.
func Figure5Web() *Web { return webgraph.Figure5() }

// TreeWeb builds a complete tree-shaped web.
func TreeWeb(o TreeOpts) *Web { return webgraph.Tree(o) }

// RandomWeb builds a strongly cross-linked random web.
func RandomWeb(o RandomOpts) *Web { return webgraph.Random(o) }

// ChainWeb builds a linear web of n pages, a new site every pagesPerSite
// pages.
func ChainWeb(n, pagesPerSite int, seed int64) *Web {
	return webgraph.Chain(n, pagesPerSite, seed)
}

// GridWeb builds a cols×rows lattice web (columns are sites).
func GridWeb(cols, rows int, seed int64) *Web { return webgraph.Grid(cols, rows, seed) }

// Paper example queries, matched to the corresponding generated webs.
const (
	// CampusQuery is the paper's Example Query 2 (the convener query) for
	// CampusWeb.
	CampusQuery = webgraph.CampusDISQL
	// Figure1Query drives the Figure-1 traversal on Figure1Web.
	Figure1Query = webgraph.Figure1DISQL
	// Figure5Query drives the Figure-5 duplicate scenario on Figure5Web.
	Figure5Query = webgraph.Figure5DISQL
)

// NewDeployment builds and starts a WEBDIS deployment over cfg.Web.
func NewDeployment(cfg Config) (*Deployment, error) { return core.NewDeployment(cfg) }

// ReplicaEndpoint names replica i of a site's query server: replica 0
// is the classic "site/query" endpoint, higher replicas append "@i".
// Pass it to Network.Kill or a FaultPlan to target a single replica.
func ReplicaEndpoint(site string, i int) string { return cluster.ReplicaEndpoint(site, i) }

// ParseDISQL parses a DISQL query into its formal web-query.
func ParseDISQL(src string) (*WebQuery, error) { return disql.Parse(src) }

// Explain renders the distributed plan of a web-query: the per-stage
// operator trees the sites will run, what the planner pushes down, and
// how traversal edges are decided. plannerOn mirrors
// ServerOptions.Planner.Enabled.
func Explain(w *WebQuery, plannerOn bool) string { return plan.Explain(w, plannerOn) }

// ParsePRE parses a Path Regular Expression such as "N | G·(L*4)".
func ParsePRE(src string) (pre.Expr, error) { return pre.Parse(src) }

// Centralized baseline (data shipping), for comparisons.
type (
	// CentralizedOptions configure a data-shipping run.
	CentralizedOptions = centralized.Options
	// CentralizedResult is the outcome of a data-shipping run.
	CentralizedResult = centralized.Result
)

// RunCentralized evaluates w by downloading documents from d's sites to
// the user-site and evaluating locally — the baseline the paper argues
// against. The deployment's document hosts must be running (the default).
func RunCentralized(d *Deployment, w *WebQuery, opts CentralizedOptions) (*CentralizedResult, error) {
	return centralized.Run(d.Network(), "centralized/results", w, opts)
}

// Wait bounds for convenience.
const (
	// Forever waits indefinitely in Query.Wait and Deployment.Run.
	Forever time.Duration = 0
)

// FallbackStats describes a query's hybrid fallback work (the Section 7.1
// migration path enabled by Config.Participate).
type FallbackStats = client.FallbackStats

// SearchIndex is an inverted index over a synthetic web — the "existing
// search-index" that resolves index("term") StartNode sources (paper
// Sections 1.1 and 7.1). Deployments build one lazily on demand
// (Deployment.Index); BuildIndex constructs one directly.
type SearchIndex = index.Index

// BuildIndex indexes every page of web.
func BuildIndex(web *Web) (*SearchIndex, error) { return index.Build(web) }

// PowerLawOpts parameterize the PowerLaw generator.
type PowerLawOpts = webgraph.PowerLawOpts

// PowerLawWeb builds a preferential-attachment web with hub pages, the
// heavy-tailed topology of the real late-1990s Web.
func PowerLawWeb(o PowerLawOpts) *Web { return webgraph.PowerLaw(o) }
