// Package webserver hosts the documents of one web site. A WEBDIS query
// server reads documents from its co-located Host directly (the paper's
// central tenet: "no web resource is ever downloaded to perform a query
// operation over it"), while remote parties — the centralized data-shipping
// baseline — must fetch them over the transport, paying the network cost
// the distributed engine avoids.
package webserver

import (
	"fmt"
	"net"
	"sync"

	"webdis/internal/netsim"
	"webdis/internal/webgraph"
	"webdis/internal/wire"
)

// Suffix appended to a host name to form its document-service endpoint.
const Suffix = "/web"

// Endpoint returns the transport endpoint name of host's document service.
func Endpoint(host string) string { return host + Suffix }

// Host serves the documents of one site.
type Host struct {
	site string
	web  *webgraph.Web

	mu sync.Mutex
	ln net.Listener
	wg sync.WaitGroup
}

// NewHost returns a document host for site, backed by the given web.
func NewHost(site string, web *webgraph.Web) *Host {
	return &Host{site: site, web: web}
}

// Site returns the host name served.
func (h *Host) Site() string { return h.site }

// URLs returns the URLs of all documents at this site.
func (h *Host) URLs() []string { return h.web.URLsAt(h.site) }

// Get returns the raw content of the document at url. It fails for
// documents of other sites: a host only ever serves its own resources.
func (h *Host) Get(url string) ([]byte, error) {
	if webgraph.Host(url) != h.site {
		return nil, fmt.Errorf("webserver: %s does not host %s", h.site, url)
	}
	content, ok := h.web.HTML(url)
	if !ok {
		return nil, fmt.Errorf("webserver: no document at %s", url)
	}
	return content, nil
}

// Start begins serving fetch requests on the transport under
// Endpoint(site). It returns immediately; Stop shuts the service down.
func (h *Host) Start(tr netsim.Transport) error {
	ln, err := tr.Listen(Endpoint(h.site))
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.ln = ln
	h.mu.Unlock()
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			h.wg.Add(1)
			go func() {
				defer h.wg.Done()
				h.serve(conn)
			}()
		}
	}()
	return nil
}

// serve answers fetch requests on one connection until it closes.
func (h *Host) serve(conn net.Conn) {
	defer conn.Close()
	for {
		msg, err := wire.Receive(conn)
		if err != nil {
			return
		}
		req, ok := msg.(*wire.FetchReq)
		if !ok {
			return
		}
		resp := &wire.FetchResp{URL: req.URL}
		content, err := h.Get(req.URL)
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Content = content
		}
		if err := wire.Send(conn, resp); err != nil {
			return
		}
	}
}

// Stop closes the listener and waits for in-flight requests.
func (h *Host) Stop() {
	h.mu.Lock()
	ln := h.ln
	h.ln = nil
	h.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	h.wg.Wait()
}

// Fetcher downloads documents over the transport — the data-shipping
// client side. Each Get opens one connection, like the original browsers
// and crawlers of the era.
type Fetcher struct {
	tr   netsim.Transport
	from string // caller endpoint name, for traffic attribution
}

// NewFetcher returns a Fetcher dialing from the named endpoint.
func NewFetcher(tr netsim.Transport, from string) *Fetcher {
	return &Fetcher{tr: tr, from: from}
}

// Get downloads the document at url from its home site.
func (f *Fetcher) Get(url string) ([]byte, error) {
	conn, err := f.tr.Dial(f.from, Endpoint(webgraph.Host(url)))
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := wire.Send(conn, &wire.FetchReq{URL: url}); err != nil {
		return nil, err
	}
	msg, err := wire.Receive(conn)
	if err != nil {
		return nil, err
	}
	resp, ok := msg.(*wire.FetchResp)
	if !ok {
		return nil, fmt.Errorf("webserver: unexpected reply %T", msg)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("webserver: fetch %s: %s", url, resp.Err)
	}
	return resp.Content, nil
}
