package webserver

import (
	"strings"
	"testing"

	"webdis/internal/netsim"
	"webdis/internal/webgraph"
	"webdis/internal/wire"
)

func TestLocalGet(t *testing.T) {
	web := webgraph.Campus()
	h := NewHost("csa.iisc.ernet.in", web)
	if h.Site() != "csa.iisc.ernet.in" {
		t.Errorf("Site = %q", h.Site())
	}
	content, err := h.Get(webgraph.CampusStart)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(content), "Laboratories") {
		t.Errorf("content = %.80s", content)
	}
	if _, err := h.Get("http://dsl.serc.iisc.ernet.in/index.html"); err == nil {
		t.Error("Get of another site's document should fail")
	}
	if _, err := h.Get("http://csa.iisc.ernet.in/nosuch.html"); err == nil {
		t.Error("Get of a missing document should fail")
	}
	if got := len(h.URLs()); got != 5 {
		t.Errorf("URLs = %d, want 5", got)
	}
}

func TestFetchOverTransport(t *testing.T) {
	web := webgraph.Campus()
	n := netsim.New(netsim.Options{})
	h := NewHost("csa.iisc.ernet.in", web)
	if err := h.Start(n); err != nil {
		t.Fatal(err)
	}
	defer h.Stop()

	f := NewFetcher(n, "user/results")
	content, err := f.Get(webgraph.CampusLabs)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := web.HTML(webgraph.CampusLabs)
	if string(content) != string(want) {
		t.Error("fetched content differs from origin")
	}
	// Traffic was attributed to the user -> site/web edge and includes the
	// document bytes.
	sn := n.Stats().Snapshot()
	down := sn.Edges[netsim.Edge{From: Endpoint("csa.iisc.ernet.in"), To: "user/results"}]
	if down == nil || down.Bytes < int64(len(want)) {
		t.Errorf("download bytes = %+v, want >= %d", down, len(want))
	}
	if down.ByKind[wire.KindFetchResp] != 1 {
		t.Errorf("kinds = %+v", down.ByKind)
	}

	// Unknown document returns a fetch error, not a transport error.
	if _, err := f.Get("http://csa.iisc.ernet.in/nosuch.html"); err == nil || !strings.Contains(err.Error(), "no document") {
		t.Errorf("err = %v", err)
	}
	// Unknown site: connection refused.
	if _, err := f.Get("http://unknown.example/x.html"); err == nil {
		t.Error("fetch from unknown site should fail")
	}
}

func TestHostStopUnblocksFetchers(t *testing.T) {
	web := webgraph.Campus()
	n := netsim.New(netsim.Options{})
	h := NewHost("csa.iisc.ernet.in", web)
	if err := h.Start(n); err != nil {
		t.Fatal(err)
	}
	h.Stop()
	f := NewFetcher(n, "user/results")
	if _, err := f.Get(webgraph.CampusStart); err == nil {
		t.Error("fetch after Stop should fail")
	}
	// Stop twice is fine.
	h.Stop()
}
