// Package htmlx is a small, from-scratch HTML tokenizer and document
// analyzer sufficient for the WEBDIS relational document model: it extracts
// the title, the visible text, the hyperlink anchors with their WEBDIS link
// classification (interior / local / global), and the tag-delimited
// rel-infons of Lakshmanan et al. that the paper adds to the Mendelzon
// document model.
//
// It is not a general-purpose HTML5 parser; it handles the well-formed
// HTML that the webgraph generator emits plus the common sloppiness of
// 1990s hand-written pages (unclosed tags, uppercase tag names, unquoted
// attribute values, character entities).
package htmlx

import (
	"strings"
)

// TokenType identifies a lexical element of an HTML byte stream.
type TokenType int

// Token types produced by the Tokenizer.
const (
	TextToken      TokenType = iota // a run of character data
	StartTagToken                   // <name attr=...>
	EndTagToken                     // </name>
	SelfClosingTag                  // <name ... />
	CommentToken                    // <!-- ... --> and <!doctype ...>
)

// Attr is a single name="value" attribute; names are lower-cased.
type Attr struct {
	Key, Val string
}

// Token is one lexical element. Data holds the tag name (lower-cased) for
// tag tokens and the decoded text for text tokens.
type Token struct {
	Type  TokenType
	Data  string
	Attrs []Attr
}

// Attr returns the value of the named attribute and whether it is present.
func (t *Token) Attr(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Key == name {
			return a.Val, true
		}
	}
	return "", false
}

// Tokenizer scans an HTML document into Tokens. The zero value is not
// usable; construct with NewTokenizer.
type Tokenizer struct {
	src []byte
	pos int
	// rawtext holds the tag name whose raw content is pending (script,
	// style): everything up to the matching close tag is one text token.
	rawtext string
}

// NewTokenizer returns a Tokenizer reading from src.
func NewTokenizer(src []byte) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token, or false when the input is exhausted.
func (z *Tokenizer) Next() (Token, bool) {
	if z.pos >= len(z.src) {
		return Token{}, false
	}
	if z.rawtext != "" {
		return z.scanRawText(), true
	}
	if z.src[z.pos] == '<' {
		return z.scanTag()
	}
	return z.scanText(), true
}

func (z *Tokenizer) scanText() Token {
	start := z.pos
	for z.pos < len(z.src) && z.src[z.pos] != '<' {
		z.pos++
	}
	return Token{Type: TextToken, Data: DecodeEntities(string(z.src[start:z.pos]))}
}

// scanRawText consumes everything through the close tag of a script/style
// element, returning the raw content as a single text token.
func (z *Tokenizer) scanRawText() Token {
	close := "</" + z.rawtext
	lower := strings.ToLower(string(z.src[z.pos:]))
	idx := strings.Index(lower, close)
	var data string
	if idx < 0 {
		data = string(z.src[z.pos:])
		z.pos = len(z.src)
	} else {
		data = string(z.src[z.pos : z.pos+idx])
		z.pos += idx
	}
	z.rawtext = ""
	return Token{Type: TextToken, Data: data}
}

func (z *Tokenizer) scanTag() (Token, bool) {
	// invariant: src[pos] == '<'
	if z.pos+1 >= len(z.src) {
		z.pos = len(z.src)
		return Token{Type: TextToken, Data: "<"}, true
	}
	switch c := z.src[z.pos+1]; {
	case c == '!' || c == '?':
		return z.scanCommentOrDecl(), true
	case c == '/':
		return z.scanEndTag(), true
	case isNameStart(c):
		return z.scanStartTag(), true
	default:
		// A stray '<' is character data.
		z.pos++
		return Token{Type: TextToken, Data: "<"}, true
	}
}

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-' || c == '_' || c == ':'
}

func (z *Tokenizer) scanCommentOrDecl() Token {
	if strings.HasPrefix(string(z.src[z.pos:]), "<!--") {
		end := strings.Index(string(z.src[z.pos+4:]), "-->")
		var data string
		if end < 0 {
			data = string(z.src[z.pos+4:])
			z.pos = len(z.src)
		} else {
			data = string(z.src[z.pos+4 : z.pos+4+end])
			z.pos += 4 + end + 3
		}
		return Token{Type: CommentToken, Data: data}
	}
	// <!doctype ...> or <? ... >: skip to '>'
	end := strings.IndexByte(string(z.src[z.pos:]), '>')
	var data string
	if end < 0 {
		data = string(z.src[z.pos+1:])
		z.pos = len(z.src)
	} else {
		data = string(z.src[z.pos+1 : z.pos+end])
		z.pos += end + 1
	}
	return Token{Type: CommentToken, Data: data}
}

func (z *Tokenizer) scanEndTag() Token {
	z.pos += 2 // consume "</"
	start := z.pos
	for z.pos < len(z.src) && isNameChar(z.src[z.pos]) {
		z.pos++
	}
	name := strings.ToLower(string(z.src[start:z.pos]))
	for z.pos < len(z.src) && z.src[z.pos] != '>' {
		z.pos++
	}
	if z.pos < len(z.src) {
		z.pos++ // consume '>'
	}
	return Token{Type: EndTagToken, Data: name}
}

func (z *Tokenizer) scanStartTag() Token {
	z.pos++ // consume '<'
	start := z.pos
	for z.pos < len(z.src) && isNameChar(z.src[z.pos]) {
		z.pos++
	}
	tok := Token{Type: StartTagToken, Data: strings.ToLower(string(z.src[start:z.pos]))}
	for {
		z.skipSpace()
		if z.pos >= len(z.src) {
			break
		}
		c := z.src[z.pos]
		if c == '>' {
			z.pos++
			break
		}
		if c == '/' {
			z.pos++
			z.skipSpace()
			if z.pos < len(z.src) && z.src[z.pos] == '>' {
				z.pos++
				tok.Type = SelfClosingTag
				break
			}
			continue
		}
		if !isNameStart(c) {
			z.pos++
			continue
		}
		tok.Attrs = append(tok.Attrs, z.scanAttr())
	}
	if tok.Type == StartTagToken && (tok.Data == "script" || tok.Data == "style") {
		z.rawtext = tok.Data
	}
	return tok
}

func (z *Tokenizer) scanAttr() Attr {
	start := z.pos
	for z.pos < len(z.src) && isNameChar(z.src[z.pos]) {
		z.pos++
	}
	a := Attr{Key: strings.ToLower(string(z.src[start:z.pos]))}
	z.skipSpace()
	if z.pos >= len(z.src) || z.src[z.pos] != '=' {
		return a
	}
	z.pos++
	z.skipSpace()
	if z.pos >= len(z.src) {
		return a
	}
	if q := z.src[z.pos]; q == '"' || q == '\'' {
		z.pos++
		vstart := z.pos
		for z.pos < len(z.src) && z.src[z.pos] != q {
			z.pos++
		}
		a.Val = DecodeEntities(string(z.src[vstart:z.pos]))
		if z.pos < len(z.src) {
			z.pos++
		}
		return a
	}
	vstart := z.pos
	for z.pos < len(z.src) && !isSpace(z.src[z.pos]) && z.src[z.pos] != '>' {
		z.pos++
	}
	a.Val = DecodeEntities(string(z.src[vstart:z.pos]))
	return a
}

func (z *Tokenizer) skipSpace() {
	for z.pos < len(z.src) && isSpace(z.src[z.pos]) {
		z.pos++
	}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

// entities is the small set of named character references that 1990s pages
// actually used; numeric references are handled generically.
var entities = map[string]rune{
	"amp": '&', "lt": '<', "gt": '>', "quot": '"', "apos": '\'',
	"nbsp": ' ', "copy": '©', "reg": '®', "middot": '·', "mdash": '—',
}

// DecodeEntities replaces character entity references (&amp;, &#65;,
// &#x41;) with their characters. Unknown references pass through verbatim.
func DecodeEntities(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); {
		if s[i] != '&' {
			b.WriteByte(s[i])
			i++
			continue
		}
		end := strings.IndexByte(s[i:], ';')
		if end < 0 || end > 10 {
			b.WriteByte(s[i])
			i++
			continue
		}
		name := s[i+1 : i+end]
		if r, ok := entities[strings.ToLower(name)]; ok {
			b.WriteRune(r)
			i += end + 1
			continue
		}
		if strings.HasPrefix(name, "#") {
			if r, ok := decodeNumeric(name[1:]); ok {
				b.WriteRune(r)
				i += end + 1
				continue
			}
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

func decodeNumeric(s string) (rune, bool) {
	if s == "" {
		return 0, false
	}
	base := 10
	if s[0] == 'x' || s[0] == 'X' {
		base = 16
		s = s[1:]
	}
	var n int
	for _, c := range s {
		var d int
		switch {
		case c >= '0' && c <= '9':
			d = int(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int(c-'A') + 10
		default:
			return 0, false
		}
		n = n*base + d
		if n > 0x10FFFF {
			return 0, false
		}
	}
	return rune(n), true
}
