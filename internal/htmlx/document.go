package htmlx

import (
	"fmt"
	"net/url"
	"strings"

	"webdis/internal/pre"
)

// Anchor is one hyperlink of a document, corresponding to a tuple of the
// ANCHOR virtual relation: the hypertext label, the URL of the containing
// document (base), the resolved destination (href) and the WEBDIS link
// category (ltype).
type Anchor struct {
	Label string
	Base  string
	Href  string
	Type  pre.Link
}

// RelInfon is a group of related information inside a document, identified
// by the HTML tag that delimits it (Lakshmanan et al.'s rel-infon concept,
// Section 2.2 of the paper). For paired tags such as <b>…</b> the text is
// the enclosed content; for the unpaired <hr> tag the text is the segment
// preceding the rule, matching the paper's "the name of the convener is
// usually succeeded by a horizontal line" usage.
type RelInfon struct {
	Delimiter string
	Text      string
}

// Document is the analyzed form of one web resource — everything the
// Database Constructor needs to populate the DOCUMENT, ANCHOR and RELINFON
// virtual relations.
type Document struct {
	URL     string
	Title   string
	Text    string
	Length  int // length of the raw HTML in bytes
	Anchors []Anchor
	Infons  []RelInfon
}

// relInfonTags are the paired delimiters whose content forms a rel-infon.
var relInfonTags = map[string]bool{
	"b": true, "i": true, "em": true, "strong": true, "u": true,
	"h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
	"code": true, "blockquote": true, "li": true, "td": true, "th": true,
	"address": true, "cite": true, "caption": true,
}

// Parse analyzes the HTML of the resource at baseURL. It never fails on
// malformed markup — the tokenizer degrades to text — but it does reject an
// unparseable base URL, since link classification is impossible without it.
func Parse(baseURL string, src []byte) (*Document, error) {
	base, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("htmlx: bad document URL %q: %w", baseURL, err)
	}
	doc := &Document{URL: baseURL, Length: len(src)}

	type open struct {
		tag   string
		start int // offset into the text accumulator
	}
	var (
		text    strings.Builder
		stack   []open
		inTitle bool
		inRaw   bool // inside <script> or <style>
		title   strings.Builder
		hrStart int // text offset where the current <hr> segment began
		curA    *Anchor
		aStart  int
	)
	flushHR := func(end int) {
		seg := strings.TrimSpace(text.String()[hrStart:end])
		if seg != "" {
			doc.Infons = append(doc.Infons, RelInfon{Delimiter: "hr", Text: seg})
		}
	}
	z := NewTokenizer(src)
	for {
		tok, ok := z.Next()
		if !ok {
			break
		}
		switch tok.Type {
		case TextToken:
			if inRaw {
				continue
			}
			if inTitle {
				title.WriteString(tok.Data)
				continue
			}
			appendText(&text, tok.Data)
		case StartTagToken, SelfClosingTag:
			switch tok.Data {
			case "title":
				if tok.Type == StartTagToken {
					inTitle = true
				}
			case "script", "style":
				if tok.Type == StartTagToken {
					inRaw = true
				}
			case "a":
				if href, ok := tok.Attr("href"); ok && href != "" {
					a := classify(base, href)
					curA = &a
					aStart = text.Len()
				}
			case "hr":
				flushHR(text.Len())
				hrStart = text.Len()
			case "br", "p", "div", "tr":
				appendText(&text, " ")
			}
			if tok.Type == StartTagToken && relInfonTags[tok.Data] {
				stack = append(stack, open{tok.Data, text.Len()})
			}
		case EndTagToken:
			switch tok.Data {
			case "title":
				inTitle = false
			case "script", "style":
				inRaw = false
			case "a":
				if curA != nil {
					curA.Label = strings.TrimSpace(text.String()[aStart:])
					doc.Anchors = append(doc.Anchors, *curA)
					curA = nil
				}
			}
			if relInfonTags[tok.Data] {
				// close the nearest matching open tag
				for i := len(stack) - 1; i >= 0; i-- {
					if stack[i].tag == tok.Data {
						seg := strings.TrimSpace(text.String()[stack[i].start:])
						if seg != "" {
							doc.Infons = append(doc.Infons, RelInfon{Delimiter: tok.Data, Text: seg})
						}
						stack = append(stack[:i], stack[i+1:]...)
						break
					}
				}
			}
		}
	}
	if curA != nil { // unclosed <a>
		curA.Label = strings.TrimSpace(text.String()[aStart:])
		doc.Anchors = append(doc.Anchors, *curA)
	}
	doc.Title = strings.TrimSpace(collapseSpace(title.String()))
	doc.Text = strings.TrimSpace(text.String())
	return doc, nil
}

// appendText streams data into the accumulator with whitespace runs
// collapsed to single spaces (including across token boundaries), so that
// offsets recorded by anchors and rel-infons stay consistent. It works
// bytewise: the collapsed characters are all ASCII, and multi-byte UTF-8
// sequences never contain ASCII-range bytes, so they pass through intact.
// This is the document parser's hottest path — it must not allocate per
// token.
func appendText(b *strings.Builder, data string) {
	for i := 0; i < len(data); i++ {
		c := data[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' {
			if cur := b.String(); len(cur) > 0 && cur[len(cur)-1] != ' ' {
				b.WriteByte(' ')
			}
			continue
		}
		b.WriteByte(c)
	}
}

func collapseSpace(s string) string {
	var b strings.Builder
	space := false
	for _, r := range s {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' || r == '\f' {
			space = true
			continue
		}
		if space && b.Len() > 0 {
			b.WriteByte(' ')
		} else if space {
			b.WriteByte(' ')
		}
		space = false
		b.WriteRune(r)
	}
	if space {
		b.WriteByte(' ')
	}
	return b.String()
}

// classify resolves href against base and assigns the WEBDIS link category:
// interior if the destination is within the same resource (a fragment),
// local if it is on the same server, global otherwise.
func classify(base *url.URL, href string) Anchor {
	a := Anchor{Base: base.String(), Href: href}
	if strings.HasPrefix(href, "#") {
		a.Type = pre.Interior
		a.Href = base.String() + href
		return a
	}
	ref, err := url.Parse(href)
	if err != nil {
		a.Type = pre.Global
		return a
	}
	res := base.ResolveReference(ref)
	a.Href = res.String()
	switch {
	case res.Host == base.Host && res.Path == base.Path && res.Fragment != "":
		a.Type = pre.Interior
	case res.Host == base.Host:
		a.Type = pre.Local
	default:
		a.Type = pre.Global
	}
	return a
}

// LinksOf returns the anchors of category t, preserving document order.
func (d *Document) LinksOf(t pre.Link) []Anchor {
	var out []Anchor
	for _, a := range d.Anchors {
		if a.Type == t {
			out = append(out, a)
		}
	}
	return out
}
