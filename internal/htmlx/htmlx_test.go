package htmlx

import (
	"strings"
	"testing"
	"testing/quick"

	"webdis/internal/pre"
)

const samplePage = `<!doctype html>
<html>
<head><title>Database   Systems Lab</title>
<style>body { color: red }</style>
</head>
<body>
<h1>Welcome to the DSL</h1>
<p>We study <b>query processing</b> and <i>transaction management</i>.</p>
<a href="people.html">People</a>
<a href="/projects/diaspora.html">DIASPORA</a>
<a href="http://www.iisc.ernet.in/">IISc</a>
<a href="#top">Back to top</a>
CONVENER Prof. Jayant Haritsa
<hr>
<script>alert("not text")</script>
Footer text &amp; more &#65;
</body>
</html>`

func parseSample(t *testing.T) *Document {
	t.Helper()
	doc, err := Parse("http://dsl.serc.iisc.ernet.in/index.html", []byte(samplePage))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParseTitle(t *testing.T) {
	doc := parseSample(t)
	if doc.Title != "Database Systems Lab" {
		t.Errorf("Title = %q", doc.Title)
	}
}

func TestParseAnchors(t *testing.T) {
	doc := parseSample(t)
	if len(doc.Anchors) != 4 {
		t.Fatalf("got %d anchors, want 4: %+v", len(doc.Anchors), doc.Anchors)
	}
	cases := []struct {
		href  string
		label string
		typ   pre.Link
	}{
		{"http://dsl.serc.iisc.ernet.in/people.html", "People", pre.Local},
		{"http://dsl.serc.iisc.ernet.in/projects/diaspora.html", "DIASPORA", pre.Local},
		{"http://www.iisc.ernet.in/", "IISc", pre.Global},
		{"http://dsl.serc.iisc.ernet.in/index.html#top", "Back to top", pre.Interior},
	}
	for i, c := range cases {
		a := doc.Anchors[i]
		if a.Href != c.href || a.Label != c.label || a.Type != c.typ {
			t.Errorf("anchor %d = %+v, want %+v", i, a, c)
		}
		if a.Base != "http://dsl.serc.iisc.ernet.in/index.html" {
			t.Errorf("anchor %d base = %q", i, a.Base)
		}
	}
}

func TestParseRelInfons(t *testing.T) {
	doc := parseSample(t)
	find := func(delim, substr string) *RelInfon {
		for i := range doc.Infons {
			if doc.Infons[i].Delimiter == delim && strings.Contains(doc.Infons[i].Text, substr) {
				return &doc.Infons[i]
			}
		}
		return nil
	}
	if r := find("b", "query processing"); r == nil {
		t.Errorf("missing <b> rel-infon: %+v", doc.Infons)
	}
	if r := find("i", "transaction management"); r == nil {
		t.Errorf("missing <i> rel-infon")
	}
	if r := find("h1", "Welcome to the DSL"); r == nil {
		t.Errorf("missing <h1> rel-infon")
	}
	// The hr rel-infon is the text preceding the rule — it must contain the
	// convener line (the paper's Example Query 2 depends on this).
	r := find("hr", "CONVENER Prof. Jayant Haritsa")
	if r == nil {
		t.Fatalf("missing hr rel-infon: %+v", doc.Infons)
	}
}

func TestParseTextAndEntities(t *testing.T) {
	doc := parseSample(t)
	if !strings.Contains(doc.Text, "Footer text & more A") {
		t.Errorf("entities not decoded in %q", doc.Text)
	}
	if strings.Contains(doc.Text, "alert") {
		t.Errorf("script content leaked into text: %q", doc.Text)
	}
	if strings.Contains(doc.Text, "color: red") {
		t.Errorf("style content leaked into text: %q", doc.Text)
	}
	if doc.Length != len(samplePage) {
		t.Errorf("Length = %d, want %d", doc.Length, len(samplePage))
	}
}

func TestLinksOf(t *testing.T) {
	doc := parseSample(t)
	if got := len(doc.LinksOf(pre.Local)); got != 2 {
		t.Errorf("local links = %d, want 2", got)
	}
	if got := len(doc.LinksOf(pre.Global)); got != 1 {
		t.Errorf("global links = %d, want 1", got)
	}
	if got := len(doc.LinksOf(pre.Interior)); got != 1 {
		t.Errorf("interior links = %d, want 1", got)
	}
}

func TestNestedRelInfons(t *testing.T) {
	doc, err := Parse("http://a.example/x.html",
		[]byte(`<b>bold <i>both</i> tail</b>`))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Infons) != 2 {
		t.Fatalf("infons = %+v", doc.Infons)
	}
	if doc.Infons[0].Delimiter != "i" || doc.Infons[0].Text != "both" {
		t.Errorf("inner infon = %+v", doc.Infons[0])
	}
	if doc.Infons[1].Delimiter != "b" || doc.Infons[1].Text != "bold both tail" {
		t.Errorf("outer infon = %+v", doc.Infons[1])
	}
}

func TestMultipleHRSegments(t *testing.T) {
	doc, err := Parse("http://a.example/x.html",
		[]byte(`first segment<hr>second segment<hr>trailing tail`))
	if err != nil {
		t.Fatal(err)
	}
	var hrs []string
	for _, r := range doc.Infons {
		if r.Delimiter == "hr" {
			hrs = append(hrs, r.Text)
		}
	}
	want := []string{"first segment", "second segment"}
	if len(hrs) != len(want) {
		t.Fatalf("hr segments = %v, want %v", hrs, want)
	}
	for i := range want {
		if hrs[i] != want[i] {
			t.Errorf("segment %d = %q, want %q", i, hrs[i], want[i])
		}
	}
}

func TestMalformedHTML(t *testing.T) {
	// Unclosed tags, stray '<', uppercase names, unquoted attributes.
	doc, err := Parse("http://a.example/x.html",
		[]byte(`<B>never closed <A HREF=people.html>people 1 < 2`))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Anchors) != 1 {
		t.Fatalf("anchors = %+v", doc.Anchors)
	}
	a := doc.Anchors[0]
	if a.Href != "http://a.example/people.html" || a.Type != pre.Local {
		t.Errorf("anchor = %+v", a)
	}
	if !strings.Contains(doc.Text, "1 < 2") {
		t.Errorf("stray < lost: %q", doc.Text)
	}
}

func TestBadBaseURL(t *testing.T) {
	if _, err := Parse("http://a b/%%", []byte("<p>x</p>")); err == nil {
		t.Fatal("want error for unparseable base URL")
	}
}

func TestDecodeEntities(t *testing.T) {
	cases := map[string]string{
		"a &amp; b":     "a & b",
		"&lt;tag&gt;":   "<tag>",
		"&#65;&#x42;":   "AB",
		"&unknown;":     "&unknown;",
		"no entities":   "no entities",
		"&middot;":      "·",
		"&#xZZ; &amp;":  "&#xZZ; &",
		"tail &":        "tail &",
		"&toolongname;": "&toolongname;",
	}
	for in, want := range cases {
		if got := DecodeEntities(in); got != want {
			t.Errorf("DecodeEntities(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTokenizerSelfClosing(t *testing.T) {
	z := NewTokenizer([]byte(`<br/><img src="x.png" />text`))
	tok, _ := z.Next()
	if tok.Type != SelfClosingTag || tok.Data != "br" {
		t.Errorf("tok = %+v", tok)
	}
	tok, _ = z.Next()
	if tok.Type != SelfClosingTag || tok.Data != "img" {
		t.Errorf("tok = %+v", tok)
	}
	if v, ok := tok.Attr("src"); !ok || v != "x.png" {
		t.Errorf("src attr = %q, %v", v, ok)
	}
	tok, _ = z.Next()
	if tok.Type != TextToken || tok.Data != "text" {
		t.Errorf("tok = %+v", tok)
	}
	if _, ok := z.Next(); ok {
		t.Error("expected end of input")
	}
}

func TestTokenizerComments(t *testing.T) {
	z := NewTokenizer([]byte(`<!-- hidden <a href="x">no</a> -->visible`))
	tok, _ := z.Next()
	if tok.Type != CommentToken {
		t.Fatalf("tok = %+v", tok)
	}
	tok, _ = z.Next()
	if tok.Type != TextToken || tok.Data != "visible" {
		t.Errorf("tok = %+v", tok)
	}
}

func TestCommentedAnchorIgnored(t *testing.T) {
	doc, err := Parse("http://a.example/", []byte(`<!-- <a href="x.html">x</a> --><a href="y.html">y</a>`))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Anchors) != 1 || doc.Anchors[0].Label != "y" {
		t.Errorf("anchors = %+v", doc.Anchors)
	}
}

func TestQuickParseNeverPanics(t *testing.T) {
	// Property: Parse terminates without panicking on arbitrary bytes and
	// reports a length equal to the input length.
	f := func(src []byte) bool {
		doc, err := Parse("http://fuzz.example/doc.html", src)
		if err != nil {
			return false
		}
		return doc.Length == len(src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickEntityDecodeIdempotentOnPlain(t *testing.T) {
	// Property: strings without '&' are unchanged.
	f := func(s string) bool {
		clean := strings.ReplaceAll(s, "&", "")
		return DecodeEntities(clean) == clean
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
