package plan

import (
	"fmt"
	"strings"

	"webdis/internal/disql"
	"webdis/internal/nodequery"
)

// Explain renders the distributed plan for a web-query: the operator
// tree each site runs per stage, the user-site finalization pipeline,
// the fragment the planner pushes into clones, and the edge shipping
// policy. It needs no documents — the tree shape depends only on the
// query — so `webdis -explain` prints it without executing anything.
func Explain(w *disql.WebQuery, plannerOn bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", w.String())
	for i, s := range w.Stages {
		fmt.Fprintf(&b, "stage %d/%d  PRE %s\n", i+1, len(w.Stages), s.PRE)
		env := placeholderEnv(s.Query)
		root, err := Compile(s.Query, env)
		if err != nil {
			fmt.Fprintf(&b, "  <uncompilable: %v>\n", err)
			continue
		}
		writeTree(&b, root, 1)
	}
	spec := w.Output
	var orderKeys []nodequery.OrderKey
	limit := 0
	if spec != nil {
		orderKeys, limit = spec.OrderBy, spec.Limit
	}
	b.WriteString("output at user site:\n")
	if spec.Grouped() {
		agg := &HashAgg{Spec: spec}
		fmt.Fprintf(&b, "  final %s\n", agg.Describe())
	}
	if len(orderKeys) > 0 {
		fmt.Fprintf(&b, "  order by %s\n", joinKeys(orderKeys))
	}
	if limit > 0 {
		fmt.Fprintf(&b, "  limit %d\n", limit)
	}
	if !spec.Grouped() && len(orderKeys) == 0 && limit == 0 {
		b.WriteString("  merge + distinct per stage (classic)\n")
	}
	if !plannerOn {
		b.WriteString("pushdown: off (naive shipping: full per-node rows travel)\n")
		return b.String()
	}
	last := len(w.Stages) - 1
	switch {
	case spec.Grouped():
		acc := NewAcc(spec)
		pcols, _ := acc.PartialTable()
		fmt.Fprintf(&b, "pushdown: partial hash-agg at every site (frag v1 → stage %d): ships [%s] per contribution\n",
			last+1, strings.Join(pcols, ", "))
	case limit > 0:
		fmt.Fprintf(&b, "pushdown: per-node top-%d (frag v1 → stage %d): each site ships only its first %d rows under the global order\n",
			limit, last+1, limit)
	default:
		b.WriteString("pushdown: none applicable (no aggregation or limit)\n")
	}
	b.WriteString("edge policy: ship-data when dests·docBytes·bias < cloneBytes (site stats piggybacked on result frames); ship-query otherwise\n")
	return b.String()
}

func writeTree(b *strings.Builder, op Op, depth int) {
	fmt.Fprintf(b, "%s%s\n", strings.Repeat("  ", depth), op.Describe())
	for _, k := range op.Kids() {
		writeTree(b, k, depth+1)
	}
}

func joinKeys(keys []nodequery.OrderKey) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k.String()
	}
	return strings.Join(parts, ", ")
}

// placeholderEnv fills every outer reference with a placeholder so the
// stage compiles for display without real correlated values.
func placeholderEnv(q *nodequery.Query) map[string]string {
	env := make(map[string]string, len(q.Outer))
	for _, c := range q.Outer {
		env[c.String()] = "…"
	}
	return env
}
