package plan

import (
	"sort"
	"strconv"
	"strings"

	"webdis/internal/nodequery"
)

// Acc is the grouped-aggregation accumulator both ends of the planner
// share: a remote site folds one node's raw rows into partial-state
// rows with it (ApplyFrag), and the user-site client folds raw and
// partial contributions from every node into the final table with the
// *same* code — which is what makes pushdown invisible in the results.
//
// Aggregation ranges over the union of per-node distinct result sets
// (each node's table is already distinct, and the client deduplicates
// whole contributions by (node, stage, env)), so COUNT counts distinct
// projected rows per node — consistent with WEBDIS's set semantics —
// and duplicate deliveries of the same contribution are idempotent.
//
// Partial state per group is one cell per aggregate: COUNT a decimal
// int, SUM a shortest-form float, MIN/MAX the value itself. Partials
// combine by +, +, CompareVals-min and CompareVals-max respectively.
type Acc struct {
	spec *nodequery.OutputSpec
	aggs []nodequery.OutputCol // distinct aggregated cols: select list first, then order-only
	keys map[string]*group
	ord  []string // first-seen group order
}

type group struct {
	keys  []string // GroupBy values, in GroupBy order
	count []int64
	sum   []float64
	val   []string // MIN/MAX running value
	set   []bool
}

// NewAcc builds an accumulator for one output spec (which must be
// Grouped).
func NewAcc(spec *nodequery.OutputSpec) *Acc {
	a := &Acc{spec: spec, keys: make(map[string]*group)}
	seen := make(map[string]bool)
	for _, c := range spec.Cols {
		if c.Agg != nodequery.AggNone && !seen[c.String()] {
			seen[c.String()] = true
			a.aggs = append(a.aggs, c)
		}
	}
	for _, k := range spec.OrderBy {
		if k.Col.Agg != nodequery.AggNone && !seen[k.Col.String()] {
			seen[k.Col.String()] = true
			a.aggs = append(a.aggs, k.Col)
		}
	}
	return a
}

func (a *Acc) group(keys []string) *group {
	k := strings.Join(keys, "\x00")
	g, ok := a.keys[k]
	if !ok {
		g = &group{
			keys:  keys,
			count: make([]int64, len(a.aggs)),
			sum:   make([]float64, len(a.aggs)),
			val:   make([]string, len(a.aggs)),
			set:   make([]bool, len(a.aggs)),
		}
		a.keys[k] = g
		a.ord = append(a.ord, k)
	}
	return g
}

// AddRaw folds one node's raw result rows in. Group-by and aggregate
// references resolve against the table's columns first, then env (the
// contribution's correlated-stage environment, for group keys exported
// by earlier stages); anything unresolvable reads as "".
func (a *Acc) AddRaw(cols []string, rows [][]string, env map[string]string) {
	idx := colIndex(cols)
	get := func(ref nodequery.ColRef, row []string) string {
		if i, ok := idx[ref.String()]; ok && i < len(row) {
			return row[i]
		}
		return env[ref.String()]
	}
	for _, row := range rows {
		keys := make([]string, len(a.spec.GroupBy))
		for i, r := range a.spec.GroupBy {
			keys[i] = get(r, row)
		}
		g := a.group(keys)
		for i, c := range a.aggs {
			switch c.Agg {
			case nodequery.AggCount:
				g.count[i]++
			case nodequery.AggSum:
				if n, err := strconv.ParseFloat(get(c.Ref, row), 64); err == nil {
					g.sum[i] += n
				}
			case nodequery.AggMin:
				v := get(c.Ref, row)
				if !g.set[i] || nodequery.CompareVals(v, g.val[i]) < 0 {
					g.val[i], g.set[i] = v, true
				}
			case nodequery.AggMax:
				v := get(c.Ref, row)
				if !g.set[i] || nodequery.CompareVals(v, g.val[i]) > 0 {
					g.val[i], g.set[i] = v, true
				}
			}
		}
	}
}

// AddPartial folds partial-state rows produced by another Acc's
// PartialTable (same spec, so the positional layout matches).
func (a *Acc) AddPartial(rows [][]string) {
	nk := len(a.spec.GroupBy)
	for _, row := range rows {
		if len(row) < nk+len(a.aggs) {
			continue // malformed partial; drop rather than misalign
		}
		g := a.group(append([]string{}, row[:nk]...))
		for i, c := range a.aggs {
			cell := row[nk+i]
			switch c.Agg {
			case nodequery.AggCount:
				if n, err := strconv.ParseInt(cell, 10, 64); err == nil {
					g.count[i] += n
				}
			case nodequery.AggSum:
				if n, err := strconv.ParseFloat(cell, 64); err == nil {
					g.sum[i] += n
				}
			case nodequery.AggMin:
				if !g.set[i] || nodequery.CompareVals(cell, g.val[i]) < 0 {
					g.val[i], g.set[i] = cell, true
				}
			case nodequery.AggMax:
				if !g.set[i] || nodequery.CompareVals(cell, g.val[i]) > 0 {
					g.val[i], g.set[i] = cell, true
				}
			}
		}
	}
}

func (a *Acc) aggCell(g *group, i int) string {
	switch a.aggs[i].Agg {
	case nodequery.AggCount:
		return strconv.FormatInt(g.count[i], 10)
	case nodequery.AggSum:
		return strconv.FormatFloat(g.sum[i], 'g', -1, 64)
	default:
		return g.val[i]
	}
}

// PartialTable renders the accumulated state as partial rows: group
// keys then one state cell per aggregate, in first-seen group order.
func (a *Acc) PartialTable() ([]string, [][]string) {
	cols := make([]string, 0, len(a.spec.GroupBy)+len(a.aggs))
	for _, r := range a.spec.GroupBy {
		cols = append(cols, r.String())
	}
	for _, c := range a.aggs {
		cols = append(cols, c.String())
	}
	rows := make([][]string, 0, len(a.ord))
	for _, k := range a.ord {
		g := a.keys[k]
		row := make([]string, 0, len(cols))
		row = append(row, g.keys...)
		for i := range a.aggs {
			row = append(row, a.aggCell(g, i))
		}
		rows = append(rows, row)
	}
	return cols, rows
}

// FinalTable renders the finalized output: one row per group shaped by
// the spec's select list, ordered by the spec's order keys (groups
// themselves as the tiebreak) and truncated to the limit. A scalar
// aggregate (no group-by) with no contributions yields its zero state:
// count 0, sum 0, min/max "".
func (a *Acc) FinalTable() ([]string, [][]string) {
	cols := make([]string, len(a.spec.Cols))
	for i, c := range a.spec.Cols {
		cols[i] = c.String()
	}
	if len(a.keys) == 0 && len(a.spec.GroupBy) == 0 && len(a.aggs) > 0 {
		a.group([]string{}) // scalar zero state
	}
	keyIdx := make(map[string]int, len(a.spec.GroupBy))
	for i, r := range a.spec.GroupBy {
		if _, dup := keyIdx[r.String()]; !dup {
			keyIdx[r.String()] = i
		}
	}
	aggIdx := make(map[string]int, len(a.aggs))
	for i, c := range a.aggs {
		aggIdx[c.String()] = i
	}
	cell := func(g *group, c nodequery.OutputCol) string {
		if c.Agg == nodequery.AggNone {
			if i, ok := keyIdx[c.Ref.String()]; ok {
				return g.keys[i]
			}
			return ""
		}
		return a.aggCell(g, aggIdx[c.String()])
	}
	type wide struct {
		out  []string
		sort []string // order-key values, then group keys for determinism
	}
	rows := make([]wide, 0, len(a.ord))
	for _, k := range a.ord {
		g := a.keys[k]
		w := wide{out: make([]string, len(cols))}
		for i, c := range a.spec.Cols {
			w.out[i] = cell(g, c)
		}
		for _, ok := range a.spec.OrderBy {
			w.sort = append(w.sort, cell(g, ok.Col))
		}
		w.sort = append(w.sort, g.keys...)
		rows = append(rows, w)
	}
	nOrd := len(a.spec.OrderBy)
	sort.SliceStable(rows, func(x, y int) bool {
		a1, b1 := rows[x].sort, rows[y].sort
		for i := 0; i < len(a1) && i < len(b1); i++ {
			c := nodequery.CompareVals(a1[i], b1[i])
			if c == 0 {
				continue
			}
			if i < nOrd && a.spec.OrderBy[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return lessRows(rows[x].out, rows[y].out)
	})
	out := make([][]string, len(rows))
	for i, w := range rows {
		out[i] = w.out
	}
	if a.spec.Limit > 0 && len(out) > a.spec.Limit {
		out = out[:a.spec.Limit]
	}
	return cols, out
}

// ApplyFrag runs a pushed-down plan fragment over one node's raw stage
// table before it ships: grouped specs fold the rows to one
// partial-state row per group; order+limit specs keep only the node's
// top-K rows (safe because any row in the global top-K after
// deduplication is necessarily in its own node's top-K under the same
// total order). It returns the table to ship, whether the rows are
// partial-aggregate state, and the result-cell bytes saved.
func ApplyFrag(cols []string, rows [][]string, env map[string]string, spec *nodequery.OutputSpec) ([]string, [][]string, bool, int) {
	before := cellBytes(cols, rows)
	if spec.Grouped() {
		acc := NewAcc(spec)
		acc.AddRaw(cols, rows, env)
		pcols, prows := acc.PartialTable()
		return pcols, prows, true, before - cellBytes(pcols, prows)
	}
	if spec.Limit > 0 && len(rows) > spec.Limit {
		clipped := SortLimit(append([][]string{}, rows...), cols, spec)
		return cols, clipped, false, before - cellBytes(cols, clipped)
	}
	return cols, rows, false, 0
}

// cellBytes sums the payload bytes of a table, the planner's measure
// of shipping cost.
func cellBytes(cols []string, rows [][]string) int {
	n := 0
	for _, c := range cols {
		n += len(c)
	}
	for _, r := range rows {
		for _, c := range r {
			n += len(c)
		}
	}
	return n
}
