package plan

import (
	"fmt"
	"strings"

	"webdis/internal/nodequery"
	"webdis/internal/relmodel"
)

// Compile translates one node-query into an operator tree, with the
// classic single-site optimizations applied:
//
//   - selection pushdown: every top-level conjunct whose references are
//     covered by a single variable (plus outer/env constants) becomes a
//     Filter directly above that variable's Scan;
//   - join detection: an equality conjunct between columns of two
//     different variables turns the nest-loop product into a HashJoin
//     on those keys (the DISQL two-variable join);
//   - residual predicates attach at the lowest point where all their
//     variables are bound.
//
// Variables join left-deep in declaration order, exactly the paper's
// nested-loop order, so the result row set is identical to
// nodequery.EvalEnv (modulo row order, which Distinct and the final
// sort make irrelevant). env supplies the correlated-stage outer
// values, as in EvalEnv.
func Compile(q *nodequery.Query, env map[string]string) (Op, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	for _, c := range q.Outer {
		if _, ok := env[c.String()]; !ok {
			return nil, fmt.Errorf("plan: no environment value for outer reference %s", c)
		}
	}
	declared := make(map[string]bool, len(q.Vars))
	for _, v := range q.Vars {
		declared[v.Name] = true
	}
	// The conjunct pool: the where clause plus every such-that condition,
	// split at top-level ANDs.
	var pool []*nodequery.Pred
	pool = append(pool, flattenAnd(q.Where)...)
	for _, v := range q.Vars {
		pool = append(pool, flattenAnd(v.Cond)...)
	}
	used := make([]bool, len(pool))
	vars := make([]map[string]bool, len(pool))
	for i, c := range pool {
		vars[i] = localVars(c, declared)
	}

	bound := make(map[string]bool, len(q.Vars))
	var cur Op
	takeFilter := func(child Op, cover map[string]bool) Op {
		var preds []*nodequery.Pred
		for i := range pool {
			if used[i] || !subset(vars[i], cover) {
				continue
			}
			used[i] = true
			preds = append(preds, pool[i])
		}
		if len(preds) == 0 {
			return child
		}
		return &Filter{Child: child, Pred: nodequery.Conj(preds...), Env: env}
	}
	for _, v := range q.Vars {
		var sub Op = &Scan{Rel: strings.ToLower(v.Rel), Var: v.Name}
		sub = takeFilter(sub, map[string]bool{v.Name: true})
		if cur == nil {
			cur = sub
			bound[v.Name] = true
			continue
		}
		// Equi-join conjuncts linking the new variable to the bound set.
		var lk, rk []nodequery.ColRef
		for i, c := range pool {
			if used[i] || c.Kind != nodequery.Cmp || c.Op != nodequery.Eq ||
				!c.Left.IsCol || !c.Right.IsCol {
				continue
			}
			lv, rv := c.Left.Col.Var, c.Right.Col.Var
			switch {
			case bound[lv] && rv == v.Name:
				lk, rk = append(lk, c.Left.Col), append(rk, c.Right.Col)
			case bound[rv] && lv == v.Name:
				lk, rk = append(lk, c.Right.Col), append(rk, c.Left.Col)
			default:
				continue
			}
			used[i] = true
		}
		if len(lk) > 0 {
			cur = &HashJoin{Left: cur, Right: sub, LeftKeys: lk, RightKeys: rk}
		} else {
			cur = &NestLoop{Left: cur, Right: sub}
		}
		bound[v.Name] = true
		cur = takeFilter(cur, bound)
	}
	if cur == nil {
		cur = &oneRow{}
		cur = takeFilter(cur, bound)
	}
	// Anything left references undeclared-but-non-outer variables, which
	// Validate already rejected; keep a belt-and-braces filter anyway.
	cur = takeFilter(cur, declared)
	cur = &Project{Child: cur, Refs: q.Select, Env: env}
	return &Distinct{Child: cur}, nil
}

// EvalStats summarizes one evaluation for the metrics snapshot.
type EvalStats struct {
	Scanned int64 // tuples read out of the virtual relations
	Emitted int64 // distinct result rows produced
}

// Eval compiles and runs the operator pipeline for one node, returning
// the projected distinct result table — the drop-in replacement for
// nodequery.EvalEnv.
func Eval(q *nodequery.Query, db *relmodel.DB, env map[string]string) (*nodequery.Table, EvalStats, error) {
	root, err := Compile(q, env)
	if err != nil {
		return nil, EvalStats{}, err
	}
	t, err := Run(root, db)
	if err != nil {
		return nil, EvalStats{}, err
	}
	return t, collectStats(root), nil
}

func collectStats(root Op) EvalStats {
	st := EvalStats{Emitted: root.Emitted()}
	var walk func(op Op)
	walk = func(op Op) {
		if sc, ok := op.(*Scan); ok {
			st.Scanned += sc.Emitted()
		}
		for _, k := range op.Kids() {
			walk(k)
		}
	}
	walk(root)
	return st
}

// flattenAnd splits a predicate into its top-level conjuncts.
func flattenAnd(p *nodequery.Pred) []*nodequery.Pred {
	if p == nil || p.Kind == nodequery.True {
		return nil
	}
	if p.Kind == nodequery.And {
		var out []*nodequery.Pred
		for _, k := range p.Kids {
			out = append(out, flattenAnd(k)...)
		}
		return out
	}
	return []*nodequery.Pred{p}
}

// localVars collects the declared variables a predicate references;
// outer (environment) references are constants and don't count.
func localVars(p *nodequery.Pred, declared map[string]bool) map[string]bool {
	out := make(map[string]bool)
	var walk func(p *nodequery.Pred)
	walk = func(p *nodequery.Pred) {
		if p == nil {
			return
		}
		if p.Kind == nodequery.Cmp {
			for _, o := range []nodequery.Operand{p.Left, p.Right} {
				if o.IsCol && declared[o.Col.Var] {
					out[o.Col.Var] = true
				}
			}
			return
		}
		for _, k := range p.Kids {
			walk(k)
		}
	}
	walk(p)
	return out
}

func subset(a, b map[string]bool) bool {
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// evalPredRow evaluates a predicate over one pipeline row, mirroring
// nodequery's evaluator value for value (Contains is case-insensitive
// substring; ordered comparisons go numeric when both sides parse).
func evalPredRow(p *nodequery.Pred, idx map[string]int, row []string, env map[string]string) (bool, error) {
	if p == nil {
		return true, nil
	}
	switch p.Kind {
	case nodequery.True:
		return true, nil
	case nodequery.And:
		for _, k := range p.Kids {
			ok, err := evalPredRow(k, idx, row, env)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case nodequery.Or:
		for _, k := range p.Kids {
			ok, err := evalPredRow(k, idx, row, env)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case nodequery.Not:
		ok, err := evalPredRow(p.Kids[0], idx, row, env)
		return !ok, err
	case nodequery.Cmp:
		left, err := rowVal(p.Left, idx, row, env)
		if err != nil {
			return false, err
		}
		right, err := rowVal(p.Right, idx, row, env)
		if err != nil {
			return false, err
		}
		switch p.Op {
		case nodequery.Contains:
			return strings.Contains(strings.ToLower(left), strings.ToLower(right)), nil
		case nodequery.NotContains:
			return !strings.Contains(strings.ToLower(left), strings.ToLower(right)), nil
		}
		c := nodequery.CompareVals(left, right)
		switch p.Op {
		case nodequery.Eq:
			return c == 0, nil
		case nodequery.Ne:
			return c != 0, nil
		case nodequery.Lt:
			return c < 0, nil
		case nodequery.Le:
			return c <= 0, nil
		case nodequery.Gt:
			return c > 0, nil
		case nodequery.Ge:
			return c >= 0, nil
		}
		return false, fmt.Errorf("plan: unknown comparison operator %d", p.Op)
	}
	return false, fmt.Errorf("plan: unknown predicate kind %d", p.Kind)
}

func rowVal(o nodequery.Operand, idx map[string]int, row []string, env map[string]string) (string, error) {
	if !o.IsCol {
		return o.Lit, nil
	}
	name := o.Col.String()
	if i, ok := idx[name]; ok {
		return row[i], nil
	}
	if v, ok := env[name]; ok {
		return v, nil
	}
	return "", fmt.Errorf("plan: unbound column %s", name)
}
