package plan

import (
	"reflect"
	"strings"
	"testing"

	"webdis/internal/index"
	"webdis/internal/nodequery"
	"webdis/internal/relmodel"
)

// scanOracle is a reference TextOracle built the way the store builds
// its index: tokens of the lower-cased column value, deciding exactly
// the [a-z0-9]{2,} literal class by substring-of-token matching.
type scanOracle struct {
	cols    map[string][]string // col → tokens
	decided int
}

func newScanOracle(db *relmodel.DB) *scanOracle {
	doc := db.Document.Tuples[0]
	return &scanOracle{cols: map[string][]string{
		"title": index.Tokenize(strings.ToLower(doc[1])),
		"text":  index.Tokenize(strings.ToLower(doc[2])),
	}}
}

func (o *scanOracle) MatchContains(col, lit string) (bool, bool) {
	toks, ok := o.cols[col]
	if !ok {
		return false, false
	}
	lower := strings.ToLower(lit)
	if len(lower) < 2 {
		return false, false
	}
	for i := 0; i < len(lower); i++ {
		c := lower[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false, false
		}
	}
	o.decided++
	for _, t := range toks {
		if strings.Contains(t, lower) {
			return true, true
		}
	}
	return false, true
}

// TestOracleFoldingDifferential: with the oracle attached, every query's
// answer must stay identical to the plain evaluation — decided-true,
// decided-false (empty stream), undecided fallback, negation, and
// predicates the folder must not touch (Or trees, column operands,
// non-document variables).
func TestOracleFoldingDifferential(t *testing.T) {
	col := nodequery.ColOperand
	lit := nodequery.LitOperand
	dsel := []nodequery.ColRef{{Var: "d", Col: "url"}}
	dvar := []nodequery.VarDecl{{Name: "d", Rel: "document"}}
	queries := []*nodequery.Query{
		{Vars: dvar, Select: dsel, // decided true
			Where: nodequery.Compare(col("d", "text"), nodequery.Contains, lit("marker"))},
		{Vars: dvar, Select: dsel, // decided true, mixed case literal
			Where: nodequery.Compare(col("d", "text"), nodequery.Contains, lit("MarKer"))},
		{Vars: dvar, Select: dsel, // decided false: empty stream
			Where: nodequery.Compare(col("d", "text"), nodequery.Contains, lit("absentterm"))},
		{Vars: dvar, Select: dsel, // not contains, decided
			Where: nodequery.Compare(col("d", "text"), nodequery.NotContains, lit("absentterm"))},
		{Vars: dvar, Select: dsel, // title column
			Where: nodequery.Compare(col("d", "title"), nodequery.Contains, lit("planner"))},
		{Vars: dvar, Select: dsel, // undecided: phrase with a space
			Where: nodequery.Compare(col("d", "text"), nodequery.Contains, lit("section one"))},
		{Vars: dvar, Select: dsel, // undecided: single char
			Where: nodequery.Compare(col("d", "text"), nodequery.Contains, lit("m"))},
		{Vars: dvar, Select: dsel, // conjunction: one folds, one stays
			Where: nodequery.Conj(
				nodequery.Compare(col("d", "text"), nodequery.Contains, lit("marker")),
				nodequery.Compare(col("d", "length"), nodequery.Gt, lit("1")))},
		{Vars: dvar, Select: dsel, // Or tree: folder must not touch it
			Where: &nodequery.Pred{Kind: nodequery.Or, Kids: []*nodequery.Pred{
				nodequery.Compare(col("d", "text"), nodequery.Contains, lit("absentterm")),
				nodequery.Compare(col("d", "title"), nodequery.Contains, lit("planner")),
			}}},
		{ // non-document variable with a text column: not foldable
			Vars:   []nodequery.VarDecl{{Name: "r", Rel: "relinfon"}},
			Where:  nodequery.Compare(col("r", "text"), nodequery.Contains, lit("marker")),
			Select: []nodequery.ColRef{{Var: "r", Col: "url"}},
		},
		{ // column-to-column contains: not foldable
			Vars:   dvar,
			Where:  nodequery.Compare(col("d", "text"), nodequery.Contains, col("d", "title")),
			Select: dsel,
		},
	}
	for _, q := range queries {
		plain := testDB(t)
		want, _, err := Eval(q, plain, nil)
		if err != nil {
			t.Fatalf("plain Eval(%s): %v", q, err)
		}
		withIx := testDB(t)
		withIx.Text = newScanOracle(withIx)
		got, _, err := Eval(q, withIx, nil)
		if err != nil {
			t.Fatalf("oracle Eval(%s): %v", q, err)
		}
		if !reflect.DeepEqual(sorted(got.Rows), sorted(want.Rows)) {
			t.Fatalf("%s:\n oracle %v\n plain  %v", q, sorted(got.Rows), sorted(want.Rows))
		}
	}
}

// TestFoldSkipsChildOnDecidedFalse pins the short-circuit: a decided-
// false conjunct must not pull (scan) the child at all.
func TestFoldSkipsChildOnDecidedFalse(t *testing.T) {
	db := testDB(t)
	oracle := newScanOracle(db)
	db.Text = oracle
	q := &nodequery.Query{
		Vars:   []nodequery.VarDecl{{Name: "d", Rel: "document"}},
		Where:  nodequery.Compare(nodequery.ColOperand("d", "text"), nodequery.Contains, nodequery.LitOperand("absentterm")),
		Select: []nodequery.ColRef{{Var: "d", Col: "url"}},
	}
	_, stats, err := Eval(q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scanned != 0 {
		t.Fatalf("decided-false filter scanned %d tuples, want 0", stats.Scanned)
	}
	if oracle.decided == 0 {
		t.Fatal("oracle was never consulted")
	}
}
