package plan

import (
	"strings"

	"webdis/internal/nodequery"
	"webdis/internal/relmodel"
)

// Text-index constant folding. A node's DB carries one document tuple,
// so a contains-predicate over a document variable's text or title
// column has one truth value for the whole evaluation. When the DB
// carries a TextOracle (the persistent store's posting-list index),
// Filter.Open asks it once per such conjunct instead of scanning the
// text per row: a decided-true conjunct is dropped from the residual
// predicate, a decided-false one short-circuits the filter to an empty
// stream without pulling the child at all. Undecided conjuncts (literal
// outside the index's exact class, non-document variable, column-to-
// column comparison) stay in the residual and full-scan as before, so a
// nil or declining oracle is behaviourally invisible.

// docScanVars collects the variables bound by document Scans in the
// subtree — the only variables whose text/title a per-document oracle
// can speak for.
func docScanVars(op Op) map[string]bool {
	out := make(map[string]bool)
	var walk func(Op)
	walk = func(o Op) {
		if sc, ok := o.(*Scan); ok && strings.ToLower(sc.Rel) == relmodel.RelDocument {
			out[sc.Var] = true
		}
		for _, k := range o.Kids() {
			walk(k)
		}
	}
	walk(op)
	return out
}

// foldTextIndex resolves the oracle-decidable conjuncts of p. It returns
// the residual predicate and whether a decided conjunct is false (the
// filter passes nothing).
func foldTextIndex(p *nodequery.Pred, docVars map[string]bool, ix relmodel.TextOracle) (*nodequery.Pred, bool) {
	conjs := flattenAnd(p)
	kept := make([]*nodequery.Pred, 0, len(conjs))
	for _, c := range conjs {
		if hit, decided := foldOne(c, docVars, ix); decided {
			if !hit {
				return nil, true
			}
			continue // decided true: drop from the residual
		}
		kept = append(kept, c)
	}
	if len(kept) == len(conjs) {
		return p, false // nothing folded; keep the original shape
	}
	if len(kept) == 0 {
		return nil, false
	}
	return nodequery.Conj(kept...), false
}

func foldOne(c *nodequery.Pred, docVars map[string]bool, ix relmodel.TextOracle) (value, decided bool) {
	if c.Kind != nodequery.Cmp || (c.Op != nodequery.Contains && c.Op != nodequery.NotContains) {
		return false, false
	}
	if !c.Left.IsCol || c.Right.IsCol || !docVars[c.Left.Col.Var] {
		return false, false
	}
	col := strings.ToLower(c.Left.Col.Col)
	if col != "text" && col != "title" {
		return false, false
	}
	hit, decided := ix.MatchContains(col, c.Right.Lit)
	if !decided {
		return false, false
	}
	if c.Op == nodequery.NotContains {
		hit = !hit
	}
	return hit, true
}
