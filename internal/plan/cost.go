package plan

// The ship-query-vs-ship-data decision (paper Section 6 discussion,
// DXQ-style): forwarding a clone to a remote site costs roughly the
// serialized clone; pulling the target documents to the current site
// and evaluating locally costs the documents themselves. Sites learn
// each other's document sizes from SiteStat records piggybacked on
// result frames and re-attached to later clones as hints, so the first
// query over an edge defaults to ship-query (the paper's behaviour) and
// later ones switch when data is demonstrably cheaper.

// EstimateCloneBytes sizes a serialized clone message: a fixed frame
// overhead, the encoded stages (PREs + node-queries), the environment
// entries and the destination list. The constants are calibrated
// against gob-encoded CloneMsg sizes on the campus workload; the model
// only needs to be right within a small factor because document pulls
// are either much cheaper (stub pages) or much more expensive (full
// text) than a clone.
func EstimateCloneBytes(stages, envBytes, dests int) int64 {
	return int64(256 + 128*stages + envBytes + 64*dests)
}

// ChooseShipData reports whether pulling the edge's target documents
// (dests of them, avgDocBytes each, scaled by bias) is estimated
// cheaper than forwarding a clone of cloneBytes. bias > 1 makes the
// planner more conservative about shipping data; bias <= 0 means 1.
func ChooseShipData(dests int, avgDocBytes, cloneBytes int64, bias float64) bool {
	if dests <= 0 || avgDocBytes <= 0 {
		return false
	}
	if bias <= 0 {
		bias = 1
	}
	return float64(dests)*float64(avgDocBytes)*bias < float64(cloneBytes)
}
