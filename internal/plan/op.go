// Package plan implements the volcano/iterator operator pipeline that
// evaluates node-queries at a site — scan over the virtual relations,
// filter, project, hash-join, hash-aggregate, order-by, limit — and the
// cost-based distributed planner built on top of it: partial-aggregate
// and top-K pushdown into cloned web-queries (wire.PlanFrag), and the
// per-edge ship-query-vs-ship-data decision driven by site statistics
// piggybacked on result frames (wire.SiteStat).
//
// The pipeline replaces nodequery's nested-loop matcher as the
// site-local evaluator (nodeproc.Step calls Eval). It is observationally
// identical to nodequery.EvalEnv — every value comparison goes through
// nodequery.CompareVals/CanonVal so numeric-vs-string coercions agree —
// which the differential tests pin.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"webdis/internal/nodequery"
	"webdis/internal/relmodel"
)

// Op is one node of a volcano operator tree. Open binds the tree to one
// node's virtual relations, Next pulls one row at a time (ok=false at
// end of stream), Close releases state. Cols names the output columns
// in "var.col" form; Kids and Describe drive Explain; Emitted counts
// rows produced, feeding the per-operator statistics snapshot.
type Op interface {
	Open(db *relmodel.DB) error
	Next() (row []string, ok bool, err error)
	Close()
	Cols() []string
	Kids() []Op
	Describe() string
	Emitted() int64
}

// emitted is the row counter every operator embeds.
type emitted struct{ n int64 }

func (e *emitted) Emitted() int64 { return e.n }

// Scan streams the tuples of one virtual relation, binding them to a
// declared variable name.
type Scan struct {
	Rel string // document, anchor or relinfon
	Var string
	emitted
	tuples []relmodel.Tuple
	pos    int
}

func (s *Scan) Cols() []string {
	schema := relmodel.Schemas[strings.ToLower(s.Rel)]
	cols := make([]string, len(schema))
	for i, c := range schema {
		cols[i] = s.Var + "." + c
	}
	return cols
}

func (s *Scan) Open(db *relmodel.DB) error {
	rel, err := db.Relation(s.Rel)
	if err != nil {
		return err
	}
	s.tuples, s.pos, s.n = rel.Tuples, 0, 0
	return nil
}

func (s *Scan) Next() ([]string, bool, error) {
	if s.pos >= len(s.tuples) {
		return nil, false, nil
	}
	row := []string(s.tuples[s.pos])
	s.pos++
	s.n++
	return row, true, nil
}

func (s *Scan) Close()           { s.tuples = nil }
func (s *Scan) Kids() []Op       { return nil }
func (s *Scan) Describe() string { return fmt.Sprintf("scan %s as %s", s.Rel, s.Var) }

// Filter passes rows satisfying a predicate. Column references resolve
// against the child's columns first, then the outer environment (the
// correlated-stage values carried by the clone).
type Filter struct {
	Child Op
	Pred  *nodequery.Pred
	Env   map[string]string
	emitted
	idx map[string]int
	// residual is Pred minus the conjuncts the DB's text oracle decided
	// at Open (see textfold.go); never short-circuits the stream when a
	// decided conjunct is false.
	residual *nodequery.Pred
	never    bool
}

func (f *Filter) Cols() []string { return f.Child.Cols() }

func (f *Filter) Open(db *relmodel.DB) error {
	f.idx, f.n = colIndex(f.Child.Cols()), 0
	f.residual, f.never = f.Pred, false
	if db.Text != nil {
		f.residual, f.never = foldTextIndex(f.Pred, docScanVars(f.Child), db.Text)
	}
	return f.Child.Open(db)
}

func (f *Filter) Next() ([]string, bool, error) {
	if f.never {
		return nil, false, nil
	}
	for {
		row, ok, err := f.Child.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		pass, err := evalPredRow(f.residual, f.idx, row, f.Env)
		if err != nil {
			return nil, false, err
		}
		if pass {
			f.n++
			return row, true, nil
		}
	}
}

func (f *Filter) Close()           { f.Child.Close() }
func (f *Filter) Kids() []Op       { return []Op{f.Child} }
func (f *Filter) Describe() string { return "filter " + f.Pred.String() }

// HashJoin equi-joins two inputs: the right side is built into a hash
// table at Open, the left side probes it row by row. Keys hash through
// nodequery.CanonVal so numeric equality ("1" = "1.0") matches the
// comparison predicates exactly.
type HashJoin struct {
	Left, Right         Op
	LeftKeys, RightKeys []nodequery.ColRef // parallel, len ≥ 1
	emitted
	table   map[string][][]string
	cur     []string
	matches [][]string
	mi      int
	lidx    []int
}

func (j *HashJoin) Cols() []string {
	return append(append([]string{}, j.Left.Cols()...), j.Right.Cols()...)
}

func (j *HashJoin) Open(db *relmodel.DB) error {
	j.n, j.cur, j.matches, j.mi = 0, nil, nil, 0
	if err := j.Left.Open(db); err != nil {
		return err
	}
	if err := j.Right.Open(db); err != nil {
		return err
	}
	var err error
	if j.lidx, err = keyIndexes(j.LeftKeys, j.Left.Cols()); err != nil {
		return err
	}
	ridx, err := keyIndexes(j.RightKeys, j.Right.Cols())
	if err != nil {
		return err
	}
	j.table = make(map[string][][]string)
	for {
		row, ok, err := j.Right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := hashKey(row, ridx)
		j.table[k] = append(j.table[k], row)
	}
	return nil
}

func (j *HashJoin) Next() ([]string, bool, error) {
	for {
		if j.mi < len(j.matches) {
			right := j.matches[j.mi]
			j.mi++
			out := make([]string, 0, len(j.cur)+len(right))
			out = append(append(out, j.cur...), right...)
			j.n++
			return out, true, nil
		}
		row, ok, err := j.Left.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		j.cur = row
		j.matches = j.table[hashKey(row, j.lidx)]
		j.mi = 0
	}
}

func (j *HashJoin) Close()     { j.Left.Close(); j.Right.Close(); j.table = nil }
func (j *HashJoin) Kids() []Op { return []Op{j.Left, j.Right} }

func (j *HashJoin) Describe() string {
	parts := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		parts[i] = j.LeftKeys[i].String() + " = " + j.RightKeys[i].String()
	}
	return "hash-join on " + strings.Join(parts, ", ")
}

// NestLoop is the fallback cross product for variable pairs with no
// equi-join conjunct; residual predicates sit in a Filter above it.
type NestLoop struct {
	Left, Right Op
	emitted
	cur   []string
	right [][]string
	ri    int
}

func (j *NestLoop) Cols() []string {
	return append(append([]string{}, j.Left.Cols()...), j.Right.Cols()...)
}

func (j *NestLoop) Open(db *relmodel.DB) error {
	j.n, j.cur, j.right, j.ri = 0, nil, nil, 0
	if err := j.Left.Open(db); err != nil {
		return err
	}
	if err := j.Right.Open(db); err != nil {
		return err
	}
	for {
		row, ok, err := j.Right.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		j.right = append(j.right, row)
	}
	j.ri = len(j.right) // force a left pull first
	return nil
}

func (j *NestLoop) Next() ([]string, bool, error) {
	for {
		if j.cur != nil && j.ri < len(j.right) {
			r := j.right[j.ri]
			j.ri++
			out := make([]string, 0, len(j.cur)+len(r))
			out = append(append(out, j.cur...), r...)
			j.n++
			return out, true, nil
		}
		row, ok, err := j.Left.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		j.cur, j.ri = row, 0
	}
}

func (j *NestLoop) Close()           { j.Left.Close(); j.Right.Close(); j.right = nil }
func (j *NestLoop) Kids() []Op       { return []Op{j.Left, j.Right} }
func (j *NestLoop) Describe() string { return "nest-loop product" }

// Project maps rows to the select list. References missing from the
// child resolve against the outer environment (constant per node).
type Project struct {
	Child Op
	Refs  []nodequery.ColRef
	Env   map[string]string
	emitted
	idx []int // position in child row, or -1 = env constant
	env []string
}

func (p *Project) Cols() []string {
	cols := make([]string, len(p.Refs))
	for i, r := range p.Refs {
		cols[i] = r.String()
	}
	return cols
}

func (p *Project) Open(db *relmodel.DB) error {
	if err := p.Child.Open(db); err != nil {
		return err
	}
	p.n = 0
	idx := colIndex(p.Child.Cols())
	p.idx = make([]int, len(p.Refs))
	p.env = make([]string, len(p.Refs))
	for i, r := range p.Refs {
		if j, ok := idx[r.String()]; ok {
			p.idx[i] = j
			continue
		}
		v, ok := p.Env[r.String()]
		if !ok {
			return fmt.Errorf("plan: unbound column %s", r)
		}
		p.idx[i], p.env[i] = -1, v
	}
	return nil
}

func (p *Project) Next() ([]string, bool, error) {
	row, ok, err := p.Child.Next()
	if !ok || err != nil {
		return nil, false, err
	}
	out := make([]string, len(p.Refs))
	for i, j := range p.idx {
		if j < 0 {
			out[i] = p.env[i]
		} else {
			out[i] = row[j]
		}
	}
	p.n++
	return out, true, nil
}

func (p *Project) Close()           { p.Child.Close() }
func (p *Project) Kids() []Op       { return []Op{p.Child} }
func (p *Project) Describe() string { return "project [" + strings.Join(p.Cols(), ", ") + "]" }

// Distinct passes each row once (byte equality, first occurrence),
// matching nodequery's final distinct projection.
type Distinct struct {
	Child Op
	emitted
	seen map[string]bool
}

func (d *Distinct) Cols() []string { return d.Child.Cols() }

func (d *Distinct) Open(db *relmodel.DB) error {
	d.seen, d.n = make(map[string]bool), 0
	return d.Child.Open(db)
}

func (d *Distinct) Next() ([]string, bool, error) {
	for {
		row, ok, err := d.Child.Next()
		if !ok || err != nil {
			return nil, false, err
		}
		k := strings.Join(row, "\x00")
		if d.seen[k] {
			continue
		}
		d.seen[k] = true
		d.n++
		return row, true, nil
	}
}

func (d *Distinct) Close()           { d.Child.Close(); d.seen = nil }
func (d *Distinct) Kids() []Op       { return []Op{d.Child} }
func (d *Distinct) Describe() string { return "distinct" }

// HashAgg folds its input into groups per an OutputSpec at Open and
// streams the aggregated rows: partial-state rows when Partial (the
// pushdown form a remote site ships), finalized output rows otherwise.
type HashAgg struct {
	Child   Op
	Spec    *nodequery.OutputSpec
	Env     map[string]string
	Partial bool
	emitted
	cols []string
	rows [][]string
	pos  int
}

func (h *HashAgg) Cols() []string {
	if h.cols != nil {
		return h.cols
	}
	acc := NewAcc(h.Spec)
	if h.Partial {
		c, _ := acc.PartialTable()
		return c
	}
	c, _ := acc.FinalTable()
	return c
}

func (h *HashAgg) Open(db *relmodel.DB) error {
	if err := h.Child.Open(db); err != nil {
		return err
	}
	h.n, h.pos = 0, 0
	acc := NewAcc(h.Spec)
	cols := h.Child.Cols()
	var rows [][]string
	for {
		row, ok, err := h.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		rows = append(rows, row)
	}
	acc.AddRaw(cols, rows, h.Env)
	if h.Partial {
		h.cols, h.rows = acc.PartialTable()
	} else {
		h.cols, h.rows = acc.FinalTable()
	}
	return nil
}

func (h *HashAgg) Next() ([]string, bool, error) {
	if h.pos >= len(h.rows) {
		return nil, false, nil
	}
	row := h.rows[h.pos]
	h.pos++
	h.n++
	return row, true, nil
}

func (h *HashAgg) Close()     { h.Child.Close(); h.rows = nil }
func (h *HashAgg) Kids() []Op { return []Op{h.Child} }

func (h *HashAgg) Describe() string {
	kind := "hash-agg"
	if h.Partial {
		kind = "partial hash-agg"
	}
	var keys []string
	for _, k := range h.Spec.GroupBy {
		keys = append(keys, k.String())
	}
	return fmt.Sprintf("%s group by [%s] → [%s]", kind, strings.Join(keys, ", "), strings.Join(h.Cols(), ", "))
}

// OrderBy materializes its input at Open and streams it sorted by the
// spec's order keys (nodequery.CompareVals per key, whole-row tiebreak).
type OrderBy struct {
	Child Op
	Keys  []nodequery.OrderKey
	emitted
	rows [][]string
	pos  int
}

func (o *OrderBy) Cols() []string { return o.Child.Cols() }

func (o *OrderBy) Open(db *relmodel.DB) error {
	if err := o.Child.Open(db); err != nil {
		return err
	}
	o.n, o.pos, o.rows = 0, 0, nil
	for {
		row, ok, err := o.Child.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		o.rows = append(o.rows, row)
	}
	idx, desc, err := orderIndexes(o.Keys, o.Child.Cols())
	if err != nil {
		return err
	}
	sortRowsBy(o.rows, idx, desc)
	return nil
}

func (o *OrderBy) Next() ([]string, bool, error) {
	if o.pos >= len(o.rows) {
		return nil, false, nil
	}
	row := o.rows[o.pos]
	o.pos++
	o.n++
	return row, true, nil
}

func (o *OrderBy) Close()     { o.Child.Close(); o.rows = nil }
func (o *OrderBy) Kids() []Op { return []Op{o.Child} }

func (o *OrderBy) Describe() string {
	parts := make([]string, len(o.Keys))
	for i, k := range o.Keys {
		parts[i] = k.String()
	}
	return "order by " + strings.Join(parts, ", ")
}

// Limit stops the stream after N rows.
type Limit struct {
	Child Op
	N     int
	emitted
}

func (l *Limit) Cols() []string { return l.Child.Cols() }

func (l *Limit) Open(db *relmodel.DB) error {
	l.n = 0
	return l.Child.Open(db)
}

func (l *Limit) Next() ([]string, bool, error) {
	if int(l.n) >= l.N {
		return nil, false, nil
	}
	row, ok, err := l.Child.Next()
	if !ok || err != nil {
		return nil, false, err
	}
	l.n++
	return row, true, nil
}

func (l *Limit) Close()           { l.Child.Close() }
func (l *Limit) Kids() []Op       { return []Op{l.Child} }
func (l *Limit) Describe() string { return fmt.Sprintf("limit %d", l.N) }

// oneRow emits a single empty row: the evaluation seed of a node-query
// with no declared variables (the predicate evaluates once).
type oneRow struct {
	emitted
	done bool
}

func (o *oneRow) Cols() []string          { return nil }
func (o *oneRow) Open(*relmodel.DB) error { o.done, o.n = false, 0; return nil }
func (o *oneRow) Close()                  {}
func (o *oneRow) Kids() []Op              { return nil }
func (o *oneRow) Describe() string        { return "one-row" }
func (o *oneRow) Next() ([]string, bool, error) {
	if o.done {
		return nil, false, nil
	}
	o.done = true
	o.n++
	return []string{}, true, nil
}

// Run opens the tree against one node's relations, drains it into a
// result table and closes it.
func Run(root Op, db *relmodel.DB) (*nodequery.Table, error) {
	if err := root.Open(db); err != nil {
		return nil, err
	}
	defer root.Close()
	t := &nodequery.Table{Cols: root.Cols()}
	if t.Cols == nil {
		t.Cols = []string{}
	}
	for {
		row, ok, err := root.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// --- shared row machinery ---

func colIndex(cols []string) map[string]int {
	m := make(map[string]int, len(cols))
	for i, c := range cols {
		if _, dup := m[c]; !dup { // first binding wins, like nested-loop scoping
			m[c] = i
		}
	}
	return m
}

func keyIndexes(keys []nodequery.ColRef, cols []string) ([]int, error) {
	idx := colIndex(cols)
	out := make([]int, len(keys))
	for i, k := range keys {
		j, ok := idx[k.String()]
		if !ok {
			return nil, fmt.Errorf("plan: join key %s not in input [%s]", k, strings.Join(cols, ", "))
		}
		out[i] = j
	}
	return out, nil
}

func hashKey(row []string, idx []int) string {
	parts := make([]string, len(idx))
	for i, j := range idx {
		parts[i] = nodequery.CanonVal(row[j])
	}
	return strings.Join(parts, "\x00")
}

// orderIndexes resolves order keys by their rendered name against cols.
func orderIndexes(keys []nodequery.OrderKey, cols []string) ([]int, []bool, error) {
	idx := colIndex(cols)
	pos := make([]int, len(keys))
	desc := make([]bool, len(keys))
	for i, k := range keys {
		j, ok := idx[k.Col.String()]
		if !ok {
			return nil, nil, fmt.Errorf("plan: order key %s not in input [%s]", k.Col, strings.Join(cols, ", "))
		}
		pos[i], desc[i] = j, k.Desc
	}
	return pos, desc, nil
}

// sortRowsBy orders rows by the key columns (CompareVals semantics,
// desc per key) with the whole row as the final tiebreak, so equal-key
// rows still land in one deterministic order everywhere.
func sortRowsBy(rows [][]string, idx []int, desc []bool) {
	sort.SliceStable(rows, func(a, b int) bool {
		ra, rb := rows[a], rows[b]
		for i, j := range idx {
			c := nodequery.CompareVals(ra[j], rb[j])
			if c == 0 {
				continue
			}
			if desc[i] {
				return c > 0
			}
			return c < 0
		}
		return lessRows(ra, rb)
	})
}

func lessRows(a, b []string) bool {
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}

// SortLimit applies an output spec's ordering and limit to finished
// rows whose order keys are plain columns of cols (the non-grouped
// final-stage case; validation guarantees resolvability). With no
// order keys it sorts lexicographically — the classic deterministic
// display order — before limiting.
func SortLimit(rows [][]string, cols []string, spec *nodequery.OutputSpec) [][]string {
	if spec == nil || len(spec.OrderBy) == 0 {
		nodequery.SortRows(rows)
	} else if idx, desc, err := orderIndexes(spec.OrderBy, cols); err == nil {
		sortRowsBy(rows, idx, desc)
	} else {
		nodequery.SortRows(rows)
	}
	if spec != nil && spec.Limit > 0 && len(rows) > spec.Limit {
		rows = rows[:spec.Limit]
	}
	return rows
}
