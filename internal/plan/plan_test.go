package plan

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"webdis/internal/htmlx"
	"webdis/internal/nodequery"
	"webdis/internal/relmodel"
)

// testPage has enough structure to exercise every operator: several
// anchors (G and L types, duplicate labels for join fan-out), numeric
// text, and an hr-delimited relinfon.
const testPage = `<html><head><title>Planner Test Page 42</title></head>
<body>
<a href="http://a.example/">alpha</a>
<a href="http://b.example/">beta</a>
<a href="local.html">alpha</a>
<a href="other.html">gamma</a>
Section one mentions budget 17 and MARKER tokens.
<hr>
Section two repeats MARKER once more, total 3.
</body></html>`

func testDB(t testing.TB) *relmodel.DB {
	t.Helper()
	doc, err := htmlx.Parse("http://site.example/page.html", []byte(testPage))
	if err != nil {
		t.Fatal(err)
	}
	return relmodel.Build(doc)
}

func sorted(rows [][]string) [][]string {
	out := append([][]string{}, rows...)
	nodequery.SortRows(out)
	return out
}

// runBoth evaluates one node-query through the operator pipeline and
// through the reference nested-loop evaluator and requires identical
// columns and (sorted) row sets.
func runBoth(t *testing.T, q *nodequery.Query, db *relmodel.DB, env map[string]string) (*nodequery.Table, EvalStats) {
	t.Helper()
	got, stats, err := Eval(q, db, env)
	if err != nil {
		t.Fatalf("plan.Eval(%s): %v", q, err)
	}
	want, err := nodequery.EvalEnv(q, db, env)
	if err != nil {
		t.Fatalf("nodequery.EvalEnv(%s): %v", q, err)
	}
	if !reflect.DeepEqual(got.Cols, want.Cols) {
		t.Fatalf("%s: cols = %v, want %v", q, got.Cols, want.Cols)
	}
	if !reflect.DeepEqual(sorted(got.Rows), sorted(want.Rows)) {
		t.Fatalf("%s:\n pipeline %v\n nested   %v", q, sorted(got.Rows), sorted(want.Rows))
	}
	if stats.Emitted != int64(len(got.Rows)) {
		t.Fatalf("%s: Emitted = %d, want %d", q, stats.Emitted, len(got.Rows))
	}
	return got, stats
}

func TestEvalMatchesNodequery(t *testing.T) {
	db := testDB(t)
	col := nodequery.ColOperand
	lit := nodequery.LitOperand
	queries := []*nodequery.Query{
		{ // selection pushdown on one variable
			Vars:   []nodequery.VarDecl{{Name: "a", Rel: "anchor"}},
			Where:  nodequery.Compare(col("a", "ltype"), nodequery.Eq, lit("G")),
			Select: []nodequery.ColRef{{Var: "a", Col: "base"}, {Var: "a", Col: "href"}},
		},
		{ // contains is case-insensitive
			Vars:   []nodequery.VarDecl{{Name: "d", Rel: "document"}},
			Where:  nodequery.Compare(col("d", "title"), nodequery.Contains, lit("planner")),
			Select: []nodequery.ColRef{{Var: "d", Col: "url"}},
		},
		{ // numeric comparison on length
			Vars:   []nodequery.VarDecl{{Name: "d", Rel: "document"}},
			Where:  nodequery.Compare(col("d", "length"), nodequery.Gt, lit("10")),
			Select: []nodequery.ColRef{{Var: "d", Col: "url"}, {Var: "d", Col: "length"}},
		},
		{ // two-variable equi-join -> HashJoin (duplicate labels fan out)
			Vars: []nodequery.VarDecl{
				{Name: "a", Rel: "anchor"},
				{Name: "b", Rel: "anchor"},
			},
			Where: nodequery.Conj(
				nodequery.Compare(col("a", "label"), nodequery.Eq, col("b", "label")),
				nodequery.Compare(col("a", "ltype"), nodequery.Eq, lit("G")),
			),
			Select: []nodequery.ColRef{{Var: "a", Col: "href"}, {Var: "b", Col: "href"}},
		},
		{ // cross product with residual non-equi predicate -> NestLoop
			Vars: []nodequery.VarDecl{
				{Name: "a", Rel: "anchor"},
				{Name: "b", Rel: "anchor"},
			},
			Where:  nodequery.Compare(col("a", "label"), nodequery.Lt, col("b", "label")),
			Select: []nodequery.ColRef{{Var: "a", Col: "label"}, {Var: "b", Col: "label"}},
		},
		{ // such-that condition joins the conjunct pool
			Vars: []nodequery.VarDecl{
				{Name: "d", Rel: "document"},
				{Name: "r", Rel: "relinfon",
					Cond: nodequery.Compare(col("r", "delimiter"), nodequery.Eq, lit("hr"))},
			},
			Where:  nodequery.Compare(col("r", "text"), nodequery.Contains, lit("marker")),
			Select: []nodequery.ColRef{{Var: "d", Col: "url"}, {Var: "r", Col: "delimiter"}},
		},
		{ // three-way join: document x anchor x relinfon
			Vars: []nodequery.VarDecl{
				{Name: "d", Rel: "document"},
				{Name: "a", Rel: "anchor"},
				{Name: "r", Rel: "relinfon"},
			},
			Where: nodequery.Conj(
				nodequery.Compare(col("a", "base"), nodequery.Eq, col("d", "url")),
				nodequery.Compare(col("r", "url"), nodequery.Eq, col("d", "url")),
			),
			Select: []nodequery.ColRef{{Var: "a", Col: "href"}, {Var: "r", Col: "delimiter"}},
		},
	}
	for _, q := range queries {
		runBoth(t, q, db, nil)
	}
}

func TestEvalOuterEnv(t *testing.T) {
	db := testDB(t)
	q := &nodequery.Query{
		Vars: []nodequery.VarDecl{{Name: "a", Rel: "anchor"}},
		Where: nodequery.Compare(
			nodequery.ColOperand("a", "base"),
			nodequery.Ne,
			nodequery.Operand{IsCol: true, Col: nodequery.ColRef{Var: "d0", Col: "url"}},
		),
		Select: []nodequery.ColRef{{Var: "a", Col: "href"}},
		Outer:  []nodequery.ColRef{{Var: "d0", Col: "url"}},
	}
	env := map[string]string{"d0.url": "http://elsewhere.example/"}
	tbl, _ := runBoth(t, q, db, env)
	if len(tbl.Rows) == 0 {
		t.Fatal("outer-env query produced no rows")
	}
	// Missing env value must error, not silently match.
	if _, _, err := Eval(q, db, nil); err == nil {
		t.Fatal("Eval with missing outer env value: want error")
	}
}

// TestEvalRandomized sweeps generated single- and two-variable queries
// across operators and columns, checking pipeline/nested-loop agreement
// on every one.
func TestEvalRandomized(t *testing.T) {
	db := testDB(t)
	rng := rand.New(rand.NewSource(7))
	rels := []struct {
		rel  string
		cols []string
	}{
		{"document", []string{"url", "title", "text", "length"}},
		{"anchor", []string{"label", "base", "href", "ltype"}},
		{"relinfon", []string{"delimiter", "url", "text", "length"}},
	}
	ops := []nodequery.CmpOp{nodequery.Eq, nodequery.Ne, nodequery.Lt,
		nodequery.Le, nodequery.Gt, nodequery.Ge, nodequery.Contains}
	lits := []string{"", "alpha", "G", "17", "3", "marker", "http://a.example/"}
	for i := 0; i < 300; i++ {
		r1 := rels[rng.Intn(len(rels))]
		q := &nodequery.Query{
			Vars: []nodequery.VarDecl{{Name: "x", Rel: r1.rel}},
		}
		c1 := r1.cols[rng.Intn(len(r1.cols))]
		q.Select = []nodequery.ColRef{{Var: "x", Col: c1}}
		right := nodequery.LitOperand(lits[rng.Intn(len(lits))])
		if rng.Intn(2) == 0 { // sometimes a second variable + join
			r2 := rels[rng.Intn(len(rels))]
			c2 := r2.cols[rng.Intn(len(r2.cols))]
			q.Vars = append(q.Vars, nodequery.VarDecl{Name: "y", Rel: r2.rel})
			q.Select = append(q.Select, nodequery.ColRef{Var: "y", Col: c2})
			if rng.Intn(2) == 0 {
				right = nodequery.ColOperand("y", c2)
			}
		}
		q.Where = nodequery.Compare(
			nodequery.ColOperand("x", c1), ops[rng.Intn(len(ops))], right)
		runBoth(t, q, db, nil)
	}
}

func TestEvalStatsScanned(t *testing.T) {
	db := testDB(t)
	q := &nodequery.Query{
		Vars:   []nodequery.VarDecl{{Name: "a", Rel: "anchor"}},
		Where:  nodequery.Compare(nodequery.ColOperand("a", "ltype"), nodequery.Eq, nodequery.LitOperand("G")),
		Select: []nodequery.ColRef{{Var: "a", Col: "href"}},
	}
	_, stats, err := Eval(q, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	anchors, err := db.Relation("anchor")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Scanned != int64(len(anchors.Tuples)) {
		t.Fatalf("Scanned = %d, want %d", stats.Scanned, len(anchors.Tuples))
	}
	if stats.Emitted >= stats.Scanned {
		t.Fatalf("filter should emit fewer than scanned: %+v", stats)
	}
}

// ---- aggregation accumulator ----

func specCountSum() *nodequery.OutputSpec {
	return &nodequery.OutputSpec{
		Cols: []nodequery.OutputCol{
			{Ref: nodequery.ColRef{Var: "a", Col: "ltype"}},
			{Agg: nodequery.AggCount, Star: true},
			{Agg: nodequery.AggSum, Ref: nodequery.ColRef{Var: "a", Col: "n"}},
			{Agg: nodequery.AggMin, Ref: nodequery.ColRef{Var: "a", Col: "n"}},
			{Agg: nodequery.AggMax, Ref: nodequery.ColRef{Var: "a", Col: "n"}},
		},
		GroupBy: []nodequery.ColRef{{Var: "a", Col: "ltype"}},
	}
}

func randomContribs(rng *rand.Rand, n int) [][][]string {
	var contribs [][][]string
	for i := 0; i < n; i++ {
		rows := make([][]string, rng.Intn(6))
		for j := range rows {
			rows[j] = []string{
				[]string{"G", "L", "I"}[rng.Intn(3)],
				fmt.Sprint(rng.Intn(50)),
			}
		}
		contribs = append(contribs, rows)
	}
	return contribs
}

// TestAccPartialEquivalence is the pushdown soundness property: folding
// every contribution raw at the user-site must equal folding each
// contribution to partial state remotely (ApplyFrag-style) and
// combining the partials — for any split of the rows.
func TestAccPartialEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cols := []string{"a.ltype", "a.n"}
	for trial := 0; trial < 100; trial++ {
		spec := specCountSum()
		contribs := randomContribs(rng, 1+rng.Intn(5))

		raw := NewAcc(spec)
		mixed := NewAcc(spec)
		for i, rows := range contribs {
			raw.AddRaw(cols, rows, nil)
			if i%2 == 0 { // half the sites ran the pushdown, half did not
				site := NewAcc(spec)
				site.AddRaw(cols, rows, nil)
				_, prows := site.PartialTable()
				mixed.AddPartial(prows)
			} else {
				mixed.AddRaw(cols, rows, nil)
			}
		}
		rc, rr := raw.FinalTable()
		mc, mr := mixed.FinalTable()
		if !reflect.DeepEqual(rc, mc) || !reflect.DeepEqual(rr, mr) {
			t.Fatalf("trial %d: raw %v %v != mixed %v %v", trial, rc, rr, mc, mr)
		}
	}
}

func TestAccScalarZeroState(t *testing.T) {
	spec := &nodequery.OutputSpec{
		Cols: []nodequery.OutputCol{{Agg: nodequery.AggCount, Star: true}},
	}
	cols, rows := NewAcc(spec).FinalTable()
	if len(rows) != 1 || rows[0][0] != "0" {
		t.Fatalf("empty scalar count: cols=%v rows=%v", cols, rows)
	}
}

func TestAccGroupKeyFromEnv(t *testing.T) {
	// Group key exported by an earlier stage: resolves via env, not the
	// table columns.
	spec := &nodequery.OutputSpec{
		Cols: []nodequery.OutputCol{
			{Ref: nodequery.ColRef{Var: "d", Col: "url"}},
			{Agg: nodequery.AggCount, Star: true},
		},
		GroupBy: []nodequery.ColRef{{Var: "d", Col: "url"}},
	}
	acc := NewAcc(spec)
	acc.AddRaw([]string{"a.href"}, [][]string{{"x"}, {"y"}}, map[string]string{"d.url": "http://s1/"})
	acc.AddRaw([]string{"a.href"}, [][]string{{"z"}}, map[string]string{"d.url": "http://s2/"})
	_, rows := acc.FinalTable()
	want := [][]string{{"http://s1/", "2"}, {"http://s2/", "1"}}
	if !reflect.DeepEqual(sorted(rows), want) {
		t.Fatalf("rows = %v, want %v", rows, want)
	}
}

func TestAccOrderAndLimit(t *testing.T) {
	spec := specCountSum()
	spec.OrderBy = []nodequery.OrderKey{
		{Col: nodequery.OutputCol{Agg: nodequery.AggCount, Star: true}, Desc: true},
	}
	spec.Limit = 2
	acc := NewAcc(spec)
	acc.AddRaw([]string{"a.ltype", "a.n"}, [][]string{
		{"G", "1"}, {"G", "2"}, {"G", "3"},
		{"L", "5"}, {"L", "6"},
		{"I", "9"},
	}, nil)
	_, rows := acc.FinalTable()
	if len(rows) != 2 || rows[0][0] != "G" || rows[1][0] != "L" {
		t.Fatalf("rows = %v, want G then L, limit 2", rows)
	}
	if rows[0][1] != "3" || rows[0][2] != "6" || rows[0][3] != "1" || rows[0][4] != "3" {
		t.Fatalf("G aggregates = %v, want count 3 sum 6 min 1 max 3", rows[0])
	}
}

func TestApplyFragGrouped(t *testing.T) {
	spec := specCountSum()
	cols := []string{"a.ltype", "a.n"}
	var rows [][]string
	for i := 0; i < 40; i++ {
		rows = append(rows, []string{[]string{"G", "L"}[i%2], fmt.Sprintf("%d", i)})
	}
	pcols, prows, partial, saved := ApplyFrag(cols, rows, nil, spec)
	if !partial {
		t.Fatal("grouped frag should mark rows partial")
	}
	if len(prows) != 2 {
		t.Fatalf("partial rows = %v, want one per group", prows)
	}
	if saved <= 0 {
		t.Fatalf("saved = %d, want > 0 when folding 40 rows to 2", saved)
	}
	// Round-trip through the client-side fold must equal raw folding.
	viaPartial := NewAcc(spec)
	viaPartial.AddPartial(prows)
	_ = pcols
	viaRaw := NewAcc(spec)
	viaRaw.AddRaw(cols, rows, nil)
	_, r1 := viaPartial.FinalTable()
	_, r2 := viaRaw.FinalTable()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("partial %v != raw %v", r1, r2)
	}
}

func TestApplyFragTopK(t *testing.T) {
	spec := &nodequery.OutputSpec{
		OrderBy: []nodequery.OrderKey{
			{Col: nodequery.OutputCol{Ref: nodequery.ColRef{Var: "d", Col: "length"}}, Desc: true},
		},
		Limit: 2,
	}
	cols := []string{"d.url", "d.length"}
	rows := [][]string{{"a", "10"}, {"b", "400"}, {"c", "30"}, {"d", "2"}}
	_, clipped, partial, saved := ApplyFrag(cols, rows, nil, spec)
	if partial {
		t.Fatal("top-K clip is not partial state")
	}
	if len(clipped) != 2 || clipped[0][0] != "b" || clipped[1][0] != "c" {
		t.Fatalf("clipped = %v, want per-node top-2 by length desc", clipped)
	}
	if saved <= 0 {
		t.Fatalf("saved = %d", saved)
	}
}

// ---- ordering and cost ----

func TestSortLimit(t *testing.T) {
	cols := []string{"d.url", "d.length"}
	spec := &nodequery.OutputSpec{
		OrderBy: []nodequery.OrderKey{
			{Col: nodequery.OutputCol{Ref: nodequery.ColRef{Var: "d", Col: "length"}}, Desc: true},
		},
		Limit: 3,
	}
	rows := [][]string{{"a", "9"}, {"b", "100"}, {"c", "30"}, {"e", "30"}, {"f", "1"}}
	got := SortLimit(rows, cols, spec)
	want := [][]string{{"b", "100"}, {"c", "30"}, {"e", "30"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v (numeric desc, lexicographic tiebreak)", got, want)
	}
	// Nil spec: classic lexicographic order, no limit.
	got = SortLimit([][]string{{"b"}, {"a"}}, []string{"x"}, nil)
	if !reflect.DeepEqual(got, [][]string{{"a"}, {"b"}}) {
		t.Fatalf("nil spec: %v", got)
	}
}

func TestCostModel(t *testing.T) {
	small := EstimateCloneBytes(1, 0, 1)
	big := EstimateCloneBytes(4, 200, 10)
	if small <= 0 || big <= small {
		t.Fatalf("clone bytes: small=%d big=%d", small, big)
	}
	// Cold start (no stats): never ship data.
	if ChooseShipData(3, 0, small, 1) {
		t.Fatal("avgDocBytes=0 must keep query shipping")
	}
	// Tiny docs vs a heavy clone: fetch the data.
	if !ChooseShipData(1, 100, 10_000, 1) {
		t.Fatal("cheap data vs expensive clone should ship data")
	}
	// Huge docs: ship the query.
	if ChooseShipData(2, 1<<20, small, 1) {
		t.Fatal("huge documents must ship the query")
	}
	// Bias scales the data side; non-positive bias means neutral.
	if ChooseShipData(1, 100, 150, 2) != ChooseShipData(1, 200, 150, 1) {
		t.Fatal("bias should scale data cost")
	}
	if ChooseShipData(1, 100, 150, 0) != ChooseShipData(1, 100, 150, 1) {
		t.Fatal("bias<=0 should behave as 1")
	}
}

func TestExplainOperatorTree(t *testing.T) {
	// Compile shapes: join query gets a hash-join, grouped spec shows in
	// the tree via Explain (exercised end-to-end in cmd/webdis).
	db := testDB(t)
	q := &nodequery.Query{
		Vars: []nodequery.VarDecl{
			{Name: "a", Rel: "anchor"},
			{Name: "b", Rel: "anchor"},
		},
		Where:  nodequery.Compare(nodequery.ColOperand("a", "label"), nodequery.Eq, nodequery.ColOperand("b", "label")),
		Select: []nodequery.ColRef{{Var: "a", Col: "href"}},
	}
	root, err := Compile(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	var walk func(op Op)
	walk = func(op Op) {
		if _, ok := op.(*HashJoin); ok {
			found = true
		}
		for _, k := range op.Kids() {
			walk(k)
		}
	}
	walk(root)
	if !found {
		t.Fatalf("equi-join compiled without a HashJoin: %s", strings.TrimSpace(describeAll(root)))
	}
	if _, err := Run(root, db); err != nil {
		t.Fatal(err)
	}
}

func describeAll(op Op) string {
	var b strings.Builder
	var walk func(op Op, d int)
	walk = func(op Op, d int) {
		b.WriteString(strings.Repeat("  ", d) + op.Describe() + "\n")
		for _, k := range op.Kids() {
			walk(k, d+1)
		}
	}
	walk(op, 0)
	return b.String()
}
