package index

import (
	"strings"
	"testing"
	"testing/quick"

	"webdis/internal/webgraph"
)

func TestBuildAndLookupCampus(t *testing.T) {
	ix, err := Build(webgraph.Campus())
	if err != nil {
		t.Fatal(err)
	}
	if ix.Docs() != 15 || ix.Terms() == 0 {
		t.Fatalf("docs=%d terms=%d", ix.Docs(), ix.Terms())
	}
	// Every page carrying "convener" is found.
	hits := ix.URLs("convener", 0)
	if len(hits) != len(webgraph.CampusConveners) {
		t.Fatalf("hits = %v", hits)
	}
	for _, u := range hits {
		if _, ok := webgraph.CampusConveners[u]; !ok {
			t.Errorf("unexpected hit %s", u)
		}
	}
	// Title terms rank their page first.
	top := ix.URLs("laboratories department", 1)
	if len(top) != 1 || top[0] != webgraph.CampusLabs {
		t.Errorf("top = %v", top)
	}
}

func TestLookupConjunctive(t *testing.T) {
	ix, err := Build(webgraph.Campus())
	if err != nil {
		t.Fatal(err)
	}
	// "database" and "haritsa" co-occur only on the DSL people page.
	hits := ix.URLs("database haritsa", 0)
	if len(hits) != 1 || !strings.Contains(hits[0], "dsl.serc") {
		t.Errorf("hits = %v", hits)
	}
	if got := ix.URLs("convener nosuchtoken", 0); len(got) != 0 {
		t.Errorf("missing term should empty the result: %v", got)
	}
	if got := ix.URLs("", 0); len(got) != 0 {
		t.Errorf("empty query: %v", got)
	}
}

func TestLookupLimit(t *testing.T) {
	ix, err := Build(webgraph.Campus())
	if err != nil {
		t.Fatal(err)
	}
	all := ix.Lookup("the", 0) // filler words are everywhere
	if len(all) < 3 {
		t.Skip("corpus lacks the common token")
	}
	if got := ix.Lookup("the", 2); len(got) != 2 {
		t.Errorf("limit ignored: %d", len(got))
	}
	// Scores are non-increasing.
	for i := 1; i < len(all); i++ {
		if all[i].Score > all[i-1].Score {
			t.Errorf("ranking broken at %d: %+v", i, all[i-1:i+1])
		}
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("The CONVENER: Prof. Y.N. Srikant (room 2)")
	want := []string{"the", "convener", "prof", "srikant", "room"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
}

func TestTokenizeEdgeCases(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"   \t\n  ", nil},
		{"!!!...---", nil},                      // punctuation only
		{"a b c x", nil},                        // every run shorter than 2
		{"a1 b2", []string{"a1", "b2"}},         // mixed alnum runs survive
		{"don't stop", []string{"don", "stop"}}, // apostrophe splits
		{"foo--bar..baz", []string{"foo", "bar", "baz"}},
		{"Ünïcödé naïve", []string{"na", "ve"}}, // non-ASCII delimits, never folds
		{"日本語テキスト", nil},                        // fully non-ASCII
		{"C3PO and R2D2!", []string{"c3po", "and", "r2d2"}},
		{"trailing token", []string{"trailing", "token"}},
		{"2026", []string{"2026"}}, // digits alone
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestLookupLimitEdgeCases(t *testing.T) {
	ix, err := Build(webgraph.Campus())
	if err != nil {
		t.Fatal(err)
	}
	all := ix.Lookup("the", 0)
	if len(all) == 0 {
		t.Skip("corpus lacks the common token")
	}
	// A limit past the result length returns everything, unclamped into
	// no panic; negative limits behave like 0 (unlimited).
	if got := ix.Lookup("the", len(all)+100); len(got) != len(all) {
		t.Errorf("oversized limit returned %d of %d", len(got), len(all))
	}
	if got := ix.Lookup("the", -5); len(got) != len(all) {
		t.Errorf("negative limit returned %d of %d, want all", len(got), len(all))
	}
	if got := ix.Lookup("the", 1); len(got) != 1 {
		t.Errorf("limit 1 returned %d", len(got))
	}
	// Unknown terms: alone, and mixed with a common one.
	if got := ix.Lookup("zzqqunknownzz", 0); got != nil {
		t.Errorf("unknown term returned %v", got)
	}
	if got := ix.Lookup("the zzqqunknownzz", 5); got != nil {
		t.Errorf("conjunction with unknown term returned %v", got)
	}
	// Queries that tokenize to nothing.
	for _, q := range []string{"", "  ", "!?!", "a b"} {
		if got := ix.Lookup(q, 3); got != nil {
			t.Errorf("Lookup(%q) = %v, want nil", q, got)
		}
	}
}

func TestQuickTokenizeLowercaseAlnum(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if len(tok) < 2 {
				return false
			}
			for _, r := range tok {
				if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9') {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
