// Package index implements a small inverted index over a synthetic web —
// the "existing search-indices" of the paper's Sections 1.1 and 7.1, used
// to obtain a query's StartNodes automatically instead of from the user's
// domain knowledge. DISQL exposes it through the `index("term")` StartNode
// source; the user-site resolves the term against the index and dispatches
// the query to the matching documents' sites.
//
// The index is deliberately 1999-grade: case-folded alphanumeric tokens
// from the title and body text, documents ranked by term frequency with a
// title boost. It indexes rendered pages, so it sees exactly what the
// engine's Database Constructor sees.
package index

import (
	"sort"
	"strings"

	"webdis/internal/htmlx"
	"webdis/internal/webgraph"
)

// Index is an inverted index from token to posting list.
type Index struct {
	postings map[string][]Posting
	docs     int
}

// Posting scores one document for one token.
type Posting struct {
	URL   string
	Score int // occurrences; title hits count tenfold
}

// Build indexes every page of the web.
func Build(web *webgraph.Web) (*Index, error) {
	ix := &Index{postings: make(map[string][]Posting)}
	for _, url := range web.URLs() {
		html, _ := web.HTML(url)
		doc, err := htmlx.Parse(url, html)
		if err != nil {
			return nil, err
		}
		ix.addDocument(url, doc)
	}
	return ix, nil
}

func (ix *Index) addDocument(url string, doc *htmlx.Document) {
	ix.docs++
	scores := make(map[string]int)
	for _, tok := range Tokenize(doc.Title) {
		scores[tok] += 10
	}
	for _, tok := range Tokenize(doc.Text) {
		scores[tok]++
	}
	for tok, n := range scores {
		ix.postings[tok] = append(ix.postings[tok], Posting{URL: url, Score: n})
	}
}

// Docs returns the number of indexed documents.
func (ix *Index) Docs() int { return ix.docs }

// Terms returns the number of distinct tokens.
func (ix *Index) Terms() int { return len(ix.postings) }

// Lookup returns the documents matching every token of the query string,
// best first (summed scores, ties by URL). limit <= 0 returns all.
func (ix *Index) Lookup(query string, limit int) []Posting {
	toks := Tokenize(query)
	if len(toks) == 0 {
		return nil
	}
	acc := make(map[string]int)
	for i, tok := range toks {
		hits := ix.postings[tok]
		if len(hits) == 0 {
			return nil // conjunctive: a missing term empties the result
		}
		next := make(map[string]int, len(hits))
		for _, p := range hits {
			if i == 0 {
				next[p.URL] = p.Score
			} else if prev, ok := acc[p.URL]; ok {
				next[p.URL] = prev + p.Score
			}
		}
		acc = next
		if len(acc) == 0 {
			return nil
		}
	}
	out := make([]Posting, 0, len(acc))
	for url, score := range acc {
		out = append(out, Posting{URL: url, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].URL < out[j].URL
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// URLs returns just the URLs of Lookup's result.
func (ix *Index) URLs(query string, limit int) []string {
	hits := ix.Lookup(query, limit)
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.URL
	}
	return out
}

// Tokenize splits text into lower-cased alphanumeric tokens of length
// at least two.
func Tokenize(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		if b.Len() >= 2 {
			out = append(out, b.String())
		}
		b.Reset()
	}
	for _, r := range text {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r + ('a' - 'A'))
		default:
			flush()
		}
	}
	flush()
	return out
}
