package relmodel

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Tuple codec: the byte encoding the persistent site store (package
// store) writes into its slotted heap pages. One record is one tuple of
// one virtual relation,
//
//	kind byte | ncols uvarint | (len uvarint, bytes)*ncols
//
// where kind names the relation (KindDocument/KindAnchor/KindRelInfon).
// The encoding is self-delimiting, so DecodeTuple reports how many bytes
// it consumed and a page slot can hold the record without a separate
// length field.

// Relation kind bytes of the tuple codec.
const (
	KindDocument byte = 1
	KindAnchor   byte = 2
	KindRelInfon byte = 3
)

// ErrBadTuple reports a malformed tuple encoding (unknown kind byte,
// truncated varint or field, or an absurd column count).
var ErrBadTuple = errors.New("relmodel: malformed tuple encoding")

// maxCodecCols bounds the decoded column count; the widest virtual
// relation has 4 columns, so anything large is corruption, not data.
const maxCodecCols = 64

// RelOfKind returns the relation name of a codec kind byte ("" if
// unknown).
func RelOfKind(k byte) string {
	switch k {
	case KindDocument:
		return RelDocument
	case KindAnchor:
		return RelAnchor
	case KindRelInfon:
		return RelRelInfon
	}
	return ""
}

// AppendTuple appends the encoding of one tuple to dst and returns the
// extended slice.
func AppendTuple(dst []byte, kind byte, t Tuple) []byte {
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, v := range t {
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

// DecodeTuple decodes one tuple from the front of b, returning the
// relation kind, the tuple and the number of bytes consumed. All field
// bytes are copied out of b, so the caller may reuse the buffer (it is
// typically a pinned buffer-pool page).
func DecodeTuple(b []byte) (kind byte, t Tuple, n int, err error) {
	if len(b) == 0 {
		return 0, nil, 0, fmt.Errorf("%w: empty record", ErrBadTuple)
	}
	kind = b[0]
	if RelOfKind(kind) == "" {
		return 0, nil, 0, fmt.Errorf("%w: unknown relation kind %d", ErrBadTuple, kind)
	}
	pos := 1
	ncols, w := binary.Uvarint(b[pos:])
	if w <= 0 || ncols > maxCodecCols {
		return 0, nil, 0, fmt.Errorf("%w: bad column count", ErrBadTuple)
	}
	pos += w
	t = make(Tuple, 0, ncols)
	for i := uint64(0); i < ncols; i++ {
		flen, w := binary.Uvarint(b[pos:])
		if w <= 0 {
			return 0, nil, 0, fmt.Errorf("%w: bad field length", ErrBadTuple)
		}
		pos += w
		if uint64(len(b)-pos) < flen {
			return 0, nil, 0, fmt.Errorf("%w: field overruns record", ErrBadTuple)
		}
		t = append(t, string(b[pos:pos+int(flen)]))
		pos += int(flen)
	}
	return kind, t, pos, nil
}
