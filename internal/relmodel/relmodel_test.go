package relmodel

import (
	"strconv"
	"testing"

	"webdis/internal/htmlx"
)

const page = `<html><head><title>Test Page</title></head><body>
Intro text.
<a href="local.html">Local</a>
<a href="http://other.example/">Other</a>
<a href="#sec">Section</a>
<b>bold infon</b>
before rule<hr>
</body></html>`

func buildDB(t *testing.T) *DB {
	t.Helper()
	doc, err := htmlx.Parse("http://site.example/index.html", []byte(page))
	if err != nil {
		t.Fatal(err)
	}
	return Build(doc)
}

func TestBuildDocumentRelation(t *testing.T) {
	db := buildDB(t)
	if len(db.Document.Tuples) != 1 {
		t.Fatalf("document tuples = %v", db.Document.Tuples)
	}
	tup := db.Document.Tuples[0]
	if tup[db.Document.Col("url")] != "http://site.example/index.html" {
		t.Errorf("url = %q", tup[0])
	}
	if tup[db.Document.Col("title")] != "Test Page" {
		t.Errorf("title = %q", tup[1])
	}
	if n, err := strconv.Atoi(tup[db.Document.Col("length")]); err != nil || n != len(page) {
		t.Errorf("length = %q, want %d", tup[3], len(page))
	}
}

func TestBuildAnchorRelation(t *testing.T) {
	db := buildDB(t)
	if len(db.Anchor.Tuples) != 3 {
		t.Fatalf("anchor tuples = %v", db.Anchor.Tuples)
	}
	types := map[string]int{}
	for _, tup := range db.Anchor.Tuples {
		types[tup[db.Anchor.Col("ltype")]]++
	}
	if types["L"] != 1 || types["G"] != 1 || types["I"] != 1 {
		t.Errorf("ltype histogram = %v", types)
	}
}

func TestBuildRelInfonRelation(t *testing.T) {
	db := buildDB(t)
	var found bool
	for _, tup := range db.RelInfon.Tuples {
		if tup[db.RelInfon.Col("delimiter")] == "hr" {
			found = true
			text := tup[db.RelInfon.Col("text")]
			if n, _ := strconv.Atoi(tup[db.RelInfon.Col("length")]); n != len(text) {
				t.Errorf("length %q inconsistent with text %q", tup[3], text)
			}
			if tup[db.RelInfon.Col("url")] != "http://site.example/index.html" {
				t.Errorf("url = %q", tup[1])
			}
		}
	}
	if !found {
		t.Fatalf("no hr rel-infon: %v", db.RelInfon.Tuples)
	}
}

func TestRelationLookup(t *testing.T) {
	db := buildDB(t)
	for _, name := range []string{"document", "Anchor", "RELINFON"} {
		if _, err := db.Relation(name); err != nil {
			t.Errorf("Relation(%q): %v", name, err)
		}
	}
	if _, err := db.Relation("nosuch"); err == nil {
		t.Error("Relation(nosuch) should fail")
	}
	if db.Document.Col("nosuch") != -1 {
		t.Error("Col(nosuch) should be -1")
	}
}

func TestSize(t *testing.T) {
	db := buildDB(t)
	want := len(db.Document.Tuples) + len(db.Anchor.Tuples) + len(db.RelInfon.Tuples)
	if db.Size() != want {
		t.Errorf("Size = %d, want %d", db.Size(), want)
	}
	if db.Size() < 5 {
		t.Errorf("Size = %d, expected at least 1 doc + 3 anchors + 2 infons", db.Size())
	}
}
