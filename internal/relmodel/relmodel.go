// Package relmodel implements the relational document model of the WEBDIS
// paper (Section 2.2): every web resource is exposed to node-queries as
// tuples of three "virtual" relations,
//
//	DOCUMENT(url, title, text, length)   — one tuple per document
//	ANCHOR(label, base, href, ltype)     — one tuple per hyperlink
//	RELINFON(delimiter, url, text, length) — one tuple per rel-infon
//
// DOCUMENT and ANCHOR follow Mendelzon, Mihaila and Milo's WebSQL model;
// RELINFON is the paper's addition carrying Lakshmanan et al.'s rel-infon
// construct. A query-server materializes these relations in memory for the
// duration of one node-query (the paper's Database Constructor, Section
// 4.4) and purges them afterwards.
package relmodel

import (
	"fmt"
	"strconv"
	"strings"

	"webdis/internal/htmlx"
)

// Relation names.
const (
	RelDocument = "document"
	RelAnchor   = "anchor"
	RelRelInfon = "relinfon"
)

// Schemas of the three virtual relations, keyed by relation name.
var Schemas = map[string][]string{
	RelDocument: {"url", "title", "text", "length"},
	RelAnchor:   {"label", "base", "href", "ltype"},
	RelRelInfon: {"delimiter", "url", "text", "length"},
}

// Tuple is one row of a virtual relation. All attributes are strings; the
// numeric length attributes are rendered in decimal and compared
// numerically by the predicate evaluator when both operands are numeric.
type Tuple []string

// Relation is an in-memory instance of one virtual relation.
type Relation struct {
	Name   string
	Cols   []string
	Tuples []Tuple
}

// Col returns the index of the named column, or -1.
func (r *Relation) Col(name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// TextOracle answers `contains` predicates over a document's text
// columns from an index instead of a full text scan. MatchContains asks
// whether this DB's document tuple satisfies `<col> contains <lit>`
// (case-insensitive substring, exactly the evaluator's semantics).
// decided reports whether the oracle can answer at all; when false the
// evaluator must fall back to scanning the column value, so an oracle is
// always free to decline (unknown column, literal outside the indexed
// alphabet). The persistent site store attaches one per document.
type TextOracle interface {
	MatchContains(col, lit string) (hit, decided bool)
}

// DB is the temporary in-memory database a query-server constructs for one
// node evaluation.
type DB struct {
	Document *Relation
	Anchor   *Relation
	RelInfon *Relation
	// Text, when non-nil, answers contains-predicates over the document
	// tuple's text/title columns from a persisted index (see TextOracle).
	// Purely an accelerator: a nil oracle changes nothing.
	Text TextOracle
}

// Relation returns the named virtual relation, or an error for an unknown
// name.
func (db *DB) Relation(name string) (*Relation, error) {
	switch strings.ToLower(name) {
	case RelDocument:
		return db.Document, nil
	case RelAnchor:
		return db.Anchor, nil
	case RelRelInfon:
		return db.RelInfon, nil
	}
	return nil, fmt.Errorf("relmodel: unknown virtual relation %q", name)
}

// Build is the Database Constructor: a single pass over the analyzed
// document populates all three virtual relations (paper Section 4.4, item
// 5). The caller discards the DB when the node-query finishes.
func Build(doc *htmlx.Document) *DB {
	db := &DB{
		Document: &Relation{Name: RelDocument, Cols: Schemas[RelDocument]},
		Anchor:   &Relation{Name: RelAnchor, Cols: Schemas[RelAnchor]},
		RelInfon: &Relation{Name: RelRelInfon, Cols: Schemas[RelRelInfon]},
	}
	db.Document.Tuples = append(db.Document.Tuples, Tuple{
		doc.URL, doc.Title, doc.Text, strconv.Itoa(doc.Length),
	})
	for _, a := range doc.Anchors {
		db.Anchor.Tuples = append(db.Anchor.Tuples, Tuple{
			a.Label, a.Base, a.Href, a.Type.String(),
		})
	}
	for _, r := range doc.Infons {
		db.RelInfon.Tuples = append(db.RelInfon.Tuples, Tuple{
			r.Delimiter, doc.URL, r.Text, strconv.Itoa(len(r.Text)),
		})
	}
	return db
}

// Size returns the total number of tuples across the three relations.
func (db *DB) Size() int {
	return len(db.Document.Tuples) + len(db.Anchor.Tuples) + len(db.RelInfon.Tuples)
}
