// Continuous queries at the user-site: a Watch is a standing web-query
// whose result set is maintained incrementally as the web mutates
// underneath it.
//
// The mechanism has three parts. First, the initial run records its raw
// result flow — every reported node table and every parent→child CHT
// edge — in a recording, giving the user-site a per-node view of where
// each row came from and how the traversal DAG is wired. Second, the
// watch registers itself (wire.WatchMsg) at every participating site;
// when the web mutates, the touched sites push typed change
// notifications (wire.DeltaMsg) naming the documents whose content was
// edited and those whose link structure was rewired. Third, the watch
// folds one notification per epoch into the standing state with a
// two-phase delete-and-rederive:
//
//   - Phase A (content-only edits): nodes whose content changed but whose
//     links did not are re-evaluated in place with a hop-exhausted budget
//     (Budget.Hops = -1), which evaluates the node-queries and reports
//     tables but forwards nothing. If a node's set of answered stages is
//     unchanged, its traversal behaviour is unchanged too (a stage
//     advance happens exactly when its answer is non-empty), so swapping
//     the node's contributions suffices. A node whose answered-stage set
//     flipped is promoted to phase B — its advances, and therefore its
//     descendants, changed.
//   - Phase B (structural changes): the affected set is the node-level
//     closure of the rewired (and promoted) documents over the recorded
//     edge DAG. All of its contributions and outgoing edges are deleted;
//     the surviving arrivals at its boundary (edges from unaffected
//     parents, including the user-site's own root dispatches) are
//     re-dispatched as mid-traversal roots with their recorded states.
//     This over-delete/re-derive is sound because the closure is closed
//     under the recorded edges: every edge out of an affected node lands
//     on an affected node, so nothing outside the set depends on a
//     deleted derivation.
//
// After both phases the per-stage global row sets are recomputed and
// diffed against the previous epoch's, emitting typed add/remove Deltas
// with a monotonic epoch number — one epoch per notification processed,
// so WaitEpoch gives exact barriers to a driver that knows how many
// notifications its mutation batch produced.
package client

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"net"
	"sort"
	"sync"
	"time"

	"webdis/internal/cluster"
	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/nodeproc"
	"webdis/internal/server"
	"webdis/internal/trace"
	"webdis/internal/webgraph"
	"webdis/internal/wire"
)

// Typed watch failures, matchable with errors.Is.
var (
	// ErrWatchOutput rejects standing queries with an output contract:
	// aggregates fold contributions destructively at the user-site, so
	// their result sets cannot be maintained by row-level deltas.
	ErrWatchOutput = errors.New("client: watch does not support grouped/ordered queries")
	// ErrWatchCorrelated rejects standing queries with correlated stages:
	// a recorded CHT edge carries no clone environment, so a correlated
	// re-dispatch could not reconstruct the outer bindings.
	ErrWatchCorrelated = errors.New("client: watch does not support correlated queries")
	// ErrWatchClosed is returned by waiters when the watch is closed.
	ErrWatchClosed = errors.New("client: watch closed")
)

// DeltaOp types one incremental result change.
type DeltaOp int

const (
	// DeltaRemove retracts a row the standing result set no longer
	// derives. Removes sort before adds within an epoch, so a changed
	// row reads retract-then-assert.
	DeltaRemove DeltaOp = iota
	// DeltaAdd asserts a newly derived row.
	DeltaAdd
)

func (op DeltaOp) String() string {
	if op == DeltaAdd {
		return "add"
	}
	return "remove"
}

// Delta is one typed change to a watch's standing result set.
type Delta struct {
	// Epoch is the watch's monotonic re-evaluation counter: every site
	// notification processed advances it by one, whether or not any row
	// changed.
	Epoch int
	Op    DeltaOp
	// Stage indexes the node-query the row answers, as in ResultTable.
	Stage int
	Row   []string
}

// recording captures a query's raw result flow for the continuous-query
// layer: every node table as reported (before the user-site's global
// row dedup) and every parent→child CHT edge (the traversal DAG).
// Appends happen under the owning Query's mu, inside merge.
type recording struct {
	tables []wire.NodeTable
	edges  []recEdge
}

// recEdge is one edge of the recorded traversal DAG: the processed
// parent node forwarded a clone that entered child. Parent "" marks the
// user-site's own root dispatches.
type recEdge struct {
	parent string
	child  wire.CHTEntry
}

// fold absorbs one result report. Callers hold the owning Query's mu.
func (rec *recording) fold(r *wire.Report) {
	rec.tables = append(rec.tables, r.Tables...)
	for _, u := range r.Updates {
		for _, child := range u.Children {
			rec.edges = append(rec.edges, recEdge{parent: u.Processed.Node, child: child})
		}
	}
}

// watchEdge is the standing, deduplicated form of a recorded edge.
type watchEdge struct {
	parent string
	node   string
	state  wire.State
}

func watchEdgeKey(parent, node string, st wire.State) string {
	return parent + "\x01" + node + "\x01" + st.Key()
}

// contribSet is a node's standing contributions: stage → row key → row.
type contribSet map[int]map[string][]string

// Watch is a standing web-query: it holds the query's current result
// set, receives site change notifications on its own collector
// endpoint, incrementally re-derives only the affected part of the
// traversal, and emits typed row deltas. Create with Client.Watch,
// consume with Deltas, Stream or Results, release with Close.
type Watch struct {
	c      *Client
	web    *disql.WebQuery
	wid    wire.QueryID
	ln     net.Listener
	pool   *netsim.Pool
	sites  []string // sites a WatchMsg registration reached
	budget wire.Budget
	// extDone mirrors Options.Done, bounding Stream pumps exactly as in
	// Query.
	extDone <-chan struct{}
	// conservative is set when some stage's answer presence is not
	// observable from reported tables (a node-query with no select
	// list): content edits are then treated as structural, trading
	// delta-efficiency for exactness.
	conservative bool
	journal      *trace.Journal

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*wire.DeltaMsg
	conns  map[net.Conn]bool
	closed bool
	err    error

	// Standing derivation state: per-node contributions, the deduplicated
	// traversal DAG, per-stage column headers, and the per-stage global
	// row sets of the last epoch.
	contribs map[string]contribSet
	edges    map[string]watchEdge
	cols     map[int][]string
	cur      map[int]map[string][]string

	epoch  int
	log    []Delta
	doneCh chan struct{} // closed when the epoch loop exits
}

// Watch submits w as a standing query and registers for change
// notifications at the given sites (every site the traversal may reach;
// typically the whole deployment). It blocks until the initial run
// completes — the watch's epoch-0 result set — and then maintains the
// result set incrementally. Queries with an output contract or with
// correlated stages are rejected with a typed error.
//
// On replicated sites the registration reaches the primary endpoint
// only; mutations applied through a deployment notify every replica's
// server, so single-registration delivery stays exact there.
//
// ctx bounds the initial run and, when cancellable, the watch itself:
// a ctx that ends closes the watch.
func (c *Client) Watch(ctx context.Context, w *disql.WebQuery, sites []string) (*Watch, error) {
	return c.WatchBudget(ctx, w, sites, wire.Budget{})
}

// WatchBudget is Watch with a resource budget applied to the initial
// run. Incremental re-runs always ship as low-weight flows
// (Budget.Weight 1) so standing maintenance yields to interactive
// queries under a site's weighted fair scheduler; a budget that clips
// the initial run (hops, rows, deadline) would make the standing set
// clipped too, so quotas are intentionally not inherited by re-runs.
func (c *Client) WatchBudget(ctx context.Context, w *disql.WebQuery, sites []string, b wire.Budget) (*Watch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if w.Output != nil {
		return nil, ErrWatchOutput
	}
	conservative := false
	for _, st := range w.Stages {
		if st.Query != nil && len(st.Query.Outer) > 0 {
			return nil, ErrWatchCorrelated
		}
		if st.Query != nil && len(st.Query.Select) == 0 {
			conservative = true
		}
	}

	c.mu.Lock()
	c.next++
	num := c.next
	c.mu.Unlock()

	wa := &Watch{
		c:            c,
		web:          w,
		budget:       b,
		extDone:      c.opts.Done,
		conservative: conservative,
		journal:      c.opts.Journal,
		conns:        make(map[net.Conn]bool),
		contribs:     make(map[string]contribSet),
		edges:        make(map[string]watchEdge),
		cols:         make(map[int][]string),
		cur:          make(map[int]map[string][]string),
		doneCh:       make(chan struct{}),
	}
	wa.cond = sync.NewCond(&wa.mu)

	ln, endpoint, err := c.listenCollector(fmt.Sprintf("w%d", num))
	if err != nil {
		return nil, fmt.Errorf("client: watch collector: %w", err)
	}
	wa.wid = wire.QueryID{User: c.user, Site: endpoint, Num: num}
	wa.ln = ln
	wa.pool = netsim.NewPool(c.tr, endpoint, netsim.PoolOptions{
		Wrap: func(conn net.Conn) net.Conn { return wire.NewFramedOpts(conn, c.frameOpts()) },
	})
	go wa.collect()

	// Register before the initial run: a mutation landing between the
	// two produces a queued notification whose re-derivation is
	// idempotent against the state the run already saw.
	reg := &wire.WatchMsg{Version: wire.WatchVersion, ID: wa.wid}
	ordered := append([]string(nil), sites...)
	sort.Strings(ordered)
	for _, site := range ordered {
		if wa.send(server.Endpoint(site), reg) == nil {
			wa.sites = append(wa.sites, site)
		}
	}

	rec := &recording{}
	q, err := c.submit(w, b, nil, rec)
	if err != nil {
		wa.teardown()
		return nil, err
	}
	if err := q.WaitContext(ctx); err != nil {
		wa.teardown()
		return nil, err
	}
	if err := q.Err(); err != nil {
		// A degraded baseline (shed, partial, expired) would seed an
		// unsound standing set that every later delta inherits.
		wa.teardown()
		return nil, fmt.Errorf("client: watch baseline degraded: %w", err)
	}
	wa.mu.Lock()
	wa.absorb(rec)
	wa.cur = wa.globalRows()
	wa.mu.Unlock()

	go wa.loop()
	if wa.extDone != nil || ctx.Done() != nil {
		go func() {
			select {
			case <-wa.doneCh:
			case <-wa.extDone:
				wa.Close()
			case <-ctx.Done():
				wa.Close()
			}
		}()
	}
	return wa, nil
}

// send delivers one control message over the watch's connection pool.
func (w *Watch) send(ep string, msg any) error {
	conn, _, err := w.pool.Get(ep)
	if err != nil {
		return err
	}
	if err := wire.Send(conn, msg); err != nil {
		conn.Close()
		return err
	}
	w.pool.Put(ep, conn)
	return nil
}

// collect accepts notification connections on the watch's endpoint and
// queues every applicable DeltaMsg for the epoch loop.
func (w *Watch) collect() {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			conn.Close()
			continue
		}
		w.conns[conn] = true
		w.mu.Unlock()
		go func() {
			defer func() {
				conn.Close()
				w.mu.Lock()
				delete(w.conns, conn)
				w.mu.Unlock()
			}()
			framed := wire.NewFramedOpts(conn, w.c.frameOpts())
			for {
				msg, err := wire.Receive(framed)
				if err != nil {
					return
				}
				if m, ok := msg.(*wire.DeltaMsg); ok && m.Applies() && m.ID.Num == w.wid.Num {
					if w.journal != nil {
						w.journal.Append(trace.Event{
							Query: w.wid.String(), Kind: trace.Delta,
							Detail: fmt.Sprintf("from %s: %d edited, %d rewired", m.Site, len(m.Edited), len(m.Rewired)),
						})
					}
					w.mu.Lock()
					if !w.closed {
						w.queue = append(w.queue, m)
						w.cond.Broadcast()
					}
					w.mu.Unlock()
				}
			}
		}()
	}
}

// loop drains the notification queue, one epoch per message.
func (w *Watch) loop() {
	defer close(w.doneCh)
	for {
		w.mu.Lock()
		for len(w.queue) == 0 && !w.closed {
			w.cond.Wait()
		}
		if w.closed {
			w.mu.Unlock()
			return
		}
		msg := w.queue[0]
		w.queue = w.queue[1:]
		w.mu.Unlock()
		if err := w.step(msg); err != nil {
			w.mu.Lock()
			if w.err == nil {
				w.err = err
			}
			w.cond.Broadcast()
			w.mu.Unlock()
			return
		}
	}
}

// step folds one site notification into the standing state: phase-A
// in-place re-evaluation of content-only edits, phase-B structural
// re-derivation of the affected closure, then the epoch diff.
func (w *Watch) step(msg *wire.DeltaMsg) error {
	edited := append([]string(nil), msg.Edited...)
	rewired := append([]string(nil), msg.Rewired...)
	if w.conservative {
		rewired = append(rewired, edited...)
		edited = nil
	}

	w.mu.Lock()
	children, arrivals := w.dag()
	affected := closure(rewired, children)
	var editedOnly []string
	seen := make(map[string]bool)
	for _, n := range edited {
		if !affected[n] && len(arrivals[n]) > 0 && !seen[n] {
			seen[n] = true
			editedOnly = append(editedOnly, n)
		}
	}
	sort.Strings(editedOnly)
	w.mu.Unlock()

	// Phase A: hop-exhausted re-evaluation of content-only edits. The
	// budget's spent hop quota lets the node answer (and virtually
	// advance stages in place) while forwarding nothing, so the
	// traversal DAG is untouched by construction.
	var promoted []string
	if len(editedOnly) > 0 {
		var roots []wire.CHTEntry
		w.mu.Lock()
		for _, n := range editedOnly {
			for _, st := range arrivals[n] {
				roots = append(roots, wire.CHTEntry{Node: n, State: st})
			}
		}
		w.mu.Unlock()
		rec, err := w.rerun(roots, wire.Budget{Hops: -1, Weight: 1})
		if err != nil {
			return err
		}
		fresh := tablesByNode(rec.tables)
		w.mu.Lock()
		for _, t := range rec.tables {
			if _, ok := w.cols[t.Stage]; !ok {
				w.cols[t.Stage] = t.Cols
			}
		}
		for _, n := range editedOnly {
			if !sameStages(w.contribs[n], fresh[n]) {
				// The edit flipped some stage's answer between empty and
				// non-empty: the node's advances — and so its descendants —
				// changed. Structural re-derivation takes over; the
				// in-place result is discarded.
				promoted = append(promoted, n)
				continue
			}
			if cs := fresh[n]; len(cs) > 0 {
				w.contribs[n] = cs
			} else {
				delete(w.contribs, n)
			}
		}
		w.mu.Unlock()
	}

	// Phase B: over-delete the affected closure and re-derive it from
	// the surviving boundary arrivals.
	w.mu.Lock()
	affected = closure(append(rewired, promoted...), children)
	var roots []wire.CHTEntry
	if len(affected) > 0 {
		rootSeen := make(map[string]bool)
		for _, e := range w.edges {
			if affected[e.node] && !affected[e.parent] {
				rk := e.node + "\x01" + e.state.Key()
				if !rootSeen[rk] {
					rootSeen[rk] = true
					roots = append(roots, wire.CHTEntry{Node: e.node, State: e.state})
				}
			}
		}
		sort.Slice(roots, func(i, j int) bool {
			if roots[i].Node != roots[j].Node {
				return roots[i].Node < roots[j].Node
			}
			return roots[i].State.Key() < roots[j].State.Key()
		})
		for n := range affected {
			delete(w.contribs, n)
		}
		for k, e := range w.edges {
			if affected[e.parent] {
				delete(w.edges, k)
			}
		}
	}
	w.mu.Unlock()
	if len(roots) > 0 {
		rec, err := w.rerun(roots, wire.Budget{Weight: 1})
		if err != nil {
			return err
		}
		w.mu.Lock()
		w.absorb(rec)
		w.mu.Unlock()
	}

	// The epoch advances even when nothing changed, so a driver that
	// counts notifications gets exact WaitEpoch barriers.
	w.mu.Lock()
	next := w.globalRows()
	w.log = append(w.log, diffRows(w.cur, next, w.epoch+1)...)
	w.cur = next
	w.epoch++
	w.cond.Broadcast()
	w.mu.Unlock()
	return nil
}

// rerun dispatches a recorded sub-traversal and waits it out. A
// degraded completion (partial, shed, expired) is an error: an
// incomplete re-derivation would silently corrupt the standing set.
func (w *Watch) rerun(roots []wire.CHTEntry, b wire.Budget) (*recording, error) {
	rec := &recording{}
	q, err := w.c.submitRoots(w.web, roots, b, rec)
	if err != nil {
		return nil, err
	}
	if err := q.Wait(0); err != nil {
		return nil, err
	}
	if err := q.Err(); err != nil && !errors.Is(err, ErrExpired) {
		// ErrExpired is expected under the phase-A hop clamp — the spent
		// quota is the mechanism, not a failure.
		return nil, fmt.Errorf("client: watch re-derivation degraded: %w", err)
	}
	return rec, nil
}

// dag projects the standing edge set into node-level adjacency and the
// distinct recorded arrival states per node. Callers hold w.mu.
func (w *Watch) dag() (children map[string][]string, arrivals map[string][]wire.State) {
	children = make(map[string][]string)
	arrivals = make(map[string][]wire.State)
	seen := make(map[string]bool)
	for _, e := range w.edges {
		children[e.parent] = append(children[e.parent], e.node)
		ak := e.node + "\x01" + e.state.Key()
		if !seen[ak] {
			seen[ak] = true
			arrivals[e.node] = append(arrivals[e.node], e.state)
		}
	}
	for n := range arrivals {
		sort.Slice(arrivals[n], func(i, j int) bool {
			return arrivals[n][i].Key() < arrivals[n][j].Key()
		})
	}
	return children, arrivals
}

// closure returns the node-level descendant closure of seeds.
func closure(seeds []string, children map[string][]string) map[string]bool {
	out := make(map[string]bool)
	queue := append([]string(nil), seeds...)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if out[n] {
			continue
		}
		out[n] = true
		queue = append(queue, children[n]...)
	}
	return out
}

// absorb unions a recording into the standing state. Callers hold w.mu.
func (w *Watch) absorb(rec *recording) {
	for _, t := range rec.tables {
		if _, ok := w.cols[t.Stage]; !ok {
			w.cols[t.Stage] = t.Cols
		}
		cs := w.contribs[t.Node]
		if cs == nil {
			cs = make(contribSet)
			w.contribs[t.Node] = cs
		}
		rows := cs[t.Stage]
		if rows == nil {
			rows = make(map[string][]string)
			cs[t.Stage] = rows
		}
		for _, row := range t.Rows {
			rows[rowKey(row)] = row
		}
	}
	for _, e := range rec.edges {
		k := watchEdgeKey(e.parent, e.child.Node, e.child.State)
		w.edges[k] = watchEdge{parent: e.parent, node: e.child.Node, state: e.child.State}
	}
}

// tablesByNode groups reported tables into per-node contributions.
func tablesByNode(tabs []wire.NodeTable) map[string]contribSet {
	out := make(map[string]contribSet)
	for _, t := range tabs {
		cs := out[t.Node]
		if cs == nil {
			cs = make(contribSet)
			out[t.Node] = cs
		}
		rows := cs[t.Stage]
		if rows == nil {
			rows = make(map[string][]string)
			cs[t.Stage] = rows
		}
		for _, row := range t.Rows {
			rows[rowKey(row)] = row
		}
	}
	return out
}

// sameStages reports whether two contribution sets answer the same
// stages (row contents may differ). Stage answers are
// arrival-independent for uncorrelated queries, so an equal stage set
// means equal advance behaviour.
func sameStages(a, b contribSet) bool {
	for st, rows := range a {
		if len(rows) > 0 && len(b[st]) == 0 {
			return false
		}
	}
	for st, rows := range b {
		if len(rows) > 0 && len(a[st]) == 0 {
			return false
		}
	}
	return true
}

// globalRows unions the per-node contributions into per-stage row sets.
// Callers hold w.mu.
func (w *Watch) globalRows() map[int]map[string][]string {
	out := make(map[int]map[string][]string)
	for _, cs := range w.contribs {
		for st, rows := range cs {
			g := out[st]
			if g == nil {
				g = make(map[string][]string)
				out[st] = g
			}
			for k, row := range rows {
				g[k] = row
			}
		}
	}
	for st, g := range out {
		if len(g) == 0 {
			delete(out, st)
		}
	}
	return out
}

// diffRows computes the sorted delta list between two epoch row sets:
// stages ascending, removes before adds, rows in key order.
func diffRows(old, next map[int]map[string][]string, epoch int) []Delta {
	stageSet := make(map[int]bool)
	for st := range old {
		stageSet[st] = true
	}
	for st := range next {
		stageSet[st] = true
	}
	stages := make([]int, 0, len(stageSet))
	for st := range stageSet {
		stages = append(stages, st)
	}
	sort.Ints(stages)
	var out []Delta
	for _, st := range stages {
		o, n := old[st], next[st]
		var removed, added []string
		for k := range o {
			if _, ok := n[k]; !ok {
				removed = append(removed, k)
			}
		}
		for k := range n {
			if _, ok := o[k]; !ok {
				added = append(added, k)
			}
		}
		sort.Strings(removed)
		sort.Strings(added)
		for _, k := range removed {
			out = append(out, Delta{Epoch: epoch, Op: DeltaRemove, Stage: st, Row: o[k]})
		}
		for _, k := range added {
			out = append(out, Delta{Epoch: epoch, Op: DeltaAdd, Stage: st, Row: n[k]})
		}
	}
	return out
}

// ID returns the watch's global identifier (its notification endpoint
// is ID().Site).
func (w *Watch) ID() wire.QueryID { return w.wid }

// Epoch returns the number of site notifications folded in so far.
func (w *Watch) Epoch() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.epoch
}

// Err returns the watch's terminal error, if a re-derivation failed.
func (w *Watch) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// WaitEpoch blocks until at least n notifications have been processed,
// the watch fails or closes, or ctx ends.
func (w *Watch) WaitEpoch(ctx context.Context, n int) error {
	var stop chan struct{}
	if ctx.Done() != nil {
		stop = make(chan struct{})
		defer close(stop)
		go func() {
			select {
			case <-ctx.Done():
				w.mu.Lock()
				w.cond.Broadcast()
				w.mu.Unlock()
			case <-stop:
			}
		}()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.epoch < n && w.err == nil && !w.closed && ctx.Err() == nil {
		w.cond.Wait()
	}
	switch {
	case w.epoch >= n:
		return nil
	case w.err != nil:
		return w.err
	case ctx.Err() != nil:
		return ctx.Err()
	default:
		return ErrWatchClosed
	}
}

// Deltas returns the watch's change feed as a blocking pull iterator:
// every delta from epoch 1 on, in emission order, then waiting for more
// until the watch closes. A failed re-derivation yields one final
// (zero Delta, error) pair. Breaking out of the range is safe and leaks
// nothing.
func (w *Watch) Deltas() iter.Seq2[Delta, error] {
	return func(yield func(Delta, error) bool) {
		i := 0
		w.mu.Lock()
		for {
			for i < len(w.log) {
				d := w.log[i]
				i++
				w.mu.Unlock()
				if !yield(d, nil) {
					return
				}
				w.mu.Lock()
			}
			if w.err != nil || w.closed {
				err := w.err
				w.mu.Unlock()
				if err != nil {
					yield(Delta{}, err)
				}
				return
			}
			w.cond.Wait()
		}
	}
}

// Stream returns a bounded channel of the watch's deltas from epoch 1
// on — the abandon-safe form of Deltas for select loops. The channel
// closes when the watch closes or fails, or when ctx ends; the pump is
// additionally bounded by the client's Options.Done channel so an
// abandoned consumer cannot outlive the owning deployment.
func (w *Watch) Stream(ctx context.Context) <-chan Delta {
	ch := make(chan Delta, 64)
	stop := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
		case <-w.extDone:
		case <-stop:
			return
		}
		w.mu.Lock()
		w.cond.Broadcast()
		w.mu.Unlock()
	}()
	go func() {
		defer close(ch)
		defer close(stop)
		i := 0
		for {
			w.mu.Lock()
			for i >= len(w.log) && !w.closed && w.err == nil && ctx.Err() == nil && !w.extClosed() {
				w.cond.Wait()
			}
			if ctx.Err() != nil || w.extClosed() || i >= len(w.log) {
				w.mu.Unlock()
				return
			}
			d := w.log[i]
			i++
			w.mu.Unlock()
			select {
			case ch <- d:
			case <-ctx.Done():
				return
			case <-w.extDone:
				return
			}
		}
	}()
	return ch
}

func (w *Watch) extClosed() bool {
	select {
	case <-w.extDone:
		return true
	default:
		return false
	}
}

// Results returns the standing result set in the same shape and order
// as Query.Results: tables by stage, rows sorted — directly comparable
// against a from-scratch run of the same query.
func (w *Watch) Results() []ResultTable {
	w.mu.Lock()
	defer w.mu.Unlock()
	stages := make([]int, 0, len(w.cur))
	for st := range w.cur {
		stages = append(stages, st)
	}
	sort.Ints(stages)
	out := make([]ResultTable, 0, len(stages))
	for _, st := range stages {
		rows := make([][]string, 0, len(w.cur[st]))
		for _, row := range w.cur[st] {
			rows = append(rows, row)
		}
		sortRows(rows)
		out = append(out, ResultTable{Stage: st, Cols: w.cols[st], Rows: rows})
	}
	return out
}

// Close deregisters the watch at every site it registered with
// (best-effort), closes its notification endpoint, and releases its
// goroutines. Idempotent.
func (w *Watch) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.cond.Broadcast()
	w.mu.Unlock()
	cancel := &wire.WatchMsg{Version: wire.WatchVersion, ID: w.wid, Cancel: true}
	for _, site := range w.sites {
		w.send(server.Endpoint(site), cancel) //nolint:errcheck // best-effort deregistration
	}
	w.teardown()
	return nil
}

// teardown closes the watch's network resources.
func (w *Watch) teardown() {
	w.mu.Lock()
	w.closed = true
	conns := make([]net.Conn, 0, len(w.conns))
	for conn := range w.conns {
		conns = append(conns, conn)
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	w.ln.Close()
	for _, conn := range conns {
		conn.Close()
	}
	w.pool.Close()
}

// submitRoots dispatches a web-query that resumes mid-traversal: each
// root carries a recorded (node, state) arrival rather than starting at
// stage 0. It is the re-derivation primitive of the continuous-query
// layer — the query's clones are the successively-shortened suffix
// stages, exactly as if the original traversal had just arrived there.
func (c *Client) submitRoots(w *disql.WebQuery, roots []wire.CHTEntry, b wire.Budget, rec *recording) (*Query, error) {
	c.mu.Lock()
	c.next++
	num := c.next
	c.mu.Unlock()

	q := &Query{
		web:        w,
		tr:         c.tr,
		hybrid:     c.opts.Hybrid,
		reapGrace:  c.opts.ReapGrace,
		met:        c.opts.Metrics,
		journal:    c.opts.Journal,
		cluster:    c.opts.Cluster,
		budget:     b,
		doneCh:     make(chan struct{}),
		conns:      make(map[net.Conn]bool),
		counts:     make(map[string]int),
		tables:     make(map[int]*ResultTable),
		rowSeen:    make(map[int]map[string]bool),
		started:    time.Now(),
		lastReport: time.Now(),
		stopSent:   make(map[string]bool),
		wireV1:     c.opts.WireV1,
		adaptive:   c.opts.AdaptiveBatch,
		extDone:    c.opts.Done,
		rec:        rec,
	}
	q.scond = sync.NewCond(&q.mu)
	q.statSink = c.stats
	if q.cluster != nil {
		q.entries = make(map[string]wire.CHTEntry)
		q.replayed = make(map[string]bool)
		// Correlated queries never reach here (Watch rejects them), so a
		// replayed clone can always be reconstructed from its entry.
		q.replayable = true
	}
	ln, endpoint, err := c.listenCollector(fmt.Sprintf("q%d", num))
	if err != nil {
		return nil, fmt.Errorf("client: result collector: %w", err)
	}
	q.id = wire.QueryID{User: c.user, Site: endpoint, Num: num}
	q.ln = ln
	q.pool = netsim.NewPool(c.tr, endpoint, netsim.PoolOptions{
		Wrap: func(conn net.Conn) net.Conn { return wire.NewFramedOpts(conn, q.frameOpts()) },
	})
	if q.cluster != nil {
		pool := q.pool
		q.unsub = q.cluster.Subscribe(func(ep string, st cluster.State) {
			if st == cluster.Down {
				pool.EvictPeer(ep)
			}
		})
	}
	go q.collect()
	if q.reapGrace > 0 {
		go q.reaper()
	}

	stages := make([]disql.Stage, len(w.Stages))
	copy(stages, w.Stages)
	total := len(stages)

	// Group roots by (site, state) — optimization 4 of Section 3.2, one
	// clone message per site per state — and enter their CHT entries
	// before any dispatch.
	type rootGroup struct {
		state wire.State
		dests []wire.DestNode
	}
	groups := make(map[string]*rootGroup)
	var keys []string
	rootSeen := make(map[string]bool)
	var seq int64
	q.mu.Lock()
	for _, r := range roots {
		if r.State.NumQ < 1 || r.State.NumQ > total {
			continue
		}
		rk := r.Node + "\x01" + r.State.Key()
		if rootSeen[rk] {
			continue
		}
		rootSeen[rk] = true
		gk := webgraph.Host(r.Node) + "\x01" + r.State.Key()
		g := groups[gk]
		if g == nil {
			g = &rootGroup{state: r.State}
			groups[gk] = g
			keys = append(keys, gk)
		}
		seq++
		dest := wire.DestNode{URL: r.Node, Origin: q.id.Site, Seq: seq}
		g.dests = append(g.dests, dest)
		q.addEntry(wire.CHTEntry{Node: r.Node, State: r.State, Origin: dest.Origin, Seq: dest.Seq})
	}
	q.mu.Unlock()
	sort.Strings(keys)

	var hints []wire.SiteStat
	if c.opts.Planner {
		hints = c.stats.hints()
	}

	for _, gk := range keys {
		g := groups[gk]
		base := total - g.state.NumQ
		msg := &wire.CloneMsg{
			ID:     q.id,
			Dest:   g.dests,
			Rem:    g.state.Rem,
			Base:   base,
			Stages: nodeproc.EncodeStages(stages[base:]),
			Budget: b,
			Hints:  hints,
		}
		site := webgraph.Host(g.dests[0].URL)
		if q.journal != nil {
			msg.Span = wire.SpanID{Origin: q.id.Site, Seq: q.spanSeq.Add(1)}
			q.journal.Append(trace.Event{
				Query: q.id.String(), Span: msg.Span, Kind: trace.Dispatch,
				State: g.state.String(), Detail: site,
			})
		}
		if err := q.dispatch(site, msg); err != nil {
			if q.hybrid {
				q.jot(msg, trace.Bounce, wire.BounceNoServer)
				q.bounced(msg)
				continue
			}
			q.jot(msg, trace.ForwardFailed, site)
			q.mu.Lock()
			for _, dest := range g.dests {
				q.retire(wire.CHTEntry{Node: dest.URL, State: g.state, Origin: dest.Origin, Seq: dest.Seq})
			}
			q.maybeComplete()
			q.mu.Unlock()
		}
	}
	// An empty root set (or every dispatch failing) must still complete.
	q.mu.Lock()
	q.maybeComplete()
	q.mu.Unlock()
	return q, nil
}
