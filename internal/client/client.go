// Package client implements the WEBDIS user-site: it dispatches a
// web-query to the query servers of its StartNodes, collects results on a
// per-query listening endpoint (the paper's Result Collector socket), and
// detects query completion with the Current Hosts Table protocol of
// Section 2.7.1.
//
// The CHT is maintained as a counting multiset of (node, state) entries:
// the client adds entries for the StartNodes before dispatching (Figure 2,
// send_query), every query server adds entries for the clones it forwards
// before it forwards them, and every server report — a processed node, a
// purged duplicate, or a failed forward — retires exactly one entry.
//
// Counts are signed: because result dispatch is asynchronous, a clone's
// own report can overtake its parent's update that announced it, driving
// the entry's count transiently negative. The query is complete exactly
// when every count is zero. This is sound: each clone contributes one +1
// (in its parent's update) and one −1 (in its own report), clone creation
// is a DAG in time, so no nonempty subset of outstanding reports sums to
// zero — the counts cannot all read zero while any clone remains live.
//
// Cancellation is passive, exactly as in Section 2.8: Cancel closes the
// query's listening endpoint; when a server later fails to deliver results
// on that endpoint it purges the query locally instead of forwarding it,
// so no termination messages ever chase clones across the web. Active
// termination is layered on top, not instead: Stop (triggered by
// Budget.FirstN at the user-site, or by a cancelled submit context)
// broadcasts a typed StopMsg to every site with live CHT entries, whose
// clones then retire with the typed STOPPED fate — so early termination
// is measured through the CHT and the trace rather than inferred from
// starvation.
//
// Results are consumable while clones are still executing: every merged
// row is appended to an ordered stream log, and Rows (a pull iterator)
// or Stream (a bounded channel) deliver them incrementally with
// watermark-based backpressure accounting in Stats.
package client

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webdis/internal/cluster"
	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/nodeproc"
	"webdis/internal/nodequery"
	"webdis/internal/plan"
	"webdis/internal/server"
	"webdis/internal/trace"
	"webdis/internal/webgraph"
	"webdis/internal/wire"
)

// ErrCancelled is returned by Wait after Cancel.
var ErrCancelled = errors.New("client: query cancelled")

// ErrTimeout is returned by Wait when the deadline passes first.
var ErrTimeout = errors.New("client: wait timed out")

// ErrShed reports that at least one site refused the query under
// admission control: the answer covers only the sites that accepted it.
var ErrShed = errors.New("client: query shed by admission control")

// ErrExpired reports that at least one clone was terminated for
// exceeding the query's wire-carried budget: the answer is clipped.
var ErrExpired = errors.New("client: query budget expired")

// ErrPartial reports that the query completed degraded: the reaper
// retired orphaned CHT entries, so part of the web went unanswered.
var ErrPartial = errors.New("client: query completed partial")

// Options configure a Client in one shot: the consolidated form of the
// deprecated Set* setters, threaded down from core.Config. The zero
// value is a plain user-site: no hybrid fallback, no reaper, no tracing.
type Options struct {
	// Hybrid enables the Section 7.1 migration path: clones addressed to
	// sites without a query server — bounced back by servers or refused
	// at submission — are evaluated centrally at the user-site by
	// downloading their documents, and re-enter distributed processing at
	// the next participating site.
	Hybrid bool
	// ReapGrace arms the orphan-CHT reaper: when a query has seen no
	// report for the grace window while CHT entries remain outstanding,
	// the reaper retires the orphans, marks the query Partial with the
	// sites it could not account for, and completes it. Zero or negative
	// disables the reaper.
	ReapGrace time.Duration
	// Metrics shares a deployment-wide metrics collector so client-side
	// protocol events (reaped CHT entries, connection reuse) appear in
	// the same snapshot as the servers' counters. Optional.
	Metrics *server.Metrics
	// Journal arms causal tracing: root clones get span ids, every
	// dispatch/reap is journaled here, and span contexts echoed on result
	// reports are stitched into the query's remote view (Query.TraceEvents).
	Journal *trace.Journal
	// IndexResolver is the search-index lookup used to resolve
	// `index("term")` StartNode sources (the paper's Section 1.1 automated
	// StartNode selection). Queries with an index source fail without one.
	IndexResolver func(term string) []string
	// Cluster, when non-nil, routes every dispatch through the replica
	// membership table: root clones, fallback rejoins and stop broadcasts
	// resolve a live replica of the destination site (failing over to the
	// next one when the send fails), stale result frames from a replica's
	// previous incarnation are rejected, and the reaper replays clones
	// stranded by a crashed replica to a surviving one before giving up
	// and reaping.
	Cluster *cluster.Membership
	// Planner arms the user-site half of the cost-based distributed
	// planner: root clones of aggregating (or limited) queries carry a
	// pushed-down plan fragment so sites reduce result tables before
	// shipping, and the site statistics piggybacked on result frames are
	// accumulated and re-attached to later clones as cost-model hints.
	// Aggregation itself (GROUP BY / ORDER BY / LIMIT semantics) does
	// not depend on this flag — only where the work runs does.
	Planner bool
	// WireV1 pins every connection this client opens or accepts to wire
	// version 1 (persistent framed gob) instead of negotiating the v2
	// binary codec — the compatibility profile for mixed-version
	// deployments.
	WireV1 bool
	// AdaptiveBatch arms the collector-side batching feedback loop: when
	// a query's stream consumer falls far behind the producers
	// (ConsumerLag), the client asks every producing site for larger,
	// older result batches via a TUNE frame, and restores the defaults
	// once the consumer drains the backlog. Effective only against
	// servers running with ResultBatch enabled; advisory everywhere.
	AdaptiveBatch bool
	// Done, when non-nil, bounds the lifetime of every goroutine this
	// client's queries start: when the channel closes (the owning
	// deployment shut down), stream pumps and watch loops exit even if
	// their consumer abandoned the channel with a background context.
	// Nil means unbounded (the channel form of context.Background()).
	Done <-chan struct{}
}

// Client is a WEBDIS user-site. It can run many queries, each with its own
// Result Collector endpoint ("<base>/q<n>"), or many queries multiplexed
// over one Session endpoint ("<base>/s<n>").
type Client struct {
	tr   netsim.Transport
	user string
	base string
	opts Options

	// stats accumulates per-site statistics across this client's queries
	// when Options.Planner is set; nil otherwise.
	stats *statStore

	mu       sync.Mutex
	next     int
	sessions int
}

// New returns a client for the given user dialing from endpoints under
// base (e.g. "user") with zero Options.
func New(tr netsim.Transport, user, base string) *Client {
	return NewWith(tr, user, base, Options{})
}

// NewWith returns a client configured by opts.
func NewWith(tr netsim.Transport, user, base string, opts Options) *Client {
	c := &Client{tr: tr, user: user, base: base, opts: opts}
	if opts.Planner {
		c.stats = newStatStore()
	}
	return c
}

// selfListener is the optional transport capability of minting extra
// dialable collector endpoints from one configured address (TCP's
// ephemeral-port overflow). Transports without it simply fail the
// original bind.
type selfListener interface {
	ListenSelf(base, suffix string) (net.Listener, string, error)
}

// listenCollector binds a collector endpoint named base/suffix. When the
// exact bind fails (a TCP base whose port another collector of this
// process already holds), it falls back to the transport's self-listen
// overflow, which embeds the actually-bound address in the name so
// remote sites can still dial it.
func (c *Client) listenCollector(suffix string) (net.Listener, string, error) {
	endpoint := fmt.Sprintf("%s/%s", c.base, suffix)
	ln, err := c.tr.Listen(endpoint)
	if err == nil {
		return ln, endpoint, nil
	}
	if sl, ok := c.tr.(selfListener); ok {
		if ln2, name, err2 := sl.ListenSelf(c.base, suffix); err2 == nil {
			return ln2, name, nil
		}
	}
	return nil, "", err
}

// frameOpts derives the wire-session options for this client's shared
// (session) connections: version pinning under Options.WireV1.
func (c *Client) frameOpts() wire.FramedOptions {
	if c.opts.WireV1 {
		return wire.FramedOptions{Offer: 1, Accept: 1}
	}
	return wire.FramedOptions{}
}

// SetHybrid enables the Section 7.1 migration path for queries submitted
// afterwards.
//
// Deprecated: set Options.Hybrid via NewWith.
func (c *Client) SetHybrid(on bool) { c.opts.Hybrid = on }

// SetReapGrace arms the orphan-CHT reaper for queries submitted
// afterwards.
//
// Deprecated: set Options.ReapGrace via NewWith.
func (c *Client) SetReapGrace(grace time.Duration) { c.opts.ReapGrace = grace }

// SetMetrics shares a deployment-wide metrics collector.
//
// Deprecated: set Options.Metrics via NewWith.
func (c *Client) SetMetrics(m *server.Metrics) { c.opts.Metrics = m }

// SetJournal arms causal tracing for queries submitted afterwards.
//
// Deprecated: set Options.Journal via NewWith.
func (c *Client) SetJournal(j *trace.Journal) { c.opts.Journal = j }

// SetIndexResolver installs the search-index lookup used to resolve
// `index("term")` StartNode sources.
//
// Deprecated: set Options.IndexResolver via NewWith.
func (c *Client) SetIndexResolver(resolve func(term string) []string) {
	c.opts.IndexResolver = resolve
}

// ResultTable is the merged result of one node-query across all answering
// nodes.
type ResultTable struct {
	Stage int
	Cols  []string
	Rows  [][]string
}

// StreamRow is one result row delivered incrementally: the node-query
// stage it answers and the row itself.
type StreamRow struct {
	Stage int
	Row   []string
}

// Stats describes one query's CHT protocol and streaming activity.
type Stats struct {
	ResultMsgs     int           // result/CHT messages received
	Reports        int           // logical reports merged (≥ ResultMsgs under batching)
	EntriesAdded   int           // CHT entries entered (StartNodes + children)
	EntriesRetired int           // entries retired by reports
	GhostReports   int           // reports for entries not live (late/purged)
	PeakLive       int           // maximum simultaneously live entries
	Reaped         int           // orphaned entries retired by the grace-window reaper
	Duration       time.Duration // submit to completion

	// Streaming watermarks. RowsStreamed counts rows pulled through Rows
	// or Stream by the furthest consumer; ConsumerLag is the gauge of
	// merged rows still buffered ahead of that consumer (equal to the
	// total row count when nothing consumes the stream); StreamHighWater
	// is the peak lag observed — how far the producers ran ahead.
	RowsStreamed    int
	ConsumerLag     int
	StreamHighWater int
	// StopsSent counts active-termination StopMsg broadcasts shipped to
	// sites with live CHT entries (Budget.FirstN or Stop/ctx cancel).
	StopsSent int
	// TunesSent counts adaptive-batching TUNE frames shipped to sites
	// with live CHT entries (Options.AdaptiveBatch backpressure feedback).
	TunesSent int
	// FirstRow is the submit-to-first-streamed-row latency (0 until a
	// first row arrives) — the headline number streaming improves.
	FirstRow time.Duration

	// Replication counters (all zero without Options.Cluster). Failovers
	// counts client-side sends re-resolved to another replica; Replays
	// counts stranded clones re-dispatched to a surviving replica by the
	// reaper; StaleRejected counts result frames dropped for carrying a
	// replica incarnation older than the sender's current registration;
	// DupRetired counts duplicate retirements of replayed entries absorbed
	// (the crashed replica's report arrived after all, on top of the
	// replay's).
	Failovers     int
	Replays       int
	StaleRejected int
	DupRetired    int
}

// Query is one in-flight or finished web-query at the user-site.
type Query struct {
	id  wire.QueryID
	web *disql.WebQuery
	tr  netsim.Transport

	ln     net.Listener
	doneCh chan struct{}
	// extDone mirrors Options.Done: a deployment-lifetime bound for the
	// query's pump goroutines. Nil blocks forever in a select — exactly
	// the unbounded default.
	extDone <-chan struct{}

	// rec, when non-nil, records the raw result flow — every reported
	// node table and every parent→child CHT edge — before deduplication.
	// The continuous-query layer replays this recording to maintain a
	// standing result set incrementally (see watch.go).
	rec *recording

	hybrid    bool
	reapGrace time.Duration
	met       *server.Metrics
	journal   *trace.Journal
	spanSeq   atomic.Int64

	// Replication (all nil/zero without Options.Cluster). cluster is the
	// shared membership table; entries mirrors the live CHT entries so the
	// reaper can reconstruct a stranded clone from its key alone;
	// replayable is set when the query carries no correlated-stage
	// environment (a replayed clone cannot recover one); replayed marks
	// the keys re-dispatched to a surviving replica, scoping the
	// duplicate-retire absorption; unsub detaches the pool-eviction
	// subscription on finish.
	cluster      *cluster.Membership
	entries      map[string]wire.CHTEntry
	budget       wire.Budget
	replayable   bool
	replayed     map[string]bool
	replayVia    map[string]map[string]bool // site -> replicas used by replay rounds
	replayRounds int
	unsub        func()

	// pool reuses connections from the query's endpoint to the query
	// servers it talks to repeatedly (root dispatch, fallback rejoins);
	// closed when the query finishes.
	pool *netsim.Pool

	mu          sync.Mutex
	conns       map[net.Conn]bool // accepted collector connections
	counts      map[string]int    // signed CHT entry counts
	nonzero     int               // number of keys with a nonzero count
	tables      map[int]*ResultTable
	rowSeen     map[int]map[string]bool
	stitched    []trace.Event // span events recovered from result reports
	stats       Stats
	fstats      FallbackStats
	fb          *fallback // lazily created on first hybrid work
	started     time.Time
	lastReport  time.Time // last CHT activity, watched by the reaper
	partial     bool      // completed by reaping, not by full accounting
	unreachable []string  // sites whose entries were reaped
	shed        bool      // a site refused the query under admission control
	expired     bool      // a clone was terminated by budget enforcement
	err         error
	done        bool

	// Streaming: every merged row is appended to the ordered log srows;
	// Rows and Stream deliver from it incrementally, waiting on scond
	// when they catch the producers. sread is the furthest consumer's
	// position, the watermark against which backpressure is accounted.
	srows []StreamRow
	sread int
	scond *sync.Cond // tied to mu; broadcast on append and finish

	// Active termination: firstN is the user-site row target
	// (Budget.FirstN); once satisfied — or Stop is called — stopping
	// flips and a typed StopMsg is broadcast to every site with live CHT
	// entries, stopSent deduplicating per site.
	firstN   int
	stopping bool
	stopSent map[string]bool

	// Wire/batching knobs inherited from Options: wireV1 pins this
	// query's sessions to framed gob; adaptive arms the TUNE feedback
	// loop, with tuneLevel the hysteresis state (0 defaults, 1 boosted).
	wireV1    bool
	adaptive  bool
	tuneLevel int

	// sess, when non-nil, owns the collector endpoint: results are routed
	// to this query by id over the session's shared listener and pool,
	// and finish detaches from the session instead of closing them.
	sess *Session

	// Aggregation state (all zero for classic queries). output is the
	// query's GROUP BY / ORDER BY / LIMIT contract; finalStage the stage
	// it applies to (always the last). For grouped queries, acc folds
	// contributions — raw rows or pushed-down partial state — keyed by
	// contribKey and deduplicated through contribSeen; finalized marks
	// the one-time materialization of the final table into the stream.
	// statSink, when non-nil, receives the site statistics piggybacked
	// on result frames (the client-wide statStore).
	output      *nodequery.OutputSpec
	finalStage  int
	acc         *plan.Acc
	contribSeen map[string]bool
	finalized   bool
	statSink    *statStore
}

// ID returns the query's global identifier.
func (q *Query) ID() wire.QueryID { return q.id }

// Submit translates, dispatches and begins collecting a web-query. It
// implements send_query of Figure 2: CHT entries for the StartNodes are
// entered first, then the query is dispatched to each StartNode's site
// (batched per site, Section 3.2 item 4).
func (c *Client) Submit(w *disql.WebQuery) (*Query, error) {
	return c.submit(w, wire.Budget{}, nil, nil)
}

// SubmitBudget submits a web-query carrying a resource budget: the root
// clones ship with b, every spawned clone inherits and decrements it,
// and the sites enforce it locally (typed EXPIRED terminations that keep
// the CHT exact). b.Weight also sets the query's share under a site's
// weighted fair scheduler. b.FirstN arms active early termination at the
// user-site: once that many rows have been merged, a typed StopMsg is
// broadcast along the CHT's live entries.
func (c *Client) SubmitBudget(w *disql.WebQuery, b wire.Budget) (*Query, error) {
	return c.submit(w, b, nil, nil)
}

// SubmitContext submits a web-query bound to ctx: when ctx ends before
// the query completes, the query is actively stopped (StopMsg broadcast)
// and cancelled. The ctx does not bound Submit itself, which returns
// immediately after dispatch.
func (c *Client) SubmitContext(ctx context.Context, w *disql.WebQuery) (*Query, error) {
	return c.SubmitBudgetContext(ctx, w, wire.Budget{})
}

// SubmitBudgetContext is SubmitContext with a resource budget.
func (c *Client) SubmitBudgetContext(ctx context.Context, w *disql.WebQuery, b wire.Budget) (*Query, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q, err := c.submit(w, b, nil, nil)
	if err != nil {
		return nil, err
	}
	q.watch(ctx)
	return q, nil
}

// watch ties the query to ctx: if ctx ends first, the query is actively
// stopped and then cancelled (passive close).
func (q *Query) watch(ctx context.Context) {
	if ctx.Done() == nil {
		return
	}
	go func() {
		select {
		case <-q.doneCh:
		case <-ctx.Done():
			q.Stop("context cancelled")
			q.Cancel()
		}
	}()
}

func (c *Client) submit(w *disql.WebQuery, b wire.Budget, sess *Session, rec *recording) (*Query, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	start := w.Start
	if w.StartTerm != "" {
		if c.opts.IndexResolver == nil {
			return nil, fmt.Errorf("client: query uses index(%q) but no index resolver is installed", w.StartTerm)
		}
		start = c.opts.IndexResolver(w.StartTerm)
		if len(start) == 0 {
			return nil, fmt.Errorf("client: index(%q) matched no documents", w.StartTerm)
		}
	}
	c.mu.Lock()
	c.next++
	num := c.next
	c.mu.Unlock()

	if b.FirstN > 0 && (b.Rows == 0 || b.Rows > b.FirstN) {
		// First-N implies the row quota: servers clip what the user-site
		// would discard anyway, before it ever crosses the wire.
		b.Rows = b.FirstN
	}
	q := &Query{
		web:        w,
		tr:         c.tr,
		hybrid:     c.opts.Hybrid,
		reapGrace:  c.opts.ReapGrace,
		met:        c.opts.Metrics,
		journal:    c.opts.Journal,
		cluster:    c.opts.Cluster,
		budget:     b,
		sess:       sess,
		doneCh:     make(chan struct{}),
		conns:      make(map[net.Conn]bool),
		counts:     make(map[string]int),
		tables:     make(map[int]*ResultTable),
		rowSeen:    make(map[int]map[string]bool),
		started:    time.Now(),
		lastReport: time.Now(),
		firstN:     b.FirstN,
		stopSent:   make(map[string]bool),
		wireV1:     c.opts.WireV1,
		adaptive:   c.opts.AdaptiveBatch,
		extDone:    c.opts.Done,
		rec:        rec,
	}
	q.scond = sync.NewCond(&q.mu)
	if w.Output != nil {
		q.output = w.Output
		q.finalStage = len(w.Stages) - 1
		if w.Output.Grouped() {
			q.acc = plan.NewAcc(w.Output)
			q.contribSeen = make(map[string]bool)
		}
	}
	q.statSink = c.stats
	if q.cluster != nil {
		q.entries = make(map[string]wire.CHTEntry)
		q.replayed = make(map[string]bool)
		// A clone reconstructed from its CHT entry cannot recover the
		// correlated-stage environment the original carried, so replay is
		// armed only for queries whose stages reference no outer columns.
		q.replayable = true
		for _, st := range w.Stages {
			if st.Query != nil && len(st.Query.Outer) > 0 {
				q.replayable = false
				break
			}
		}
	}
	if sess != nil {
		// The session owns the collector endpoint and connection pool;
		// reports are routed to this query by its id.
		q.id = wire.QueryID{User: c.user, Site: sess.endpoint, Num: num}
		q.pool = sess.pool
		if err := sess.register(q); err != nil {
			return nil, err
		}
	} else {
		ln, endpoint, err := c.listenCollector(fmt.Sprintf("q%d", num))
		if err != nil {
			return nil, fmt.Errorf("client: result collector: %w", err)
		}
		q.id = wire.QueryID{User: c.user, Site: endpoint, Num: num}
		q.ln = ln
		q.pool = netsim.NewPool(c.tr, endpoint, netsim.PoolOptions{
			Wrap: func(conn net.Conn) net.Conn { return wire.NewFramedOpts(conn, q.frameOpts()) },
		})
		if q.cluster != nil {
			// Proactive hygiene: when the health layer declares a replica
			// down, its idle pooled connections are dead weight — evict them
			// so the next send dials a live replica instead of discovering
			// the corpse one stale connection at a time.
			pool := q.pool
			q.unsub = q.cluster.Subscribe(func(ep string, st cluster.State) {
				if st == cluster.Down {
					pool.EvictPeer(ep)
				}
			})
		}
		go q.collect()
	}
	if q.reapGrace > 0 {
		go q.reaper()
	}

	stages := make([]disql.Stage, len(w.Stages))
	copy(stages, w.Stages)
	state := wire.State{NumQ: len(stages), Rem: stages[0].PRE.String()}

	// Group StartNodes by site and enter their CHT entries before any
	// dispatch.
	bySite := make(map[string][]wire.DestNode)
	var sites []string
	var seq int64
	q.mu.Lock()
	for _, node := range start {
		site := webgraph.Host(node)
		if _, ok := bySite[site]; !ok {
			sites = append(sites, site)
		}
		seq++
		dest := wire.DestNode{URL: node, Origin: q.id.Site, Seq: seq}
		bySite[site] = append(bySite[site], dest)
		e := wire.CHTEntry{Node: node, State: state, Origin: dest.Origin, Seq: dest.Seq}
		q.addEntry(e)
		if q.rec != nil {
			// Client-root arrivals: parent "" marks the user-site itself.
			q.rec.edges = append(q.rec.edges, recEdge{parent: "", child: e})
		}
	}
	q.mu.Unlock()
	sort.Strings(sites)

	// With the planner armed, aggregating (or limited) queries push the
	// output spec to the sites as a plan fragment — every ServerRouter
	// then ships partial-aggregate state or per-node top-K instead of
	// raw rows — and clones carry the statistics gathered so far.
	var frag *wire.PlanFrag
	var hints []wire.SiteStat
	if c.opts.Planner && w.Output != nil && (w.Output.Grouped() || w.Output.Limit > 0) {
		frag = &wire.PlanFrag{Version: wire.PlanFragVersion, Stage: len(w.Stages) - 1, Spec: *w.Output}
	}
	if c.opts.Planner {
		hints = c.stats.hints()
	}

	var firstErr error
	for _, site := range sites {
		msg := &wire.CloneMsg{
			ID:     q.id,
			Dest:   bySite[site],
			Rem:    state.Rem,
			Base:   0,
			Stages: nodeproc.EncodeStages(stages),
			Budget: b,
			Frag:   frag,
			Hints:  hints,
		}
		if q.journal != nil {
			// Root spans: one per site batch, parented by nothing.
			msg.Span = wire.SpanID{Origin: q.id.Site, Seq: q.spanSeq.Add(1)}
			q.journal.Append(trace.Event{
				Query: q.id.String(), Span: msg.Span, Kind: trace.Dispatch,
				State: state.String(), Detail: site,
			})
		}
		if err := q.dispatch(site, msg); err != nil {
			if q.hybrid {
				// The StartNode's site does not participate: process its
				// clone centrally (Section 7.1).
				q.journal.Append(trace.Event{
					Query: q.id.String(), Span: msg.Span, Kind: trace.Bounce,
					State: state.String(), Detail: wire.BounceNoServer,
				})
				q.bounced(msg)
				continue
			}
			q.journal.Append(trace.Event{
				Query: q.id.String(), Span: msg.Span, Kind: trace.ForwardFailed,
				State: state.String(), Detail: site,
			})
			if firstErr == nil {
				firstErr = err
			}
			// The site is unreachable: retire its entries so completion
			// detection is not wedged on clones that never existed.
			q.mu.Lock()
			for _, dest := range bySite[site] {
				q.retire(wire.CHTEntry{Node: dest.URL, State: state, Origin: dest.Origin, Seq: dest.Seq})
			}
			q.maybeComplete()
			q.mu.Unlock()
		}
	}
	if firstErr != nil && len(sites) == 1 {
		q.Cancel()
		return nil, firstErr
	}
	return q, nil
}

// bounced handles a clone returned by a server: hybrid queries route it
// into the fallback processor (created on first use) for central
// evaluation; non-hybrid queries retire its entries so the bounce
// degrades to a recorded forward failure instead of a stranded CHT.
func (q *Query) bounced(c *wire.CloneMsg) {
	q.mu.Lock()
	if q.done {
		q.mu.Unlock()
		return
	}
	q.lastReport = time.Now()
	if !q.hybrid {
		st := c.State()
		for _, dest := range c.Dest {
			q.retire(wire.CHTEntry{Node: dest.URL, State: st, Origin: dest.Origin, Seq: dest.Seq})
		}
		q.maybeComplete()
		q.mu.Unlock()
		return
	}
	q.fstats.Bounces++
	if q.fb == nil {
		q.fb = newFallback(q)
	}
	fb := q.fb
	q.mu.Unlock()
	fb.enqueue(c)
}

// shedded handles a typed SHED refusal: a site over its high watermark
// declined to start this query. The clone's entries retire (it will
// never be processed) and the query surfaces the refusal via Shed —
// distinct from the fault-path bounce, which still owes processing.
func (q *Query) shedded(m *wire.ShedMsg) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.done {
		return
	}
	q.lastReport = time.Now()
	q.shed = true
	q.jot(m.Clone, trace.Shed, m.Site)
	st := m.Clone.State()
	for _, dest := range m.Clone.Dest {
		q.retire(wire.CHTEntry{Node: dest.URL, State: st, Origin: dest.Origin, Seq: dest.Seq})
	}
	q.maybeComplete()
}

// Shed reports whether any site refused the query under admission
// control (load shedding). A shed query still completes — with answers
// only from the sites that accepted it; resubmit later for the rest.
func (q *Query) Shed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.shed
}

// FallbackStats returns the query's hybrid fallback counters.
func (q *Query) FallbackStats() FallbackStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.fstats
}

func (q *Query) dispatch(site string, msg *wire.CloneMsg) error {
	return q.sendSite(site, msg)
}

// poolSend delivers one message to the named endpoint over the query's
// connection pool. A send that fails on a reused connection — unless the
// fabric's fault injection ate the frame — is redone once over a fresh
// dial, so a stale pooled connection never masquerades as a down site.
func (q *Query) poolSend(to string, msg any) error {
	conn, reused, err := q.pool.Get(to)
	if err != nil {
		return err
	}
	if q.met != nil {
		if reused {
			q.met.ConnReused.Add(1)
		} else {
			q.met.ConnDialed.Add(1)
		}
	}
	err = wire.Send(conn, msg)
	if err == nil {
		q.pool.Put(to, conn)
		return nil
	}
	conn.Close()
	if !reused || errors.Is(err, netsim.ErrDropped) || errors.Is(err, netsim.ErrSevered) {
		return err
	}
	if q.met != nil {
		q.met.ConnStale.Add(1)
	}
	conn, err = q.pool.Dial(to)
	if err != nil {
		return err
	}
	if q.met != nil {
		q.met.ConnDialed.Add(1)
	}
	if err := wire.Send(conn, msg); err != nil {
		conn.Close()
		return err
	}
	q.pool.Put(to, conn)
	return nil
}

// collect is the Result Collector: it accepts connections on the query's
// endpoint and merges every ResultMsg.
func (q *Query) collect() {
	for {
		conn, err := q.ln.Accept()
		if err != nil {
			return
		}
		// Track accepted connections so finish can close them: with
		// connection pooling, servers hold their collector connections
		// open between reports, and passive termination (Section 2.8)
		// requires the next report on a finished query to FAIL at its
		// sender. Closing only the listener would leave pooled
		// connections deliverable forever.
		q.mu.Lock()
		if q.done {
			q.mu.Unlock()
			conn.Close()
			continue
		}
		q.conns[conn] = true
		q.mu.Unlock()
		go func() {
			defer func() {
				conn.Close()
				q.mu.Lock()
				delete(q.conns, conn)
				q.mu.Unlock()
			}()
			// Reporting servers pool this connection and stream many
			// frames over it; decode with a persistent session.
			framed := wire.NewFramedOpts(conn, q.frameOpts())
			for {
				msg, err := wire.Receive(framed)
				if err != nil {
					return
				}
				switch m := msg.(type) {
				case *wire.ResultMsg:
					if m.ID.Num == q.id.Num {
						q.merge(m)
					}
				case *wire.BounceMsg:
					if m.Clone.ID.Num == q.id.Num {
						q.bounced(m.Clone)
					}
				case *wire.ShedMsg:
					if m.Clone.ID.Num == q.id.Num {
						q.shedded(m)
					}
				}
			}
		}()
	}
}

// merge implements receive_results of Figure 2 under the counting-CHT
// refinement: retire the processed entry, enter the children, and check
// for completion. One ResultMsg carries one report (the seed wire form)
// or a server-batched frame of several; both merge under one lock hold.
// After the lock drops, any pending active-termination broadcast
// (Budget.FirstN newly satisfied, or new sites appearing while stopping)
// is shipped.
func (q *Query) merge(rm *wire.ResultMsg) {
	q.mu.Lock()
	if q.done {
		q.mu.Unlock()
		return
	}
	if q.cluster != nil && rm.From != "" && rm.Inc > 0 && q.cluster.Incarnation(rm.From) > rm.Inc {
		// The frame was sent before its replica crashed and re-registered:
		// the entries it would retire have been (or will be) replayed, so
		// merging it would double-retire them. Drop the whole frame; the
		// replay's own reports carry the authoritative accounting.
		q.stats.StaleRejected++
		if q.met != nil {
			q.met.StaleRejected.Add(1)
		}
		q.mu.Unlock()
		return
	}
	q.stats.ResultMsgs++
	q.lastReport = time.Now()
	rm.Each(func(r *wire.Report) {
		q.stats.Reports++
		if !r.Span.IsZero() {
			q.stitch(rm.ID, r)
		}
		if q.statSink != nil {
			q.statSink.learn(r.Stats)
		}
		if r.Expired {
			q.expired = true
		}
		for _, t := range r.Tables {
			q.mergeTable(t)
		}
		for _, u := range r.Updates {
			q.retire(u.Processed)
			for _, child := range u.Children {
				q.addEntry(child)
			}
		}
		if q.rec != nil {
			q.rec.fold(r)
		}
	})
	q.maybeComplete()
	stops := q.stopTargets()
	tunes, level := q.tuneCheck()
	q.mu.Unlock()
	q.broadcastStop(stops, "first-n satisfied")
	q.broadcastTune(tunes, level)
}

// jot appends one causal event for clone c to the query's journal (used
// by the hybrid fallback, which processes clones at the user-site).
func (q *Query) jot(c *wire.CloneMsg, kind trace.Kind, detail string) {
	if q.journal == nil {
		return
	}
	q.journal.Append(trace.Event{
		Query: c.ID.String(), Span: c.Span, Parent: c.Parent,
		Kind: kind, State: c.State().String(), Hop: c.Hops, Detail: detail,
	})
}

// stitch records the span context echoed on one result report: the
// processing site, the report's own span, and links to the clones it
// spawned. This is the user-site's remote view of the clone tree — enough
// to reconstruct the journey over a real network, where the remote sites'
// journals cannot be read. Callers hold q.mu.
func (q *Query) stitch(id wire.QueryID, r *wire.Report) {
	at := trace.Now()
	// A typed retirement books the span's fate as EXPIRED or STOPPED, not
	// processed, so budget and active terminations reconcile exactly in
	// the stitched journey.
	kind := trace.Result
	switch {
	case r.Stopped:
		kind = trace.Stop
	case r.Expired:
		kind = trace.Expire
	}
	q.stitched = append(q.stitched, trace.Event{
		At: at, Site: r.Site, Query: id.String(), Span: r.Span,
		Kind: kind, Hop: r.Hop,
		Detail: strconv.Itoa(len(r.Updates)) + " updates, " + strconv.Itoa(len(r.Tables)) + " tables",
	})
	for _, link := range r.Spawned {
		q.stitched = append(q.stitched, trace.Event{
			At: at, Site: r.Site, Query: id.String(), Span: link.Span,
			Parent: r.Span, Kind: trace.Forward, Hop: r.Hop + 1, Detail: link.Site,
		})
	}
}

// TraceEvents returns the query's causal trace as seen from the
// user-site: the client journal's own events (dispatches, fallback
// processing, reaps) plus the span events stitched from result reports.
// Over a real network this is the complete reconstructable view; pass it
// to trace.BuildJourney. In-process deployments should prefer the
// deployment collector, which merges the per-site journals directly.
func (q *Query) TraceEvents() []trace.Event {
	out := append([]trace.Event(nil), q.journal.Events()...)
	q.mu.Lock()
	out = append(out, q.stitched...)
	q.mu.Unlock()
	return out
}

// addEntry and retire maintain the signed counting multiset. Callers hold
// q.mu.
func (q *Query) addEntry(e wire.CHTEntry) {
	key := e.Key()
	if q.entries != nil {
		// Mirror the entry itself (not just its count) so the reaper can
		// reconstruct a stranded clone from the key alone; bump deletes the
		// mirror when the count returns to zero.
		q.entries[key] = e
	}
	q.bump(key, +1)
	q.stats.EntriesAdded++
	if q.nonzero > q.stats.PeakLive {
		q.stats.PeakLive = q.nonzero
	}
}

func (q *Query) retire(e wire.CHTEntry) {
	key := e.Key()
	if q.replayed != nil && q.replayed[key] && q.counts[key] <= 0 {
		// A second retirement of a replayed instance: both the replay and
		// the original (its report surviving the crash after all, or two
		// replicas each processing one copy) accounted the entry. The first
		// retirement balanced it; absorbing the duplicate keeps the
		// counting multiset exact. Scoped to replayed keys — for everything
		// else a negative count is the legal report-overtakes-announce
		// asynchrony and must stand.
		q.stats.DupRetired++
		if q.met != nil {
			q.met.DupRetired.Add(1)
		}
		return
	}
	if q.counts[key] <= 0 {
		// The report overtook the update announcing the entry.
		q.stats.GhostReports++
	}
	q.bump(key, -1)
	q.stats.EntriesRetired++
}

func (q *Query) bump(key string, delta int) {
	old := q.counts[key]
	now := old + delta
	if now == 0 {
		delete(q.counts, key)
		if q.entries != nil {
			delete(q.entries, key)
		}
		if old != 0 {
			q.nonzero--
		}
	} else {
		q.counts[key] = now
		if old == 0 {
			q.nonzero++
		}
	}
}

func (q *Query) mergeTable(t wire.NodeTable) {
	if q.acc != nil && t.Stage == q.finalStage {
		// Grouped query: final-stage rows are aggregate input, not
		// output. Fold the contribution once — its rows are partial
		// state when a pushed-down fragment already reduced them at the
		// site, raw projected rows otherwise — and emit nothing to the
		// stream; the final table materializes at completion.
		key := contribKey(&t)
		if q.contribSeen[key] {
			return
		}
		q.contribSeen[key] = true
		if t.Partial {
			q.acc.AddPartial(t.Rows)
		} else {
			q.acc.AddRaw(t.Cols, t.Rows, wire.ParseEnvKey(t.Env))
		}
		return
	}
	rt := q.tables[t.Stage]
	if rt == nil {
		rt = &ResultTable{Stage: t.Stage, Cols: t.Cols}
		q.tables[t.Stage] = rt
		q.rowSeen[t.Stage] = make(map[string]bool)
	}
	seen := q.rowSeen[t.Stage]
	fresh := false
	for _, row := range t.Rows {
		key := rowKey(row)
		if seen[key] {
			continue
		}
		seen[key] = true
		rt.Rows = append(rt.Rows, row)
		if len(q.srows) == 0 && q.stats.FirstRow == 0 {
			q.stats.FirstRow = time.Since(q.started)
		}
		q.srows = append(q.srows, StreamRow{Stage: t.Stage, Row: row})
		fresh = true
	}
	if fresh {
		if lag := len(q.srows) - q.sread; lag > q.stats.StreamHighWater {
			q.stats.StreamHighWater = lag
		}
		q.scond.Broadcast()
	}
}

// stopTargets flips the query into stopping mode once Budget.FirstN is
// satisfied (or Stop already flipped it) and returns the sites with live
// CHT entries that have not been told yet. Callers hold q.mu; the actual
// sends happen outside the lock via broadcastStop.
func (q *Query) stopTargets() []string {
	if !q.stopping && q.firstN > 0 && len(q.srows) >= q.firstN {
		q.stopping = true
	}
	if !q.stopping || q.done {
		return nil
	}
	var sites []string
	for key := range q.counts {
		// Key layout is "node§state§origin§seq" (wire.CHTEntry.Key); the
		// node's host is the site holding — or about to receive — the
		// clone.
		i := strings.Index(key, "§")
		if i <= 0 {
			continue
		}
		site := webgraph.Host(key[:i])
		if q.stopSent[site] {
			continue
		}
		q.stopSent[site] = true
		sites = append(sites, site)
	}
	sort.Strings(sites)
	return sites
}

// broadcastStop ships the typed StopMsg to each site's query server:
// active early termination, the measured counterpart of the paper's
// §2.8 passive starvation. Best-effort — an unreachable site's clones
// still retire through forward failures or the reaper. Callers must NOT
// hold q.mu.
func (q *Query) broadcastStop(sites []string, reason string) {
	if len(sites) == 0 {
		return
	}
	sent := 0
	for _, site := range sites {
		// Replicated sites get the stop on every replica endpoint: any of
		// them may hold the clone, and a StopMsg to an idle replica is a
		// cheap no-op. The site counts as told when any endpoint took it.
		eps := []string{server.Endpoint(site)}
		if q.cluster != nil {
			if all := q.cluster.Endpoints(site); len(all) > 0 {
				eps = all
			}
		}
		ok := false
		for _, ep := range eps {
			if q.poolSend(ep, &wire.StopMsg{ID: q.id, Reason: reason}) == nil {
				ok = true
			}
		}
		if ok {
			sent++
		}
	}
	q.mu.Lock()
	q.stats.StopsSent += sent
	q.mu.Unlock()
	if q.journal != nil {
		q.journal.Append(trace.Event{
			Query: q.id.String(), Kind: trace.Stop,
			Detail: reason + " -> " + strings.Join(sites, ","),
		})
	}
}

// Adaptive batching (Options.AdaptiveBatch) hysteresis: when the stream
// consumer's lag crosses tuneUpLag the collector is drowning in small
// frames, so every producing site is asked for larger, older batches;
// once the consumer drains back under tuneDownLag the defaults are
// restored. The boost asks for 1024-row / 20ms bounds (still capped by
// the server).
const (
	tuneUpLag          = 256
	tuneDownLag        = 32
	tuneBoostRows      = 1024
	tuneBoostAgeMicros = 20000
)

// frameOpts derives the wire-session options for this query's
// connections (its pool and its accepted collector sessions).
func (q *Query) frameOpts() wire.FramedOptions {
	if q.wireV1 {
		return wire.FramedOptions{Offer: 1, Accept: 1}
	}
	return wire.FramedOptions{}
}

// tuneCheck runs the adaptive-batching hysteresis against the current
// consumer lag and, on a level transition, returns the sites with live
// CHT entries to notify. Callers hold q.mu; the sends happen outside
// the lock via broadcastTune.
func (q *Query) tuneCheck() ([]string, int) {
	if !q.adaptive || q.done {
		return nil, 0
	}
	lag := len(q.srows) - q.sread
	switch {
	case q.tuneLevel == 0 && lag >= tuneUpLag:
		q.tuneLevel = 1
	case q.tuneLevel == 1 && lag <= tuneDownLag:
		q.tuneLevel = 0
	default:
		return nil, 0
	}
	seen := make(map[string]bool)
	var sites []string
	for key := range q.counts {
		i := strings.Index(key, "§")
		if i <= 0 {
			continue
		}
		site := webgraph.Host(key[:i])
		if seen[site] {
			continue
		}
		seen[site] = true
		sites = append(sites, site)
	}
	sort.Strings(sites)
	return sites, q.tuneLevel
}

// broadcastTune ships the TUNE frame for the new level to each site's
// query server — best-effort and advisory; a site that never hears it
// (or runs without batching) just keeps its defaults. Callers must NOT
// hold q.mu.
func (q *Query) broadcastTune(sites []string, level int) {
	if len(sites) == 0 {
		return
	}
	msg := &wire.TuneMsg{ID: q.id}
	if level > 0 {
		msg.MaxRows, msg.MaxAgeMicros = tuneBoostRows, tuneBoostAgeMicros
	}
	sent := 0
	for _, site := range sites {
		eps := []string{server.Endpoint(site)}
		if q.cluster != nil {
			if all := q.cluster.Endpoints(site); len(all) > 0 {
				eps = all
			}
		}
		for _, ep := range eps {
			if q.poolSend(ep, msg) == nil {
				sent++
			}
		}
	}
	q.mu.Lock()
	q.stats.TunesSent += sent
	q.mu.Unlock()
}

// Stop actively terminates the query's in-flight work: a typed StopMsg
// is broadcast to every site with live CHT entries (and, as entries for
// new sites keep arriving, to those too). The query itself keeps
// collecting — the stopped clones retire through the CHT with the typed
// STOPPED fate, so completion happens through the normal accounting,
// sooner, with the answers gathered so far. Combine with Cancel to also
// abandon collection.
func (q *Query) Stop(reason string) {
	q.mu.Lock()
	q.stopping = true
	stops := q.stopTargets()
	q.mu.Unlock()
	q.broadcastStop(stops, reason)
}

// Stopped reports whether active termination was triggered (by
// Budget.FirstN, Stop, or a cancelled submit context).
func (q *Query) Stopped() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stopping
}

func rowKey(row []string) string {
	out := ""
	for _, v := range row {
		out += v + "\x00"
	}
	return out
}

// reaper watches the query for orphaned CHT entries: when no report has
// arrived for the grace window while counts remain outstanding, the
// stranded entries belong to clones that will never report — a crashed
// site that accepted them, a severed report, a partition. The reaper
// retires them, marks the query Partial with the unaccounted-for sites,
// and completes it. Termination stays passive and cascade-free: the
// collector endpoint closes as on normal completion, and any straggler
// report simply fails at its sender (which then purges the query locally,
// exactly the paper's §2.8 behaviour — verified against the T6 harness).
func (q *Query) reaper() {
	t := time.NewTimer(q.reapGrace)
	defer t.Stop()
	for {
		select {
		case <-q.doneCh:
			return
		case <-t.C:
		}
		q.mu.Lock()
		if q.done {
			q.mu.Unlock()
			return
		}
		if idle := time.Since(q.lastReport); idle < q.reapGrace {
			q.mu.Unlock()
			t.Reset(q.reapGrace - idle)
			continue
		}
		if q.nonzero == 0 || q.fallbackBusy() {
			// Balanced but unfinished (shouldn't happen), or the local
			// fallback still has work queued that will produce reports.
			q.mu.Unlock()
			t.Reset(q.reapGrace)
			continue
		}
		// Before writing the orphans off, try to resume them: a replicated
		// deployment can replay the stranded clones against a surviving
		// replica (mid-traversal failover driven from the user-site). Only
		// when replay is not possible — or has been tried and the entries
		// stayed orphaned — does the reaper give up coverage.
		clones := q.orphanClones()
		if len(clones) == 0 {
			q.reap()
			q.mu.Unlock()
			return
		}
		q.mu.Unlock()
		if q.replay(clones) > 0 {
			q.mu.Lock()
			q.lastReport = time.Now()
			q.mu.Unlock()
		}
		t.Reset(q.reapGrace)
	}
}

// fallbackBusy reports whether the hybrid fallback still holds queued
// clones (local work that generates no network reports while pending).
// Callers hold q.mu.
func (q *Query) fallbackBusy() bool {
	return q.fb != nil && q.fb.pendingLen() > 0
}

// reap retires every outstanding CHT entry, records the sites they point
// at, and finishes the query as Partial. Callers hold q.mu.
func (q *Query) reap() {
	sites := make(map[string]bool)
	reaped := 0
	for key, cnt := range q.counts {
		if cnt > 0 {
			// Key layout is "node§state§origin§seq" (wire.CHTEntry.Key);
			// the node's host is the site that never reported.
			if i := strings.Index(key, "§"); i > 0 {
				sites[webgraph.Host(key[:i])] = true
			}
		}
		reaped++
	}
	q.counts = make(map[string]int)
	q.nonzero = 0
	q.stats.Reaped += reaped
	q.partial = true
	q.unreachable = q.unreachable[:0]
	for s := range sites {
		q.unreachable = append(q.unreachable, s)
	}
	sort.Strings(q.unreachable)
	if q.met != nil {
		q.met.CHTReaped.Add(int64(reaped))
	}
	q.journal.Append(trace.Event{
		Query: q.id.String(), Kind: trace.Reap,
		Detail: strconv.Itoa(reaped) + " entries, sites: " + strings.Join(q.unreachable, ","),
	})
	q.finish(nil)
}

// Partial reports whether the query completed degraded: the reaper
// retired orphaned CHT entries, so the answer covers only the reachable
// part of the web.
func (q *Query) Partial() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.partial
}

// Unreachable returns the sites whose CHT entries had to be reaped —
// the part of the web the answer does not cover. Empty unless Partial.
func (q *Query) Unreachable() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]string, len(q.unreachable))
	copy(out, q.unreachable)
	return out
}

// maybeComplete finishes the query when every CHT count is zero. Callers
// hold q.mu.
func (q *Query) maybeComplete() {
	if q.done || q.nonzero != 0 {
		return
	}
	q.finish(nil)
}

// finish marks the query done. Callers hold q.mu.
func (q *Query) finish(err error) {
	if q.done {
		return
	}
	q.done = true
	q.err = err
	q.stats.Duration = time.Since(q.started)
	if q.acc != nil && !q.finalized {
		// Materialize the grouped final table into the stream so Rows and
		// Stream deliver it: aggregates cannot stream incrementally — a
		// group's value is only final when every contribution is in.
		q.finalized = true
		_, rows := q.acc.FinalTable()
		for _, row := range rows {
			q.srows = append(q.srows, StreamRow{Stage: q.finalStage, Row: row})
		}
	}
	if q.unsub != nil {
		q.unsub()
		q.unsub = nil
	}
	close(q.doneCh)
	q.scond.Broadcast() // wake stream consumers: no more rows are coming
	if q.sess != nil {
		// The endpoint and pool belong to the session and stay open for
		// its other queries; this query just leaves the routing table.
		// Straggler reports are then dropped by the router rather than
		// failing at their sender — passive termination applies at the
		// session's granularity, when Session.Close closes the endpoint.
		q.sess.detach(q.id.Num)
	} else {
		// Closing the collector endpoint releases the name and makes any
		// straggler report fail fast at its sender. The accepted
		// connections must close too: senders pool them between reports,
		// and passive termination relies on their next send failing.
		q.ln.Close()
		for conn := range q.conns {
			conn.Close()
		}
		q.pool.Close()
	}
	if q.fb != nil {
		q.fb.close()
	}
}

// Cancel abandons the query: the collector endpoint is closed and every
// server that later tries to report results purges the query locally —
// the paper's passive, bounded termination.
func (q *Query) Cancel() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.finish(ErrCancelled)
}

// WaitContext blocks until the query completes or ctx ends. A passed
// deadline returns ErrTimeout and leaves the query running (the old
// Wait(timeout) contract); an explicit cancellation actively stops the
// query — StopMsg broadcast, then Cancel — and returns ErrCancelled.
func (q *Query) WaitContext(ctx context.Context) error {
	select {
	case <-q.doneCh:
		q.mu.Lock()
		defer q.mu.Unlock()
		return q.err
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return ErrTimeout
		}
		q.Stop("wait context cancelled")
		q.Cancel()
		return ErrCancelled
	}
}

// Wait blocks until the query completes, is cancelled, or the timeout
// elapses (timeout <= 0 waits forever). It returns nil on normal
// completion. It is the timeout form of WaitContext.
func (q *Query) Wait(timeout time.Duration) error {
	if timeout <= 0 {
		return q.WaitContext(context.Background())
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return q.WaitContext(ctx)
}

// Done reports whether the query has finished.
func (q *Query) Done() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.done
}

// LiveEntries returns the number of CHT entries with a nonzero count.
func (q *Query) LiveEntries() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.nonzero
}

// Progress estimates how much of the query has executed, as the fraction
// of CHT entries already retired (0 when nothing has reported, 1 at
// completion). Because results stream to the user-site as they are found
// (Section 2.6), Results called before completion returns the answers
// gathered so far — together with Progress this gives anytime,
// approximate answers: cancel at a deadline and keep the partial result.
func (q *Query) Progress() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.done {
		return 1
	}
	if q.stats.EntriesAdded == 0 {
		return 0
	}
	return float64(q.stats.EntriesRetired) / float64(q.stats.EntriesAdded)
}

// RowCount returns the number of result rows gathered so far, across all
// stages.
func (q *Query) RowCount() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, t := range q.tables {
		n += len(t.Rows)
	}
	return n
}

// Stats returns a copy of the query's protocol statistics. The
// streaming gauges are computed at call time: RowsStreamed is the
// furthest consumer's position, ConsumerLag the rows merged ahead of it.
func (q *Query) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := q.stats
	st.RowsStreamed = q.sread
	st.ConsumerLag = len(q.srows) - q.sread
	return st
}

// Expired reports whether any clone was terminated for exceeding the
// query's budget: the answer is clipped, not exhaustive.
func (q *Query) Expired() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.expired
}

// Err types how a finished query degraded, matchable with errors.Is: nil
// for a clean, complete answer; ErrCancelled/ErrTimeout when the query
// was abandoned; otherwise any applicable combination of ErrShed
// (admission control refused sites), ErrPartial (orphaned entries
// reaped) and ErrExpired (budget clipped clones), joined. A non-nil Err
// does not mean Results is empty — it means the answer's coverage is
// qualified.
func (q *Query) Err() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.err != nil {
		return q.err
	}
	var errs []error
	if q.shed {
		errs = append(errs, ErrShed)
	}
	if q.partial {
		errs = append(errs, ErrPartial)
	}
	if q.expired {
		errs = append(errs, ErrExpired)
	}
	return errors.Join(errs...)
}

// Rows returns the query's result rows as an incremental pull iterator
// yielding (stage, row) in merge order: rows already gathered come
// immediately, then the iterator blocks for new rows until the query
// finishes. Every call iterates the full sequence from the first row, so
// ranging after completion replays exactly the rows Results holds
// (unsorted, deduplicated). Breaking out of the range is safe and leaks
// nothing — the iterator is pull-based, with no goroutine behind it.
func (q *Query) Rows() iter.Seq2[int, []string] {
	return func(yield func(int, []string) bool) {
		i := 0
		q.mu.Lock()
		for {
			for i < len(q.srows) {
				r := q.srows[i]
				i++
				if i > q.sread {
					q.sread = i
				}
				q.mu.Unlock()
				ok := yield(r.Stage, r.Row)
				q.mu.Lock()
				if !ok {
					q.mu.Unlock()
					return
				}
			}
			if q.done {
				q.mu.Unlock()
				return
			}
			q.scond.Wait()
		}
	}
}

// Stream returns a bounded channel of the query's rows in merge order,
// from the first row. The channel closes when the query finishes (after
// delivering every row) or when ctx ends — the abandon-safe form of
// Rows for select loops. A slow consumer never blocks merge: rows spill
// into the query's ordered log and the lag is accounted in Stats.
//
// The pump is additionally bounded by the client's Options.Done channel:
// a consumer that abandons the channel with a background context would
// otherwise pin the pump forever on a finished query's undelivered rows,
// outliving the deployment that owns the transport.
func (q *Query) Stream(ctx context.Context) <-chan StreamRow {
	ch := make(chan StreamRow, 64)
	stop := make(chan struct{})
	go func() {
		// Waker: a cond-waiting pump cannot select on ctx, so turn the
		// ctx's (or the deployment's) end into a broadcast.
		select {
		case <-ctx.Done():
		case <-q.extDone:
		case <-stop:
			return
		}
		q.mu.Lock()
		q.scond.Broadcast()
		q.mu.Unlock()
	}()
	go func() {
		defer close(ch)
		defer close(stop)
		i := 0
		for {
			q.mu.Lock()
			for i >= len(q.srows) && !q.done && ctx.Err() == nil && !q.extClosed() {
				q.scond.Wait()
			}
			if ctx.Err() != nil || q.extClosed() || i >= len(q.srows) {
				q.mu.Unlock()
				return
			}
			r := q.srows[i]
			i++
			if i > q.sread {
				q.sread = i
			}
			q.mu.Unlock()
			select {
			case ch <- r:
			case <-ctx.Done():
				return
			case <-q.extDone:
				return
			}
		}
	}()
	return ch
}

// extClosed reports whether the client-wide Options.Done channel has
// closed (nil never closes).
func (q *Query) extClosed() bool {
	select {
	case <-q.extDone:
		return true
	default:
		return false
	}
}

// Results returns the merged result tables ordered by stage, with rows
// sorted for deterministic presentation. For a query with an output
// contract, the final stage honors it: grouped queries return the
// aggregate table (computed from the contributions folded so far — the
// anytime property extends to aggregates), and ORDER BY / LIMIT queries
// return the final stage ordered by its keys and truncated.
func (q *Query) Results() []ResultTable {
	q.mu.Lock()
	defer q.mu.Unlock()
	stages := make([]int, 0, len(q.tables))
	for s := range q.tables {
		stages = append(stages, s)
	}
	sort.Ints(stages)
	out := make([]ResultTable, 0, len(stages)+1)
	for _, s := range stages {
		if q.acc != nil && s == q.finalStage {
			continue // replaced by the aggregate table below
		}
		t := q.tables[s]
		rows := make([][]string, len(t.Rows))
		copy(rows, t.Rows)
		if q.output != nil && q.acc == nil && s == q.finalStage {
			rows = plan.SortLimit(rows, t.Cols, q.output)
		} else {
			sortRows(rows)
		}
		out = append(out, ResultTable{Stage: t.Stage, Cols: t.Cols, Rows: rows})
	}
	if q.acc != nil {
		cols, rows := q.acc.FinalTable()
		out = append(out, ResultTable{Stage: q.finalStage, Cols: cols, Rows: rows})
	}
	return out
}

func sortRows(rows [][]string) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
