package client

import (
	"testing"

	"webdis/internal/cluster"
	"webdis/internal/wire"
)

// TestMergeRejectsStaleIncarnation pins the stale-reply guard: a result
// frame stamped with a replica incarnation older than the membership's
// current registration is dropped whole (its retirements would collide
// with the replay's), while a frame from the current incarnation merges.
func TestMergeRejectsStaleIncarnation(t *testing.T) {
	m := cluster.New(cluster.Options{})
	m.AddSite("a.example", 2)
	ep := cluster.ReplicaEndpoint("a.example", 1)
	m.Register(ep) // incarnation 1: the replica that sent the frame
	m.Register(ep) // incarnation 2: its restart

	e := wire.CHTEntry{
		Node:   "http://a.example/x.html",
		State:  wire.State{NumQ: 1, Rem: "_"},
		Origin: "user/q1", Seq: 1,
	}
	other := wire.CHTEntry{
		Node:   "http://a.example/y.html",
		State:  wire.State{NumQ: 1, Rem: "_"},
		Origin: "user/q1", Seq: 2,
	}
	q := &Query{
		cluster: m,
		counts:  map[string]int{e.Key(): 1, other.Key(): 1},
		nonzero: 2,
	}

	stale := &wire.ResultMsg{
		From: ep, Inc: 1,
		Updates: []wire.CHTUpdate{{Processed: e}},
	}
	q.merge(stale)
	if q.stats.StaleRejected != 1 {
		t.Fatalf("StaleRejected = %d, want 1", q.stats.StaleRejected)
	}
	if q.stats.Reports != 0 || q.counts[e.Key()] != 1 {
		t.Fatalf("stale frame was merged: reports=%d count=%d", q.stats.Reports, q.counts[e.Key()])
	}

	fresh := &wire.ResultMsg{
		From: ep, Inc: 2,
		Updates: []wire.CHTUpdate{{Processed: e}},
	}
	q.merge(fresh)
	if q.stats.Reports != 1 || q.stats.EntriesRetired != 1 {
		t.Fatalf("current-incarnation frame not merged: %+v", q.stats)
	}
	if q.counts[e.Key()] != 0 {
		t.Fatalf("entry not retired by the fresh frame: count=%d", q.counts[e.Key()])
	}
}

// TestRetireAbsorbsReplayedDuplicate pins the replayed-key dedup: when
// both the replay's report and the crashed replica's surviving report
// retire the same entry, the second retirement is absorbed — but ONLY
// for replayed keys at count zero. Everything else keeps the legal
// report-overtakes-announce negative.
func TestRetireAbsorbsReplayedDuplicate(t *testing.T) {
	e := wire.CHTEntry{
		Node:   "http://a.example/x.html",
		State:  wire.State{NumQ: 1, Rem: "_"},
		Origin: "user/q1", Seq: 1,
	}
	q := &Query{
		counts:   make(map[string]int),
		entries:  make(map[string]wire.CHTEntry),
		replayed: make(map[string]bool),
	}
	q.addEntry(e)
	q.replayed[e.Key()] = true
	q.retire(e) // the replay's own retirement balances the entry
	if q.counts[e.Key()] != 0 || q.nonzero != 0 {
		t.Fatalf("first retirement did not balance: count=%d nonzero=%d", q.counts[e.Key()], q.nonzero)
	}
	q.retire(e) // the corpse's report arrives after all
	if q.stats.DupRetired != 1 {
		t.Fatalf("DupRetired = %d, want 1", q.stats.DupRetired)
	}
	if q.counts[e.Key()] != 0 || q.nonzero != 0 {
		t.Fatalf("duplicate retirement dented the ledger: count=%d nonzero=%d", q.counts[e.Key()], q.nonzero)
	}

	// A non-replayed key still books the transient negative.
	other := wire.CHTEntry{
		Node:   "http://a.example/y.html",
		State:  wire.State{NumQ: 1, Rem: "_"},
		Origin: "user/q1", Seq: 2,
	}
	q.retire(other)
	if q.stats.GhostReports != 1 || q.counts[other.Key()] != -1 {
		t.Fatalf("overtaking report mishandled: ghosts=%d count=%d",
			q.stats.GhostReports, q.counts[other.Key()])
	}
}
