package client

import (
	"strings"
	"testing"
	"time"

	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/wire"
)

// fakeServer accepts clones at a site endpoint and lets the test send
// hand-crafted ResultMsgs back to the query's collector.
type fakeServer struct {
	t    *testing.T
	net  *netsim.Network
	site string

	clones chan *wire.CloneMsg
}

func newFakeServer(t *testing.T, n *netsim.Network, site string) *fakeServer {
	f := &fakeServer{t: t, net: n, site: site, clones: make(chan *wire.CloneMsg, 16)}
	ln, err := n.Listen(server.Endpoint(site))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				framed := wire.NewFramed(conn)
				for {
					msg, err := wire.Receive(framed)
					if err != nil {
						return
					}
					if c, ok := msg.(*wire.CloneMsg); ok {
						f.clones <- c
					}
				}
			}()
		}
	}()
	return f
}

func (f *fakeServer) recv() *wire.CloneMsg {
	select {
	case c := <-f.clones:
		return c
	case <-time.After(5 * time.Second):
		f.t.Fatal("no clone received")
		return nil
	}
}

func (f *fakeServer) reply(id wire.QueryID, msg *wire.ResultMsg) error {
	conn, err := f.net.Dial(server.Endpoint(f.site), id.Site)
	if err != nil {
		return err
	}
	defer conn.Close()
	return wire.Send(conn, msg)
}

const oneStage = `select d.url from document d such that "http://a.example/x.html" G·L d where d.url contains "a"`

func TestSubmitEntersCHTAndDispatches(t *testing.T) {
	n := netsim.New(netsim.Options{})
	f := newFakeServer(t, n, "a.example")
	c := New(n, "maya", "user")

	q, err := c.Submit(disql.MustParse(oneStage))
	if err != nil {
		t.Fatal(err)
	}
	clone := f.recv()
	if len(clone.Dest) != 1 || clone.Dest[0].URL != "http://a.example/x.html" {
		t.Fatalf("clone = %+v", clone)
	}
	if clone.Rem != "G·L" || len(clone.Stages) != 1 || clone.Base != 0 {
		t.Errorf("clone = %+v", clone)
	}
	if clone.ID.User != "maya" || clone.ID.Site != "user/q1" {
		t.Errorf("id = %+v", clone.ID)
	}
	if q.LiveEntries() != 1 || q.Done() {
		t.Errorf("live = %d done = %v", q.LiveEntries(), q.Done())
	}

	// A processing report with no children completes the query.
	st := clone.State()
	err = f.reply(clone.ID, &wire.ResultMsg{
		ID: clone.ID,
		Updates: []wire.CHTUpdate{{
			Processed: wire.CHTEntry{Node: clone.Dest[0].URL, State: st, Origin: clone.Dest[0].Origin, Seq: clone.Dest[0].Seq},
		}},
		Tables: []wire.NodeTable{{Node: clone.Dest[0].URL, Stage: 0, Cols: []string{"d.url"}, Rows: [][]string{{"http://a.example/x.html"}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	res := q.Results()
	if len(res) != 1 || len(res[0].Rows) != 1 {
		t.Fatalf("results = %+v", res)
	}
	stats := q.Stats()
	if stats.EntriesAdded != 1 || stats.EntriesRetired != 1 || stats.ResultMsgs != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestChildrenKeepQueryAlive(t *testing.T) {
	n := netsim.New(netsim.Options{})
	f := newFakeServer(t, n, "a.example")
	c := New(n, "u", "user")
	q, err := c.Submit(disql.MustParse(oneStage))
	if err != nil {
		t.Fatal(err)
	}
	clone := f.recv()
	st := clone.State()
	parent := wire.CHTEntry{Node: clone.Dest[0].URL, State: st, Origin: clone.Dest[0].Origin, Seq: clone.Dest[0].Seq}
	child := wire.CHTEntry{Node: "http://b.example/y.html", State: wire.State{NumQ: 1, Rem: "L"}, Origin: "a.example/query", Seq: 1}
	if err := f.reply(clone.ID, &wire.ResultMsg{
		ID:      clone.ID,
		Updates: []wire.CHTUpdate{{Processed: parent, Children: []wire.CHTEntry{child}}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := q.Wait(50 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("Wait = %v, want timeout while child is live", err)
	}
	if q.LiveEntries() != 1 {
		t.Errorf("live = %d", q.LiveEntries())
	}
	// Retiring the child completes the query.
	if err := f.reply(clone.ID, &wire.ResultMsg{
		ID:      clone.ID,
		Updates: []wire.CHTUpdate{{Processed: child}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := q.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfOrderReportsStillComplete(t *testing.T) {
	// The child's report arrives before the parent's update that
	// announced it: counts dip negative, then settle to zero.
	n := netsim.New(netsim.Options{})
	f := newFakeServer(t, n, "a.example")
	c := New(n, "u", "user")
	q, err := c.Submit(disql.MustParse(oneStage))
	if err != nil {
		t.Fatal(err)
	}
	clone := f.recv()
	st := clone.State()
	parent := wire.CHTEntry{Node: clone.Dest[0].URL, State: st, Origin: clone.Dest[0].Origin, Seq: clone.Dest[0].Seq}
	child := wire.CHTEntry{Node: "http://b.example/y.html", State: wire.State{NumQ: 1, Rem: "L"}, Origin: "a.example/query", Seq: 1}

	// Child report first.
	if err := f.reply(clone.ID, &wire.ResultMsg{ID: clone.ID,
		Updates: []wire.CHTUpdate{{Processed: child}}}); err != nil {
		t.Fatal(err)
	}
	waitStats(t, q, func(s Stats) bool { return s.ResultMsgs == 1 })
	if q.Done() {
		t.Fatal("query completed with the parent update outstanding")
	}
	// Parent update second.
	if err := f.reply(clone.ID, &wire.ResultMsg{ID: clone.ID,
		Updates: []wire.CHTUpdate{{Processed: parent, Children: []wire.CHTEntry{child}}}}); err != nil {
		t.Fatal(err)
	}
	if err := q.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if q.Stats().GhostReports != 1 {
		t.Errorf("ghost reports = %d", q.Stats().GhostReports)
	}
}

func waitStats(t *testing.T, q *Query, ok func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if ok(q.Stats()) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never reached")
}

func TestCancelClosesCollector(t *testing.T) {
	n := netsim.New(netsim.Options{})
	f := newFakeServer(t, n, "a.example")
	c := New(n, "u", "user")
	q, err := c.Submit(disql.MustParse(oneStage))
	if err != nil {
		t.Fatal(err)
	}
	clone := f.recv()
	q.Cancel()
	if err := q.Wait(time.Second); err != ErrCancelled {
		t.Fatalf("Wait = %v", err)
	}
	// The passive termination signal: the server's reply now fails.
	if err := f.reply(clone.ID, &wire.ResultMsg{ID: clone.ID}); err == nil {
		t.Fatal("reply after cancel should fail")
	}
	// Cancel twice is fine.
	q.Cancel()
}

func TestSubmitFailsWhenNoServer(t *testing.T) {
	n := netsim.New(netsim.Options{})
	c := New(n, "u", "user")
	if _, err := c.Submit(disql.MustParse(oneStage)); err == nil {
		t.Fatal("Submit should fail when the only start site is down")
	}
	// The collector endpoint was released: a new submit can reuse names.
	if _, err := n.Listen("user/q1"); err != nil {
		t.Fatalf("endpoint not released: %v", err)
	}
}

func TestSubmitInvalidQuery(t *testing.T) {
	n := netsim.New(netsim.Options{})
	c := New(n, "u", "user")
	if _, err := c.Submit(&disql.WebQuery{}); err == nil {
		t.Fatal("invalid web-query should be rejected")
	}
}

func TestPartialStartSiteFailure(t *testing.T) {
	n := netsim.New(netsim.Options{})
	f := newFakeServer(t, n, "a.example")
	// b.example has no server.
	c := New(n, "u", "user")
	q, err := c.Submit(disql.MustParse(
		`select d.url from document d such that ("http://a.example/x.html", "http://b.example/y.html") G d where d.url contains "a"`))
	if err != nil {
		t.Fatal(err)
	}
	clone := f.recv()
	// Only the reachable site's entry is live.
	if q.LiveEntries() != 1 {
		t.Errorf("live = %d", q.LiveEntries())
	}
	st := clone.State()
	if err := f.reply(clone.ID, &wire.ResultMsg{ID: clone.ID,
		Updates: []wire.CHTUpdate{{Processed: wire.CHTEntry{
			Node: clone.Dest[0].URL, State: st, Origin: clone.Dest[0].Origin, Seq: clone.Dest[0].Seq,
		}}}}); err != nil {
		t.Fatal(err)
	}
	if err := q.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestResultRowDedupAcrossMessages(t *testing.T) {
	n := netsim.New(netsim.Options{})
	f := newFakeServer(t, n, "a.example")
	c := New(n, "u", "user")
	q, err := c.Submit(disql.MustParse(oneStage))
	if err != nil {
		t.Fatal(err)
	}
	clone := f.recv()
	st := clone.State()
	tbl := wire.NodeTable{Node: "n", Stage: 0, Cols: []string{"d.url"},
		Rows: [][]string{{"http://same.example/"}, {"http://same.example/"}}}
	child := wire.CHTEntry{Node: "m", State: st, Origin: "x", Seq: 1}
	f.reply(clone.ID, &wire.ResultMsg{ID: clone.ID,
		Updates: []wire.CHTUpdate{{Processed: wire.CHTEntry{Node: clone.Dest[0].URL, State: st, Origin: clone.Dest[0].Origin, Seq: clone.Dest[0].Seq}, Children: []wire.CHTEntry{child}}},
		Tables:  []wire.NodeTable{tbl}})
	f.reply(clone.ID, &wire.ResultMsg{ID: clone.ID,
		Updates: []wire.CHTUpdate{{Processed: child}},
		Tables:  []wire.NodeTable{tbl}})
	if err := q.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	res := q.Results()
	if len(res) != 1 || len(res[0].Rows) != 1 {
		t.Fatalf("results = %+v", res)
	}
}

func TestQueryIDsAreUnique(t *testing.T) {
	n := netsim.New(netsim.Options{})
	newFakeServer(t, n, "a.example")
	c := New(n, "u", "user")
	q1, err := c.Submit(disql.MustParse(oneStage))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := c.Submit(disql.MustParse(oneStage))
	if err != nil {
		t.Fatal(err)
	}
	if q1.ID() == q2.ID() {
		t.Error("IDs must differ")
	}
	if !strings.HasPrefix(q2.ID().Site, "user/q") {
		t.Errorf("site = %s", q2.ID().Site)
	}
	q1.Cancel()
	q2.Cancel()
}

// Guard: the collector must ignore messages for other query IDs.
func TestCollectorIgnoresForeignIDs(t *testing.T) {
	n := netsim.New(netsim.Options{})
	f := newFakeServer(t, n, "a.example")
	c := New(n, "u", "user")
	q, err := c.Submit(disql.MustParse(oneStage))
	if err != nil {
		t.Fatal(err)
	}
	clone := f.recv()
	foreign := clone.ID
	foreign.Num += 99
	f.reply(clone.ID, &wire.ResultMsg{ID: foreign,
		Updates: []wire.CHTUpdate{{Processed: wire.CHTEntry{Node: clone.Dest[0].URL, State: clone.State(), Origin: clone.Dest[0].Origin, Seq: clone.Dest[0].Seq}}}})
	if err := q.Wait(50 * time.Millisecond); err != ErrTimeout {
		t.Fatalf("foreign message should not complete the query: %v", err)
	}
	q.Cancel()
}
