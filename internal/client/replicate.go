package client

import (
	"errors"
	"sort"
	"strconv"

	"webdis/internal/nodeproc"
	"webdis/internal/server"
	"webdis/internal/trace"
	"webdis/internal/webgraph"
	"webdis/internal/wire"
)

// This file is the user-site half of replica routing (the server half is
// Server.sendSite): failover-aware dispatch, and the reaper's replay of
// clones stranded inside a crashed replica.

// errNoReplica is returned by sendSite when every replica of the
// destination site has been tried and failed.
var errNoReplica = errors.New("client: no replica of the destination site is reachable")

// maxReplayRounds bounds how many reap-grace windows the reaper spends
// replaying stranded clones before conceding coverage. Each round only
// fires after a full idle grace window, so the bound caps added latency
// at a few windows while still surviving a crash during a replay.
const maxReplayRounds = 3

// sendSite delivers one clone to the named logical site, resolving a
// replica through the membership table when the client is clustered and
// failing over to the next live replica when a send fails. Unclustered
// clients keep the classic one-endpoint-per-site path.
func (q *Query) sendSite(site string, msg *wire.CloneMsg) error {
	_, err := q.sendSiteVia(site, msg, nil)
	return err
}

// sendSiteVia is sendSite with an initial exclusion set (the replay
// rotation's memory); it reports the endpoint that accepted the message.
// Failovers are counted only for re-resolutions within this call, not for
// the caller's pre-excluded endpoints.
func (q *Query) sendSiteVia(site string, msg *wire.CloneMsg, exclude map[string]bool) (string, error) {
	if q.cluster == nil {
		return server.Endpoint(site), q.poolSend(server.Endpoint(site), msg)
	}
	tried := make(map[string]bool, len(exclude)+1)
	for ep := range exclude {
		tried[ep] = true
	}
	attempts := 0
	var lastErr error
	for {
		ep, ok := q.cluster.Pick(site, msg.ID.String(), tried)
		if !ok {
			if lastErr == nil {
				lastErr = errNoReplica
			}
			return "", lastErr
		}
		if attempts > 0 {
			q.mu.Lock()
			q.stats.Failovers++
			q.mu.Unlock()
			if q.met != nil {
				q.met.Failovers.Add(1)
			}
			q.jot(msg, trace.Failover, site+" -> "+ep)
		}
		attempts++
		err := q.poolSend(ep, msg)
		if err == nil {
			q.cluster.ReportSuccess(ep)
			return ep, nil
		}
		q.cluster.ReportFailure(ep)
		lastErr = err
		tried[ep] = true
	}
}

// orphanClones reconstructs dispatchable clones for the CHT entries still
// live after a full reap-grace window: the work a crashed replica took
// with it. Each entry's key carries (node, state, origin, seq) and the
// mirrored entry supplies the exact instance serials, so the replayed
// clone re-announces the SAME entries — the replay retires what the
// corpse stranded, not a fresh generation, and the ledger stays exact.
// Returns nil (and leaves state untouched) when replay is off, exhausted,
// or any live entry cannot be reconstructed; the caller then reaps.
// Callers hold q.mu.
func (q *Query) orphanClones() []*wire.CloneMsg {
	if q.cluster == nil || !q.replayable || q.replayRounds >= maxReplayRounds {
		return nil
	}
	// Group live entries by (site, state): one clone message per group,
	// matching the per-site batching of a normal forward.
	type group struct {
		site  string
		state wire.State
		dest  []wire.DestNode
	}
	groups := make(map[string]*group)
	var order []string
	for key, cnt := range q.counts {
		if cnt <= 0 {
			continue
		}
		e, ok := q.entries[key]
		if !ok || e.State.NumQ <= 0 || e.State.NumQ > len(q.web.Stages) {
			// An entry we cannot reconstruct (or a state from a web-query
			// shape we do not understand): replay would lose it silently,
			// so fall back to the honest reap.
			return nil
		}
		site := webgraph.Host(e.Node)
		gk := site + "\x00" + e.State.Key()
		g := groups[gk]
		if g == nil {
			g = &group{site: site, state: e.State}
			groups[gk] = g
			order = append(order, gk)
		}
		for i := 0; i < cnt; i++ {
			g.dest = append(g.dest, wire.DestNode{URL: e.Node, Origin: e.Origin, Seq: e.Seq})
		}
	}
	if len(order) == 0 {
		return nil
	}
	sort.Strings(order)
	q.replayRounds++
	var out []*wire.CloneMsg
	for _, gk := range order {
		g := groups[gk]
		sort.Slice(g.dest, func(i, j int) bool {
			if g.dest[i].URL != g.dest[j].URL {
				return g.dest[i].URL < g.dest[j].URL
			}
			return g.dest[i].Seq < g.dest[j].Seq
		})
		base := len(q.web.Stages) - g.state.NumQ
		msg := &wire.CloneMsg{
			ID:     q.id,
			Dest:   g.dest,
			Rem:    g.state.Rem,
			Base:   base,
			Stages: nodeproc.EncodeStages(q.web.Stages[base:]),
			Hops:   1, // mid-traversal resume, not a fresh root
			Budget: q.budget,
		}
		if q.journal != nil {
			msg.Span = wire.SpanID{Origin: q.id.Site, Seq: q.spanSeq.Add(1)}
		}
		for _, d := range g.dest {
			q.replayed[wire.CHTEntry{Node: d.URL, State: g.state, Origin: d.Origin, Seq: d.Seq}.Key()] = true
		}
		out = append(out, msg)
	}
	return out
}

// replay dispatches reconstructed orphan clones to surviving replicas and
// returns how many were accepted. Rounds rotate replicas: a replica used
// by an earlier round for the same site is excluded, because a silently
// failing replica — one that accepts clones but whose reports never
// arrive — still looks alive to the membership table, and replaying into
// it forever would turn the replay loop into a wedge. Callers must NOT
// hold q.mu.
func (q *Query) replay(clones []*wire.CloneMsg) int {
	sent := 0
	for _, msg := range clones {
		site := webgraph.Host(msg.Dest[0].URL)
		q.mu.Lock()
		exclude := q.replayVia[site]
		q.mu.Unlock()
		if q.journal != nil {
			q.journal.Append(trace.Event{
				Query: q.id.String(), Span: msg.Span, Kind: trace.Replay,
				State: msg.State().String(), Hop: msg.Hops,
				Detail: site + ": " + strconv.Itoa(len(msg.Dest)) + " stranded",
			})
		}
		ep, err := q.sendSiteVia(site, msg, exclude)
		if err != nil && len(exclude) > 0 {
			// Every not-yet-rotated replica failed; the one we are avoiding
			// may be the only survivor (or back from the dead). Retry open.
			ep, err = q.sendSiteVia(site, msg, nil)
		}
		if err != nil {
			continue
		}
		sent++
		q.mu.Lock()
		if q.replayVia == nil {
			q.replayVia = make(map[string]map[string]bool)
		}
		if q.replayVia[site] == nil {
			q.replayVia[site] = make(map[string]bool)
		}
		q.replayVia[site][ep] = true
		q.stats.Replays++
		q.mu.Unlock()
		if q.met != nil {
			q.met.ReplicaReplays.Add(1)
		}
	}
	return sent
}
