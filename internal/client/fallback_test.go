package client

import (
	"strings"
	"testing"
	"time"

	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/webgraph"
	"webdis/internal/webserver"
)

// hostAll starts a document host for every site of web (no query servers
// at all — the fully non-participating world).
func hostAll(t *testing.T, n *netsim.Network, web *webgraph.Web) {
	t.Helper()
	for _, site := range web.Hosts() {
		h := webserver.NewHost(site, web)
		if err := h.Start(n); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(h.Stop)
	}
}

func TestFallbackProcessesWholeQueryLocally(t *testing.T) {
	web := webgraph.Campus()
	n := netsim.New(netsim.Options{})
	hostAll(t, n, web)

	c := New(n, "u", "user")
	c.SetHybrid(true)
	q, err := c.Submit(disql.MustParse(webgraph.CampusDISQL))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	res := q.Results()
	if len(res) != 2 || len(res[1].Rows) != len(webgraph.CampusConveners) {
		t.Fatalf("results = %+v", res)
	}
	for _, row := range res[1].Rows {
		if !strings.Contains(row[1], webgraph.CampusConveners[row[0]]) {
			t.Errorf("row = %v", row)
		}
	}
	fs := q.FallbackStats()
	if fs.Fetches == 0 || fs.Evaluations == 0 || fs.LocalClones == 0 {
		t.Errorf("fallback stats = %+v", fs)
	}
	if fs.Rejoined != 0 {
		t.Errorf("nothing to rejoin with no servers: %+v", fs)
	}
	// CHT balanced even though everything was self-reported.
	st := q.Stats()
	if st.EntriesAdded != st.EntriesRetired {
		t.Errorf("CHT imbalance: %+v", st)
	}
}

func TestFallbackDocumentCacheBounded(t *testing.T) {
	// A diamond revisits the same node; the fallback must fetch each
	// document once.
	web := webgraph.NewWeb()
	top := web.NewPage("http://a.example/top.html", "Top")
	top.AddLink("http://b.example/l.html", "l")
	top.AddLink("http://c.example/r.html", "r")
	web.NewPage("http://b.example/l.html", "L").AddLink("http://d.example/join.html", "j")
	web.NewPage("http://c.example/r.html", "R").AddLink("http://d.example/join.html", "j")
	web.NewPage("http://d.example/join.html", "Join").AddText("the join")

	n := netsim.New(netsim.Options{})
	hostAll(t, n, web)
	c := New(n, "u", "user")
	c.SetHybrid(true)
	q, err := c.Submit(disql.MustParse(
		`select d.url from document d such that "http://a.example/top.html" N|G*3 d`))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rows := q.Results()[0].Rows; len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	if fs := q.FallbackStats(); fs.Fetches != 4 {
		t.Errorf("fetches = %d, want one per document", fs.Fetches)
	}
}

func TestFallbackMissingDocumentIsDeadEnd(t *testing.T) {
	web := webgraph.NewWeb()
	p := web.NewPage("http://a.example/x.html", "X")
	p.AddLink("/gone.html", "floating")
	n := netsim.New(netsim.Options{})
	hostAll(t, n, web)
	c := New(n, "u", "user")
	c.SetHybrid(true)
	q, err := c.Submit(disql.MustParse(
		`select d.url from document d such that "http://a.example/x.html" N|L d`))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rows := q.Results()[0].Rows; len(rows) != 1 {
		t.Errorf("rows = %v", rows)
	}
}

func TestNonHybridClientFailsWithoutServers(t *testing.T) {
	web := webgraph.Campus()
	n := netsim.New(netsim.Options{})
	hostAll(t, n, web)
	c := New(n, "u", "user") // hybrid off
	if _, err := c.Submit(disql.MustParse(webgraph.CampusDISQL)); err == nil {
		t.Fatal("submit should fail: no query server and no hybrid fallback")
	}
}

func TestFallbackCancelledQueryStops(t *testing.T) {
	web := webgraph.Chain(100, 1, 2)
	n := netsim.New(netsim.Options{Latency: time.Millisecond})
	hostAll(t, n, web)
	c := New(n, "u", "user")
	c.SetHybrid(true)
	q, err := c.Submit(disql.MustParse(
		`select d.url from document d such that "http://c0.example/p0.html" N|G* d`))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	q.Cancel()
	if err := q.Wait(time.Second); err != ErrCancelled {
		t.Fatalf("Wait = %v", err)
	}
	// The fallback queue was closed: apart from the destination in flight
	// at the instant of cancellation, fetch counts stop growing.
	time.Sleep(20 * time.Millisecond) // let any in-flight destination finish
	a := q.FallbackStats().Fetches
	time.Sleep(50 * time.Millisecond)
	b := q.FallbackStats().Fetches
	if a != b {
		t.Errorf("fallback kept working after cancel: %d -> %d", a, b)
	}
	if b >= 100 {
		t.Errorf("cancel had no effect: %d fetches", b)
	}
}
