package client

import (
	"strconv"
	"sync"

	"webdis/internal/wire"
)

// statStore is the user-site's accumulated view of per-site statistics,
// learned from the Stats piggybacked on result frames. It outlives any
// single query (it hangs off the Client), so the planner's cost model
// warms up across queries: the first traversal ships queries blind, the
// next one hints every clone with what the first observed.
type statStore struct {
	mu    sync.Mutex
	stats map[string]wire.SiteStat
}

func newStatStore() *statStore {
	return &statStore{stats: make(map[string]wire.SiteStat)}
}

// learn folds piggybacked statistics in; snapshots are cumulative
// counters, so the latest replaces the stored one.
func (ss *statStore) learn(stats []wire.SiteStat) {
	if ss == nil || len(stats) == 0 {
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	for _, st := range stats {
		if st.Site == "" {
			continue
		}
		ss.stats[st.Site] = st
	}
}

// hints snapshots the store for attachment to outgoing clones, bounded
// to wire.MaxHints entries.
func (ss *statStore) hints() []wire.SiteStat {
	if ss == nil {
		return nil
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make([]wire.SiteStat, 0, len(ss.stats))
	for _, st := range ss.stats {
		if len(out) >= wire.MaxHints {
			break
		}
		out = append(out, st)
	}
	return out
}

// contribKey identifies one node-query contribution: the (node, stage,
// environment) triple under which its rows were computed. Evaluation is
// deterministic given those three, so the aggregate fold deduplicates
// whole contributions by this key — re-arrivals of the same state must
// not count twice, while the same node answering under two different
// upstream bindings counts once per binding.
func contribKey(t *wire.NodeTable) string {
	return t.Node + "§" + strconv.Itoa(t.Stage) + "§" + t.Env
}
