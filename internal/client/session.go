package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"webdis/internal/cluster"
	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/wire"
)

// ErrSessionClosed is returned by Session.Submit after Close.
var ErrSessionClosed = errors.New("client: session closed")

// Session multiplexes many concurrent queries over one Result Collector
// endpoint ("<base>/s<n>") and one connection pool. The paper gives each
// query its own listening socket; a multi-query user-site would exhaust
// endpoints (and handshakes) that way, so a session routes every report
// to its query by query id instead — the queries keep their own CHTs,
// reapers and result tables untouched.
//
// Termination semantics shift one level up: a finished query leaves the
// routing table, so its straggler reports are dropped by the router
// rather than failing at the sender (servers only see sends fail — and
// purge passively, Section 2.8 — once the whole session closes). The
// queries' CHT accounting is indifferent: a dropped straggler was
// already accounted or reaped.
type Session struct {
	c        *Client
	endpoint string
	ln       net.Listener
	pool     *netsim.Pool
	unsub    func() // detaches the down-replica pool eviction, if clustered

	mu      sync.Mutex
	conns   map[net.Conn]bool
	queries map[int]*Query
	closed  bool
}

// NewSession opens a multi-query session: one collector endpoint and
// connection pool shared by every query submitted through it.
func (c *Client) NewSession() (*Session, error) {
	c.mu.Lock()
	c.sessions++
	n := c.sessions
	c.mu.Unlock()
	ln, endpoint, err := c.listenCollector(fmt.Sprintf("s%d", n))
	if err != nil {
		return nil, fmt.Errorf("client: session collector: %w", err)
	}
	s := &Session{
		c:        c,
		endpoint: endpoint,
		ln:       ln,
		pool: netsim.NewPool(c.tr, endpoint, netsim.PoolOptions{
			Wrap: func(conn net.Conn) net.Conn { return wire.NewFramedOpts(conn, c.frameOpts()) },
		}),
		conns:   make(map[net.Conn]bool),
		queries: make(map[int]*Query),
	}
	if cl := c.opts.Cluster; cl != nil {
		// Shared-pool hygiene, as for per-query pools: a replica declared
		// down has its idle connections evicted so the session's next send
		// re-resolves instead of burning a send on the corpse.
		pool := s.pool
		s.unsub = cl.Subscribe(func(ep string, st cluster.State) {
			if st == cluster.Down {
				pool.EvictPeer(ep)
			}
		})
	}
	go s.accept()
	return s, nil
}

// Endpoint returns the session's collector endpoint name.
func (s *Session) Endpoint() string { return s.endpoint }

// Submit dispatches a web-query whose results are collected over the
// session's shared endpoint. Queries from one session run concurrently;
// Wait on each Query as usual.
func (s *Session) Submit(w *disql.WebQuery) (*Query, error) {
	return s.c.submit(w, wire.Budget{}, s, nil)
}

// SubmitBudget is Submit with a wire-carried resource budget (see
// Client.SubmitBudget).
func (s *Session) SubmitBudget(w *disql.WebQuery, b wire.Budget) (*Query, error) {
	return s.c.submit(w, b, s, nil)
}

// SubmitContext is Submit bound to ctx: when ctx ends before the query
// completes, the query is actively stopped and cancelled (see
// Client.SubmitContext). The session itself stays open.
func (s *Session) SubmitContext(ctx context.Context, w *disql.WebQuery) (*Query, error) {
	return s.SubmitBudgetContext(ctx, w, wire.Budget{})
}

// SubmitBudgetContext is SubmitContext with a resource budget.
func (s *Session) SubmitBudgetContext(ctx context.Context, w *disql.WebQuery, b wire.Budget) (*Query, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q, err := s.c.submit(w, b, s, nil)
	if err != nil {
		return nil, err
	}
	q.watch(ctx)
	return q, nil
}

// register adds a query to the routing table.
func (s *Session) register(q *Query) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrSessionClosed
	}
	s.queries[q.id.Num] = q
	return nil
}

// detach removes a finished query from the routing table. Stragglers
// addressed to it are dropped by the router from then on.
func (s *Session) detach(num int) {
	s.mu.Lock()
	delete(s.queries, num)
	s.mu.Unlock()
}

// lookup resolves a query id to its live query, or nil.
func (s *Session) lookup(num int) *Query {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queries[num]
}

// accept runs the session's Result Collector: every frame is routed to
// its query by id. The query is resolved outside any per-query lock, so
// routing for one query never blocks on another's merge.
func (s *Session) accept() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = true
		s.mu.Unlock()
		go func() {
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			framed := wire.NewFramedOpts(conn, s.c.frameOpts())
			for {
				msg, err := wire.Receive(framed)
				if err != nil {
					return
				}
				switch m := msg.(type) {
				case *wire.ResultMsg:
					if q := s.lookup(m.ID.Num); q != nil {
						q.merge(m)
					}
				case *wire.BounceMsg:
					if q := s.lookup(m.Clone.ID.Num); q != nil {
						q.bounced(m.Clone)
					}
				case *wire.ShedMsg:
					if q := s.lookup(m.Clone.ID.Num); q != nil {
						q.shedded(m)
					}
				}
			}
		}()
	}
}

// Live returns the number of queries still registered with the session.
func (s *Session) Live() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queries)
}

// Close shuts the session down: the shared endpoint and pool close (so
// any further report fails at its sender — passive termination for the
// whole session) and every still-running query is cancelled.
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		conns = append(conns, conn)
	}
	queries := make([]*Query, 0, len(s.queries))
	for _, q := range s.queries {
		queries = append(queries, q)
	}
	s.mu.Unlock()
	if s.unsub != nil {
		s.unsub()
	}
	s.ln.Close()
	for _, conn := range conns {
		conn.Close()
	}
	s.pool.Close()
	// Cancel outside s.mu: each cancel re-enters detach.
	for _, q := range queries {
		q.Cancel()
	}
}
