package client

import (
	"strconv"
	"sync"
	"sync/atomic"

	"webdis/internal/disql"
	"webdis/internal/nodeproc"
	"webdis/internal/pre"
	"webdis/internal/trace"
	"webdis/internal/webgraph"
	"webdis/internal/webserver"
	"webdis/internal/wire"
)

// FallbackStats describes the hybrid fallback work a query performed at
// the user-site on behalf of non-participating sites (Section 7.1 of the
// paper: "queries related to these sites [are handled] in the traditional
// centralized approach").
type FallbackStats struct {
	Bounces      int // bounced clones received from servers
	LocalClones  int // clones processed at the user-site (bounces + re-queues)
	Fetches      int // documents downloaded to the user-site
	Evaluations  int // node-queries evaluated at the user-site
	Rejoined     int // clones handed back to participating query servers
	LoadFailures int // nodes given up on because their document never loaded
}

// fallback is a query's hybrid processor: it evaluates clones addressed
// to non-participating sites by downloading their documents (data
// shipping, the paper's "traditional manner") and re-enters distributed
// mode whenever a continuation targets a participating site.
type fallback struct {
	q     *Query
	fetch *webserver.Fetcher
	log   *nodeproc.LogTable
	cache map[string][]byte
	seq   atomic.Int64

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*wire.CloneMsg
	closed bool
}

func newFallback(q *Query) *fallback {
	f := &fallback{
		q:     q,
		fetch: webserver.NewFetcher(q.tr, q.id.Site),
		log:   nodeproc.NewLogTable(nodeproc.DedupSubsume),
		cache: make(map[string][]byte),
	}
	f.cond = sync.NewCond(&f.mu)
	go f.run()
	return f
}

// enqueue hands a clone to the fallback processor.
func (f *fallback) enqueue(c *wire.CloneMsg) {
	f.mu.Lock()
	if !f.closed {
		f.queue = append(f.queue, c)
		f.cond.Signal()
	}
	f.mu.Unlock()
}

func (f *fallback) close() {
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

func (f *fallback) isClosed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// pendingLen returns the number of queued clones (the reaper must not
// fire while local work is still pending).
func (f *fallback) pendingLen() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.queue)
}

func (f *fallback) run() {
	for {
		f.mu.Lock()
		for len(f.queue) == 0 && !f.closed {
			f.cond.Wait()
		}
		if f.closed {
			f.mu.Unlock()
			return
		}
		c := f.queue[0]
		f.queue = f.queue[1:]
		f.mu.Unlock()
		f.process(c)
	}
}

// load fetches a document, caching it for the query's lifetime like the
// centralized baseline does. A fetch cut down by transient loss (the
// fabric's fault injection) is retried a few times before the node is
// given up on.
func (f *fallback) load(url string) ([]byte, error) {
	if content, ok := f.cache[url]; ok {
		return content, nil
	}
	var content []byte
	var err error
	for attempt := 0; attempt < 4; attempt++ {
		if content, err = f.fetch.Get(url); err == nil {
			break
		}
		if f.isClosed() {
			return nil, err
		}
	}
	if err != nil {
		return nil, err
	}
	f.q.mu.Lock()
	f.q.fstats.Fetches++
	f.q.mu.Unlock()
	f.cache[url] = content
	return content, nil
}

// process runs one clone through the same per-node algorithm a query
// server uses, applying the CHT updates and results directly to the
// query's own tables (the user-site reporting to itself), then forwards
// continuation clones — to a participating server when one answers, back
// onto the local queue otherwise. Updates are applied before forwarding,
// preserving the CHT-before-forward invariant.
func (f *fallback) process(c *wire.CloneMsg) {
	f.q.mu.Lock()
	f.q.fstats.LocalClones++
	f.q.mu.Unlock()
	f.q.jot(c, trace.Arrive, strconv.Itoa(len(c.Dest))+" dests (fallback)")

	stages, _, err := nodeproc.ParseStagesCached(c.Stages)
	arrRem, _, err2 := pre.ParseCached(c.Rem)
	if err != nil || err2 != nil || len(stages) == 0 {
		f.retireAll(c)
		return
	}

	var updates []wire.CHTUpdate
	var tables []wire.NodeTable
	outs := make(map[string]*wire.CloneMsg)
	var order []string

	seen := make(map[string]bool)
	for _, dest := range c.Dest {
		if f.isClosed() {
			return // cancelled: abandon the remaining destinations
		}
		if seen[dest.URL] {
			continue
		}
		seen[dest.URL] = true
		upd, tbls := f.processNode(dest, arrRem, stages, c, outs, &order)
		updates = append(updates, upd)
		tables = append(tables, tbls...)
	}

	// Apply results and CHT updates locally first (CHT-before-forward).
	f.q.merge(&wire.ResultMsg{ID: c.ID, Updates: updates, Tables: tables})
	f.q.jot(c, trace.Result, "processed centrally")

	for _, key := range order {
		f.forward(outs[key])
	}
}

// processNode mirrors server.processNode for local execution.
func (f *fallback) processNode(dest wire.DestNode, arrRem pre.Expr, stages []disql.Stage, c *wire.CloneMsg, outs map[string]*wire.CloneMsg, order *[]string) (wire.CHTUpdate, []wire.NodeTable) {
	node := dest.URL
	arrival := wire.CHTEntry{
		Node:   node,
		State:  wire.State{NumQ: len(stages), Rem: arrRem.String()},
		Origin: dest.Origin,
		Seq:    dest.Seq,
	}
	update := wire.CHTUpdate{Processed: arrival}

	rem := arrRem
	switch v := f.log.Check(node, c.ID, len(stages), rem, wire.EnvKey(c.Env)); v.Action {
	case nodeproc.Drop:
		return update, nil
	case nodeproc.Rewrite:
		rem = v.Rem
	}

	content, err := f.load(node)
	if err != nil {
		f.q.mu.Lock()
		f.q.fstats.LoadFailures++
		f.q.mu.Unlock()
		return update, nil
	}
	db, err := nodeproc.BuildDB(node, content)
	if err != nil {
		return update, nil
	}

	var tables []wire.NodeTable
	type item struct {
		rem    pre.Expr
		stages []disql.Stage
		base   int
		env    map[string]string
	}
	work := []item{{rem, stages, c.Base, c.Env}}
	first := true
	for len(work) > 0 {
		it := work[0]
		work = work[1:]
		if !first {
			switch v := f.log.Check(node, c.ID, len(it.stages), it.rem, wire.EnvKey(it.env)); v.Action {
			case nodeproc.Drop:
				continue
			case nodeproc.Rewrite:
				it.rem = v.Rem
			}
		}
		first = false

		res, err := nodeproc.Step(db, node, it.rem, it.stages[0], len(it.stages) > 1, it.env)
		if err != nil {
			continue
		}
		if res.Evaluated {
			f.q.mu.Lock()
			f.q.fstats.Evaluations++
			f.q.mu.Unlock()
			if !res.DeadEnd && len(it.stages[0].Query.Select) > 0 && !res.Table.Empty() {
				tables = append(tables, wire.NodeTable{
					Node: node, Stage: it.base,
					Cols: res.Table.Cols, Rows: res.Table.Rows,
					// Env identifies the contribution for the aggregate
					// fold, exactly as the servers stamp it.
					Env: wire.EnvKey(it.env),
				})
			}
		}
		for _, fw := range res.Continue {
			update.Children = append(update.Children,
				f.addTargets(outs, order, fw, it.stages, it.base, it.env, c)...)
		}
		if res.Advance {
			work = append(work, item{it.stages[1].PRE, it.stages[1:], it.base + 1,
				nodeproc.ExtendEnv(it.env, it.stages[0], db)})
		}
	}
	return update, tables
}

// addTargets batches continuation targets per (site, state), with the
// user-site as the origin of the new CHT entries.
func (f *fallback) addTargets(outs map[string]*wire.CloneMsg, order *[]string, fw nodeproc.Forward, stages []disql.Stage, base int, env map[string]string, c *wire.CloneMsg) []wire.CHTEntry {
	state := wire.State{NumQ: len(stages), Rem: fw.Rem.String()}
	var children []wire.CHTEntry
	for _, tgt := range fw.Targets {
		site := webgraph.Host(tgt.URL)
		key := site + "§" + state.Key() + "§" + wire.EnvKey(env)
		oc := outs[key]
		if oc == nil {
			oc = &wire.CloneMsg{
				ID:     c.ID,
				Rem:    fw.Rem.String(),
				Base:   base,
				Stages: nodeproc.EncodeStages(stages),
				Hops:   c.Hops + 1,
				Env:    env,
				// A rejoining clone keeps the query's budget, one hop
				// spent, so distributed enforcement resumes where it
				// left off. (The fallback itself only evaluates clones
				// already admitted and paid for.) The plan fragment
				// rejoins too — the next participating site resumes
				// pushdown.
				Budget: c.Budget.Spend(),
				Frag:   c.Frag,
			}
			if f.q.journal != nil || !c.Span.IsZero() {
				oc.Span = wire.SpanID{Origin: f.q.id.Site, Seq: f.q.spanSeq.Add(1)}
				oc.Parent = c.Span
			}
			outs[key] = oc
			*order = append(*order, key)
		}
		dup := false
		for _, d := range oc.Dest {
			if d.URL == tgt.URL {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		dest := wire.DestNode{URL: tgt.URL, Origin: f.q.id.Site, Seq: f.seq.Add(1)}
		oc.Dest = append(oc.Dest, dest)
		children = append(children, wire.CHTEntry{
			Node: tgt.URL, State: state, Origin: dest.Origin, Seq: dest.Seq,
		})
	}
	return children
}

// forward hands a continuation clone to its site's query server when it
// participates, otherwise keeps it on the local fallback queue.
func (f *fallback) forward(oc *wire.CloneMsg) {
	site := webgraph.Host(oc.Dest[0].URL)
	f.q.jot(oc, trace.Forward, site)
	err := f.q.sendSite(site, oc)
	if err == nil {
		f.q.mu.Lock()
		f.q.fstats.Rejoined++
		f.q.mu.Unlock()
		return
	}
	f.enqueue(oc)
}

// retireAll retires a malformed clone's entries locally.
func (f *fallback) retireAll(c *wire.CloneMsg) {
	st := c.State()
	updates := make([]wire.CHTUpdate, 0, len(c.Dest))
	for _, dest := range c.Dest {
		updates = append(updates, wire.CHTUpdate{Processed: wire.CHTEntry{
			Node: dest.URL, State: st, Origin: dest.Origin, Seq: dest.Seq,
		}})
	}
	f.q.merge(&wire.ResultMsg{ID: c.ID, Updates: updates})
}
