package client

import (
	"testing"
	"time"

	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/trace"
	"webdis/internal/wire"
)

func processedReply(clone *wire.CloneMsg) *wire.ResultMsg {
	st := clone.State()
	updates := make([]wire.CHTUpdate, 0, len(clone.Dest))
	for _, dest := range clone.Dest {
		updates = append(updates, wire.CHTUpdate{Processed: wire.CHTEntry{
			Node: dest.URL, State: st, Origin: dest.Origin, Seq: dest.Seq,
		}})
	}
	return &wire.ResultMsg{ID: clone.ID, Updates: updates}
}

func TestSessionRoutesConcurrentQueries(t *testing.T) {
	n := netsim.New(netsim.Options{})
	f := newFakeServer(t, n, "a.example")
	c := New(n, "u", "user")
	s, err := c.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	q1, err := s.Submit(disql.MustParse(oneStage))
	if err != nil {
		t.Fatal(err)
	}
	q2, err := s.Submit(disql.MustParse(oneStage))
	if err != nil {
		t.Fatal(err)
	}
	if s.Live() != 2 {
		t.Errorf("live = %d", s.Live())
	}
	c1, c2 := f.recv(), f.recv()
	// Both clones report back to the one shared collector endpoint; the
	// session must route each report to its own query by id.
	if c1.ID.Site != s.Endpoint() || c2.ID.Site != s.Endpoint() {
		t.Fatalf("clone sites = %q, %q, want %q", c1.ID.Site, c2.ID.Site, s.Endpoint())
	}
	if c1.ID.Num == c2.ID.Num {
		t.Fatalf("queries share id %d", c1.ID.Num)
	}
	// Finish the second query first: completion order is independent.
	if err := f.reply(c2.ID, processedReply(c2)); err != nil {
		t.Fatal(err)
	}
	second := q2
	if c2.ID.Num == q1.ID().Num {
		second = q1
	}
	if err := second.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := f.reply(c1.ID, processedReply(c1)); err != nil {
		t.Fatal(err)
	}
	if err := q1.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := q2.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if s.Live() != 0 {
		t.Errorf("live after completion = %d", s.Live())
	}
	// A straggler for a finished query is dropped by the router, not an
	// error at the sender: the session endpoint is still open.
	if err := f.reply(c1.ID, processedReply(c1)); err != nil {
		t.Errorf("straggler send failed at sender: %v", err)
	}
}

func TestSessionShedSurfaced(t *testing.T) {
	n := netsim.New(netsim.Options{})
	f := newFakeServer(t, n, "a.example")
	c := New(n, "u", "user")
	s, err := c.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	q, err := s.Submit(disql.MustParse(oneStage))
	if err != nil {
		t.Fatal(err)
	}
	clone := f.recv()
	// The server refuses the fresh clone: a typed SHED bounce retires its
	// entries and surfaces on the query.
	conn, err := n.Dial("a.example/query", clone.ID.Site)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.Send(conn, &wire.ShedMsg{Clone: clone, Site: "a.example"}); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if err := q.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !q.Shed() {
		t.Error("Shed() = false after a SHED bounce")
	}
	if len(q.Results()) != 0 {
		t.Errorf("shed query produced results: %+v", q.Results())
	}
}

func TestSessionExpiredFateReconciles(t *testing.T) {
	// The TCP-stitch path: an EXPIRED report carries only its span context
	// over the wire, and the client books it so the reconstructed journey
	// shows FateExpired — the remote site's journal is never read.
	n := netsim.New(netsim.Options{})
	f := newFakeServer(t, n, "a.example")
	c := New(n, "u", "user")
	c.SetJournal(trace.NewJournal("user", 0))
	s, err := c.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	q, err := s.SubmitBudget(disql.MustParse(oneStage),
		wire.Budget{Deadline: time.Now().Add(-time.Millisecond).UnixNano()})
	if err != nil {
		t.Fatal(err)
	}
	clone := f.recv()
	if clone.Span.IsZero() {
		t.Fatal("traced dispatch has no span")
	}
	if clone.Budget.Deadline == 0 {
		t.Fatal("budget not carried on the wire")
	}
	rm := processedReply(clone)
	rm.Expired = true
	rm.Span = clone.Span
	rm.Site = "a.example"
	if err := f.reply(clone.ID, rm); err != nil {
		t.Fatal(err)
	}
	if err := q.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	jy := trace.BuildJourney(q.ID().String(), q.TraceEvents())
	node := jy.Spans[clone.Span]
	if node == nil {
		t.Fatal("dispatched span missing from stitched journey")
	}
	if node.Fate != trace.FateExpired {
		t.Errorf("fate = %q, want %q", node.Fate, trace.FateExpired)
	}
	if node.Site != "a.example" {
		t.Errorf("site = %q", node.Site)
	}
}

func TestSessionSubmitAfterClose(t *testing.T) {
	n := netsim.New(netsim.Options{})
	newFakeServer(t, n, "a.example")
	c := New(n, "u", "user")
	s, err := c.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Submit(disql.MustParse(oneStage)); err != ErrSessionClosed {
		t.Fatalf("Submit after Close = %v", err)
	}
}

func TestSessionCloseCancelsLiveQueries(t *testing.T) {
	n := netsim.New(netsim.Options{})
	f := newFakeServer(t, n, "a.example")
	c := New(n, "u", "user")
	s, err := c.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	q, err := s.Submit(disql.MustParse(oneStage))
	if err != nil {
		t.Fatal(err)
	}
	clone := f.recv()
	s.Close()
	if err := q.Wait(time.Second); err != ErrCancelled {
		t.Fatalf("Wait after session close = %v", err)
	}
	// Passive termination at session granularity: the endpoint is gone,
	// so a late report now fails at its sender.
	if err := f.reply(clone.ID, processedReply(clone)); err == nil {
		t.Error("reply after session close should fail")
	}
}
