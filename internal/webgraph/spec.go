package webgraph

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// FromSpec builds a web from a compact textual specification, used by the
// command-line tools:
//
//	campus                         the Section-5 campus web
//	figure1, figure5               the paper's worked examples
//	tree:f=3,d=4,pps=4,marker=0.1  complete tree (fanout, depth, pages/site)
//	random:s=8,pps=4,lo=2,go=2,marker=0.3
//	powerlaw:n=100,pps=2,out=2,marker=0.2  preferential-attachment web
//	chain:n=20,pps=2
//	grid:c=6,r=6
//
// seed applies to the generators that take one.
func FromSpec(spec string, seed int64) (*Web, error) {
	name, args, _ := strings.Cut(spec, ":")
	params, err := parseParams(args)
	if err != nil {
		return nil, err
	}
	geti := func(key string, def int) int {
		if v, ok := params[key]; ok {
			n, _ := strconv.Atoi(v)
			return n
		}
		return def
	}
	getf := func(key string, def float64) float64 {
		if v, ok := params[key]; ok {
			f, _ := strconv.ParseFloat(v, 64)
			return f
		}
		return def
	}
	switch name {
	case "campus":
		return Campus(), nil
	case "figure1":
		return Figure1(), nil
	case "figure5":
		return Figure5(), nil
	case "tree":
		return Tree(TreeOpts{
			Fanout:       geti("f", 3),
			Depth:        geti("d", 4),
			PagesPerSite: geti("pps", 4),
			MarkerFrac:   getf("marker", 0.1),
			FillerWords:  geti("words", 0),
			Seed:         seed,
		}), nil
	case "random":
		return Random(RandomOpts{
			Sites:        geti("s", 8),
			PagesPerSite: geti("pps", 4),
			LocalOut:     geti("lo", 2),
			GlobalOut:    geti("go", 2),
			MarkerFrac:   getf("marker", 0.3),
			FillerWords:  geti("words", 0),
			Seed:         seed,
		}), nil
	case "powerlaw":
		return PowerLaw(PowerLawOpts{
			Pages:        geti("n", 100),
			PagesPerSite: geti("pps", 2),
			OutLinks:     geti("out", 2),
			MarkerFrac:   getf("marker", 0.2),
			FillerWords:  geti("words", 0),
			Seed:         seed,
		}), nil
	case "chain":
		return Chain(geti("n", 20), geti("pps", 1), seed), nil
	case "grid":
		return Grid(geti("c", 6), geti("r", 6), seed), nil
	}
	return nil, fmt.Errorf("webgraph: unknown web spec %q (campus, figure1, figure5, tree, random, powerlaw, chain, grid)", name)
}

// ScaleSpec rewrites a generator spec's size parameter so the web it
// builds holds at least pages pages, leaving every other parameter as
// given — the webgen -pages knob. Tree webs grow by depth (the only
// parameter that changes a tree's page count), random webs by site
// count, grids by rows; powerlaw and chain take the count directly.
// Fixed webs (campus, figure1, figure5) cannot be scaled.
func ScaleSpec(spec string, pages int) (string, error) {
	if pages <= 0 {
		return "", fmt.Errorf("webgraph: cannot scale %q to %d pages", spec, pages)
	}
	name, args, _ := strings.Cut(spec, ":")
	params, err := parseParams(args)
	if err != nil {
		return "", err
	}
	geti := func(key string, def int) int {
		if v, ok := params[key]; ok {
			n, _ := strconv.Atoi(v)
			return n
		}
		return def
	}
	switch name {
	case "tree":
		f := geti("f", 3)
		if f < 2 {
			f = 2
		}
		total, width, depth := 1, 1, 0
		for total < pages {
			width *= f
			total += width
			depth++
		}
		params["d"] = strconv.Itoa(depth)
	case "random":
		pps := geti("pps", 4)
		if pps < 1 {
			pps = 1
		}
		params["s"] = strconv.Itoa((pages + pps - 1) / pps)
	case "powerlaw":
		params["n"] = strconv.Itoa(pages)
	case "chain":
		params["n"] = strconv.Itoa(pages)
	case "grid":
		c := geti("c", 6)
		if c < 1 {
			c = 1
		}
		params["r"] = strconv.Itoa((pages + c - 1) / c)
	case "campus", "figure1", "figure5":
		return "", fmt.Errorf("webgraph: %s is a fixed web and cannot be scaled", name)
	default:
		return "", fmt.Errorf("webgraph: unknown web spec %q", name)
	}
	keys := make([]string, 0, len(params))
	for k := range params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + params[k]
	}
	return name + ":" + strings.Join(parts, ","), nil
}

func parseParams(args string) (map[string]string, error) {
	out := make(map[string]string)
	if args == "" {
		return out, nil
	}
	for _, kv := range strings.Split(args, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || k == "" {
			return nil, fmt.Errorf("webgraph: bad spec parameter %q", kv)
		}
		out[k] = v
	}
	return out, nil
}
