package webgraph

import "testing"

func TestFromSpec(t *testing.T) {
	cases := []struct {
		spec  string
		pages int
		sites int
	}{
		{"campus", 15, 6},
		{"figure1", 8, 6},
		{"figure5", 7, 7},
		{"tree:f=2,d=2,pps=2", 7, 4},
		{"random:s=3,pps=2,lo=1,go=1", 6, 3},
		{"chain:n=6,pps=3", 6, 2},
		{"grid:c=2,r=3", 6, 2},
	}
	for _, c := range cases {
		w, err := FromSpec(c.spec, 1)
		if err != nil {
			t.Fatalf("FromSpec(%q): %v", c.spec, err)
		}
		if w.NumPages() != c.pages || w.NumSites() != c.sites {
			t.Errorf("FromSpec(%q): pages=%d sites=%d, want %d/%d",
				c.spec, w.NumPages(), w.NumSites(), c.pages, c.sites)
		}
	}
}

func TestFromSpecDefaults(t *testing.T) {
	w, err := FromSpec("tree", 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumPages() != 1+3+9+27+81 {
		t.Errorf("default tree pages = %d", w.NumPages())
	}
}

func TestFromSpecErrors(t *testing.T) {
	for _, spec := range []string{"nosuch", "tree:banana", "tree:=3"} {
		if _, err := FromSpec(spec, 1); err == nil {
			t.Errorf("FromSpec(%q) should fail", spec)
		}
	}
}

func TestFromSpecSeedMatters(t *testing.T) {
	a, _ := FromSpec("random:s=3,pps=3", 1)
	b, _ := FromSpec("random:s=3,pps=3", 2)
	same := true
	for _, u := range a.URLs() {
		ha, _ := a.HTML(u)
		hb, ok := b.HTML(u)
		if !ok || string(ha) != string(hb) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should generate different webs")
	}
}
