package webgraph

import "testing"

func TestFromSpec(t *testing.T) {
	cases := []struct {
		spec  string
		pages int
		sites int
	}{
		{"campus", 15, 6},
		{"figure1", 8, 6},
		{"figure5", 7, 7},
		{"tree:f=2,d=2,pps=2", 7, 4},
		{"random:s=3,pps=2,lo=1,go=1", 6, 3},
		{"chain:n=6,pps=3", 6, 2},
		{"grid:c=2,r=3", 6, 2},
	}
	for _, c := range cases {
		w, err := FromSpec(c.spec, 1)
		if err != nil {
			t.Fatalf("FromSpec(%q): %v", c.spec, err)
		}
		if w.NumPages() != c.pages || w.NumSites() != c.sites {
			t.Errorf("FromSpec(%q): pages=%d sites=%d, want %d/%d",
				c.spec, w.NumPages(), w.NumSites(), c.pages, c.sites)
		}
	}
}

func TestFromSpecDefaults(t *testing.T) {
	w, err := FromSpec("tree", 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.NumPages() != 1+3+9+27+81 {
		t.Errorf("default tree pages = %d", w.NumPages())
	}
}

func TestFromSpecErrors(t *testing.T) {
	for _, spec := range []string{"nosuch", "tree:banana", "tree:=3"} {
		if _, err := FromSpec(spec, 1); err == nil {
			t.Errorf("FromSpec(%q) should fail", spec)
		}
	}
}

func TestScaleSpec(t *testing.T) {
	cases := []struct {
		spec  string
		pages int
	}{
		{"tree:f=2,pps=3", 100},
		{"tree", 500},
		{"random:pps=5,marker=0.3", 120},
		{"powerlaw:out=2", 333},
		{"chain:pps=4", 40},
		{"grid:c=4", 30},
	}
	for _, c := range cases {
		scaled, err := ScaleSpec(c.spec, c.pages)
		if err != nil {
			t.Fatalf("ScaleSpec(%q, %d): %v", c.spec, c.pages, err)
		}
		w, err := FromSpec(scaled, 1)
		if err != nil {
			t.Fatalf("FromSpec(%q): %v", scaled, err)
		}
		// At least the requested count, without gross overshoot: a tree
		// can only grow by whole levels (factor f), everything else is
		// bounded by one site/row/page of slack.
		if w.NumPages() < c.pages {
			t.Errorf("ScaleSpec(%q, %d) = %q: only %d pages", c.spec, c.pages, scaled, w.NumPages())
		}
		if w.NumPages() > c.pages*4 {
			t.Errorf("ScaleSpec(%q, %d) = %q: overshot to %d pages", c.spec, c.pages, scaled, w.NumPages())
		}
	}
	// Deterministic output: same input, same spec string.
	a, _ := ScaleSpec("random:pps=5,marker=0.3", 120)
	b, _ := ScaleSpec("random:pps=5,marker=0.3", 120)
	if a != b {
		t.Errorf("ScaleSpec not deterministic: %q vs %q", a, b)
	}
	// Fixed webs and garbage refuse.
	for _, bad := range []string{"campus", "figure1", "figure5", "nosuch", "tree:=x"} {
		if _, err := ScaleSpec(bad, 100); err == nil {
			t.Errorf("ScaleSpec(%q) should fail", bad)
		}
	}
	if _, err := ScaleSpec("tree", 0); err == nil {
		t.Error("ScaleSpec with pages=0 should fail")
	}
}

func TestFromSpecSeedMatters(t *testing.T) {
	a, _ := FromSpec("random:s=3,pps=3", 1)
	b, _ := FromSpec("random:s=3,pps=3", 2)
	same := true
	for _, u := range a.URLs() {
		ha, _ := a.HTML(u)
		hb, ok := b.HTML(u)
		if !ok || string(ha) != string(hb) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should generate different webs")
	}
}
