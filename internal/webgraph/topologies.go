package webgraph

import (
	"fmt"
	"math/rand"
)

// First returns the first page added to the web — every generator adds its
// natural start node first, so this is the conventional StartNode.
func (w *Web) First() string {
	if len(w.hosts) == 0 {
		return ""
	}
	return w.sites[w.hosts[0]][0]
}

// ---------------------------------------------------------------------------
// Figure 1: the traversal-roles example of Section 2.5.
//
// Query Q = S G·(G|L) q1 (G|L) q2 visits nodes {1..8}: 1, 2, 3 act as
// PureRouters, 4–8 as ServerRouters; node 4 acts twice (once for q1 and
// once for q2); node 7 fails q1 and becomes a dead end; node 8 is reached
// from both 4 and 6 in the same state, so the second arrival is a
// duplicate.

// Figure-1 node URLs, indexed 1..8 (index 0 unused).
var Figure1Nodes = []string{
	"",
	"http://s1.example/n1.html",
	"http://s2.example/n2.html",
	"http://s3.example/n3.html",
	"http://s4.example/n4.html",
	"http://s2.example/n5.html", // local sibling of n2
	"http://s5.example/n6.html",
	"http://s3.example/n7.html", // local sibling of n3
	"http://s6.example/n8.html",
}

// Figure1Start is the StartNode S of the Figure-1 example.
const Figure1Start = "http://s1.example/n1.html"

// Figure1DISQL is the Figure-1 example as a DISQL query.
const Figure1DISQL = `
select d1.url, d2.url
from document d1 such that "http://s1.example/n1.html" G·(G|L) d1,
where d1.text contains "q1-answer"
     document d2 such that d1 (G|L) d2
where d2.text contains "q2-answer"`

// Figure1 builds the eight-node web of the paper's Figure 1.
func Figure1() *Web {
	w := NewWeb()
	r := rand.New(rand.NewSource(1))
	n := Figure1Nodes
	mk := func(i int, markers ...string) *Page {
		p := w.NewPage(n[i], fmt.Sprintf("Figure 1 node %d", i))
		for _, m := range markers {
			p.AddText("This node holds the token " + m + ".")
		}
		addFiller(p, r, 80)
		return p
	}
	p1 := mk(1)
	p1.AddLink(n[2], "to node 2")
	p1.AddLink(n[3], "to node 3")
	p2 := mk(2)
	p2.AddLink(n[4], "to node 4")
	p2.AddLink("n5.html", "to node 5") // local
	p3 := mk(3)
	p3.AddLink(n[6], "to node 6")
	p3.AddLink("n7.html", "to node 7") // local
	p4 := mk(4, "q1-answer", "q2-answer")
	p4.AddLink(n[8], "to node 8")
	p5 := mk(5, "q1-answer")
	p5.AddLink(n[4], "to node 4")
	p6 := mk(6, "q1-answer")
	p6.AddLink(n[8], "to node 8")
	mk(7) // no markers: dead end for q1
	mk(8, "q2-answer")
	return w
}

// ---------------------------------------------------------------------------
// Figure 5: the duplicate-arrivals example of Section 3.1.
//
// Under the same query shape Q = S G·(G|L) q1 (G|L) q2, node X receives
// five clone arrivals: a in state (2, G|L), b in state (2, N), and c, d, e
// all in state (1, N). With the Node-query Log Table enabled, a, b and c
// are processed and d, e are purged as duplicates — exactly the paper's
// "evaluating q1 is mandatory in b, a waste in c, d, e".

// Figure-5 named node URLs.
const (
	Figure5Start = "http://f5s.example/start.html"
	Figure5Hub   = "http://f5a.example/hub.html"
	Figure5X     = "http://f5x.example/x.html" // the multiply-visited node
	Figure5T     = "http://f5t.example/t.html"
)

// Figure5DISQL is the Figure-5 example as a DISQL query.
const Figure5DISQL = `
select d1.url, d2.url
from document d1 such that "http://f5s.example/start.html" G·(G|L) d1,
where d1.text contains "q1-answer"
     document d2 such that d1 (G|L) d2
where d2.text contains "q2-answer"`

// Figure5 builds the web of the paper's Figure 5.
func Figure5() *Web {
	w := NewWeb()
	r := rand.New(rand.NewSource(5))
	feeders := []string{
		"http://f5p1.example/p.html",
		"http://f5p2.example/p.html",
		"http://f5p3.example/p.html",
	}
	s := w.NewPage(Figure5Start, "Figure 5 start")
	addFiller(s, r, 60)
	s.AddLink(Figure5X, "direct to X") // arrival a: state (2, G|L)
	s.AddLink(Figure5Hub, "to hub")

	hub := w.NewPage(Figure5Hub, "Figure 5 hub")
	addFiller(hub, r, 60)
	hub.AddLink(Figure5X, "hub to X") // arrival b: state (2, N)
	for i, f := range feeders {
		hub.AddLink(f, fmt.Sprintf("to feeder %d", i+1))
	}

	for i, f := range feeders {
		p := w.NewPage(f, fmt.Sprintf("Figure 5 feeder %d", i+1))
		p.AddText("This node holds the token q1-answer.")
		addFiller(p, r, 60)
		p.AddLink(Figure5X, "feeder to X") // arrivals c, d, e: state (1, N)
	}

	x := w.NewPage(Figure5X, "Figure 5 node X")
	x.AddText("This node holds the token q1-answer.")
	x.AddText("This node holds the token q2-answer.")
	addFiller(x, r, 60)
	x.AddLink(Figure5T, "to T")

	tp := w.NewPage(Figure5T, "Figure 5 node T")
	tp.AddText("This node holds the token q2-answer.")
	addFiller(tp, r, 60)
	return w
}

// ---------------------------------------------------------------------------
// Campus: the Section 5 sample execution (Figures 7 and 8): the CSA
// department web with a laboratories page linking to lab sites whose
// people pages name a convener above a horizontal rule.

// Campus web landmark URLs.
const (
	CampusStart = "http://csa.iisc.ernet.in/index.html"
	CampusLabs  = "http://csa.iisc.ernet.in/Labs/index.html"
)

// CampusDISQL is the paper's Example Query 2 adapted to the generated
// campus web: find the laboratories page one local link from the CSA
// homepage, then the convener of each lab within one global plus at most
// one local link, reading the rel-infon delimited by a horizontal rule.
const CampusDISQL = `
select d0.url, d1.url, r.text
from document d0 such that "http://csa.iisc.ernet.in/index.html" L d0,
where d0.title contains "lab"
     document d1 such that d0 G·(L*1) d1,
     relinfon r such that r.delimiter = "hr",
where (r.text contains "convener")
`

// CampusConveners maps each lab page that answers the campus query to the
// convener line its hr rel-infon carries — the expected Figure-8 rows.
var CampusConveners = map[string]string{
	"http://dsl.serc.iisc.ernet.in/people.html":         "CONVENER Jayant Haritsa",
	"http://www-compiler.csa.iisc.ernet.in/people.html": "Convener Prof. Y.N. Srikant",
	"http://www2.csa.iisc.ernet.in/~gang/lab.html":      "Convener : Prof. D. K. Subramanian",
}

// Campus builds the campus web of the paper's Section 5.
func Campus() *Web {
	w := NewWeb()
	r := rand.New(rand.NewSource(7))

	// CSA department site.
	home := w.NewPage(CampusStart, "Department of Computer Science and Automation")
	home.AddText("Welcome to the CSA department of the Indian Institute of Science.")
	addFiller(home, r, 600)
	home.AddLink("/Labs/index.html", "Laboratories")
	home.AddLink("/people.html", "Faculty and Staff")
	home.AddLink("/courses.html", "Courses")
	home.AddLink("/admissions.html", "Admissions")
	home.AddLink("http://www.iisc.ernet.in/index.html", "IISc")

	labs := w.NewPage(CampusLabs, "Laboratories of the CSA Department")
	labs.AddText("The department hosts several research laboratories.")
	addFiller(labs, r, 400)
	labs.AddLink("http://dsl.serc.iisc.ernet.in/index.html", "Database Systems Lab")
	labs.AddLink("http://www-compiler.csa.iisc.ernet.in/index.html", "Compiler Lab")
	labs.AddLink("http://www2.csa.iisc.ernet.in/~gang/lab.html", "System Software Lab")
	labs.AddLink("http://archit.csa.iisc.ernet.in/index.html", "Architecture Lab")
	labs.AddLink("http://www.iisc.ernet.in/index.html", "Institute homepage")

	for _, pg := range []struct{ path, title string }{
		{"/people.html", "CSA Faculty and Staff"},
		{"/courses.html", "CSA Courses"},
		{"/admissions.html", "CSA Admissions"},
	} {
		p := w.NewPage("http://csa.iisc.ernet.in"+pg.path, pg.title)
		addFiller(p, r, 700)
		p.AddLink("/index.html", "CSA home")
	}

	// Database Systems Lab: convener on the people page, one local link in.
	dsl := w.NewPage("http://dsl.serc.iisc.ernet.in/index.html", "Database Systems Lab")
	dsl.AddText("The DSL studies database systems for web and transaction workloads.")
	addFiller(dsl, r, 550)
	dsl.AddLink("/people.html", "People")
	dsl.AddLink("/projects.html", "Projects")
	dslPeople := w.NewPage("http://dsl.serc.iisc.ernet.in/people.html", "Database Systems Lab People")
	dslPeople.AddText("Members of the laboratory are listed below.")
	dslPeople.AddText("CONVENER Jayant Haritsa")
	dslPeople.AddRule()
	addFiller(dslPeople, r, 450)
	dslProjects := w.NewPage("http://dsl.serc.iisc.ernet.in/projects.html", "DSL Projects")
	addFiller(dslProjects, r, 500)

	// Compiler Lab: same shape.
	comp := w.NewPage("http://www-compiler.csa.iisc.ernet.in/index.html", "Students of the Compiler Lab at IISc")
	addFiller(comp, r, 550)
	comp.AddLink("/people.html", "People")
	compPeople := w.NewPage("http://www-compiler.csa.iisc.ernet.in/people.html", "Compiler Lab People")
	compPeople.AddText("Convener Prof. Y.N. Srikant")
	compPeople.AddRule()
	addFiller(compPeople, r, 450)

	// System Software Lab: convener directly on the lab homepage (zero
	// local links — exercises the L*1 lower bound).
	ssl := w.NewPage("http://www2.csa.iisc.ernet.in/~gang/lab.html", "HOMEPAGE: SYSTEM SOFTWARE LAB")
	ssl.AddText("Convener : Prof. D. K. Subramanian")
	ssl.AddRule()
	addFiller(ssl, r, 550)

	// Architecture Lab: no convener anywhere — a stage-2 dead end.
	archit := w.NewPage("http://archit.csa.iisc.ernet.in/index.html", "Computer Architecture Lab")
	addFiller(archit, r, 550)
	archit.AddLink("/members.html", "Members")
	architMembers := w.NewPage("http://archit.csa.iisc.ernet.in/members.html", "Architecture Lab Members")
	addFiller(architMembers, r, 450)

	// Institute homepage: not a lab, no convener.
	iisc := w.NewPage("http://www.iisc.ernet.in/index.html", "Indian Institute of Science")
	addFiller(iisc, r, 800)
	iisc.AddLink("/depts.html", "Departments")
	iiscDepts := w.NewPage("http://www.iisc.ernet.in/depts.html", "IISc Departments")
	addFiller(iiscDepts, r, 500)
	iiscDepts.AddLink("http://csa.iisc.ernet.in/index.html", "CSA")
	return w
}

// ---------------------------------------------------------------------------
// Parameterized families.

// TreeOpts configure the Tree generator.
type TreeOpts struct {
	Fanout       int     // children per page
	Depth        int     // link distance from the root to the leaves
	PagesPerSite int     // consecutive pages grouped onto one host
	MarkerFrac   float64 // fraction of pages carrying the Marker token
	FillerWords  int     // filler words per page (0 means 100)
	Seed         int64
}

// Tree builds a complete Fanout-ary tree of pages rooted at the first
// page. Parent→child links are local when both pages share a host and
// global otherwise.
func Tree(o TreeOpts) *Web {
	if o.PagesPerSite <= 0 {
		o.PagesPerSite = 1
	}
	if o.FillerWords == 0 {
		o.FillerWords = 100
	}
	total := 1
	width := 1
	for d := 0; d < o.Depth; d++ {
		width *= o.Fanout
		total += width
	}
	w := NewWeb()
	r := rand.New(rand.NewSource(o.Seed))
	urls := make([]string, total)
	for i := 0; i < total; i++ {
		urls[i] = fmt.Sprintf("http://t%d.example/p%d.html", i/o.PagesPerSite, i)
	}
	for i := 0; i < total; i++ {
		p := w.NewPage(urls[i], fmt.Sprintf("Tree page %d", i))
		if r.Float64() < o.MarkerFrac {
			p.AddText("This page holds the token " + Marker + ".")
		}
		addFiller(p, r, o.FillerWords)
		for c := o.Fanout*i + 1; c <= o.Fanout*i+o.Fanout && c < total; c++ {
			p.AddLink(urls[c], fmt.Sprintf("child %d", c))
		}
	}
	return w
}

// RandomOpts configure the Random generator.
type RandomOpts struct {
	Sites        int
	PagesPerSite int
	LocalOut     int     // extra local links per page
	GlobalOut    int     // extra global links per page
	MarkerFrac   float64 // fraction of pages carrying the Marker token
	FillerWords  int     // filler words per page (0 means 100)
	Seed         int64
}

// Random builds a strongly cross-linked random web: a spanning structure
// guarantees every page is reachable from the first, and extra local and
// global links create the multiple arrival paths that exercise the
// Node-query Log Table.
func Random(o RandomOpts) *Web {
	if o.FillerWords == 0 {
		o.FillerWords = 100
	}
	total := o.Sites * o.PagesPerSite
	w := NewWeb()
	r := rand.New(rand.NewSource(o.Seed))
	urls := make([]string, total)
	for i := 0; i < total; i++ {
		urls[i] = fmt.Sprintf("http://r%d.example/p%d.html", i/o.PagesPerSite, i)
	}
	pages := make([]*Page, total)
	for i := 0; i < total; i++ {
		pages[i] = w.NewPage(urls[i], fmt.Sprintf("Random page %d", i))
		if r.Float64() < o.MarkerFrac {
			pages[i].AddText("This page holds the token " + Marker + ".")
		}
		addFiller(pages[i], r, o.FillerWords)
	}
	// Spanning links: page i is linked from a random earlier page.
	for i := 1; i < total; i++ {
		src := r.Intn(i)
		pages[src].AddLink(urls[i], fmt.Sprintf("span %d", i))
	}
	// Extra links.
	for i := 0; i < total; i++ {
		site := i / o.PagesPerSite
		for k := 0; k < o.LocalOut && o.PagesPerSite > 1; k++ {
			j := site*o.PagesPerSite + r.Intn(o.PagesPerSite)
			if j != i {
				pages[i].AddLink(urls[j], fmt.Sprintf("local %d", j))
			}
		}
		for k := 0; k < o.GlobalOut && o.Sites > 1; k++ {
			j := r.Intn(total)
			if j/o.PagesPerSite != site {
				pages[i].AddLink(urls[j], fmt.Sprintf("global %d", j))
			}
		}
	}
	return w
}

// Chain builds a linear web of n pages, a new host every pagesPerSite
// pages: page i links to page i+1. Useful for depth-proportional
// experiments such as termination mid-flight.
func Chain(n, pagesPerSite int, seed int64) *Web {
	if pagesPerSite <= 0 {
		pagesPerSite = 1
	}
	w := NewWeb()
	r := rand.New(rand.NewSource(seed))
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		urls[i] = fmt.Sprintf("http://c%d.example/p%d.html", i/pagesPerSite, i)
	}
	for i := 0; i < n; i++ {
		p := w.NewPage(urls[i], fmt.Sprintf("Chain page %d", i))
		addFiller(p, r, 80)
		if i+1 < n {
			p.AddLink(urls[i+1], "next")
		}
	}
	return w
}

// Grid builds a w×h lattice: each column is one host, so downward links
// are local and rightward links are global. Pages have two in-edges,
// creating systematic duplicate arrivals for the batching and dedup
// experiments.
func Grid(cols, rows int, seed int64) *Web {
	w := NewWeb()
	r := rand.New(rand.NewSource(seed))
	url := func(x, y int) string {
		return fmt.Sprintf("http://g%d.example/p%d.html", x, y)
	}
	for x := 0; x < cols; x++ {
		for y := 0; y < rows; y++ {
			p := w.NewPage(url(x, y), fmt.Sprintf("Grid page %d,%d", x, y))
			addFiller(p, r, 60)
			if x+1 < cols {
				p.AddLink(url(x+1, y), "right")
			}
			if y+1 < rows {
				p.AddLink(url(x, y+1), "down")
			}
		}
	}
	return w
}

// PowerLawOpts configure the PowerLaw generator.
type PowerLawOpts struct {
	Pages        int
	PagesPerSite int
	OutLinks     int     // links added per new page (preferential targets)
	MarkerFrac   float64 // fraction of pages carrying the Marker token
	FillerWords  int     // filler words per page (0 means 100)
	Seed         int64
}

// PowerLaw builds a web by preferential attachment, the process behind
// the real Web's heavy-tailed in-degree distribution (observed already in
// the late 1990s): each new page links to OutLinks existing pages chosen
// proportionally to their current in-degree, and receives one link from a
// random earlier page so everything stays reachable from the first page.
// Hub pages therefore receive many arrivals — the traversal profile the
// Node-query Log Table exists for.
func PowerLaw(o PowerLawOpts) *Web {
	if o.PagesPerSite <= 0 {
		o.PagesPerSite = 1
	}
	if o.OutLinks <= 0 {
		o.OutLinks = 2
	}
	if o.FillerWords == 0 {
		o.FillerWords = 100
	}
	w := NewWeb()
	r := rand.New(rand.NewSource(o.Seed))
	urls := make([]string, o.Pages)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://pl%d.example/p%d.html", i/o.PagesPerSite, i)
	}
	pages := make([]*Page, o.Pages)
	// endpoints repeats each page once per in-link, so a uniform draw is a
	// degree-proportional draw (the standard attachment trick).
	var endpoints []int
	for i := 0; i < o.Pages; i++ {
		pages[i] = w.NewPage(urls[i], fmt.Sprintf("Hub web page %d", i))
		if r.Float64() < o.MarkerFrac {
			pages[i].AddText("This page holds the token " + Marker + ".")
		}
		addFiller(pages[i], r, o.FillerWords)
		if i == 0 {
			continue
		}
		// Reachability: a random earlier page links to the newcomer.
		src := r.Intn(i)
		pages[src].AddLink(urls[i], fmt.Sprintf("new %d", i))
		endpoints = append(endpoints, i)
		// Preferential out-links from the newcomer.
		seen := map[int]bool{i: true}
		for k := 0; k < o.OutLinks && len(endpoints) > 0; k++ {
			tgt := endpoints[r.Intn(len(endpoints))]
			if seen[tgt] {
				continue
			}
			seen[tgt] = true
			pages[i].AddLink(urls[tgt], fmt.Sprintf("hub %d", tgt))
			endpoints = append(endpoints, tgt)
		}
	}
	return w
}
