package webgraph

import (
	"bytes"
	"testing"
)

func treeForMutation() *Web {
	return Tree(TreeOpts{Depth: 3, Fanout: 3, PagesPerSite: 4, Seed: 7})
}

// Same seed ⇒ byte-identical schedule and byte-identical web states after
// every step.
func TestMutationDeterminism(t *testing.T) {
	w1, w2 := treeForMutation(), treeForMutation()
	m1 := NewMutator(w1, MutationPlan{Seed: 42})
	m2 := NewMutator(w2, MutationPlan{Seed: 42})
	for i := 0; i < 100; i++ {
		a, okA := m1.Step()
		b, okB := m2.Step()
		if okA != okB || a.String() != b.String() {
			t.Fatalf("step %d diverged: %v (%v) vs %v (%v)", i, a, okA, b, okB)
		}
		if !okA {
			t.Fatalf("step %d: schedule dried up", i)
		}
		if err := sameWeb(w1, w2); err != "" {
			t.Fatalf("step %d (%v): %s", i, a, err)
		}
	}
}

func sameWeb(a, b *Web) string {
	ua, ub := a.URLs(), b.URLs()
	if len(ua) != len(ub) {
		return "URL count differs"
	}
	for i := range ua {
		if ua[i] != ub[i] {
			return "URL sets differ at " + ua[i]
		}
		ha, _ := a.HTML(ua[i])
		hb, _ := b.HTML(ub[i])
		if !bytes.Equal(ha, hb) {
			return "HTML differs at " + ua[i]
		}
	}
	return ""
}

// The zero plan mutates nothing: frozen web, full back-compat.
func TestMutationZeroPlanFrozen(t *testing.T) {
	w := treeForMutation()
	before := w.NumPages()
	m := NewMutator(w, MutationPlan{})
	if _, ok := m.Step(); ok {
		t.Fatal("zero plan produced a mutation")
	}
	if got := m.Apply(10); len(got) != 0 {
		t.Fatalf("zero plan applied %d mutations", len(got))
	}
	if w.NumPages() != before {
		t.Fatal("zero plan changed the web")
	}
}

// A scoped plan only touches pages at the named hosts.
func TestMutationScope(t *testing.T) {
	w := treeForMutation()
	site := w.Hosts()[1]
	m := NewMutator(w, MutationPlan{Seed: 9, Sites: []string{site}})
	for _, mut := range m.Apply(50) {
		if Host(mut.URL) != site {
			t.Fatalf("%v escaped scope %s", mut, site)
		}
		if mut.Kind == MutAddPage && Host(mut.Target) != site {
			t.Fatalf("%v added a page off-scope", mut)
		}
	}
}

// Render caches invalidate on mutation: a page's HTML reflects edits.
func TestMutationInvalidatesRender(t *testing.T) {
	w := NewWeb()
	p := w.NewPage("http://a.example/x.html", "x")
	p.AddText("before")
	first := string(p.Render())
	m := NewMutator(w, MutationPlan{Seed: 1, Edit: 1})
	mut, ok := m.Step()
	if !ok || mut.Kind != MutEditText {
		t.Fatalf("expected an edit, got %v ok=%v", mut, ok)
	}
	second, _ := w.HTML("http://a.example/x.html")
	if first == string(second) {
		t.Fatal("render cache not invalidated by edit")
	}
}

// Removed pages disappear; the host's last page never does.
func TestMutationRemove(t *testing.T) {
	w := NewWeb()
	w.NewPage("http://a.example/1.html", "1").AddText("x")
	w.NewPage("http://a.example/2.html", "2").AddText("y")
	m := NewMutator(w, MutationPlan{Seed: 3, Remove: 1})
	mut, ok := m.Step()
	if !ok || mut.Kind != MutRemovePage {
		t.Fatalf("expected a remove, got %v ok=%v", mut, ok)
	}
	if w.Page(mut.URL) != nil {
		t.Fatal("removed page still present")
	}
	// One page left at the host: further removes must fall back to edits.
	mut, ok = m.Step()
	if !ok {
		t.Fatal("schedule dried up")
	}
	if mut.Kind == MutRemovePage {
		t.Fatal("removed a site's last page")
	}
	if w.NumPages() != 1 {
		t.Fatalf("page count %d, want 1", w.NumPages())
	}
}
