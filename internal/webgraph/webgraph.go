// Package webgraph generates synthetic webs: sets of HTML documents
// organized into sites (hosts) and connected by interior, local and global
// hyperlinks. It substitutes for the live campus web the WEBDIS paper ran
// on — the engine consumes exactly what it consumed there, HTML bytes
// addressable by URL and partitioned by host.
//
// Besides parameterized families (Tree, Random, Chain, Grid) the package
// provides three fixed topologies that reproduce the paper's worked
// examples: Figure1 (the traversal-roles example of Section 2.5), Figure5
// (the duplicate-arrivals example of Section 3.1) and Campus (the IISc
// department web of the Section 5 sample execution, Figures 7 and 8).
package webgraph

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
)

// ItemKind identifies one content element of a generated page.
type ItemKind int

// Content element kinds.
const (
	Text    ItemKind = iota // a paragraph
	Bold                    // a <b> rel-infon
	Heading                 // an <h2> rel-infon
	Rule                    // an <hr>, closing the current hr rel-infon
	Anchor                  // a hyperlink
)

// Item is one content element of a page.
type Item struct {
	Kind ItemKind
	Text string // paragraph text, bold/heading content, or anchor label
	Href string // Anchor destination (absolute or relative)
}

// Page is one synthetic web resource.
type Page struct {
	URL   string
	Title string
	Items []Item

	renderMu sync.Mutex
	html     []byte // cached render; nil = dirty
}

// AddText appends a paragraph.
func (p *Page) AddText(text string) { p.Items = append(p.Items, Item{Kind: Text, Text: text}) }

// AddBold appends a <b> rel-infon.
func (p *Page) AddBold(text string) { p.Items = append(p.Items, Item{Kind: Bold, Text: text}) }

// AddHeading appends an <h2> rel-infon.
func (p *Page) AddHeading(text string) { p.Items = append(p.Items, Item{Kind: Heading, Text: text}) }

// AddRule appends an <hr>, turning the text since the previous rule into
// an hr rel-infon.
func (p *Page) AddRule() { p.Items = append(p.Items, Item{Kind: Rule}) }

// AddLink appends a hyperlink.
func (p *Page) AddLink(href, label string) {
	p.Items = append(p.Items, Item{Kind: Anchor, Href: href, Text: label})
}

// Render produces the page's HTML. The result is cached and rendering is
// synchronized (a site's query server and its document host may request
// the same page concurrently). A mutation applied through Web's mutation
// helpers invalidates the cache, so Render always reflects the page's
// current Items; direct Items edits after the first render must call
// Invalidate themselves.
func (p *Page) Render() []byte {
	p.renderMu.Lock()
	defer p.renderMu.Unlock()
	if p.html == nil {
		p.render()
	}
	return p.html
}

// Invalidate drops the page's cached render so the next Render reflects
// the current Items.
func (p *Page) Invalidate() {
	p.renderMu.Lock()
	p.html = nil
	p.renderMu.Unlock()
}

func (p *Page) render() {
	var b strings.Builder
	b.WriteString("<!doctype html>\n<html>\n<head><title>")
	b.WriteString(escape(p.Title))
	b.WriteString("</title></head>\n<body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n", escape(p.Title))
	for _, it := range p.Items {
		switch it.Kind {
		case Text:
			fmt.Fprintf(&b, "<p>%s</p>\n", escape(it.Text))
		case Bold:
			fmt.Fprintf(&b, "<b>%s</b>\n", escape(it.Text))
		case Heading:
			fmt.Fprintf(&b, "<h2>%s</h2>\n", escape(it.Text))
		case Rule:
			b.WriteString("<hr>\n")
		case Anchor:
			fmt.Fprintf(&b, "<a href=\"%s\">%s</a>\n", it.Href, escape(it.Text))
		}
	}
	b.WriteString("</body>\n</html>\n")
	p.html = []byte(b.String())
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}

// Host extracts the host component of an absolute http URL.
func Host(url string) string {
	s := strings.TrimPrefix(url, "http://")
	s = strings.TrimPrefix(s, "https://")
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	return s
}

// Web is a complete synthetic web: pages indexed by URL and grouped by
// host. A Web is safe for concurrent readers; mutation (Add, Remove, the
// MutationPlan machinery) takes the write lock, so pages may appear,
// disappear and change while servers read — the continuous-query setting.
type Web struct {
	mu    sync.RWMutex
	pages map[string]*Page
	sites map[string][]string // host -> URLs in insertion order
	hosts []string            // insertion order
}

// NewWeb returns an empty web.
func NewWeb() *Web {
	return &Web{pages: make(map[string]*Page), sites: make(map[string][]string)}
}

// NewPage creates, registers and returns a page at the given URL.
func (w *Web) NewPage(url, title string) *Page {
	p := &Page{URL: url, Title: title}
	w.Add(p)
	return p
}

// Add registers a page. Adding two pages with the same URL panics: the
// generators are deterministic and a collision is a bug.
func (w *Web) Add(p *Page) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, dup := w.pages[p.URL]; dup {
		panic("webgraph: duplicate page " + p.URL)
	}
	w.pages[p.URL] = p
	h := Host(p.URL)
	if _, seen := w.sites[h]; !seen {
		w.hosts = append(w.hosts, h)
	}
	w.sites[h] = append(w.sites[h], p.URL)
}

// Remove deletes the page at url. Links pointing at it are left dangling
// — arrivals at the URL then miss, exactly like a 404 on the live web.
// It reports whether a page was removed.
func (w *Web) Remove(url string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.pages[url]; !ok {
		return false
	}
	delete(w.pages, url)
	h := Host(url)
	urls := w.sites[h]
	for i, u := range urls {
		if u == url {
			w.sites[h] = append(urls[:i:i], urls[i+1:]...)
			break
		}
	}
	return true
}

// Page returns the page at url, or nil.
func (w *Web) Page(url string) *Page {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.pages[url]
}

// HTML returns the rendered bytes of the page at url.
func (w *Web) HTML(url string) ([]byte, bool) {
	w.mu.RLock()
	p, ok := w.pages[url]
	w.mu.RUnlock()
	if !ok {
		return nil, false
	}
	return p.Render(), true
}

// Hosts returns all site hosts in insertion order.
func (w *Web) Hosts() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]string, len(w.hosts))
	copy(out, w.hosts)
	return out
}

// URLsAt returns the URLs hosted at host, in insertion order.
func (w *Web) URLsAt(host string) []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]string, len(w.sites[host]))
	copy(out, w.sites[host])
	return out
}

// URLs returns every page URL, sorted.
func (w *Web) URLs() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]string, 0, len(w.pages))
	for u := range w.pages {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// NumPages returns the number of pages.
func (w *Web) NumPages() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.pages)
}

// NumSites returns the number of distinct hosts.
func (w *Web) NumSites() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.sites)
}

// TotalBytes returns the summed rendered size of all pages — what a crawler
// would download to mirror the whole web.
func (w *Web) TotalBytes() int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var n int64
	for _, p := range w.pages {
		n += int64(len(p.Render()))
	}
	return n
}

// DOT renders the web's link graph in Graphviz DOT syntax (the webgen
// tool's -dot flag). Local links are solid, global links dashed.
func (w *Web) DOT() string {
	urls := w.URLs()
	w.mu.RLock()
	defer w.mu.RUnlock()
	var b strings.Builder
	b.WriteString("digraph web {\n  rankdir=LR;\n")
	for _, u := range urls {
		p := w.pages[u]
		if p == nil {
			continue
		}
		fmt.Fprintf(&b, "  %q;\n", u)
		for _, it := range p.Items {
			if it.Kind != Anchor {
				continue
			}
			dst := Resolve(u, it.Href)
			style := "solid"
			if Host(dst) != Host(u) {
				style = "dashed"
			}
			fmt.Fprintf(&b, "  %q -> %q [style=%s];\n", u, dst, style)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// Resolve resolves a possibly relative href against the page URL, using
// the same minimal rules the generators emit (absolute http URLs or
// site-absolute and document-relative paths).
func Resolve(base, href string) string {
	if strings.HasPrefix(href, "http://") || strings.HasPrefix(href, "https://") {
		return href
	}
	host := Host(base)
	if strings.HasPrefix(href, "/") {
		return "http://" + host + href
	}
	// document-relative: replace everything after the last '/'
	trimmed := strings.TrimPrefix(base, "http://")
	dir := trimmed
	if i := strings.LastIndexByte(trimmed, '/'); i >= 0 {
		dir = trimmed[:i+1]
	} else {
		dir = trimmed + "/"
	}
	return "http://" + dir + href
}

// vocabulary for deterministic filler text.
var vocab = []string{
	"database", "systems", "query", "processing", "distributed", "web",
	"document", "hyperlink", "server", "index", "traversal", "protocol",
	"engine", "relation", "predicate", "structure", "content", "research",
	"network", "socket", "cluster", "archive", "seminar", "project",
	"report", "campus", "department", "laboratory", "prototype", "result",
}

// fillText produces n deterministic filler words from r.
func fillText(r *rand.Rand, n int) string {
	words := make([]string, n)
	for i := range words {
		words[i] = vocab[r.Intn(len(vocab))]
	}
	return strings.Join(words, " ")
}

// Marker is the token generators embed in "answer" pages; benchmark
// queries select on it (`d.text contains "xanadu"`).
const Marker = "xanadu"

// addFiller appends paragraphs totalling roughly `words` words.
func addFiller(p *Page, r *rand.Rand, words int) {
	for words > 0 {
		n := 40 + r.Intn(40)
		if n > words {
			n = words
		}
		p.AddText(fillText(r, n))
		words -= n
	}
}
