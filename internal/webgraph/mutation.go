// Web mutation: a seeded, deterministic schedule of page-level changes —
// pages appear and disappear, links rewire, rel-infon text edits — in the
// same spirit as netsim's FaultPlan. The schedule is a pure function of
// the plan's seed and the web's (deterministic) state, so every run
// replays the same mutation sequence and the same web states; that is
// what makes continuous-query results reproducible and lets the
// differential oracle compare a delta-maintained answer against a
// from-scratch re-run at every step.

package webgraph

import (
	"fmt"
	"math/rand"
	"sync"
)

// MutationKind identifies one class of web change.
type MutationKind int

// Mutation kinds.
const (
	// MutEditText rewrites one rel-infon text item of an existing page.
	MutEditText MutationKind = iota
	// MutRewireLink re-targets one anchor of an existing page.
	MutRewireLink
	// MutAddPage creates a new page and links it from an existing one.
	MutAddPage
	// MutRemovePage deletes an existing page; links to it dangle (404).
	MutRemovePage
)

func (k MutationKind) String() string {
	switch k {
	case MutEditText:
		return "edit"
	case MutRewireLink:
		return "rewire"
	case MutAddPage:
		return "add"
	case MutRemovePage:
		return "remove"
	}
	return "unknown"
}

// Mutation is one applied web change.
type Mutation struct {
	Seq  int
	Kind MutationKind
	// URL is the page whose rendered content changed: the edited page,
	// the page holding the rewired or newly added link, or the removed
	// page.
	URL string
	// Target is the new link destination (rewire), the new page's URL
	// (add), or empty.
	Target string
}

// Touched splits the mutation's invalidation footprint: edited URLs
// changed content only (their outgoing links are intact), rewired URLs
// changed link structure (or disappeared), so everything reachable
// through them may need re-derivation.
func (m Mutation) Touched() (edited, rewired []string) {
	if m.Kind == MutEditText {
		return []string{m.URL}, nil
	}
	return nil, []string{m.URL}
}

func (m Mutation) String() string {
	if m.Target != "" {
		return fmt.Sprintf("#%d %s %s -> %s", m.Seq, m.Kind, m.URL, m.Target)
	}
	return fmt.Sprintf("#%d %s %s", m.Seq, m.Kind, m.URL)
}

// MutationPlan is a seeded, deterministic mutation schedule. The zero
// value mutates nothing — a frozen web, full back-compat with every
// one-shot deployment. With Seed set and all weights zero, a default op
// mix applies (mostly edits, some rewires, a few page births/deaths).
type MutationPlan struct {
	// Seed initializes the mutation decision stream.
	Seed int64
	// Edit, Rewire, Add, Remove weight the op mix. All zero = the
	// default mix (0.4 / 0.3 / 0.15 / 0.15).
	Edit, Rewire, Add, Remove float64
	// Sites, when non-empty, scopes mutations to pages at these hosts.
	Sites []string
}

// Enabled reports whether the plan can ever mutate anything.
func (p MutationPlan) Enabled() bool {
	return p.Seed != 0 || p.Edit > 0 || p.Rewire > 0 || p.Add > 0 || p.Remove > 0
}

// mix returns the normalized op weights.
func (p MutationPlan) mix() (edit, rewire, add, remove float64) {
	edit, rewire, add, remove = p.Edit, p.Rewire, p.Add, p.Remove
	if edit == 0 && rewire == 0 && add == 0 && remove == 0 {
		return 0.4, 0.3, 0.15, 0.15
	}
	return
}

// Mutator applies a MutationPlan to a Web, one deterministic step at a
// time. Safe for use while servers concurrently read the web.
type Mutator struct {
	web  *Web
	plan MutationPlan

	mu     sync.Mutex
	rng    *rand.Rand
	seq    int
	births int
}

// NewMutator returns a mutator driving w by plan. A disabled plan yields
// a mutator whose Step always reports false.
func NewMutator(w *Web, plan MutationPlan) *Mutator {
	return &Mutator{web: w, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Step applies the next mutation of the schedule and returns it. ok is
// false when the plan is disabled or no mutation is possible (no
// in-scope pages).
func (m *Mutator) Step() (mut Mutation, ok bool) {
	if !m.plan.Enabled() {
		return Mutation{}, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	urls := m.scopedURLs()
	if len(urls) == 0 {
		return Mutation{}, false
	}
	edit, rewire, add, remove := m.plan.mix()
	draw := m.rng.Float64() * (edit + rewire + add + remove)
	var kind MutationKind
	switch {
	case draw < edit:
		kind = MutEditText
	case draw < edit+rewire:
		kind = MutRewireLink
	case draw < edit+rewire+add:
		kind = MutAddPage
	default:
		kind = MutRemovePage
	}
	m.seq++
	switch kind {
	case MutRewireLink:
		if mut, ok = m.rewire(urls); ok {
			return mut, true
		}
	case MutAddPage:
		return m.addPage(urls), true
	case MutRemovePage:
		if mut, ok = m.remove(urls); ok {
			return mut, true
		}
	}
	// Edit, or the fallback when a rewire found no anchor / a remove
	// found no safely removable page.
	return m.edit(urls), true
}

// Apply runs up to n schedule steps and returns the applied mutations.
func (m *Mutator) Apply(n int) []Mutation {
	var out []Mutation
	for i := 0; i < n; i++ {
		mut, ok := m.Step()
		if !ok {
			break
		}
		out = append(out, mut)
	}
	return out
}

// scopedURLs returns the sorted in-scope page URLs — the deterministic
// candidate list every selection draws from.
func (m *Mutator) scopedURLs() []string {
	urls := m.web.URLs()
	if len(m.plan.Sites) == 0 {
		return urls
	}
	scope := make(map[string]bool, len(m.plan.Sites))
	for _, s := range m.plan.Sites {
		scope[s] = true
	}
	out := urls[:0:0]
	for _, u := range urls {
		if scope[Host(u)] {
			out = append(out, u)
		}
	}
	return out
}

// edit rewrites one text-bearing item of a page (or appends a paragraph
// to an empty one). About a third of edits toggle the benchmark Marker
// into the text, so content-predicate answers genuinely come and go.
func (m *Mutator) edit(urls []string) Mutation {
	u := urls[m.rng.Intn(len(urls))]
	p := m.web.Page(u)
	text := fillText(m.rng, 8+m.rng.Intn(8))
	if m.rng.Float64() < 0.3 {
		text = Marker + " " + text
	}
	p.edit(func() {
		var idxs []int
		for i, it := range p.Items {
			if it.Kind == Text || it.Kind == Bold || it.Kind == Heading {
				idxs = append(idxs, i)
			}
		}
		if len(idxs) == 0 {
			p.Items = append(p.Items, Item{Kind: Text, Text: text})
			return
		}
		p.Items[idxs[m.rng.Intn(len(idxs))]].Text = text
	})
	return Mutation{Seq: m.seq, Kind: MutEditText, URL: u}
}

// rewire re-targets one anchor of a page that has one. ok is false when
// no in-scope page carries an anchor or there is no alternative target.
func (m *Mutator) rewire(urls []string) (Mutation, bool) {
	if len(urls) < 2 {
		return Mutation{}, false
	}
	start := m.rng.Intn(len(urls))
	for off := 0; off < len(urls); off++ {
		u := urls[(start+off)%len(urls)]
		p := m.web.Page(u)
		var target string
		ok := false
		p.edit(func() {
			var anchors []int
			for i, it := range p.Items {
				if it.Kind == Anchor {
					anchors = append(anchors, i)
				}
			}
			if len(anchors) == 0 {
				return
			}
			ai := anchors[m.rng.Intn(len(anchors))]
			old := Resolve(u, p.Items[ai].Href)
			for try := 0; try < 8; try++ {
				cand := urls[m.rng.Intn(len(urls))]
				if cand != old && cand != u {
					target = cand
					break
				}
			}
			if target == "" {
				return
			}
			p.Items[ai].Href = target
			ok = true
		})
		if ok {
			return Mutation{Seq: m.seq, Kind: MutRewireLink, URL: u, Target: target}, true
		}
	}
	return Mutation{}, false
}

// addPage births a page on an existing site and links it from a parent
// page there-or-elsewhere; the parent is the mutated (rewired) URL, the
// new page the target.
func (m *Mutator) addPage(urls []string) Mutation {
	parent := urls[m.rng.Intn(len(urls))]
	host := Host(parent)
	var nu string
	for {
		m.births++
		nu = fmt.Sprintf("http://%s/mut%d.html", host, m.births)
		if m.web.Page(nu) == nil {
			break
		}
	}
	np := &Page{URL: nu, Title: "mutant " + fmt.Sprint(m.births)}
	np.AddText(fillText(m.rng, 20+m.rng.Intn(20)))
	if m.rng.Float64() < 0.5 {
		np.AddText(Marker + " " + fillText(m.rng, 6))
	}
	if m.rng.Float64() < 0.5 {
		np.AddLink(urls[m.rng.Intn(len(urls))], "back")
	}
	m.web.Add(np)
	p := m.web.Page(parent)
	p.edit(func() {
		p.Items = append(p.Items, Item{Kind: Anchor, Href: nu, Text: "fresh"})
	})
	return Mutation{Seq: m.seq, Kind: MutAddPage, URL: parent, Target: nu}
}

// remove deletes a page, never a site's last one (a siteless server has
// nothing to serve and webs keep their host set stable).
func (m *Mutator) remove(urls []string) (Mutation, bool) {
	if len(urls) < 2 {
		return Mutation{}, false
	}
	start := m.rng.Intn(len(urls))
	for off := 0; off < len(urls); off++ {
		u := urls[(start+off)%len(urls)]
		if len(m.web.URLsAt(Host(u))) < 2 {
			continue
		}
		m.web.Remove(u)
		return Mutation{Seq: m.seq, Kind: MutRemovePage, URL: u}, true
	}
	return Mutation{}, false
}

// edit runs f over the page's Items with the render lock held and drops
// the cached render — the one mutation-safe way to change a page that
// concurrent readers may be rendering.
func (p *Page) edit(f func()) {
	p.renderMu.Lock()
	f()
	p.html = nil
	p.renderMu.Unlock()
}
