package webgraph

import (
	"strings"
	"testing"

	"webdis/internal/htmlx"
	"webdis/internal/pre"
)

func TestPageRender(t *testing.T) {
	w := NewWeb()
	p := w.NewPage("http://a.example/x.html", "A <Title> & Co")
	p.AddText("hello world")
	p.AddBold("important")
	p.AddHeading("section")
	p.AddText("the convener line")
	p.AddRule()
	p.AddLink("/y.html", "local y")
	p.AddLink("http://b.example/z.html", "global z")
	html := p.Render()
	doc, err := htmlx.Parse(p.URL, html)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Title != "A <Title> & Co" {
		t.Errorf("title = %q", doc.Title)
	}
	if len(doc.LinksOf(pre.Local)) != 1 || len(doc.LinksOf(pre.Global)) != 1 {
		t.Errorf("anchors = %+v", doc.Anchors)
	}
	var hr, bold bool
	for _, ri := range doc.Infons {
		if ri.Delimiter == "hr" && strings.Contains(ri.Text, "the convener line") {
			hr = true
		}
		if ri.Delimiter == "b" && ri.Text == "important" {
			bold = true
		}
	}
	if !hr || !bold {
		t.Errorf("infons = %+v", doc.Infons)
	}
	// Render is cached and stable.
	if &p.Render()[0] != &html[0] {
		t.Error("Render should cache")
	}
}

func TestWebIndexing(t *testing.T) {
	w := NewWeb()
	w.NewPage("http://a.example/1.html", "one")
	w.NewPage("http://a.example/2.html", "two")
	w.NewPage("http://b.example/3.html", "three")
	if w.NumPages() != 3 || w.NumSites() != 2 {
		t.Fatalf("pages=%d sites=%d", w.NumPages(), w.NumSites())
	}
	if got := w.URLsAt("a.example"); len(got) != 2 {
		t.Errorf("URLsAt = %v", got)
	}
	if w.First() != "http://a.example/1.html" {
		t.Errorf("First = %q", w.First())
	}
	if _, ok := w.HTML("http://nope.example/x"); ok {
		t.Error("HTML should miss for unknown URL")
	}
	if w.TotalBytes() <= 0 {
		t.Error("TotalBytes should be positive")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate Add should panic")
		}
	}()
	w.NewPage("http://a.example/1.html", "dup")
}

func TestHostAndResolve(t *testing.T) {
	if Host("http://a.example/x/y.html") != "a.example" {
		t.Error("Host absolute")
	}
	if Host("https://a.example") != "a.example" {
		t.Error("Host without path")
	}
	cases := []struct{ base, href, want string }{
		{"http://a.example/x/y.html", "http://b.example/z.html", "http://b.example/z.html"},
		{"http://a.example/x/y.html", "/top.html", "http://a.example/top.html"},
		{"http://a.example/x/y.html", "sib.html", "http://a.example/x/sib.html"},
		{"http://a.example", "p.html", "http://a.example/p.html"},
	}
	for _, c := range cases {
		if got := Resolve(c.base, c.href); got != c.want {
			t.Errorf("Resolve(%s, %s) = %s, want %s", c.base, c.href, got, c.want)
		}
	}
}

func TestFigure1Topology(t *testing.T) {
	w := Figure1()
	if w.NumPages() != 8 {
		t.Fatalf("pages = %d", w.NumPages())
	}
	if w.First() != Figure1Start {
		t.Errorf("First = %q", w.First())
	}
	// Node 5 must be local to node 2's site, node 7 local to node 3's.
	if Host(Figure1Nodes[5]) != Host(Figure1Nodes[2]) {
		t.Error("node 5 should share node 2's site")
	}
	if Host(Figure1Nodes[7]) != Host(Figure1Nodes[3]) {
		t.Error("node 7 should share node 3's site")
	}
	// Check link classification through the real HTML parser.
	html, _ := w.HTML(Figure1Nodes[2])
	doc, err := htmlx.Parse(Figure1Nodes[2], html)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.LinksOf(pre.Global)) != 1 || len(doc.LinksOf(pre.Local)) != 1 {
		t.Errorf("node 2 links = %+v", doc.Anchors)
	}
	// Node 7 must not contain the q1 marker; node 4 must contain both.
	html7, _ := w.HTML(Figure1Nodes[7])
	if strings.Contains(string(html7), "q1-answer") {
		t.Error("node 7 must fail q1")
	}
	html4, _ := w.HTML(Figure1Nodes[4])
	if !strings.Contains(string(html4), "q1-answer") || !strings.Contains(string(html4), "q2-answer") {
		t.Error("node 4 must answer q1 and q2")
	}
}

func TestFigure5Topology(t *testing.T) {
	w := Figure5()
	// X must have exactly five in-links: from start, hub and the three
	// feeders — the five arrivals a..e.
	in := 0
	for _, u := range w.URLs() {
		html, _ := w.HTML(u)
		doc, err := htmlx.Parse(u, html)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range doc.Anchors {
			if a.Href == Figure5X {
				in++
			}
		}
	}
	if in != 5 {
		t.Fatalf("in-links to X = %d, want 5", in)
	}
}

func TestCampusTopology(t *testing.T) {
	w := Campus()
	if w.First() != CampusStart {
		t.Errorf("First = %q", w.First())
	}
	// The labs page is the only local neighbor of the homepage whose title
	// contains "lab".
	html, _ := w.HTML(CampusStart)
	doc, _ := htmlx.Parse(CampusStart, html)
	labTitled := 0
	for _, a := range doc.LinksOf(pre.Local) {
		h2, ok := w.HTML(a.Href)
		if !ok {
			t.Fatalf("dangling local link %s", a.Href)
		}
		d2, _ := htmlx.Parse(a.Href, h2)
		if strings.Contains(strings.ToLower(d2.Title), "lab") {
			labTitled++
			if a.Href != CampusLabs {
				t.Errorf("unexpected lab-titled page %s", a.Href)
			}
		}
	}
	if labTitled != 1 {
		t.Errorf("lab-titled local neighbors = %d", labTitled)
	}
	// Every expected convener page parses to an hr rel-infon containing
	// "convener" (case-insensitively).
	for url, line := range CampusConveners {
		h, ok := w.HTML(url)
		if !ok {
			t.Fatalf("missing convener page %s", url)
		}
		d, _ := htmlx.Parse(url, h)
		found := false
		for _, ri := range d.Infons {
			if ri.Delimiter == "hr" && strings.Contains(ri.Text, line) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no hr rel-infon with %q; infons = %+v", url, line, d.Infons)
		}
	}
	// All links resolve within the generated web.
	for _, u := range w.URLs() {
		h, _ := w.HTML(u)
		d, _ := htmlx.Parse(u, h)
		for _, a := range d.Anchors {
			if _, ok := w.HTML(a.Href); !ok {
				t.Errorf("dangling link %s -> %s", u, a.Href)
			}
		}
	}
}

func TestTreeTopology(t *testing.T) {
	w := Tree(TreeOpts{Fanout: 3, Depth: 3, PagesPerSite: 4, MarkerFrac: 0.5, Seed: 42})
	want := 1 + 3 + 9 + 27
	if w.NumPages() != want {
		t.Fatalf("pages = %d, want %d", w.NumPages(), want)
	}
	if w.NumSites() != (want+3)/4 {
		t.Errorf("sites = %d", w.NumSites())
	}
	// Deterministic: same seed, same web.
	w2 := Tree(TreeOpts{Fanout: 3, Depth: 3, PagesPerSite: 4, MarkerFrac: 0.5, Seed: 42})
	for _, u := range w.URLs() {
		a, _ := w.HTML(u)
		b, ok := w2.HTML(u)
		if !ok || string(a) != string(b) {
			t.Fatalf("tree not deterministic at %s", u)
		}
	}
	// Roughly half the pages carry the marker.
	marked := 0
	for _, u := range w.URLs() {
		h, _ := w.HTML(u)
		if strings.Contains(string(h), Marker) {
			marked++
		}
	}
	if marked < want/4 || marked > want*3/4 {
		t.Errorf("marked = %d of %d", marked, want)
	}
}

func TestRandomTopologyReachable(t *testing.T) {
	w := Random(RandomOpts{Sites: 6, PagesPerSite: 5, LocalOut: 2, GlobalOut: 2, MarkerFrac: 0.3, Seed: 9})
	if w.NumPages() != 30 {
		t.Fatalf("pages = %d", w.NumPages())
	}
	// BFS over parsed links from the first page must reach every page.
	seen := map[string]bool{w.First(): true}
	queue := []string{w.First()}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		h, _ := w.HTML(u)
		d, err := htmlx.Parse(u, h)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range d.Anchors {
			if !seen[a.Href] {
				seen[a.Href] = true
				queue = append(queue, a.Href)
			}
		}
	}
	if len(seen) != w.NumPages() {
		t.Errorf("reachable = %d of %d", len(seen), w.NumPages())
	}
}

func TestChainAndGrid(t *testing.T) {
	c := Chain(10, 2, 1)
	if c.NumPages() != 10 || c.NumSites() != 5 {
		t.Errorf("chain pages=%d sites=%d", c.NumPages(), c.NumSites())
	}
	g := Grid(4, 3, 1)
	if g.NumPages() != 12 || g.NumSites() != 4 {
		t.Errorf("grid pages=%d sites=%d", g.NumPages(), g.NumSites())
	}
	// Grid: down is local, right is global.
	h, _ := g.HTML("http://g0.example/p0.html")
	d, _ := htmlx.Parse("http://g0.example/p0.html", h)
	if len(d.LinksOf(pre.Local)) != 1 || len(d.LinksOf(pre.Global)) != 1 {
		t.Errorf("grid corner links = %+v", d.Anchors)
	}
}

func TestDOT(t *testing.T) {
	w := Figure1()
	dot := w.DOT()
	if !strings.Contains(dot, "digraph web") || !strings.Contains(dot, Figure1Nodes[1]) {
		t.Errorf("dot = %.120s", dot)
	}
	if !strings.Contains(dot, "style=dashed") || !strings.Contains(dot, "style=solid") {
		t.Error("dot should mark local and global links")
	}
}

func TestPowerLawTopology(t *testing.T) {
	w := PowerLaw(PowerLawOpts{Pages: 120, PagesPerSite: 3, OutLinks: 2, MarkerFrac: 0.2, Seed: 6})
	if w.NumPages() != 120 || w.NumSites() != 40 {
		t.Fatalf("pages=%d sites=%d", w.NumPages(), w.NumSites())
	}
	// In-degree distribution must be heavy-tailed: the best-connected page
	// should attract far more links than the median.
	indeg := map[string]int{}
	for _, u := range w.URLs() {
		h, _ := w.HTML(u)
		d, err := htmlx.Parse(u, h)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range d.Anchors {
			indeg[a.Href]++
		}
	}
	max := 0
	total := 0
	for _, n := range indeg {
		total += n
		if n > max {
			max = n
		}
	}
	mean := float64(total) / float64(len(indeg))
	if float64(max) < 4*mean {
		t.Errorf("no hubs: max in-degree %d vs mean %.1f", max, mean)
	}
	// Reachable from the first page.
	seen := map[string]bool{w.First(): true}
	queue := []string{w.First()}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		h, _ := w.HTML(u)
		d, _ := htmlx.Parse(u, h)
		for _, a := range d.Anchors {
			if !seen[a.Href] {
				seen[a.Href] = true
				queue = append(queue, a.Href)
			}
		}
	}
	if len(seen) != w.NumPages() {
		t.Errorf("reachable = %d of %d", len(seen), w.NumPages())
	}
}
