package server

import (
	"sync"
	"time"

	"webdis/internal/wire"
)

// BatchOptions bound the server-side result batcher
// (Options.ResultBatch). The seed engine ships one ResultMsg per
// processed clone message; on fan-in heavy topologies — hub sites
// receiving clones from many parents — that makes the result stream the
// dominant message class. The batcher coalesces the per-clone reports
// destined for one user-site query into a single size/age-bounded frame
// instead.
//
// The CHT's signed counting makes the delay safe: a child's own report
// may now overtake its parent's buffered update by up to MaxAge, which
// drives the entry's count transiently negative — exactly the asynchrony
// the completion protocol already tolerates (see the client package).
// Completion detection itself is delayed by at most MaxAge.
//
// One semantic shift, documented in DESIGN.md §9: with batching on, a
// clone's forwards no longer wait for its result dispatch to succeed, so
// the passive-termination signal (a failed dispatch, paper §2.8) is
// observed at the query's next flush rather than before forwarding. The
// batcher then drops the query's subsequent reports, so the site still
// quiesces one flush later.
type BatchOptions struct {
	// MaxRows flushes a query's batch once it buffers this many result
	// rows (0 with MaxAge set uses the 128 default).
	MaxRows int
	// MaxAge bounds how long a report may sit buffered before the batch
	// is flushed (0 with MaxRows set uses the 2ms default).
	MaxAge time.Duration
}

// Enabled reports whether the options turn the batcher on; the zero
// value is the seed's one-message-per-clone behaviour.
func (b BatchOptions) Enabled() bool { return b.MaxRows > 0 || b.MaxAge > 0 }

func (b BatchOptions) maxRows() int {
	if b.MaxRows > 0 {
		return b.MaxRows
	}
	return 128
}

func (b BatchOptions) maxAge() time.Duration {
	if b.MaxAge > 0 {
		return b.MaxAge
	}
	return 2 * time.Millisecond
}

// tuneMaxRows and tuneMaxAge cap what a TUNE frame may request: the
// collector is advisory, but the server bounds how much buffering it
// will do on a remote's say-so.
const (
	tuneMaxRows = 8192
	tuneMaxAge  = 100 * time.Millisecond
)

// tuneOverride holds one query's TUNE-adjusted batch bounds; a zero
// field falls back to the server-wide BatchOptions.
type tuneOverride struct {
	maxRows int
	maxAge  time.Duration
}

// deadTTL is how long a query whose collector refused a flush stays
// blacklisted; entries are pruned lazily, so the bound only matters for
// memory, not correctness (resends to a closed collector just fail
// again).
const deadTTL = time.Minute

// batch accumulates the reports of one query between flushes.
type batch struct {
	id      wire.QueryID
	reports []wire.Report
	rows    int
	oldest  time.Time
}

// add appends one report under the batcher's lock.
func (b *batch) add(r wire.Report) {
	if len(b.reports) == 0 {
		b.oldest = time.Now()
	}
	b.reports = append(b.reports, r)
	b.rows += r.Rows()
}

// resultBatcher coalesces result reports per query into bounded frames.
// One instance per server; add is called from the Query Processor
// workers, the age flusher runs on its own goroutine.
type resultBatcher struct {
	s    *Server
	opts BatchOptions

	mu      sync.Mutex
	batches map[string]*batch       // keyed by QueryID.String()
	dead    map[string]time.Time    // queries whose collector failed a flush
	tunes   map[string]tuneOverride // per-query TUNE-adjusted bounds
	started bool
	closed  sync.Once
	stopCh  chan struct{}
	done    chan struct{}
}

func newResultBatcher(s *Server, opts BatchOptions) *resultBatcher {
	return &resultBatcher{
		s:       s,
		opts:    opts,
		batches: make(map[string]*batch),
		dead:    make(map[string]time.Time),
		tunes:   make(map[string]tuneOverride),
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// start launches the age flusher.
func (rb *resultBatcher) start() {
	rb.mu.Lock()
	rb.started = true
	rb.mu.Unlock()
	go func() {
		defer close(rb.done)
		interval := rb.opts.maxAge() / 4
		if interval < 500*time.Microsecond {
			interval = 500 * time.Microsecond
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				rb.flushAged()
			case <-rb.stopCh:
				return
			}
		}
	}()
}

// close stops the age flusher and flushes everything still buffered.
// Safe when the batcher was never started, and idempotent.
func (rb *resultBatcher) close() {
	rb.closed.Do(func() {
		rb.mu.Lock()
		started := rb.started
		rb.mu.Unlock()
		if started {
			close(rb.stopCh)
			<-rb.done
		}
		rb.mu.Lock()
		var out []*batch
		for _, b := range rb.batches {
			out = append(out, b)
		}
		rb.batches = make(map[string]*batch)
		rb.mu.Unlock()
		for _, b := range out {
			rb.flush(b)
		}
	})
}

// add buffers one report for the query, flushing inline when the row
// bound is reached. It reports false when the query's collector is known
// gone (a previous flush failed) — the batched analog of a failed
// dispatch, which tells the caller to purge the clone instead of
// forwarding its children.
func (rb *resultBatcher) add(id wire.QueryID, r wire.Report) bool {
	key := id.String()
	rb.mu.Lock()
	if at, gone := rb.dead[key]; gone {
		if time.Since(at) < deadTTL {
			rb.mu.Unlock()
			return false
		}
		delete(rb.dead, key)
	}
	b := rb.batches[key]
	if b == nil {
		b = &batch{id: id}
		rb.batches[key] = b
	}
	b.add(r)
	rb.s.met.ResultReports.Add(1)
	limit := rb.opts.maxRows()
	if o, ok := rb.tunes[key]; ok && o.maxRows > 0 {
		limit = o.maxRows
	}
	var out *batch
	if b.rows >= limit {
		delete(rb.batches, key)
		out = b
	}
	rb.mu.Unlock()
	if out != nil {
		rb.flush(out)
	}
	return true
}

// flushAged flushes every batch whose oldest report has exceeded its
// query's age bound (the TUNE override when one is set).
func (rb *resultBatcher) flushAged() {
	now := time.Now()
	rb.mu.Lock()
	var out []*batch
	for key, b := range rb.batches {
		age := rb.opts.maxAge()
		if o, ok := rb.tunes[key]; ok && o.maxAge > 0 {
			age = o.maxAge
		}
		if b.oldest.Before(now.Add(-age)) {
			delete(rb.batches, key)
			out = append(out, b)
		}
	}
	rb.mu.Unlock()
	for _, b := range out {
		rb.flush(b)
	}
}

// tune applies one TUNE frame: the query's collector asking for larger
// (backpressure) or default (drained) batch bounds. A message with both
// fields zero clears the override.
func (rb *resultBatcher) tune(m *wire.TuneMsg) {
	key := m.ID.String()
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if m.MaxRows <= 0 && m.MaxAgeMicros <= 0 {
		delete(rb.tunes, key)
		return
	}
	var o tuneOverride
	if m.MaxRows > 0 {
		o.maxRows = min(m.MaxRows, tuneMaxRows)
	}
	if m.MaxAgeMicros > 0 {
		o.maxAge = min(time.Duration(m.MaxAgeMicros)*time.Microsecond, tuneMaxAge)
	}
	// Bound the override registry; dropping stale entries just reverts
	// those queries to the server-wide defaults.
	if len(rb.tunes) >= 256 {
		rb.tunes = make(map[string]tuneOverride)
	}
	rb.tunes[key] = o
}

// flush ships one coalesced frame to the query's result collector. A
// failed send is the passive-termination signal (paper §2.8): the query
// is blacklisted so later reports are dropped instead of re-buffered.
func (rb *resultBatcher) flush(b *batch) {
	msg := &wire.ResultMsg{ID: b.id, Reports: b.reports}
	rb.s.stampReplica(msg)
	if rb.s.send(b.id.Site, msg) != nil {
		rb.s.met.Terminated.Add(1)
		rb.s.trace("", wire.State{}, "terminated", "batched result dispatch failed")
		rb.mu.Lock()
		if len(rb.dead) > 256 {
			for k, at := range rb.dead {
				if time.Since(at) >= deadTTL {
					delete(rb.dead, k)
				}
			}
		}
		rb.dead[b.id.String()] = time.Now()
		rb.mu.Unlock()
		return
	}
	rb.s.met.ResultMsgs.Add(1)
}
