package server

import (
	"webdis/internal/plan"
	"webdis/internal/wire"
)

// PlannerOptions configure the cost-based distributed planner on the
// query-server side. The zero value disables it: the server then ships
// every result row raw and every clone as a query, the seed behaviour.
type PlannerOptions struct {
	// Enabled turns the planner on: pushed-down plan fragments are
	// applied to result tables before they ship, site statistics ride on
	// result frames and clones, and the ship-query-vs-ship-data cost
	// model decides each traversal edge.
	Enabled bool
	// NoShipData keeps pushdown and statistics but pins every edge to
	// ship-query (the paper's pure query-shipping engine) — the ablation
	// that isolates the pushdown benefit from the edge decisions.
	NoShipData bool
	// ShipDataBias scales the ship-data side of the cost comparison:
	// an edge ships data when dests·avgDocBytes·bias < cloneBytes.
	// Values above 1 make ship-data likelier; 0 means 1 (neutral).
	ShipDataBias float64
}

// ownStat snapshots this site's cumulative workload statistics from the
// metrics counters. Counters shared across a deployment's servers (the
// experiments share one Metrics) make the stat an upper bound, which
// only biases the cost model toward ship-query — the safe direction.
func (s *Server) ownStat() wire.SiteStat {
	return wire.SiteStat{
		Site:        s.site,
		Docs:        s.met.DocsParsed.Load(),
		DocBytes:    s.met.DocBytes.Load(),
		Evals:       s.met.Evaluations.Load(),
		RowsScanned: s.met.RowsScanned.Load(),
		RowsEmitted: s.met.RowsEmitted.Load(),
		Fanout:      s.met.TargetsAdded.Load(),
	}
}

// absorbHints folds the statistics a clone carried into the server's
// per-site view. Stats are cumulative counters, so the latest snapshot
// replaces the stored one (out-of-order arrivals merely understate).
func (s *Server) absorbHints(hints []wire.SiteStat) {
	if len(hints) == 0 {
		return
	}
	s.statMu.Lock()
	defer s.statMu.Unlock()
	for _, h := range hints {
		if h.Site == "" || h.Site == s.site {
			continue
		}
		s.peerStats[h.Site] = h
	}
}

// recordPeerDoc books one remotely fetched document into the peer-site
// statistics, so even sites never heard from via hints accumulate the
// avgDocBytes the cost model needs.
func (s *Server) recordPeerDoc(site string, bytes int64) {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	st := s.peerStats[site]
	st.Site = site
	st.Docs++
	st.DocBytes += bytes
	s.peerStats[site] = st
}

// hintsFor builds the statistics list to piggyback on outgoing clones.
// Only this site's own first-hand stat travels server-to-server: the
// user-site hears every site's stat on result frames and re-seeds the
// full picture (up to wire.MaxHints) on each query's root clone, so
// relaying the whole peer table on every hop would cost more wire bytes
// than the edge decisions it informs could save.
func (s *Server) hintsFor() []wire.SiteStat {
	return []wire.SiteStat{s.ownStat()}
}

// peerStat returns the stored statistics for a site (zero when unknown —
// the cold start that defaults the edge to ship-query).
func (s *Server) peerStat(site string) wire.SiteStat {
	s.statMu.Lock()
	defer s.statMu.Unlock()
	return s.peerStats[site]
}

// applyFrag reduces one result table in place per the clone's pushed-down
// plan fragment: partial aggregation for grouped specs, per-node top-K
// for order/limit-only specs. A fragment applies only when the planner is
// enabled here, the fragment's version is known, and the table belongs to
// the fragment's stage — otherwise the raw rows ship and the user-site's
// final fold still computes the exact answer.
func (s *Server) applyFrag(c *wire.CloneMsg, stage int, env map[string]string, nt *wire.NodeTable) {
	if !s.opts.Planner.Enabled || !c.Frag.Applies(stage) {
		return
	}
	before := wire.TableSize(nt)
	cols, rows, partial, saved := plan.ApplyFrag(nt.Cols, nt.Rows, env, &c.Frag.Spec)
	if !partial && saved <= 0 {
		return
	}
	nt.Cols, nt.Rows, nt.Partial = cols, rows, partial
	s.met.PushdownHits.Add(1)
	// Book the saving as encoded wire bytes — the table's serialized size
	// before minus after — not raw cell bytes, so the counter composes
	// with the other wire-level byte metrics.
	if d := before - wire.TableSize(nt); d > 0 {
		s.met.PushdownBytesSaved.Add(int64(d))
	}
}

// chooseShipData decides one traversal edge: true means the clone stays
// on this site's queue and the destination documents come over the wire
// instead (ship-data), because the documents are estimated cheaper to
// move than the clone. Requires observed statistics for the destination
// site; without them the edge ships the query, the paper's default.
func (s *Server) chooseShipData(oc *outClone) bool {
	p := s.opts.Planner
	if !p.Enabled || p.NoShipData || oc.site == s.site {
		return false
	}
	// Cost the clone at its actual encoded frame size; the structural
	// estimate remains the fallback for messages the codec refuses.
	cloneBytes := int64(wire.EncodedSize(oc.msg))
	if cloneBytes == 0 {
		envBytes := 0
		for k, v := range oc.msg.Env {
			envBytes += len(k) + len(v)
		}
		cloneBytes = plan.EstimateCloneBytes(len(oc.msg.Stages), envBytes, len(oc.msg.Dest))
	}
	avg := s.peerStat(oc.site).AvgDocBytes()
	return plan.ChooseShipData(len(oc.msg.Dest), avg, cloneBytes, p.ShipDataBias)
}

// fetchForeign downloads a document hosted on another site for a
// ship-data edge, booking the transfer and the peer's document size.
func (s *Server) fetchForeign(node, host string) ([]byte, error) {
	content, err := s.fetch.Get(node)
	if err != nil {
		return nil, err
	}
	// Book the transfer at its encoded frame size (what actually crossed
	// the wire), while the peer's document statistic stays raw content
	// bytes — the cost model's avgDocBytes numerator.
	s.met.ShipDataBytes.Add(int64(wire.EncodedSize(&wire.FetchResp{URL: node, Content: content})))
	s.recordPeerDoc(host, int64(len(content)))
	return content, nil
}
