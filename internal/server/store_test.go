package server

import (
	"reflect"
	"testing"

	"webdis/internal/netsim"
	"webdis/internal/nodeproc"
	"webdis/internal/webgraph"
	"webdis/internal/webserver"
)

// siteWithDocs returns a campus site hosting at least n documents.
func siteWithDocs(t *testing.T, web *webgraph.Web, n int) string {
	t.Helper()
	for _, site := range web.Hosts() {
		if len(web.URLsAt(site)) >= n {
			return site
		}
	}
	t.Fatalf("no site with >= %d documents", n)
	return ""
}

// TestDBCacheLRUEviction: with DBCacheEntries set, the CacheDBs retention
// must stay at the bound, count its evictions, and re-build (re-parse) a
// node that was evicted — while never evicting an in-flight entry.
func TestDBCacheLRUEviction(t *testing.T) {
	web := webgraph.Campus()
	site := siteWithDocs(t, web, 4)
	urls := web.URLsAt(site)
	const bound = 2
	met := &Metrics{}
	s := New(site, webserver.NewHost(site, web), netsim.New(netsim.Options{}), met, Options{
		CacheDBs: true, DBCacheEntries: bound,
	})

	for _, u := range urls {
		if _, err := s.database(u); err != nil {
			t.Fatal(err)
		}
	}
	if got := met.DBCacheEvicted.Load(); got != int64(len(urls)-bound) {
		t.Fatalf("DBCacheEvicted = %d, want %d", got, len(urls)-bound)
	}
	s.dbMu.RLock()
	cached := len(s.dbCache)
	s.dbMu.RUnlock()
	if cached != bound {
		t.Fatalf("retained %d databases, want %d", cached, bound)
	}

	// urls[0] is the coldest entry: long evicted, so using it again must
	// run the Database Constructor once more.
	parsed := met.DocsParsed.Load()
	if _, err := s.database(urls[0]); err != nil {
		t.Fatal(err)
	}
	if got := met.DocsParsed.Load(); got != parsed+1 {
		t.Fatalf("DocsParsed after evicted re-use = %d, want %d", got, parsed+1)
	}
	// The most recent entry is still retained: a repeat use is a hit.
	hits := met.DBCacheHits.Load()
	if _, err := s.database(urls[0]); err != nil {
		t.Fatal(err)
	}
	if met.DBCacheHits.Load() != hits+1 {
		t.Fatal("repeat use of a retained database was not a cache hit")
	}
}

// TestDBCacheUnboundedWithoutEntries pins the seed behaviour: CacheDBs
// without DBCacheEntries retains everything and never evicts.
func TestDBCacheUnboundedWithoutEntries(t *testing.T) {
	web := webgraph.Campus()
	site := siteWithDocs(t, web, 4)
	urls := web.URLsAt(site)
	met := &Metrics{}
	s := New(site, webserver.NewHost(site, web), netsim.New(netsim.Options{}), met, Options{CacheDBs: true})
	for _, u := range urls {
		if _, err := s.database(u); err != nil {
			t.Fatal(err)
		}
	}
	if met.DBCacheEvicted.Load() != 0 {
		t.Fatalf("unbounded cache evicted %d entries", met.DBCacheEvicted.Load())
	}
	s.dbMu.RLock()
	cached := len(s.dbCache)
	s.dbMu.RUnlock()
	if cached != len(urls) {
		t.Fatalf("retained %d databases, want %d", cached, len(urls))
	}
}

// TestStoreBackedDatabases: a server with Options.Store serves databases
// that are tuple-identical to the in-RAM Database Constructor, builds the
// store exactly once, and on a restart reopens it without parsing a
// single document (cold start = open-not-rebuild).
func TestStoreBackedDatabases(t *testing.T) {
	web := webgraph.Campus()
	site := siteWithDocs(t, web, 2)
	urls := web.URLsAt(site)
	dir := t.TempDir()
	tr := netsim.New(netsim.Options{})

	met := &Metrics{}
	s := New(site, webserver.NewHost(site, web), tr, met, Options{
		Store: StoreOptions{Dir: dir, PoolPages: 16},
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	if met.StoreBuilds.Load() != 1 || met.ColdOpens.Load() != 0 {
		t.Fatalf("first start: builds=%d coldOpens=%d, want 1 and 0",
			met.StoreBuilds.Load(), met.ColdOpens.Load())
	}
	if got := met.DocsParsed.Load(); got != int64(len(urls)) {
		t.Fatalf("store build parsed %d docs, want %d", got, len(urls))
	}
	for _, u := range urls {
		got, err := s.database(u)
		if err != nil {
			t.Fatal(err)
		}
		html, _ := web.HTML(u)
		want, err := nodeproc.BuildDB(u, html)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Document.Tuples, want.Document.Tuples) ||
			!reflect.DeepEqual(got.Anchor.Tuples, want.Anchor.Tuples) ||
			!reflect.DeepEqual(got.RelInfon.Tuples, want.RelInfon.Tuples) {
			t.Fatalf("%s: store-backed database differs from in-RAM build", u)
		}
		if got.Text == nil {
			t.Fatalf("%s: store-backed database has no text oracle", u)
		}
	}
	if met.PagesRead.Load() == 0 {
		t.Fatal("store-backed serving read no pages")
	}
	s.Stop()

	// Restart against the same directory: open, don't rebuild.
	met2 := &Metrics{}
	s2 := New(site, webserver.NewHost(site, web), tr, met2, Options{
		Store: StoreOptions{Dir: dir, PoolPages: 16},
	})
	if err := s2.Start(); err != nil {
		t.Fatal(err)
	}
	defer s2.Stop()
	if met2.ColdOpens.Load() != 1 || met2.StoreBuilds.Load() != 0 {
		t.Fatalf("restart: coldOpens=%d builds=%d, want 1 and 0",
			met2.ColdOpens.Load(), met2.StoreBuilds.Load())
	}
	if met2.DocsParsed.Load() != 0 {
		t.Fatalf("restart parsed %d documents, want 0", met2.DocsParsed.Load())
	}
	if _, err := s2.database(urls[0]); err != nil {
		t.Fatal(err)
	}
	if met2.DocsParsed.Load() != 0 {
		t.Fatal("reopened store parsed a document to serve a database")
	}
}

// TestStoreServerEndToEnd runs a real campus clone through a store-backed
// server and checks the reported rows match the plain server's.
func TestStoreServerEndToEnd(t *testing.T) {
	rows := func(opts Options) [][]string {
		h := newHarness(t, webgraph.Campus(), "dsl.serc.iisc.ernet.in", opts)
		h.send(t, campusStage2Clone("http://dsl.serc.iisc.ernet.in/index.html"))
		msgs := h.waitMsgs(t, 2)
		var out [][]string
		for _, m := range msgs {
			for _, tbl := range m.Tables {
				out = append(out, tbl.Rows...)
			}
		}
		return out
	}
	plain := rows(Options{})
	stored := rows(Options{Store: StoreOptions{Dir: t.TempDir()}})
	if !reflect.DeepEqual(plain, stored) {
		t.Fatalf("store-backed rows differ:\n plain %v\n store %v", plain, stored)
	}
	if len(stored) == 0 {
		t.Fatal("workload produced no rows; test is vacuous")
	}
}
