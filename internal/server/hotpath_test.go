package server

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"webdis/internal/netsim"
	"webdis/internal/nodeproc"
	"webdis/internal/webgraph"
	"webdis/internal/webserver"
	"webdis/internal/wire"
)

// TestDocsParsedOnceConcurrent: many concurrent arrivals for the same
// node with Workers > 1 must construct its database exactly once — the
// singleflight closes the seed's check-then-insert window where racing
// workers each ran the Database Constructor.
func TestDocsParsedOnceConcurrent(t *testing.T) {
	web := webgraph.Campus()
	h := newHarness(t, web, "www2.csa.iisc.ernet.in", Options{Workers: 8, CacheDBs: true})

	// Same node, same PRE, but a distinct environment per arrival: the
	// log table keys on the environment, so none are purged and every
	// arrival needs the node's database.
	const n = 12
	for i := 0; i < n; i++ {
		c := campusStage2Clone("http://www2.csa.iisc.ernet.in/~gang/lab.html")
		c.Dest[0].Seq = int64(i + 1)
		c.Env = map[string]string{"tag": fmt.Sprintf("t%d", i)}
		h.send(t, c)
	}
	h.waitMsgs(t, n)

	if got := h.met.DocsParsed.Load(); got != 1 {
		t.Fatalf("DocsParsed = %d, want 1 (singleflight + cache)", got)
	}
	if hits, co := h.met.DBCacheHits.Load(), h.met.DBBuildCoalesced.Load(); hits+co != n-1 {
		t.Errorf("DBCacheHits(%d) + DBBuildCoalesced(%d) = %d, want %d", hits, co, hits+co, n-1)
	}
}

// TestDuplicateDropParsesNothing: the second arrival of an identical
// clone is purged by the log table, and in steady state that purge-path
// check must be served entirely from the parse cache.
func TestDuplicateDropParsesNothing(t *testing.T) {
	web := webgraph.Campus()
	h := newHarness(t, web, "www2.csa.iisc.ernet.in", Options{})

	h.send(t, campusStage2Clone("http://www2.csa.iisc.ernet.in/~gang/lab.html"))
	h.waitMsgs(t, 1)

	missesBefore := h.met.ParseCacheMisses.Load()
	hitsBefore := h.met.ParseCacheHits.Load()
	dup := campusStage2Clone("http://www2.csa.iisc.ernet.in/~gang/lab.html")
	dup.Dest[0].Seq = 2
	h.send(t, dup)
	h.waitMsgs(t, 2)

	if h.met.DupDropped.Load() != 1 {
		t.Fatalf("DupDropped = %d, want 1", h.met.DupDropped.Load())
	}
	if d := h.met.ParseCacheMisses.Load() - missesBefore; d != 0 {
		t.Errorf("duplicate arrival missed the parse cache %d times", d)
	}
	if d := h.met.ParseCacheHits.Load() - hitsBefore; d == 0 {
		t.Error("duplicate arrival recorded no parse-cache hits")
	}
}

// TestMalformedCloneRetiresCached: a clone with an unparsable PRE must
// still retire every destination (or the user-site waits forever), and
// the parse failure must not poison the cache: a repeat of the same
// malformed clone behaves identically.
func TestMalformedCloneRetiresCached(t *testing.T) {
	web := webgraph.Campus()
	h := newHarness(t, web, "www2.csa.iisc.ernet.in", Options{})

	for round := 1; round <= 2; round++ {
		c := campusStage2Clone("http://www2.csa.iisc.ernet.in/~gang/lab.html")
		c.Rem = "L*(" // malformed
		c.Dest[0].Seq = int64(round * 10)
		c.Dest = append(c.Dest, wire.DestNode{
			URL: "http://www2.csa.iisc.ernet.in/~gang/pubs.html", Origin: sinkName, Seq: int64(round*10 + 1),
		})
		h.send(t, c)
		msgs := h.waitMsgs(t, round)
		last := msgs[len(msgs)-1]
		if len(last.Updates) != 2 {
			t.Fatalf("round %d: retired %d entries, want 2", round, len(last.Updates))
		}
		for _, u := range last.Updates {
			if len(u.Children) != 0 {
				t.Fatalf("round %d: malformed clone spawned children", round)
			}
		}
	}
	if h.met.Evaluations.Load() != 0 {
		t.Errorf("malformed clone was evaluated %d times", h.met.Evaluations.Load())
	}
}

// TestParallelFanoutSameShape: parallel fan-out must not change what is
// processed or forwarded — only when the remote sends happen. Run the
// same first-stage clone through serial and parallel configurations and
// compare the quiesced CHT bookkeeping.
func TestParallelFanoutSameShape(t *testing.T) {
	web := webgraph.Campus()
	shape := func(opts Options) (updates, children int) {
		h := newHarness(t, web, "csa.iisc.ernet.in", opts)
		wq := mustQuery(webgraph.CampusDISQL)
		c := &wire.CloneMsg{
			ID:     testID,
			Dest:   []wire.DestNode{{URL: webgraph.CampusStart, Origin: sinkName, Seq: 1}},
			Rem:    wq.Stages[0].PRE.String(),
			Base:   0,
			Stages: nodeproc.EncodeStages(wq.Stages),
		}
		h.send(t, c)
		msgs := h.quiesce(t)
		for _, m := range msgs {
			updates += len(m.Updates)
			for _, u := range m.Updates {
				children += len(u.Children)
			}
		}
		return
	}
	su, sc := shape(Options{SerialFanout: true})
	pu, pc := shape(Options{FanoutWorkers: 6})
	if su != pu || sc != pc {
		t.Fatalf("serial (updates=%d children=%d) != parallel (updates=%d children=%d)", su, sc, pu, pc)
	}
	if sc == 0 {
		t.Fatal("workload spawned no children; test is vacuous")
	}
}

// quiesce waits until the stream of result messages stops growing, then
// returns them — for workloads whose message count is not known a priori
// (e.g. forward failures that retire clones after the main report).
func (h *harness) quiesce(t *testing.T) []*wire.ResultMsg {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	last, stable := -1, 0
	for time.Now().Before(deadline) {
		h.mu.Lock()
		cur := len(h.msgs)
		h.mu.Unlock()
		if cur == last && cur > 0 {
			stable++
			if stable > 20 { // ~100ms of silence
				h.mu.Lock()
				out := make([]*wire.ResultMsg, len(h.msgs))
				copy(out, h.msgs)
				h.mu.Unlock()
				return out
			}
		} else {
			stable = 0
		}
		last = cur
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("result stream never quiesced")
	return nil
}

// TestPooledSendStaleRecovery: a pooled connection whose peer closed it
// while idle (passive termination's signature move) is transparently
// replaced by a fresh dial within the same attempt — no retry consumed,
// matching the seed's per-message dial behaviour.
func TestPooledSendStaleRecovery(t *testing.T) {
	web := webgraph.Campus()
	n := netsim.New(netsim.Options{})
	met := &Metrics{}
	srv := New("www2.csa.iisc.ernet.in", webserverHost(t, web, "www2.csa.iisc.ernet.in"), n, met, Options{})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	const sink = "user/q9"
	ln, err := n.Listen(sink)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var mu sync.Mutex
	var conns []net.Conn
	received := make(chan struct{}, 16)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
			go func() {
				framed := wire.NewFramed(c)
				for {
					if _, err := wire.Receive(framed); err != nil {
						return
					}
					received <- struct{}{}
				}
			}()
		}
	}()

	msg := &wire.ResultMsg{ID: testID}
	if err := srv.send(sink, msg); err != nil {
		t.Fatal(err)
	}
	<-received
	if met.ConnDialed.Load() != 1 || met.ConnReused.Load() != 0 {
		t.Fatalf("after first send: dialed=%d reused=%d", met.ConnDialed.Load(), met.ConnReused.Load())
	}

	// The peer closes the pooled connection while it sits idle.
	mu.Lock()
	for _, c := range conns {
		c.Close()
	}
	mu.Unlock()

	if err := srv.send(sink, msg); err != nil {
		t.Fatal(err)
	}
	<-received
	if met.ConnReused.Load() != 1 || met.ConnStale.Load() != 1 {
		t.Fatalf("after stale send: reused=%d stale=%d", met.ConnReused.Load(), met.ConnStale.Load())
	}
	if met.ConnDialed.Load() != 2 {
		t.Fatalf("dialed = %d, want 2 (initial + stale replacement)", met.ConnDialed.Load())
	}
	if met.Retries.Load() != 0 {
		t.Fatalf("stale-conn recovery consumed %d retries", met.Retries.Load())
	}
}

func webserverHost(t *testing.T, web *webgraph.Web, site string) *webserver.Host {
	t.Helper()
	return webserver.NewHost(site, web)
}
