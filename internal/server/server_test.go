package server

import (
	"sync"
	"testing"
	"time"

	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/nodeproc"
	"webdis/internal/webgraph"
	"webdis/internal/webserver"
	"webdis/internal/wire"
)

// harness wires one server to a hand-rolled user-site sink so tests can
// inspect raw ResultMsgs.
type harness struct {
	net    *netsim.Network
	server *Server
	met    *Metrics

	mu   sync.Mutex
	msgs []*wire.ResultMsg
}

const sinkName = "user/q1"

func newHarness(t *testing.T, web *webgraph.Web, site string, opts Options) *harness {
	t.Helper()
	h := &harness{net: netsim.New(netsim.Options{}), met: &Metrics{}}
	host := webserver.NewHost(site, web)
	h.server = New(site, host, h.net, h.met, opts)
	if err := h.server.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.server.Stop)

	ln, err := h.net.Listen(sinkName)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				framed := wire.NewFramed(conn)
				for {
					msg, err := wire.Receive(framed)
					if err != nil {
						return
					}
					if rm, ok := msg.(*wire.ResultMsg); ok {
						h.mu.Lock()
						h.msgs = append(h.msgs, rm)
						h.mu.Unlock()
					}
				}
			}()
		}
	}()
	return h
}

func (h *harness) send(t *testing.T, c *wire.CloneMsg) {
	t.Helper()
	conn, err := h.net.Dial(sinkName, Endpoint(h.server.Site()))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.Send(conn, c); err != nil {
		t.Fatal(err)
	}
}

// waitMsgs waits until at least n result messages have arrived.
func (h *harness) waitMsgs(t *testing.T, n int) []*wire.ResultMsg {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		h.mu.Lock()
		if len(h.msgs) >= n {
			out := make([]*wire.ResultMsg, len(h.msgs))
			copy(out, h.msgs)
			h.mu.Unlock()
			return out
		}
		h.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d result messages", n)
	return nil
}

var testID = wire.QueryID{User: "t", Site: sinkName, Num: 1}

func mustQuery(src string) *disql.WebQuery { return disql.MustParse(src) }

func campusStage2Clone(destURL string) *wire.CloneMsg {
	// State (1, L*1) arriving at a lab homepage: evaluate q2 with the
	// convener predicate.
	wq := mustQuery(webgraph.CampusDISQL)
	return &wire.CloneMsg{
		ID:     testID,
		Dest:   []wire.DestNode{{URL: destURL, Origin: sinkName, Seq: 1}},
		Rem:    "L*1",
		Base:   1,
		Stages: nodeproc.EncodeStages(wq.Stages[1:]),
	}
}

func TestServerEvaluatesAndReports(t *testing.T) {
	web := webgraph.Campus()
	h := newHarness(t, web, "dsl.serc.iisc.ernet.in", Options{})
	h.send(t, campusStage2Clone("http://dsl.serc.iisc.ernet.in/index.html"))

	// The homepage fails q2 (dead end for evaluation) but forwards the
	// L-continuation locally; the people page answers. Two result
	// messages arrive: one per processed clone batch.
	msgs := h.waitMsgs(t, 2)
	var rows int
	var processed, children int
	for _, m := range msgs {
		for _, tbl := range m.Tables {
			rows += len(tbl.Rows)
			if tbl.Stage != 1 {
				t.Errorf("stage = %d", tbl.Stage)
			}
		}
		for _, u := range m.Updates {
			processed++
			children += len(u.Children)
		}
	}
	if rows != 1 {
		t.Errorf("result rows = %d", rows)
	}
	// Three nodes processed: homepage plus people and projects (batched
	// into one local clone; projects dead-ends).
	if processed != 3 {
		t.Errorf("processed = %d", processed)
	}
	if children != 2 {
		t.Errorf("children = %d", children)
	}
	m := h.met.Snapshot()
	if m.LocalClones != 1 || m.ClonesForwarded != 0 {
		t.Errorf("metrics = %+v", m)
	}
	if m.Evaluations != 3 || m.DeadEnds != 2 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestServerEchoesSerials(t *testing.T) {
	web := webgraph.Campus()
	h := newHarness(t, web, "www2.csa.iisc.ernet.in", Options{})
	clone := campusStage2Clone("http://www2.csa.iisc.ernet.in/~gang/lab.html")
	clone.Dest[0].Origin = "someorigin/query"
	clone.Dest[0].Seq = 42
	h.send(t, clone)
	msgs := h.waitMsgs(t, 1)
	p := msgs[0].Updates[0].Processed
	if p.Origin != "someorigin/query" || p.Seq != 42 {
		t.Errorf("processed entry = %+v", p)
	}
	if p.State.NumQ != 1 || p.State.Rem != "L*1" {
		t.Errorf("state = %+v", p.State)
	}
}

func TestServerDuplicateDropStillReports(t *testing.T) {
	web := webgraph.Campus()
	h := newHarness(t, web, "www2.csa.iisc.ernet.in", Options{})
	h.send(t, campusStage2Clone("http://www2.csa.iisc.ernet.in/~gang/lab.html"))
	second := campusStage2Clone("http://www2.csa.iisc.ernet.in/~gang/lab.html")
	second.Dest[0].Seq = 2
	h.send(t, second)
	msgs := h.waitMsgs(t, 2)
	// Whichever clone arrives second is the duplicate: its report retires
	// its entry but carries no results. The clones race through separate
	// connections, so identify the reports by content, not order.
	var full, empty int
	for _, m := range msgs {
		if len(m.Updates) != 1 {
			t.Fatalf("report updates = %+v", m.Updates)
		}
		if len(m.Tables) == 0 && len(m.Updates[0].Children) == 0 {
			empty++
		} else {
			full++
		}
	}
	if full != 1 || empty != 1 {
		t.Errorf("reports = %+v, want one full and one duplicate-retire", msgs)
	}
	if h.met.DupDropped.Load() != 1 {
		t.Errorf("DupDropped = %d", h.met.DupDropped.Load())
	}
}

func TestServerSubsumptionRewrite(t *testing.T) {
	// Send L*2 then L*4 to the same node: the second arrival must be
	// processed as a rewritten PureRouter (L·L*3).
	web := webgraph.NewWeb()
	p := web.NewPage("http://a.example/x.html", "X")
	p.AddText("token-here")
	p.AddLink("/y.html", "y")
	y := web.NewPage("http://a.example/y.html", "Y")
	y.AddText("token-here")

	var events []Event
	var mu sync.Mutex
	h := newHarness(t, web, "a.example", Options{Trace: func(e Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}})

	wq := mustQuery(`select d.url from document d such that "http://a.example/x.html" L*2 d where d.text contains "token-here"`)
	mk := func(rem string, seq int64) *wire.CloneMsg {
		return &wire.CloneMsg{
			ID:     testID,
			Dest:   []wire.DestNode{{URL: "http://a.example/x.html", Origin: sinkName, Seq: seq}},
			Rem:    rem,
			Base:   0,
			Stages: nodeproc.EncodeStages(wq.Stages),
		}
	}
	h.send(t, mk("L*2", 1))
	h.waitMsgs(t, 2) // x batch + local continuation batch
	h.send(t, mk("L*4", 10))
	h.waitMsgs(t, 3)

	// The paper's query-multiple-rewrite: the superset arrival is
	// rewritten at x (L*4 -> L·L*3) and again at the next node y, where
	// the forwarded L*3 covers the logged L*1. The second rewrite rides
	// the continuation clone, which may still be queued when x's own
	// report (the third message) lands — poll the counter, don't race it.
	deadline := time.Now().Add(5 * time.Second)
	for h.met.DupRewritten.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if h.met.DupRewritten.Load() != 2 {
		t.Fatalf("DupRewritten = %d", h.met.DupRewritten.Load())
	}
	mu.Lock()
	defer mu.Unlock()
	details := map[string]bool{}
	for _, e := range events {
		if e.Action == "rewrite" {
			details[e.Detail] = true
		}
	}
	for _, want := range []string{"L*4 -> L·L*3", "L*3 -> L·L*2"} {
		if !details[want] {
			t.Errorf("missing rewrite %q in %v", want, details)
		}
	}
}

func TestServerRetiresOnMalformedClone(t *testing.T) {
	web := webgraph.Campus()
	h := newHarness(t, web, "csa.iisc.ernet.in", Options{})
	h.send(t, &wire.CloneMsg{
		ID:   testID,
		Dest: []wire.DestNode{{URL: webgraph.CampusStart, Origin: sinkName, Seq: 7}},
		Rem:  "((bogus",
	})
	msgs := h.waitMsgs(t, 1)
	if got := msgs[0].Updates[0].Processed.Seq; got != 7 {
		t.Errorf("retired seq = %d", got)
	}
}

func TestServerNoBatchOption(t *testing.T) {
	metBatched := runCampusStage1(t, Options{})
	metUnbatched := runCampusStage1(t, Options{NoBatch: true})
	// Stage 1 forwards to four local pages: batched that is one local
	// clone, unbatched it is four.
	if metBatched.LocalClones != 1 {
		t.Errorf("batched local clones = %d", metBatched.LocalClones)
	}
	if metUnbatched.LocalClones != 4 {
		t.Errorf("unbatched local clones = %d", metUnbatched.LocalClones)
	}
}

func runCampusStage1(t *testing.T, opts Options) Snapshot {
	t.Helper()
	web := webgraph.Campus()
	h := newHarness(t, web, "csa.iisc.ernet.in", opts)
	wq := mustQuery(webgraph.CampusDISQL)
	h.send(t, &wire.CloneMsg{
		ID:     testID,
		Dest:   []wire.DestNode{{URL: webgraph.CampusStart, Origin: sinkName, Seq: 1}},
		Rem:    "L",
		Base:   0,
		Stages: nodeproc.EncodeStages(wq.Stages),
	})
	// Start node routes; the batch of 4 local pages is processed next;
	// then the labs page advances and forwards 5 remote clones (which
	// fail, as no other servers run — forward failures trigger retire
	// dispatches).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if h.met.DocsParsed.Load() >= 5 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let forwards settle
	return h.met.Snapshot()
}

func TestServerForwardFailureRetires(t *testing.T) {
	met := runCampusStage1(t, Options{})
	// The five global-link targets live on sites with no servers: every
	// forward fails and is retired.
	if met.ForwardFailed == 0 {
		t.Errorf("metrics = %+v", met)
	}
	if met.ClonesForwarded != 0 {
		t.Errorf("forwarded = %d", met.ClonesForwarded)
	}
}

func TestServerMaxHops(t *testing.T) {
	web := webgraph.Chain(10, 1, 1)
	nets := netsim.New(netsim.Options{})
	met := &Metrics{}
	var servers []*Server
	for _, site := range web.Hosts() {
		s := New(site, webserver.NewHost(site, web), nets, met, Options{MaxHops: 3})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		defer s.Stop()
		servers = append(servers, s)
	}
	ln, _ := nets.Listen(sinkName)
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				framed := wire.NewFramed(conn)
				for {
					if _, err := wire.Receive(framed); err != nil {
						return
					}
				}
			}()
		}
	}()
	wq := mustQuery(`select d.url from document d such that "http://c0.example/p0.html" N|G* d`)
	conn, err := nets.Dial(sinkName, Endpoint("c0.example"))
	if err != nil {
		t.Fatal(err)
	}
	wire.Send(conn, &wire.CloneMsg{
		ID:     testID,
		Dest:   []wire.DestNode{{URL: "http://c0.example/p0.html", Origin: sinkName, Seq: 1}},
		Rem:    "N|G*",
		Stages: nodeproc.EncodeStages(wq.Stages),
	})
	conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && met.HopsClamped.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if met.HopsClamped.Load() == 0 {
		t.Fatal("hop bound never triggered")
	}
	if got := met.Evaluations.Load(); got != 4 { // hops 0..3
		t.Errorf("evaluations = %d, want 4", got)
	}
}

func TestEndpointName(t *testing.T) {
	if Endpoint("a.example") != "a.example/query" {
		t.Errorf("Endpoint = %q", Endpoint("a.example"))
	}
}

func TestOptionsDedupDefault(t *testing.T) {
	if (Options{}).dedup() != nodeproc.DedupSubsume {
		t.Error("default dedup should be subsume")
	}
	o := Options{Dedup: nodeproc.DedupOff, DedupSet: true}
	if o.dedup() != nodeproc.DedupOff {
		t.Error("explicit off should stick")
	}
	o = Options{Dedup: nodeproc.DedupStrong}
	if o.dedup() != nodeproc.DedupStrong {
		t.Error("strong should pass through")
	}
}

func TestServerDBCache(t *testing.T) {
	// Footnote 3: with CacheDBs the same node's database is constructed
	// once across repeat visits (here: two queries hitting the same page).
	web := webgraph.Campus()
	h := newHarness(t, web, "www2.csa.iisc.ernet.in", Options{CacheDBs: true})
	h.send(t, campusStage2Clone("http://www2.csa.iisc.ernet.in/~gang/lab.html"))
	h.waitMsgs(t, 1)
	second := campusStage2Clone("http://www2.csa.iisc.ernet.in/~gang/lab.html")
	second.ID.Num = 2 // a different query: not a log-table duplicate
	second.ID.Site = sinkName
	h.send(t, second)
	h.waitMsgs(t, 2)
	m := h.met.Snapshot()
	if m.DocsParsed != 1 || m.DBCacheHits != 1 {
		t.Errorf("parsed=%d hits=%d, want 1 and 1", m.DocsParsed, m.DBCacheHits)
	}
	if m.Evaluations != 2 {
		t.Errorf("evaluations = %d", m.Evaluations)
	}
}
