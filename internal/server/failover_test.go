package server

import (
	"testing"
	"time"

	"webdis/internal/cluster"
	"webdis/internal/netsim"
	"webdis/internal/webgraph"
	"webdis/internal/webserver"
	"webdis/internal/wire"
)

// TestSendSiteFailsOverToLiveReplica drives the server's forward path
// against a two-replica site whose hashed-primary replica is dead: the
// send must exhaust the retry policy against the corpse, re-resolve
// through the membership table, and deliver to the surviving replica.
func TestSendSiteFailsOverToLiveReplica(t *testing.T) {
	net := netsim.New(netsim.Options{})
	cl := cluster.New(cluster.Options{SuspectAfter: 1, DownAfter: 1})
	cl.AddSite("b.example", 2)

	web := webgraph.Campus()
	met := &Metrics{}
	s := New("a.example", webserver.NewHost("a.example", web), net, met, Options{Cluster: cl})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)

	got := make(chan string, 4)
	for i := 0; i < 2; i++ {
		ep := cluster.ReplicaEndpoint("b.example", i)
		ln, err := net.Listen(ep)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ln.Close() })
		go func(ep string) {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				go func() {
					defer conn.Close()
					framed := wire.NewFramed(conn)
					for {
						if _, err := wire.Receive(framed); err != nil {
							return
						}
						got <- ep
					}
				}()
			}
		}(ep)
	}

	c := &wire.CloneMsg{
		ID:   wire.QueryID{User: "u", Site: "user/q1", Num: 1},
		Dest: []wire.DestNode{{URL: "http://b.example/x.html", Origin: "user/q1", Seq: 1}},
		Rem:  "_",
	}
	primary, ok := cl.Pick("b.example", c.ID.String(), nil)
	if !ok {
		t.Fatal("pick failed")
	}
	cl.ReportSuccess(primary) // balance the probe pick
	net.Kill(primary)

	if err := s.sendSite("b.example", c); err != nil {
		t.Fatalf("sendSite with one live replica: %v", err)
	}
	select {
	case arrived := <-got:
		if arrived == primary {
			t.Fatalf("clone delivered to the killed replica %s", primary)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("clone never arrived anywhere")
	}
	if n := met.Failovers.Load(); n != 1 {
		t.Errorf("Failovers = %d, want 1", n)
	}
	if st := cl.StateOf(primary); st == cluster.Alive {
		t.Error("killed replica still alive in the membership table")
	}

	// With every replica dead the error finally surfaces — the caller's
	// bounce/retire path takes over from there.
	for _, ep := range cl.Endpoints("b.example") {
		net.Kill(ep)
	}
	if err := s.sendSite("b.example", c); err == nil {
		t.Fatal("sendSite succeeded with every replica dead")
	}
}
