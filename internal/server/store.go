package server

import (
	"errors"
	"fmt"

	"webdis/internal/store"
)

// StoreOptions configure the server's persistent site store.
type StoreOptions struct {
	// Dir is the store root directory (one subdirectory per site).
	// Empty disables the store entirely.
	Dir string
	// PoolPages caps the buffer pool (0 = store.DefaultPoolPages).
	PoolPages int
	// NoTextIndex opens the store without its inverted text index, so
	// contains-predicates full-scan — the index ablation arm.
	NoTextIndex bool
}

// Enabled reports whether a store directory is configured.
func (o StoreOptions) Enabled() bool { return o.Dir != "" }

// DocLister is the optional DocSource extension the store's lazy build
// needs: enumerate the site's documents. webserver.Host implements it.
type DocLister interface {
	URLs() []string
}

// openStore runs at Start when Options.Store is enabled: open the
// site's store if it exists (cold start is open-not-rebuild — no
// document is fetched or parsed), otherwise materialize it once from the
// document source. A store that fails verification (torn write, bit rot)
// is rebuilt the same way; any other failure aborts the start.
func (s *Server) openStore() error {
	o := store.Options{
		PoolPages:   s.opts.Store.PoolPages,
		NoTextIndex: s.opts.Store.NoTextIndex,
		Counters: store.Counters{
			PagesRead:    &s.met.PagesRead,
			PagesEvicted: &s.met.PagesEvicted,
			IndexHits:    &s.met.IndexHits,
		},
	}
	st, err := store.Open(s.opts.Store.Dir, s.site, o)
	if err == nil {
		s.met.ColdOpens.Add(1)
		s.store = st
		return nil
	}
	if !errors.Is(err, store.ErrNotBuilt) && !errors.Is(err, store.ErrCorrupt) && !errors.Is(err, store.ErrTruncated) {
		return err
	}
	lister, ok := s.docs.(DocLister)
	if !ok {
		return fmt.Errorf("server: no store for %s under %s and the document source cannot enumerate pages to build one: %w",
			s.site, s.opts.Store.Dir, err)
	}
	// Building is the one time the store runs the Database Constructor,
	// so it books the parse metrics; reopens never touch them.
	o.OnDoc = func(_ string, raw int) {
		s.met.DocsParsed.Add(1)
		s.met.DocBytes.Add(int64(raw))
	}
	st, err = store.Build(s.opts.Store.Dir, s.site, lister.URLs(), s.docs.Get, o)
	if err != nil {
		return err
	}
	s.met.StoreBuilds.Add(1)
	s.store = st
	return nil
}

// noteDBUse records a use of node's retained database for the
// DBCacheEntries LRU and evicts past the bound. Entries join the list
// only once their build completed and was retained, so in-flight builds
// are never evicted from under their waiters.
func (s *Server) noteDBUse(node string) {
	if s.dbLRU == nil {
		return
	}
	s.dbMu.Lock()
	if el := s.dbPos[node]; el != nil {
		s.dbLRU.MoveToFront(el)
	} else if s.dbCache[node] != nil {
		s.dbPos[node] = s.dbLRU.PushFront(node)
	}
	for s.dbLRU.Len() > s.opts.DBCacheEntries {
		el := s.dbLRU.Back()
		victim := el.Value.(string)
		s.dbLRU.Remove(el)
		delete(s.dbPos, victim)
		delete(s.dbCache, victim)
		s.met.DBCacheEvicted.Add(1)
	}
	s.dbMu.Unlock()
}
