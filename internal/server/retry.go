package server

import (
	"math/rand"
	"net"
	"strconv"
	"sync"
	"time"

	"webdis/internal/trace"
	"webdis/internal/wire"
)

// RetryPolicy bounds the forward-resilience loop wrapped around every
// remote send (clone forwards, result dispatches, bounces). The zero
// value sends exactly once with no timeout — the paper's original
// behaviour, where any failure is immediately terminal.
type RetryPolicy struct {
	// Attempts is the total number of tries per message (1 or less means
	// no retry).
	Attempts int
	// Base is the backoff before the first retry; each further retry
	// doubles it, up to Max. A ±25% jitter decorrelates competing
	// senders. Base <= 0 with Attempts > 1 retries immediately.
	Base time.Duration
	// Max caps the backoff (0 means uncapped).
	Max time.Duration
	// Timeout bounds one attempt (dial + send); 0 means no bound. An
	// attempt that exceeds it is abandoned — its connection is closed —
	// and the next attempt starts.
	Timeout time.Duration
}

func (r RetryPolicy) attempts() int {
	if r.Attempts < 1 {
		return 1
	}
	return r.Attempts
}

// backoff returns the pause before retry number n (1-based), jittered.
func (r RetryPolicy) backoff(n int) time.Duration {
	if r.Base <= 0 {
		return 0
	}
	d := r.Base << (n - 1)
	if r.Max > 0 && d > r.Max {
		d = r.Max
	}
	// ±25% jitter; rand's global source is concurrency-safe.
	j := time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
	return d + j
}

// send delivers one message to the named endpoint under the server's
// retry policy. It reports the last error when every attempt failed.
func (s *Server) send(to string, msg any) error {
	pol := s.opts.Retry
	var err error
	for i := 1; i <= pol.attempts(); i++ {
		if i > 1 {
			s.met.Retries.Add(1)
			s.jotRetry(to, msg, i, err)
			if !s.pause(pol.backoff(i - 1)) {
				return err // server stopping; give up quietly
			}
		}
		if err = s.attemptSend(to, msg, pol.Timeout); err == nil {
			return nil
		}
	}
	return err
}

// jotRetry journals one repeat send attempt, recovering the span context
// from whichever message kind is being resent.
func (s *Server) jotRetry(to string, msg any, attempt int, lastErr error) {
	if s.opts.Journal == nil {
		return
	}
	e := trace.Event{
		Kind:   trace.Retry,
		Detail: to + " attempt " + strconv.Itoa(attempt) + ": " + lastErr.Error(),
	}
	switch m := msg.(type) {
	case *wire.CloneMsg:
		e.Query, e.Span, e.Parent, e.Hop, e.State = m.ID.String(), m.Span, m.Parent, m.Hops, m.State().String()
	case *wire.ResultMsg:
		e.Query, e.Span, e.Hop = m.ID.String(), m.Span, m.Hop
	case *wire.BounceMsg:
		e.Query, e.Span, e.Parent, e.Hop, e.State = m.Clone.ID.String(), m.Clone.Span, m.Clone.Parent, m.Clone.Hops, m.Clone.State().String()
	}
	s.opts.Journal.Append(e)
}

// attemptSend performs one dial+send, bounded by timeout when positive.
func (s *Server) attemptSend(to string, msg any, timeout time.Duration) error {
	if timeout <= 0 {
		conn, err := s.tr.Dial(Endpoint(s.site), to)
		if err != nil {
			return err
		}
		defer conn.Close()
		return wire.Send(conn, msg)
	}

	// Run the attempt in a goroutine so a stalled dial or send cannot
	// wedge the Query Processor; on timeout the connection (if any) is
	// closed, which unblocks the send and bounds the goroutine's life.
	var mu sync.Mutex
	var conn net.Conn
	timedOut := false
	done := make(chan error, 1)
	go func() {
		c, err := s.tr.Dial(Endpoint(s.site), to)
		if err != nil {
			done <- err
			return
		}
		mu.Lock()
		if timedOut {
			mu.Unlock()
			c.Close()
			done <- errAttemptTimeout
			return
		}
		conn = c
		mu.Unlock()
		err = wire.Send(c, msg)
		c.Close()
		done <- err
	}()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		mu.Lock()
		timedOut = true
		if conn != nil {
			conn.Close()
		}
		mu.Unlock()
		return errAttemptTimeout
	}
}

type timeoutErr string

func (e timeoutErr) Error() string { return string(e) }

const errAttemptTimeout = timeoutErr("server: send attempt timed out")

// pause sleeps for d but wakes early when the server stops, reporting
// whether the caller should continue.
func (s *Server) pause(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	s.mu.Lock()
	stop := s.stop
	s.mu.Unlock()
	if stop == nil {
		return false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}
