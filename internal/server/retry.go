package server

import (
	"errors"
	"hash/fnv"
	"math/rand"
	"net"
	"strconv"
	"sync"
	"time"

	"webdis/internal/netsim"
	"webdis/internal/trace"
	"webdis/internal/wire"
)

// lockedRand is the server's private, seeded randomness. math/rand's
// *Rand is not concurrency-safe and the global source is not seedable
// per server, so each server carries its own source behind a mutex —
// workers and fan-out goroutines all draw jitter from it. A fixed seed
// makes retry/backoff schedules (and so the chaos differential runs)
// reproducible.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// newLockedRand seeds a server's randomness. A zero seed derives a
// stable per-site seed from the site name, so two servers never share a
// jitter schedule yet every run replays identically.
func newLockedRand(seed int64, site string) *lockedRand {
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(site))
		seed = int64(h.Sum64())
	}
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

// Int63n mirrors rand.Int63n over the locked source.
func (l *lockedRand) Int63n(n int64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Int63n(n)
}

// RetryPolicy bounds the forward-resilience loop wrapped around every
// remote send (clone forwards, result dispatches, bounces). The zero
// value sends exactly once with no timeout — the paper's original
// behaviour, where any failure is immediately terminal.
type RetryPolicy struct {
	// Attempts is the total number of tries per message (1 or less means
	// no retry).
	Attempts int
	// Base is the backoff before the first retry; each further retry
	// doubles it, up to Max. A ±25% jitter decorrelates competing
	// senders. Base <= 0 with Attempts > 1 retries immediately.
	Base time.Duration
	// Max caps the backoff (0 means uncapped).
	Max time.Duration
	// Timeout bounds one attempt (dial + send); 0 means no bound. An
	// attempt that exceeds it is abandoned — its connection is closed —
	// and the next attempt starts.
	Timeout time.Duration
}

func (r RetryPolicy) attempts() int {
	if r.Attempts < 1 {
		return 1
	}
	return r.Attempts
}

// backoff returns the pause before retry number n (1-based), jittered
// ±25% from the server's seeded source so schedules are reproducible.
func (r RetryPolicy) backoff(n int, rng *lockedRand) time.Duration {
	if r.Base <= 0 {
		return 0
	}
	d := r.Base << (n - 1)
	if r.Max > 0 && d > r.Max {
		d = r.Max
	}
	j := time.Duration(rng.Int63n(int64(d)/2+1)) - d/4
	return d + j
}

// errNoReplica is returned by sendSite when every replica of the
// destination site has been tried and failed.
var errNoReplica = errors.New("server: no replica of the destination site is reachable")

// sendSite delivers one clone to the named logical site. Unclustered
// servers send to the site's classic endpoint; clustered ones resolve a
// replica through the membership table and — when the full retry policy
// exhausts against that replica — re-resolve and replay against the next
// live one (the mid-traversal failover path), reporting each outcome so
// the health state machine learns from real traffic. Only after every
// replica has been tried does the error surface to the bounce/retire
// path.
func (s *Server) sendSite(site string, c *wire.CloneMsg) error {
	cl := s.opts.Cluster
	if cl == nil {
		return s.send(Endpoint(site), c)
	}
	var tried map[string]bool
	var lastErr error
	for {
		ep, ok := cl.Pick(site, c.ID.String(), tried)
		if !ok {
			if lastErr == nil {
				lastErr = errNoReplica
			}
			return lastErr
		}
		if tried != nil {
			s.met.Failovers.Add(1)
			s.jot(c, trace.Failover, "", c.State(), site+" -> "+ep)
		}
		err := s.send(ep, c)
		if err == nil {
			cl.ReportSuccess(ep)
			return nil
		}
		cl.ReportFailure(ep)
		lastErr = err
		if tried == nil {
			tried = make(map[string]bool, 2)
		}
		tried[ep] = true
	}
}

// send delivers one message to the named endpoint under the server's
// retry policy. It reports the last error when every attempt failed.
func (s *Server) send(to string, msg any) error {
	pol := s.opts.Retry
	var err error
	for i := 1; i <= pol.attempts(); i++ {
		if i > 1 {
			s.met.Retries.Add(1)
			s.jotRetry(to, msg, i, err)
			if !s.pause(pol.backoff(i-1, s.rng)) {
				return err // server stopping; give up quietly
			}
		}
		if err = s.attemptSend(to, msg, pol.Timeout); err == nil {
			return nil
		}
	}
	return err
}

// jotRetry journals one repeat send attempt, recovering the span context
// from whichever message kind is being resent.
func (s *Server) jotRetry(to string, msg any, attempt int, lastErr error) {
	if s.opts.Journal == nil {
		return
	}
	e := trace.Event{
		Kind:   trace.Retry,
		Detail: to + " attempt " + strconv.Itoa(attempt) + ": " + lastErr.Error(),
	}
	switch m := msg.(type) {
	case *wire.CloneMsg:
		e.Query, e.Span, e.Parent, e.Hop, e.State = m.ID.String(), m.Span, m.Parent, m.Hops, m.State().String()
	case *wire.ResultMsg:
		e.Query, e.Span, e.Hop = m.ID.String(), m.Span, m.Hop
	case *wire.BounceMsg:
		e.Query, e.Span, e.Parent, e.Hop, e.State = m.Clone.ID.String(), m.Clone.Span, m.Clone.Parent, m.Clone.Hops, m.Clone.State().String()
	}
	s.opts.Journal.Append(e)
}

// attemptSend performs one delivery attempt, bounded by timeout when
// positive.
func (s *Server) attemptSend(to string, msg any, timeout time.Duration) error {
	if timeout <= 0 {
		return s.sendOnce(to, msg, nil)
	}

	// Run the attempt in a goroutine so a stalled dial or send cannot
	// wedge the Query Processor; on timeout the attempt's current
	// connection is closed, which unblocks the send and bounds the
	// goroutine's life.
	var mu sync.Mutex
	var conn net.Conn
	timedOut := false
	register := func(c net.Conn) bool {
		mu.Lock()
		defer mu.Unlock()
		if timedOut {
			return false
		}
		conn = c
		return true
	}
	done := make(chan error, 1)
	go func() { done <- s.sendOnce(to, msg, register) }()
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		mu.Lock()
		timedOut = true
		if conn != nil {
			conn.Close()
		}
		mu.Unlock()
		return errAttemptTimeout
	}
}

// sendOnce delivers msg over a pooled or freshly dialed connection.
// register, when non-nil, is offered every connection the attempt uses
// (and nil once the connection is safely back in the pool) so a timed-out
// attempt can close it; register returning false means the attempt
// already timed out and the connection must not be used.
//
// Failure semantics match the seed's dial-per-message behaviour exactly:
// dial refusals and the fabric's injected faults (ErrDropped, ErrSevered)
// surface unchanged to the retry policy. The one pooling artifact — a
// reused connection that died while idle, e.g. a result-collector
// endpoint closed by passive termination — is transparently redone over
// one fresh dial within the same attempt, whose outcome (refusal,
// injected fault, success) is then exactly what the seed would have seen.
func (s *Server) sendOnce(to string, msg any, register func(net.Conn) bool) error {
	from := s.self
	if s.pool == nil {
		conn, err := s.tr.Dial(from, to)
		if err != nil {
			return err
		}
		s.met.ConnDialed.Add(1)
		if register != nil && !register(conn) {
			conn.Close()
			return errAttemptTimeout
		}
		defer conn.Close()
		return wire.Send(conn, msg)
	}

	conn, reused, err := s.pool.Get(to)
	if err != nil {
		return err
	}
	if reused {
		s.met.ConnReused.Add(1)
	} else {
		s.met.ConnDialed.Add(1)
	}
	if register != nil && !register(conn) {
		conn.Close()
		return errAttemptTimeout
	}
	err = wire.Send(conn, msg)
	if err == nil {
		if register != nil && !register(nil) {
			// Timed out concurrently with success; the caller already gave
			// up on this attempt, so do not re-pool the connection.
			conn.Close()
			return errAttemptTimeout
		}
		s.pool.Put(to, conn)
		return nil
	}
	conn.Close()
	if !reused || errors.Is(err, netsim.ErrDropped) || errors.Is(err, netsim.ErrSevered) {
		// A fresh connection failed, or the fault injection ate the frame:
		// report it unchanged. In particular an injected drop must NOT be
		// transparently resent — the no-retry configuration demonstrably
		// loses that frame, exactly as without pooling.
		return err
	}
	// Stale pooled connection: redo once over a fresh dial.
	s.met.ConnStale.Add(1)
	conn, err = s.pool.Dial(to)
	if err != nil {
		return err
	}
	s.met.ConnDialed.Add(1)
	if register != nil && !register(conn) {
		conn.Close()
		return errAttemptTimeout
	}
	err = wire.Send(conn, msg)
	if err != nil {
		conn.Close()
		return err
	}
	if register != nil && !register(nil) {
		conn.Close()
		return errAttemptTimeout
	}
	s.pool.Put(to, conn)
	return nil
}

type timeoutErr string

func (e timeoutErr) Error() string { return string(e) }

const errAttemptTimeout = timeoutErr("server: send attempt timed out")

// pause sleeps for d but wakes early when the server stops, reporting
// whether the caller should continue.
func (s *Server) pause(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	s.mu.Lock()
	stop := s.stop
	s.mu.Unlock()
	if stop == nil {
		return false
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-stop:
		return false
	}
}
