package server

import (
	"testing"
	"time"

	"webdis/internal/webgraph"
	"webdis/internal/wire"
)

// waitCounter polls an int64 loader until it reaches n.
func waitCounter(t *testing.T, what string, load func() int64, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if load() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s >= %d (have %d)", what, n, load())
}

// TestBatchOptionsDefaults pins the option semantics: zero is disabled,
// either bound alone enables with the other defaulted.
func TestBatchOptionsDefaults(t *testing.T) {
	var zero BatchOptions
	if zero.Enabled() {
		t.Error("zero BatchOptions enabled")
	}
	byRows := BatchOptions{MaxRows: 16}
	if !byRows.Enabled() || byRows.maxRows() != 16 || byRows.maxAge() <= 0 {
		t.Errorf("MaxRows-only: enabled=%v rows=%d age=%v", byRows.Enabled(), byRows.maxRows(), byRows.maxAge())
	}
	byAge := BatchOptions{MaxAge: time.Second}
	if !byAge.Enabled() || byAge.maxAge() != time.Second || byAge.maxRows() <= 0 {
		t.Errorf("MaxAge-only: enabled=%v rows=%d age=%v", byAge.Enabled(), byAge.maxRows(), byAge.maxAge())
	}
}

// TestResultBatchCoalesces sends three clone messages for one query and
// checks their reports ride fewer result frames than arrivals: the
// batcher coalesces everything produced inside the age window.
func TestResultBatchCoalesces(t *testing.T) {
	web := webgraph.Campus()
	h := newHarness(t, web, "dsl.serc.iisc.ernet.in", Options{
		ResultBatch: BatchOptions{MaxRows: 1000, MaxAge: 200 * time.Millisecond},
	})
	for seq := int64(1); seq <= 3; seq++ {
		c := campusStage2Clone("http://dsl.serc.iisc.ernet.in/index.html")
		c.Dest[0].Seq = seq
		h.send(t, c)
	}
	// Three arrivals (plus local continuations) produce at least four
	// logical reports; wait for them to be buffered, then flushed.
	waitCounter(t, "ResultReports", h.met.ResultReports.Load, 4)
	waitCounter(t, "ResultMsgs", h.met.ResultMsgs.Load, 1)
	time.Sleep(20 * time.Millisecond) // allow a straggler flush to land

	h.mu.Lock()
	msgs := make([]*wire.ResultMsg, len(h.msgs))
	copy(msgs, h.msgs)
	h.mu.Unlock()
	reports := 0
	for _, m := range msgs {
		if len(m.Reports) == 0 {
			t.Error("batched frame carries no Reports slice")
		}
		m.Each(func(*wire.Report) { reports++ })
	}
	if int64(reports) != h.met.ResultReports.Load() {
		t.Errorf("frames carry %d reports, metrics counted %d", reports, h.met.ResultReports.Load())
	}
	if len(msgs) >= reports {
		t.Errorf("no coalescing: %d frames for %d reports", len(msgs), reports)
	}
	if got := h.met.ResultMsgs.Load(); got != int64(len(msgs)) {
		t.Errorf("ResultMsgs = %d, sink saw %d frames", got, len(msgs))
	}
}

// TestResultBatchFlushesOnRows checks the row bound forces an immediate
// flush: with MaxAge effectively infinite, the row-bearing report still
// arrives promptly.
func TestResultBatchFlushesOnRows(t *testing.T) {
	web := webgraph.Campus()
	h := newHarness(t, web, "dsl.serc.iisc.ernet.in", Options{
		ResultBatch: BatchOptions{MaxRows: 1, MaxAge: time.Hour},
	})
	h.send(t, campusStage2Clone("http://dsl.serc.iisc.ernet.in/index.html"))
	// The people page answers with one row; rows >= MaxRows flushes
	// inline, long before the hour-long age bound.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		h.mu.Lock()
		rows := 0
		for _, m := range h.msgs {
			m.Each(func(r *wire.Report) { rows += r.Rows() })
		}
		h.mu.Unlock()
		if rows >= 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("row-bearing report never flushed under the row bound")
}

// TestServerStopMsgTerminatesClone checks the active-stop path: a
// StopMsg marks the query, and a later clone for it dies with the typed
// STOPPED retirement instead of being evaluated.
func TestServerStopMsgTerminatesClone(t *testing.T) {
	web := webgraph.Campus()
	h := newHarness(t, web, "dsl.serc.iisc.ernet.in", Options{})

	conn, err := h.net.Dial(sinkName, Endpoint(h.server.Site()))
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.Send(conn, &wire.StopMsg{ID: testID, Reason: "test stop"}); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// The stop is handled on the receive path; give it a beat to land.
	waitStop := time.Now().Add(5 * time.Second)
	for time.Now().Before(waitStop) {
		if h.server.isStopped(testID.String()) {
			break
		}
		time.Sleep(time.Millisecond)
	}

	h.send(t, campusStage2Clone("http://dsl.serc.iisc.ernet.in/index.html"))
	msgs := h.waitMsgs(t, 1)
	if !msgs[0].Stopped {
		t.Errorf("retirement not typed as stopped: %+v", msgs[0])
	}
	if len(msgs[0].Updates) != 1 || len(msgs[0].Tables) != 0 {
		t.Errorf("stopped clone should retire without evaluating: %+v", msgs[0])
	}
	m := h.met.Snapshot()
	if m.Stopped != 1 {
		t.Errorf("Stopped = %d, want 1", m.Stopped)
	}
	if m.Evaluations != 0 {
		t.Errorf("Evaluations = %d, want 0 (stop precedes evaluation)", m.Evaluations)
	}
}

// TestResultBatchDeadQueryBlacklist checks passive termination under
// batching: a flush that cannot reach the user-site books the query dead,
// and later reports for it are dropped instead of re-dialing.
func TestResultBatchDeadQueryBlacklist(t *testing.T) {
	web := webgraph.Campus()
	h := newHarness(t, web, "dsl.serc.iisc.ernet.in", Options{
		ResultBatch: BatchOptions{MaxRows: 1000, MaxAge: 5 * time.Millisecond},
	})
	orphan := campusStage2Clone("http://dsl.serc.iisc.ernet.in/index.html")
	orphan.ID = wire.QueryID{User: "t", Site: "nosuch/sink", Num: 9}
	orphan.Dest[0].Origin = "nosuch/sink"
	h.send(t, orphan)
	waitCounter(t, "Terminated", h.met.Terminated.Load, 1)
	if got := h.met.ResultMsgs.Load(); got != 0 {
		t.Errorf("ResultMsgs = %d for an unreachable user-site", got)
	}
	// A second clone for the dead query is refused at dispatch: no new
	// reports are buffered for it.
	before := h.met.ResultReports.Load()
	c2 := campusStage2Clone("http://dsl.serc.iisc.ernet.in/index.html")
	c2.ID = orphan.ID
	c2.Dest[0].Origin = "nosuch/sink"
	c2.Dest[0].Seq = 2
	h.send(t, c2)
	waitCounter(t, "Terminated", h.met.Terminated.Load, 2)
	if got := h.met.ResultReports.Load(); got != before {
		t.Errorf("dead query still buffered reports: %d -> %d", before, got)
	}
}
