package server

import (
	"reflect"
	"sync/atomic"
)

// Metrics counts engine events. Each server owns its own Metrics value
// (and the client another), so counters attribute work to the site that
// did it; Absorb folds instances together when a deployment-wide view is
// wanted. All fields are atomic; read them with Load.
type Metrics struct {
	// Evaluations counts node-query evaluations (ServerRouter visits).
	Evaluations atomic.Int64
	// PureRoutes counts visits where no node-query was due (PureRouter).
	PureRoutes atomic.Int64
	// DocsParsed counts Database Constructor runs (one per document load).
	DocsParsed atomic.Int64
	// DBCacheHits counts evaluations served by a retained database
	// (Options.CacheDBs, the paper's footnote-3 variant).
	DBCacheHits atomic.Int64
	// DeadEnds counts node-queries that found no answer and stopped the
	// clone.
	DeadEnds atomic.Int64
	// DupDropped counts arrivals purged by the Node-query Log Table.
	DupDropped atomic.Int64
	// DupRewritten counts superset arrivals processed after the
	// A*m·B → A·A*(m-1)·B rewrite.
	DupRewritten atomic.Int64
	// ClonesForwarded counts clone messages sent to other sites.
	ClonesForwarded atomic.Int64
	// LocalClones counts clones passed to the local queue without any
	// network traffic (destination node on the same site).
	LocalClones atomic.Int64
	// ResultMsgs counts result/CHT dispatches to the user-site.
	ResultMsgs atomic.Int64
	// Terminated counts clone batches dropped because the result dispatch
	// failed — the paper's passive termination signal.
	Terminated atomic.Int64
	// ForwardFailed counts clone forwards that could not reach their site.
	ForwardFailed atomic.Int64
	// Bounced counts undeliverable clones returned to the user-site for
	// hybrid fallback processing (Section 7.1 migration path).
	Bounced atomic.Int64
	// HopsClamped counts forwards suppressed by the MaxHops safety bound.
	HopsClamped atomic.Int64
	// DocErrors counts destination nodes whose document could not be
	// loaded (floating links).
	DocErrors atomic.Int64
	// Retries counts repeat send attempts made under Options.Retry
	// (forwards, result dispatches and bounces past their first try).
	Retries atomic.Int64
	// RecoveredByBounce counts clones returned to the user-site after a
	// retry loop was exhausted — degraded-mode recovery from query
	// shipping to data shipping for one failed edge.
	RecoveredByBounce atomic.Int64
	// CHTReaped counts orphaned CHT entries retired by the user-site's
	// grace-window reaper (clones stranded by a crashed or partitioned
	// site that will never report).
	CHTReaped atomic.Int64

	// ConnDialed counts fresh transport dials made by the send path.
	ConnDialed atomic.Int64
	// ConnReused counts sends served by an idle pooled connection
	// instead of a fresh dial.
	ConnReused atomic.Int64
	// ConnStale counts reused connections that turned out dead (the peer
	// closed them while idle) and were transparently replaced by a fresh
	// dial within the same send attempt.
	ConnStale atomic.Int64
	// ParseCacheHits and ParseCacheMisses count arriving PRE strings
	// (stage PREs plus the clone's remaining PRE) served by, or inserted
	// into, the shared parse cache.
	ParseCacheHits   atomic.Int64
	ParseCacheMisses atomic.Int64
	// DBBuildCoalesced counts database requests that joined another
	// worker's in-flight build of the same node instead of running their
	// own Database Constructor.
	DBBuildCoalesced atomic.Int64
	// ForwardNanos accumulates wall-clock nanoseconds spent shipping
	// remote forwards per processed clone message — the fan-out critical
	// path that the parallel forward workers shorten.
	ForwardNanos atomic.Int64

	// QueueDepth is a gauge: clones currently admitted to the scheduler
	// queue but not yet handed to a worker.
	QueueDepth atomic.Int64
	// QueueHighWater counts the times admission control newly engaged
	// (the queue depth crossed the high watermark).
	QueueHighWater atomic.Int64
	// Shed counts fresh clones refused by admission control and returned
	// to the user-site with a typed SHED message.
	Shed atomic.Int64
	// BudgetExpired counts clones terminated (or forwards suppressed) for
	// exceeding their wire-carried budget: deadline, hop quota, or clone
	// quota.
	BudgetExpired atomic.Int64
	// RowsClipped counts result rows discarded by the budget's row quota.
	RowsClipped atomic.Int64
	// Stopped counts clones terminated by the user-site's active-stop
	// broadcast: the typed STOPPED retirement.
	Stopped atomic.Int64
	// ResultReports counts logical result reports produced (one per
	// processed or retired clone message with something to say). Without
	// batching it equals ResultMsgs; with batching the ratio
	// ResultReports / ResultMsgs is the coalescing factor.
	ResultReports atomic.Int64

	// Failovers counts clone forwards re-resolved to another replica of
	// the destination site after the retry policy exhausted against the
	// first pick (server- and client-side sends alike).
	Failovers atomic.Int64
	// ReplicaReplays counts clone messages the user-site re-dispatched
	// to a surviving replica to resume the live CHT entries a crashed
	// replica stranded.
	ReplicaReplays atomic.Int64
	// StaleRejected counts result frames dropped because their replica
	// incarnation predates the sender's current registration (replies
	// from before a crash must not retire re-announced entries).
	StaleRejected atomic.Int64
	// DupRetired counts duplicate retirements of replayed CHT entries
	// absorbed by the user-site (the crashed replica's report arrived
	// after all, on top of the replay's).
	DupRetired atomic.Int64

	// RowsScanned counts tuples read by the operator pipeline's scans
	// during node-query evaluation; RowsEmitted counts the distinct rows
	// the pipelines produced. Their ratio is the per-site selectivity the
	// planner's statistics report.
	RowsScanned atomic.Int64
	RowsEmitted atomic.Int64
	// PushdownHits counts node-query result tables reduced in place by a
	// pushed-down plan fragment (partial aggregation or top-K) before
	// shipping; PushdownBytesSaved accumulates the cell bytes the
	// reduction removed from the wire.
	PushdownHits       atomic.Int64
	PushdownBytesSaved atomic.Int64
	// ShipDataEdges counts traversal edges the cost model converted from
	// ship-query to ship-data (the clone stayed here and the documents
	// came over); ShipDataBytes accumulates the document bytes fetched
	// for those edges.
	ShipDataEdges atomic.Int64
	ShipDataBytes atomic.Int64
	// DocBytes accumulates raw content bytes of documents parsed by the
	// Database Constructor — the avgDocBytes numerator of the cost model.
	DocBytes atomic.Int64
	// TargetsAdded counts forward targets scheduled (the fan-out the
	// statistics report as Fanout).
	TargetsAdded atomic.Int64

	// BytesV2Saved accumulates, under Options.WireOracle, the per-frame
	// difference between what gob would have put on the wire and what the
	// v2 binary codec actually sent.
	BytesV2Saved atomic.Int64
	// BatchTunes counts TUNE frames applied to the result batcher's
	// per-query bounds (the client's adaptive-batching feedback loop).
	BatchTunes atomic.Int64

	// PagesRead counts heap pages read from disk by the persistent
	// store's buffer pool (misses; hits touch no counter).
	PagesRead atomic.Int64
	// PagesEvicted counts unpinned pool frames dropped to make room.
	PagesEvicted atomic.Int64
	// IndexHits counts contains-predicates decided by the store's
	// persisted text index instead of a full text scan.
	IndexHits atomic.Int64
	// ColdOpens counts server starts that opened an existing store
	// (open-not-rebuild: no document was fetched or parsed).
	ColdOpens atomic.Int64
	// StoreBuilds counts server starts that had to materialize the store
	// from source documents (first run, or damaged-store recovery).
	StoreBuilds atomic.Int64
	// DBCacheEvicted counts retained databases dropped by the
	// Options.DBCacheEntries LRU bound.
	DBCacheEvicted atomic.Int64

	// DocsInvalidated counts documents whose cached state (retained
	// database, store entry, text-index postings) was invalidated by a
	// web mutation — entry-level eviction, never a full rebuild.
	DocsInvalidated atomic.Int64
	// WatchesRegistered counts standing continuous-query registrations
	// accepted from user-sites.
	WatchesRegistered atomic.Int64
	// DeltasSent counts DELTA notifications dispatched to watch
	// collectors after mutations.
	DeltasSent atomic.Int64
}

// Snapshot is a plain-integer copy of Metrics.
type Snapshot struct {
	Evaluations     int64
	PureRoutes      int64
	DocsParsed      int64
	DBCacheHits     int64
	DeadEnds        int64
	DupDropped      int64
	DupRewritten    int64
	ClonesForwarded int64
	LocalClones     int64
	ResultMsgs      int64
	Terminated      int64
	ForwardFailed   int64
	Bounced         int64
	HopsClamped     int64
	DocErrors       int64

	Retries           int64
	RecoveredByBounce int64
	CHTReaped         int64

	ConnDialed       int64
	ConnReused       int64
	ConnStale        int64
	ParseCacheHits   int64
	ParseCacheMisses int64
	DBBuildCoalesced int64
	ForwardNanos     int64

	QueueDepth     int64
	QueueHighWater int64
	Shed           int64
	BudgetExpired  int64
	RowsClipped    int64
	Stopped        int64
	ResultReports  int64

	Failovers      int64
	ReplicaReplays int64
	StaleRejected  int64
	DupRetired     int64

	RowsScanned        int64
	RowsEmitted        int64
	PushdownHits       int64
	PushdownBytesSaved int64
	ShipDataEdges      int64
	ShipDataBytes      int64
	DocBytes           int64
	TargetsAdded       int64

	BytesV2Saved int64
	BatchTunes   int64

	PagesRead      int64
	PagesEvicted   int64
	IndexHits      int64
	ColdOpens      int64
	StoreBuilds    int64
	DBCacheEvicted int64

	DocsInvalidated   int64
	WatchesRegistered int64
	DeltasSent        int64
}

// Snapshot returns a consistent-enough copy for reporting (individual
// loads are atomic; cross-field skew is harmless for counters).
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Evaluations:     m.Evaluations.Load(),
		PureRoutes:      m.PureRoutes.Load(),
		DocsParsed:      m.DocsParsed.Load(),
		DBCacheHits:     m.DBCacheHits.Load(),
		DeadEnds:        m.DeadEnds.Load(),
		DupDropped:      m.DupDropped.Load(),
		DupRewritten:    m.DupRewritten.Load(),
		ClonesForwarded: m.ClonesForwarded.Load(),
		LocalClones:     m.LocalClones.Load(),
		ResultMsgs:      m.ResultMsgs.Load(),
		Terminated:      m.Terminated.Load(),
		ForwardFailed:   m.ForwardFailed.Load(),
		Bounced:         m.Bounced.Load(),
		HopsClamped:     m.HopsClamped.Load(),
		DocErrors:       m.DocErrors.Load(),

		Retries:           m.Retries.Load(),
		RecoveredByBounce: m.RecoveredByBounce.Load(),
		CHTReaped:         m.CHTReaped.Load(),

		ConnDialed:       m.ConnDialed.Load(),
		ConnReused:       m.ConnReused.Load(),
		ConnStale:        m.ConnStale.Load(),
		ParseCacheHits:   m.ParseCacheHits.Load(),
		ParseCacheMisses: m.ParseCacheMisses.Load(),
		DBBuildCoalesced: m.DBBuildCoalesced.Load(),
		ForwardNanos:     m.ForwardNanos.Load(),

		QueueDepth:     m.QueueDepth.Load(),
		QueueHighWater: m.QueueHighWater.Load(),
		Shed:           m.Shed.Load(),
		BudgetExpired:  m.BudgetExpired.Load(),
		RowsClipped:    m.RowsClipped.Load(),
		Stopped:        m.Stopped.Load(),
		ResultReports:  m.ResultReports.Load(),

		Failovers:      m.Failovers.Load(),
		ReplicaReplays: m.ReplicaReplays.Load(),
		StaleRejected:  m.StaleRejected.Load(),
		DupRetired:     m.DupRetired.Load(),

		RowsScanned:        m.RowsScanned.Load(),
		RowsEmitted:        m.RowsEmitted.Load(),
		PushdownHits:       m.PushdownHits.Load(),
		PushdownBytesSaved: m.PushdownBytesSaved.Load(),
		ShipDataEdges:      m.ShipDataEdges.Load(),
		ShipDataBytes:      m.ShipDataBytes.Load(),
		DocBytes:           m.DocBytes.Load(),
		TargetsAdded:       m.TargetsAdded.Load(),

		BytesV2Saved: m.BytesV2Saved.Load(),
		BatchTunes:   m.BatchTunes.Load(),

		PagesRead:      m.PagesRead.Load(),
		PagesEvicted:   m.PagesEvicted.Load(),
		IndexHits:      m.IndexHits.Load(),
		ColdOpens:      m.ColdOpens.Load(),
		StoreBuilds:    m.StoreBuilds.Load(),
		DBCacheEvicted: m.DBCacheEvicted.Load(),

		DocsInvalidated:   m.DocsInvalidated.Load(),
		WatchesRegistered: m.WatchesRegistered.Load(),
		DeltasSent:        m.DeltasSent.Load(),
	}
}

// Absorb adds every counter of o into m. The deployment aggregates its
// per-site instances through this, so adding a Metrics field never needs
// a matching edit here.
func (m *Metrics) Absorb(o *Metrics) {
	mv := reflect.ValueOf(m).Elem()
	ov := reflect.ValueOf(o).Elem()
	for i := 0; i < mv.NumField(); i++ {
		c, ok := mv.Field(i).Addr().Interface().(*atomic.Int64)
		if !ok {
			continue
		}
		c.Add(ov.Field(i).Addr().Interface().(*atomic.Int64).Load())
	}
}

// Add returns the field-wise sum of two snapshots.
func (s Snapshot) Add(o Snapshot) Snapshot {
	sv := reflect.ValueOf(&s).Elem()
	ov := reflect.ValueOf(&o).Elem()
	for i := 0; i < sv.NumField(); i++ {
		sv.Field(i).SetInt(sv.Field(i).Int() + ov.Field(i).Int())
	}
	return s
}
