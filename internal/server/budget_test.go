package server

import (
	"testing"
	"time"

	"webdis/internal/netsim"
	"webdis/internal/nodeproc"
	"webdis/internal/sched"
	"webdis/internal/webgraph"
	"webdis/internal/webserver"
	"webdis/internal/wire"
)

func TestServerBudgetDeadlineExpires(t *testing.T) {
	web := webgraph.Campus()
	h := newHarness(t, web, "www2.csa.iisc.ernet.in", Options{})
	c := campusStage2Clone("http://www2.csa.iisc.ernet.in/~gang/lab.html")
	c.Budget = wire.Budget{Deadline: time.Now().Add(-time.Millisecond).UnixNano()}
	h.send(t, c)
	msgs := h.waitMsgs(t, 1)
	// The clone expired on arrival: its entry retires via a typed EXPIRED
	// report, nothing is evaluated, no children spawn.
	if !msgs[0].Expired {
		t.Fatalf("report not marked expired: %+v", msgs[0])
	}
	if got := msgs[0].Updates[0].Processed.Seq; got != 1 {
		t.Errorf("retired seq = %d", got)
	}
	if len(msgs[0].Updates[0].Children) != 0 || len(msgs[0].Tables) != 0 {
		t.Errorf("expired clone produced work: %+v", msgs[0])
	}
	m := h.met.Snapshot()
	if m.BudgetExpired != 1 || m.Evaluations != 0 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestServerBudgetHopQuota(t *testing.T) {
	// The same chain as TestServerMaxHops, bounded by the wire-carried
	// hop quota instead of the site-local MaxHops option: the budget
	// travels with the query, so no server needs configuring.
	web := webgraph.Chain(10, 1, 1)
	nets := netsim.New(netsim.Options{})
	met := &Metrics{}
	for _, site := range web.Hosts() {
		s := New(site, webserver.NewHost(site, web), nets, met, Options{})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		defer s.Stop()
	}
	ln, _ := nets.Listen(sinkName)
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				framed := wire.NewFramed(conn)
				for {
					if _, err := wire.Receive(framed); err != nil {
						return
					}
				}
			}()
		}
	}()
	wq := mustQuery(`select d.url from document d such that "http://c0.example/p0.html" N|G* d`)
	conn, err := nets.Dial(sinkName, Endpoint("c0.example"))
	if err != nil {
		t.Fatal(err)
	}
	wire.Send(conn, &wire.CloneMsg{
		ID:     testID,
		Dest:   []wire.DestNode{{URL: "http://c0.example/p0.html", Origin: sinkName, Seq: 1}},
		Rem:    "N|G*",
		Stages: nodeproc.EncodeStages(wq.Stages),
		Budget: wire.Budget{Hops: 3},
	})
	conn.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && met.BudgetExpired.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	if met.BudgetExpired.Load() == 0 {
		t.Fatal("hop quota never triggered")
	}
	// Quota 3 admits the root plus three forwards: evaluations at hops
	// 0..3, exactly like MaxHops 3.
	if got := met.Evaluations.Load(); got != 4 {
		t.Errorf("evaluations = %d, want 4", got)
	}
	if met.HopsClamped.Load() != 0 {
		t.Errorf("budget clamp misattributed to HopsClamped")
	}
}

func TestServerBudgetCloneQuota(t *testing.T) {
	// Campus stage 1: the labs page forwards five remote clone messages.
	// A clone-spawn quota of 3 lets the start node's one local batch
	// (charge 1) hand its child a quota of 2: two remote messages ship,
	// three are suppressed before their entries are announced.
	web := webgraph.Campus()
	h := newHarness(t, web, "csa.iisc.ernet.in", Options{})
	wq := mustQuery(webgraph.CampusDISQL)
	h.send(t, &wire.CloneMsg{
		ID:     testID,
		Dest:   []wire.DestNode{{URL: webgraph.CampusStart, Origin: sinkName, Seq: 1}},
		Rem:    "L",
		Base:   0,
		Stages: nodeproc.EncodeStages(wq.Stages),
		Budget: wire.Budget{Clones: 3},
	})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && h.met.BudgetExpired.Load() < 3 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	m := h.met.Snapshot()
	if m.BudgetExpired != 3 {
		t.Errorf("BudgetExpired = %d, want 3 suppressed messages", m.BudgetExpired)
	}
	// The two admitted remote forwards fail (no servers there) and
	// retire; the suppressed three produce no fate at all — they were
	// never announced.
	if m.ForwardFailed != 2 {
		t.Errorf("ForwardFailed = %d, want 2", m.ForwardFailed)
	}
}

func TestServerBudgetRowQuota(t *testing.T) {
	web := webgraph.NewWeb()
	x := web.NewPage("http://a.example/x.html", "X")
	for _, n := range []string{"y1", "y2", "y3"} {
		x.AddLink("/"+n+".html", n)
		p := web.NewPage("http://a.example/"+n+".html", n)
		p.AddText("tok")
	}
	h := newHarness(t, web, "a.example", Options{})
	wq := mustQuery(`select d.url from document d such that "http://a.example/x.html" L d where d.text contains "tok"`)
	h.send(t, &wire.CloneMsg{
		ID:     testID,
		Dest:   []wire.DestNode{{URL: "http://a.example/x.html", Origin: sinkName, Seq: 1}},
		Rem:    "L",
		Stages: nodeproc.EncodeStages(wq.Stages),
		Budget: wire.Budget{Rows: 2},
	})
	msgs := h.waitMsgs(t, 2) // x routes, then the 3-dest local batch
	rows := 0
	for _, m := range msgs {
		for _, tbl := range m.Tables {
			rows += len(tbl.Rows)
		}
	}
	if rows != 2 {
		t.Errorf("rows delivered = %d, want quota 2", rows)
	}
	if got := h.met.RowsClipped.Load(); got != 1 {
		t.Errorf("RowsClipped = %d, want 1", got)
	}
}

func TestServerShedsOverHighWater(t *testing.T) {
	// An unstarted server never drains its queue, so the depth is fully
	// test-controlled: two in-flight clones reach the watermark, and the
	// next fresh root dispatch must come back as a typed SHED message.
	web := webgraph.Campus()
	nets := netsim.New(netsim.Options{})
	met := &Metrics{}
	site := "www2.csa.iisc.ernet.in"
	s := New(site, webserver.NewHost(site, web), nets, met, Options{
		Sched: sched.Options{Fair: true, HighWater: 2, LowWater: 1},
	})
	t.Cleanup(s.Stop)

	ln, err := nets.Listen(sinkName)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	sheds := make(chan *wire.ShedMsg, 1)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				framed := wire.NewFramed(conn)
				for {
					msg, err := wire.Receive(framed)
					if err != nil {
						return
					}
					if sm, ok := msg.(*wire.ShedMsg); ok {
						sheds <- sm
					}
				}
			}()
		}
	}()

	inflight := campusStage2Clone("http://www2.csa.iisc.ernet.in/~gang/lab.html")
	inflight.Hops = 2
	s.Enqueue(inflight)
	inflight2 := campusStage2Clone("http://www2.csa.iisc.ernet.in/~gang/people.html")
	inflight2.Hops = 2
	inflight2.ID.Num = 2
	s.Enqueue(inflight2)

	fresh := campusStage2Clone("http://www2.csa.iisc.ernet.in/~gang/lab.html")
	fresh.ID.Num = 3 // a different query, hop 0: a fresh root dispatch
	s.Enqueue(fresh)

	select {
	case sm := <-sheds:
		if sm.Site != site {
			t.Errorf("shed site = %q", sm.Site)
		}
		if sm.Clone.ID.Num != 3 {
			t.Errorf("shed clone = %+v", sm.Clone.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no SHED message arrived")
	}
	if met.Shed.Load() != 1 || met.QueueHighWater.Load() != 1 {
		t.Errorf("Shed = %d, QueueHighWater = %d", met.Shed.Load(), met.QueueHighWater.Load())
	}
	if met.QueueDepth.Load() != 2 {
		t.Errorf("QueueDepth = %d, want the two admitted clones", met.QueueDepth.Load())
	}
	if st := s.SchedStats(); st.Depth != 2 || st.Shed != 1 {
		t.Errorf("sched stats = %+v", st)
	}
}

// TestServerStopWithBlockedWorker is the shutdown regression test: Stop
// must unblock workers waiting in the scheduler's Pop and discard
// whatever is still queued, without deadlocking.
func TestServerStopWithBlockedWorker(t *testing.T) {
	web := webgraph.Campus()
	nets := netsim.New(netsim.Options{})
	site := "www2.csa.iisc.ernet.in"
	for _, opts := range []Options{
		{Workers: 4},
		{Workers: 2, Sched: sched.Options{Fair: true, HighWater: 8}},
	} {
		s := New(site, webserver.NewHost(site, web), nets, &Metrics{}, opts)
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		// Leave a backlog so Stop must discard, then stop while every
		// worker is either mid-clone or blocked on an empty queue.
		for i := 0; i < 6; i++ {
			c := campusStage2Clone("http://www2.csa.iisc.ernet.in/~gang/lab.html")
			c.ID.Num = i
			s.Enqueue(c)
		}
		done := make(chan struct{})
		go func() { s.Stop(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("Stop deadlocked with opts %+v", opts)
		}
	}
}

func TestBackoffDeterministic(t *testing.T) {
	pol := RetryPolicy{Attempts: 5, Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	seq := func(rng *lockedRand) []time.Duration {
		var out []time.Duration
		for n := 1; n <= 4; n++ {
			out = append(out, pol.backoff(n, rng))
		}
		return out
	}
	a := seq(newLockedRand(0, "a.example"))
	b := seq(newLockedRand(0, "a.example"))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same site, different jitter: %v vs %v", a, b)
		}
	}
	c := seq(newLockedRand(0, "b.example"))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Errorf("different sites drew identical jitter schedules: %v", a)
	}
	d := seq(newLockedRand(42, "a.example"))
	e := seq(newLockedRand(42, "z.example"))
	for i := range d {
		if d[i] != e[i] {
			t.Fatalf("explicit seed not site-independent: %v vs %v", d, e)
		}
	}
}
