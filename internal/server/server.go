// Package server implements the WEBDIS query server: the daemon process
// that runs at every participating web site, receives web-query clones,
// evaluates node-queries against locally hosted documents, streams results
// and CHT updates straight back to the user-site, and forwards the
// remaining query along matching hyperlinks (paper Sections 2.4–2.8 and
// the algorithms of Figures 3 and 4).
//
// Its components mirror the paper's Section 4.4: a Query Receiver
// listening on the site's well-known endpoint, a Query Processor draining
// a queue of pending clones sequentially, Query and Result Dispatchers,
// and the Database Constructor (in package nodeproc). The Node-query Log
// Table (Section 3.1.1) suppresses duplicate recomputation.
//
// One deliberate refinement over the paper's prose: when the log table
// purges a duplicate arrival, the server still dispatches a CHT update
// retiring the dropped entry. The user-site tracks CHT entries as a
// counting multiset, so "every forwarded clone produces exactly one
// report" becomes the completion invariant; combined with the paper's
// CHT-before-forward ordering this makes completion detection sound even
// when clones race along different paths (see DESIGN.md).
package server

import (
	"container/list"
	"errors"
	"net"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"webdis/internal/cluster"
	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/nodeproc"
	"webdis/internal/pre"
	"webdis/internal/relmodel"
	"webdis/internal/sched"
	"webdis/internal/store"
	"webdis/internal/trace"
	"webdis/internal/webgraph"
	"webdis/internal/webserver"
	"webdis/internal/wire"
)

// Suffix appended to a site name to form its query-server endpoint — the
// analog of the paper's "common pre-specified port number at all sites".
const Suffix = "/query"

// Endpoint returns the transport endpoint name of site's query server.
func Endpoint(site string) string { return site + Suffix }

// DocSource supplies the raw content of locally hosted documents.
// webserver.Host implements it.
type DocSource interface {
	Get(url string) ([]byte, error)
}

// Event is one trace record of the server's processing, consumed by the
// figure-reproduction experiments and by verbose tools.
type Event struct {
	Site   string
	Node   string
	State  wire.State
	Action string // eval, route, dead-end, drop, rewrite, terminated, missing
	Detail string
}

// Tracer receives trace events. It must be safe for concurrent use.
type Tracer func(Event)

// Options configure a Server. The zero value is the paper's design:
// subsumption dedup, per-site clone batching, no hop bound, no periodic
// purge.
type Options struct {
	// Dedup selects the Node-query Log Table mode. The zero value
	// (DedupOff == 0 would be wrong as a default) — NewServer treats a
	// zero Options.Dedup as DedupSubsume unless DedupSet is true.
	Dedup    nodeproc.DedupMode
	DedupSet bool // set true to honor Dedup == DedupOff
	// NoBatch disables per-site clone batching (Section 3.2, item 4):
	// every destination node gets its own clone message.
	NoBatch bool
	// MaxHops, when positive, stops forwarding clones that have already
	// traversed that many links. It is a safety bound for ablation runs
	// with dedup off on cyclic webs; the paper's design does not need it.
	MaxHops int
	// StrictDeadEnds applies the literal Figure-4 pseudocode: a failed
	// node-query forwards nothing at all, not even the continuation of
	// the current PRE. The default (false) follows the paper's worked
	// examples, which cancel only the advance to the next node-query —
	// see the nodeproc.StepResult.DeadEnd documentation.
	StrictDeadEnds bool
	// Hybrid enables the paper's Section 7.1 migration path: a clone that
	// cannot be forwarded (its destination site runs no query server) is
	// bounced back to the user-site, whose fallback processor evaluates
	// it centrally. Without Hybrid such clones are simply retired.
	Hybrid bool
	// Workers is the number of Query Processor goroutines draining the
	// clone queue. The paper's processor is a single thread that
	// "sequentially processes the queue of pending web-queries"; that is
	// the default (0 or 1). Higher values are an ablation of that design
	// choice — every shared structure (log table, metrics, transport) is
	// already concurrency-safe.
	Workers int
	// CacheDBs retains each node's constructed virtual-relation database
	// instead of purging it after the node-query (the paper's footnote 3:
	// a site expecting repeat visits "can choose to retain the associated
	// database so that the construction cost does not have to be paid
	// repeatedly"). The default follows the paper's main design: build
	// per evaluation, purge immediately.
	CacheDBs bool
	// DBCacheEntries bounds the CacheDBs retention to an LRU of this
	// many node databases; evictions count into Metrics.DBCacheEvicted.
	// 0 is the seed behaviour: the cache grows without limit. Ignored
	// without CacheDBs.
	DBCacheEntries int
	// Store plugs in the persistent page-based site store (package
	// store): the server opens — or on first start builds — its site's
	// heap file under Store.Dir and serves local databases from slotted
	// pages through a bounded buffer pool, with contains-predicates
	// answered by the persisted text index. The zero value keeps the
	// in-RAM Database Constructor.
	Store StoreOptions
	// LogPurgeAge and LogPurgeEvery enable the paper's periodic log-table
	// purge when both are positive.
	LogPurgeAge   time.Duration
	LogPurgeEvery time.Duration
	// NoConnPool disables the per-peer connection pool: every remote send
	// dials, sends and closes, the seed behaviour. The pool only skips
	// handshakes — failure semantics are unchanged, because reuse is
	// health-checked against the transport's failure injection and a send
	// that fails on a reused connection for any reason other than an
	// injected fault is transparently redone over a fresh dial.
	NoConnPool bool
	// SerialFanout ships a processed clone's remote forwards one at a
	// time (the seed behaviour) instead of through the bounded fan-out
	// worker group.
	SerialFanout bool
	// FanoutWorkers bounds the per-clone forward worker group (default 8,
	// ignored under SerialFanout).
	FanoutWorkers int
	// NoParseCache disables the shared PRE parse cache: every arrival
	// re-parses its stage PREs and remaining PRE, the seed behaviour.
	NoParseCache bool
	// NoSingleflight disables coalescing of concurrent database builds:
	// N workers hitting one node all run the Database Constructor, the
	// seed behaviour.
	NoSingleflight bool
	// Retry bounds the resilience loop around every remote send (clone
	// forwards, result dispatches, bounces): per-attempt timeout and
	// bounded exponential backoff with jitter. The zero value sends once
	// with no timeout — the paper's failure-is-terminal behaviour.
	Retry RetryPolicy
	// ResultBatch coalesces result reports into size/age-bounded frames
	// before dispatch to the user-site (see BatchOptions). The zero value
	// is the seed behaviour: one ResultMsg per processed clone message.
	ResultBatch BatchOptions
	// Sched configures the Query Processor's clone scheduler (package
	// sched): weighted fair queueing across concurrent queries and
	// watermark admission control with typed SHED refusals. The zero
	// value is the seed behaviour — one unbounded FIFO, nothing shed.
	Sched sched.Options
	// Seed seeds the server's private randomness (retry-backoff jitter).
	// Zero derives a stable per-site seed from the site name, so runs
	// are reproducible either way; set it only to decorrelate sites
	// differently across repetitions.
	Seed int64
	// Trace, when set, receives processing events.
	Trace Tracer
	// Journal, when set, receives causal trace events (package trace):
	// one arrival per clone message, per-node processing events, and one
	// forward/bounce/terminate fate per outgoing clone. Span ids are
	// assigned to outgoing clones whenever the journal is set or the
	// arriving clone already carries one, so traced context propagates
	// across sites that journal and sites that merely relay.
	Journal *trace.Journal
	// Cluster, when set, is the deployment's shared replica membership
	// table: the server is replica number Replica of its site, listens
	// on the replica endpoint, resolves every clone forward through
	// Pick, and — when the retry policy exhausts against one replica —
	// re-resolves and replays against the next live one instead of
	// falling straight into the bounce path.
	Cluster *cluster.Membership
	// Replica is this server's index among its site's replicas (0 is
	// the classic endpoint; only meaningful with Cluster set).
	Replica int
	// Planner configures the cost-based distributed planner: plan-
	// fragment pushdown, statistics piggybacking, and the per-edge
	// ship-query-vs-ship-data decision. Zero disables all three.
	Planner PlannerOptions
	// WireV1 pins every framed session this server opens or accepts to
	// wire version 1 (persistent framed gob) instead of negotiating the
	// v2 binary codec — the compatibility profile for mixed-version
	// deployments and the baseline arm of codec benchmarks.
	WireV1 bool
	// WireOracle arms per-frame byte measurement on outgoing v2
	// sessions: every frame re-encodes through gob to book the saving
	// into Metrics.BytesV2Saved. Strictly a measurement mode (the gob
	// re-encode is not free); used by the campus experiment tables.
	WireOracle bool
}

func (o Options) dedup() nodeproc.DedupMode {
	if !o.DedupSet && o.Dedup == nodeproc.DedupOff {
		return nodeproc.DedupSubsume
	}
	return o.Dedup
}

// Server is one site's WEBDIS query server.
type Server struct {
	site string
	// self is the endpoint this server listens on and stamps as the
	// origin of the instance serials it mints: the classic
	// "<site>/query" for replica 0, "<site>/query@i" above. Distinct
	// origins keep (Origin, Seq) serials unique across a site's
	// replicas.
	self string
	// inc is this replica's membership incarnation, stamped on result
	// frames so the user-site can reject replies that predate a
	// restart; 0 when unclustered.
	inc  int64
	docs DocSource
	tr   netsim.Transport
	met  *Metrics
	opts Options
	log  *nodeproc.LogTable
	// unsub detaches the pool-eviction health subscription on Stop.
	unsub func()

	queue *sched.Queue[*wire.CloneMsg]
	// rng is the server's private randomness (retry-backoff jitter),
	// seeded from Options.Seed so chaos runs replay deterministically.
	rng *lockedRand
	// seq numbers the CHT entries this server creates, making each
	// forwarded clone instance uniquely identifiable (see wire.DestNode).
	seq atomic.Int64

	// dbCache holds one entry per node whose database is built or being
	// built: entries coalesce concurrent builds (singleflight) and, when
	// opts.CacheDBs is set, persist the finished database for repeat
	// visits. Read-mostly once warm, hence the RWMutex.
	dbMu    sync.RWMutex
	dbCache map[string]*dbEntry
	// dbLRU/dbPos bound the CacheDBs retention to Options.DBCacheEntries
	// databases (nil = unbounded, the seed behaviour). Both are guarded
	// by dbMu; only completed, retained builds appear in them, so an
	// in-flight singleflight entry can never be evicted from under its
	// waiters.
	dbLRU *list.List
	dbPos map[string]*list.Element

	// store is the persistent page-based site store, opened (or first
	// built) at Start when opts.Store is enabled; nil otherwise.
	store *store.Store

	// pool reuses connections to frequently dialed peers (other sites'
	// query servers, the user-site's result collectors); nil under
	// opts.NoConnPool.
	pool *netsim.Pool

	// batcher coalesces result reports per query when
	// opts.ResultBatch.Enabled(); nil otherwise.
	batcher *resultBatcher

	// peerStats holds the per-site statistics learned from piggybacked
	// clone hints and from ship-data fetches; own-site statistics come
	// straight from the metrics counters. fetch downloads foreign
	// documents for ship-data edges; both only live under
	// opts.Planner.Enabled.
	statMu    sync.Mutex
	peerStats map[string]wire.SiteStat
	fetch     *webserver.Fetcher

	// stoppedQ records queries whose user-site broadcast an active
	// StopMsg (Budget.FirstN satisfied, or the submitting context was
	// cancelled); their queued clones terminate with the typed STOPPED
	// retirement instead of being evaluated.
	stopMu   sync.Mutex
	stoppedQ map[string]time.Time

	// watches is the standing continuous-query registry: watch QueryID
	// string → registration. A registered watch receives one DeltaMsg
	// (with this site's per-watch monotonic Seq) for every local batch of
	// web mutations, until the user-site cancels it.
	watchMu sync.Mutex
	watches map[string]*watchReg

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]bool // accepted connections, open for the sender's pool
	stop  chan struct{}
	wg    sync.WaitGroup
}

// New returns a server for site, reading documents from docs and speaking
// over tr. met may be shared across servers; it must not be nil.
func New(site string, docs DocSource, tr netsim.Transport, met *Metrics, opts Options) *Server {
	s := &Server{
		site:     site,
		self:     cluster.ReplicaEndpoint(site, opts.Replica),
		docs:     docs,
		tr:       tr,
		met:      met,
		opts:     opts,
		log:      nodeproc.NewLogTable(opts.dedup()),
		rng:      newLockedRand(opts.Seed, seedName(site, opts.Replica)),
		dbCache:  make(map[string]*dbEntry),
		stoppedQ: make(map[string]time.Time),
	}
	if opts.Planner.Enabled {
		s.peerStats = make(map[string]wire.SiteStat)
		s.fetch = webserver.NewFetcher(tr, s.self)
	}
	if opts.CacheDBs && opts.DBCacheEntries > 0 {
		s.dbLRU = list.New()
		s.dbPos = make(map[string]*list.Element)
	}
	if opts.ResultBatch.Enabled() {
		s.batcher = newResultBatcher(s, opts.ResultBatch)
	}
	// The scheduler's activation hook feeds the QueueHighWater counter;
	// any hook the caller installed still runs.
	schedOpts := opts.Sched
	userHook := schedOpts.OnActivate
	schedOpts.OnActivate = func() {
		met.QueueHighWater.Add(1)
		if userHook != nil {
			userHook()
		}
	}
	s.queue = sched.New[*wire.CloneMsg](schedOpts)
	if !opts.NoConnPool {
		s.pool = netsim.NewPool(tr, s.self, netsim.PoolOptions{
			// Pooled connections carry many frames, so attach a persistent
			// wire codec: type descriptors (v1) or the intern table (v2)
			// then amortize across a connection's lifetime.
			Wrap: func(c net.Conn) net.Conn { return wire.NewFramedOpts(c, s.frameOpts()) },
		})
	}
	return s
}

// frameOpts derives the wire-session options this server attaches to
// every connection it opens or accepts: version pinning under WireV1 and
// the per-frame gob-size oracle under WireOracle.
func (s *Server) frameOpts() wire.FramedOptions {
	fo := wire.FramedOptions{}
	if s.opts.WireV1 {
		fo.Offer, fo.Accept = 1, 1
	}
	if s.opts.WireOracle {
		fo.MeasureGob = true
		fo.OnFrame = func(kind string, wireBytes, gobBytes int) {
			if gobBytes > 0 {
				s.met.BytesV2Saved.Add(int64(gobBytes - wireBytes))
			}
		}
	}
	return fo
}

// seedName derives the per-server jitter-seed name: the bare site for
// replica 0 (the seed's schedule, unchanged) and the replica endpoint
// above, so two replicas of one site never share a jitter schedule.
func seedName(site string, replica int) string {
	if replica <= 0 {
		return site
	}
	return cluster.ReplicaEndpoint(site, replica)
}

// Site returns the site this server runs at.
func (s *Server) Site() string { return s.site }

// Self returns the endpoint this server listens on (the site's classic
// query endpoint, or its replica endpoint when Options.Replica > 0).
func (s *Server) Self() string { return s.self }

// LogTable exposes the Node-query Log Table (for tests and experiments).
func (s *Server) LogTable() *nodeproc.LogTable { return s.log }

// Start begins accepting and processing clones. It returns immediately.
func (s *Server) Start() error {
	if s.opts.Store.Enabled() && s.store == nil {
		// Open (or first build) the persistent site store before taking
		// any traffic, so every local Database Constructor run can serve
		// from pages instead of parsing.
		if err := s.openStore(); err != nil {
			return err
		}
	}
	ln, err := s.tr.Listen(s.self)
	if err != nil {
		return err
	}
	if cl := s.opts.Cluster; cl != nil {
		// Register (re)announces this replica and bumps its incarnation,
		// stamped on every result frame; set before any worker starts so
		// no frame leaves with the previous incarnation.
		s.inc = cl.Register(s.self)
		if s.pool != nil {
			// Evict idle connections to a replica the moment the health
			// layer declares it down, instead of waiting for the next send
			// on a dead socket to fail.
			s.unsub = cl.Subscribe(func(ep string, st cluster.State) {
				if st == cluster.Down {
					s.pool.EvictPeer(ep)
				}
			})
		}
	}
	s.mu.Lock()
	s.ln = ln
	s.conns = make(map[net.Conn]bool)
	s.stop = make(chan struct{})
	stop := s.stop
	s.mu.Unlock()

	// Query Receiver. Accepted connections are tracked so Stop can close
	// them: senders pool their connections across messages now, so a
	// receive loop no longer ends with each message.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.conns == nil {
				s.mu.Unlock()
				conn.Close()
				continue
			}
			s.conns[conn] = true
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer func() {
					s.mu.Lock()
					delete(s.conns, conn)
					s.mu.Unlock()
				}()
				// The sender may pool this connection and stream many
				// frames over it, so decode with a persistent session.
				s.receive(wire.NewFramedOpts(conn, s.frameOpts()))
			}()
		}
	}()

	// Query Processor(s). The paper's design is a single thread draining
	// the queue sequentially; Options.Workers > 1 is the concurrency
	// ablation.
	workers := s.opts.Workers
	if workers < 1 {
		workers = 1
	}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				clone, ok := s.queue.Pop()
				if !ok {
					return
				}
				s.met.QueueDepth.Add(-1)
				s.handle(clone)
				// Yield between clone batches. A backlogged processor is
				// CPU-bound; without this, on a small GOMAXPROCS every
				// goroutine the batch made runnable (result collectors,
				// waiting clients) sits out a full preemption slice
				// before it runs, which costs every in-flight query tens
				// of milliseconds of completion latency per batch.
				runtime.Gosched()
			}
		}()
	}

	if s.batcher != nil {
		s.batcher.start()
	}

	if s.opts.LogPurgeAge > 0 && s.opts.LogPurgeEvery > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTicker(s.opts.LogPurgeEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.log.Purge(s.opts.LogPurgeAge)
				case <-stop:
					return
				}
			}
		}()
	}
	return nil
}

// Stop shuts the server down, discarding queued clones.
func (s *Server) Stop() {
	if s.unsub != nil {
		s.unsub()
		s.unsub = nil
	}
	s.mu.Lock()
	ln := s.ln
	s.ln = nil
	conns := s.conns
	s.conns = nil
	if s.stop != nil {
		close(s.stop)
		s.stop = nil
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Close accepted connections so receive loops exit: their senders
	// hold them open in pools between messages.
	for conn := range conns {
		conn.Close()
	}
	s.queue.Close()
	s.wg.Wait()
	// Flush after the workers quiesce (no more reports are produced) and
	// before the pool closes (the flush still needs its connections).
	if s.batcher != nil {
		s.batcher.close()
	}
	if s.pool != nil {
		s.pool.Close()
	}
	if s.store != nil {
		s.store.Close()
		s.store = nil
	}
}

// Enqueue hands a clone to the Query Processor directly, bypassing the
// network: used for same-site forwarding (a clone is only "explicitly
// forwarded" when the next node lives on a different site) and by tests.
func (s *Server) Enqueue(c *wire.CloneMsg) { s.admit(c) }

// SchedStats returns the scheduler queue's counters: current and peak
// depth, queued flows, sheds and watermark activations.
func (s *Server) SchedStats() sched.Stats { return s.queue.Stats() }

// admit offers one clone to the scheduler. Admission control may refuse
// it: a fresh root dispatch (hop 0, query not already queued here)
// arriving over the high watermark is returned to the user-site with a
// typed SHED message instead of being queued. Forwarded clones of
// admitted queries and local re-enqueues are never refused — in-flight
// work always completes, keeping CHT accounting sound under load.
func (s *Server) admit(c *wire.CloneMsg) {
	switch s.queue.Push(c.ID.String(), c.Budget.Weight, c.Hops == 0, c) {
	case sched.Admitted:
		s.met.QueueDepth.Add(1)
	case sched.Shed:
		s.shedClone(c)
	case sched.Closed:
		// Server stopping: the clone is discarded (seed semantics); the
		// user-site's reaper retires whatever entries it had announced.
	}
}

// shedClone returns a refused clone to the user-site with the typed
// SHED message, so its CHT entries retire and the caller sees the
// refusal (Query.Shed) rather than a hang. Best-effort: if even the
// user-site is unreachable, the reaper owns the stranded entries.
func (s *Server) shedClone(c *wire.CloneMsg) {
	s.met.Shed.Add(1)
	s.trace("", c.State(), "shed", "over high watermark")
	s.jot(c, trace.Shed, "", c.State(), "over high watermark")
	s.send(c.ID.Site, &wire.ShedMsg{Clone: c, Site: s.site})
}

// receive drains clone and stop messages from one connection.
func (s *Server) receive(conn net.Conn) {
	defer conn.Close()
	for {
		msg, err := wire.Receive(conn)
		if err != nil {
			return
		}
		switch m := msg.(type) {
		case *wire.CloneMsg:
			s.admit(m)
		case *wire.StopMsg:
			s.markStopped(m.ID.String())
		case *wire.TuneMsg:
			// Adaptive-batching feedback from the query's collector; purely
			// advisory, and a no-op when batching is off.
			if s.batcher != nil {
				s.batcher.tune(m)
				s.met.BatchTunes.Add(1)
			}
		case *wire.WatchMsg:
			s.handleWatch(m)
		default:
			return
		}
	}
}

// watchReg is one standing watch: the collector's identity plus the
// per-watch monotonic delta sequence this site stamps on notifications.
type watchReg struct {
	id  wire.QueryID
	seq int64
}

// handleWatch registers or cancels a standing watch. Registration is
// idempotent (a re-register keeps the existing sequence, so a collector
// that retries never sees Seq restart).
func (s *Server) handleWatch(m *wire.WatchMsg) {
	if !m.Applies() {
		return
	}
	key := m.ID.String()
	s.watchMu.Lock()
	defer s.watchMu.Unlock()
	if m.Cancel {
		delete(s.watches, key)
		return
	}
	if s.watches == nil {
		s.watches = make(map[string]*watchReg)
	}
	if _, ok := s.watches[key]; !ok {
		s.watches[key] = &watchReg{id: m.ID}
		s.met.WatchesRegistered.Add(1)
	}
}

// InvalidateDocs is the site-local change-detection hook: after the web
// mutates, the deployment reports which of this site's documents changed
// content only (edited) and which changed link structure or vanished
// (rewired). Invalidation is entry-level — the touched retained
// databases are evicted, the touched store documents and their index
// postings marked stale — never a cache flush or a store rebuild. Every
// standing watch is then sent one DeltaMsg carrying the split.
func (s *Server) InvalidateDocs(edited, rewired []string) {
	touch := func(urls []string, detail string) {
		for _, u := range urls {
			s.dbMu.Lock()
			if _, ok := s.dbCache[u]; ok {
				delete(s.dbCache, u)
				if el, lok := s.dbPos[u]; lok {
					s.dbLRU.Remove(el)
					delete(s.dbPos, u)
				}
			}
			s.dbMu.Unlock()
			if s.store != nil {
				s.store.Invalidate(u)
			}
			s.met.DocsInvalidated.Add(1)
			if s.opts.Journal != nil {
				s.opts.Journal.Append(trace.Event{Kind: trace.Invalidate, Node: u, Detail: detail})
			}
		}
	}
	touch(edited, "edited")
	touch(rewired, "rewired")

	s.watchMu.Lock()
	regs := make([]*wire.DeltaMsg, 0, len(s.watches))
	for _, w := range s.watches {
		w.seq++
		regs = append(regs, &wire.DeltaMsg{
			Version: wire.WatchVersion, ID: w.id, Site: s.site, Seq: w.seq,
			Edited: edited, Rewired: rewired,
		})
	}
	s.watchMu.Unlock()
	for _, msg := range regs {
		if s.send(msg.ID.Site, msg) == nil {
			s.met.DeltasSent.Add(1)
			if s.opts.Journal != nil {
				s.opts.Journal.Append(trace.Event{Query: msg.ID.String(), Kind: trace.Delta, Detail: msg.ID.Site})
			}
		}
	}
}

// stopTTL bounds how long a stopped query stays in the registry. Clones
// of a stopped query stop arriving once the stop has propagated (every
// live site retires rather than forwards), so the registry only needs to
// outlive the query's in-flight tail.
const stopTTL = 2 * time.Minute

// markStopped records an active-termination broadcast for one query.
func (s *Server) markStopped(id string) {
	now := time.Now()
	s.stopMu.Lock()
	if len(s.stoppedQ) > 128 {
		for k, at := range s.stoppedQ {
			if now.Sub(at) >= stopTTL {
				delete(s.stoppedQ, k)
			}
		}
	}
	s.stoppedQ[id] = now
	s.stopMu.Unlock()
}

// isStopped reports whether the query was actively stopped (and the stop
// is still fresh).
func (s *Server) isStopped(id string) bool {
	s.stopMu.Lock()
	at, ok := s.stoppedQ[id]
	if ok && time.Since(at) >= stopTTL {
		delete(s.stoppedQ, id)
		ok = false
	}
	s.stopMu.Unlock()
	return ok
}

func (s *Server) trace(node string, st wire.State, action, detail string) {
	if s.opts.Trace != nil {
		s.opts.Trace(Event{Site: s.site, Node: node, State: st, Action: action, Detail: detail})
	}
}

// jot appends one causal trace event for clone c to the site journal.
func (s *Server) jot(c *wire.CloneMsg, kind trace.Kind, node string, st wire.State, detail string) {
	if s.opts.Journal == nil {
		return
	}
	s.opts.Journal.Append(trace.Event{
		Query: c.ID.String(), Span: c.Span, Parent: c.Parent,
		Kind: kind, Node: node, State: st.String(), Hop: c.Hops, Detail: detail,
	})
}

// traced reports whether span context should ride on clones spawned from
// c: either this server journals, or the arriving clone already carries
// a span (an untraced relay must not break the causal chain).
func (s *Server) traced(c *wire.CloneMsg) bool {
	return s.opts.Journal != nil || !c.Span.IsZero()
}

// outClone accumulates one outgoing clone during the processing of a
// received message: all destination nodes at one site that share one
// query state (Section 3.2, item 4).
type outClone struct {
	site  string
	msg   *wire.CloneMsg
	dests map[string]bool
}

// budgetState is the mutable remainder of a clone's budget while its
// message is processed: the clone-spawn and result-row quotas, both in
// the positive-remaining / 0-unlimited / negative-exhausted sentinel
// convention of wire.Budget.
type budgetState struct {
	clones int
	rows   int
}

// spendOne decrements a sentinel quota in place (no-op when unlimited;
// 1 spends to the -1 exhaustion sentinel, never to the unlimited 0).
func spendOne(q *int) {
	switch {
	case *q == 1:
		*q = -1
	case *q > 1:
		*q--
	}
}

// handle processes one received clone message: the process_query
// algorithm of Figure 3.
func (s *Server) handle(c *wire.CloneMsg) {
	s.jot(c, trace.Arrive, "", c.State(), strconv.Itoa(len(c.Dest))+" dests")
	if c.Budget.ExpiredAt(time.Now().UnixNano()) {
		// The query's deadline passed in transit: the typed EXPIRED
		// terminate. No evaluation, no children — the entries retire so
		// the CHT still balances and the trace fate is exact.
		s.expire(c, "deadline passed")
		return
	}
	if s.isStopped(c.ID.String()) {
		// The user-site broadcast an active stop (Budget.FirstN satisfied,
		// or the query was cancelled): the typed STOPPED terminate. Like
		// expiry, no evaluation and no children — the entries retire so
		// the CHT drains and the trace books the span as stopped.
		s.stopClone(c)
		return
	}
	if s.opts.Planner.Enabled {
		s.absorbHints(c.Hints)
	}
	stages, arrRem, err := s.parseClone(c)
	if err != nil {
		// A malformed clone cannot be processed, but its CHT entries must
		// still be retired or the user-site would wait forever.
		s.retireAll(c, retirePlain)
		return
	}

	outs := make(map[string]*outClone)
	var order []string // deterministic forwarding order
	var updates []wire.CHTUpdate
	var tables []wire.NodeTable
	bs := &budgetState{clones: c.Budget.Clones, rows: c.Budget.Rows}

	seen := make(map[string]bool)
	for _, dest := range c.Dest {
		if seen[dest.URL] {
			continue
		}
		seen[dest.URL] = true
		upd, tbls := s.processNode(dest, arrRem, stages, c, outs, &order, bs)
		updates = append(updates, upd)
		tables = append(tables, tbls...)
	}

	// Second stop check: a StopMsg lands on the receive path, not the
	// worker queue, so it often arrives while the frontier clone is mid
	// evaluation (site databases take milliseconds to build; the stop
	// round-trip takes microseconds). Too late to skip the work, still
	// early enough to cut the traversal — drop the children before any
	// of them is announced to the CHT and retire as stopped.
	if s.isStopped(c.ID.String()) {
		s.stopClone(c)
		return
	}

	// Children inherit the budget with this hop spent: one hop off the
	// hop quota, the row quota as it now stands, and the remaining
	// clone-spawn quota divided among them.
	if !c.Budget.IsZero() {
		childB := c.Budget.Spend()
		childB.Rows = bs.rows
		for i, key := range order {
			b := childB
			b.Clones = divideQuota(bs.clones, len(order), i)
			outs[key].msg.Budget = b
		}
	}

	// Children inherit the pushed-down plan fragment unchanged — even a
	// planner-off relay must not strip it, or downstream planner-on
	// sites would lose the pushdown. Statistics hints ride only when the
	// planner runs here, keeping the classic wire profile otherwise.
	if c.Frag != nil {
		for _, key := range order {
			outs[key].msg.Frag = c.Frag
		}
	}
	if s.opts.Planner.Enabled && len(order) > 0 {
		hints := s.hintsFor()
		for _, key := range order {
			outs[key].msg.Hints = hints
		}
	}

	// Span links of the clones about to be forwarded, echoed on the
	// result message so the user-site can stitch the causal tree.
	var spawned []wire.SpanLink
	if s.traced(c) {
		for _, key := range order {
			spawned = append(spawned, wire.SpanLink{Span: outs[key].msg.Span, Site: outs[key].site})
		}
	}

	// Dispatch results and CHT updates to the user-site first; only after
	// a successful dispatch are clones forwarded (Figure 3, lines 17–20).
	// A failed dispatch is the passive termination signal: the query is
	// purged locally.
	if !s.dispatchResults(c, updates, tables, spawned) {
		s.met.Terminated.Add(1)
		s.trace("", c.State(), "terminated", "result dispatch failed")
		s.jot(c, trace.Terminate, "", c.State(), "result dispatch failed")
		return
	}
	// The Result jot lives here, not in dispatchResults: retireAll also
	// dispatches (bookkeeping for clones that failed), and those reports
	// must not overwrite the span's forward-failed fate.
	s.jot(c, trace.Result, "", c.State(),
		strconv.Itoa(len(updates))+" updates, "+strconv.Itoa(len(tables))+" tables")
	s.forwardAll(outs, order)
}

// expire terminates a clone that exceeded its wire-carried budget: its
// CHT entries retire with the typed EXPIRED report so the user-site
// books the span's fate as expired, not processed — the budget analog
// of the paper's passive termination, but accounted, not silent.
func (s *Server) expire(c *wire.CloneMsg, reason string) {
	s.met.BudgetExpired.Add(1)
	s.trace("", c.State(), "expired", reason)
	s.jot(c, trace.Expire, "", c.State(), reason)
	s.retireAll(c, retireExpired)
}

// stopClone terminates a clone of an actively stopped query: the typed
// STOPPED retirement, the active-cancel analog of expire.
func (s *Server) stopClone(c *wire.CloneMsg) {
	s.met.Stopped.Add(1)
	s.trace("", c.State(), "stopped", "active stop")
	s.jot(c, trace.Stop, "", c.State(), "active stop")
	s.retireAll(c, retireStopped)
}

// divideQuota splits a remaining clone-spawn quota among n children,
// giving child i its share: as even as possible, remainder to the first
// children, and a zero share landing on the -1 exhaustion sentinel
// (never on the unlimited 0).
func divideQuota(q, n, i int) int {
	if q == 0 || n == 0 {
		return q
	}
	if q < 0 {
		return -1
	}
	share := q / n
	if i < q%n {
		share++
	}
	if share == 0 {
		share = -1
	}
	return share
}

// errNoStages rejects clones that carry no node-queries at all.
var errNoStages = errors.New("server: clone carries no stages")

// parseClone recovers the clone's parsed stages and arrival PRE. By
// default both go through the shared parse cache, so a steady-state
// arrival — including one about to be dropped as a duplicate — parses
// nothing before its log-table check; Options.NoParseCache restores the
// parse-per-arrival seed behaviour.
func (s *Server) parseClone(c *wire.CloneMsg) ([]disql.Stage, pre.Expr, error) {
	if s.opts.NoParseCache {
		stages, err := nodeproc.ParseStages(c.Stages)
		if err != nil {
			return nil, nil, err
		}
		arrRem, err := pre.Parse(c.Rem)
		if err != nil {
			return nil, nil, err
		}
		if len(stages) == 0 {
			return nil, nil, errNoStages
		}
		return stages, arrRem, nil
	}
	stages, hits, err := nodeproc.ParseStagesCached(c.Stages)
	s.met.ParseCacheHits.Add(int64(hits))
	s.met.ParseCacheMisses.Add(int64(len(c.Stages) - hits))
	if err != nil {
		return nil, nil, err
	}
	arrRem, hit, err := pre.ParseCached(c.Rem)
	if hit {
		s.met.ParseCacheHits.Add(1)
	} else {
		s.met.ParseCacheMisses.Add(1)
	}
	if err != nil {
		return nil, nil, err
	}
	if len(stages) == 0 {
		return nil, nil, errNoStages
	}
	return stages, arrRem, nil
}

// processNode runs the process() algorithm of Figure 4 for one
// destination node, accumulating outgoing clones in outs. It returns the
// node's CHT update and any result tables.
func (s *Server) processNode(dest wire.DestNode, arrRem pre.Expr, stages []disql.Stage, c *wire.CloneMsg, outs map[string]*outClone, order *[]string, bs *budgetState) (wire.CHTUpdate, []wire.NodeTable) {
	node := dest.URL
	arrival := wire.CHTEntry{
		Node:   node,
		State:  wire.State{NumQ: len(stages), Rem: arrRem.String()},
		Origin: dest.Origin,
		Seq:    dest.Seq,
	}
	update := wire.CHTUpdate{Processed: arrival}

	rem := arrRem
	envKey := wire.EnvKey(c.Env)
	verdict := s.log.Check(node, c.ID, len(stages), rem, envKey)
	switch verdict.Action {
	case nodeproc.Drop:
		s.met.DupDropped.Add(1)
		s.trace(node, arrival.State, "drop", "duplicate arrival")
		s.jot(c, trace.Drop, node, arrival.State, "duplicate arrival")
		return update, nil
	case nodeproc.Rewrite:
		s.met.DupRewritten.Add(1)
		s.trace(node, arrival.State, "rewrite", rem.String()+" -> "+verdict.Rem.String())
		s.jot(c, trace.Rewrite, node, arrival.State, rem.String()+" -> "+verdict.Rem.String())
		rem = verdict.Rem
	}

	db, err := s.database(node)
	if err != nil {
		s.met.DocErrors.Add(1)
		s.trace(node, arrival.State, "missing", err.Error())
		s.jot(c, trace.Missing, node, arrival.State, err.Error())
		return update, nil
	}

	var tables []wire.NodeTable

	// Work through the arrival state and any stage advances at this same
	// node (a nullable next PRE means the next node-query also fires
	// here). Virtual arrivals go through the log table like real ones.
	type item struct {
		rem    pre.Expr
		stages []disql.Stage
		base   int
		env    map[string]string
	}
	work := []item{{rem, stages, c.Base, c.Env}}
	first := true
	for len(work) > 0 {
		it := work[0]
		work = work[1:]
		st := wire.State{NumQ: len(it.stages), Rem: it.rem.String()}
		isVirtual := !first
		first = false
		if isVirtual {
			v := s.log.Check(node, c.ID, len(it.stages), it.rem, wire.EnvKey(it.env))
			switch v.Action {
			case nodeproc.Drop:
				s.met.DupDropped.Add(1)
				s.trace(node, st, "drop", "virtual duplicate")
				s.jot(c, trace.Drop, node, st, "virtual duplicate")
				continue
			case nodeproc.Rewrite:
				s.met.DupRewritten.Add(1)
				it.rem = v.Rem
			}
		}

		res, err := nodeproc.Step(db, node, it.rem, it.stages[0], len(it.stages) > 1, it.env)
		if err != nil {
			s.trace(node, st, "error", err.Error())
			continue
		}
		s.met.RowsScanned.Add(res.Scanned)
		s.met.RowsEmitted.Add(res.Emitted)
		if res.Evaluated {
			s.met.Evaluations.Add(1)
			if res.DeadEnd {
				s.met.DeadEnds.Add(1)
				s.trace(node, st, "dead-end", "no answer")
				s.jot(c, trace.DeadEnd, node, st, "no answer")
				if s.opts.StrictDeadEnds {
					continue
				}
			} else {
				s.trace(node, st, "eval", "answered q"+strconv.Itoa(it.base+1))
				s.jot(c, trace.Evaluate, node, st, "answered q"+strconv.Itoa(it.base+1))
			}
			if len(it.stages[0].Query.Select) > 0 && !res.Table.Empty() {
				rows := res.Table.Rows
				if bs.rows != 0 {
					// Row quota: keep what remains, clip the rest.
					keep := 0
					if bs.rows > 0 {
						keep = bs.rows
					}
					if keep > len(rows) {
						keep = len(rows)
					}
					if clipped := len(rows) - keep; clipped > 0 {
						s.met.RowsClipped.Add(int64(clipped))
						s.trace(node, st, "clipped", strconv.Itoa(clipped)+" rows over quota")
					}
					rows = rows[:keep]
					for i := 0; i < keep; i++ {
						spendOne(&bs.rows)
					}
				}
				if len(rows) > 0 {
					nt := wire.NodeTable{
						Node: node, Stage: it.base,
						Cols: res.Table.Cols, Rows: rows,
						// Env identifies the contribution for the
						// user-site's aggregate fold; stamped always so
						// grouped queries work with the planner off too.
						Env: wire.EnvKey(it.env),
					}
					s.applyFrag(c, it.base, it.env, &nt)
					tables = append(tables, nt)
				}
			}
		} else {
			s.met.PureRoutes.Add(1)
			detail := ""
			if isVirtual {
				detail = "virtual" // a stage advance at this node, not a clone arrival
			}
			s.trace(node, st, "route", detail)
			s.jot(c, trace.Route, node, st, detail)
		}

		if clamped, detail, byBudget := s.hopClamped(c); clamped {
			if len(res.Continue) > 0 || res.Advance {
				if byBudget {
					s.met.BudgetExpired.Add(1)
				} else {
					s.met.HopsClamped.Add(1)
				}
				s.trace(node, st, "clamped", detail)
			}
			if res.Advance {
				// Stage advance happens at the same node (no hop), so it
				// is still allowed.
				work = append(work, item{it.stages[1].PRE, it.stages[1:], it.base + 1,
					nodeproc.ExtendEnv(it.env, it.stages[0], db)})
			}
			continue
		}
		for _, f := range res.Continue {
			update.Children = append(update.Children,
				s.addTargets(outs, order, f, it.stages, it.base, it.env, c, bs)...)
		}
		if res.Advance {
			work = append(work, item{it.stages[1].PRE, it.stages[1:], it.base + 1,
				nodeproc.ExtendEnv(it.env, it.stages[0], db)})
		}
	}
	return update, tables
}

// hopClamped reports whether clone c may not forward further: its
// wire-carried hop quota is spent, or the site's MaxHops safety bound
// is reached. byBudget distinguishes the two for metric attribution.
func (s *Server) hopClamped(c *wire.CloneMsg) (clamped bool, detail string, byBudget bool) {
	if c.Budget.Hops < 0 {
		return true, "hop quota spent", true
	}
	if s.opts.MaxHops > 0 && c.Hops >= s.opts.MaxHops {
		return true, "hop bound reached", false
	}
	return false, "", false
}

// addTargets merges one Forward into the per-(site, state) outgoing
// clones and returns the CHT child entries for the targets newly added.
// The budget's clone-spawn quota is charged per clone message created;
// once spent, further messages are suppressed before their entries are
// announced, so there is nothing to retire.
func (s *Server) addTargets(outs map[string]*outClone, order *[]string, f nodeproc.Forward, stages []disql.Stage, base int, env map[string]string, c *wire.CloneMsg, bs *budgetState) []wire.CHTEntry {
	state := wire.State{NumQ: len(stages), Rem: f.Rem.String()}
	envKey := wire.EnvKey(env)
	var children []wire.CHTEntry
	for i, tgt := range f.Targets {
		site := webgraph.Host(tgt.URL)
		key := site + "§" + state.Key() + "§" + envKey
		if s.opts.NoBatch {
			key = tgt.URL + "§" + state.Key() + "§" + envKey + "§" + strconv.Itoa(i)
		}
		oc := outs[key]
		if oc == nil {
			if bs.clones < 0 {
				s.met.BudgetExpired.Add(1)
				s.trace(tgt.URL, state, "clamped", "clone quota spent")
				continue
			}
			spendOne(&bs.clones)
			oc = &outClone{
				site: site,
				msg: &wire.CloneMsg{
					ID:     c.ID,
					Rem:    f.Rem.String(),
					Base:   base,
					Stages: nodeproc.EncodeStages(stages),
					Hops:   c.Hops + 1,
					Env:    env,
				},
				dests: make(map[string]bool),
			}
			if s.traced(c) {
				oc.msg.Span = wire.SpanID{Origin: s.self, Seq: s.seq.Add(1)}
				oc.msg.Parent = c.Span
			}
			outs[key] = oc
			*order = append(*order, key)
		}
		if oc.dests[tgt.URL] {
			continue // already forwarded in this batch with this state
		}
		oc.dests[tgt.URL] = true
		dest := wire.DestNode{URL: tgt.URL, Origin: s.self, Seq: s.seq.Add(1)}
		oc.msg.Dest = append(oc.msg.Dest, dest)
		children = append(children, wire.CHTEntry{
			Node: tgt.URL, State: state, Origin: dest.Origin, Seq: dest.Seq,
		})
	}
	s.met.TargetsAdded.Add(int64(len(children)))
	return children
}

// dbEntry is one node's database build. The worker that creates the
// entry runs the Database Constructor; everyone else waits on done, so
// concurrent requests for one node coalesce into a single build.
type dbEntry struct {
	done chan struct{}
	db   *relmodel.DB
	err  error
}

// closedChan is a pre-closed done channel for entries born finished.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// database returns the node's virtual relations: the paper's Database
// Constructor, building per evaluation and purging immediately, or — with
// Options.CacheDBs, the paper's footnote-3 variant — retaining the
// constructed database for repeat visits. Concurrent requests for one
// node coalesce into a single build (even without CacheDBs, where the
// entry lives only as long as the build); Options.NoSingleflight restores
// the seed's check-then-insert behaviour, whose race window let N workers
// build the same node N times.
func (s *Server) database(node string) (*relmodel.DB, error) {
	if s.opts.NoSingleflight {
		return s.databaseUncoalesced(node)
	}
	s.dbMu.RLock()
	e := s.dbCache[node]
	s.dbMu.RUnlock()
	if e == nil {
		s.dbMu.Lock()
		if e = s.dbCache[node]; e == nil {
			e = &dbEntry{done: make(chan struct{})}
			s.dbCache[node] = e
			s.dbMu.Unlock()
			e.db, e.err = s.buildDB(node)
			close(e.done)
			if e.err != nil || !s.opts.CacheDBs {
				// Errors are never cached, and without CacheDBs the entry
				// existed only to coalesce the in-flight build.
				s.dbMu.Lock()
				if s.dbCache[node] == e {
					delete(s.dbCache, node)
				}
				s.dbMu.Unlock()
			} else {
				s.noteDBUse(node)
			}
			return e.db, e.err
		}
		s.dbMu.Unlock()
	}
	select {
	case <-e.done:
		if s.opts.CacheDBs && e.err == nil {
			s.met.DBCacheHits.Add(1)
			s.noteDBUse(node)
		}
	default:
		s.met.DBBuildCoalesced.Add(1)
		<-e.done
	}
	return e.db, e.err
}

// databaseUncoalesced is the seed's check-then-insert path, kept as the
// NoSingleflight ablation.
func (s *Server) databaseUncoalesced(node string) (*relmodel.DB, error) {
	if s.opts.CacheDBs {
		s.dbMu.RLock()
		e := s.dbCache[node]
		s.dbMu.RUnlock()
		if e != nil {
			select {
			case <-e.done:
				if e.err == nil {
					s.met.DBCacheHits.Add(1)
					s.noteDBUse(node)
					return e.db, nil
				}
			default:
			}
		}
	}
	db, err := s.buildDB(node)
	if err != nil {
		return nil, err
	}
	if s.opts.CacheDBs {
		s.dbMu.Lock()
		s.dbCache[node] = &dbEntry{done: closedChan, db: db}
		s.dbMu.Unlock()
		s.noteDBUse(node)
	}
	return db, nil
}

// buildDB loads and parses the node's document: one Database Constructor
// run. Under the planner, a node hosted on another site is downloaded
// from its home document host — the ship-data half of the cost model,
// reached when forwardAll kept the clone here instead of shipping it.
func (s *Server) buildDB(node string) (*relmodel.DB, error) {
	var content []byte
	var err error
	if host := webgraph.Host(node); s.fetch != nil && host != s.site {
		content, err = s.fetchForeign(node, host)
	} else if s.store != nil {
		// Local node with the persistent store: assemble the database
		// from slotted pages through the buffer pool — no fetch, no
		// parse, and the text oracle rides along for contains folding.
		// A mutated (stale) or freshly born (unknown) document instead
		// takes the live read-through below: fetch + parse the current
		// web, leaving every untouched store entry served from pages.
		db, serr := s.store.DB(node)
		if serr == nil || !(errors.Is(serr, store.ErrStale) || errors.Is(serr, store.ErrUnknownDoc)) {
			return db, serr
		}
		content, err = s.docs.Get(node)
	} else {
		content, err = s.docs.Get(node)
	}
	if err != nil {
		return nil, err
	}
	db, err := nodeproc.BuildDB(node, content)
	if err != nil {
		return nil, err
	}
	s.met.DocsParsed.Add(1)
	s.met.DocBytes.Add(int64(len(content)))
	return db, nil
}

// dispatchResults sends the batched results and CHT updates to the
// user-site's Result Collector, retrying per Options.Retry. It reports
// success; exhausted failure means the user-site is gone (query cancelled
// or unreachable) and the query must be purged — stranded CHT entries are
// then the user-site reaper's problem, not ours. With ResultBatch on,
// the report is buffered in the per-query batcher instead, and failure
// means the batcher already learned (from an earlier flush) that the
// collector is gone.
func (s *Server) dispatchResults(c *wire.CloneMsg, updates []wire.CHTUpdate, tables []wire.NodeTable, spawned []wire.SpanLink) bool {
	if len(updates) == 0 && len(tables) == 0 {
		return true
	}
	// Piggyback this site's statistics on the frame (Section 3.2 style:
	// ride data that is going to the user-site anyway) so the user-site
	// can hint future clones without a statistics round-trip.
	var stats []wire.SiteStat
	if s.opts.Planner.Enabled {
		stats = []wire.SiteStat{s.ownStat()}
	}
	if s.batcher != nil {
		r := wire.Report{Updates: updates, Tables: tables, Stats: stats}
		if s.traced(c) {
			r.Span, r.Site, r.Hop, r.Spawned = c.Span, s.site, c.Hops, spawned
		}
		return s.batcher.add(c.ID, r)
	}
	msg := &wire.ResultMsg{ID: c.ID, Updates: updates, Tables: tables, Stats: stats}
	if s.traced(c) {
		msg.Span, msg.Site, msg.Hop, msg.Spawned = c.Span, s.site, c.Hops, spawned
	}
	s.stampReplica(msg)
	if s.send(c.ID.Site, msg) != nil {
		return false
	}
	s.met.ResultMsgs.Add(1)
	s.met.ResultReports.Add(1)
	return true
}

// fanoutWorkers returns the bound of the per-clone forward worker group.
func (s *Server) fanoutWorkers() int {
	if s.opts.FanoutWorkers > 0 {
		return s.opts.FanoutWorkers
	}
	return 8
}

// forwardAll ships the processed clone's outgoing clones in their
// deterministic order: destinations are sorted and the Forward jots
// appended serially (so per-message trace ordering is stable), same-site
// clones go straight onto the local queue, and the remote clones are then
// shipped through a bounded worker group so one slow peer does not
// serialize the whole fan-out. forwardAll returns only when every remote
// send has resolved, preserving the seed's "clone fully processed before
// the next queue item" property per worker. CHT bookkeeping is unaffected
// by the concurrency: every entry was announced by dispatchResults before
// any forward, and each remote clone still produces exactly one fate
// (forwarded, bounced, or retired) regardless of completion order.
func (s *Server) forwardAll(outs map[string]*outClone, order []string) {
	var remote []*outClone
	for _, key := range order {
		oc := outs[key]
		sort.Slice(oc.msg.Dest, func(i, j int) bool { return oc.msg.Dest[i].URL < oc.msg.Dest[j].URL })
		if oc.site == s.site {
			s.jot(oc.msg, trace.Forward, "", oc.msg.State(), oc.site)
			s.met.LocalClones.Add(1)
			s.Enqueue(oc.msg)
			continue
		}
		if s.chooseShipData(oc) {
			// The cost model priced the destination documents below the
			// clone: keep the clone on this site's queue and let buildDB
			// pull the documents over instead (ship-data for this edge).
			s.jot(oc.msg, trace.Forward, "", oc.msg.State(), "ship-data "+oc.site)
			s.trace("", oc.msg.State(), "ship-data", oc.site)
			s.met.ShipDataEdges.Add(1)
			s.Enqueue(oc.msg)
			continue
		}
		s.jot(oc.msg, trace.Forward, "", oc.msg.State(), oc.site)
		remote = append(remote, oc)
	}
	if len(remote) == 0 {
		return
	}
	start := time.Now()
	workers := s.fanoutWorkers()
	if s.opts.SerialFanout || workers <= 1 || len(remote) == 1 {
		for _, oc := range remote {
			s.forwardRemote(oc)
		}
	} else {
		if workers > len(remote) {
			workers = len(remote)
		}
		ch := make(chan *outClone)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for oc := range ch {
					s.forwardRemote(oc)
				}
			}()
		}
		for _, oc := range remote {
			ch <- oc
		}
		close(ch)
		wg.Wait()
	}
	s.met.ForwardNanos.Add(time.Since(start).Nanoseconds())
}

// stampReplica marks a result frame with this replica's endpoint and
// incarnation so the user-site can reject replies that predate a
// restart. Unclustered servers leave both fields zero (frames are
// byte-identical to the seed's).
func (s *Server) stampReplica(msg *wire.ResultMsg) {
	if s.inc > 0 {
		msg.From, msg.Inc = s.self, s.inc
	}
}

// forwardRemote ships one outgoing clone over the transport. A failed
// forward retires the affected CHT entries so the user-site does not wait
// on clones that never arrived.
func (s *Server) forwardRemote(oc *outClone) {
	err := s.sendSite(oc.site, oc.msg)
	if err != nil {
		if s.opts.Hybrid && s.bounce(oc.msg, bounceReason(err, s.opts.Retry)) {
			s.trace("", oc.msg.State(), "bounce", oc.site)
			s.jot(oc.msg, trace.Bounce, "", oc.msg.State(), bounceReason(err, s.opts.Retry))
			return
		}
		s.met.ForwardFailed.Add(1)
		s.trace("", oc.msg.State(), "forward-failed", oc.site)
		s.jot(oc.msg, trace.ForwardFailed, "", oc.msg.State(), oc.site)
		s.retireAll(oc.msg, retirePlain)
		return
	}
	s.met.ClonesForwarded.Add(1)
}

// bounceReason classifies a failed forward: a plain connection refusal
// with no retry policy is the paper's §7.1 "site runs no query server"
// case; anything that survived a retry loop (or failed mid-transfer) is
// the fault-tolerance degraded mode.
func bounceReason(err error, pol RetryPolicy) string {
	if pol.attempts() <= 1 && errors.Is(err, netsim.ErrRefused) {
		return wire.BounceNoServer
	}
	return wire.BounceRetryExhausted
}

// bounce returns an undeliverable clone to the user-site for central
// fallback processing (retried per Options.Retry like any remote send).
// The clone's CHT entries stay live; the user-site retires them as it
// processes the bounced destinations.
func (s *Server) bounce(c *wire.CloneMsg, reason string) bool {
	if s.send(c.ID.Site, &wire.BounceMsg{Clone: c, Reason: reason}) != nil {
		return false
	}
	s.met.Bounced.Add(1)
	if reason == wire.BounceRetryExhausted {
		s.met.RecoveredByBounce.Add(1)
	}
	return true
}

// retireKind types a clone retirement: plain bookkeeping (failed
// forward, malformed clone), the typed EXPIRED retirement (budget
// enforcement), or the typed STOPPED retirement (active termination).
// The user-site books the typed kinds as the span's fate instead of
// "processed".
type retireKind int

const (
	retirePlain retireKind = iota
	retireExpired
	retireStopped
)

// retireAll dispatches CHT retirements for every destination of a clone
// that will never be processed.
func (s *Server) retireAll(c *wire.CloneMsg, kind retireKind) {
	if len(c.Dest) == 0 {
		return
	}
	st := c.State()
	updates := make([]wire.CHTUpdate, 0, len(c.Dest))
	for _, dest := range c.Dest {
		updates = append(updates, wire.CHTUpdate{Processed: wire.CHTEntry{
			Node: dest.URL, State: st, Origin: dest.Origin, Seq: dest.Seq,
		}})
	}
	if s.batcher != nil {
		r := wire.Report{Updates: updates, Expired: kind == retireExpired, Stopped: kind == retireStopped}
		if s.traced(c) {
			r.Span, r.Site, r.Hop = c.Span, s.site, c.Hops
		}
		s.batcher.add(c.ID, r)
		return
	}
	msg := &wire.ResultMsg{ID: c.ID, Updates: updates,
		Expired: kind == retireExpired, Stopped: kind == retireStopped}
	if s.traced(c) {
		msg.Span, msg.Site, msg.Hop = c.Span, s.site, c.Hops
	}
	s.stampReplica(msg)
	// A failed dispatch means the user-site is gone; its reaper owns the
	// stranded entries (same semantics as a failed result dispatch).
	if s.send(c.ID.Site, msg) == nil {
		s.met.ResultMsgs.Add(1)
		s.met.ResultReports.Add(1)
	}
}
