package store

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"webdis/internal/relmodel"
)

// poolFixture writes n small single-record pages and returns a pool over
// them with the given capacity.
func poolFixture(t *testing.T, npages, cap int, ctr Counters) *pool {
	t.Helper()
	var sink pageSink
	pw := newPageWriter(&sink)
	for i := 0; i < npages; i++ {
		// One record per page: pad the record so the page fills.
		body := relmodel.AppendTuple(nil, relmodel.KindDocument, relmodel.Tuple{
			fmt.Sprintf("page-%d", i),
			string(make([]byte, PageSize-pageHeaderSize-slotSize-64)),
		})
		if _, _, err := pw.append(body); err != nil {
			t.Fatal(err)
		}
	}
	got, err := pw.finish()
	if err != nil {
		t.Fatal(err)
	}
	if int(got) != npages {
		t.Fatalf("fixture wrote %d pages, want %d", got, npages)
	}
	return newPool(sink.readerAt(), got, cap, ctr)
}

// TestPoolCapAndEvictionAccounting: the pool never exceeds its cap and
// reads - evictions == resident frames.
func TestPoolCapAndEvictionAccounting(t *testing.T) {
	var reads, evicts atomic.Int64
	p := poolFixture(t, 32, 8, Counters{PagesRead: &reads, PagesEvicted: &evicts})
	for round := 0; round < 3; round++ {
		for no := uint32(0); no < 32; no++ {
			fr, err := p.get(no)
			if err != nil {
				t.Fatal(err)
			}
			p.unpin(fr)
			if r := p.resident(); r > 8 {
				t.Fatalf("resident %d exceeds cap 8", r)
			}
		}
	}
	if got := reads.Load() - evicts.Load(); got != int64(p.resident()) {
		t.Fatalf("reads(%d) - evictions(%d) = %d, want resident %d",
			reads.Load(), evicts.Load(), got, p.resident())
	}
	if evicts.Load() == 0 {
		t.Fatal("no evictions despite 32 pages through an 8-frame pool")
	}
}

// TestPoolPinnedNeverEvicted: with every frame pinned, a miss reports
// ErrPoolExhausted instead of stealing a pinned page, and the pinned
// buffers stay intact.
func TestPoolPinnedNeverEvicted(t *testing.T) {
	p := poolFixture(t, 8, 4, Counters{})
	var pinned []*frame
	for no := uint32(0); no < 4; no++ {
		fr, err := p.get(no)
		if err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, fr)
	}
	if _, err := p.get(5); !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("full-pinned miss: err = %v, want ErrPoolExhausted", err)
	}
	for i, fr := range pinned {
		if err := verifyPage(fr.buf); err != nil {
			t.Fatalf("pinned frame %d damaged: %v", i, err)
		}
		p.unpin(fr)
	}
	// Room again: the miss now succeeds by evicting an unpinned frame.
	fr, err := p.get(5)
	if err != nil {
		t.Fatal(err)
	}
	p.unpin(fr)
}

// TestPoolConcurrentStress hammers a small pool from many goroutines
// (run under -race in CI): cap is never exceeded, pinned reads always
// see verified pages, and the books reconcile at the end.
func TestPoolConcurrentStress(t *testing.T) {
	var reads, evicts atomic.Int64
	p := poolFixture(t, 24, 6, Counters{PagesRead: &reads, PagesEvicted: &evicts})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				no := uint32((g*7 + i*13) % 24)
				fr, err := p.get(no)
				if err != nil {
					if errors.Is(err, ErrPoolExhausted) {
						continue // legal under full pin pressure
					}
					errs <- err
					return
				}
				if err := verifyPage(fr.buf); err != nil {
					errs <- fmt.Errorf("page %d while pinned: %w", no, err)
				}
				p.unpin(fr)
				if r := p.resident(); r > 6 {
					errs <- fmt.Errorf("resident %d exceeds cap", r)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := reads.Load() - evicts.Load(); got != int64(p.resident()) {
		t.Fatalf("reads(%d) - evictions(%d) = %d, want resident %d",
			reads.Load(), evicts.Load(), got, p.resident())
	}
}
