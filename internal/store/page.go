// Package store is the persistent site storage subsystem: a per-site
// heap file of fixed-size slotted pages holding the serialized tuples of
// the site's virtual relations (relmodel's codec), a fixed-capacity
// buffer pool with pin counts and LRU eviction, page checksums with
// torn-write detection at open, and a persisted inverted index over
// document text that answers `contains` predicates by posting-list
// lookup instead of a full text scan.
//
// A store is built once from the site's documents (webgen -out, or
// lazily by the first query-server start against an empty directory),
// fsynced and atomically renamed into place, then reopened across
// restarts — cold start is open-not-rebuild. The server plugs it in
// under ServerOptions.Store; the zero value keeps the in-RAM Database
// Constructor behaviour byte for byte.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// PageSize is the fixed on-disk page size of the heap file.
const PageSize = 4096

// Page layout. A data page is
//
//	[0:2)  magic 0x5744 ("WD", little-endian)
//	[2]    kind (data=1, overflow=2)
//	[3]    flags (overflow: bit0 = record continues on the next page)
//	[4:8)  CRC32-C of the page with this field zeroed
//	[8:10) data: slot count; overflow: fragment length
//	[10:12) data: free-space offset (next record byte); overflow: 0
//	[12:...) record bytes, growing forward
//	[...:PageSize) slot directory, growing backward: 4 bytes per slot,
//	        offset uint16 | length uint16; the length's high bit marks a
//	        record whose tail continues in the following overflow pages.
//
// A record larger than one page occupies the final slot of its data page
// and spills into consecutive overflow pages; readers follow the
// continues flag, so no total-length field is needed (the tuple codec is
// self-delimiting and the fragment chain is explicit).
const (
	pageMagic      = 0x5744
	pageHeaderSize = 12
	slotSize       = 4

	kindDataPage     = 1
	kindOverflowPage = 2

	flagContinues = 0x01

	slotLenMask  = 0x7fff
	slotSpilled  = 0x8000
	overflowCap  = PageSize - pageHeaderSize
	minFragBytes = 16 // start a spanned record only with this much room
)

// Typed failures. Callers branch on these with errors.Is.
var (
	// ErrNotBuilt: no store exists at the given directory (build one).
	ErrNotBuilt = errors.New("store: not built")
	// ErrCorrupt: a checksum or structural invariant failed — a torn
	// write or bit rot. Recovery policy is rebuild-from-source.
	ErrCorrupt = errors.New("store: corrupt")
	// ErrTruncated: a file is shorter than its catalog says.
	ErrTruncated = errors.New("store: truncated")
	// ErrPoolExhausted: every buffer-pool frame is pinned.
	ErrPoolExhausted = errors.New("store: buffer pool exhausted")
	// ErrStale: the document was invalidated by a web mutation after the
	// store was built. Recovery is a live read-through (fetch + parse),
	// not a store rebuild — only the touched entry is stale.
	ErrStale = errors.New("store: stale")
	// ErrUnknownDoc: the store has no entry for the URL — typically a
	// page born after the build. Recovery is the same live read-through.
	ErrUnknownDoc = errors.New("store: unknown document")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// pageChecksum computes the page CRC with the checksum field zeroed.
func pageChecksum(p []byte) uint32 {
	c := crc32.Update(0, castagnoli, p[:4])
	var zero [4]byte
	c = crc32.Update(c, castagnoli, zero[:])
	return crc32.Update(c, castagnoli, p[8:])
}

// sealPage stamps the checksum into a finished page.
func sealPage(p []byte) {
	binary.LittleEndian.PutUint32(p[4:8], pageChecksum(p))
}

// verifyPage checks magic, kind and checksum — the torn-write detector.
func verifyPage(p []byte) error {
	if len(p) != PageSize {
		return fmt.Errorf("%w: short page", ErrTruncated)
	}
	if binary.LittleEndian.Uint16(p[0:2]) != pageMagic {
		return fmt.Errorf("%w: bad page magic", ErrCorrupt)
	}
	if k := p[2]; k != kindDataPage && k != kindOverflowPage {
		return fmt.Errorf("%w: unknown page kind %d", ErrCorrupt, k)
	}
	if got := binary.LittleEndian.Uint32(p[4:8]); got != pageChecksum(p) {
		return fmt.Errorf("%w: page checksum mismatch", ErrCorrupt)
	}
	return nil
}

func pageKind(p []byte) byte { return p[2] }

func pageNSlots(p []byte) int { return int(binary.LittleEndian.Uint16(p[8:10])) }

// pageSlot reads slot i of a data page with bounds checks.
func pageSlot(p []byte, i int) (off, length int, spilled bool, err error) {
	n := pageNSlots(p)
	if i < 0 || i >= n {
		return 0, 0, false, fmt.Errorf("%w: slot %d of %d", ErrCorrupt, i, n)
	}
	base := PageSize - (i+1)*slotSize
	off = int(binary.LittleEndian.Uint16(p[base : base+2]))
	raw := binary.LittleEndian.Uint16(p[base+2 : base+4])
	length = int(raw & slotLenMask)
	spilled = raw&slotSpilled != 0
	if off < pageHeaderSize || off+length > PageSize-n*slotSize {
		return 0, 0, false, fmt.Errorf("%w: slot %d outside page bounds", ErrCorrupt, i)
	}
	return off, length, spilled, nil
}

// overflowFrag returns an overflow page's fragment and whether the
// record continues on the following page.
func overflowFrag(p []byte) (frag []byte, continues bool, err error) {
	if pageKind(p) != kindOverflowPage {
		return nil, false, fmt.Errorf("%w: expected overflow page", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint16(p[8:10]))
	if n > overflowCap {
		return nil, false, fmt.Errorf("%w: overflow fragment overruns page", ErrCorrupt)
	}
	return p[pageHeaderSize : pageHeaderSize+n], p[3]&flagContinues != 0, nil
}

// pageWriter appends records to a growing heap file, sealing and writing
// each 4 KiB page as it fills. It is the build-time half of the heap;
// reads go through the buffer pool.
type pageWriter struct {
	w      io.Writer
	page   [PageSize]byte
	nslots int
	free   int // next record byte
	filled bool
	pages  uint32 // pages written so far
}

func newPageWriter(w io.Writer) *pageWriter {
	pw := &pageWriter{w: w}
	pw.reset()
	return pw
}

func (pw *pageWriter) reset() {
	for i := range pw.page {
		pw.page[i] = 0
	}
	binary.LittleEndian.PutUint16(pw.page[0:2], pageMagic)
	pw.page[2] = kindDataPage
	pw.nslots, pw.free, pw.filled = 0, pageHeaderSize, false
}

// room is the payload space left on the current page if one more slot is
// added.
func (pw *pageWriter) room() int {
	return PageSize - pw.free - (pw.nslots+1)*slotSize
}

func (pw *pageWriter) putSlot(off, length int, spilled bool) {
	base := PageSize - (pw.nslots+1)*slotSize
	binary.LittleEndian.PutUint16(pw.page[base:base+2], uint16(off))
	raw := uint16(length)
	if spilled {
		raw |= slotSpilled
	}
	binary.LittleEndian.PutUint16(pw.page[base+2:base+4], raw)
	pw.nslots++
	binary.LittleEndian.PutUint16(pw.page[8:10], uint16(pw.nslots))
	binary.LittleEndian.PutUint16(pw.page[10:12], uint16(pw.free))
}

func (pw *pageWriter) flushData() error {
	if !pw.filled && pw.nslots == 0 {
		return nil
	}
	sealPage(pw.page[:])
	if _, err := pw.w.Write(pw.page[:]); err != nil {
		return err
	}
	pw.pages++
	pw.reset()
	return nil
}

func (pw *pageWriter) writeOverflow(frag []byte, continues bool) error {
	var p [PageSize]byte
	binary.LittleEndian.PutUint16(p[0:2], pageMagic)
	p[2] = kindOverflowPage
	if continues {
		p[3] = flagContinues
	}
	binary.LittleEndian.PutUint16(p[8:10], uint16(len(frag)))
	copy(p[pageHeaderSize:], frag)
	sealPage(p[:])
	if _, err := pw.w.Write(p[:]); err != nil {
		return err
	}
	pw.pages++
	return nil
}

// append stores one encoded record and returns the (page, slot) it
// landed in.
func (pw *pageWriter) append(body []byte) (page uint32, slot uint16, err error) {
	if pw.nslots > 0 && pw.room() < minFragBytes {
		if err := pw.flushData(); err != nil {
			return 0, 0, err
		}
	}
	// A record that would span but fits a fresh page whole gets one.
	if pw.nslots > 0 && len(body) > pw.room() && len(body) <= PageSize-pageHeaderSize-slotSize {
		if err := pw.flushData(); err != nil {
			return 0, 0, err
		}
	}
	page, slot = pw.pages, uint16(pw.nslots)
	if len(body) <= pw.room() {
		copy(pw.page[pw.free:], body)
		pw.putSlot(pw.free, len(body), false)
		pw.free += len(body)
		pw.filled = true
		return page, slot, nil
	}
	// Spanned record: head fragment fills this page, tail spills into
	// consecutive overflow pages.
	head := pw.room()
	copy(pw.page[pw.free:], body[:head])
	pw.putSlot(pw.free, head, true)
	pw.free += head
	pw.filled = true
	if err := pw.flushData(); err != nil {
		return 0, 0, err
	}
	rest := body[head:]
	for len(rest) > 0 {
		n := len(rest)
		if n > overflowCap {
			n = overflowCap
		}
		if err := pw.writeOverflow(rest[:n], len(rest) > n); err != nil {
			return 0, 0, err
		}
		rest = rest[n:]
	}
	return page, slot, nil
}

// finish seals the trailing partial page and reports the page count.
func (pw *pageWriter) finish() (uint32, error) {
	if err := pw.flushData(); err != nil {
		return 0, err
	}
	return pw.pages, nil
}
