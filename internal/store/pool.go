package store

import (
	"container/list"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// DefaultPoolPages is the buffer-pool capacity when Options.PoolPages is
// zero: 256 pages = 1 MiB resident, independent of heap-file size.
const DefaultPoolPages = 256

// Counters lets the store book its I/O into the owner's metrics (the
// server points these at its Metrics fields). Nil pointers are replaced
// by private sinks, so the zero value is usable.
type Counters struct {
	PagesRead    *atomic.Int64 // disk page reads (buffer-pool misses)
	PagesEvicted *atomic.Int64 // unpinned frames dropped to make room
	IndexHits    *atomic.Int64 // contains-predicates decided by the text index
}

func (c Counters) norm() Counters {
	if c.PagesRead == nil {
		c.PagesRead = new(atomic.Int64)
	}
	if c.PagesEvicted == nil {
		c.PagesEvicted = new(atomic.Int64)
	}
	if c.IndexHits == nil {
		c.IndexHits = new(atomic.Int64)
	}
	return c
}

// frame is one resident page. pin counts current users; a frame joins
// the eviction list only at pin 0. ready closes when the disk read (done
// outside the pool lock) finishes, so concurrent Gets of one page
// coalesce into a single read.
type frame struct {
	no    uint32
	buf   []byte
	pin   int
	elem  *list.Element // position in pool.lru when unpinned, else nil
	ready chan struct{}
	err   error
}

// pool is the fixed-capacity buffer pool over the heap file. All pages
// are read-only after build, so there is no dirty tracking or write-back
// — eviction is a plain drop.
type pool struct {
	src    io.ReaderAt
	npages uint32
	cap    int
	ctr    Counters

	mu     sync.Mutex
	frames map[uint32]*frame
	lru    *list.List // unpinned frames, oldest at Front
}

func newPool(src io.ReaderAt, npages uint32, capPages int, ctr Counters) *pool {
	if capPages <= 0 {
		capPages = DefaultPoolPages
	}
	if capPages < 4 {
		capPages = 4
	}
	return &pool{
		src: src, npages: npages, cap: capPages, ctr: ctr.norm(),
		frames: make(map[uint32]*frame),
		lru:    list.New(),
	}
}

// get returns page no pinned; the caller must unpin it. A pinned frame
// is never evicted, so its buffer stays valid until unpin.
func (p *pool) get(no uint32) (*frame, error) {
	if no >= p.npages {
		return nil, fmt.Errorf("%w: page %d of %d-page heap", ErrTruncated, no, p.npages)
	}
	p.mu.Lock()
	if fr := p.frames[no]; fr != nil {
		if fr.elem != nil {
			p.lru.Remove(fr.elem)
			fr.elem = nil
		}
		fr.pin++
		p.mu.Unlock()
		<-fr.ready
		if fr.err != nil {
			err := fr.err
			p.unpin(fr)
			return nil, err
		}
		return fr, nil
	}
	// Miss: make room, insert a loading frame, read outside the lock.
	for len(p.frames) >= p.cap {
		el := p.lru.Front()
		if el == nil {
			n := len(p.frames)
			p.mu.Unlock()
			return nil, fmt.Errorf("%w: all %d frames pinned", ErrPoolExhausted, n)
		}
		vic := el.Value.(*frame)
		p.lru.Remove(el)
		vic.elem = nil
		delete(p.frames, vic.no)
		p.ctr.PagesEvicted.Add(1)
	}
	fr := &frame{no: no, pin: 1, buf: make([]byte, PageSize), ready: make(chan struct{})}
	p.frames[no] = fr
	p.mu.Unlock()

	_, err := p.src.ReadAt(fr.buf, int64(no)*PageSize)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		err = fmt.Errorf("%w: page %d past end of heap file", ErrTruncated, no)
	}
	if err == nil {
		err = verifyPage(fr.buf)
	}
	p.ctr.PagesRead.Add(1)
	fr.err = err
	close(fr.ready)
	if err != nil {
		p.unpin(fr)
		return nil, err
	}
	return fr, nil
}

// unpin releases one pin; at zero the frame becomes evictable (or is
// discarded outright if its read failed).
func (p *pool) unpin(fr *frame) {
	p.mu.Lock()
	fr.pin--
	if fr.pin == 0 && p.frames[fr.no] == fr {
		if fr.err != nil {
			delete(p.frames, fr.no)
		} else {
			fr.elem = p.lru.PushBack(fr)
		}
	}
	p.mu.Unlock()
}

// resident reports the frames currently held — tests reconcile this with
// reads minus evictions and against the capacity bound.
func (p *pool) resident() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}
