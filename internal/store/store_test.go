package store

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"webdis/internal/nodeproc"
	"webdis/internal/relmodel"
	"webdis/internal/webgraph"
)

// buildWeb materializes every site of web under root and returns the
// opened stores keyed by site.
func buildWeb(t *testing.T, root string, web *webgraph.Web, o Options) map[string]*Store {
	t.Helper()
	out := make(map[string]*Store)
	for _, site := range web.Hosts() {
		st, err := Build(root, site, web.URLsAt(site), webGet(web), o)
		if err != nil {
			t.Fatalf("build %s: %v", site, err)
		}
		t.Cleanup(func() { st.Close() })
		out[site] = st
	}
	return out
}

func webGet(web *webgraph.Web) func(string) ([]byte, error) {
	return func(u string) ([]byte, error) {
		html, ok := web.HTML(u)
		if !ok {
			return nil, fmt.Errorf("no page %s", u)
		}
		return html, nil
	}
}

// TestBuildOpenDBEquality: every document's store-assembled DB must be
// value-identical to the in-RAM Database Constructor's.
func TestBuildOpenDBEquality(t *testing.T) {
	web := webgraph.Campus()
	root := t.TempDir()
	stores := buildWeb(t, root, web, Options{})
	for _, u := range web.URLs() {
		site := webgraph.Host(u)
		got, err := stores[site].DB(u)
		if err != nil {
			t.Fatalf("DB(%s): %v", u, err)
		}
		html, _ := web.HTML(u)
		want, err := nodeproc.BuildDB(u, html)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Document, want.Document) ||
			!reflect.DeepEqual(got.Anchor, want.Anchor) ||
			!reflect.DeepEqual(got.RelInfon, want.RelInfon) {
			t.Fatalf("store DB for %s differs from BuildDB:\n got %+v\nwant %+v", u, got, want)
		}
		if got.Text == nil {
			t.Fatalf("store DB for %s has no text oracle", u)
		}
	}
}

// TestReopen: a second Open serves the same DBs without rebuilding.
func TestReopen(t *testing.T) {
	web := webgraph.Figure1()
	root := t.TempDir()
	site := web.Hosts()[0]
	built := 0
	st, err := Build(root, site, web.URLsAt(site), webGet(web), Options{OnDoc: func(string, int) { built++ }})
	if err != nil {
		t.Fatal(err)
	}
	if built != len(web.URLsAt(site)) {
		t.Fatalf("OnDoc ran %d times, want %d", built, len(web.URLsAt(site)))
	}
	st.Close()

	reparsed := 0
	st2, err := Open(root, site, Options{OnDoc: func(string, int) { reparsed++ }})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if reparsed != 0 {
		t.Fatalf("reopen parsed %d documents, want 0", reparsed)
	}
	for _, u := range web.URLsAt(site) {
		if _, err := st2.DB(u); err != nil {
			t.Fatalf("DB(%s) after reopen: %v", u, err)
		}
	}
}

func TestOpenAbsent(t *testing.T) {
	_, err := Open(t.TempDir(), "nowhere.example", Options{})
	if !errors.Is(err, ErrNotBuilt) {
		t.Fatalf("err = %v, want ErrNotBuilt", err)
	}
}

// TestTornWriteDetection: flipping any heap byte must fail open with
// ErrCorrupt; shortening the file must fail with ErrTruncated.
func TestTornWriteDetection(t *testing.T) {
	web := webgraph.Figure1()
	root := t.TempDir()
	site := web.Hosts()[0]
	st, err := Build(root, site, web.URLsAt(site), webGet(web), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	heap := filepath.Join(Dir(root, site), heapFile)
	blob, err := os.ReadFile(heap)
	if err != nil {
		t.Fatal(err)
	}

	for _, off := range []int{0, 5, 100, len(blob) - 1} {
		dam := append([]byte(nil), blob...)
		dam[off] ^= 0x40
		if err := os.WriteFile(heap, dam, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(root, site, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", off, err)
		}
	}

	if err := os.WriteFile(heap, blob[:len(blob)-PageSize/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(root, site, Options{}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated heap: err = %v, want ErrTruncated", err)
	}

	// Catalog damage is ErrCorrupt too.
	if err := os.WriteFile(heap, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	cat := filepath.Join(Dir(root, site), catalogFile)
	cb, _ := os.ReadFile(cat)
	cb[len(cb)/2] ^= 0x01
	os.WriteFile(cat, cb, 0o644)
	if _, err := Open(root, site, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("damaged catalog: err = %v, want ErrCorrupt", err)
	}
}

// TestSpannedRecords exercises records far larger than one page through
// the writer and reader.
func TestSpannedRecords(t *testing.T) {
	var sink pageSink
	pw := newPageWriter(&sink)
	var want []relmodel.Tuple
	var locs []struct {
		page uint32
		slot uint16
	}
	for i := 0; i < 20; i++ {
		tup := relmodel.Tuple{
			fmt.Sprintf("field-%d", i),
			strings.Repeat(fmt.Sprintf("x%d", i), 40+i*700), // spans several pages when large
		}
		pg, sl, err := pw.append(relmodel.AppendTuple(nil, relmodel.KindDocument, tup))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, tup)
		locs = append(locs, struct {
			page uint32
			slot uint16
		}{pg, sl})
	}
	npages, err := pw.finish()
	if err != nil {
		t.Fatal(err)
	}
	p := newPool(sink.readerAt(), npages, 8, Counters{})
	rr := recReader{pool: p, page: locs[0].page, slot: int(locs[0].slot)}
	for i, w := range want {
		kind, got, err := rr.next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if kind != relmodel.KindDocument || !reflect.DeepEqual(got, w) {
			t.Fatalf("record %d mismatch: got %q", i, got)
		}
	}
	if p.resident() > 8 {
		t.Fatalf("pool resident %d exceeds cap 8", p.resident())
	}
}

// TestOracleMatchesScan is the differential property: on the campus web,
// the oracle's decided answers must agree with the evaluator's
// strings.Contains(ToLower, ToLower), and out-of-class literals must be
// declined.
func TestOracleMatchesScan(t *testing.T) {
	web := webgraph.Campus()
	root := t.TempDir()
	stores := buildWeb(t, root, web, Options{})
	lits := []string{
		"convener", "CONVENER", "lab", "xanadu", "zzznope", "da", "ly",
		"q",        // too short: declined
		"two word", // space: declined
		"a-b",      // punctuation: declined
		"naïve",    // non-ASCII: declined
		"",         // empty: declined
	}
	for _, u := range web.URLs() {
		db, err := stores[webgraph.Host(u)].DB(u)
		if err != nil {
			t.Fatal(err)
		}
		doc := db.Document.Tuples[0]
		for colIdx, col := range []string{"title", "text"} {
			val := doc[2] // text
			if col == "title" {
				val = doc[1]
			}
			_ = colIdx
			for _, lit := range lits {
				hit, decided := db.Text.MatchContains(col, lit)
				want := strings.Contains(strings.ToLower(val), strings.ToLower(lit))
				indexable := indexableLit(strings.ToLower(lit))
				if decided != indexable {
					t.Fatalf("%s %s contains %q: decided=%v, want %v", u, col, lit, decided, indexable)
				}
				if decided && hit != want {
					t.Fatalf("%s %s contains %q: oracle=%v scan=%v", u, col, lit, hit, want)
				}
			}
		}
	}
}

// TestOracleUnknownColumnDeclines pins the fallback for non-indexed
// columns.
func TestOracleUnknownColumnDeclines(t *testing.T) {
	ix := &textIndex{fields: map[string]map[string][]uint32{"text": {"abc": {0}}}}
	ix.memo = map[string]map[uint32]bool{}
	ix.hits = Counters{}.norm().IndexHits
	o := docOracle{ix: ix, id: 0}
	if _, decided := o.MatchContains("url", "abc"); decided {
		t.Fatal("url column must be declined")
	}
	if hit, decided := o.MatchContains("text", "ab"); !decided || !hit {
		t.Fatalf("text/ab: hit=%v decided=%v, want true/true", hit, decided)
	}
}

// TestNoTextIndexOption: built or opened without the index, DBs carry no
// oracle.
func TestNoTextIndexOption(t *testing.T) {
	web := webgraph.Figure1()
	root := t.TempDir()
	site := web.Hosts()[0]
	st, err := Build(root, site, web.URLsAt(site), webGet(web), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, err := Open(root, site, Options{NoTextIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	db, err := st2.DB(web.URLsAt(site)[0])
	if err != nil {
		t.Fatal(err)
	}
	if db.Text != nil {
		t.Fatal("NoTextIndex open still attached an oracle")
	}
}

// pageSink collects written pages in memory for writer/reader tests.
type pageSink struct{ b []byte }

func (s *pageSink) Write(p []byte) (int, error) { s.b = append(s.b, p...); return len(p), nil }
func (s *pageSink) readerAt() *memReaderAt      { return &memReaderAt{s.b} }

type memReaderAt struct{ b []byte }

func (m *memReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(m.b)) {
		return 0, io.EOF
	}
	n := copy(p, m.b[off:])
	if n < len(p) {
		return n, io.ErrUnexpectedEOF
	}
	return n, nil
}
