package store

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"webdis/internal/relmodel"
)

// FuzzPageRoundTrip is the page/tuple codec oracle (the wire-codec fuzz
// pattern applied to storage): tuples derived from the inputs must
// round-trip byte-identically through the page writer and record reader,
// any single-byte flip must be rejected with a typed ErrCorrupt, and
// truncation with ErrTruncated. The raw input additionally drives the
// tuple decoder directly, which must never panic and must either error
// or report an exact consumed length.
func FuzzPageRoundTrip(f *testing.F) {
	f.Add("url", "title text", 1, 10, []byte{1, 2, 0})
	f.Add("", "", 0, 0, []byte(nil))
	f.Add("a", strings.Repeat("big", 3000), 3, 9000, []byte{0xff, 0x03})
	f.Add("x", "y", 200, 1, relmodel.AppendTuple(nil, relmodel.KindAnchor, relmodel.Tuple{"l", "b", "h", "t"}))
	f.Fuzz(func(t *testing.T, a, b string, ntup, pad int, raw []byte) {
		// 1. The tuple decoder is total on arbitrary bytes.
		if kind, tup, n, err := relmodel.DecodeTuple(raw); err == nil {
			if n <= 0 || n > len(raw) {
				t.Fatalf("DecodeTuple consumed %d of %d", n, len(raw))
			}
			re := relmodel.AppendTuple(nil, kind, tup)
			if !reflect.DeepEqual(re, raw[:n]) {
				t.Fatalf("decode/encode of valid prefix not stable")
			}
		}

		// 2. Writer/reader round trip, with sizes spanning pages.
		ntup = ntup%16 + 1
		pad = pad % 12000
		if pad < 0 {
			pad = -pad
		}
		var want []relmodel.Tuple
		kinds := []byte{relmodel.KindDocument, relmodel.KindAnchor, relmodel.KindRelInfon}
		var sink pageSink
		pw := newPageWriter(&sink)
		var firstPage uint32
		var firstSlot uint16
		for i := 0; i < ntup; i++ {
			tup := relmodel.Tuple{a, b, strings.Repeat("p", pad*i/ntup)}
			pg, sl, err := pw.append(relmodel.AppendTuple(nil, kinds[i%3], tup))
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				firstPage, firstSlot = pg, sl
			}
			want = append(want, tup)
		}
		npages, err := pw.finish()
		if err != nil {
			t.Fatal(err)
		}
		p := newPool(sink.readerAt(), npages, 4, Counters{})
		rr := recReader{pool: p, page: firstPage, slot: int(firstSlot)}
		for i, w := range want {
			kind, got, err := rr.next()
			if err != nil {
				t.Fatalf("record %d: %v", i, err)
			}
			if kind != kinds[i%3] || !reflect.DeepEqual(got, w) {
				t.Fatalf("record %d mismatch", i)
			}
		}

		// 3. A flipped byte is a typed corruption on that page.
		if len(sink.b) > 0 {
			off := pad % len(sink.b)
			dam := append([]byte(nil), sink.b...)
			dam[off] ^= 0x20
			page := dam[(off/PageSize)*PageSize : (off/PageSize+1)*PageSize]
			if err := verifyPage(page); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip at %d: verifyPage = %v, want ErrCorrupt", off, err)
			}
		}

		// 4. Truncation is typed: a reader driven past a shortened heap
		// reports ErrTruncated.
		if npages > 0 {
			short := newPool(&memReaderAt{sink.b[:len(sink.b)-1]}, npages, 4, Counters{})
			last := npages - 1
			if _, err := short.get(last); !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("short heap read: %v, want typed truncation/corruption", err)
			}
		}
	})
}
