package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"webdis/internal/index"
)

// The text index maps (field, token) → ascending document ids, where the
// tokens are index.Tokenize over strings.ToLower of the field value —
// exactly the maximal [a-z0-9] runs (length ≥ 2) of the lower-cased text
// the evaluator's `contains` scans. That choice makes the index an exact
// oracle for a restricted literal class instead of an approximation:
//
// `x contains lit` is strings.Contains(ToLower(x), ToLower(lit)). When
// ToLower(lit) is length ≥ 2 and entirely [a-z0-9], any occurrence in
// ToLower(x) lies within one maximal alphanumeric run (ASCII bytes never
// occur inside multi-byte UTF-8 sequences), and those runs are exactly
// the indexed tokens. So: hit ⇔ some indexed token of the document
// contains the literal as a substring. Literals outside that class
// (too short, spaces, punctuation, non-ASCII) are declined — decided =
// false — and the evaluator falls back to the full scan, keeping answers
// byte-identical in every case.
//
// Indexed fields are the document tuple's "text" and "title" columns.

const textIndexMagic = "WDSIDX1\n"

// memoCap bounds the per-literal match-set memo (reset when exceeded).
const memoCap = 1024

// indexBuilder accumulates postings during a build.
type indexBuilder struct {
	fields map[string]map[string][]uint32
}

func newIndexBuilder() *indexBuilder {
	return &indexBuilder{fields: map[string]map[string][]uint32{
		"text": {}, "title": {},
	}}
}

// add indexes one field of one document. Documents must be added in
// ascending id order (the builder appends).
func (b *indexBuilder) add(id uint32, field, text string) {
	terms := b.fields[field]
	for _, tok := range index.Tokenize(strings.ToLower(text)) {
		if post := terms[tok]; len(post) > 0 && post[len(post)-1] == id {
			continue // already posted for this document
		}
		terms[tok] = append(terms[tok], id)
	}
}

// encode renders the index file body (magic .. postings) with a CRC32-C
// trailer.
func (b *indexBuilder) encode() []byte {
	out := []byte(textIndexMagic)
	fields := make([]string, 0, len(b.fields))
	for f := range b.fields {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	out = binary.AppendUvarint(out, uint64(len(fields)))
	for _, f := range fields {
		out = appendString(out, f)
		terms := make([]string, 0, len(b.fields[f]))
		for t := range b.fields[f] {
			terms = append(terms, t)
		}
		sort.Strings(terms)
		out = binary.AppendUvarint(out, uint64(len(terms)))
		for _, t := range terms {
			out = appendString(out, t)
			post := b.fields[f][t]
			out = binary.AppendUvarint(out, uint64(len(post)))
			prev := uint32(0)
			for i, id := range post {
				if i == 0 {
					out = binary.AppendUvarint(out, uint64(id))
				} else {
					out = binary.AppendUvarint(out, uint64(id-prev))
				}
				prev = id
			}
		}
	}
	crc := crc32.Checksum(out, castagnoli)
	return binary.LittleEndian.AppendUint32(out, crc)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// textIndex is the opened, in-memory form. Term dictionaries for the
// synthetic webs are small (hundreds of tokens), so the whole index
// loads at open; the heap pages stay on disk behind the pool.
type textIndex struct {
	fields map[string]map[string][]uint32
	hits   *atomic.Int64

	mu   sync.Mutex
	memo map[string]map[uint32]bool // field\x00literal → matching doc ids
	dead map[uint32]bool            // invalidated doc ids (stale postings)
}

// invalidate retires one document's postings: the id is dropped from
// every memoized match set and excluded from future ones. The posting
// lists themselves are left in place (they are shared, delta-encoded
// history) — the dead set filters them at match time, so invalidation
// touches only the one entry, never the index structure.
func (ix *textIndex) invalidate(id uint32) {
	ix.mu.Lock()
	if ix.dead == nil {
		ix.dead = make(map[uint32]bool)
	}
	ix.dead[id] = true
	for _, set := range ix.memo {
		delete(set, id)
	}
	ix.mu.Unlock()
}

func decodeTextIndex(b []byte, hits *atomic.Int64) (*textIndex, error) {
	if len(b) < len(textIndexMagic)+4 {
		return nil, fmt.Errorf("%w: text index too short", ErrTruncated)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: text index checksum mismatch", ErrCorrupt)
	}
	if string(body[:len(textIndexMagic)]) != textIndexMagic {
		return nil, fmt.Errorf("%w: bad text index magic", ErrCorrupt)
	}
	r := &byteReader{b: body, pos: len(textIndexMagic)}
	ix := &textIndex{fields: map[string]map[string][]uint32{}, hits: hits, memo: map[string]map[uint32]bool{}}
	nfields := r.uvarint()
	for i := uint64(0); i < nfields && r.err == nil; i++ {
		field := r.str()
		nterms := r.uvarint()
		if nterms > uint64(r.rest()) { // each term costs ≥ 1 byte
			r.err = fmt.Errorf("term count %d overruns buffer", nterms)
			break
		}
		terms := make(map[string][]uint32, nterms)
		for j := uint64(0); j < nterms && r.err == nil; j++ {
			term := r.str()
			npost := r.uvarint()
			if npost > uint64(r.rest()) { // each posting costs ≥ 1 byte
				r.err = fmt.Errorf("posting count %d overruns buffer", npost)
				break
			}
			post := make([]uint32, 0, npost)
			prev := uint64(0)
			for k := uint64(0); k < npost && r.err == nil; k++ {
				d := r.uvarint()
				if k == 0 {
					prev = d
				} else {
					prev += d
				}
				post = append(post, uint32(prev))
			}
			terms[term] = post
		}
		ix.fields[field] = terms
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: text index body: %v", ErrCorrupt, r.err)
	}
	return ix, nil
}

// indexableLit reports whether the lowered literal is within the class
// the index decides exactly: length ≥ 2, all [a-z0-9].
func indexableLit(lower string) bool {
	if len(lower) < 2 {
		return false
	}
	for i := 0; i < len(lower); i++ {
		c := lower[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// matchContains answers `<field> contains <lit>` for document id, or
// declines (decided = false) for literals outside the indexed class.
func (ix *textIndex) matchContains(field string, id uint32, lit string) (hit, decided bool) {
	lower := strings.ToLower(lit)
	if !indexableLit(lower) {
		return false, false
	}
	terms, ok := ix.fields[field]
	if !ok {
		return false, false
	}
	key := field + "\x00" + lower
	ix.mu.Lock()
	set, ok := ix.memo[key]
	if !ok {
		// Substring-of-token matching: scan the (small) term dictionary
		// once per distinct literal, union the posting lists, memoize.
		set = make(map[uint32]bool)
		for term, post := range terms {
			if strings.Contains(term, lower) {
				for _, d := range post {
					if !ix.dead[d] {
						set[d] = true
					}
				}
			}
		}
		if len(ix.memo) >= memoCap {
			ix.memo = make(map[string]map[uint32]bool)
		}
		ix.memo[key] = set
	}
	hit = set[id]
	ix.mu.Unlock()
	ix.hits.Add(1)
	return hit, true
}

// docOracle adapts the index to relmodel.TextOracle for one document.
type docOracle struct {
	ix *textIndex
	id uint32
}

func (o docOracle) MatchContains(col, lit string) (bool, bool) {
	switch strings.ToLower(col) {
	case "text", "title":
		return o.ix.matchContains(strings.ToLower(col), o.id, lit)
	}
	return false, false
}

// byteReader is a tiny error-sticky varint reader for the catalog and
// index files.
type byteReader struct {
	b   []byte
	pos int
	err error
}

func (r *byteReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.err = fmt.Errorf("bad varint at %d", r.pos)
		return 0
	}
	r.pos += n
	return v
}

func (r *byteReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if uint64(len(r.b)-r.pos) < n {
		r.err = fmt.Errorf("string overruns buffer at %d", r.pos)
		return ""
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

func (r *byteReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.b) {
		r.err = fmt.Errorf("unexpected end at %d", r.pos)
		return 0
	}
	c := r.b[r.pos]
	r.pos++
	return c
}

func (r *byteReader) rest() int { return len(r.b) - r.pos }
