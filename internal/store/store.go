package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"net/url"
	"os"
	"path/filepath"
	"sync"

	"webdis/internal/htmlx"
	"webdis/internal/relmodel"
)

// Per-site store files under Dir(root, site).
const (
	heapFile    = "tuples.heap" // slotted pages of encoded tuples
	catalogFile = "catalog.bin" // url → (start page, slot, record count)
	idxFile     = "text.idx"    // inverted index over text/title
)

const catalogMagic = "WDSCAT1\n"

// Options configure a Build or Open.
type Options struct {
	// PoolPages caps the buffer pool (0 = DefaultPoolPages).
	PoolPages int
	// NoTextIndex skips building (Build) or loading (Open) the inverted
	// text index; contains-predicates then always full-scan.
	NoTextIndex bool
	// Counters receive the store's I/O and index bookkeeping.
	Counters Counters
	// OnDoc, when set, is called once per document ingested by Build
	// with its raw content size — the server books Database Constructor
	// metrics (DocsParsed/DocBytes) through it, so a reopened store
	// parses nothing and books nothing.
	OnDoc func(url string, rawBytes int)
}

// docEntry locates one document's records in the heap.
type docEntry struct {
	url  string
	page uint32
	slot uint16
	nrec uint32
}

// Store is an opened per-site store. DB is safe for concurrent use.
type Store struct {
	site   string
	f      *os.File
	pool   *pool
	npages uint32
	docs   []docEntry
	byURL  map[string]int
	ix     *textIndex // nil when absent or disabled
	ctr    Counters

	staleMu sync.RWMutex
	dirty   map[int]bool // doc id → invalidated by a web mutation
}

// Dir is the directory holding site's store files under root.
func Dir(root, site string) string {
	return filepath.Join(root, url.PathEscape(site))
}

// Build ingests the site's documents — parse, build the virtual
// relations, serialize every tuple into slotted pages, index the text —
// writes heap, catalog and index to a temporary directory, fsyncs, and
// atomically renames it into place before reopening it. A crashed build
// leaves at worst a stale temp directory, never a half-visible store; a
// concurrent identical build loses the rename race and adopts the
// winner's files.
func Build(root, site string, urls []string, get func(string) ([]byte, error), o Options) (*Store, error) {
	dir := Dir(root, site)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	tmp, err := os.MkdirTemp(root, url.PathEscape(site)+".build-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	hf, err := os.Create(filepath.Join(tmp, heapFile))
	if err != nil {
		return nil, err
	}
	pw := newPageWriter(hf)
	ib := newIndexBuilder()
	docs := make([]docEntry, 0, len(urls))
	for i, u := range urls {
		content, err := get(u)
		if err != nil {
			hf.Close()
			return nil, fmt.Errorf("store: build %s: %w", u, err)
		}
		doc, err := htmlx.Parse(u, content)
		if err != nil {
			hf.Close()
			return nil, fmt.Errorf("store: build %s: %w", u, err)
		}
		if o.OnDoc != nil {
			o.OnDoc(u, len(content))
		}
		db := relmodel.Build(doc)
		de := docEntry{url: u}
		add := func(kind byte, rel *relmodel.Relation) error {
			for _, t := range rel.Tuples {
				pg, sl, err := pw.append(relmodel.AppendTuple(nil, kind, t))
				if err != nil {
					return err
				}
				if de.nrec == 0 {
					de.page, de.slot = pg, sl
				}
				de.nrec++
			}
			return nil
		}
		if err := add(relmodel.KindDocument, db.Document); err == nil {
			err = add(relmodel.KindAnchor, db.Anchor)
			if err == nil {
				err = add(relmodel.KindRelInfon, db.RelInfon)
			}
		} else {
			hf.Close()
			return nil, err
		}
		docs = append(docs, de)
		if !o.NoTextIndex {
			ib.add(uint32(i), "text", doc.Text)
			ib.add(uint32(i), "title", doc.Title)
		}
	}
	npages, err := pw.finish()
	if err == nil {
		err = hf.Sync()
	}
	if cerr := hf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	if err := writeFileSync(filepath.Join(tmp, catalogFile), encodeCatalog(npages, !o.NoTextIndex, docs)); err != nil {
		return nil, err
	}
	if !o.NoTextIndex {
		if err := writeFileSync(filepath.Join(tmp, idxFile), ib.encode()); err != nil {
			return nil, err
		}
	}
	if err := syncDir(tmp); err != nil {
		return nil, err
	}
	// Replace any previous build (e.g. one that failed verification).
	os.RemoveAll(dir)
	if err := os.Rename(tmp, dir); err != nil {
		// A concurrent builder renamed first; its store is equivalent
		// (same site, same source). Open the winner.
		if st, oerr := Open(root, site, o); oerr == nil {
			return st, nil
		}
		return nil, err
	}
	syncDir(root)
	return Open(root, site, o)
}

// Open loads the catalog and text index, verifies every heap page's
// checksum (the torn-write scan — the whole point of checksums is to
// refuse a silently damaged store at open, not mid-query), and hooks up
// the buffer pool. ErrNotBuilt signals an absent store; ErrCorrupt and
// ErrTruncated a damaged one — the caller's recovery is Build.
func Open(root, site string, o Options) (*Store, error) {
	dir := Dir(root, site)
	cb, err := os.ReadFile(filepath.Join(dir, catalogFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: no store for %s under %s", ErrNotBuilt, site, root)
	}
	if err != nil {
		return nil, err
	}
	npages, hasIndex, docs, err := decodeCatalog(cb)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(dir, heapFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: heap file missing for %s", ErrNotBuilt, site)
	}
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if fi.Size() != int64(npages)*PageSize {
		f.Close()
		return nil, fmt.Errorf("%w: heap is %d bytes, catalog says %d pages", ErrTruncated, fi.Size(), npages)
	}
	if err := verifyHeap(f, npages); err != nil {
		f.Close()
		return nil, err
	}
	ctr := o.Counters.norm()
	s := &Store{
		site: site, f: f,
		pool:   newPool(f, npages, o.PoolPages, ctr),
		npages: npages,
		docs:   docs,
		byURL:  make(map[string]int, len(docs)),
		ctr:    ctr,
	}
	for i, d := range docs {
		s.byURL[d.url] = i
	}
	if hasIndex && !o.NoTextIndex {
		ixb, err := os.ReadFile(filepath.Join(dir, idxFile))
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("%w: text index unreadable: %v", ErrTruncated, err)
		}
		if s.ix, err = decodeTextIndex(ixb, ctr.IndexHits); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// verifyHeap checks every page checksum sequentially.
func verifyHeap(f *os.File, npages uint32) error {
	buf := make([]byte, PageSize)
	for pg := uint32(0); pg < npages; pg++ {
		if _, err := f.ReadAt(buf, int64(pg)*PageSize); err != nil {
			return fmt.Errorf("%w: page %d unreadable: %v", ErrTruncated, pg, err)
		}
		if err := verifyPage(buf); err != nil {
			return fmt.Errorf("page %d: %w", pg, err)
		}
	}
	return nil
}

// Docs is the number of stored documents.
func (s *Store) Docs() int { return len(s.docs) }

// Pages is the heap-file page count.
func (s *Store) Pages() uint32 { return s.npages }

// Indexed reports whether the text index is loaded.
func (s *Store) Indexed() bool { return s.ix != nil }

// Resident is the buffer pool's current frame count (tests reconcile it
// against reads minus evictions).
func (s *Store) Resident() int { return s.pool.resident() }

// Invalidate marks one document stale after a web mutation: DB returns
// ErrStale for it from now on (the server's recovery is a live
// read-through) and its text-index postings stop matching. Only the
// touched entry is invalidated — the heap, catalog and every other
// document's postings stay live, so there is no store rebuild. Returns
// false when the URL is not in this store (e.g. a freshly born page) or
// was already stale.
func (s *Store) Invalidate(u string) bool {
	i, ok := s.byURL[u]
	if !ok {
		return false
	}
	s.staleMu.Lock()
	if s.dirty == nil {
		s.dirty = make(map[int]bool)
	}
	was := s.dirty[i]
	s.dirty[i] = true
	s.staleMu.Unlock()
	if !was && s.ix != nil {
		s.ix.invalidate(uint32(i))
	}
	return !was
}

// Stale reports whether the document has been invalidated.
func (s *Store) Stale(u string) bool {
	i, ok := s.byURL[u]
	if !ok {
		return false
	}
	s.staleMu.RLock()
	defer s.staleMu.RUnlock()
	return s.dirty[i]
}

// DB assembles the virtual-relation database of one document from the
// heap — the persistent Database Constructor. The result is value-equal
// to relmodel.Build over the parsed document, plus the text-index oracle
// when the index is loaded.
func (s *Store) DB(u string) (*relmodel.DB, error) {
	i, ok := s.byURL[u]
	if !ok {
		return nil, fmt.Errorf("%w: site %s has no document %s", ErrUnknownDoc, s.site, u)
	}
	s.staleMu.RLock()
	stale := s.dirty[i]
	s.staleMu.RUnlock()
	if stale {
		return nil, fmt.Errorf("%w: %s at site %s", ErrStale, u, s.site)
	}
	de := s.docs[i]
	db := &relmodel.DB{
		Document: &relmodel.Relation{Name: relmodel.RelDocument, Cols: relmodel.Schemas[relmodel.RelDocument]},
		Anchor:   &relmodel.Relation{Name: relmodel.RelAnchor, Cols: relmodel.Schemas[relmodel.RelAnchor]},
		RelInfon: &relmodel.Relation{Name: relmodel.RelRelInfon, Cols: relmodel.Schemas[relmodel.RelRelInfon]},
	}
	rr := recReader{pool: s.pool, page: de.page, slot: int(de.slot)}
	for k := uint32(0); k < de.nrec; k++ {
		kind, t, err := rr.next()
		if err != nil {
			return nil, fmt.Errorf("store: %s record %d: %w", u, k, err)
		}
		switch kind {
		case relmodel.KindDocument:
			db.Document.Tuples = append(db.Document.Tuples, t)
		case relmodel.KindAnchor:
			db.Anchor.Tuples = append(db.Anchor.Tuples, t)
		case relmodel.KindRelInfon:
			db.RelInfon.Tuples = append(db.RelInfon.Tuples, t)
		}
	}
	if s.ix != nil {
		db.Text = docOracle{ix: s.ix, id: uint32(i)}
	}
	return db, nil
}

// Close releases the heap file. Outstanding DBs remain valid (their
// tuples are copies), but further DB calls will fail.
func (s *Store) Close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// recReader streams a document's records out of the heap through the
// buffer pool, following spanned-record overflow chains.
type recReader struct {
	pool *pool
	page uint32
	slot int
}

func (r *recReader) next() (byte, relmodel.Tuple, error) {
	fr, err := r.pool.get(r.page)
	if err != nil {
		return 0, nil, err
	}
	p := fr.buf
	if pageKind(p) != kindDataPage {
		r.pool.unpin(fr)
		return 0, nil, fmt.Errorf("%w: record cursor on non-data page %d", ErrCorrupt, r.page)
	}
	nslots := pageNSlots(p)
	off, length, spilled, err := pageSlot(p, r.slot)
	if err != nil {
		r.pool.unpin(fr)
		return 0, nil, err
	}
	if !spilled {
		// Decode straight out of the pinned page; the codec copies all
		// field bytes, so nothing aliases the frame after unpin.
		kind, t, n, err := relmodel.DecodeTuple(p[off : off+length])
		r.pool.unpin(fr)
		if err == nil && n != length {
			err = fmt.Errorf("%w: record slack in slot", ErrCorrupt)
		}
		if err != nil {
			return 0, nil, fmt.Errorf("page %d slot %d: %w", r.page, r.slot, err)
		}
		r.slot++
		if r.slot >= nslots {
			r.page, r.slot = r.page+1, 0
		}
		return kind, t, nil
	}
	// Spanned record: by construction the last slot of its data page;
	// collect the overflow chain and resume at the page after it.
	body := append(make([]byte, 0, 2*length), p[off:off+length]...)
	r.pool.unpin(fr)
	next := r.page + 1
	for {
		ofr, err := r.pool.get(next)
		if err != nil {
			return 0, nil, err
		}
		frag, more, err := overflowFrag(ofr.buf)
		if err != nil {
			r.pool.unpin(ofr)
			return 0, nil, fmt.Errorf("page %d: %w", next, err)
		}
		body = append(body, frag...)
		r.pool.unpin(ofr)
		next++
		if !more {
			break
		}
	}
	kind, t, n, err := relmodel.DecodeTuple(body)
	if err == nil && n != len(body) {
		err = fmt.Errorf("%w: spanned record slack", ErrCorrupt)
	}
	if err != nil {
		return 0, nil, fmt.Errorf("spanned record at page %d: %w", r.page, err)
	}
	r.page, r.slot = next, 0
	return kind, t, nil
}

// encodeCatalog renders the catalog file: magic, geometry, index flag,
// per-document locators, CRC32-C trailer.
func encodeCatalog(npages uint32, hasIndex bool, docs []docEntry) []byte {
	out := []byte(catalogMagic)
	out = binary.AppendUvarint(out, PageSize)
	out = binary.AppendUvarint(out, uint64(npages))
	if hasIndex {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = binary.AppendUvarint(out, uint64(len(docs)))
	for _, d := range docs {
		out = appendString(out, d.url)
		out = binary.AppendUvarint(out, uint64(d.page))
		out = binary.AppendUvarint(out, uint64(d.slot))
		out = binary.AppendUvarint(out, uint64(d.nrec))
	}
	crc := crc32.Checksum(out, castagnoli)
	return binary.LittleEndian.AppendUint32(out, crc)
}

func decodeCatalog(b []byte) (npages uint32, hasIndex bool, docs []docEntry, err error) {
	if len(b) < len(catalogMagic)+4 {
		return 0, false, nil, fmt.Errorf("%w: catalog too short", ErrTruncated)
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return 0, false, nil, fmt.Errorf("%w: catalog checksum mismatch", ErrCorrupt)
	}
	if string(body[:len(catalogMagic)]) != catalogMagic {
		return 0, false, nil, fmt.Errorf("%w: bad catalog magic", ErrCorrupt)
	}
	r := &byteReader{b: body, pos: len(catalogMagic)}
	if ps := r.uvarint(); r.err == nil && ps != PageSize {
		return 0, false, nil, fmt.Errorf("%w: catalog page size %d, want %d", ErrCorrupt, ps, PageSize)
	}
	np := r.uvarint()
	hasIndex = r.byte() == 1
	ndocs := r.uvarint()
	for i := uint64(0); i < ndocs && r.err == nil; i++ {
		d := docEntry{url: r.str()}
		d.page = uint32(r.uvarint())
		d.slot = uint16(r.uvarint())
		d.nrec = uint32(r.uvarint())
		docs = append(docs, d)
	}
	if r.err != nil {
		return 0, false, nil, fmt.Errorf("%w: catalog body: %v", ErrCorrupt, r.err)
	}
	return uint32(np), hasIndex, docs, nil
}

func writeFileSync(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = f.Write(b)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so renames and creates within it are
// durable (best-effort on platforms where directories reject Sync).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, io.EOF) {
		// Some filesystems refuse fsync on directories; that only costs
		// durability of the rename, never consistency.
		return nil
	}
	return nil
}
