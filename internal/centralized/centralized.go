// Package centralized implements the data-shipping baseline the WEBDIS
// paper argues against (Section 1): every document on the query's PRE
// frontier is downloaded from its home site to the user-site and the whole
// web-query is evaluated locally. It applies the same traversal semantics
// and the same duplicate-arrival rules as the distributed engine, so both
// compute identical result sets — the differential tests rely on this —
// while the traffic profile differs exactly the way the paper predicts:
// document bytes cross the network instead of query clones.
package centralized

import (
	"fmt"
	"time"

	"webdis/internal/client"
	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/nodeproc"
	"webdis/internal/pre"
	"webdis/internal/relmodel"
	"webdis/internal/webserver"
	"webdis/internal/wire"
)

// Options configure a centralized run. The zero value matches the
// distributed engine's defaults (subsumption dedup, per-query document
// cache).
type Options struct {
	// Dedup selects the frontier's duplicate-state rules; the zero value
	// means DedupSubsume unless DedupSet is true (mirrors server.Options).
	Dedup    nodeproc.DedupMode
	DedupSet bool
	// NoCache disables the per-query document cache, re-downloading a
	// document on every visit — the worst-case data-shipping profile.
	NoCache bool
	// MaxHops, when positive, bounds traversal depth (safety for
	// dedup-off runs on cyclic webs).
	MaxHops int
	// StrictDeadEnds mirrors server.Options.StrictDeadEnds.
	StrictDeadEnds bool
}

func (o Options) dedup() nodeproc.DedupMode {
	if !o.DedupSet && o.Dedup == nodeproc.DedupOff {
		return nodeproc.DedupSubsume
	}
	return o.Dedup
}

// Stats describes the work a centralized run performed.
type Stats struct {
	Fetches         int   // documents downloaded over the network
	CacheHits       int   // document loads served by the local cache
	BytesDownloaded int64 // payload bytes of downloaded documents
	Evaluations     int   // node-query evaluations (all at the user-site)
	DeadEnds        int
	DupDropped      int
	DupRewritten    int
	Duration        time.Duration
}

// Result is the outcome of a centralized run.
type Result struct {
	Tables []client.ResultTable
	Stats  Stats
}

// Run evaluates the web-query by data shipping: from names the user-site
// endpoint used for traffic attribution (documents are fetched from each
// site's webserver endpoint over tr).
func Run(tr netsim.Transport, from string, w *disql.WebQuery, opts Options) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	fetcher := webserver.NewFetcher(tr, from)
	log := nodeproc.NewLogTable(opts.dedup())
	qid := wire.QueryID{User: "centralized", Site: from, Num: 1}

	cache := make(map[string][]byte)
	var st Stats
	load := func(url string) ([]byte, error) {
		if !opts.NoCache {
			if content, ok := cache[url]; ok {
				st.CacheHits++
				return content, nil
			}
		}
		content, err := fetcher.Get(url)
		if err != nil {
			return nil, err
		}
		st.Fetches++
		st.BytesDownloaded += int64(len(content))
		if !opts.NoCache {
			cache[url] = content
		}
		return content, nil
	}

	var frontier []item
	p1 := w.Stages[0].PRE
	for _, node := range w.Start {
		frontier = append(frontier, item{node: node, rem: p1, stages: w.Stages, base: 0})
	}
	if w.StartTerm != "" {
		return nil, fmt.Errorf("centralized: index(%q) StartNodes must be resolved by the caller", w.StartTerm)
	}

	tables := make(map[int]*client.ResultTable)
	rowSeen := make(map[int]map[string]bool)
	addRows := func(base int, cols []string, rows [][]string) {
		rt := tables[base]
		if rt == nil {
			rt = &client.ResultTable{Stage: base, Cols: cols}
			tables[base] = rt
			rowSeen[base] = make(map[string]bool)
		}
		for _, row := range rows {
			key := fmt.Sprint(row)
			if rowSeen[base][key] {
				continue
			}
			rowSeen[base][key] = true
			rt.Rows = append(rt.Rows, row)
		}
	}

	for len(frontier) > 0 {
		it := frontier[0]
		frontier = frontier[1:]

		v := log.Check(it.node, qid, len(it.stages), it.rem, wire.EnvKey(it.env))
		switch v.Action {
		case nodeproc.Drop:
			st.DupDropped++
			continue
		case nodeproc.Rewrite:
			st.DupRewritten++
			it.rem = v.Rem
		}

		content, err := load(it.node)
		if err != nil {
			continue // floating link or unreachable site: skip, like the engine
		}
		db, err := nodeproc.BuildDB(it.node, content)
		if err != nil {
			continue
		}
		if ok := processAt(db, it.node, it.rem, it.stages, it.base, it.hops, it.env, opts, log, qid, &st, addRows, &frontier); !ok {
			continue
		}
	}
	st.Duration = time.Since(start)

	res := &Result{Stats: st}
	for base := 0; base < len(w.Stages); base++ {
		if t := tables[base]; t != nil {
			sortRows(t.Rows)
			res.Tables = append(res.Tables, *t)
		}
	}
	return res, nil
}

// item is one frontier entry of the breadth-first traversal: a node to
// visit in a given clone state.
type item struct {
	node   string
	rem    pre.Expr
	stages []disql.Stage
	base   int
	hops   int
	env    map[string]string
}

// processAt runs the evaluation chain for one node (arrival plus nullable
// stage advances), appending continuation targets to the frontier.
func processAt(db *relmodel.DB, node string, rem pre.Expr, stages []disql.Stage, base, hops int, env map[string]string, opts Options, log *nodeproc.LogTable, qid wire.QueryID, st *Stats, addRows func(int, []string, [][]string), frontier *[]item) bool {
	type workItem struct {
		rem    pre.Expr
		stages []disql.Stage
		base   int
		env    map[string]string
	}
	work := []workItem{{rem, stages, base, env}}
	virtual := false
	for len(work) > 0 {
		it := work[0]
		work = work[1:]
		if virtual {
			v := log.Check(node, qid, len(it.stages), it.rem, wire.EnvKey(it.env))
			switch v.Action {
			case nodeproc.Drop:
				st.DupDropped++
				continue
			case nodeproc.Rewrite:
				st.DupRewritten++
				it.rem = v.Rem
			}
		}
		virtual = true
		res, err := nodeproc.Step(db, node, it.rem, it.stages[0], len(it.stages) > 1, it.env)
		if err != nil {
			continue
		}
		if res.Evaluated {
			st.Evaluations++
			if res.DeadEnd {
				st.DeadEnds++
				if opts.StrictDeadEnds {
					continue
				}
			}
			if len(it.stages[0].Query.Select) > 0 && !res.Table.Empty() {
				addRows(it.base, res.Table.Cols, res.Table.Rows)
			}
		}
		if opts.MaxHops > 0 && hops >= opts.MaxHops {
			if res.Advance {
				work = append(work, workItem{it.stages[1].PRE, it.stages[1:], it.base + 1,
					nodeproc.ExtendEnv(it.env, it.stages[0], db)})
			}
			continue
		}
		for _, f := range res.Continue {
			for _, tgt := range f.Targets {
				*frontier = append(*frontier, item{tgt.URL, f.Rem, it.stages, it.base, hops + 1, it.env})
			}
		}
		if res.Advance {
			work = append(work, workItem{it.stages[1].PRE, it.stages[1:], it.base + 1,
				nodeproc.ExtendEnv(it.env, it.stages[0], db)})
		}
	}
	return true
}

func sortRows(rows [][]string) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && less(rows[j], rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func less(a, b []string) bool {
	for k := 0; k < len(a) && k < len(b); k++ {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return len(a) < len(b)
}
