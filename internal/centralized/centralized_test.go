package centralized

import (
	"strings"
	"testing"

	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/nodeproc"
	"webdis/internal/webgraph"
	"webdis/internal/webserver"
)

// fabric starts document hosts for every site of web.
func fabric(t *testing.T, web *webgraph.Web) *netsim.Network {
	t.Helper()
	n := netsim.New(netsim.Options{})
	for _, site := range web.Hosts() {
		h := webserver.NewHost(site, web)
		if err := h.Start(n); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(h.Stop)
	}
	return n
}

func TestCampusQueryCentralized(t *testing.T) {
	web := webgraph.Campus()
	n := fabric(t, web)
	w := disql.MustParse(webgraph.CampusDISQL)
	res, err := Run(n, "user/results", w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("tables = %+v", res.Tables)
	}
	if len(res.Tables[1].Rows) != len(webgraph.CampusConveners) {
		t.Errorf("q2 rows = %+v", res.Tables[1].Rows)
	}
	for _, row := range res.Tables[1].Rows {
		want := webgraph.CampusConveners[row[0]]
		if want == "" || !strings.Contains(row[1], want) {
			t.Errorf("row = %v", row)
		}
	}
	st := res.Stats
	// Data shipping: every visited document crossed the network once (the
	// cache absorbs revisits).
	if st.Fetches == 0 || st.BytesDownloaded == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Evaluations == 0 || st.DeadEnds == 0 {
		t.Errorf("stats = %+v", st)
	}
	// All document bytes flowed to the user-site.
	in := n.Stats().Snapshot().To("user/results")
	if in.Bytes < st.BytesDownloaded {
		t.Errorf("inbound %d < downloaded %d", in.Bytes, st.BytesDownloaded)
	}
}

func TestCentralizedDedupModes(t *testing.T) {
	web := webgraph.Figure5()
	n := fabric(t, web)
	w := disql.MustParse(webgraph.Figure5DISQL)

	def, err := Run(n, "a/results", w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if def.Stats.DupDropped != 2 {
		t.Errorf("default dedup dropped = %d, want 2 (arrivals d, e)", def.Stats.DupDropped)
	}
	off, err := Run(n, "b/results", w, Options{Dedup: nodeproc.DedupOff, DedupSet: true, MaxHops: 16})
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats.DupDropped != 0 || off.Stats.Evaluations <= def.Stats.Evaluations {
		t.Errorf("dedup-off stats = %+v vs %+v", off.Stats, def.Stats)
	}
	// Same answers either way.
	if len(off.Tables) != len(def.Tables) {
		t.Fatalf("tables differ")
	}
	for i := range off.Tables {
		if len(off.Tables[i].Rows) != len(def.Tables[i].Rows) {
			t.Errorf("stage %d rows differ: %v vs %v", i, off.Tables[i].Rows, def.Tables[i].Rows)
		}
	}
}

func TestCentralizedMaxHops(t *testing.T) {
	web := webgraph.Chain(20, 1, 2)
	n := fabric(t, web)
	w := disql.MustParse(`select d.url from document d such that "http://c0.example/p0.html" N|G* d`)
	res, err := Run(n, "u/results", w, Options{MaxHops: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 6 {
		t.Errorf("rows = %+v", res.Tables)
	}
}

func TestCentralizedInvalidQuery(t *testing.T) {
	n := netsim.New(netsim.Options{})
	if _, err := Run(n, "u", &disql.WebQuery{}, Options{}); err == nil {
		t.Fatal("invalid query should fail")
	}
}

func TestCentralizedStrictDeadEnds(t *testing.T) {
	web := webgraph.Campus()
	n := fabric(t, web)
	w := disql.MustParse(webgraph.CampusDISQL)
	res, err := Run(n, "u/results", w, Options{StrictDeadEnds: true})
	if err != nil {
		t.Fatal(err)
	}
	var q2 int
	for _, tbl := range res.Tables {
		if tbl.Stage == 1 {
			q2 = len(tbl.Rows)
		}
	}
	if q2 != 1 {
		t.Errorf("strict q2 rows = %d", q2)
	}
}
