package netsim

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// echoListener accepts connections and echoes every byte back.
func echoListener(t *testing.T, ln net.Listener) {
	t.Helper()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn)
			}()
		}
	}()
}

func TestFaultDropIsSenderObservable(t *testing.T) {
	n := New(Options{Faults: FaultPlan{Seed: 1, Drop: 1.0}})
	ln, err := n.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoListener(t, ln)
	conn, err := n.Dial("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello")); !errors.Is(err, ErrDropped) {
		t.Fatalf("Write err = %v, want ErrDropped", err)
	}
	tot := n.Stats().Snapshot().Total()
	if tot.Dropped != 1 || tot.Bytes != 0 {
		t.Errorf("dropped=%d bytes=%d, want 1 dropped and no bytes delivered", tot.Dropped, tot.Bytes)
	}
}

func TestFaultSeverDeliversPartialFrameThenEOF(t *testing.T) {
	n := New(Options{Faults: FaultPlan{Seed: 1, Sever: 1.0}})
	ln, err := n.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	conn, err := n.Dial("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("abcdefgh")); !errors.Is(err, ErrSevered) {
		t.Fatalf("Write err = %v, want ErrSevered", err)
	}
	srv := <-accepted
	got, _ := io.ReadAll(srv)
	if len(got) == 0 || len(got) >= 8 {
		t.Errorf("peer read %q, want a strict non-empty prefix of the frame", got)
	}
	// The connection is dead in both directions.
	if _, err := srv.Write([]byte("x")); err == nil {
		t.Error("peer Write succeeded on a severed connection")
	}
	if n.Stats().Snapshot().Total().Severed != 1 {
		t.Error("sever not counted")
	}
}

func TestFaultDownWindowIsTransient(t *testing.T) {
	n := New(Options{Faults: FaultPlan{
		Seed:    7,
		Windows: []DownWindow{{Endpoint: "site", From: 0, Until: 80 * time.Millisecond}},
	}})
	ln, err := n.Listen("site/query")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoListener(t, ln)
	// During the window: refused, both as destination and as source
	// (prefix matching covers the site's sub-endpoints).
	if _, err := n.Dial("user", "site/query"); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial during window: %v, want ErrRefused", err)
	}
	if _, err := n.Dial("site/query", "user"); !errors.Is(err, ErrRefused) {
		t.Fatalf("outbound dial during window: %v, want ErrRefused", err)
	}
	time.Sleep(100 * time.Millisecond)
	conn, err := n.Dial("user", "site/query")
	if err != nil {
		t.Fatalf("dial after window: %v", err)
	}
	conn.Close()
	if n.Stats().Snapshot().Total().Refused < 2 {
		t.Error("refused dials not counted")
	}
}

func TestFaultAsymmetricPartition(t *testing.T) {
	n := New(Options{Faults: FaultPlan{
		Partitions: []EdgeBlock{{From: "a.example", To: "b.example"}},
	}})
	for _, name := range []string{"a.example/query", "b.example/query"} {
		ln, err := n.Listen(name)
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		echoListener(t, ln)
	}
	if _, err := n.Dial("a.example/query", "b.example/query"); !errors.Is(err, ErrRefused) {
		t.Fatalf("a→b: %v, want ErrRefused (partitioned)", err)
	}
	conn, err := n.Dial("b.example/query", "a.example/query")
	if err != nil {
		t.Fatalf("b→a should be open (asymmetric): %v", err)
	}
	conn.Close()
}

func TestRuntimeBlockHeals(t *testing.T) {
	n := New(Options{})
	ln, err := n.Listen("b.example/query")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	echoListener(t, ln)
	n.Block("a.example", "b.example", true)
	if _, err := n.Dial("a.example/query", "b.example/query"); !errors.Is(err, ErrRefused) {
		t.Fatalf("blocked dial: %v, want ErrRefused", err)
	}
	n.Block("a.example", "b.example", false)
	conn, err := n.Dial("a.example/query", "b.example/query")
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	conn.Close()
}

// TestFaultScheduleIsSeeded replays the same plan twice and checks the
// drop/sever decision sequence matches frame for frame.
func TestFaultScheduleIsSeeded(t *testing.T) {
	run := func() []bool {
		n := New(Options{Faults: FaultPlan{Seed: 42, Drop: 0.3}})
		ln, err := n.Listen("b")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		echoListener(t, ln)
		conn, err := n.Dial("a", "b")
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		var fates []bool
		for i := 0; i < 64; i++ {
			_, err := conn.Write([]byte{byte(i)})
			fates = append(fates, err == nil)
		}
		return fates
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fate diverged at frame %d: %v vs %v", i, a[i], b[i])
		}
	}
}
