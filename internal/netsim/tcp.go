package netsim

import (
	"fmt"
	"net"
	"strings"
	"sync"
)

// TCPTransport implements Transport over real TCP sockets, mapping the
// engine's symbolic endpoint names to network addresses. It is what the
// webdisd/webdis commands use to run a genuine multi-process deployment,
// like the original Java system's site daemons listening on a common
// pre-specified port. Traffic is counted per edge just like the simulated
// fabric (attribution of inbound traffic uses the symbolic name announced
// by the dialer via the wire layer, so byte counts for TCP cover the
// dialer side only).
type TCPTransport struct {
	mu    sync.Mutex
	addrs map[string]string // endpoint name -> host:port
	down  map[string]bool
	stats *Stats
}

// NewTCP returns an empty TCP transport.
func NewTCP() *TCPTransport {
	return &TCPTransport{addrs: make(map[string]string), down: make(map[string]bool), stats: NewStats()}
}

// SetDown marks an endpoint as unreachable (true) or reachable (false),
// mirroring Network.SetDown: dials to or from a down endpoint fail with
// ErrRefused. The listener itself stays bound — this models a process
// that is unreachable, not deregistered — so parity with the in-process
// fabric holds for failure-injection tests over TCP.
func (t *TCPTransport) SetDown(name string, down bool) {
	t.mu.Lock()
	t.down[name] = down
	t.mu.Unlock()
}

// Stats returns the transport's traffic collector.
func (t *TCPTransport) Stats() *Stats { return t.stats }

// Healthy reports whether a Dial from from to to would currently pass
// the transport's down-marks, mirroring Network.Healthy for connection
// pools. It implements HealthChecker.
func (t *TCPTransport) Healthy(from, to string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return !t.down[from] && !t.down[to]
}

// Register maps an endpoint name to a TCP address, so that other processes
// can Dial it by name.
func (t *TCPTransport) Register(name, hostport string) {
	t.mu.Lock()
	t.addrs[name] = hostport
	t.mu.Unlock()
}

// Resolve returns the registered address of name.
func (t *TCPTransport) Resolve(name string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a, ok := t.addrs[name]
	return a, ok
}

// splitTCPName recognizes self-addressed endpoint names of the form
// "tcp://host:port/suffix", which resolve without registration. The
// WEBDIS client names its per-query result collector this way so that
// query servers in other processes can dial it directly — the paper's
// "IP address and port number sent along with the web-query".
func splitTCPName(name string) (string, bool) {
	const prefix = "tcp://"
	if !strings.HasPrefix(name, prefix) {
		return "", false
	}
	rest := name[len(prefix):]
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}

// Listen binds the named endpoint. Self-addressed tcp:// names bind their
// embedded address; registered names bind their registered address; any
// other name gets an ephemeral local port, which is then registered.
func (t *TCPTransport) Listen(name string) (net.Listener, error) {
	t.mu.Lock()
	hostport, ok := t.addrs[name]
	t.mu.Unlock()
	if !ok {
		if embedded, self := splitTCPName(name); self {
			hostport = embedded
		} else {
			hostport = "127.0.0.1:0"
		}
	}
	ln, err := net.Listen("tcp", hostport)
	if err != nil {
		return nil, fmt.Errorf("netsim: listen %s: %w", name, err)
	}
	t.Register(name, ln.Addr().String())
	return ln, nil
}

// ListenSelf binds an ephemeral port on the host embedded in base (a
// self-addressed "tcp://host:port" name) and returns the listener plus
// the self-addressed name remote processes can dial directly. It is the
// overflow path for clients that need several collector endpoints but
// have only one configured address — a long-lived watch's per-epoch
// re-derivation collectors, or concurrent queries from one process.
func (t *TCPTransport) ListenSelf(base, suffix string) (net.Listener, string, error) {
	embedded, ok := splitTCPName(base)
	if !ok {
		return nil, "", fmt.Errorf("netsim: %q is not a self-addressed tcp:// name", base)
	}
	host, _, err := net.SplitHostPort(embedded)
	if err != nil {
		return nil, "", fmt.Errorf("netsim: listen-self %s: %w", base, err)
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, "", fmt.Errorf("netsim: listen-self %s: %w", base, err)
	}
	name := "tcp://" + ln.Addr().String() + "/" + suffix
	t.Register(name, ln.Addr().String())
	return ln, name, nil
}

// Dial connects to the named endpoint.
func (t *TCPTransport) Dial(from, to string) (net.Conn, error) {
	t.mu.Lock()
	refused := t.down[from] || t.down[to]
	t.mu.Unlock()
	if refused {
		t.stats.AddRefused(from, to)
		return nil, fmt.Errorf("%w: %s -> %s (down)", ErrRefused, from, to)
	}
	addr, ok := t.Resolve(to)
	if !ok {
		if embedded, self := splitTCPName(to); self {
			addr = embedded
		} else {
			t.stats.AddRefused(from, to)
			return nil, fmt.Errorf("%w: %s -> %s (unregistered)", ErrRefused, from, to)
		}
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.stats.AddRefused(from, to)
		return nil, fmt.Errorf("%w: %s -> %s: %v", ErrRefused, from, to, err)
	}
	t.stats.AddDial(from, to)
	return &tcpConn{Conn: c, stats: t.stats, from: from, to: to}, nil
}

type tcpConn struct {
	net.Conn
	stats    *Stats
	from, to string
}

func (c *tcpConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.stats.AddBytes(c.from, c.to, n)
	return n, err
}

func (c *tcpConn) MarkMessage(kind string) {
	c.stats.AddMessage(c.from, c.to, kind)
}
