package netsim

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrDropped is returned by a faulty connection's Write when the fault
// schedule discards the frame. Nothing reaches the peer; the sender
// observes the loss and may retry. The fabric models message loss at send
// time (at-most-once delivery with sender notification): a frame is either
// delivered whole, discarded with an error, or truncated by a sever — it
// is never silently lost after a successful Write. Silent loss still
// arises at a higher level, from down-windows and severs that strike a
// site after it accepted clones but before it reported; the client's
// orphan-CHT reaper exists for exactly that case.
var ErrDropped = errors.New("netsim: message dropped by fault injection")

// ErrSevered is returned by Write when the fault schedule cuts the
// connection mid-frame: a partial prefix is delivered, then both
// directions close. The receiver sees a short frame and must discard it.
var ErrSevered = errors.New("netsim: connection severed by fault injection")

// DownWindow takes an endpoint down for an interval, then brings it back —
// a transient crash or reboot. From/Until are offsets from Network
// creation. The window matches the named endpoint and every endpoint under
// it ("site" matches "site/query" and "site/web"), so naming a site downs
// its whole host. While down, dials to and from the endpoint are refused.
type DownWindow struct {
	Endpoint    string
	From, Until time.Duration
}

// EdgeBlock is an asymmetric partition: dials from From to To are refused
// while the block is in force. The reverse direction is unaffected unless
// blocked separately. Names match by endpoint prefix like DownWindow.
type EdgeBlock struct {
	From, To string
}

// CrashWindow crashes one endpoint for an interval — a process kill, not
// a link fault. At From every established connection touching the
// endpoint is severed (both peers see the stream die, exactly as when a
// process exits mid-conversation), and until Until new dials to or from
// it are refused; at Until the endpoint is implicitly restarted (dials
// succeed again). Unlike DownWindow, which is typically aimed at a whole
// site, a crash names one replica endpoint ("site/query@1") to kill a
// single replica while its siblings and the site's document host keep
// serving. Matching is still by endpoint prefix, so naming a site crashes
// everything under it.
type CrashWindow struct {
	Endpoint    string
	From, Until time.Duration
}

// FaultPlan is a seeded, deterministic fault schedule for the fabric. The
// zero value injects nothing. Drop and Sever decisions are drawn from one
// rand stream seeded with Seed, so a schedule replays the same decision
// sequence (the interleaving across concurrent connections follows the
// goroutine schedule, as on a real network).
type FaultPlan struct {
	// Seed initializes the fault decision stream.
	Seed int64
	// Drop is the per-frame probability that a Write is discarded whole.
	Drop float64
	// Sever is the per-frame probability that a Write delivers only a
	// prefix and then kills the connection (crash mid-message).
	Sever float64
	// Windows lists transient endpoint down-times.
	Windows []DownWindow
	// Partitions lists asymmetric edge blocks, in force for the whole run.
	Partitions []EdgeBlock
	// Crashes lists endpoint-level crash/restart windows: established
	// connections are severed at the window's start, dials refused for
	// its duration. Determinism comes from the schedule itself (fixed
	// offsets), not the rand stream.
	Crashes []CrashWindow
}

// active reports whether the plan can ever inject anything.
func (f FaultPlan) active() bool {
	return f.Drop > 0 || f.Sever > 0 || len(f.Windows) > 0 ||
		len(f.Partitions) > 0 || len(f.Crashes) > 0
}

// faultState is the Network's runtime fault machinery.
type faultState struct {
	plan  FaultPlan
	start time.Time

	mu  sync.Mutex
	rng *rand.Rand
}

func newFaultState(plan FaultPlan) *faultState {
	return &faultState{
		plan:  plan,
		start: time.Now(),
		rng:   rand.New(rand.NewSource(plan.Seed)),
	}
}

// Matches reports whether an endpoint name falls under a pattern, the
// relation every fault window and SeverEndpoint call uses. Exported so
// layers that invent endpoint names (e.g. cluster replica endpoints) can
// assert they sit where intended in the fault hierarchy.
func Matches(pattern, name string) bool { return matches(pattern, name) }

// matches reports whether the endpoint name falls under the pattern:
// exact match or any sub-endpoint ("site" covers "site/query").
func matches(pattern, name string) bool {
	if pattern == name {
		return true
	}
	return len(name) > len(pattern) && name[:len(pattern)] == pattern && name[len(pattern)] == '/'
}

// refuses reports whether a dial from from to to must be refused by the
// schedule (an active down-window on either side, or a partition edge).
func (f *faultState) refuses(from, to string) bool {
	if len(f.plan.Windows) > 0 {
		now := time.Since(f.start)
		for _, w := range f.plan.Windows {
			if now < w.From || now >= w.Until {
				continue
			}
			if matches(w.Endpoint, from) || matches(w.Endpoint, to) {
				return true
			}
		}
	}
	if len(f.plan.Crashes) > 0 {
		now := time.Since(f.start)
		for _, w := range f.plan.Crashes {
			if now < w.From || now >= w.Until {
				continue
			}
			if matches(w.Endpoint, from) || matches(w.Endpoint, to) {
				return true
			}
		}
	}
	for _, p := range f.plan.Partitions {
		if matches(p.From, from) && matches(p.To, to) {
			return true
		}
	}
	return false
}

// writeFault classifies one Write under the schedule.
type writeFault int

const (
	writeOK writeFault = iota
	writeDrop
	writeSever
)

// next draws the fate of one frame from the seeded stream.
func (f *faultState) next() writeFault {
	if f.plan.Drop == 0 && f.plan.Sever == 0 {
		return writeOK
	}
	f.mu.Lock()
	v := f.rng.Float64()
	f.mu.Unlock()
	if v < f.plan.Drop {
		return writeDrop
	}
	if v < f.plan.Drop+f.plan.Sever {
		return writeSever
	}
	return writeOK
}
