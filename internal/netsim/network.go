package netsim

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Transport abstracts how WEBDIS components reach each other. Endpoint
// names are opaque strings (the reproduction uses "host/query" for query
// servers, "host/web" for document hosts, and "user/results" for the
// client's Result Collector).
type Transport interface {
	// Listen registers the named endpoint and returns its listener.
	Listen(name string) (net.Listener, error)
	// Dial opens a connection from the named caller to the named endpoint.
	Dial(from, to string) (net.Conn, error)
}

// ErrRefused is returned by Dial when the destination endpoint is not
// listening or has been failed — the signal WEBDIS's passive termination
// relies on.
var ErrRefused = errors.New("netsim: connection refused")

// Options configure the simulated fabric.
type Options struct {
	// Latency is the one-way propagation delay applied to each message.
	Latency time.Duration
	// BytesPerSecond is the link bandwidth; zero means unlimited.
	BytesPerSecond int64
	// Faults is the seeded fault schedule; the zero value injects nothing.
	Faults FaultPlan
	// Observer, when set, receives one callback per transport-level
	// event: kind is "dial", "refused", "frame-dropped" or "severed".
	// It runs inline on the dial/send path, so it must be cheap and safe
	// for concurrent use. The tracing subsystem hooks its network
	// journal here.
	Observer func(kind, from, to string)
}

// Network is an in-process transport fabric with per-edge instrumentation.
// It implements Transport. The zero value is not usable; construct with
// New.
type Network struct {
	opts   Options
	faults *faultState

	mu        sync.Mutex
	listeners map[string]*simListener
	down      map[string]bool
	blocked   map[Edge]bool
	conns     map[*simConn]struct{}
	stats     *Stats
}

// New returns an empty fabric with the given options.
func New(opts Options) *Network {
	n := &Network{
		opts:      opts,
		faults:    newFaultState(opts.Faults),
		listeners: make(map[string]*simListener),
		down:      make(map[string]bool),
		blocked:   make(map[Edge]bool),
		conns:     make(map[*simConn]struct{}),
		stats:     NewStats(),
	}
	// Arm the crash schedule: dial refusal during each window comes from
	// faultState.refuses; the sever of established connections at the
	// window's start is an explicit event.
	for _, cw := range opts.Faults.Crashes {
		if cw.Until <= cw.From {
			continue
		}
		ep := cw.Endpoint
		time.AfterFunc(cw.From, func() { n.SeverEndpoint(ep) })
	}
	return n
}

// Stats returns the fabric's traffic collector.
func (n *Network) Stats() *Stats { return n.stats }

// SetDown marks an endpoint as unreachable (true) or reachable (false):
// subsequent Dials to it fail with ErrRefused. Used for failure injection.
func (n *Network) SetDown(name string, down bool) {
	n.mu.Lock()
	n.down[name] = down
	n.mu.Unlock()
}

// Block installs (or lifts) an asymmetric partition at runtime: dials from
// from to to are refused while blocked. Both names match by endpoint
// prefix, so Block("a.example", "b.example", true) cuts every a→b edge.
func (n *Network) Block(from, to string, blocked bool) {
	n.mu.Lock()
	if blocked {
		n.blocked[Edge{from, to}] = true
	} else {
		delete(n.blocked, Edge{from, to})
	}
	n.mu.Unlock()
}

// edgeBlocked reports whether a runtime Block covers from→to. Callers hold
// n.mu.
func (n *Network) edgeBlocked(from, to string) bool {
	for e := range n.blocked {
		if matches(e.From, from) && matches(e.To, to) {
			return true
		}
	}
	return false
}

// SeverEndpoint cuts every established connection touching the named
// endpoint (matching by prefix like DownWindow, so a site name covers
// all its endpoints). Both peers of each connection see the stream die,
// exactly as when the endpoint's process crashes mid-conversation. It
// returns the number of connections cut. Dials are unaffected; pair
// with SetDown (or use Kill) to also refuse new traffic.
func (n *Network) SeverEndpoint(name string) int {
	n.mu.Lock()
	var hit []*simConn
	for c := range n.conns {
		if matches(name, c.from) || matches(name, c.to) {
			hit = append(hit, c)
		}
	}
	n.mu.Unlock()
	cut := 0
	for _, c := range hit {
		// A connection is two tracked ends; count and observe it once, on
		// the end dialing into the crashed endpoint (or out of it, for its
		// own outbound dials).
		if matches(name, c.to) {
			cut++
			n.stats.AddCrashed(c.from, c.to)
			n.observe("crashed", c.from, c.to)
		}
		c.crash()
	}
	return cut
}

// Kill crashes the named endpoint at runtime: established connections
// touching it are severed and new dials to or from it are refused until
// Revive. This is the chaos tests' replica-kill switch. Unlike the
// scheduled CrashWindow it matches the exact endpoint name only (the
// SetDown semantics), so Kill("site/query@1") takes down one replica.
func (n *Network) Kill(name string) {
	n.SetDown(name, true)
	n.SeverEndpoint(name)
}

// Revive undoes a Kill: dials to the endpoint succeed again (its
// listener, which never went away, resumes accepting).
func (n *Network) Revive(name string) {
	n.SetDown(name, false)
}

// track registers a live connection end for SeverEndpoint.
func (n *Network) track(c *simConn) {
	n.mu.Lock()
	n.conns[c] = struct{}{}
	n.mu.Unlock()
}

// untrack forgets a closed connection end.
func (n *Network) untrack(c *simConn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// Healthy reports whether a Dial from from to to would currently pass
// the fabric's administrative checks (SetDown, Block, scheduled
// down-windows and partitions). Connection pools use it to evict idle
// connections to peers that have since been failed, preserving the
// dial-time semantics of failure injection. It implements HealthChecker.
func (n *Network) Healthy(from, to string) bool {
	n.mu.Lock()
	bad := n.down[to] || n.down[from] || n.edgeBlocked(from, to)
	n.mu.Unlock()
	return !bad && !n.faults.refuses(from, to)
}

// Listen registers name on the fabric.
func (n *Network) Listen(name string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[name]; exists {
		return nil, fmt.Errorf("netsim: endpoint %q already listening", name)
	}
	l := &simListener{net: n, name: name}
	l.cond = sync.NewCond(&l.mu)
	n.listeners[name] = l
	return l, nil
}

// Dial connects from to to across the fabric. The returned connection
// applies the fabric's latency and bandwidth model and records traffic on
// the (from,to) and (to,from) edges.
func (n *Network) Dial(from, to string) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[to]
	if n.down[to] || n.down[from] || n.edgeBlocked(from, to) {
		ok = false
	}
	n.mu.Unlock()
	if ok && n.faults.refuses(from, to) {
		ok = false
	}
	if !ok {
		n.stats.AddRefused(from, to)
		n.observe("refused", from, to)
		return nil, fmt.Errorf("%w: %s -> %s", ErrRefused, from, to)
	}
	cq := newQueue()
	sq := newQueue()
	client := &simConn{
		read: cq, write: sq,
		local: addr(from), remote: addr(to),
		net: n, from: from, to: to,
	}
	server := &simConn{
		read: sq, write: cq,
		local: addr(to), remote: addr(from),
		net: n, from: to, to: from,
	}
	// Hand the server end to the listener. The pending queue is unbounded
	// (a slow accepter delays dialers' reads, it never refuses them) and
	// enqueueing checks the closed flag under the listener lock, so a
	// concurrent Close can never strand a connection.
	if !l.enqueue(server) {
		n.stats.AddRefused(from, to)
		n.observe("refused", from, to)
		return nil, fmt.Errorf("%w: %s -> %s", ErrRefused, from, to)
	}
	n.track(client)
	n.track(server)
	n.stats.AddDial(from, to)
	n.observe("dial", from, to)
	return client, nil
}

// observe forwards one transport-level event to the configured Observer.
func (n *Network) observe(kind, from, to string) {
	if n.opts.Observer != nil {
		n.opts.Observer(kind, from, to)
	}
}

type simListener struct {
	net  *Network
	name string

	mu      sync.Mutex
	cond    *sync.Cond
	pending []net.Conn
	closed  bool
}

// enqueue hands a freshly dialed connection to the listener, reporting
// false when the listener is closed.
func (l *simListener) enqueue(c net.Conn) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return false
	}
	l.pending = append(l.pending, c)
	l.cond.Signal()
	return true
}

func (l *simListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.pending) == 0 && !l.closed {
		l.cond.Wait()
	}
	if l.closed {
		return nil, net.ErrClosed
	}
	c := l.pending[0]
	l.pending = l.pending[1:]
	return c, nil
}

func (l *simListener) Close() error {
	l.net.mu.Lock()
	if l.net.listeners[l.name] == l {
		delete(l.net.listeners, l.name)
	}
	l.net.mu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	// Connections delivered but never accepted would otherwise leave
	// their dialers blocked forever; close them so the peer sees EOF.
	pending := l.pending
	l.pending = nil
	l.cond.Broadcast()
	l.mu.Unlock()
	for _, c := range pending {
		c.Close()
	}
	return nil
}

func (l *simListener) Addr() net.Addr { return addr(l.name) }

type addr string

func (a addr) Network() string { return "netsim" }
func (a addr) String() string  { return string(a) }

// queue is one direction of a simulated duplex connection: a list of byte
// chunks, each becoming readable at its delivery time.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	chunks []chunk
	buf    []byte // partially consumed head chunk
	closed bool
	// txEnd is when the sender's last transmission finishes; finite
	// bandwidth serializes transmissions.
	txEnd time.Time
}

type chunk struct {
	data  []byte
	ready time.Time
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(data []byte, opts Options) {
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	start := now
	if q.txEnd.After(start) {
		start = q.txEnd
	}
	if opts.BytesPerSecond > 0 {
		start = start.Add(time.Duration(int64(time.Second) * int64(len(data)) / opts.BytesPerSecond))
	}
	q.txEnd = start
	ready := start.Add(opts.Latency)
	cp := make([]byte, len(data))
	copy(cp, data)
	q.chunks = append(q.chunks, chunk{cp, ready})
	if ready.After(now) {
		time.AfterFunc(ready.Sub(now), q.cond.Broadcast)
	}
	q.cond.Broadcast()
}

func (q *queue) pop(p []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.buf) > 0 {
			n := copy(p, q.buf)
			q.buf = q.buf[n:]
			return n, nil
		}
		if len(q.chunks) > 0 {
			head := q.chunks[0]
			now := time.Now()
			if !head.ready.After(now) {
				q.buf = head.data
				q.chunks = q.chunks[1:]
				continue
			}
			// Not yet deliverable: the AfterFunc armed in push will wake us.
			q.cond.Wait()
			continue
		}
		if q.closed {
			return 0, errClosedPipe
		}
		q.cond.Wait()
	}
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// abort is close with crash semantics: chunks pushed but not yet
// delivered are discarded. Graceful close keeps them (a sender that
// closes after a successful write has still sent the bytes — the
// connection pool relies on that); a crashed process's socket buffers
// are simply gone.
func (q *queue) abort() {
	q.mu.Lock()
	q.closed = true
	q.chunks = nil
	q.buf = nil
	q.cond.Broadcast()
	q.mu.Unlock()
}

var errClosedPipe = errors.New("netsim: connection closed")

// simConn is one end of a simulated duplex connection.
type simConn struct {
	read, write   *queue
	local, remote addr
	net           *Network
	from, to      string
	closeOnce     sync.Once
}

func (c *simConn) Read(p []byte) (int, error) {
	n, err := c.read.pop(p)
	if err != nil {
		return n, io.EOF
	}
	return n, nil
}

func (c *simConn) Write(p []byte) (int, error) {
	c.write.mu.Lock()
	closed := c.write.closed
	c.write.mu.Unlock()
	if closed {
		return 0, errClosedPipe
	}
	switch c.net.faults.next() {
	case writeDrop:
		// The frame vanishes whole; the sender learns and may retry.
		c.net.stats.AddDropped(c.from, c.to)
		c.net.observe("frame-dropped", c.from, c.to)
		return 0, ErrDropped
	case writeSever:
		// Crash mid-message: a prefix travels, then the connection dies
		// in both directions. The receiver sees a short frame + EOF.
		cut := len(p) / 2
		if cut > 0 {
			c.net.stats.AddBytes(c.from, c.to, cut)
			c.write.push(p[:cut], c.net.opts)
		}
		c.net.stats.AddSevered(c.from, c.to)
		c.net.observe("severed", c.from, c.to)
		c.write.close()
		c.read.close()
		return 0, ErrSevered
	}
	c.net.stats.AddBytes(c.from, c.to, len(p))
	c.write.push(p, c.net.opts)
	return len(p), nil
}

// MarkMessage lets the wire layer attribute one framed message of the
// given kind to this connection's edge.
func (c *simConn) MarkMessage(kind string) {
	c.net.stats.AddMessage(c.from, c.to, kind)
}

func (c *simConn) Close() error {
	c.closeOnce.Do(func() {
		c.write.close()
		c.read.close()
		c.net.untrack(c)
	})
	return nil
}

// crash closes the connection discarding in-flight data in both
// directions — the process holding the other structures is gone.
func (c *simConn) crash() {
	c.closeOnce.Do(func() {
		c.write.abort()
		c.read.abort()
		c.net.untrack(c)
	})
}

func (c *simConn) LocalAddr() net.Addr                { return c.local }
func (c *simConn) RemoteAddr() net.Addr               { return c.remote }
func (c *simConn) SetDeadline(t time.Time) error      { return nil }
func (c *simConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *simConn) SetWriteDeadline(t time.Time) error { return nil }

// MessageMarker is implemented by instrumented connections; the wire layer
// uses it to count framed messages per edge.
type MessageMarker interface {
	MarkMessage(kind string)
}
