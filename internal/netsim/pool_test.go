package netsim

import (
	"net"
	"sync"
	"testing"
	"time"
)

// acceptAll starts a listener that accepts (and holds open) every
// incoming connection, returning a stop function.
func acceptAll(t *testing.T, tr Transport, name string) func() {
	t.Helper()
	ln, err := tr.Listen(name)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var conns []net.Conn
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
	}()
	return func() {
		ln.Close()
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}
}

func TestPoolReuse(t *testing.T) {
	n := New(Options{})
	defer acceptAll(t, n, "server")()

	p := NewPool(n, "client", PoolOptions{})
	c1, reused, err := p.Get("server")
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("first Get reported reuse")
	}
	p.Put("server", c1)
	if got := p.IdleCount(); got != 1 {
		t.Fatalf("IdleCount = %d, want 1", got)
	}
	c2, reused, err := p.Get("server")
	if err != nil {
		t.Fatal(err)
	}
	if !reused {
		t.Fatal("second Get did not reuse")
	}
	if c2 != c1 {
		t.Fatal("reuse returned a different connection")
	}
	if got := p.IdleCount(); got != 0 {
		t.Fatalf("IdleCount after take = %d, want 0", got)
	}
	c2.Close()
}

func TestPoolIdleTTL(t *testing.T) {
	n := New(Options{})
	defer acceptAll(t, n, "server")()

	p := NewPool(n, "client", PoolOptions{IdleTTL: time.Millisecond})
	c, _, err := p.Get("server")
	if err != nil {
		t.Fatal(err)
	}
	p.Put("server", c)
	time.Sleep(5 * time.Millisecond)
	c2, reused, err := p.Get("server")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if reused {
		t.Fatal("expired idle connection was reused")
	}
	if got := p.IdleCount(); got != 0 {
		t.Fatalf("IdleCount = %d, want 0 after TTL eviction", got)
	}
}

// TestPoolHealthCheck: a peer going down must evict its idle connections
// so the caller's dial observes the refusal — pooling must not let sends
// tunnel through a down-window.
func TestPoolHealthCheck(t *testing.T) {
	n := New(Options{})
	defer acceptAll(t, n, "server")()

	p := NewPool(n, "client", PoolOptions{})
	c, _, err := p.Get("server")
	if err != nil {
		t.Fatal(err)
	}
	p.Put("server", c)

	n.SetDown("server", true)
	if _, reused, err := p.Get("server"); err == nil || reused {
		t.Fatalf("Get to down peer: reused=%v err=%v, want dial refusal", reused, err)
	}
	if got := p.IdleCount(); got != 0 {
		t.Fatalf("IdleCount = %d, want 0 after health eviction", got)
	}

	n.SetDown("server", false)
	c2, reused, err := p.Get("server")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if reused {
		t.Fatal("reuse reported after eviction emptied the pool")
	}
}

func TestPoolPerPeerCap(t *testing.T) {
	n := New(Options{})
	defer acceptAll(t, n, "server")()

	p := NewPool(n, "client", PoolOptions{MaxIdlePerPeer: 2})
	var conns []net.Conn
	for i := 0; i < 3; i++ {
		c, _, err := p.Get("server")
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	for _, c := range conns {
		p.Put("server", c)
	}
	if got := p.IdleCount(); got != 2 {
		t.Fatalf("IdleCount = %d, want per-peer cap 2", got)
	}
}

// TestPoolGlobalEviction: at the global cap the oldest idle connection
// anywhere is evicted, so a newly idle connection always finds room.
func TestPoolGlobalEviction(t *testing.T) {
	n := New(Options{})
	defer acceptAll(t, n, "a")()
	defer acceptAll(t, n, "b")()
	defer acceptAll(t, n, "c")()

	p := NewPool(n, "client", PoolOptions{MaxIdle: 2})
	for _, peer := range []string{"a", "b", "c"} {
		c, _, err := p.Get(peer)
		if err != nil {
			t.Fatal(err)
		}
		p.Put(peer, c)
		time.Sleep(time.Millisecond) // distinct idle timestamps
	}
	if got := p.IdleCount(); got != 2 {
		t.Fatalf("IdleCount = %d, want global cap 2", got)
	}
	// "a" went idle first and must have been the eviction victim.
	ca, reused, err := p.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	ca.Close()
	if reused {
		t.Fatal("oldest idle connection survived global eviction")
	}
	cc, reused, err := p.Get("c")
	if err != nil || !reused {
		t.Fatalf("newest idle connection gone: reused=%v err=%v", reused, err)
	}
	cc.Close()
}

func TestPoolClose(t *testing.T) {
	n := New(Options{})
	defer acceptAll(t, n, "server")()

	p := NewPool(n, "client", PoolOptions{})
	c, _, err := p.Get("server")
	if err != nil {
		t.Fatal(err)
	}
	p.Put("server", c)
	p.Close()
	if got := p.IdleCount(); got != 0 {
		t.Fatalf("IdleCount = %d after Close", got)
	}
	// Get degrades to plain dialing on a closed pool.
	c2, reused, err := p.Get("server")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if reused {
		t.Fatal("closed pool reused a connection")
	}
	p.Put("server", c2) // must close, not retain
	if got := p.IdleCount(); got != 0 {
		t.Fatalf("IdleCount = %d, want 0 on closed pool", got)
	}
}

// unhealthyConn wraps a connection with a failing ConnHealth answer —
// the shape of a wire session poisoned by a mid-frame error.
type unhealthyConn struct {
	net.Conn
	closed bool
}

func (u *unhealthyConn) Healthy() bool { return false }
func (u *unhealthyConn) Close() error  { u.closed = true; return u.Conn.Close() }

// TestPoolPutEvictsUnhealthySession: a connection whose session reports
// unhealthy (e.g. poisoned by a torn frame) must be closed on Put, never
// re-pooled for another sender.
func TestPoolPutEvictsUnhealthySession(t *testing.T) {
	n := New(Options{})
	defer acceptAll(t, n, "server")()

	p := NewPool(n, "client", PoolOptions{})
	raw, err := n.Dial("client", "server")
	if err != nil {
		t.Fatal(err)
	}
	bad := &unhealthyConn{Conn: raw}
	p.Put("server", bad)
	if !bad.closed {
		t.Error("unhealthy session not closed on Put")
	}
	if got := p.IdleCount(); got != 0 {
		t.Errorf("IdleCount = %d, want 0: poisoned session was pooled", got)
	}
}
