package netsim

import (
	"errors"
	"testing"
	"time"
)

func TestCrashWindowSeversAndRefuses(t *testing.T) {
	n := New(Options{Faults: FaultPlan{
		Seed:    7,
		Crashes: []CrashWindow{{Endpoint: "site", From: 30 * time.Millisecond, Until: 150 * time.Millisecond}},
	}})
	stop := acceptAll(t, n, "site/query")
	defer stop()

	// Established before the crash: the connection must sever when the
	// window opens, not linger until the next write.
	conn, err := n.Dial("user", "site/query")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	readErr := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := conn.Read(buf)
		readErr <- err
	}()
	select {
	case err := <-readErr:
		if err == nil {
			t.Fatal("read returned nil error after crash")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("established connection survived the crash window")
	}

	// During the window new dials are refused — the process is gone, and
	// the prefix covers every replica endpoint of the site.
	if _, err := n.Dial("user", "site/query"); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial during crash: %v, want ErrRefused", err)
	}

	// After Until the process has restarted: dials succeed again.
	time.Sleep(160 * time.Millisecond)
	conn2, err := n.Dial("user", "site/query")
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
	conn2.Close()

	if n.Stats().Snapshot().Total().Crashed < 1 {
		t.Error("severed connection not counted as crashed")
	}
}

func TestKillReviveRuntime(t *testing.T) {
	n := New(Options{})
	stopA := acceptAll(t, n, "site/query")
	defer stopA()
	stopB := acceptAll(t, n, "site/query@1")
	defer stopB()

	conn, err := n.Dial("user", "site/query@1")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	n.Kill("site/query@1")
	// The established connection is gone...
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 1)
		_, err := conn.Read(buf)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read survived Kill")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Kill did not sever the established connection")
	}
	// ...new dials to AND from the corpse are refused...
	if _, err := n.Dial("user", "site/query@1"); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial to killed replica: %v, want ErrRefused", err)
	}
	if _, err := n.Dial("site/query@1", "user"); !errors.Is(err, ErrRefused) {
		t.Fatalf("dial from killed replica: %v, want ErrRefused", err)
	}
	// ...but the sibling replica on the same site is untouched.
	c2, err := n.Dial("user", "site/query")
	if err != nil {
		t.Fatalf("sibling replica affected by Kill: %v", err)
	}
	c2.Close()

	n.Revive("site/query@1")
	c3, err := n.Dial("user", "site/query@1")
	if err != nil {
		t.Fatalf("dial after Revive: %v", err)
	}
	c3.Close()
}

// TestKillDropsInFlightFrames pins the crash semantics of a sever: a
// frame written but not yet delivered (it is still inside the fabric's
// latency window) dies with the endpoint. Graceful Close keeps draining
// such frames — only a crash discards them.
func TestKillDropsInFlightFrames(t *testing.T) {
	n := New(Options{Latency: 50 * time.Millisecond})
	stop := acceptAll(t, n, "site/query@1")
	defer stop()

	conn, err := n.Dial("site/query@1", "user")
	if err == nil {
		conn.Close()
		t.Fatal("dial to unlistened endpoint succeeded")
	}

	ln, err := n.Listen("user")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			got <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 1)
		_, err = c.Read(buf)
		got <- err
	}()

	out, err := n.Dial("site/query@1", "user")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if _, err := out.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	n.Kill("site/query@1") // the byte is still in the latency window

	select {
	case err := <-got:
		if err == nil {
			t.Fatal("in-flight frame survived the crash")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("receiver never unblocked after the crash")
	}
}

func TestPoolEvictPeer(t *testing.T) {
	n := New(Options{})
	stop := acceptAll(t, n, "site/query@1")
	defer stop()

	p := NewPool(n, "user", PoolOptions{})
	defer p.Close()
	conn, reused, err := p.Get("site/query@1")
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("first Get reported reused")
	}
	p.Put("site/query@1", conn)

	if evicted := p.EvictPeer("site/query@1"); evicted != 1 {
		t.Fatalf("EvictPeer = %d, want 1", evicted)
	}
	// The idle connection is gone: the next Get must dial fresh.
	conn2, reused, err := p.Get("site/query@1")
	if err != nil {
		t.Fatal(err)
	}
	if reused {
		t.Fatal("Get after EvictPeer reused an evicted connection")
	}
	p.Put("site/query@1", conn2)
	if p.EvictPeer("nowhere/query") != 0 {
		t.Fatal("EvictPeer of unknown peer evicted something")
	}
}
