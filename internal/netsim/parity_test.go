package netsim

import (
	"errors"
	"io"
	"testing"
	"time"
)

// downTransport is the failure-injection surface the engine's tests rely
// on; both fabrics must provide it with the same semantics.
type downTransport interface {
	Transport
	SetDown(name string, down bool)
}

// TestTransportParity runs the same failure scenarios against the
// in-process fabric and the real TCP transport: dials to unknown or down
// endpoints are refused promptly with ErrRefused, SetDown is reversible,
// and a connection cut mid-frame surfaces as a read error, never a hang.
func TestTransportParity(t *testing.T) {
	fabrics := []struct {
		name string
		mk   func() downTransport
	}{
		{"pipe", func() downTransport { return New(Options{}) }},
		{"tcp", func() downTransport { return NewTCP() }},
	}
	for _, fab := range fabrics {
		fab := fab
		t.Run(fab.name, func(t *testing.T) {
			tr := fab.mk()

			t.Run("unknown endpoint refused", func(t *testing.T) {
				done := make(chan error, 1)
				go func() {
					_, err := tr.Dial("user", "nobody.example/query")
					done <- err
				}()
				select {
				case err := <-done:
					if !errors.Is(err, ErrRefused) {
						t.Fatalf("dial unknown: %v, want ErrRefused", err)
					}
				case <-time.After(5 * time.Second):
					t.Fatal("dial to unknown endpoint hung")
				}
			})

			ln, err := tr.Listen("alpha.example/query")
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()

			t.Run("roundtrip", func(t *testing.T) {
				go func() {
					c, err := ln.Accept()
					if err != nil {
						return
					}
					defer c.Close()
					io.Copy(c, c)
				}()
				conn, err := tr.Dial("user", "alpha.example/query")
				if err != nil {
					t.Fatal(err)
				}
				defer conn.Close()
				if _, err := conn.Write([]byte("ping")); err != nil {
					t.Fatal(err)
				}
				buf := make([]byte, 4)
				if _, err := io.ReadFull(conn, buf); err != nil || string(buf) != "ping" {
					t.Fatalf("echo = %q, %v", buf, err)
				}
			})

			t.Run("setdown and recover", func(t *testing.T) {
				tr.SetDown("alpha.example/query", true)
				if _, err := tr.Dial("user", "alpha.example/query"); !errors.Is(err, ErrRefused) {
					t.Fatalf("dial to down endpoint: %v, want ErrRefused", err)
				}
				// The source being down refuses outbound dials too.
				tr.SetDown("user", true)
				tr.SetDown("alpha.example/query", false)
				if _, err := tr.Dial("user", "alpha.example/query"); !errors.Is(err, ErrRefused) {
					t.Fatalf("dial from down endpoint: %v, want ErrRefused", err)
				}
				tr.SetDown("user", false)
				go func() {
					if c, err := ln.Accept(); err == nil {
						c.Close()
					}
				}()
				conn, err := tr.Dial("user", "alpha.example/query")
				if err != nil {
					t.Fatalf("dial after recovery: %v", err)
				}
				conn.Close()
			})

			t.Run("mid-frame cut is a read error", func(t *testing.T) {
				go func() {
					c, err := ln.Accept()
					if err != nil {
						return
					}
					// Two bytes of a four-byte length prefix, then gone —
					// a process crashing mid-message.
					c.Write([]byte{0x00, 0x00})
					c.Close()
				}()
				conn, err := tr.Dial("user", "alpha.example/query")
				if err != nil {
					t.Fatal(err)
				}
				defer conn.Close()
				type res struct {
					n   int
					err error
				}
				done := make(chan res, 1)
				go func() {
					buf := make([]byte, 4)
					n, err := io.ReadFull(conn, buf)
					done <- res{n, err}
				}()
				select {
				case r := <-done:
					if r.err == nil {
						t.Fatalf("short frame read succeeded (%d bytes), want error", r.n)
					}
				case <-time.After(5 * time.Second):
					t.Fatal("read of a severed frame hung")
				}
			})

			t.Run("closed listener refused", func(t *testing.T) {
				ln2, err := tr.Listen("beta.example/query")
				if err != nil {
					t.Fatal(err)
				}
				ln2.Close()
				done := make(chan error, 1)
				go func() {
					c, err := tr.Dial("user", "beta.example/query")
					if err == nil {
						c.Close()
					}
					done <- err
				}()
				select {
				case err := <-done:
					if !errors.Is(err, ErrRefused) {
						t.Fatalf("dial to closed listener: %v, want ErrRefused", err)
					}
				case <-time.After(5 * time.Second):
					t.Fatal("dial to closed listener hung")
				}
			})
		})
	}
}
