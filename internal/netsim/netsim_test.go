package netsim

import (
	"errors"
	"io"
	"sync"
	"testing"
	"time"
)

func TestDialAndEcho(t *testing.T) {
	n := New(Options{})
	ln, err := n.Listen("server")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			t.Error(err)
			return
		}
		c.Write(buf)
	}()
	c, err := n.Dial("client", "server")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("echo = %q", buf)
	}
	<-done

	sn := n.Stats().Snapshot()
	if got := sn.Edges[Edge{"client", "server"}].Bytes; got != 5 {
		t.Errorf("client->server bytes = %d", got)
	}
	if got := sn.Edges[Edge{"server", "client"}].Bytes; got != 5 {
		t.Errorf("server->client bytes = %d", got)
	}
	if got := sn.Edges[Edge{"client", "server"}].Dials; got != 1 {
		t.Errorf("dials = %d", got)
	}
}

func TestDialRefusedWhenNotListening(t *testing.T) {
	n := New(Options{})
	if _, err := n.Dial("a", "b"); !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v", err)
	}
}

func TestDialRefusedAfterClose(t *testing.T) {
	n := New(Options{})
	ln, _ := n.Listen("server")
	ln.Close()
	if _, err := n.Dial("a", "server"); !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v", err)
	}
	// Closing twice is fine; Accept after close fails.
	ln.Close()
	if _, err := ln.Accept(); err == nil {
		t.Fatal("Accept after Close should fail")
	}
}

func TestPendingConnClosedOnListenerClose(t *testing.T) {
	n := New(Options{})
	ln, _ := n.Listen("server")
	c, err := n.Dial("a", "server")
	if err != nil {
		t.Fatal(err)
	}
	ln.Close() // never accepted
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err != io.EOF {
		t.Fatalf("Read = %v, want EOF", err)
	}
}

func TestSetDown(t *testing.T) {
	n := New(Options{})
	n.Listen("server")
	n.SetDown("server", true)
	if _, err := n.Dial("a", "server"); !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v", err)
	}
	n.SetDown("server", false)
	if _, err := n.Dial("a", "server"); err != nil {
		t.Fatalf("err = %v", err)
	}
}

func TestDuplicateListen(t *testing.T) {
	n := New(Options{})
	if _, err := n.Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("x"); err == nil {
		t.Fatal("duplicate listen should fail")
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	const lat = 30 * time.Millisecond
	n := New(Options{Latency: lat})
	ln, _ := n.Listen("server")
	recv := make(chan time.Time, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 4)
		io.ReadFull(c, buf)
		recv <- time.Now()
	}()
	c, err := n.Dial("a", "server")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	c.Write([]byte("ping"))
	got := <-recv
	if d := got.Sub(start); d < lat {
		t.Errorf("delivered after %v, want >= %v", d, lat)
	}
}

func TestBandwidthSerializesTransmissions(t *testing.T) {
	// 1000 B/s: two 50-byte writes take >= 100ms to fully deliver.
	n := New(Options{BytesPerSecond: 1000})
	ln, _ := n.Listen("server")
	recv := make(chan time.Time, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 100)
		io.ReadFull(c, buf)
		recv <- time.Now()
	}()
	c, err := n.Dial("a", "server")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	payload := make([]byte, 50)
	c.Write(payload)
	c.Write(payload)
	got := <-recv
	if d := got.Sub(start); d < 90*time.Millisecond {
		t.Errorf("delivered after %v, want >= ~100ms", d)
	}
}

func TestMarkMessage(t *testing.T) {
	n := New(Options{})
	ln, _ := n.Listen("server")
	go func() {
		c, _ := ln.Accept()
		if c != nil {
			defer c.Close()
			io.Copy(io.Discard, c)
		}
	}()
	c, _ := n.Dial("a", "server")
	mm, ok := c.(MessageMarker)
	if !ok {
		t.Fatal("simConn should implement MessageMarker")
	}
	mm.MarkMessage("clone")
	mm.MarkMessage("clone")
	mm.MarkMessage("result")
	sn := n.Stats().Snapshot()
	cnt := sn.Edges[Edge{"a", "server"}]
	if cnt.Messages != 3 || cnt.ByKind["clone"] != 2 || cnt.ByKind["result"] != 1 {
		t.Errorf("counters = %+v", cnt)
	}
}

func TestSnapshotAggregates(t *testing.T) {
	s := NewStats()
	s.AddBytes("a", "b", 10)
	s.AddBytes("a", "c", 20)
	s.AddBytes("b", "c", 5)
	s.AddMessage("a", "b", "clone")
	sn := s.Snapshot()
	if tot := sn.Total(); tot.Bytes != 35 || tot.Messages != 1 {
		t.Errorf("total = %+v", tot)
	}
	if in := sn.To("c"); in.Bytes != 25 {
		t.Errorf("to c = %+v", in)
	}
	if out := sn.From("a"); out.Bytes != 30 {
		t.Errorf("from a = %+v", out)
	}
	edges := sn.SortedEdges()
	if len(edges) != 3 || edges[0] != (Edge{"a", "b"}) {
		t.Errorf("edges = %v", edges)
	}
	// The snapshot is a copy: further mutation does not affect it.
	s.AddBytes("a", "b", 100)
	if sn.Edges[Edge{"a", "b"}].Bytes != 10 {
		t.Error("snapshot mutated by later traffic")
	}
	s.Reset()
	if len(s.Snapshot().Edges) != 0 {
		t.Error("Reset did not clear stats")
	}
}

func TestConcurrentDials(t *testing.T) {
	n := New(Options{})
	ln, _ := n.Listen("server")
	var wg sync.WaitGroup
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				buf := make([]byte, 1)
				io.ReadFull(c, buf)
				c.Write(buf)
			}()
		}
	}()
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := n.Dial("client", "server")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			c.Write([]byte("x"))
			buf := make([]byte, 1)
			if _, err := io.ReadFull(c, buf); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	ln.Close()
	sn := n.Stats().Snapshot()
	if got := sn.Edges[Edge{"client", "server"}].Dials; got != 50 {
		t.Errorf("dials = %d", got)
	}
}

func TestTCPTransport(t *testing.T) {
	tr := NewTCP()
	ln, err := tr.Listen("site/query")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 4)
		io.ReadFull(c, buf)
		c.Write(buf)
	}()
	if _, ok := tr.Resolve("site/query"); !ok {
		t.Fatal("Listen should register the endpoint")
	}
	c, err := tr.Dial("user", "site/query")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if mm, ok := c.(MessageMarker); ok {
		mm.MarkMessage("clone")
	} else {
		t.Error("tcpConn should implement MessageMarker")
	}
	c.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	sn := tr.Stats().Snapshot()
	cnt := sn.Edges[Edge{"user", "site/query"}]
	if cnt.Bytes != 4 || cnt.Messages != 1 || cnt.Dials != 1 {
		t.Errorf("counters = %+v", cnt)
	}
	if _, err := tr.Dial("user", "nowhere"); !errors.Is(err, ErrRefused) {
		t.Errorf("err = %v", err)
	}
}
