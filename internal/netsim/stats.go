// Package netsim provides the transport substrate of the WEBDIS
// reproduction: named endpoints connected either by an instrumented
// in-process fabric (Network) or by real TCP sockets (TCPTransport). All
// engine components speak to the Transport interface, so the same client
// and server code runs single-process for deterministic experiments and
// multi-process over sockets, as the original Java system did.
//
// The in-process fabric counts every byte and message per directed edge
// and can inject per-message latency, finite bandwidth and endpoint
// failures. The paper's evaluation claims are about network traffic and
// response time; this instrumentation is what regenerates them.
package netsim

import (
	"sort"
	"sync"
)

// Edge is a directed (from, to) endpoint pair.
type Edge struct {
	From, To string
}

// Counters accumulate traffic along one edge.
type Counters struct {
	Bytes    int64
	Messages int64            // frames marked by the wire layer
	Dials    int64            // connections opened
	Dropped  int64            // frames discarded by fault injection
	Severed  int64            // connections cut mid-frame by fault injection
	Refused  int64            // dials refused (down, blocked, or no listener)
	Crashed  int64            // connections cut by an endpoint crash
	ByKind   map[string]int64 // message count per wire kind
}

func (c *Counters) clone() *Counters {
	out := &Counters{Bytes: c.Bytes, Messages: c.Messages, Dials: c.Dials,
		Dropped: c.Dropped, Severed: c.Severed, Refused: c.Refused,
		Crashed: c.Crashed,
		ByKind:  make(map[string]int64, len(c.ByKind))}
	for k, v := range c.ByKind {
		out.ByKind[k] = v
	}
	return out
}

// Stats collects per-edge traffic counters. It is safe for concurrent use.
type Stats struct {
	mu    sync.Mutex
	edges map[Edge]*Counters
}

// NewStats returns an empty collector.
func NewStats() *Stats {
	return &Stats{edges: make(map[Edge]*Counters)}
}

func (s *Stats) counters(e Edge) *Counters {
	c, ok := s.edges[e]
	if !ok {
		c = &Counters{ByKind: make(map[string]int64)}
		s.edges[e] = c
	}
	return c
}

// AddBytes records n payload bytes sent from from to to.
func (s *Stats) AddBytes(from, to string, n int) {
	s.mu.Lock()
	s.counters(Edge{from, to}).Bytes += int64(n)
	s.mu.Unlock()
}

// AddMessage records one wire message of the given kind on the edge.
func (s *Stats) AddMessage(from, to, kind string) {
	s.mu.Lock()
	c := s.counters(Edge{from, to})
	c.Messages++
	c.ByKind[kind]++
	s.mu.Unlock()
}

// AddDial records one opened connection on the edge.
func (s *Stats) AddDial(from, to string) {
	s.mu.Lock()
	s.counters(Edge{from, to}).Dials++
	s.mu.Unlock()
}

// AddDropped records one frame discarded by fault injection on the edge.
func (s *Stats) AddDropped(from, to string) {
	s.mu.Lock()
	s.counters(Edge{from, to}).Dropped++
	s.mu.Unlock()
}

// AddSevered records one connection cut mid-frame on the edge.
func (s *Stats) AddSevered(from, to string) {
	s.mu.Lock()
	s.counters(Edge{from, to}).Severed++
	s.mu.Unlock()
}

// AddCrashed records one established connection cut by an endpoint
// crash (CrashWindow or Kill) on the edge.
func (s *Stats) AddCrashed(from, to string) {
	s.mu.Lock()
	s.counters(Edge{from, to}).Crashed++
	s.mu.Unlock()
}

// AddRefused records one refused dial on the edge.
func (s *Stats) AddRefused(from, to string) {
	s.mu.Lock()
	s.counters(Edge{from, to}).Refused++
	s.mu.Unlock()
}

// Reset clears all counters.
func (s *Stats) Reset() {
	s.mu.Lock()
	s.edges = make(map[Edge]*Counters)
	s.mu.Unlock()
}

// Snapshot is a consistent copy of the collected counters.
type Snapshot struct {
	Edges map[Edge]*Counters
}

// Snapshot returns a deep copy of the current counters.
func (s *Stats) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Snapshot{Edges: make(map[Edge]*Counters, len(s.edges))}
	for e, c := range s.edges {
		out.Edges[e] = c.clone()
	}
	return out
}

// add accumulates c into t.
func (t *Counters) add(c *Counters) {
	t.Bytes += c.Bytes
	t.Messages += c.Messages
	t.Dials += c.Dials
	t.Dropped += c.Dropped
	t.Severed += c.Severed
	t.Refused += c.Refused
	t.Crashed += c.Crashed
	for k, v := range c.ByKind {
		t.ByKind[k] += v
	}
}

// Total returns the aggregate counters across all edges.
func (sn Snapshot) Total() Counters {
	t := Counters{ByKind: make(map[string]int64)}
	for _, c := range sn.Edges {
		t.add(c)
	}
	return t
}

// To returns aggregate counters for traffic into the named endpoint.
func (sn Snapshot) To(name string) Counters {
	t := Counters{ByKind: make(map[string]int64)}
	for e, c := range sn.Edges {
		if e.To != name {
			continue
		}
		t.add(c)
	}
	return t
}

// From returns aggregate counters for traffic out of the named endpoint.
func (sn Snapshot) From(name string) Counters {
	t := Counters{ByKind: make(map[string]int64)}
	for e, c := range sn.Edges {
		if e.From != name {
			continue
		}
		t.add(c)
	}
	return t
}

// SortedEdges returns the edges in deterministic order for reporting.
func (sn Snapshot) SortedEdges() []Edge {
	edges := make([]Edge, 0, len(sn.Edges))
	for e := range sn.Edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return edges
}
