package netsim

import (
	"net"
	"sync"
	"time"
)

// HealthChecker is optionally implemented by transports that can answer
// "would a Dial from from to to be refused right now?" without actually
// dialing. Connection pools consult it before reusing an idle connection,
// so runtime failure injection (SetDown, Block, scheduled down-windows)
// keeps its dial-time semantics even when no dial happens: a pooled
// connection to a peer that has since gone down is evicted, and the
// caller's fresh dial surfaces the refusal exactly as before pooling.
type HealthChecker interface {
	Healthy(from, to string) bool
}

// PoolOptions bound a connection pool. The zero value applies the
// defaults noted on each field.
type PoolOptions struct {
	// MaxIdlePerPeer caps the idle connections retained per destination
	// endpoint (default 4).
	MaxIdlePerPeer int
	// MaxIdle caps the idle connections retained across all peers
	// (default 128). At the cap the oldest idle connection anywhere is
	// evicted, so short-lived peers (per-query result collectors) cannot
	// crowd out the long-lived forwarding edges.
	MaxIdle int
	// IdleTTL discards idle connections older than this (default 2m).
	IdleTTL time.Duration
	// Wrap, when non-nil, wraps every connection the pool dials before it
	// is first used — the hook that attaches per-connection session state
	// (e.g. a persistent wire codec) that must live exactly as long as
	// the connection does.
	Wrap func(net.Conn) net.Conn
}

func (o PoolOptions) perPeer() int {
	if o.MaxIdlePerPeer <= 0 {
		return 4
	}
	return o.MaxIdlePerPeer
}

func (o PoolOptions) maxIdle() int {
	if o.MaxIdle <= 0 {
		return 128
	}
	return o.MaxIdle
}

func (o PoolOptions) ttl() time.Duration {
	if o.IdleTTL <= 0 {
		return 2 * time.Minute
	}
	return o.IdleTTL
}

// Pool keeps idle connections from one local endpoint to its peers so
// repeat sends skip the per-message dial. Reuse is best-effort: a pooled
// connection may have died while idle (the peer closed it), in which case
// the next send on it fails and the caller falls back to a fresh dial —
// the pool never invents reachability, it only skips handshakes.
type Pool struct {
	tr   Transport
	from string
	opts PoolOptions

	mu     sync.Mutex
	idle   map[string][]pooledConn
	total  int
	closed bool
}

type pooledConn struct {
	c  net.Conn
	at time.Time // when the connection went idle
}

// NewPool returns a pool dialing from the named local endpoint over tr.
func NewPool(tr Transport, from string, opts PoolOptions) *Pool {
	return &Pool{tr: tr, from: from, opts: opts, idle: make(map[string][]pooledConn)}
}

// Get returns a connection to the named endpoint, preferring an idle
// pooled one (reused == true) and dialing otherwise. Callers must hand
// the connection back with Put after a successful send, or Close it on
// error.
func (p *Pool) Get(to string) (conn net.Conn, reused bool, err error) {
	if c := p.take(to); c != nil {
		return c, true, nil
	}
	c, err := p.Dial(to)
	return c, false, err
}

// Dial opens (and wraps) a fresh connection to the named endpoint,
// bypassing the idle set — for callers replacing a connection that just
// proved stale. The result may be handed back with Put like any other.
func (p *Pool) Dial(to string) (net.Conn, error) {
	c, err := p.tr.Dial(p.from, to)
	if err != nil {
		return nil, err
	}
	if p.opts.Wrap != nil {
		c = p.opts.Wrap(c)
	}
	return c, nil
}

// take pops the most recently used healthy idle connection to to, or nil.
func (p *Pool) take(to string) net.Conn {
	hc, checks := p.tr.(HealthChecker)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	list := p.idle[to]
	if len(list) == 0 {
		return nil
	}
	if checks && !hc.Healthy(p.from, to) {
		// The peer is administratively unreachable right now: evict every
		// idle connection to it so the caller's Dial reports the refusal.
		for _, pc := range list {
			pc.c.Close()
		}
		p.total -= len(list)
		delete(p.idle, to)
		return nil
	}
	// Oldest entries sit at the front; discard the expired prefix.
	cutoff := time.Now().Add(-p.opts.ttl())
	drop := 0
	for drop < len(list) && list[drop].at.Before(cutoff) {
		list[drop].c.Close()
		drop++
	}
	list = list[drop:]
	p.total -= drop
	if len(list) == 0 {
		delete(p.idle, to)
		return nil
	}
	pc := list[len(list)-1]
	list = list[:len(list)-1]
	p.total--
	if len(list) == 0 {
		delete(p.idle, to)
	} else {
		p.idle[to] = list
	}
	return pc.c
}

// ConnHealth is optionally implemented by wrapped connections carrying
// session state that can fail independently of the transport — e.g. a
// wire session poisoned by a mid-frame error. Put consults it so a
// poisoned session is closed, never re-pooled for another sender.
type ConnHealth interface {
	Healthy() bool
}

// Put returns a connection to the pool after a successful send. The pool
// takes ownership: the connection is retained idle or closed.
func (p *Pool) Put(to string, c net.Conn) {
	if hc, ok := c.(ConnHealth); ok && !hc.Healthy() {
		c.Close()
		return
	}
	p.mu.Lock()
	if p.closed || len(p.idle[to]) >= p.opts.perPeer() {
		p.mu.Unlock()
		c.Close()
		return
	}
	if p.total >= p.opts.maxIdle() {
		p.evictOldestLocked()
	}
	p.idle[to] = append(p.idle[to], pooledConn{c: c, at: time.Now()})
	p.total++
	p.mu.Unlock()
}

// evictOldestLocked closes the globally oldest idle connection. Callers
// hold p.mu and have ensured the pool is non-empty (total >= maxIdle).
func (p *Pool) evictOldestLocked() {
	var oldestKey string
	var oldestAt time.Time
	for key, list := range p.idle {
		if len(list) == 0 {
			continue
		}
		if oldestKey == "" || list[0].at.Before(oldestAt) {
			oldestKey, oldestAt = key, list[0].at
		}
	}
	if oldestKey == "" {
		return
	}
	list := p.idle[oldestKey]
	list[0].c.Close()
	if len(list) == 1 {
		delete(p.idle, oldestKey)
	} else {
		p.idle[oldestKey] = list[1:]
	}
	p.total--
}

// EvictPeer proactively closes and forgets every idle connection to the
// named endpoint, returning how many were evicted. The cluster health
// layer calls this the moment a replica is declared down, so the next
// send dials fresh (and fails fast, and fails over) instead of writing
// into a dead socket and waiting for the error.
func (p *Pool) EvictPeer(to string) int {
	p.mu.Lock()
	list := p.idle[to]
	delete(p.idle, to)
	p.total -= len(list)
	p.mu.Unlock()
	for _, pc := range list {
		pc.c.Close()
	}
	return len(list)
}

// IdleCount returns the number of idle connections held (for tests and
// introspection).
func (p *Pool) IdleCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.total
}

// Close closes every idle connection and rejects further reuse. Get
// still works on a closed pool — it degrades to plain dialing — so a
// racing sender never observes an error it wouldn't see without a pool.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	idle := p.idle
	p.idle = make(map[string][]pooledConn)
	p.total = 0
	p.mu.Unlock()
	for _, list := range idle {
		for _, pc := range list {
			pc.c.Close()
		}
	}
}
