// Package sched implements the per-site clone scheduler of the WEBDIS
// query server: the replacement for the paper's single unbounded FIFO
// ("the Query Processor sequentially processes the queue of pending
// web-queries", Section 4.4), built for a multi-user deployment where
// one heavy web-query must not starve a light one and overload must not
// grow the queue without bound.
//
// The queue has three modes layered on one structure:
//
//   - FIFO (the zero Options): exactly the seed behaviour — one global
//     arrival-ordered queue, unbounded, nothing shed.
//   - Weighted fair (Options.Fair): per-flow sub-queues, one per query,
//     drained by deficit round-robin. A flow with weight w receives w
//     service quanta per round, so a 40-site tree scan and a 2-hop
//     lookup share a site in proportion to their weights instead of in
//     arrival order.
//   - Admission control (Options.HighWater > 0, composable with either
//     drain order): when the aggregate depth reaches the high watermark
//     the queue sheds FRESH flows — new queries arriving at this site —
//     until the depth falls under the low watermark. Items of flows
//     already queued here, and all non-fresh items (forwarded clones of
//     queries admitted elsewhere, local re-enqueues), are never shed:
//     in-flight work always completes, so the CHT accounting of an
//     admitted query cannot be broken by load.
//
// The queue must accept non-fresh pushes unconditionally even when
// bounded, because the Query Processor enqueues same-site clones while
// processing — refusing (or blocking) a self-forward would lose
// accounted work (or deadlock). Boundedness under overload comes from
// the admission side instead: every queued item belongs to an admitted
// query, admissions stop at the high watermark, and each admitted query
// contributes finitely many clones.
package sched

import "sync"

// Options configure a Queue. The zero value is the seed behaviour: a
// single unbounded FIFO with no admission control.
type Options struct {
	// Fair drains per-flow (per-query) sub-queues by deficit
	// round-robin instead of global arrival order.
	Fair bool
	// Quantum is the number of items one weight unit buys per DRR round
	// (default 1). Larger quanta trade fairness granularity for fewer
	// pointer rotations; with clone batches as the unit of work the
	// default is right.
	Quantum int
	// HighWater, when positive, arms admission control: once the
	// aggregate depth reaches it, fresh flows are shed until the depth
	// drains below LowWater.
	HighWater int
	// LowWater is the hysteresis floor at which admissions resume
	// (default HighWater/2). The gap keeps the queue from flapping
	// between shedding and admitting on every pop.
	LowWater int
	// OnActivate, when set, is called each time admission control newly
	// engages (the depth crossed the high watermark). It runs outside
	// the queue lock.
	OnActivate func()
}

func (o Options) quantum() int {
	if o.Quantum > 0 {
		return o.Quantum
	}
	return 1
}

func (o Options) lowWater() int {
	if o.LowWater > 0 && o.LowWater < o.HighWater {
		return o.LowWater
	}
	return o.HighWater / 2
}

// Verdict is the outcome of a Push.
type Verdict int

const (
	// Admitted: the item was queued.
	Admitted Verdict = iota
	// Shed: the item was refused — a fresh flow over the high
	// watermark. The caller owns the refusal (typed SHED bounce).
	Shed
	// Closed: the queue is shut down; the item was discarded.
	Closed
)

// Stats is a point-in-time summary of the queue's activity.
type Stats struct {
	Depth       int   // items currently queued
	Peak        int   // maximum depth ever observed
	Flows       int   // flows with queued items
	Shed        int64 // pushes refused by admission control
	Activations int64 // times the depth crossed the high watermark
	Shedding    bool  // admission control currently engaged
}

// flow is one query's sub-queue.
type flow[T any] struct {
	key     string
	weight  int
	deficit int
	items   []T
}

func (f *flow[T]) wt() int {
	if f.weight > 0 {
		return f.weight
	}
	return 1
}

// Queue is the scheduler's clone queue. Push and Pop are safe for
// concurrent use from any number of goroutines; Pop blocks until an
// item is available or the queue closes.
type Queue[T any] struct {
	mu   sync.Mutex
	cond *sync.Cond
	opts Options

	closed   bool
	shedding bool
	depth    int
	peak     int
	shed     int64
	acts     int64

	// pending counts queued items per flow key in both modes, so
	// admission control can tell a fresh flow from one already queued.
	pending map[string]int

	fifo []fifoItem[T] // FIFO mode storage

	// Fair mode storage: flows holds exactly the flows with queued
	// items, all of which sit in the round-robin ring; cur is the ring
	// position being served.
	flows map[string]*flow[T]
	ring  []*flow[T]
	cur   int
}

type fifoItem[T any] struct {
	key  string
	item T
}

// New returns an empty queue.
func New[T any](opts Options) *Queue[T] {
	q := &Queue[T]{
		opts:    opts,
		pending: make(map[string]int),
	}
	if opts.Fair {
		q.flows = make(map[string]*flow[T])
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push offers one item of the given flow. key identifies the flow (the
// query id), weight its share of service (0 means 1), and fresh whether
// the item would begin a new query at this site (a root dispatch, hop
// 0) — only fresh items of flows not already queued here can be shed.
func (q *Queue[T]) Push(key string, weight int, fresh bool, item T) Verdict {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return Closed
	}
	var activated bool
	if q.opts.HighWater > 0 {
		if q.shedding && q.depth < q.opts.lowWater() {
			q.shedding = false
		}
		if !q.shedding && q.depth >= q.opts.HighWater {
			q.shedding = true
			q.acts++
			activated = true
		}
		if q.shedding && fresh && q.pending[key] == 0 {
			q.shed++
			q.mu.Unlock()
			if activated && q.opts.OnActivate != nil {
				q.opts.OnActivate()
			}
			return Shed
		}
	}
	q.pending[key]++
	q.depth++
	if q.depth > q.peak {
		q.peak = q.depth
	}
	if q.opts.Fair {
		f := q.flows[key]
		if f == nil {
			f = &flow[T]{key: key}
			q.flows[key] = f
			if len(q.ring) == 0 {
				q.ring = append(q.ring, f)
				q.cur = 0
			} else {
				// A flow entering the ring is inserted just after the
				// service pointer (the DRR+ refinement): a sparse
				// interactive query is served after at most the item in
				// progress plus the current flow's remaining quantum,
				// instead of a full rotation past every backlogged flow.
				// An active flow that momentarily drains stays PARKED in
				// its ring slot (removed only when the pointer finds it
				// still empty), so a busy query that trickles items one
				// at a time cannot re-enter here and cut ahead of flows
				// already waiting.
				at := q.cur + 1
				q.ring = append(q.ring, nil)
				copy(q.ring[at+1:], q.ring[at:])
				q.ring[at] = f
			}
		}
		f.weight = weight // latest push wins, so weight changes propagate
		f.items = append(f.items, item)
	} else {
		q.fifo = append(q.fifo, fifoItem[T]{key: key, item: item})
	}
	q.cond.Signal()
	q.mu.Unlock()
	if activated && q.opts.OnActivate != nil {
		q.opts.OnActivate()
	}
	return Admitted
}

// Pop removes and returns the next item per the drain policy, blocking
// until one is available. It returns ok == false when the queue has
// been closed (queued items are discarded, the server-stop semantics).
func (q *Queue[T]) Pop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.depth == 0 && !q.closed {
		q.cond.Wait()
	}
	var zero T
	if q.closed {
		return zero, false
	}
	q.depth--
	if !q.opts.Fair {
		e := q.fifo[0]
		q.fifo = q.fifo[1:]
		q.drop(e.key)
		return e.item, true
	}
	return q.popFair(), true
}

// popFair serves one item by deficit round-robin. Callers hold q.mu and
// have verified at least one item is queued.
func (q *Queue[T]) popFair() T {
	// Reap flows that sat empty since the pointer's last visit: a parked
	// flow whose query produced nothing for a whole rotation is gone (or
	// between bursts, in which case it re-enters at the pointer later).
	for len(q.ring[q.cur].items) == 0 {
		delete(q.flows, q.ring[q.cur].key)
		q.ring = append(q.ring[:q.cur], q.ring[q.cur+1:]...)
		if q.cur >= len(q.ring) {
			q.cur = 0
		}
	}
	f := q.ring[q.cur]
	if f.deficit <= 0 {
		// The pointer (re-)entered this flow: replenish its deficit.
		f.deficit += q.opts.quantum() * f.wt()
	}
	item := f.items[0]
	f.items = f.items[1:]
	f.deficit--
	q.drop(f.key)
	if len(f.items) == 0 {
		// The flow drained: it stays parked in its slot for one rotation
		// but forfeits its residual deficit (standard DRR — an idle flow
		// accrues no credit).
		f.deficit = 0
		q.advance()
	} else if f.deficit <= 0 {
		q.advance()
	}
	return item
}

// advance moves the service pointer one slot. Callers hold q.mu.
func (q *Queue[T]) advance() {
	q.cur++
	if q.cur >= len(q.ring) {
		q.cur = 0
	}
}

// drop decrements a flow's pending count. Callers hold q.mu.
func (q *Queue[T]) drop(key string) {
	if n := q.pending[key]; n <= 1 {
		delete(q.pending, key)
	} else {
		q.pending[key] = n - 1
	}
}

// Close shuts the queue down: queued items are discarded, blocked and
// future Pops return ok == false, and future Pushes report Closed.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Len returns the current depth.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.depth
}

// Stats returns a snapshot of the queue's counters.
func (q *Queue[T]) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	flows := len(q.pending)
	return Stats{
		Depth: q.depth, Peak: q.peak, Flows: flows,
		Shed: q.shed, Activations: q.acts, Shedding: q.shedding,
	}
}
