package sched

import (
	"sync"
	"testing"
	"time"
)

func drain(t *testing.T, q *Queue[int], n int) []int {
	t.Helper()
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		v, ok := q.Pop()
		if !ok {
			t.Fatalf("queue closed after %d pops, want %d", i, n)
		}
		out = append(out, v)
	}
	return out
}

func TestZeroOptionsIsFIFO(t *testing.T) {
	q := New[int](Options{})
	for i := 0; i < 6; i++ {
		if v := q.Push("q1", 0, false, i); v != Admitted {
			t.Fatalf("push %d: verdict %v", i, v)
		}
	}
	for i, v := range drain(t, q, 6) {
		if v != i {
			t.Fatalf("pop %d = %d, want arrival order", i, v)
		}
	}
}

func TestFairInterleavesFlows(t *testing.T) {
	// Flow A floods 8 items before flow B's single item arrives; fair
	// mode must serve B within one round instead of after all of A.
	q := New[int](Options{Fair: true})
	for i := 0; i < 8; i++ {
		q.Push("a", 1, false, 100+i)
	}
	q.Push("b", 1, false, 200)
	got := drain(t, q, 9)
	posB := -1
	for i, v := range got {
		if v == 200 {
			posB = i
		}
	}
	if posB < 0 || posB > 2 {
		t.Fatalf("flow b served at position %d of %v, want within one DRR round", posB, got)
	}
}

func TestFairWeightedShares(t *testing.T) {
	// Two backlogged flows with weights 3 and 1: over the first rounds
	// the heavy flow must receive ~3x the service of the light one.
	q := New[int](Options{Fair: true})
	for i := 0; i < 30; i++ {
		q.Push("heavy", 3, false, 1)
		q.Push("light", 1, false, 2)
	}
	heavy := 0
	for _, v := range drain(t, q, 8) {
		if v == 1 {
			heavy++
		}
	}
	// 8 pops = two full rounds of (3 heavy + 1 light).
	if heavy != 6 {
		t.Fatalf("heavy served %d of first 8, want 6 (3:1 weights)", heavy)
	}
}

func TestFairNewFlowServedNearPointer(t *testing.T) {
	// The DRR+ insertion property: a flow entering a busy ring is placed
	// just after the service pointer, so its first item is served after
	// at most the current flow's quantum — not after a full rotation.
	q := New[int](Options{Fair: true})
	for i := 0; i < 5; i++ {
		q.Push("a", 1, false, 1)
		q.Push("b", 1, false, 2)
	}
	if got := drain(t, q, 2); got[0] != 1 || got[1] != 2 {
		t.Fatalf("warmup pops = %v", got) // pointer now past a and b
	}
	q.Push("c", 1, false, 3)
	got := drain(t, q, 3)
	posC := -1
	for i, v := range got {
		if v == 3 {
			posC = i
		}
	}
	// With 8 a/b items still backlogged, c must surface within the next
	// two pops (the in-progress flow's quantum), not after the backlog.
	if posC < 0 || posC > 1 {
		t.Fatalf("late flow served at position %d of %v", posC, got)
	}
}

func TestAdmissionShedsFreshOverHighWater(t *testing.T) {
	activations := 0
	q := New[int](Options{HighWater: 4, LowWater: 2, OnActivate: func() { activations++ }})
	for i := 0; i < 4; i++ {
		if v := q.Push("inflight", 0, false, i); v != Admitted {
			t.Fatalf("in-flight push %d: verdict %v", i, v)
		}
	}
	// Depth at the watermark: a fresh flow is shed, in-flight work and
	// items of flows already queued here are not.
	if v := q.Push("new1", 0, true, 9); v != Shed {
		t.Fatalf("fresh over watermark: verdict %v, want Shed", v)
	}
	if v := q.Push("inflight", 0, false, 4); v != Admitted {
		t.Fatal("non-fresh push must never be shed")
	}
	if v := q.Push("inflight", 0, true, 5); v != Admitted {
		t.Fatal("fresh item of an already-queued flow must not be shed")
	}
	st := q.Stats()
	if st.Shed != 1 || st.Activations != 1 || !st.Shedding || activations != 1 {
		t.Fatalf("stats = %+v, activations = %d", st, activations)
	}

	// Hysteresis: still shedding until the depth drains below LowWater.
	drain(t, q, 3) // depth 6 -> 3
	if v := q.Push("new2", 0, true, 9); v != Shed {
		t.Fatalf("at depth 3 (>= LowWater 2): verdict %v, want Shed", v)
	}
	drain(t, q, 2) // depth 3 -> 1
	if v := q.Push("new3", 0, true, 9); v != Admitted {
		t.Fatal("below LowWater admissions must resume")
	}
}

func TestCloseUnblocksPop(t *testing.T) {
	q := New[int](Options{Fair: true})
	done := make(chan bool)
	go func() {
		_, ok := q.Pop()
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("pop on a closed queue reported ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop did not unblock on close")
	}
	if v := q.Push("q", 0, false, 1); v != Closed {
		t.Fatalf("push after close: verdict %v", v)
	}
}

// TestConcurrentPushPopClose is the shutdown race test: many pushers
// and poppers churn both queue modes while Close lands mid-traffic.
// Run under -race; the assertion is simply no deadlock and no panic.
func TestConcurrentPushPopClose(t *testing.T) {
	for _, opts := range []Options{
		{},
		{Fair: true},
		{Fair: true, HighWater: 8, LowWater: 4},
	} {
		q := New[int](opts)
		var wg sync.WaitGroup
		keys := []string{"q1", "q2", "q3", "q4"}
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < 500; i++ {
					q.Push(keys[i%len(keys)], i%3, i%7 == 0, i)
				}
			}(p)
		}
		for c := 0; c < 4; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if _, ok := q.Pop(); !ok {
						return
					}
				}
			}()
		}
		time.Sleep(2 * time.Millisecond)
		q.Close()
		doneCh := make(chan struct{})
		go func() { wg.Wait(); close(doneCh) }()
		select {
		case <-doneCh:
		case <-time.After(5 * time.Second):
			t.Fatalf("opts %+v: goroutines wedged across close", opts)
		}
	}
}

func TestStatsTrackDepthAndPeak(t *testing.T) {
	q := New[int](Options{Fair: true})
	q.Push("a", 0, false, 1)
	q.Push("a", 0, false, 2)
	q.Push("b", 0, false, 3)
	st := q.Stats()
	if st.Depth != 3 || st.Peak != 3 || st.Flows != 2 {
		t.Fatalf("stats = %+v", st)
	}
	drain(t, q, 3)
	st = q.Stats()
	if st.Depth != 0 || st.Peak != 3 || st.Flows != 0 {
		t.Fatalf("after drain: %+v", st)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}
