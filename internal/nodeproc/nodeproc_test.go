package nodeproc

import (
	"testing"
	"time"

	"webdis/internal/disql"
	"webdis/internal/nodequery"
	"webdis/internal/pre"
	"webdis/internal/relmodel"
	"webdis/internal/wire"
)

const nodeHTML = `<html><head><title>Step Test</title></head><body>
<p>This node holds the token q1-answer.</p>
<a href="sib.html">sibling</a>
<a href="other.html">other sibling</a>
<a href="http://far.example/x.html">far</a>
<a href="#frag">self</a>
</body></html>`

const nodeURL = "http://near.example/index.html"

func db(t *testing.T) *relmodel.DB {
	t.Helper()
	d, err := BuildDB(nodeURL, []byte(nodeHTML))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func stage(marker string) disql.Stage {
	return disql.Stage{
		PRE: pre.MustParse("G"), // unused by Step itself
		Query: &nodequery.Query{
			Vars:   []nodequery.VarDecl{{Name: "d", Rel: "document"}},
			Where:  nodequery.Compare(nodequery.ColOperand("d", "text"), nodequery.Contains, nodequery.LitOperand(marker)),
			Select: []nodequery.ColRef{{Var: "d", Col: "url"}},
		},
	}
}

func TestStepPureRouter(t *testing.T) {
	res, err := Step(db(t), nodeURL, pre.MustParse("G|L"), stage("q1-answer"), true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated || res.DeadEnd || res.Advance {
		t.Errorf("res = %+v", res)
	}
	if len(res.Continue) != 2 {
		t.Fatalf("continue = %+v", res.Continue)
	}
	// Canonical order: I, L, G — here L then G.
	if res.Continue[0].Targets[0].Link != pre.Local || len(res.Continue[0].Targets) != 2 {
		t.Errorf("local forward = %+v", res.Continue[0])
	}
	if res.Continue[1].Targets[0].URL != "http://far.example/x.html" {
		t.Errorf("global forward = %+v", res.Continue[1])
	}
	for _, f := range res.Continue {
		if f.Rem.String() != "N" {
			t.Errorf("derivative = %s", f.Rem)
		}
	}
}

func TestStepServerRouterSuccess(t *testing.T) {
	res, err := Step(db(t), nodeURL, pre.MustParse("N|L*2"), stage("q1-answer"), true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Evaluated || res.DeadEnd || !res.Advance {
		t.Fatalf("res = %+v", res)
	}
	if res.Table.Empty() || res.Table.Rows[0][0] != nodeURL {
		t.Errorf("table = %+v", res.Table)
	}
	// The PRE also continues on local links with the bound decremented.
	if len(res.Continue) != 1 || res.Continue[0].Rem.String() != "L*1" {
		t.Errorf("continue = %+v", res.Continue)
	}
}

func TestStepDeadEndCancelsAdvanceOnly(t *testing.T) {
	res, err := Step(db(t), nodeURL, pre.MustParse("N|L*2"), stage("no-such-token"), true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadEnd {
		t.Fatal("expected dead end")
	}
	if res.Advance {
		t.Error("dead end must not advance to the next node-query")
	}
	// The continuation of the current PRE is still reported; strict-mode
	// callers discard it.
	if len(res.Continue) != 1 || res.Continue[0].Rem.String() != "L*1" {
		t.Errorf("continue = %+v", res.Continue)
	}
}

func TestStepDeadEndWithExhaustedPRE(t *testing.T) {
	// Figure 1's node 7: the PRE is exhausted, the node-query fails, and
	// nothing at all can be forwarded.
	res, err := Step(db(t), nodeURL, pre.MustParse("N"), stage("no-such-token"), true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DeadEnd || res.Advance || len(res.Continue) != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestStepLastStageDoesNotAdvance(t *testing.T) {
	res, err := Step(db(t), nodeURL, pre.MustParse("N"), stage("q1-answer"), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Advance {
		t.Error("no next stage to advance to")
	}
	if len(res.Continue) != 0 {
		t.Errorf("continue = %+v", res.Continue)
	}
}

func TestStepInteriorLinkLeadsToSelf(t *testing.T) {
	res, err := Step(db(t), nodeURL, pre.MustParse("I"), stage("q1-answer"), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Continue) != 1 || res.Continue[0].Targets[0].URL != nodeURL {
		t.Fatalf("continue = %+v", res.Continue)
	}
}

func TestStageRoundTrip(t *testing.T) {
	in := []disql.Stage{stage("x"), {PRE: pre.MustParse("G·L*4"), Query: stage("y").Query}}
	enc := EncodeStages(in)
	if enc[1].PRE != "G·L*4" {
		t.Errorf("encoded = %+v", enc[1])
	}
	out, err := ParseStages(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !pre.Equal(out[1].PRE, in[1].PRE) || out[0].Query != in[0].Query {
		t.Errorf("round trip = %+v", out)
	}
	if _, err := ParseStages([]wire.StageMsg{{PRE: "bogus("}}); err == nil {
		t.Error("bad PRE should fail")
	}
}

var qid = wire.QueryID{User: "u", Site: "user/q1", Num: 1}

func TestLogTableExactDuplicate(t *testing.T) {
	lt := NewLogTable(DedupSubsume)
	v := lt.Check("http://n", qid, 2, pre.MustParse("G|L"), "")
	if v.Action != Process {
		t.Fatalf("first arrival = %v", v.Action)
	}
	v = lt.Check("http://n", qid, 2, pre.MustParse("G|L"), "")
	if v.Action != Drop {
		t.Fatalf("duplicate = %v", v.Action)
	}
	// Different state (numQ) is fresh.
	v = lt.Check("http://n", qid, 1, pre.MustParse("G|L"), "")
	if v.Action != Process {
		t.Fatalf("different numQ = %v", v.Action)
	}
	// Different node is fresh.
	v = lt.Check("http://m", qid, 2, pre.MustParse("G|L"), "")
	if v.Action != Process {
		t.Fatalf("different node = %v", v.Action)
	}
	// Different query id is fresh.
	other := wire.QueryID{User: "u", Site: "user/q2", Num: 2}
	v = lt.Check("http://n", other, 2, pre.MustParse("G|L"), "")
	if v.Action != Process {
		t.Fatalf("different query = %v", v.Action)
	}
	if lt.Len() != 4 {
		t.Errorf("Len = %d", lt.Len())
	}
}

func TestLogTableSubsumption(t *testing.T) {
	// The paper's worked example: log L*2·G; then L*1·G is covered and
	// dropped; then L*4·G covers the log entry, replaces it, and is
	// rewritten to L·L*3·G.
	lt := NewLogTable(DedupSubsume)
	lt.Check("http://n", qid, 1, pre.MustParse("L*2·G"), "")
	if v := lt.Check("http://n", qid, 1, pre.MustParse("L*1·G"), ""); v.Action != Drop {
		t.Fatalf("L*1·G = %v", v.Action)
	}
	v := lt.Check("http://n", qid, 1, pre.MustParse("L*4·G"), "")
	if v.Action != Rewrite || v.Rem.String() != "L·L*3·G" {
		t.Fatalf("L*4·G = %v %v", v.Action, v.Rem)
	}
	// The log entry was replaced: L*3·G is now covered.
	if v := lt.Check("http://n", qid, 1, pre.MustParse("L*3·G"), ""); v.Action != Drop {
		t.Fatalf("L*3·G after replace = %v", v.Action)
	}
	// Entry count unchanged by the replace.
	if lt.Len() != 1 {
		t.Errorf("Len = %d", lt.Len())
	}
}

func TestLogTableExactModeIgnoresSubsumption(t *testing.T) {
	lt := NewLogTable(DedupExact)
	lt.Check("http://n", qid, 1, pre.MustParse("L*2·G"), "")
	if v := lt.Check("http://n", qid, 1, pre.MustParse("L*1·G"), ""); v.Action != Process {
		t.Fatalf("exact mode should process L*1·G: %v", v.Action)
	}
	if v := lt.Check("http://n", qid, 1, pre.MustParse("L*2·G"), ""); v.Action != Drop {
		t.Fatalf("exact duplicate = %v", v.Action)
	}
}

func TestLogTableStrongMode(t *testing.T) {
	lt := NewLogTable(DedupStrong)
	lt.Check("http://n", qid, 1, pre.MustParse("(G|L)·(G|L)"), "")
	// G·L is strictly contained in (G|L)·(G|L): the syntactic rules miss
	// it, language containment catches it.
	if v := lt.Check("http://n", qid, 1, pre.MustParse("G·L"), ""); v.Action != Drop {
		t.Fatalf("strong containment = %v", v.Action)
	}
	if v := lt.Check("http://n", qid, 1, pre.MustParse("I·I"), ""); v.Action != Process {
		t.Fatalf("uncovered arrival = %v", v.Action)
	}
}

func TestLogTableOff(t *testing.T) {
	lt := NewLogTable(DedupOff)
	for i := 0; i < 3; i++ {
		if v := lt.Check("http://n", qid, 1, pre.MustParse("G"), ""); v.Action != Process {
			t.Fatalf("off mode = %v", v.Action)
		}
	}
	if lt.Len() != 0 {
		t.Errorf("off mode should not log; Len = %d", lt.Len())
	}
}

func TestLogTablePurge(t *testing.T) {
	lt := NewLogTable(DedupSubsume)
	lt.Check("http://n", qid, 1, pre.MustParse("G"), "")
	lt.Check("http://m", qid, 1, pre.MustParse("G"), "")
	time.Sleep(5 * time.Millisecond)
	if removed := lt.Purge(time.Millisecond); removed != 2 {
		t.Fatalf("removed = %d", removed)
	}
	if lt.Len() != 0 {
		t.Errorf("Len = %d", lt.Len())
	}
	// After the purge, the same arrival is processed again (performance,
	// not correctness).
	if v := lt.Check("http://n", qid, 1, pre.MustParse("G"), ""); v.Action != Process {
		t.Fatalf("post-purge = %v", v.Action)
	}
}

func TestModeAndActionStrings(t *testing.T) {
	if DedupSubsume.String() != "subsume" || DedupOff.String() != "off" ||
		DedupExact.String() != "exact" || DedupStrong.String() != "strong" {
		t.Error("mode strings")
	}
	if Process.String() != "process" || Drop.String() != "drop" || Rewrite.String() != "rewrite" {
		t.Error("action strings")
	}
}

func TestLogTableEnvDistinguishesCorrelatedClones(t *testing.T) {
	// Two clones in the same (node, numQ, rem) state but carrying
	// different upstream bindings are different clones: correlated
	// predicates could evaluate differently.
	lt := NewLogTable(DedupSubsume)
	rem := pre.MustParse("G|L")
	if v := lt.Check("http://n", qid, 1, rem, "d0.title=Databases"); v.Action != Process {
		t.Fatalf("first env = %v", v.Action)
	}
	if v := lt.Check("http://n", qid, 1, rem, "d0.title=Compilers"); v.Action != Process {
		t.Fatalf("different env = %v", v.Action)
	}
	if v := lt.Check("http://n", qid, 1, rem, "d0.title=Databases"); v.Action != Drop {
		t.Fatalf("same env duplicate = %v", v.Action)
	}
}

func TestExtendEnv(t *testing.T) {
	d := db(t)
	st := stage("q1-answer")
	st.Export = []string{"title", "url"}
	env := map[string]string{"d9.text": "upstream"}
	got := ExtendEnv(env, st, d)
	if got["d.title"] != "Step Test" || got["d.url"] != nodeURL || got["d9.text"] != "upstream" {
		t.Errorf("env = %v", got)
	}
	// The original map is untouched (clones carry independent envs).
	if len(env) != 1 {
		t.Errorf("input env mutated: %v", env)
	}
	// No exports: same map returned.
	plain := stage("x")
	if out := ExtendEnv(env, plain, d); len(out) != 1 {
		t.Errorf("no-export env = %v", out)
	}
}
