// Package nodeproc implements the per-node processing step shared by the
// distributed WEBDIS query server and the centralized data-shipping
// baseline: given one node's virtual-relation database and one clone
// arrival state, decide whether the node is a ServerRouter or PureRouter,
// evaluate the node-query if the remaining PRE contains the null link,
// detect dead ends, and compute the set of next links to traverse
// (Figures 3 and 4 of the paper, minus the messaging).
//
// It also houses the Node-query Log Table of Section 3.1.1, because the
// duplicate-arrival rules are processing semantics: the centralized
// baseline applies the same rules to its breadth-first frontier so that
// both engines compute identical result sets.
package nodeproc

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"webdis/internal/disql"
	"webdis/internal/htmlx"
	"webdis/internal/nodequery"
	"webdis/internal/plan"
	"webdis/internal/pre"
	"webdis/internal/relmodel"
	"webdis/internal/wire"
)

// ParseStages converts wire stages back into parsed form. It is the
// inverse of EncodeStages.
func ParseStages(ss []wire.StageMsg) ([]disql.Stage, error) {
	out := make([]disql.Stage, len(ss))
	for i, s := range ss {
		e, err := pre.Parse(s.PRE)
		if err != nil {
			return nil, fmt.Errorf("nodeproc: stage %d: %w", i, err)
		}
		out[i] = disql.Stage{PRE: e, Query: s.Query, Export: s.Export}
	}
	return out, nil
}

// ParseStagesCached is ParseStages through pre's shared parse cache:
// steady-state arrivals re-parse nothing, because every clone of one
// query carries the same stage PRE strings. hits reports how many stage
// PREs were served from the cache. The stage slice itself is still built
// per call — Query and Export are per-message gob decodes and must not be
// shared.
func ParseStagesCached(ss []wire.StageMsg) (stages []disql.Stage, hits int, err error) {
	out := make([]disql.Stage, len(ss))
	for i, s := range ss {
		e, hit, err := pre.ParseCached(s.PRE)
		if err != nil {
			return nil, hits, fmt.Errorf("nodeproc: stage %d: %w", i, err)
		}
		if hit {
			hits++
		}
		out[i] = disql.Stage{PRE: e, Query: s.Query, Export: s.Export}
	}
	return out, hits, nil
}

// EncodeStages converts parsed stages into wire form.
func EncodeStages(ss []disql.Stage) []wire.StageMsg {
	out := make([]wire.StageMsg, len(ss))
	for i, s := range ss {
		out[i] = wire.StageMsg{PRE: s.PRE.String(), Query: s.Query, Export: s.Export}
	}
	return out
}

// Target is one hyperlink the query should be forwarded over.
type Target struct {
	URL  string   // destination node (fragments stripped)
	Link pre.Link // the link category traversed
}

// StepResult is the outcome of processing one arrival state at one node.
type StepResult struct {
	// Evaluated reports whether the node acted as a ServerRouter (the
	// remaining PRE contained the null link, so the node-query ran).
	Evaluated bool
	// Table holds the node-query's rows when Evaluated.
	Table *nodequery.Table
	// DeadEnd reports that the node-query ran and found no answer. The
	// paper's Figure-4 pseudocode then forwards nothing at all, but its
	// own worked examples (the L*1 hop of the Section 5 campus query, the
	// "extract all global links" motivation of Example Query 1) require
	// the continuation of the current PRE to proceed — only the advance to
	// the next node-query is cancelled. Step therefore always reports
	// Continue; callers honoring the strict pseudocode discard it when
	// DeadEnd is set.
	DeadEnd bool
	// Scanned and Emitted are the operator pipeline's row statistics for
	// the evaluation (tuples read by scans, distinct rows produced); both
	// zero when the node was a PureRouter.
	Scanned int64
	Emitted int64
	// Continue lists, per derivative, the targets for continuing the
	// *current* PRE (reaching farther nodes that evaluate the same
	// node-query).
	Continue []Forward
	// Advance reports whether processing should move to the next stage at
	// this same node (the node-query succeeded and stages remain).
	Advance bool
}

// Forward groups targets sharing one derived PRE.
type Forward struct {
	Rem     pre.Expr // derivative of the current PRE after the link
	Targets []Target
}

// Step processes one arrival (rem within the current stage) at the node
// whose virtual relations are db. hasNext tells whether another stage
// follows the current one. env supplies upstream document bindings for
// correlated node-queries (nil for the common uncorrelated case).
func Step(db *relmodel.DB, node string, rem pre.Expr, stage disql.Stage, hasNext bool, env map[string]string) (StepResult, error) {
	var res StepResult
	if pre.Nullable(rem) {
		res.Evaluated = true
		// Evaluation runs through the volcano operator pipeline; plan.Eval
		// is row-for-row equivalent to nodequery.EvalEnv (the differential
		// tests pin this) and additionally reports scan/emit statistics.
		tbl, stats, err := plan.Eval(stage.Query, db, env)
		if err != nil {
			return res, fmt.Errorf("nodeproc: %s: %w", node, err)
		}
		res.Table = tbl
		res.Scanned, res.Emitted = stats.Scanned, stats.Emitted
		if tbl.Empty() {
			res.DeadEnd = true
		} else {
			res.Advance = hasNext
		}
	}
	for _, l := range pre.First(rem) {
		d := pre.Derive(rem, l)
		if pre.IsNone(d) {
			continue
		}
		targets := linkTargets(db, node, l)
		if len(targets) == 0 {
			continue
		}
		res.Continue = append(res.Continue, Forward{Rem: d, Targets: targets})
	}
	return res, nil
}

// linkTargets selects the anchor destinations of category l, stripping
// fragments (an interior link leads back to the node itself) and removing
// duplicates while preserving document order.
func linkTargets(db *relmodel.DB, node string, l pre.Link) []Target {
	rel := db.Anchor
	hrefIdx, typeIdx := rel.Col("href"), rel.Col("ltype")
	seen := make(map[string]bool)
	var out []Target
	for _, tup := range rel.Tuples {
		if tup[typeIdx] != l.String() {
			continue
		}
		url := tup[hrefIdx]
		if i := strings.IndexByte(url, '#'); i >= 0 {
			url = url[:i]
		}
		if l == pre.Interior {
			url = node
		}
		if url == "" || seen[url] {
			continue
		}
		seen[url] = true
		out = append(out, Target{URL: url, Link: l})
	}
	return out
}

// ExtendEnv returns env extended with the stage's exported document
// columns read from db (the single DOCUMENT tuple). It copies — clones
// carry independent environments. A stage with no exports returns env
// unchanged.
func ExtendEnv(env map[string]string, stage disql.Stage, db *relmodel.DB) map[string]string {
	if len(stage.Export) == 0 {
		return env
	}
	out := make(map[string]string, len(env)+len(stage.Export))
	for k, v := range env {
		out[k] = v
	}
	docVar := stage.Query.Vars[0].Name
	tup := db.Document.Tuples[0]
	for _, col := range stage.Export {
		if i := db.Document.Col(col); i >= 0 {
			out[docVar+"."+col] = tup[i]
		}
	}
	return out
}

// BuildDB parses a document and constructs its virtual relations — the
// paper's Database Constructor. It exists so server and baseline share the
// exact same construction (and so both count one parse per document).
func BuildDB(url string, content []byte) (*relmodel.DB, error) {
	doc, err := htmlx.Parse(url, content)
	if err != nil {
		return nil, err
	}
	return relmodel.Build(doc), nil
}

// ---------------------------------------------------------------------------
// The Node-query Log Table (Section 3.1.1).

// DedupMode selects how aggressively the log table recognizes equivalent
// arrivals.
type DedupMode int

// Dedup modes. DedupSubsume is the paper's scheme and the default.
const (
	// DedupOff disables the log table entirely (the ablation baseline —
	// every arrival is recomputed and re-forwarded).
	DedupOff DedupMode = iota
	// DedupExact drops only arrivals whose state is syntactically
	// identical to a logged one.
	DedupExact
	// DedupSubsume adds the paper's star-bound rules: an arrival covered
	// by a logged PRE is dropped, and an arrival that covers a logged PRE
	// replaces it and is rewritten (A*m·B → A·A*(m-1)·B) so only the
	// difference is explored.
	DedupSubsume
	// DedupStrong is an extension: full DFA language containment decides
	// coverage, catching equivalences the syntactic rules miss.
	DedupStrong
)

func (m DedupMode) String() string {
	switch m {
	case DedupOff:
		return "off"
	case DedupExact:
		return "exact"
	case DedupSubsume:
		return "subsume"
	case DedupStrong:
		return "strong"
	}
	return fmt.Sprintf("DedupMode(%d)", int(m))
}

// Action is the log table's verdict on an arrival.
type Action int

// Verdict actions.
const (
	Process Action = iota // fresh arrival: process normally
	Drop                  // duplicate: purge the clone for this node
	Rewrite               // superset arrival: process with the rewritten PRE
)

func (a Action) String() string {
	switch a {
	case Process:
		return "process"
	case Drop:
		return "drop"
	case Rewrite:
		return "rewrite"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Verdict is the outcome of a log-table check. For Rewrite, Rem is the
// rewritten remaining PRE to process with.
type Verdict struct {
	Action Action
	Rem    pre.Expr
}

type logEntry struct {
	numQ  int
	rem   pre.Expr
	added time.Time
}

// LogTable records, per (node, query), the states of previously processed
// clones, and classifies new arrivals. It is safe for concurrent use. The
// zero value is not usable; construct with NewLogTable.
type LogTable struct {
	mode DedupMode

	mu      sync.Mutex
	entries map[string][]logEntry // node + query id -> states
	size    int
}

// NewLogTable returns an empty log table operating in the given mode.
func NewLogTable(mode DedupMode) *LogTable {
	return &LogTable{mode: mode, entries: make(map[string][]logEntry)}
}

// Mode returns the table's dedup mode.
func (lt *LogTable) Mode() DedupMode { return lt.mode }

// Len returns the number of logged entries.
func (lt *LogTable) Len() int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.size
}

func logKey(node string, id wire.QueryID) string { return node + "§" + id.String() }

// Check classifies the arrival of a clone for node in state (numQ, rem)
// and updates the table per Section 3.1.1: fresh and superset arrivals are
// logged (superset arrivals replacing the entry they cover), duplicates
// are not. envKey distinguishes correlated clones: arrivals carrying
// different upstream bindings are never equivalent (wire.EnvKey computes
// it; "" for uncorrelated queries).
func (lt *LogTable) Check(node string, id wire.QueryID, numQ int, rem pre.Expr, envKey string) Verdict {
	if lt.mode == DedupOff {
		return Verdict{Action: Process, Rem: rem}
	}
	key := logKey(node, id) + "\x00" + envKey
	lt.mu.Lock()
	defer lt.mu.Unlock()
	entries := lt.entries[key]
	for i, e := range entries {
		if e.numQ != numQ {
			continue
		}
		switch lt.mode {
		case DedupExact:
			if pre.Equal(e.rem, rem) {
				return Verdict{Action: Drop}
			}
		case DedupSubsume, DedupStrong:
			switch pre.Compare(e.rem, rem) {
			case pre.Duplicate, pre.OldCovers:
				return Verdict{Action: Drop}
			case pre.NewCovers:
				// Replace the covered entry with the arrival and rewrite
				// the query so only the difference is explored.
				entries[i].rem = rem
				entries[i].added = time.Now()
				rw, ok := pre.RewriteSuperset(rem)
				if !ok {
					rw = rem
				}
				return Verdict{Action: Rewrite, Rem: rw}
			}
			if lt.mode == DedupStrong {
				if covered, err := pre.Contains(e.rem, rem); err == nil && covered {
					return Verdict{Action: Drop}
				}
			}
		}
	}
	lt.entries[key] = append(entries, logEntry{numQ: numQ, rem: rem, added: time.Now()})
	lt.size++
	return Verdict{Action: Process, Rem: rem}
}

// Purge removes entries older than maxAge. The paper purges periodically
// to bound storage; an over-eager purge only costs recomputation, never
// correctness.
func (lt *LogTable) Purge(maxAge time.Duration) int {
	cutoff := time.Now().Add(-maxAge)
	lt.mu.Lock()
	defer lt.mu.Unlock()
	removed := 0
	for key, entries := range lt.entries {
		kept := entries[:0]
		for _, e := range entries {
			if e.added.After(cutoff) {
				kept = append(kept, e)
			} else {
				removed++
			}
		}
		if len(kept) == 0 {
			delete(lt.entries, key)
		} else {
			lt.entries[key] = kept
		}
	}
	lt.size -= removed
	return removed
}
