package cluster

import (
	"strconv"
	"testing"
	"time"

	"webdis/internal/netsim"
)

func TestReplicaEndpointNaming(t *testing.T) {
	if got := ReplicaEndpoint("www.cs.toronto.edu", 0); got != "www.cs.toronto.edu/query" {
		t.Fatalf("replica 0 = %q, want the classic endpoint", got)
	}
	if got := ReplicaEndpoint("www.cs.toronto.edu", 2); got != "www.cs.toronto.edu/query@2" {
		t.Fatalf("replica 2 = %q", got)
	}
	// The fabric's prefix matcher must treat replicas as part of their
	// site (a DownWindow on the bare site covers them) without letting
	// the bare "/query" endpoint match a replica's name.
	if !netsim.Matches("www.cs.toronto.edu", ReplicaEndpoint("www.cs.toronto.edu", 1)) {
		t.Fatal("site prefix does not cover replica endpoints")
	}
	if netsim.Matches(ReplicaEndpoint("www.cs.toronto.edu", 0), ReplicaEndpoint("www.cs.toronto.edu", 1)) {
		t.Fatal("classic endpoint must not match a replica endpoint")
	}
}

func TestHealthStateMachine(t *testing.T) {
	m := New(Options{SuspectAfter: 1, DownAfter: 1})
	m.AddSite("a", 2)
	ep := ReplicaEndpoint("a", 1)
	if st := m.StateOf(ep); st != Alive {
		t.Fatalf("initial state = %v", st)
	}
	m.ReportFailure(ep)
	if st := m.StateOf(ep); st != Suspect {
		t.Fatalf("after 1 failure = %v, want suspect", st)
	}
	m.ReportFailure(ep)
	if st := m.StateOf(ep); st != Down {
		t.Fatalf("after 2 failures = %v, want down", st)
	}
	// A probe success promotes a corpse only to recovering: live traffic
	// waits for a second signal.
	m.probeSuccess(ep)
	if st := m.StateOf(ep); st != Recovering {
		t.Fatalf("after probe = %v, want recovering", st)
	}
	m.probeSuccess(ep)
	if st := m.StateOf(ep); st != Alive {
		t.Fatalf("after second probe = %v, want alive", st)
	}
	// A recovering replica that fails again is down immediately.
	m.ReportFailure(ep)
	m.ReportFailure(ep)
	m.probeSuccess(ep)
	m.probeFailure(ep)
	if st := m.StateOf(ep); st != Down {
		t.Fatalf("recovering + failure = %v, want down", st)
	}
	// A real send success resets everything.
	m.ReportSuccess(ep)
	if st := m.StateOf(ep); st != Alive {
		t.Fatalf("after success = %v, want alive", st)
	}
}

func TestPickAffinityAndFailover(t *testing.T) {
	m := New(Options{})
	m.AddSite("a", 3)
	// Affinity: the same key resolves to the same replica every time.
	first, ok := m.Pick("a", "q1", nil)
	if !ok {
		t.Fatal("pick failed")
	}
	m.ReportSuccess(first)
	for i := 0; i < 10; i++ {
		ep, ok := m.Pick("a", "q1", nil)
		if !ok || ep != first {
			t.Fatalf("pick %d = %q, want stable %q", i, ep, first)
		}
		m.ReportSuccess(ep)
	}
	// Failover: excluding the tried replica yields a different one, and
	// exhausting all three yields ok=false.
	tried := map[string]bool{first: true}
	second, ok := m.Pick("a", "q1", tried)
	if !ok || second == first {
		t.Fatalf("failover pick = %q (ok=%v)", second, ok)
	}
	m.ReportSuccess(second)
	tried[second] = true
	third, ok := m.Pick("a", "q1", tried)
	if !ok || tried[third] {
		t.Fatalf("third pick = %q (ok=%v)", third, ok)
	}
	m.ReportSuccess(third)
	tried[third] = true
	if ep, ok := m.Pick("a", "q1", tried); ok {
		t.Fatalf("pick with all tried returned %q", ep)
	}
	// Unknown sites resolve to the classic endpoint so unreplicated
	// traffic keeps flowing.
	if ep, ok := m.Pick("b", "q1", nil); !ok || ep != ReplicaEndpoint("b", 0) {
		t.Fatalf("unknown site pick = %q (ok=%v)", ep, ok)
	}
}

func TestPickPrefersHealthierTier(t *testing.T) {
	m := New(Options{SuspectAfter: 1, DownAfter: 1})
	m.AddSite("a", 2)
	// Drive the key's hashed favourite down; picks must deflect to the
	// healthy sibling.
	fav, _ := m.Pick("a", "q9", nil)
	m.ReportFailure(fav)
	m.ReportFailure(fav)
	for i := 0; i < 5; i++ {
		ep, ok := m.Pick("a", "q9", nil)
		if !ok || ep == fav {
			t.Fatalf("pick %d routed to the down replica %q", i, fav)
		}
		m.ReportSuccess(ep)
	}
}

func TestLoadDamping(t *testing.T) {
	m := New(Options{})
	m.AddSite("a", 2)
	fav, _ := m.Pick("a", "qx", nil)
	// Pile load on the favourite without balancing reports; once the skew
	// passes the slack, picks spill to the sibling.
	spilled := ""
	for i := 0; i < loadSlack+2; i++ {
		ep, _ := m.Pick("a", "qx", nil)
		if ep != fav {
			spilled = ep
			break
		}
	}
	if spilled == "" {
		t.Fatalf("no spill after %d unbalanced picks", loadSlack+2)
	}
}

func TestIncarnationBumpsOnRegister(t *testing.T) {
	m := New(Options{})
	m.AddSite("a", 2)
	ep := ReplicaEndpoint("a", 1)
	if inc := m.Register(ep); inc != 1 {
		t.Fatalf("first registration inc = %d", inc)
	}
	if inc := m.Register(ep); inc != 2 {
		t.Fatalf("re-registration inc = %d", inc)
	}
	if got := m.Incarnation(ep); got != 2 {
		t.Fatalf("Incarnation = %d", got)
	}
	if got := m.Incarnation("nowhere/query"); got != 0 {
		t.Fatalf("unknown incarnation = %d", got)
	}
}

func TestSubscribeNotifiesOnDown(t *testing.T) {
	m := New(Options{SuspectAfter: 1, DownAfter: 1})
	m.AddSite("a", 2)
	ep := ReplicaEndpoint("a", 1)
	var events []State
	unsub := m.Subscribe(func(e string, s State) {
		if e == ep {
			events = append(events, s)
		}
	})
	m.ReportFailure(ep)
	m.ReportFailure(ep)
	if len(events) != 2 || events[0] != Suspect || events[1] != Down {
		t.Fatalf("events = %v, want [suspect down]", events)
	}
	unsub()
	m.ReportSuccess(ep)
	if len(events) != 2 {
		t.Fatalf("unsubscribed callback still fired: %v", events)
	}
}

func TestProberRevivesDownReplica(t *testing.T) {
	n := netsim.New(netsim.Options{})
	m := New(Options{SuspectAfter: 1, DownAfter: 1, ProbeEvery: 2 * time.Millisecond})
	m.AddSite("a", 2)
	ep := ReplicaEndpoint("a", 1)
	ln, err := n.Listen(ep)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	m.ReportFailure(ep)
	m.ReportFailure(ep)
	if st := m.StateOf(ep); st != Down {
		t.Fatalf("setup: state = %v", st)
	}
	m.StartProber(n)
	defer m.StopProber()
	deadline := time.Now().Add(2 * time.Second)
	for m.StateOf(ep) != Alive {
		if time.Now().After(deadline) {
			t.Fatalf("prober never revived the replica: %v", m.StateOf(ep))
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPickSpreadsKeysUniformly pins the rendezvous hash quality: replica
// endpoints of one site differ only in their trailing byte or two, and a
// hash without avalanche clusters their scores so badly that the bare
// site endpoint absorbs half of all keys (seen in practice with raw FNV:
// a 50/27/12/11 split across four replicas). Distinct keys must land on
// every replica in roughly equal measure.
func TestPickSpreadsKeysUniformly(t *testing.T) {
	m := New(Options{})
	m.AddSite("hot.example", 4)
	counts := make(map[string]int)
	const keys = 4000
	for i := 0; i < keys; i++ {
		ep, ok := m.Pick("hot.example", "user#"+strconv.Itoa(i), nil)
		if !ok {
			t.Fatal("Pick failed with all replicas alive")
		}
		counts[ep]++
		m.ReportSuccess(ep) // balance the load counter so damping stays out
	}
	if len(counts) != 4 {
		t.Fatalf("keys landed on %d replicas, want 4: %v", len(counts), counts)
	}
	for ep, n := range counts {
		frac := float64(n) / keys
		if frac < 0.15 || frac > 0.35 {
			t.Errorf("replica %s got %.0f%% of keys, want 15%%-35%% (all: %v)", ep, frac*100, counts)
		}
	}
}
