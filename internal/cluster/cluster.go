// Package cluster adds site replication to the WEBDIS engine. The paper
// pins each logical site to exactly one query server, so one crash stalls
// a traversal and caps the site's throughput; this package lets a logical
// site be served by N replica endpoints behind a shared membership table,
// the way federated-search mediators route each request among redundant
// sources.
//
// The design splits into three pieces:
//
//   - Naming: ReplicaEndpoint maps (site, index) to a wire endpoint.
//     Replica 0 IS the classic "<site>/query" endpoint, so an
//     unreplicated deployment is bit-identical to the seed; replicas
//     1..N-1 append "@i", which the fabric's prefix matcher treats as
//     part of the same site (a DownWindow on the bare site name still
//     covers every replica, while "@" keeps replica names from colliding
//     with the "/"-delimited path hierarchy).
//   - Health: each replica runs the alive → suspect → down → recovering
//     state machine. Send outcomes reported by the forward paths
//     (ReportSuccess / ReportFailure) drive the demotions; a background
//     prober with seeded jittered intervals re-dials non-alive replicas
//     and promotes them back (down → recovering → alive) without risking
//     live traffic on a corpse.
//   - Selection: Pick resolves a site to one replica endpoint by
//     rendezvous (highest-random-weight) hashing of the query ID, with a
//     damped least-loaded tiebreak. Hashing keeps one query's clones on
//     one replica — the per-server scheduler state (DRR queues, log
//     tables) of PR 4 stays coherent — while the load damping lets a
//     badly skewed site spill to its siblings. A `tried` set excludes
//     replicas the caller already exhausted, which is the failover loop:
//     re-resolve, replay, never the same corpse twice.
package cluster

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"webdis/internal/netsim"
)

// suffix mirrors server.Suffix (the query-server listen path). Duplicated
// here because server imports cluster, not the other way around.
const suffix = "/query"

// ReplicaEndpoint returns the wire endpoint of replica i of a site.
// Replica 0 is the classic unreplicated endpoint "<site>/query", so
// single-replica deployments are indistinguishable from the seed.
func ReplicaEndpoint(site string, i int) string {
	if i <= 0 {
		return site + suffix
	}
	return site + suffix + "@" + strconv.Itoa(i)
}

// State is one replica's health.
type State int

const (
	// Alive: the replica serves traffic.
	Alive State = iota
	// Suspect: recent sends failed; still routable when nothing better.
	Suspect
	// Down: declared dead. Routed to only when every sibling is worse;
	// the pool layer evicts its idle connections.
	Down
	// Recovering: a probe reached a down replica; one more good probe
	// (or any successful send) promotes it to Alive.
	Recovering
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	case Recovering:
		return "recovering"
	}
	return "unknown"
}

// tier orders states by routing preference (lower is better).
func (s State) tier() int {
	switch s {
	case Alive:
		return 0
	case Recovering:
		return 1
	case Suspect:
		return 2
	}
	return 3
}

// Options tunes a Membership. The zero value is usable.
type Options struct {
	// Seed drives the prober's jittered schedule; 0 uses a fixed default
	// so runs replay identically.
	Seed int64
	// SuspectAfter is the consecutive send failures that demote an alive
	// replica to suspect (default 1).
	SuspectAfter int
	// DownAfter is the further consecutive failures that demote a
	// suspect replica to down (default 1).
	DownAfter int
	// ProbeEvery is the mean probe interval (default 20ms; each tick is
	// jittered ±50% from the seeded source).
	ProbeEvery time.Duration
	// ProbeFrom is the symbolic dialer name probes use (default
	// "cluster/probe").
	ProbeFrom string
}

func (o Options) suspectAfter() int {
	if o.SuspectAfter < 1 {
		return 1
	}
	return o.SuspectAfter
}

func (o Options) downAfter() int {
	if o.DownAfter < 1 {
		return 1
	}
	return o.DownAfter
}

func (o Options) probeEvery() time.Duration {
	if o.ProbeEvery <= 0 {
		return 20 * time.Millisecond
	}
	return o.ProbeEvery
}

func (o Options) probeFrom() string {
	if o.ProbeFrom == "" {
		return "cluster/probe"
	}
	return o.ProbeFrom
}

// replica is one endpoint's row in the membership table.
type replica struct {
	site     string
	endpoint string
	state    State
	fails    int   // consecutive failures since the last success
	inc      int64 // incarnation: bumped by Register (replica [re]start)
	load     int64 // picks minus reports: sends currently in flight
}

// Info is a read-only snapshot of one replica's row.
type Info struct {
	Site        string
	Endpoint    string
	State       State
	Incarnation int64
	Load        int64
}

// Membership is the shared replica table of one deployment: every server
// and the user-site client consult the same instance, so liveness learned
// by one forward path benefits all of them. All methods are safe for
// concurrent use.
type Membership struct {
	opts Options

	mu     sync.Mutex
	sites  map[string][]*replica
	byEP   map[string]*replica
	subs   map[int]func(endpoint string, s State)
	subSeq int
	rng    *rand.Rand

	probeStop chan struct{}
	probeWG   sync.WaitGroup
}

// New returns an empty membership table.
func New(opts Options) *Membership {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &Membership{
		opts:  opts,
		sites: make(map[string][]*replica),
		byEP:  make(map[string]*replica),
		subs:  make(map[int]func(string, State)),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// AddSite seeds the static member list of one logical site with n
// replicas (n < 1 is treated as 1), all initially alive.
func (m *Membership) AddSite(site string, n int) {
	if n < 1 {
		n = 1
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := len(m.sites[site]); i < n; i++ {
		r := &replica{site: site, endpoint: ReplicaEndpoint(site, i)}
		m.sites[site] = append(m.sites[site], r)
		m.byEP[r.endpoint] = r
	}
}

// Sites returns the sites with registered replicas, sorted.
func (m *Membership) Sites() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.sites))
	for s := range m.sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Endpoints returns every replica endpoint of a site (nil when the site
// is not in the table).
func (m *Membership) Endpoints(site string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	reps := m.sites[site]
	out := make([]string, len(reps))
	for i, r := range reps {
		out[i] = r.endpoint
	}
	return out
}

// Register marks a replica endpoint as started, bumps and returns its
// incarnation number. A restarted replica stamps the new incarnation on
// its result frames; the user-site rejects frames from older
// incarnations (a stale reply from before the crash must not retire
// entries the new incarnation will re-announce). Unknown endpoints
// return 0.
func (m *Membership) Register(endpoint string) int64 {
	m.mu.Lock()
	r := m.byEP[endpoint]
	if r == nil {
		m.mu.Unlock()
		return 0
	}
	r.inc++
	r.fails = 0
	r.load = 0
	inc := r.inc
	note := m.transition(r, Alive)
	m.mu.Unlock()
	note()
	return inc
}

// Incarnation returns the endpoint's current incarnation (0 when unknown
// or never registered).
func (m *Membership) Incarnation(endpoint string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r := m.byEP[endpoint]; r != nil {
		return r.inc
	}
	return 0
}

// StateOf returns the endpoint's health state (Alive for unknown
// endpoints: the table never blocks traffic it knows nothing about).
func (m *Membership) StateOf(endpoint string) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r := m.byEP[endpoint]; r != nil {
		return r.state
	}
	return Alive
}

// Snapshot returns every replica row, sorted by endpoint.
func (m *Membership) Snapshot() []Info {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Info, 0, len(m.byEP))
	for _, r := range m.byEP {
		out = append(out, Info{
			Site: r.site, Endpoint: r.endpoint, State: r.state,
			Incarnation: r.inc, Load: r.load,
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Endpoint < out[k].Endpoint })
	return out
}

// loadSlack is how far the rendezvous-hashed primary's in-flight count
// may exceed the runner-up's before Pick deflects to the runner-up. The
// damping keeps one query's clones on one replica (scheduler and log-
// table state stay coherent) until the skew is large enough to matter.
const loadSlack = 8

// Pick resolves a site to one replica endpoint for the routing key
// (callers pass the query ID, so one query sticks to one replica).
// Replicas in tried are excluded — that is the failover loop's memory.
// Among the remaining replicas the healthiest state tier wins; within
// the tier, rendezvous hashing with the damped least-loaded tiebreak.
// The chosen replica's in-flight load is incremented; every Pick MUST be
// balanced by exactly one ReportSuccess or ReportFailure on the returned
// endpoint. Sites not in the table resolve to their classic endpoint.
// ok is false when every replica has been tried.
func (m *Membership) Pick(site, key string, tried map[string]bool) (ep string, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	reps := m.sites[site]
	if len(reps) == 0 {
		e := ReplicaEndpoint(site, 0)
		if tried[e] {
			return "", false
		}
		return e, true
	}
	var best []*replica
	bestTier := 4
	for _, r := range reps {
		if tried[r.endpoint] {
			continue
		}
		t := r.state.tier()
		if t < bestTier {
			bestTier = t
			best = best[:0]
		}
		if t == bestTier {
			best = append(best, r)
		}
	}
	if len(best) == 0 {
		return "", false
	}
	sort.Slice(best, func(i, k int) bool {
		return rendezvous(key, best[i].endpoint) > rendezvous(key, best[k].endpoint)
	})
	pick := best[0]
	if len(best) > 1 && pick.load > best[1].load+loadSlack {
		pick = best[1]
	}
	pick.load++
	return pick.endpoint, true
}

// rendezvous is the highest-random-weight score of one (key, endpoint)
// pair: every member ranks the candidates identically without any
// coordination, and removing a candidate only moves the keys that hashed
// to it.
func rendezvous(key, endpoint string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(endpoint))
	return mix64(h.Sum64())
}

// mix64 is the murmur3 finalizer. FNV has no output avalanche: replica
// endpoints of one site differ only in their last byte or two, so their
// raw FNV sums for the same key land within a few multiples of the FNV
// prime of each other — clustered so tightly that the bare site endpoint
// wins the rendezvous comparison about half the time. The finalizer
// scatters those near-collisions across the full 64-bit space, restoring
// the uniform key distribution rendezvous hashing promises.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// ReportSuccess records a completed send to the endpoint: the replica is
// alive, its failure streak resets, and the Pick that chose it is
// balanced.
func (m *Membership) ReportSuccess(endpoint string) {
	m.mu.Lock()
	r := m.byEP[endpoint]
	if r == nil {
		m.mu.Unlock()
		return
	}
	r.fails = 0
	if r.load > 0 {
		r.load--
	}
	note := m.transition(r, Alive)
	m.mu.Unlock()
	note()
}

// ReportFailure records a failed send (after the sender's own retries):
// the failure streak grows and may demote the replica.
func (m *Membership) ReportFailure(endpoint string) {
	m.mu.Lock()
	r := m.byEP[endpoint]
	if r == nil {
		m.mu.Unlock()
		return
	}
	if r.load > 0 {
		r.load--
	}
	note := m.fail(r)
	m.mu.Unlock()
	note()
}

// fail advances r's state machine for one failure. Caller holds mu; the
// returned func fires subscriber callbacks and must be called unlocked.
func (m *Membership) fail(r *replica) func() {
	r.fails++
	switch r.state {
	case Alive:
		if r.fails >= m.opts.suspectAfter()+m.opts.downAfter() {
			return m.transition(r, Down)
		}
		if r.fails >= m.opts.suspectAfter() {
			return m.transition(r, Suspect)
		}
	case Suspect:
		if r.fails >= m.opts.suspectAfter()+m.opts.downAfter() {
			return m.transition(r, Down)
		}
	case Recovering:
		// A recovering replica gets no benefit of the doubt.
		return m.transition(r, Down)
	}
	return func() {}
}

// transition moves r to state s and prepares the subscriber
// notifications. Caller holds mu; call the returned func unlocked.
func (m *Membership) transition(r *replica, s State) func() {
	if r.state == s {
		return func() {}
	}
	r.state = s
	if len(m.subs) == 0 {
		return func() {}
	}
	fns := make([]func(string, State), 0, len(m.subs))
	for _, fn := range m.subs {
		fns = append(fns, fn)
	}
	ep := r.endpoint
	return func() {
		for _, fn := range fns {
			fn(ep, s)
		}
	}
}

// Subscribe registers fn to be called on every replica state change
// (outside the table's lock). The returned func unsubscribes. The pool
// layers use this to evict idle connections to a replica the moment it
// is declared down, instead of waiting for the next send to fail.
func (m *Membership) Subscribe(fn func(endpoint string, s State)) (unsubscribe func()) {
	m.mu.Lock()
	id := m.subSeq
	m.subSeq++
	m.subs[id] = fn
	m.mu.Unlock()
	return func() {
		m.mu.Lock()
		delete(m.subs, id)
		m.mu.Unlock()
	}
}

// StartProber launches the background health prober: at seeded jittered
// intervals it dials every non-alive replica and feeds the outcome back
// into the state machine (suspect → alive, down → recovering → alive on
// success; recovering → down on failure). Idempotent; StopProber ends
// it.
func (m *Membership) StartProber(tr netsim.Transport) {
	if tr == nil {
		return
	}
	m.mu.Lock()
	if m.probeStop != nil {
		m.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	m.probeStop = stop
	m.mu.Unlock()
	m.probeWG.Add(1)
	go m.probeLoop(tr, stop)
}

// StopProber stops the prober and waits for it to exit.
func (m *Membership) StopProber() {
	m.mu.Lock()
	stop := m.probeStop
	m.probeStop = nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	m.probeWG.Wait()
}

func (m *Membership) probeLoop(tr netsim.Transport, stop chan struct{}) {
	defer m.probeWG.Done()
	for {
		t := time.NewTimer(m.probeInterval())
		select {
		case <-stop:
			t.Stop()
			return
		case <-t.C:
		}
		for _, ep := range m.unhealthy() {
			conn, err := tr.Dial(m.opts.probeFrom(), ep)
			if err == nil {
				conn.Close()
				m.probeSuccess(ep)
			} else {
				m.probeFailure(ep)
			}
		}
	}
}

// probeInterval draws the next jittered tick: every/2 .. every*3/2, from
// the seeded source, so probe schedules replay across runs.
func (m *Membership) probeInterval() time.Duration {
	every := m.opts.probeEvery()
	m.mu.Lock()
	j := time.Duration(m.rng.Int63n(int64(every) + 1))
	m.mu.Unlock()
	return every/2 + j
}

// unhealthy returns the endpoints worth probing (anything not alive).
func (m *Membership) unhealthy() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for _, r := range m.byEP {
		if r.state != Alive {
			out = append(out, r.endpoint)
		}
	}
	sort.Strings(out)
	return out
}

// probeSuccess promotes: suspect → alive, down → recovering,
// recovering → alive. A probe is a dial, not real work, so a down
// replica earns two good probes before live traffic returns to it.
func (m *Membership) probeSuccess(endpoint string) {
	m.mu.Lock()
	r := m.byEP[endpoint]
	if r == nil {
		m.mu.Unlock()
		return
	}
	r.fails = 0
	var note func()
	switch r.state {
	case Down:
		note = m.transition(r, Recovering)
	default:
		note = m.transition(r, Alive)
	}
	m.mu.Unlock()
	note()
}

// probeFailure demotes like a send failure, but without a Pick to
// balance.
func (m *Membership) probeFailure(endpoint string) {
	m.mu.Lock()
	r := m.byEP[endpoint]
	if r == nil {
		m.mu.Unlock()
		return
	}
	note := m.fail(r)
	m.mu.Unlock()
	note()
}

// String renders the table for debugging.
func (m *Membership) String() string {
	s := ""
	for _, in := range m.Snapshot() {
		s += fmt.Sprintf("%s inc=%d load=%d %s\n", in.Endpoint, in.Incarnation, in.Load, in.State)
	}
	return s
}
