package experiments

import (
	"fmt"
	"io"
	"time"

	"webdis/internal/centralized"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/webgraph"
)

// ShippingRow is one point of the query- vs data-shipping sweep.
type ShippingRow struct {
	Depth      int
	Pages      int
	Sites      int
	DistBytes  int64
	DistMsgs   int64
	CentBytes  int64
	CentMsgs   int64
	BytesRatio float64 // centralized / distributed
}

// ShippingOut is the T1 result: one table per query profile plus the
// document-size sweep.
type ShippingOut struct {
	Selective []ShippingRow // needle query: tiny results
	Gather    []ShippingRow // link extraction: large results
	BySize    []ShippingRow // fixed web, growing documents
}

func treeAt(depth int) *webgraph.Web {
	return webgraph.Tree(webgraph.TreeOpts{
		Fanout:       3,
		Depth:        depth,
		PagesPerSite: 4,
		MarkerFrac:   0.05,
		Seed:         42,
	})
}

// Shipping runs experiment T1: total network bytes and messages for the
// distributed engine versus the data-shipping baseline as the web grows.
// The paper argues this qualitatively in Sections 1 and 3.2.
func Shipping(w io.Writer) (*ShippingOut, error) {
	fmt.Fprintln(w, "T1: query shipping vs data shipping (paper §1, §3.2)")
	out := &ShippingOut{}

	profiles := []struct {
		name  string
		query func(start string) string
		dest  *[]ShippingRow
	}{
		{
			"selective (find pages carrying a rare token; results are tiny)",
			func(start string) string {
				return fmt.Sprintf(`select d.url from document d such that %q N|(L|G)* d where d.text contains %q`,
					start, webgraph.Marker)
			},
			&out.Selective,
		},
		{
			"gather (extract every hyperlink; results are the site map itself)",
			func(start string) string {
				return fmt.Sprintf(`select a.base, a.href from document d such that %q N|(L|G)* d, anchor a`, start)
			},
			&out.Gather,
		},
	}

	for _, p := range profiles {
		fmt.Fprintf(w, "\nprofile: %s\n", p.name)
		var rows [][]string
		for depth := 2; depth <= 5; depth++ {
			web := treeAt(depth)
			src := p.query(web.First())
			dist, err := runDistributed(web, netZero(), server.Options{}, src)
			if err != nil {
				return nil, err
			}
			cent, err := runCentralized(web, netZero(), centralized.Options{}, src)
			if err != nil {
				return nil, err
			}
			r := ShippingRow{
				Depth:     depth,
				Pages:     web.NumPages(),
				Sites:     web.NumSites(),
				DistBytes: dist.net.Bytes,
				DistMsgs:  dist.net.Messages,
				CentBytes: cent.net.Bytes,
				CentMsgs:  cent.net.Messages,
			}
			r.BytesRatio = float64(r.CentBytes) / float64(r.DistBytes)
			*p.dest = append(*p.dest, r)
			rows = append(rows, []string{
				fmt.Sprintf("%d", depth),
				fmt.Sprintf("%d", r.Pages),
				fmt.Sprintf("%d", r.Sites),
				fmtBytes(r.DistBytes),
				fmt.Sprintf("%d", r.DistMsgs),
				fmtBytes(r.CentBytes),
				fmt.Sprintf("%d", r.CentMsgs),
				fmt.Sprintf("%.1fx", r.BytesRatio),
			})
		}
		table(w, []string{"depth", "pages", "sites", "WEBDIS bytes", "msgs", "data-ship bytes", "msgs", "reduction"}, rows)
	}

	// Document-size sweep: the reduction is driven by how heavy documents
	// are relative to query clones, so it grows with page size.
	fmt.Fprintln(w, "\ndocument-size sweep (depth-3 tree, selective query):")
	var rows [][]string
	for _, words := range []int{50, 150, 400, 1000, 2500} {
		web := webgraph.Tree(webgraph.TreeOpts{
			Fanout: 3, Depth: 3, PagesPerSite: 4,
			MarkerFrac: 0.05, FillerWords: words, Seed: 42,
		})
		src := fmt.Sprintf(`select d.url from document d such that %q N|(L|G)* d where d.text contains %q`,
			web.First(), webgraph.Marker)
		dist, err := runDistributed(web, netZero(), server.Options{}, src)
		if err != nil {
			return nil, err
		}
		cent, err := runCentralized(web, netZero(), centralized.Options{}, src)
		if err != nil {
			return nil, err
		}
		r := ShippingRow{
			Depth: 3, Pages: web.NumPages(), Sites: web.NumSites(),
			DistBytes: dist.net.Bytes, DistMsgs: dist.net.Messages,
			CentBytes: cent.net.Bytes, CentMsgs: cent.net.Messages,
		}
		r.BytesRatio = float64(r.CentBytes) / float64(r.DistBytes)
		out.BySize = append(out.BySize, r)
		avg := web.TotalBytes() / int64(web.NumPages())
		rows = append(rows, []string{
			fmtBytes(avg),
			fmtBytes(r.DistBytes),
			fmtBytes(r.CentBytes),
			fmt.Sprintf("%.1fx", r.BytesRatio),
		})
	}
	table(w, []string{"avg document", "WEBDIS bytes", "data-ship bytes", "reduction"}, rows)

	fmt.Fprintln(w, "\nshape check: data shipping moves every frontier document, so its cost is the")
	fmt.Fprintln(w, "corpus itself; query shipping moves fixed-size clones and the answers only.")
	fmt.Fprintln(w, "Both scale linearly in page count (constant ratio down the depth sweep) but")
	fmt.Fprintln(w, "the ratio grows with document weight — the paper's 1999 claim, and more so")
	fmt.Fprintln(w, "for the selective profile whose answers stay tiny.")
	return out, nil
}

// LatencyRow is one point of the response-time sweep.
type LatencyRow struct {
	Latency time.Duration
	Dist    time.Duration
	Cent    time.Duration
}

// Latency runs experiment T2: end-to-end response time under per-message
// network latency. Distributed processing pipelines hops across sites
// while the centralized baseline pays a round trip per document fetch.
func Latency(w io.Writer) ([]LatencyRow, error) {
	fmt.Fprintln(w, "T2: response time under per-hop latency (paper §1)")
	fmt.Fprintln(w, "workload: the campus convener query")
	fmt.Fprintln(w)
	var out []LatencyRow
	var rows [][]string
	for _, lat := range []time.Duration{0, 2 * time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond} {
		n := netsim.Options{Latency: lat}
		dist, err := runDistributed(webgraph.Campus(), n, server.Options{}, webgraph.CampusDISQL)
		if err != nil {
			return nil, err
		}
		cent, err := runCentralized(webgraph.Campus(), n, centralized.Options{}, webgraph.CampusDISQL)
		if err != nil {
			return nil, err
		}
		r := LatencyRow{Latency: lat, Dist: dist.elapsed, Cent: cent.elapsed}
		out = append(out, r)
		rows = append(rows, []string{
			lat.String(), r.Dist.Round(100 * time.Microsecond).String(),
			r.Cent.Round(100 * time.Microsecond).String(),
			fmt.Sprintf("%.1fx", float64(r.Cent)/float64(max64(int64(r.Dist), 1))),
		})
	}
	table(w, []string{"per-msg latency", "WEBDIS response", "data-ship response", "speedup"}, rows)
	fmt.Fprintln(w, "\nshape check: the gap widens with latency — the centralized engine serializes")
	fmt.Fprintln(w, "a request/response round trip per document, while WEBDIS clones fan out in")
	fmt.Fprintln(w, "parallel and results return directly to the user-site.")
	return out, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
