package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"webdis/internal/client"
	"webdis/internal/core"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/trace"
	"webdis/internal/webgraph"
)

// TracingOut is the T12 result.
type TracingOut struct {
	// Campus journey reconstruction.
	Spans       int  // clone messages in the reconstructed tree
	Complete    bool // every span accounted for (no in-flight/lost)
	TraversalOK bool // journaled traversal ≡ legacy tracer's Figure-7 sequence
	MaxHop      int

	// Tracing overhead on the sweep web (min over repetitions).
	Baseline time.Duration
	Traced   time.Duration
	Overhead float64 // (traced-baseline)/baseline
	Events   int     // journal events of one traced run

	// Fault localization: lost rows attributed to failed edges.
	LostRows     int
	LostSpans    int
	Terminated   int
	FaultSeed    int64
	LostEdges    map[[2]string]int // per (from-site, dest-site), from the journey
	FaultedEdges map[[2]string]int // ground truth: injected drops+severs per edge
	Localized    bool              // every attributed edge really faulted
}

// siteOfEndpoint maps a transport endpoint back to its site name
// ("t3.example/query" -> "t3.example", "user/q1" -> "user").
func siteOfEndpoint(ep string) string {
	if i := strings.IndexByte(ep, '/'); i >= 0 {
		return ep[:i]
	}
	return ep
}

// kindTable prints the fabric's per-kind message mix.
func kindTable(w io.Writer, title string, byKind map[string]int64) {
	if len(byKind) == 0 {
		return
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	var rows [][]string
	for _, k := range kinds {
		rows = append(rows, []string{k, fmt.Sprintf("%d", byKind[k])})
	}
	fmt.Fprintf(w, "\n%s\n", title)
	table(w, []string{"message kind", "count"}, rows)
}

// Tracing runs experiment T12: the causal tracing subsystem exercised
// three ways. First the campus execution is replayed with tracing on and
// the reconstructed journey is checked against the legacy tracer's
// Figure-7 sequence. Then tracing's overhead is measured on the T11 sweep
// web (min over repetitions, traced vs untraced). Finally faults are
// injected with the classic (no-recovery) engine and the journey's lost
// spans are checked against the fabric's ground-truth fault ledger: the
// trace must attribute the missing rows to exactly the edges that failed.
func Tracing(w io.Writer) (*TracingOut, error) {
	fmt.Fprintln(w, "T12: causal tracing — journey reconstruction, overhead, fault localization")
	out := &TracingOut{}

	// --- Part 1: the campus journey vs Figure 7 -----------------------
	var mu sync.Mutex
	var legacy []server.Event
	d, err := core.NewDeployment(core.Config{
		Web: webgraph.Campus(),
		Server: server.Options{Trace: func(e server.Event) {
			mu.Lock()
			legacy = append(legacy, e)
			mu.Unlock()
		}},
		NoDocService: true,
		Trace:        true,
	})
	if err != nil {
		return nil, err
	}
	q, err := d.Run(webgraph.CampusDISQL, 30*time.Second)
	if err != nil {
		d.Close()
		return nil, err
	}
	jy := d.Journey(q)
	out.Spans = len(jy.Spans)
	out.Complete = jy.Complete()
	jy.Walk(func(n *trace.SpanNode, _ int) {
		if n.Hop > out.MaxHop {
			out.MaxHop = n.Hop
		}
	})

	// The journaled traversal and the legacy tracer watched the same run;
	// up to cross-site timing ties they must list the same node visits in
	// the same states.
	journaled := make(map[string]int)
	for _, l := range jy.Traversal() {
		journaled[l.Node+"|"+l.State+"|"+l.Action]++
	}
	legacySeq := make(map[string]int)
	mu.Lock()
	for _, e := range legacy {
		switch e.Action {
		case "eval", "route", "dead-end", "drop", "rewrite", "missing":
			legacySeq[e.Node+"|"+e.State.String()+"|"+e.Action]++
		}
	}
	mu.Unlock()
	out.TraversalOK = len(journaled) == len(legacySeq)
	for k, n := range legacySeq {
		if journaled[k] != n {
			out.TraversalOK = false
		}
	}

	fmt.Fprintln(w, "\ncampus clone tree (reconstructed from the site journals):")
	fmt.Fprint(w, jy.Tree())
	fmt.Fprintln(w, "\ntraversal regenerated from the journey (Figure 7):")
	fmt.Fprint(w, jy.FormatTraversal())
	fmt.Fprintf(w, "\n%d spans, complete=%v, max hop %d; matches legacy Figure-7 trace: %v\n",
		out.Spans, out.Complete, out.MaxHop, out.TraversalOK)
	kindTable(w, "message mix of the traced campus run (netsim per-kind counts):",
		d.Network().Stats().Snapshot().Total().ByKind)
	d.Close()

	// --- Part 2: overhead ---------------------------------------------
	web := faultsWeb(7)
	src := faultsQuery(web.First())
	const reps = 5
	run := func(traced bool) (time.Duration, int, error) {
		best := time.Duration(-1)
		events := 0
		for i := 0; i < reps; i++ {
			dep, err := core.NewDeployment(core.Config{
				Web: web, NoDocService: true, Trace: traced,
			})
			if err != nil {
				return 0, 0, err
			}
			start := time.Now()
			if _, err := dep.Run(src, 30*time.Second); err != nil {
				dep.Close()
				return 0, 0, err
			}
			el := time.Since(start)
			if best < 0 || el < best {
				best = el
			}
			if traced {
				events = len(dep.TraceEvents())
			}
			dep.Close()
		}
		return best, events, nil
	}
	base, _, err := run(false)
	if err != nil {
		return nil, err
	}
	traced, events, err := run(true)
	if err != nil {
		return nil, err
	}
	out.Baseline, out.Traced, out.Events = base, traced, events
	out.Overhead = float64(traced-base) / float64(base)
	fmt.Fprintf(w, "\noverhead (40-site tree, min of %d runs): untraced %v, traced %v -> %+.1f%% (%d journal events per run)\n",
		reps, base.Round(time.Microsecond), traced.Round(time.Microsecond), out.Overhead*100, events)

	// --- Part 3: fault localization -----------------------------------
	// The classic engine (no retry, no bounce) under seeded frame loss:
	// every vanished clone must show up in the journey as a lost span
	// whose (from, dest) edge really did drop or sever a frame.
	fw := faultsWeb(3)
	fsrc := faultsQuery(fw.First())
	want, err := faultsTruth(fw, fsrc)
	if err != nil {
		return nil, err
	}
	// Scan fault seeds for a run that survives the initial dispatch but
	// still loses rows — some schedules kill the very first clone (total
	// loss, nothing to trace), others drop nothing at all.
	var dep *core.Deployment
	var fq *client.Query
	got := 0
	for seed := int64(1); seed <= 32; seed++ {
		dep, err = core.NewDeployment(core.Config{
			Web:       fw,
			Net:       netsim.Options{Faults: netsim.FaultPlan{Seed: seed, Drop: 0.12, Sever: 0.02}},
			ReapGrace: 400 * time.Millisecond,
			Trace:     true,
		})
		if err != nil {
			return nil, err
		}
		fq, err = dep.Run(fsrc, 30*time.Second)
		if fq == nil {
			dep.Close()
			if err == nil {
				return nil, fmt.Errorf("experiments: fault run returned no query")
			}
			continue // initial dispatch lost: try the next schedule
		}
		got = 0
		for _, t := range fq.Results() {
			got += len(t.Rows)
		}
		out.FaultSeed = seed
		if got < want {
			break
		}
		dep.Close()
		dep = nil
	}
	if dep == nil {
		return nil, fmt.Errorf("experiments: no fault seed produced a lossy traceable run")
	}
	defer dep.Close()
	out.LostRows = want - got
	fjy := dep.Journey(fq)
	out.LostEdges = fjy.LostEdges()
	out.LostSpans = len(fjy.Lost())
	// A termination is a failed result dispatch: the loss sits on the
	// processing site's edge to the user-site collector.
	user := siteOfEndpoint(fq.ID().Site)
	for _, e := range fjy.Events {
		if e.Kind == trace.Terminate {
			out.Terminated++
			out.LostEdges[[2]string{e.Site, user}]++
		}
	}

	// Ground truth: the fabric's per-edge failure ledger, keyed by site.
	// Every failed send in this fabric is recorded — dropped or severed
	// frames, or a refused dial (e.g. the collector already closed).
	out.FaultedEdges = make(map[[2]string]int)
	sn := dep.Network().Stats().Snapshot()
	for _, e := range sn.SortedEdges() {
		c := sn.Edges[e]
		if n := c.Dropped + c.Severed + c.Refused; n > 0 {
			k := [2]string{siteOfEndpoint(e.From), siteOfEndpoint(e.To)}
			out.FaultedEdges[k] += int(n)
		}
	}
	out.Localized = true
	var rows [][]string
	var keys [][2]string
	for k := range out.LostEdges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		faulted := out.FaultedEdges[k]
		if faulted == 0 {
			out.Localized = false
		}
		rows = append(rows, []string{
			k[0], k[1],
			fmt.Sprintf("%d", out.LostEdges[k]),
			fmt.Sprintf("%d", faulted),
		})
	}
	fmt.Fprintf(w, "\nfault localization (classic engine, 12%% drop + 2%% sever, seed %d):\n", out.FaultSeed)
	fmt.Fprintf(w, "  answer %d of %d rows (%d lost); journey: %d lost spans, %d terminations\n",
		got, want, out.LostRows, out.LostSpans, out.Terminated)
	if len(rows) > 0 {
		table(w, []string{"from site", "dest site", "losses (trace)", "failures (ground truth)"}, rows)
	}
	fmt.Fprintf(w, "  every trace-attributed edge verified against the fault ledger: %v\n", out.Localized)
	return out, nil
}
