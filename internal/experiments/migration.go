package experiments

import (
	"fmt"
	"io"
	"time"

	"webdis/internal/core"
	"webdis/internal/webgraph"
)

// MigrationRow is one participation level of experiment T8.
type MigrationRow struct {
	Percent     int
	Bytes       int64
	ServerEvals int64
	UserEvals   int
	Fetches     int
	Bounces     int64
}

// Migration runs experiment T8, quantifying the paper's Section 7.1
// migration path: the same query over the same web as the fraction of
// sites running a WEBDIS query server grows from none (fully centralized)
// to all (fully distributed). Non-participating sites' clones bounce back
// to the user-site, whose hybrid fallback downloads their documents and
// evaluates centrally, rejoining distributed mode at the next
// participating site.
func Migration(w io.Writer) ([]MigrationRow, error) {
	fmt.Fprintln(w, "T8: the centralized-to-distributed migration path (paper §7.1)")
	web := webgraph.Tree(webgraph.TreeOpts{
		Fanout: 3, Depth: 4, PagesPerSite: 4,
		MarkerFrac: 0.1, FillerWords: 300, Seed: 17,
	})
	src := fmt.Sprintf(`select d.url from document d such that %q N|(L|G)* d where d.text contains %q`,
		web.First(), webgraph.Marker)
	hosts := web.Hosts()
	fmt.Fprintf(w, "workload: %d pages on %d sites (~%s/page), selective token query\n\n",
		web.NumPages(), web.NumSites(), fmtBytes(web.TotalBytes()/int64(web.NumPages())))

	var out []MigrationRow
	var rows [][]string
	for _, pct := range []int{0, 25, 50, 75, 100} {
		cut := len(hosts) * pct / 100
		set := make(map[string]bool, cut)
		for _, h := range hosts[:cut] {
			set[h] = true
		}
		d, err := core.NewDeployment(core.Config{
			Web:         web,
			Participate: func(site string) bool { return set[site] },
		})
		if err != nil {
			return nil, err
		}
		q, err := d.Run(src, 30*time.Second)
		if err != nil {
			d.Close()
			return nil, err
		}
		m := d.Metrics().Snapshot()
		fs := q.FallbackStats()
		r := MigrationRow{
			Percent:     pct,
			Bytes:       d.Network().Stats().Snapshot().Total().Bytes,
			ServerEvals: m.Evaluations,
			UserEvals:   fs.Evaluations,
			Fetches:     fs.Fetches,
			Bounces:     m.Bounced,
		}
		nrows := 0
		for _, tbl := range q.Results() {
			nrows += len(tbl.Rows)
		}
		d.Close()
		out = append(out, r)
		rows = append(rows, []string{
			fmt.Sprintf("%d%%", pct),
			fmtBytes(r.Bytes),
			fmt.Sprintf("%d", r.ServerEvals),
			fmt.Sprintf("%d", r.UserEvals),
			fmt.Sprintf("%d", r.Fetches),
			fmt.Sprintf("%d", nrows),
		})
	}
	table(w, []string{"participating sites", "network bytes", "server evals", "user-site evals", "docs downloaded", "result rows"}, rows)
	fmt.Fprintln(w, "\nshape check: answers are identical at every participation level; as sites")
	fmt.Fprintln(w, "adopt WEBDIS, evaluation moves from the user-site to the web, document")
	fmt.Fprintln(w, "downloads vanish, and total traffic falls toward the fully distributed cost —")
	fmt.Fprintln(w, "the paper's \"gradual migration path from a largely centralized to a fully")
	fmt.Fprintln(w, "distributed system\".")
	return out, nil
}
