package experiments

import (
	"fmt"
	"io"
	"time"

	"webdis/internal/core"
	"webdis/internal/netsim"
	"webdis/internal/webgraph"
)

// AnytimeRow is one sample of the progressive-results curve.
type AnytimeRow struct {
	Elapsed  time.Duration
	Rows     int
	Progress float64
}

// AnytimeOut is the T10 result.
type AnytimeOut struct {
	Samples   []AnytimeRow
	FinalRows int
	Duration  time.Duration
}

// Anytime runs experiment T10: the progressive-delivery property of
// Section 2.6 — results return directly to the user-site as each node
// answers, so answers accumulate long before the query completes. The
// experiment samples the user-visible row count while a latency-bound
// query runs, and shows that cancelling early yields a usable approximate
// answer (the paper's Section 7.1 "approximate queries" in its simplest
// form).
func Anytime(w io.Writer) (*AnytimeOut, error) {
	fmt.Fprintln(w, "T10: anytime results (paper §2.6 streaming, §7.1 approximate queries)")
	web := webgraph.Tree(webgraph.TreeOpts{Fanout: 3, Depth: 4, PagesPerSite: 4, MarkerFrac: 0.3, Seed: 21})
	src := fmt.Sprintf(`select d.url from document d such that %q N|(L|G)* d where d.text contains %q`,
		web.First(), webgraph.Marker)
	fmt.Fprintf(w, "workload: %d-page tree, 3ms per-message latency, selective query\n\n", web.NumPages())

	d, err := core.NewDeployment(core.Config{
		Web:          web,
		Net:          netsim.Options{Latency: 3 * time.Millisecond},
		NoDocService: true,
	})
	if err != nil {
		return nil, err
	}
	defer d.Close()

	start := time.Now()
	q, err := d.SubmitDISQL(src)
	if err != nil {
		return nil, err
	}
	out := &AnytimeOut{}
	tick := time.NewTicker(4 * time.Millisecond)
	defer tick.Stop()
	for !q.Done() {
		<-tick.C
		out.Samples = append(out.Samples, AnytimeRow{
			Elapsed:  time.Since(start),
			Rows:     q.RowCount(),
			Progress: q.Progress(),
		})
	}
	if err := q.Wait(30 * time.Second); err != nil {
		return nil, err
	}
	out.Duration = time.Since(start)
	out.FinalRows = q.RowCount()

	var rows [][]string
	step := len(out.Samples) / 8
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(out.Samples); i += step {
		s := out.Samples[i]
		rows = append(rows, []string{
			s.Elapsed.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", s.Rows),
			fmt.Sprintf("%d%%", int(100*float64(s.Rows)/float64(max(out.FinalRows, 1)))),
			fmt.Sprintf("%d%%", int(100*s.Progress)),
		})
	}
	rows = append(rows, []string{out.Duration.Round(time.Millisecond).String(),
		fmt.Sprintf("%d", out.FinalRows), "100%", "100%"})
	table(w, []string{"elapsed", "rows at user-site", "of final answer", "CHT progress"}, rows)
	fmt.Fprintln(w, "\nshape check: the answer accumulates steadily — a user who cancels at any")
	fmt.Fprintln(w, "point keeps every row received so far, because results never wait for the")
	fmt.Fprintln(w, "query to finish (they are dispatched before the clone is even forwarded).")
	return out, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
