package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"webdis/internal/core"
	"webdis/internal/server"
	"webdis/internal/store"
	"webdis/internal/webgraph"
)

// storeMemBudgetMiB is T19's fixed per-process memory envelope: the
// store-backed arms must serve the big-web workload inside it while the
// unbounded in-RAM engine cannot.
const storeMemBudgetMiB = 6.0

// storePoolPages caps each site's buffer pool in the store arms. 16
// frames x 4 KiB = 64 KiB of resident pages per site — far below one
// site's share of the corpus, so the pool must evict to serve.
const storePoolPages = 16

// StoreRow is one cell of the T19 grid: one database-constructor backend
// on one topology, steady-state repeated queries over one deployment.
type StoreRow struct {
	Topology string `json:"topology"` // campus | bigtree
	Config   string `json:"config"`   // ram | ram-bounded | store | store-noindex
	Runs     int    `json:"runs"`

	MeanMs float64 `json:"mean_ms"`
	P95Ms  float64 `json:"p95_ms"`
	Rows   int     `json:"rows"` // result rows per query (identical down a column)

	// HeapGrowthMiB is the GC-settled heap growth from before the
	// deployment existed to after the measured workload, deployment
	// still serving — the memory the backend needs to hold its sites.
	HeapGrowthMiB float64 `json:"heap_growth_mib"`

	DocsParsed     int64 `json:"docs_parsed"`
	PagesRead      int64 `json:"pages_read"`
	PagesEvicted   int64 `json:"pages_evicted"`
	IndexHits      int64 `json:"index_hits"`
	ColdOpens      int64 `json:"cold_opens"`
	DBCacheEvicted int64 `json:"db_cache_evicted"`
}

// StoreOut is the T19 result.
type StoreOut struct {
	Rows []StoreRow `json:"rows"`

	// The big web against the repo's previously-largest workload (the
	// T18 wire-heavy tree): the subsystem's scale claim.
	WebPages      int     `json:"web_pages"`
	WebBytes      int64   `json:"web_bytes"`
	BaselineBytes int64   `json:"baseline_bytes"`
	WebScale      float64 `json:"web_scale"`

	// Memory headline on the big web: the store arm fits the fixed
	// budget, the unbounded in-RAM arm does not.
	MemBudgetMiB float64 `json:"mem_budget_mib"`
	RamGrowthMiB float64 `json:"ram_growth_mib"`
	StoreGrowMiB float64 `json:"store_growth_mib"`
	MemOK        bool    `json:"mem_ok"`

	// ContainsSpeedup is mean_ms(store-noindex)/mean_ms(store) on the
	// big web: what the persisted text index buys contains-predicates
	// over full text scans (acceptance: > 1).
	ContainsSpeedup float64 `json:"contains_speedup"`
}

// storeBigWeb is the T19 corpus: the same tree family as T18's tree40
// but with long documents — 10x+ the total bytes of anything the repo
// measured before, sized so holding every site's parsed database in RAM
// visibly exceeds the budget.
func storeBigWeb() *webgraph.Web {
	return webgraph.Tree(webgraph.TreeOpts{
		Fanout: 3, Depth: 5, PagesPerSite: 12,
		MarkerFrac: 0.05, FillerWords: 2000, Seed: 19,
	})
}

func storeBigQuery(w *webgraph.Web) string {
	// Two foldable text conjuncts: a selective hit and a never-hit
	// negation. With the index both decide per document from posting
	// lists; without it each costs a full scan of ~12 KB of text.
	return fmt.Sprintf(
		`select d.url from document d such that %q N|(L|G)*5 d where d.text contains %q and d.text not contains "qqfillerzz"`,
		w.First(), webgraph.Marker)
}

// storeConfigs lists the measured backends. "ram" is the engine as of
// PR 8 with footnote-3 retention; "ram-bounded" adds the per-site LRU
// cap (cheap memory bound, paid in re-parses); the store arms serve
// from slotted pages through the bounded buffer pool, with and without
// the persisted text index.
func storeConfigs() []struct {
	Name    string
	Opts    server.Options
	Store   bool
	NoIndex bool
} {
	ram := server.Options{CacheDBs: true, Workers: 4}
	bounded := ram
	bounded.DBCacheEntries = 4
	st := server.Options{Workers: 4}
	return []struct {
		Name    string
		Opts    server.Options
		Store   bool
		NoIndex bool
	}{
		{"ram", ram, false, false},
		{"ram-bounded", bounded, false, false},
		{"store", st, true, false},
		{"store-noindex", st, true, true},
	}
}

func storeWorkloads() []perfWorkload {
	return []perfWorkload{
		{"campus", webgraph.Campus, func(*webgraph.Web) string { return webgraph.CampusDISQL }},
		{"bigtree", storeBigWeb, storeBigQuery},
	}
}

// Store runs T19: the persistent site store against the in-RAM Database
// Constructor — heap ceiling and latency on a web an order of magnitude
// beyond the repo's previous largest, plus what the on-disk text index
// buys contains-predicates; writes the grid to BENCH_PR9.json.
func Store(w io.Writer) (*StoreOut, error) {
	return storeRun(w, 8, "BENCH_PR9.json")
}

// storeRun is the parameterized body; outPath == "" skips the JSON
// artifact (the shape test's mode).
func storeRun(w io.Writer, runs int, outPath string) (*StoreOut, error) {
	out := &StoreOut{MemBudgetMiB: storeMemBudgetMiB}
	big := storeBigWeb()
	out.WebPages = big.NumPages()
	out.WebBytes = big.TotalBytes()
	out.BaselineBytes = wireTreeWeb().TotalBytes()
	out.WebScale = float64(out.WebBytes) / float64(out.BaselineBytes)
	big = nil

	answers := make(map[string]string)
	for _, wl := range storeWorkloads() {
		for _, cfg := range storeConfigs() {
			row, answer, err := storeCell(wl, cfg.Name, cfg.Opts, cfg.Store, cfg.NoIndex, runs)
			if err != nil {
				return nil, fmt.Errorf("store %s/%s: %w", wl.Name, cfg.Name, err)
			}
			if prev, ok := answers[wl.Name]; !ok {
				answers[wl.Name] = answer
			} else if prev != answer {
				return nil, fmt.Errorf("store %s: config %s changed the answer", wl.Name, cfg.Name)
			}
			out.Rows = append(out.Rows, *row)
		}
	}

	var storeMean, noixMean float64
	for _, r := range out.Rows {
		if r.Topology != "bigtree" {
			continue
		}
		switch r.Config {
		case "ram":
			out.RamGrowthMiB = r.HeapGrowthMiB
		case "store":
			out.StoreGrowMiB = r.HeapGrowthMiB
			storeMean = r.MeanMs
		case "store-noindex":
			noixMean = r.MeanMs
		}
	}
	out.MemOK = out.StoreGrowMiB <= storeMemBudgetMiB && out.RamGrowthMiB > storeMemBudgetMiB
	if storeMean > 0 {
		out.ContainsSpeedup = noixMean / storeMean
	}

	fmt.Fprintln(w, "T19: persistent site store — slotted pages + buffer pool vs in-RAM databases")
	fmt.Fprintf(w, "(big web: %d pages, %s — %.1fx the previous largest corpus of %s;\n",
		out.WebPages, fmtBytes(out.WebBytes), out.WebScale, fmtBytes(out.BaselineBytes))
	fmt.Fprintln(w, " per cell: one deployment, 2 warmup queries, then", runs, "measured;")
	fmt.Fprintln(w, " store arms cold-open pre-built stores — parsing zero documents is enforced)")
	fmt.Fprintln(w)
	rows := make([][]string, 0, len(out.Rows))
	for _, r := range out.Rows {
		rows = append(rows, []string{
			r.Topology, r.Config,
			fmt.Sprintf("%.2f", r.MeanMs),
			fmt.Sprintf("%.2f", r.P95Ms),
			fmt.Sprintf("%d", r.Rows),
			fmt.Sprintf("%.2f", r.HeapGrowthMiB),
			fmt.Sprintf("%d", r.DocsParsed),
			fmt.Sprintf("%d/%d", r.PagesRead, r.PagesEvicted),
			fmt.Sprintf("%d", r.IndexHits),
			fmt.Sprintf("%d", r.ColdOpens),
			fmt.Sprintf("%d", r.DBCacheEvicted),
		})
	}
	table(w, []string{"topology", "config", "mean ms", "p95 ms", "rows", "heap MiB", "parsed", "pages r/e", "ixhits", "coldopen", "dbevict"}, rows)
	fmt.Fprintf(w, "\nheadline: big-web heap growth %.2f MiB (store) vs %.2f MiB (ram) against a %.0f MiB budget — mem_ok=%v\n",
		out.StoreGrowMiB, out.RamGrowthMiB, out.MemBudgetMiB, out.MemOK)
	fmt.Fprintf(w, "indexed contains runs %.2fx faster than full text scans (store-noindex/store)\n", out.ContainsSpeedup)

	if outPath != "" {
		blob, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "machine-readable grid written to %s\n", outPath)
	}
	return out, nil
}

// storeCell measures one backend on one topology. Store arms pre-build
// the site stores from one instance of the corpus, then deploy against
// a second, never-rendered instance: every page the engine serves can
// only have come off disk, and the deployment's ColdOpens/DocsParsed
// counters prove it (enforced here, not just reported).
func storeCell(wl perfWorkload, config string, opts server.Options, useStore, noIndex bool, runs int) (*StoreRow, string, error) {
	web := wl.Web()
	src := wl.Query(web)
	if useStore {
		dir, err := os.MkdirTemp("", "webdis-t19-*")
		if err != nil {
			return nil, "", err
		}
		defer os.RemoveAll(dir)
		get := func(u string) ([]byte, error) {
			html, ok := web.HTML(u)
			if !ok {
				return nil, fmt.Errorf("no page at %s", u)
			}
			return html, nil
		}
		for _, host := range web.Hosts() {
			st, err := store.Build(dir, host, web.URLsAt(host), get, store.Options{NoTextIndex: noIndex})
			if err != nil {
				return nil, "", err
			}
			st.Close()
		}
		web = wl.Web() // fresh corpus: the deployment must serve from pages
		opts.Store = server.StoreOptions{Dir: dir, PoolPages: storePoolPages, NoTextIndex: noIndex}
	}
	nsites := web.NumSites()

	g0 := heapMiB()
	d, err := core.NewDeployment(core.Config{Web: web, Server: opts, NoDocService: true})
	if err != nil {
		return nil, "", err
	}
	defer d.Close()

	answer := ""
	nrows := 0
	runOne := func() (time.Duration, error) {
		start := time.Now()
		q, err := d.Run(src, 30*time.Second)
		if err != nil {
			return 0, err
		}
		el := time.Since(start)
		var flat []string
		nrows = 0
		for _, t := range q.Results() {
			nrows += len(t.Rows)
			for _, r := range t.Rows {
				flat = append(flat, fmt.Sprintf("%d:%q", t.Stage, r))
			}
		}
		if nrows == 0 {
			return 0, fmt.Errorf("query delivered no rows")
		}
		sort.Strings(flat)
		answer = strings.Join(flat, "\n")
		return el, nil
	}

	for i := 0; i < 2; i++ {
		if _, err := runOne(); err != nil {
			return nil, "", err
		}
	}
	lat := make([]time.Duration, 0, runs)
	var total time.Duration
	for i := 0; i < runs; i++ {
		el, err := runOne()
		if err != nil {
			return nil, "", err
		}
		lat = append(lat, el)
		total += el
	}
	g1 := heapMiB() // deployment still serving: caches, pools and indexes are live
	snap := d.Metrics().Snapshot()

	if useStore {
		if snap.ColdOpens != int64(nsites) {
			return nil, "", fmt.Errorf("cold-opened %d stores, want %d", snap.ColdOpens, nsites)
		}
		if snap.StoreBuilds != 0 || snap.DocsParsed != 0 {
			return nil, "", fmt.Errorf("store arm rebuilt %d stores and parsed %d docs, want 0/0",
				snap.StoreBuilds, snap.DocsParsed)
		}
	}

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p95 := lat[(len(lat)*95+99)/100-1]
	row := &StoreRow{
		Topology: wl.Name, Config: config, Runs: runs,
		MeanMs:         float64(total.Microseconds()) / float64(runs) / 1e3,
		P95Ms:          float64(p95.Microseconds()) / 1e3,
		Rows:           nrows,
		HeapGrowthMiB:  g1 - g0,
		DocsParsed:     snap.DocsParsed,
		PagesRead:      snap.PagesRead,
		PagesEvicted:   snap.PagesEvicted,
		IndexHits:      snap.IndexHits,
		ColdOpens:      snap.ColdOpens,
		DBCacheEvicted: snap.DBCacheEvicted,
	}
	return row, answer, nil
}

// heapMiB returns the GC-settled live heap in MiB.
func heapMiB() float64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}
