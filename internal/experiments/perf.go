package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"webdis/internal/core"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/webgraph"
)

// PerfRow is one cell of the T13 hot-path grid: one engine configuration
// on one topology over one transport, repeated-query steady state.
type PerfRow struct {
	Transport string  `json:"transport"` // pipe (simulated fabric) | tcp (real sockets)
	Topology  string  `json:"topology"`  // campus | tree40
	Config    string  `json:"config"`
	Runs      int     `json:"runs"`
	MeanMs    float64 `json:"mean_ms"`
	P50Ms     float64 `json:"p50_ms"`
	Rows      int     `json:"rows"` // result rows per query (sanity: identical down a column)

	// Counter deltas over the measured runs (warmup excluded).
	ConnDialed       int64 `json:"conn_dialed"`
	ConnReused       int64 `json:"conn_reused"`
	ParseCacheHits   int64 `json:"parse_cache_hits"`
	ParseCacheMisses int64 `json:"parse_cache_misses"`
	DBBuildCoalesced int64 `json:"db_build_coalesced"`
	DBCacheHits      int64 `json:"db_cache_hits"`
	DocsParsed       int64 `json:"docs_parsed"`
}

// PerfOut is the T13 result.
type PerfOut struct {
	Rows []PerfRow `json:"rows"`
	// SpeedupTCPTree is mean(baseline)/mean(optimized) on the tcp/tree40
	// workload — the headline number (acceptance: >= 2x).
	SpeedupTCPTree float64 `json:"speedup_tcp_tree40"`
}

// perfConfigs lists the measured engine configurations. "baseline" is the
// seed engine exactly: dial per message, sequential fan-out, parse per
// arrival, racy-build-per-request, one Query Processor worker, no DB
// cache. "optimized" turns every PR-3 hot-path change on. The ablations
// each turn exactly one optimization back off to attribute the win.
func perfConfigs() []struct {
	Name string
	Opts server.Options
} {
	optimized := server.Options{CacheDBs: true, Workers: 4}
	noPool := optimized
	noPool.NoConnPool = true
	serial := optimized
	serial.SerialFanout = true
	noParse := optimized
	noParse.NoParseCache = true
	noSF := optimized
	noSF.NoSingleflight = true
	return []struct {
		Name string
		Opts server.Options
	}{
		{"baseline", server.Options{NoConnPool: true, SerialFanout: true, NoParseCache: true, NoSingleflight: true}},
		{"optimized", optimized},
		{"no-pool", noPool},
		{"serial-fanout", serial},
		{"no-parse-cache", noParse},
		{"no-singleflight", noSF},
	}
}

type perfWorkload struct {
	Name  string
	Web   func() *webgraph.Web
	Query func(w *webgraph.Web) string
}

func perfWorkloads() []perfWorkload {
	return []perfWorkload{
		{"campus", webgraph.Campus, func(*webgraph.Web) string { return webgraph.CampusDISQL }},
		{"tree40", perfTreeWeb,
			func(w *webgraph.Web) string { return faultsQuery(w.First()) }},
	}
}

// perfTreeWeb builds the 40-site tree used by the tree40 cells. Same
// shape as the fault experiments' tree (fanout 3, depth 3, one page per
// site so every tree edge stays a Global link) but with realistically
// sized documents — ~5000 words each instead of 30 — so the steady-state
// cost the baseline pays per clone arrival (re-parsing and re-indexing
// the site's documents to rebuild its database) is representative rather
// than degenerate. The optimized configuration builds each site's
// database once and serves every later query from cache.
func perfTreeWeb() *webgraph.Web {
	return webgraph.Tree(webgraph.TreeOpts{
		Fanout: 3, Depth: 3, PagesPerSite: 1,
		MarkerFrac: 0.6, FillerWords: 5000, Seed: 7,
	})
}

// Perf runs T13: the PR-3 hot-path overhaul measured as before/after
// ablations on the campus and 40-site-tree topologies over the simulated
// pipe fabric and real TCP sockets, writing the grid to BENCH_PR3.json.
func Perf(w io.Writer) (*PerfOut, error) {
	return perfRun(w, 10, "BENCH_PR3.json")
}

// perfRun is the parameterized body: runs measured queries per cell after
// warmup; outPath == "" skips the JSON artifact (the shape test's mode).
func perfRun(w io.Writer, runs int, outPath string) (*PerfOut, error) {
	out := &PerfOut{}
	for _, transport := range []string{"pipe", "tcp"} {
		for _, wl := range perfWorkloads() {
			web := wl.Web()
			src := wl.Query(web)
			for _, cfg := range perfConfigs() {
				row, err := perfCell(transport, wl.Name, cfg.Name, web, cfg.Opts, src, runs)
				if err != nil {
					return nil, fmt.Errorf("perf %s/%s/%s: %w", transport, wl.Name, cfg.Name, err)
				}
				out.Rows = append(out.Rows, *row)
			}
		}
	}

	var base, opt float64
	for _, r := range out.Rows {
		if r.Transport == "tcp" && r.Topology == "tree40" {
			switch r.Config {
			case "baseline":
				base = r.MeanMs
			case "optimized":
				opt = r.MeanMs
			}
		}
	}
	if opt > 0 {
		out.SpeedupTCPTree = base / opt
	}

	fmt.Fprintln(w, "T13: hot-path overhaul — steady-state query latency, before/after ablations")
	fmt.Fprintln(w, "(per cell: one shared deployment, 2 warmup queries, then", runs, "measured)")
	fmt.Fprintln(w)
	rows := make([][]string, 0, len(out.Rows))
	for _, r := range out.Rows {
		rows = append(rows, []string{
			r.Transport, r.Topology, r.Config,
			fmt.Sprintf("%.2f", r.MeanMs), fmt.Sprintf("%.2f", r.P50Ms),
			fmt.Sprintf("%d", r.Rows),
			fmt.Sprintf("%d", r.ConnDialed), fmt.Sprintf("%d", r.ConnReused),
			fmt.Sprintf("%d", r.ParseCacheHits), fmt.Sprintf("%d", r.DBBuildCoalesced),
			fmt.Sprintf("%d", r.DocsParsed),
		})
	}
	table(w, []string{"transport", "topology", "config", "mean ms", "p50 ms", "rows", "dialed", "reused", "parse hits", "coalesced", "docs parsed"}, rows)
	fmt.Fprintf(w, "\nheadline: tcp/tree40 optimized is %.2fx faster than the no-pool/no-cache/sequential baseline\n", out.SpeedupTCPTree)

	if outPath != "" {
		blob, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "machine-readable grid written to %s\n", outPath)
	}
	return out, nil
}

// perfCell measures one configuration: a single long-lived deployment
// (connection pools, parse cache and DB caches persist across queries —
// the steady state the optimizations target), two warmup queries, then
// timed repeats.
func perfCell(transport, topology, config string, web *webgraph.Web, opts server.Options, src string, runs int) (*PerfRow, error) {
	cfg := core.Config{Web: web, Server: opts, NoDocService: true}
	if transport == "tcp" {
		cfg.Transport = netsim.NewTCP()
	}
	d, err := core.NewDeployment(cfg)
	if err != nil {
		return nil, err
	}
	defer d.Close()

	nrows := 0
	runOne := func() (time.Duration, error) {
		start := time.Now()
		q, err := d.Run(src, 30*time.Second)
		if err != nil {
			return 0, err
		}
		el := time.Since(start)
		nrows = 0
		for _, t := range q.Results() {
			nrows += len(t.Rows)
		}
		if nrows == 0 {
			return 0, fmt.Errorf("query delivered no rows")
		}
		return el, nil
	}

	for i := 0; i < 2; i++ {
		if _, err := runOne(); err != nil {
			return nil, err
		}
	}
	before := d.Metrics().Snapshot()
	durs := make([]time.Duration, 0, runs)
	for i := 0; i < runs; i++ {
		el, err := runOne()
		if err != nil {
			return nil, err
		}
		durs = append(durs, el)
	}
	after := d.Metrics().Snapshot()

	sort.Slice(durs, func(i, k int) bool { return durs[i] < durs[k] })
	var total time.Duration
	for _, el := range durs {
		total += el
	}
	return &PerfRow{
		Transport: transport, Topology: topology, Config: config, Runs: runs,
		MeanMs:           float64(total.Microseconds()) / float64(len(durs)) / 1e3,
		P50Ms:            float64(durs[len(durs)/2].Microseconds()) / 1e3,
		Rows:             nrows,
		ConnDialed:       after.ConnDialed - before.ConnDialed,
		ConnReused:       after.ConnReused - before.ConnReused,
		ParseCacheHits:   after.ParseCacheHits - before.ParseCacheHits,
		ParseCacheMisses: after.ParseCacheMisses - before.ParseCacheMisses,
		DBBuildCoalesced: after.DBBuildCoalesced - before.DBBuildCoalesced,
		DBCacheHits:      after.DBCacheHits - before.DBCacheHits,
		DocsParsed:       after.DocsParsed - before.DocsParsed,
	}, nil
}
