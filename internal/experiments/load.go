package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webdis/internal/client"
	"webdis/internal/core"
	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/sched"
	"webdis/internal/server"
	"webdis/internal/trace"
	"webdis/internal/webgraph"
	"webdis/internal/wire"
)

// T14: the multi-query scheduler under concurrent load. Three segments:
//
//   - Fairness: light interactive probes race a sustained heavy workload
//     at one query server, FIFO vs weighted-fair drain, over the pipe
//     fabric and real TCP. The claim: fair keeps the light p95 near its
//     unloaded value while FIFO multiplies it by the backlog.
//   - Shedding: admission control over the high watermark refuses fresh
//     queries with a typed SHED bounce while every admitted query still
//     delivers its complete answer.
//   - Expiry: a wire-carried deadline terminates in-flight clones with
//     typed EXPIRED reports that reconcile 1:1 in the stitched journey.

// LoadCell is one (transport, scheduler) fairness measurement.
type LoadCell struct {
	Transport string `json:"transport"` // pipe | tcp
	Sched     string `json:"sched"`     // fifo | fair
	Probes    int    `json:"probes"`    // light probes measured per phase

	UnloadedP50Ms float64 `json:"unloaded_p50_ms"`
	UnloadedP95Ms float64 `json:"unloaded_p95_ms"`
	LoadedP50Ms   float64 `json:"loaded_p50_ms"`
	LoadedP95Ms   float64 `json:"loaded_p95_ms"`
	// RatioP95 is loaded p95 / unloaded p95 — the fairness headline.
	RatioP95 float64 `json:"ratio_p95"`

	HeavyCompleted int `json:"heavy_completed"` // heavy queries finished during the loaded phase
	LightRows      int `json:"light_rows"`      // rows per probe (sanity: constant)
}

// LoadShed is the admission-control segment's outcome.
type LoadShed struct {
	Submitted   int   `json:"submitted"`
	Admitted    int   `json:"admitted"`
	ShedQueries int   `json:"shed_queries"` // queries bounced with Query.Shed()
	ShedMetric  int64 `json:"shed_metric"`  // server-side typed SHED count
	Activations int64 `json:"activations"`  // times the high watermark engaged
	QueuePeak   int   `json:"queue_peak"`   // deepest the bounded queue ever got
	TruthRows   int   `json:"truth_rows"`   // complete answer of one heavy query
	LostRows    int   `json:"lost_rows"`    // rows missing across admitted queries (must be 0)
}

// LoadExpiry is the deadline segment's outcome.
type LoadExpiry struct {
	DeadlineMs    float64 `json:"deadline_ms"`
	BudgetExpired int64   `json:"budget_expired"` // server-side expiry count
	FateExpired   int     `json:"fate_expired"`   // EXPIRED fates in the stitched journey
	Reconciled    bool    `json:"reconciled"`     // the two agree 1:1
	TruthRows     int     `json:"truth_rows"`
	DeliveredRows int     `json:"delivered_rows"` // partial answer under the deadline
}

// LoadOut is the T14 result.
type LoadOut struct {
	Cells  []LoadCell `json:"cells"`
	Shed   LoadShed   `json:"shed"`
	Expiry LoadExpiry `json:"expiry"`
}

// Cell returns the named fairness cell.
func (o *LoadOut) Cell(transport, sched string) *LoadCell {
	for i := range o.Cells {
		if o.Cells[i].Transport == transport && o.Cells[i].Sched == sched {
			return &o.Cells[i]
		}
	}
	return nil
}

// Load-web geometry. One site, one Query Processor worker: every clone of
// every query contends for the same queue, which is the regime the
// scheduler exists for.
const (
	loadSite   = "load.example"
	loadChains = 40 // chain heads the heavy query fans into (burst width)
	loadDepth  = 2  // chain nodes past each head
	loadFan    = 5  // marked leaf pages per chain node
	loadProbes = 12 // pages one light probe reads
)

// loadWeb builds the contention topology: a hub fanning into loadChains
// local chains (the heavy scan), plus loadProbes standalone probe pages
// (the light query). Everything lives on one site so one server's queue
// serializes all of it.
func loadWeb() *webgraph.Web {
	w := webgraph.NewWeb()
	r := rand.New(rand.NewSource(11))
	filler := func(p *webgraph.Page, words int) {
		for words > 0 {
			n := 40 + r.Intn(40)
			if n > words {
				n = words
			}
			var sb strings.Builder
			for i := 0; i < n; i++ {
				fmt.Fprintf(&sb, "w%d ", r.Intn(5000))
			}
			p.AddText(sb.String())
			words -= n
		}
	}
	base := "http://" + loadSite + "/"

	hub := w.NewPage(base+"hub.html", "Load workload hub")
	filler(hub, 200)
	leafNo := 0
	leaf := func(p *webgraph.Page) {
		for f := 0; f < loadFan; f++ {
			leafNo++
			url := fmt.Sprintf("%sleaf%d.html", base, leafNo)
			p.AddLink(url, "leaf")
			lp := w.NewPage(url, fmt.Sprintf("Leaf %d", leafNo))
			lp.AddText("This page carries the payload token " + webgraph.Marker + ".")
			filler(lp, 1600)
		}
	}
	for i := 1; i <= loadChains; i++ {
		head := w.NewPage(fmt.Sprintf("%shead%d.html", base, i), fmt.Sprintf("chain head %d", i))
		filler(head, 220)
		hub.AddLink(fmt.Sprintf("/head%d.html", i), "chain")
		leaf(head)
		prev := head
		for j := 1; j <= loadDepth; j++ {
			url := fmt.Sprintf("%schain%d_%d.html", base, i, j)
			prev.AddLink(url, "next")
			node := w.NewPage(url, fmt.Sprintf("Chain %d node %d", i, j))
			filler(node, 220)
			leaf(node)
			prev = node
		}
	}
	for m := 1; m <= loadProbes; m++ {
		p := w.NewPage(fmt.Sprintf("%sprobe%d.html", base, m), fmt.Sprintf("Probe %d", m))
		p.AddText("The beacon shines here.")
		// The probe pages are deliberately substantial: the probe's own
		// evaluation cost is the unloaded baseline the ratios divide by,
		// and it must sit well above scheduler-wakeup jitter for the
		// loaded/unloaded comparison to measure queueing, not noise.
		filler(p, 24000)
	}
	return w
}

// loadHeavyDISQL is the heavy scan: stage 1 matches every chain head one
// local link from the hub, and each head advances to stage 2 with its own
// binding — a burst of per-head clones that then walk their chains. One
// heavy query therefore keeps ~loadChains clone batches queued at once.
// The d0.title reference in stage 2 is what makes the stages correlated:
// each head's continuation carries its own environment, so the per-head
// clones cannot batch back into one message.
func loadHeavyDISQL() string {
	return fmt.Sprintf(`
select d0.url, d1.url
from document d0 such that %q L d0,
where d0.title contains "chain"
     document d1 such that d0 (L*%d) d1,
where (d1.text contains %q) and (d0.title contains "chain")
`, "http://"+loadSite+"/hub.html", loadDepth+1, webgraph.Marker)
}

// loadLightDISQL is the light probe: one multi-source batch, evaluated in
// a single clone — the 2-hop-lookup class of query that FIFO starves.
func loadLightDISQL() string {
	urls := make([]string, loadProbes)
	for m := range urls {
		urls[m] = fmt.Sprintf("%q", fmt.Sprintf("http://%s/probe%d.html", loadSite, m+1))
	}
	return fmt.Sprintf(`select d.url from document d such that (%s) N d where d.text contains "beacon"`,
		strings.Join(urls, ", "))
}

// Load runs T14 and writes BENCH_PR4.json.
func Load(w io.Writer) (*LoadOut, error) {
	return loadRun(w, 40, "BENCH_PR4.json")
}

// loadRun is the parameterized body; outPath == "" skips the JSON
// artifact (the shape test's mode).
func loadRun(w io.Writer, probes int, outPath string) (*LoadOut, error) {
	// The experiment measures scheduling latency in the tails, so two
	// process-wide knobs are pinned for its duration: at least two
	// scheduler slots (so socket readiness is fielded by an idle M
	// instead of waiting out sysmon's ~10ms poll beat while the Query
	// Processor saturates one CPU), and a relaxed GC target (each probe
	// parses ~100 KiB of text, and at the default target the collector's
	// assist pauses land in every percentile this experiment reports).
	if runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}
	defer debug.SetGCPercent(debug.SetGCPercent(1000))

	out := &LoadOut{}
	for _, transport := range []string{"pipe", "tcp"} {
		for _, schedName := range []string{"fifo", "fair"} {
			cell, err := loadCell(transport, schedName, probes)
			if err != nil {
				return nil, fmt.Errorf("load %s/%s: %w", transport, schedName, err)
			}
			out.Cells = append(out.Cells, *cell)
		}
	}
	shed, err := loadShedSegment()
	if err != nil {
		return nil, fmt.Errorf("load shed: %w", err)
	}
	out.Shed = *shed
	exp, err := loadExpirySegment()
	if err != nil {
		return nil, fmt.Errorf("load expiry: %w", err)
	}
	out.Expiry = *exp

	fmt.Fprintln(w, "T14: multi-query admission control and fair scheduling")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "fairness: light-probe latency, unloaded vs under a sustained heavy scan")
	fmt.Fprintln(w, "(one site, one worker; 5 concurrent heavy scans resubmitted continuously)")
	var rows [][]string
	for _, c := range out.Cells {
		rows = append(rows, []string{
			c.Transport, c.Sched, fmt.Sprint(c.Probes),
			fmt.Sprintf("%.2f", c.UnloadedP50Ms), fmt.Sprintf("%.2f", c.UnloadedP95Ms),
			fmt.Sprintf("%.2f", c.LoadedP50Ms), fmt.Sprintf("%.2f", c.LoadedP95Ms),
			fmt.Sprintf("%.1fx", c.RatioP95), fmt.Sprint(c.HeavyCompleted),
		})
	}
	table(w, []string{"transport", "sched", "probes", "idle p50", "idle p95", "loaded p50", "loaded p95", "p95 ratio", "heavy done"}, rows)

	s := out.Shed
	fmt.Fprintf(w, "\nshedding: %d heavy queries submitted, %d admitted, %d shed (typed SHED; server counted %d)\n",
		s.Submitted, s.Admitted, s.ShedQueries, s.ShedMetric)
	fmt.Fprintf(w, "  watermark engaged %d time(s), queue peak %d; admitted answers complete: %d rows each, %d lost\n",
		s.Activations, s.QueuePeak, s.TruthRows, s.LostRows)

	e := out.Expiry
	fmt.Fprintf(w, "\nexpiry: deadline %.1f ms cut the heavy scan to %d of %d rows\n",
		e.DeadlineMs, e.DeliveredRows, e.TruthRows)
	fmt.Fprintf(w, "  %d clones expired server-side; stitched journey shows %d EXPIRED fates (reconciled: %v)\n",
		e.BudgetExpired, e.FateExpired, e.Reconciled)

	if outPath != "" {
		blob, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "\nmachine-readable results written to %s\n", outPath)
	}
	return out, nil
}

// loadCell measures one fairness cell: unloaded light probes, then the
// same probes while two heavy scans keep the site's queue backlogged.
func loadCell(transport, schedName string, probes int) (*LoadCell, error) {
	opts := server.Options{}
	if schedName == "fair" {
		opts.Sched = sched.Options{Fair: true}
	}
	cfg := core.Config{Web: loadWeb(), Server: opts, NoDocService: true}
	if transport == "tcp" {
		cfg.Transport = netsim.NewTCP()
	}
	d, err := core.NewDeployment(cfg)
	if err != nil {
		return nil, err
	}
	defer d.Close()
	// The probes and the heavy load generators are different users:
	// each gets its own session, so each has its own Result Collector
	// endpoint. (Sharing one session would serialize the probe's
	// completion reports behind the heavy queries' result traffic on
	// the session's pooled connection — a FIFO outside the scheduler
	// that would drown exactly the signal this cell measures.)
	probeSess, err := d.Client().NewSession()
	if err != nil {
		return nil, err
	}
	defer probeSess.Close()
	heavySess, err := d.Client().NewSession()
	if err != nil {
		return nil, err
	}
	defer heavySess.Close()

	cell := &LoadCell{Transport: transport, Sched: schedName, Probes: probes}
	probe := func() (time.Duration, error) {
		wq, err := disql.Parse(loadLightDISQL())
		if err != nil {
			return 0, err
		}
		start := time.Now()
		q, err := probeSess.SubmitBudget(wq, wire.Budget{Weight: 4})
		if err != nil {
			return 0, err
		}
		if err := q.Wait(30 * time.Second); err != nil {
			return 0, err
		}
		cell.LightRows = 0
		for _, t := range q.Results() {
			cell.LightRows += len(t.Rows)
		}
		if cell.LightRows == 0 {
			return 0, fmt.Errorf("light probe found no rows")
		}
		return time.Since(start), nil
	}
	phase := func() ([]time.Duration, error) {
		durs := make([]time.Duration, 0, probes)
		for i := 0; i < probes; i++ {
			el, err := probe()
			if err != nil {
				return nil, err
			}
			durs = append(durs, el)
			time.Sleep(2 * time.Millisecond)
		}
		sort.Slice(durs, func(i, k int) bool { return durs[i] < durs[k] })
		return durs, nil
	}

	// Unloaded baseline (2 warmups populate the parse cache and pools).
	for i := 0; i < 2; i++ {
		if _, err := probe(); err != nil {
			return nil, err
		}
	}
	idle, err := phase()
	if err != nil {
		return nil, err
	}

	// Loaded: five heavy scans resubmitted continuously.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var heavyDone atomic.Int64
	heavyErr := make(chan error, 5)
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				wq, err := disql.Parse(loadHeavyDISQL())
				if err != nil {
					heavyErr <- err
					return
				}
				q, err := heavySess.Submit(wq)
				if err != nil {
					return // session closed under us: cell is over
				}
				if err := q.Wait(30 * time.Second); err != nil {
					return
				}
				heavyDone.Add(1)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond) // let the backlog establish
	loaded, err := phase()
	close(stop)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	select {
	case err := <-heavyErr:
		return nil, err
	default:
	}

	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
	p := func(durs []time.Duration, q float64) time.Duration {
		i := int(q * float64(len(durs)))
		if i >= len(durs) {
			i = len(durs) - 1
		}
		return durs[i]
	}
	cell.UnloadedP50Ms = ms(p(idle, 0.5))
	cell.UnloadedP95Ms = ms(p(idle, 0.95))
	cell.LoadedP50Ms = ms(p(loaded, 0.5))
	cell.LoadedP95Ms = ms(p(loaded, 0.95))
	if cell.UnloadedP95Ms > 0 {
		cell.RatioP95 = cell.LoadedP95Ms / cell.UnloadedP95Ms
	}
	cell.HeavyCompleted = int(heavyDone.Load())
	return cell, nil
}

// loadTruthRows runs one heavy scan on a clean unbounded deployment and
// returns its complete answer size.
func loadTruthRows() (int, error) {
	d, err := core.NewDeployment(core.Config{Web: loadWeb(), NoDocService: true})
	if err != nil {
		return 0, err
	}
	defer d.Close()
	q, err := d.Run(loadHeavyDISQL(), 30*time.Second)
	if err != nil {
		return 0, err
	}
	rows := 0
	for _, t := range q.Results() {
		rows += len(t.Rows)
	}
	return rows, nil
}

// loadShedSegment drives the site past its high watermark and verifies
// the contract: fresh queries bounce with a typed SHED, admitted queries
// lose nothing, and the queue stays bounded.
func loadShedSegment() (*LoadShed, error) {
	truth, err := loadTruthRows()
	if err != nil {
		return nil, err
	}
	d, err := core.NewDeployment(core.Config{
		Web: loadWeb(), NoDocService: true,
		Server: server.Options{Sched: sched.Options{Fair: true, HighWater: 8, LowWater: 4}},
	})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	sess, err := d.Client().NewSession()
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	out := &LoadShed{TruthRows: truth}
	// The burst: a dozen heavy queries rapid-fired back to back, parsed
	// up front so nothing but the wire separates the submissions. The
	// first arrivals are admitted and their clone bursts alone push the
	// depth past the watermark (each root fans into loadChains queued
	// clones), so the tail of the volley arrives over it and is shed —
	// no client-side depth polling, which a busy single-CPU box defeats,
	// is involved. If the processor drains fast enough to admit a whole
	// volley, another is fired.
	const volley = 12
	parsed := make([]*disql.WebQuery, volley)
	for i := range parsed {
		if parsed[i], err = disql.Parse(loadHeavyDISQL()); err != nil {
			return nil, err
		}
	}
	var qs []*client.Query
	for round := 0; round < 3 && out.ShedQueries == 0; round++ {
		for _, wq := range parsed {
			q, err := sess.Submit(wq)
			if err != nil {
				return nil, err
			}
			qs = append(qs, q)
		}
		out.Submitted = len(qs)
		out.ShedQueries, out.Admitted, out.LostRows = 0, 0, 0
		for _, q := range qs {
			if err := q.Wait(30 * time.Second); err != nil {
				return nil, err
			}
			rows := 0
			for _, t := range q.Results() {
				rows += len(t.Rows)
			}
			if q.Shed() {
				out.ShedQueries++
				if rows != 0 {
					return nil, fmt.Errorf("shed query delivered %d rows", rows)
				}
				continue
			}
			out.Admitted++
			out.LostRows += truth - rows
		}
	}
	met := d.Metrics().Snapshot()
	out.ShedMetric = met.Shed
	out.Activations = met.QueueHighWater
	out.QueuePeak = d.Server(loadSite).SchedStats().Peak
	return out, nil
}

// loadExpirySegment runs the heavy scan under a deadline calibrated to
// about a third of its unloaded runtime, then reconciles the server-side
// expiry count against the EXPIRED fates in the journey stitched from
// result reports alone.
func loadExpirySegment() (*LoadExpiry, error) {
	d, err := core.NewDeployment(core.Config{Web: loadWeb(), NoDocService: true, Trace: true})
	if err != nil {
		return nil, err
	}
	defer d.Close()

	// Calibration: one untimed run measures the full scan.
	start := time.Now()
	q0, err := d.Run(loadHeavyDISQL(), 30*time.Second)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	out := &LoadExpiry{}
	for _, t := range q0.Results() {
		out.TruthRows += len(t.Rows)
	}

	budget := elapsed / 3
	out.DeadlineMs = float64(budget.Microseconds()) / 1e3
	wq, err := disql.Parse(loadHeavyDISQL())
	if err != nil {
		return nil, err
	}
	q, err := d.Client().SubmitBudget(wq, wire.Budget{Deadline: time.Now().Add(budget).UnixNano()})
	if err != nil {
		return nil, err
	}
	if err := q.Wait(30 * time.Second); err != nil {
		return nil, fmt.Errorf("deadline run did not settle: %w", err)
	}
	for _, t := range q.Results() {
		out.DeliveredRows += len(t.Rows)
	}
	out.BudgetExpired = d.Metrics().BudgetExpired.Load()
	jy := trace.BuildJourney(q.ID().String(), q.TraceEvents())
	for _, n := range jy.Spans {
		if n.Fate == trace.FateExpired {
			out.FateExpired++
		}
	}
	out.Reconciled = out.FateExpired == int(out.BudgetExpired) && out.BudgetExpired > 0
	return out, nil
}
