package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"webdis/internal/client"
	"webdis/internal/core"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/webgraph"
)

// wireConc is how many queries each measured run overlaps.
const wireConc = 4

// WireRow is one cell of the T18 codec grid: one wire configuration on
// one topology over one transport, steady-state repeated queries.
type WireRow struct {
	Transport string `json:"transport"` // pipe (simulated fabric) | tcp (real sockets)
	Topology  string `json:"topology"`  // campus | tree40
	Config    string `json:"config"`
	Runs      int    `json:"runs"`

	MeanMs     float64 `json:"mean_ms"`
	Messages   int64   `json:"messages"`     // wire messages over the measured runs
	MsgsPerSec float64 `json:"msgs_per_sec"` // the headline axis
	Rows       int     `json:"rows"`         // result rows per query (identical down a column)

	// Batching/tuning activity over the measured runs.
	ResultMsgs    int64 `json:"result_msgs"`
	ResultReports int64 `json:"result_reports"`
	TunesSent     int   `json:"tunes_sent"`
	BatchTunes    int64 `json:"batch_tunes"`
}

// WireOut is the T18 result.
type WireOut struct {
	Rows []WireRow `json:"rows"`
	// SpeedupTCPTree is msgs_per_sec(v2)/msgs_per_sec(gob) on the
	// tcp/tree40 workload — the headline number (acceptance: >= 2x).
	SpeedupTCPTree float64 `json:"speedup_tcp_tree40"`
}

// wireConfigs lists the measured wire configurations. "gob" is the PR-3
// engine exactly (persistent framed gob, Offer/Accept pinned to 1); "v2"
// differs only in the negotiated codec. The -batch pair layers PR 5's
// server-side result batching on both, and v2-adaptive adds the client's
// TUNE feedback loop on top.
func wireConfigs() []struct {
	Name     string
	Opts     server.Options
	Adaptive bool
} {
	base := server.Options{CacheDBs: true, Workers: 4}
	gob := base
	gob.WireV1 = true
	batch := server.BatchOptions{MaxRows: 128, MaxAge: 2 * time.Millisecond}
	gobBatch := gob
	gobBatch.ResultBatch = batch
	v2Batch := base
	v2Batch.ResultBatch = batch
	return []struct {
		Name     string
		Opts     server.Options
		Adaptive bool
	}{
		{"gob", gob, false},
		{"v2", base, false},
		{"gob-batch", gobBatch, false},
		{"v2-batch", v2Batch, false},
		{"v2-adaptive", v2Batch, true},
	}
}

// wireTreeWeb builds the wire-heavy tree40 workload: ~40 sites holding 9
// small pages each, every page a marker hit. Small documents keep
// evaluation cheap and result tables wide (one row per page), so the
// per-message serialization cost — the thing the codec changes —
// dominates the per-hop budget instead of parsing or matching.
func wireTreeWeb() *webgraph.Web {
	return webgraph.Tree(webgraph.TreeOpts{
		Fanout: 3, Depth: 5, PagesPerSite: 9,
		MarkerFrac: 1.0, FillerWords: 8, Seed: 7,
	})
}

func wireTreeQuery(w *webgraph.Web) string {
	return fmt.Sprintf(
		`select d.url, d.title from document d such that %q N|(L|G)*5 d where d.text contains %q`,
		w.First(), webgraph.Marker)
}

func wireWorkloads() []perfWorkload {
	return []perfWorkload{
		{"campus", webgraph.Campus, func(*webgraph.Web) string { return webgraph.CampusDISQL }},
		{"tree40", wireTreeWeb, wireTreeQuery},
	}
}

// Wire runs T18: wire format v2 against the framed-gob baseline, queries
// per second and messages per second on the campus and wire-heavy tree
// topologies over pipe and TCP, with batching and adaptive-batching
// variants; writes the grid to BENCH_PR8.json. Identical answers across
// every configuration of a column are enforced, not just reported.
func Wire(w io.Writer) (*WireOut, error) {
	return wireRun(w, 8, "BENCH_PR8.json")
}

// wireRun is the parameterized body; outPath == "" skips the JSON
// artifact (the shape test's mode).
func wireRun(w io.Writer, runs int, outPath string) (*WireOut, error) {
	out := &WireOut{}
	answers := make(map[string]string) // transport/topology -> canonical answer
	for _, transport := range []string{"pipe", "tcp"} {
		for _, wl := range wireWorkloads() {
			web := wl.Web()
			src := wl.Query(web)
			for _, cfg := range wireConfigs() {
				row, answer, err := wireCell(transport, wl.Name, cfg.Name, web, cfg.Opts, cfg.Adaptive, src, runs)
				if err != nil {
					return nil, fmt.Errorf("wire %s/%s/%s: %w", transport, wl.Name, cfg.Name, err)
				}
				key := transport + "/" + wl.Name
				if prev, ok := answers[key]; !ok {
					answers[key] = answer
				} else if prev != answer {
					return nil, fmt.Errorf("wire %s: config %s changed the answer", key, cfg.Name)
				}
				out.Rows = append(out.Rows, *row)
			}
		}
	}

	var gobRate, v2Rate float64
	for _, r := range out.Rows {
		if r.Transport == "tcp" && r.Topology == "tree40" {
			switch r.Config {
			case "gob":
				gobRate = r.MsgsPerSec
			case "v2":
				v2Rate = r.MsgsPerSec
			}
		}
	}
	if gobRate > 0 {
		out.SpeedupTCPTree = v2Rate / gobRate
	}

	fmt.Fprintln(w, "T18: wire format v2 — binary codec vs framed gob, message throughput")
	fmt.Fprintln(w, "(per cell: one shared deployment, 2 warmup queries, then", runs, "measured;")
	fmt.Fprintln(w, " identical answers across every configuration of a column are enforced)")
	fmt.Fprintln(w)
	rows := make([][]string, 0, len(out.Rows))
	for _, r := range out.Rows {
		rows = append(rows, []string{
			r.Transport, r.Topology, r.Config,
			fmt.Sprintf("%.2f", r.MeanMs),
			fmt.Sprintf("%d", r.Messages),
			fmt.Sprintf("%.0f", r.MsgsPerSec),
			fmt.Sprintf("%d", r.Rows),
			fmt.Sprintf("%d/%d", r.ResultReports, r.ResultMsgs),
			fmt.Sprintf("%d/%d", r.TunesSent, r.BatchTunes),
		})
	}
	table(w, []string{"transport", "topology", "config", "mean ms", "msgs", "msgs/s", "rows", "reports/frames", "tunes s/a"}, rows)
	fmt.Fprintf(w, "\nheadline: tcp/tree40 v2 moves %.2fx the messages per second of framed gob\n", out.SpeedupTCPTree)

	if outPath != "" {
		blob, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "machine-readable grid written to %s\n", outPath)
	}
	return out, nil
}

// wireCell measures one configuration on one long-lived deployment
// (pooled connections with warm codec sessions — the steady state the
// intern tables target): two warmup queries, then timed repeats. It
// returns the cell and the canonical answer for cross-config comparison.
func wireCell(transport, topology, config string, web *webgraph.Web, opts server.Options, adaptive bool, src string, runs int) (*WireRow, string, error) {
	cfg := core.Config{Web: web, Server: opts, NoDocService: true, AdaptiveBatch: adaptive}
	if transport == "tcp" {
		cfg.Transport = netsim.NewTCP()
	}
	d, err := core.NewDeployment(cfg)
	if err != nil {
		return nil, "", err
	}
	defer d.Close()

	nrows, tunes := 0, 0
	answer := ""
	// Each measured run is wireConc concurrent queries: overlapping the
	// depth-bound critical paths keeps the workers busy, so the measured
	// message rate reflects per-message processing cost — the thing the
	// codec changes — rather than chain latency.
	runOne := func() (time.Duration, error) {
		start := time.Now()
		queries := make([]*client.Query, wireConc)
		errs := make([]error, wireConc)
		var wg sync.WaitGroup
		for i := 0; i < wireConc; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				queries[i], errs[i] = d.Run(src, 30*time.Second)
			}(i)
		}
		wg.Wait()
		el := time.Since(start)
		for i, err := range errs {
			if err != nil {
				return 0, fmt.Errorf("concurrent query %d: %w", i, err)
			}
		}
		for i, q := range queries {
			var flat []string
			nrows = 0
			for _, t := range q.Results() {
				nrows += len(t.Rows)
				for _, r := range t.Rows {
					flat = append(flat, fmt.Sprintf("%d:%q", t.Stage, r))
				}
			}
			if nrows == 0 {
				return 0, fmt.Errorf("query delivered no rows")
			}
			sort.Strings(flat)
			got := strings.Join(flat, "\n")
			if i > 0 && got != answer {
				return 0, fmt.Errorf("concurrent queries disagree")
			}
			answer = got
			tunes += q.Stats().TunesSent
		}
		return el, nil
	}

	for i := 0; i < 2; i++ {
		if _, err := runOne(); err != nil {
			return nil, "", err
		}
	}
	before := d.Metrics().Snapshot()
	tunes = 0
	var total time.Duration
	for i := 0; i < runs; i++ {
		el, err := runOne()
		if err != nil {
			return nil, "", err
		}
		total += el
	}
	after := d.Metrics().Snapshot()

	msgs := (after.ClonesForwarded - before.ClonesForwarded) +
		(after.ResultMsgs - before.ResultMsgs) +
		(after.Bounced - before.Bounced) +
		(after.Shed - before.Shed)
	row := &WireRow{
		Transport: transport, Topology: topology, Config: config, Runs: runs,
		MeanMs:        float64(total.Microseconds()) / float64(runs) / 1e3,
		Messages:      msgs,
		MsgsPerSec:    float64(msgs) / total.Seconds(),
		Rows:          nrows,
		ResultMsgs:    after.ResultMsgs - before.ResultMsgs,
		ResultReports: after.ResultReports - before.ResultReports,
		TunesSent:     tunes,
		BatchTunes:    after.BatchTunes - before.BatchTunes,
	}
	return row, answer, nil
}
