package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"webdis/internal/client"
	"webdis/internal/core"
	"webdis/internal/webgraph"
)

// WatchOut is the T20 result: continuous-query maintenance over a
// mutating tree40 web, incremental delta re-derivation against naive
// full re-execution after every mutation.
type WatchOut struct {
	Steps     int `json:"steps"`    // applied mutations
	Epochs    int `json:"epochs"`   // watch epochs processed
	Deltas    int `json:"deltas"`   // emitted add/remove row deltas
	Adds      int `json:"adds"`     // additions among them
	Removes   int `json:"removes"`  // removals among them
	Baseline  int `json:"baseline"` // rows in the initial standing set
	FinalRows int `json:"final_rows"`

	// Op mix of the applied schedule.
	Edits    int `json:"edits"`
	Rewires  int `json:"rewires"`
	Births   int `json:"births"`
	Removals int `json:"removals"`

	// IncrementalBytes is the total fabric traffic of maintaining the
	// standing set across all steps (change notifications plus the
	// incremental re-traversals); NaiveBytes is re-running the query
	// from scratch after every mutation.
	IncrementalBytes int64   `json:"incremental_bytes"`
	NaiveBytes       int64   `json:"naive_bytes"`
	SavingsX         float64 `json:"savings_x"` // naive / incremental

	// MeanEpochMs is the mean wall-clock from mutation to the watch's
	// epoch barrier; MeanNaiveMs is a full re-run's latency.
	MeanEpochMs float64 `json:"mean_epoch_ms"`
	MeanNaiveMs float64 `json:"mean_naive_ms"`

	// OracleOK: at every step, the delta-maintained result set equaled a
	// from-scratch re-run of the same query (enforced, not just
	// reported — watchRun errors on the first divergence).
	OracleOK bool `json:"oracle_ok"`
}

// watchTreeWeb is the T20 topology: the repo's canonical 40-site tree
// with enough filler that traversal traffic dominates framing overhead.
func watchTreeWeb() *webgraph.Web {
	return webgraph.Tree(webgraph.TreeOpts{
		Fanout: 3, Depth: 3, PagesPerSite: 1,
		MarkerFrac: 0.6, FillerWords: 200, Seed: 7,
	})
}

func watchTreeQuery(w *webgraph.Web) string {
	return fmt.Sprintf(`select d.url from document d such that %q N|(G*3) d where d.text contains %q`,
		w.First(), webgraph.Marker)
}

// watchPlan is the seeded T20 mutation schedule, shared verbatim by the
// incremental and naive arms so both replay the same web history.
func watchPlan() webgraph.MutationPlan { return webgraph.MutationPlan{Seed: 20} }

// flattenTables renders result tables canonically for cross-arm
// comparison (rows are already sorted within a stage).
func flattenTables(tables []client.ResultTable) string {
	var flat []string
	for _, t := range tables {
		for _, r := range t.Rows {
			flat = append(flat, fmt.Sprintf("%d:%q", t.Stage, r))
		}
	}
	sort.Strings(flat)
	return strings.Join(flat, "\n")
}

// Watch runs T20: continuous queries over a mutating web — delta
// correctness against a full re-run oracle at every step of the seeded
// schedule, and the traffic saved by incremental re-derivation versus
// naive re-execution; writes BENCH_PR10.json.
func Watch(w io.Writer) (*WatchOut, error) {
	return watchRun(w, 60, "BENCH_PR10.json")
}

// watchRun is the parameterized body; outPath == "" skips the JSON
// artifact (the shape test's mode).
func watchRun(w io.Writer, steps int, outPath string) (*WatchOut, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	out := &WatchOut{Steps: steps}

	// Incremental arm: one watch, one deployment, byte windows around
	// each mutation→epoch barrier (oracle re-runs excluded from the
	// window so they don't count against the incremental arm).
	web := watchTreeWeb()
	src := watchTreeQuery(web)
	d, err := core.NewDeployment(core.Config{
		Web:   web,
		Watch: core.WatchConfig{Mutations: watchPlan()},
	})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	wa, err := d.Watch(ctx, src, core.WatchOptions{})
	if err != nil {
		return nil, err
	}
	defer wa.Close()
	for _, t := range wa.Results() {
		out.Baseline += len(t.Rows)
	}
	if q0, err := d.Run(src, 30*time.Second); err != nil {
		return nil, err
	} else if got, want := flattenTables(wa.Results()), flattenTables(q0.Results()); got != want {
		return nil, fmt.Errorf("watch baseline diverged from one-shot run")
	}

	deltaDone := make(chan struct{})
	go func() {
		defer close(deltaDone)
		for delta, err := range wa.Deltas() {
			if err != nil {
				return
			}
			out.Deltas++
			if delta.Op == client.DeltaAdd {
				out.Adds++
			} else {
				out.Removes++
			}
		}
	}()

	stats := d.Network().Stats()
	wantEpoch := 0
	var epochTotal time.Duration
	for step := 0; step < steps; step++ {
		b0 := stats.Snapshot().Total().Bytes
		start := time.Now()
		muts, notified := d.Mutate(1)
		if len(muts) != 1 {
			return nil, fmt.Errorf("step %d: mutation schedule dried up", step)
		}
		switch muts[0].Kind {
		case webgraph.MutEditText:
			out.Edits++
		case webgraph.MutRewireLink:
			out.Rewires++
		case webgraph.MutAddPage:
			out.Births++
		case webgraph.MutRemovePage:
			out.Removals++
		}
		wantEpoch += notified
		if err := wa.WaitEpoch(ctx, wantEpoch); err != nil {
			return nil, fmt.Errorf("step %d (%v): %w", step, muts[0], err)
		}
		epochTotal += time.Since(start)
		out.IncrementalBytes += stats.Snapshot().Total().Bytes - b0

		// Oracle: a from-scratch run against the mutated web, outside
		// the byte window.
		q, err := d.Run(src, 30*time.Second)
		if err != nil {
			return nil, fmt.Errorf("step %d oracle: %w", step, err)
		}
		if got, want := flattenTables(wa.Results()), flattenTables(q.Results()); got != want {
			return nil, fmt.Errorf("step %d (%v): watch diverged from full re-run\nwatch:\n%s\noracle:\n%s",
				step, muts[0], got, want)
		}
	}
	out.Epochs = wantEpoch
	for _, t := range wa.Results() {
		out.FinalRows += len(t.Rows)
	}
	wa.Close()
	select {
	case <-deltaDone:
	case <-ctx.Done():
		return nil, errors.New("delta collector did not drain")
	}
	out.MeanEpochMs = float64(epochTotal.Microseconds()) / float64(steps) / 1e3

	// Naive arm: identical web and schedule, no watch — a full
	// re-execution after every mutation is the continuous answer.
	nd, err := core.NewDeployment(core.Config{
		Web:   watchTreeWeb(),
		Watch: core.WatchConfig{Mutations: watchPlan()},
	})
	if err != nil {
		return nil, err
	}
	defer nd.Close()
	if _, err := nd.Run(src, 30*time.Second); err != nil { // warm caches like the watch's baseline did
		return nil, err
	}
	nstats := nd.Network().Stats()
	var naiveTotal time.Duration
	for step := 0; step < steps; step++ {
		if muts, _ := nd.Mutate(1); len(muts) != 1 {
			return nil, fmt.Errorf("naive step %d: mutation schedule dried up", step)
		}
		b0 := nstats.Snapshot().Total().Bytes
		start := time.Now()
		if _, err := nd.Run(src, 30*time.Second); err != nil {
			return nil, fmt.Errorf("naive step %d: %w", step, err)
		}
		naiveTotal += time.Since(start)
		out.NaiveBytes += nstats.Snapshot().Total().Bytes - b0
	}
	out.MeanNaiveMs = float64(naiveTotal.Microseconds()) / float64(steps) / 1e3
	if out.IncrementalBytes > 0 {
		out.SavingsX = float64(out.NaiveBytes) / float64(out.IncrementalBytes)
	}
	out.OracleOK = true // watchRun errors out on the first divergence

	fmt.Fprintln(w, "T20: continuous queries — incremental delta maintenance vs naive re-execution")
	fmt.Fprintf(w, "(tree40, %d seeded mutations: %d edits / %d rewires / %d births / %d removals;\n",
		steps, out.Edits, out.Rewires, out.Births, out.Removals)
	fmt.Fprintln(w, " every step checked against a from-scratch re-run of the standing query)")
	fmt.Fprintln(w)
	table(w, []string{"arm", "bytes/step", "mean ms/step", "total bytes"}, [][]string{
		{"incremental watch", fmt.Sprintf("%d", out.IncrementalBytes/int64(steps)),
			fmt.Sprintf("%.2f", out.MeanEpochMs), fmt.Sprintf("%d", out.IncrementalBytes)},
		{"naive re-run", fmt.Sprintf("%d", out.NaiveBytes/int64(steps)),
			fmt.Sprintf("%.2f", out.MeanNaiveMs), fmt.Sprintf("%d", out.NaiveBytes)},
	})
	fmt.Fprintf(w, "\nstanding set: %d rows -> %d rows across %d epochs; %d deltas (%d adds, %d removes)\n",
		out.Baseline, out.FinalRows, out.Epochs, out.Deltas, out.Adds, out.Removes)
	fmt.Fprintf(w, "headline: incremental maintenance moves %.1fx fewer bytes than naive re-execution (oracle_ok=%v)\n",
		out.SavingsX, out.OracleOK)

	if outPath != "" {
		blob, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "machine-readable grid written to %s\n", outPath)
	}
	return out, nil
}
