package experiments

import (
	"fmt"
	"io"
	"strings"

	"webdis/internal/nodeproc"
	"webdis/internal/server"
	"webdis/internal/webgraph"
)

// Figure1Out summarizes the Figure-1 reproduction.
type Figure1Out struct {
	Roles  map[int]string // node index (1..8) -> observed role summary
	Q1Rows int
	Q2Rows int
	Drops  int64 // duplicate arrivals purged (expected: 1, at node 8)
}

// Figure1 reproduces the paper's Figure 1: the query
// Q = S G·(G|L) q1 (G|L) q2 over the eight-node web, with node roles.
func Figure1(w io.Writer) (*Figure1Out, error) {
	fmt.Fprintln(w, "F1: web traversal path (paper Figure 1)")
	fmt.Fprintln(w, "query: Q = S G·(G|L) q1 (G|L) q2")
	fmt.Fprintln(w)
	out, err := runDistributed(webgraph.Figure1(), netZero(), server.Options{}, webgraph.Figure1DISQL)
	if err != nil {
		return nil, err
	}
	nodeIdx := make(map[string]int)
	for i := 1; i < len(webgraph.Figure1Nodes); i++ {
		nodeIdx[webgraph.Figure1Nodes[i]] = i
	}
	res := &Figure1Out{Roles: make(map[int]string), Drops: out.metrics.DupDropped}
	byNode := eventsByNode(out.trace)
	var rows [][]string
	for i := 1; i < len(webgraph.Figure1Nodes); i++ {
		url := webgraph.Figure1Nodes[i]
		var parts []string
		for _, e := range byNode[url] {
			switch e.Action {
			case "route":
				parts = append(parts, "PureRouter")
			case "eval":
				parts = append(parts, "ServerRouter("+e.Detail+")")
			case "dead-end":
				parts = append(parts, "ServerRouter(dead-end)")
			case "drop":
				parts = append(parts, "duplicate-dropped")
			}
		}
		role := strings.Join(parts, ", ")
		res.Roles[i] = role
		rows = append(rows, []string{fmt.Sprintf("node %d", i), url, role})
	}
	table(w, []string{"node", "url", "observed role(s)"}, rows)
	for _, t := range out.results {
		if t.Stage == 0 {
			res.Q1Rows = len(t.Rows)
		} else {
			res.Q2Rows = len(t.Rows)
		}
	}
	fmt.Fprintf(w, "\nq1 answered at %d nodes (paper: 4, 5, 6), q2 at %d nodes (paper: 4, 8), "+
		"%d duplicate arrival dropped (at node 8), %d dead end (node 7)\n",
		res.Q1Rows, res.Q2Rows, res.Drops, out.metrics.DeadEnds)
	return res, nil
}

// Figure5Out summarizes the Figure-5 reproduction.
type Figure5Out struct {
	ArrivalsAtX  int   // clone arrivals at node X (expected 5: a..e)
	ProcessedAtX int   // arrivals processed (expected 3: a, b, c)
	DroppedAtX   int   // arrivals purged (expected 2: d, e)
	EvalsNoDedup int64 // node-query evaluations at X with the log table off
}

// Figure5 reproduces the paper's Figure 5: five arrivals at one node,
// with the Node-query Log Table on and off.
func Figure5(w io.Writer) (*Figure5Out, error) {
	fmt.Fprintln(w, "F5: multiple visits to a node (paper Figure 5, Section 3.1)")
	fmt.Fprintln(w, "query: Q = S G·(G|L) q1 (G|L) q2; node X receives arrivals a..e")
	fmt.Fprintln(w)
	on, err := runDistributed(webgraph.Figure5(), netZero(), server.Options{}, webgraph.Figure5DISQL)
	if err != nil {
		return nil, err
	}
	res := &Figure5Out{}
	var rows [][]string
	labels := []string{"a", "b", "c", "d", "e"}
	i := 0
	for _, e := range eventsByNode(on.trace)[webgraph.Figure5X] {
		res.ArrivalsAtX++
		disposition := ""
		switch e.Action {
		case "route":
			disposition = "processed as PureRouter"
			res.ProcessedAtX++
		case "eval":
			disposition = "processed as ServerRouter (" + e.Detail + ")"
			res.ProcessedAtX++
		case "dead-end":
			disposition = "processed: dead end"
			res.ProcessedAtX++
		case "drop":
			disposition = "PURGED as equivalent to a logged state"
			res.DroppedAtX++
		}
		label := "?"
		if i < len(labels) {
			label = labels[i]
		}
		i++
		rows = append(rows, []string{label, e.State.String(), disposition})
	}
	table(w, []string{"arrival", "state (num_q, rem)", "disposition with log table ON"}, rows)

	off, err := runDistributed(webgraph.Figure5(), netZero(),
		server.Options{Dedup: nodeproc.DedupOff, DedupSet: true, MaxHops: 16}, webgraph.Figure5DISQL)
	if err != nil {
		return nil, err
	}
	var evalsOffAtX int64
	for _, e := range eventsByNode(off.trace)[webgraph.Figure5X] {
		if e.Action == "eval" || e.Action == "dead-end" {
			evalsOffAtX++
		}
	}
	res.EvalsNoDedup = evalsOffAtX
	fmt.Fprintf(w, "\nwith log table : %d arrivals, %d processed, %d purged; total evaluations %d, clone messages %d\n",
		res.ArrivalsAtX, res.ProcessedAtX, res.DroppedAtX, on.metrics.Evaluations, on.metrics.ClonesForwarded+on.metrics.LocalClones)
	fmt.Fprintf(w, "without        : node X evaluated %d times (the paper's wasted recomputation of c, d, e); total evaluations %d, clone messages %d\n",
		evalsOffAtX, off.metrics.Evaluations, off.metrics.ClonesForwarded+off.metrics.LocalClones)
	return res, nil
}

// CampusOut summarizes the Section-5 reproduction.
type CampusOut struct {
	Q1Rows    int
	Q2Rows    int
	Conveners map[string]string
}

// Campus reproduces the paper's Section 5 sample execution (Figures 7
// and 8).
func Campus(w io.Writer) (*CampusOut, error) {
	fmt.Fprintln(w, "F7/F8: the campus convener query (paper Section 5)")
	fmt.Fprintln(w)
	// WireOracle renders every v2 frame through gob as well, booking the
	// per-site byte savings the campus table's v2saved column reports.
	out, err := runDistributed(webgraph.Campus(), netZero(), server.Options{WireOracle: true}, webgraph.CampusDISQL)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "traversal (Figure 7):")
	var rows [][]string
	for _, e := range out.trace {
		rows = append(rows, []string{e.Node, e.State.String(), e.Action, e.Detail})
	}
	table(w, []string{"node", "state", "action", "detail"}, rows)

	res := &CampusOut{Conveners: make(map[string]string)}
	fmt.Fprintln(w, "\nresults (Figure 8):")
	for _, t := range out.results {
		fmt.Fprintf(w, "  q%d %v\n", t.Stage+1, t.Cols)
		for _, row := range t.Rows {
			fmt.Fprintf(w, "    %q\n", row)
		}
		if t.Stage == 0 {
			res.Q1Rows = len(t.Rows)
		} else {
			res.Q2Rows = len(t.Rows)
			for _, row := range t.Rows {
				res.Conveners[row[0]] = row[1]
			}
		}
	}
	fmt.Fprintf(w, "\nCHT: %d entries entered, %d retired, peak %d live; completion detected in %v\n",
		out.qstats.EntriesAdded, out.qstats.EntriesRetired, out.qstats.PeakLive, out.qstats.Duration.Round(0))
	kindTable(w, "message mix (netsim per-kind counts):", out.net.ByKind)
	fmt.Fprintln(w)
	siteTable(w, "per-site scheduler counters:", out.sites)
	return res, nil
}
