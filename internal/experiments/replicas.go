package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"webdis/internal/cluster"
	"webdis/internal/core"
	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/webgraph"
)

// T16: replicated sites. Two segments:
//
//   - Scaling: a hot site whose answers saturate its uplink, served by
//     1, 2 and 4 replicas. Every result of one replica leaves over that
//     replica's (bandwidth-limited) connection to the session collector,
//     so replicas multiply the aggregate egress the way extra machines
//     multiply a real site's capacity — the closed-loop throughput of a
//     fixed worker pool is the headline.
//   - Availability: 3 replicas under the same workload while 0, 1 and 2
//     of them are killed mid-run. Every query must still terminate;
//     failover and the reaper's replay keep the clean-completion
//     fraction high, and every degradation is booked (Partial, reaped),
//     never silent.

// ReplicaCell is one scaling measurement.
type ReplicaCell struct {
	Replicas int `json:"replicas"`
	Workers  int `json:"workers"`
	Queries  int `json:"queries"`

	ElapsedMs float64 `json:"elapsed_ms"`
	QPS       float64 `json:"qps"`
	// SpeedupX is this cell's QPS over the 1-replica cell's.
	SpeedupX float64 `json:"speedup_x"`
	// ReplicasUsed counts replicas that evaluated at least one query —
	// the rendezvous hash must actually spread the keys.
	ReplicasUsed int `json:"replicas_used"`
	LostRows     int `json:"lost_rows"` // queries returning short answers (must be 0)
}

// ReplicaKillCell is one availability measurement: 3 replicas, `Kills`
// of them killed at the third points of the run.
type ReplicaKillCell struct {
	Kills   int `json:"kills"`
	Queries int `json:"queries"`

	Clean   int `json:"clean"`   // full answer, not Partial
	Partial int `json:"partial"` // terminated degraded (reaper accounted)
	Failed  int `json:"failed"`  // Wait error (none expected)
	// AvailabilityPct is Clean/Queries — the grid's headline.
	AvailabilityPct float64 `json:"availability_pct"`

	Failovers     int64 `json:"failovers"`
	Replays       int64 `json:"replays"`
	StaleRejected int64 `json:"stale_rejected"`
	Reaped        int64 `json:"reaped"`
}

// ReplicasOut is the T16 result.
type ReplicasOut struct {
	Scale []ReplicaCell     `json:"scale"`
	Kills []ReplicaKillCell `json:"kills"`
}

// The hot-site workload: one site, one large document; each query
// returns the whole text, so the dominant per-query cost is shipping
// the answer over the replica's bandwidth-limited uplink (the regime
// where replication, not a faster CPU, is the fix).
const (
	repSite         = "hot.example"
	repPayloadWords = 5000    // ~30 KiB of text per answer
	repBW           = 3 << 19 // bytes/second per connection (1.5 MiB/s)
	repWorkers      = 12      // closed-loop clients
	repKillReplicas = 3       // replica count in the availability grid
)

func repWeb() *webgraph.Web {
	w := webgraph.NewWeb()
	r := rand.New(rand.NewSource(16))
	p := w.NewPage("http://"+repSite+"/blob.html", "Hot blob")
	p.AddText("This page carries the payload token " + webgraph.Marker + ".")
	words := repPayloadWords
	for words > 0 {
		n := 40 + r.Intn(40)
		if n > words {
			n = words
		}
		var sb strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "w%d ", r.Intn(5000))
		}
		p.AddText(sb.String())
		words -= n
	}
	return w
}

func repDISQL() string {
	return fmt.Sprintf(`select d.text from document d such that %q N d where d.text contains %q`,
		"http://"+repSite+"/blob.html", webgraph.Marker)
}

// Replicas runs T16 and writes BENCH_PR6.json.
func Replicas(w io.Writer) (*ReplicasOut, error) {
	return replicasRun(w, 25, "BENCH_PR6.json")
}

// replicasRun is the parameterized body; outPath == "" skips the JSON
// artifact (the shape test's mode).
func replicasRun(w io.Writer, perWorker int, outPath string) (*ReplicasOut, error) {
	if runtime.GOMAXPROCS(0) < 2 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	}
	defer debug.SetGCPercent(debug.SetGCPercent(1000))

	out := &ReplicasOut{}
	for _, r := range []int{1, 2, 4} {
		cell, err := repScaleCell(r, perWorker)
		if err != nil {
			return nil, fmt.Errorf("replicas scale x%d: %w", r, err)
		}
		out.Scale = append(out.Scale, *cell)
	}
	base := out.Scale[0].QPS
	for i := range out.Scale {
		if base > 0 {
			out.Scale[i].SpeedupX = out.Scale[i].QPS / base
		}
	}
	for _, k := range []int{0, 1, 2} {
		cell, err := repKillCell(k, perWorker)
		if err != nil {
			return nil, fmt.Errorf("replicas kill %d: %w", k, err)
		}
		out.Kills = append(out.Kills, *cell)
	}

	fmt.Fprintln(w, "T16: replicated sites — throughput scaling and availability under replica kills")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "scaling: %d closed-loop workers on one hot site, %d KiB answer per query,\n",
		repWorkers, repPayloadWords*6/1024)
	fmt.Fprintf(w, "each replica's uplink limited to %.1f MiB/s\n", float64(repBW)/(1<<20))
	var rows [][]string
	for _, c := range out.Scale {
		rows = append(rows, []string{
			fmt.Sprint(c.Replicas), fmt.Sprint(c.Queries),
			fmt.Sprintf("%.0f", c.ElapsedMs), fmt.Sprintf("%.0f", c.QPS),
			fmt.Sprintf("%.2fx", c.SpeedupX), fmt.Sprint(c.ReplicasUsed),
			fmt.Sprint(c.LostRows),
		})
	}
	table(w, []string{"replicas", "queries", "elapsed ms", "qps", "speedup", "used", "lost rows"}, rows)

	fmt.Fprintf(w, "\navailability: %d replicas, kills at the third points of each run\n", repKillReplicas)
	rows = rows[:0]
	for _, c := range out.Kills {
		rows = append(rows, []string{
			fmt.Sprint(c.Kills), fmt.Sprint(c.Queries),
			fmt.Sprint(c.Clean), fmt.Sprint(c.Partial), fmt.Sprint(c.Failed),
			fmt.Sprintf("%.1f%%", c.AvailabilityPct),
			fmt.Sprint(c.Failovers), fmt.Sprint(c.Replays),
			fmt.Sprint(c.StaleRejected), fmt.Sprint(c.Reaped),
		})
	}
	table(w, []string{"kills", "queries", "clean", "partial", "failed", "availability", "failovers", "replays", "stale", "reaped"}, rows)

	if outPath != "" {
		blob, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "\nmachine-readable results written to %s\n", outPath)
	}
	return out, nil
}

// repScaleCell measures closed-loop throughput at one replica count.
func repScaleCell(replicas, perWorker int) (*ReplicaCell, error) {
	// WireV1 pins the calibrated regime: repBW makes ~30 KiB *gob*
	// answers uplink-bound, which is what makes replicas scale. The v2
	// codec compresses these highly-redundant result frames below the
	// bandwidth knee and the cell would measure codec, not replication
	// (T18 measures the codec).
	d, err := core.NewDeployment(core.Config{
		Web:          repWeb(),
		Net:          netsim.Options{BytesPerSecond: repBW},
		Server:       server.Options{CacheDBs: true, WireV1: true},
		NoDocService: true,
		Replicas:     replicas,
	})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	sess, err := d.Client().NewSession()
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	// Warm the parse cache, the session pool and each replica's DB cache.
	warm, err := disql.Parse(repDISQL())
	if err != nil {
		return nil, err
	}
	for i := 0; i < 2; i++ {
		q, err := sess.Submit(warm)
		if err != nil {
			return nil, err
		}
		if err := q.Wait(30 * time.Second); err != nil {
			return nil, err
		}
	}

	cell := &ReplicaCell{Replicas: replicas, Workers: repWorkers, Queries: repWorkers * perWorker}
	var lost atomic.Int64
	errs := make(chan error, repWorkers)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < repWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wq, err := disql.Parse(repDISQL())
			if err != nil {
				errs <- err
				return
			}
			for k := 0; k < perWorker; k++ {
				q, err := sess.Submit(wq)
				if err != nil {
					errs <- err
					return
				}
				if err := q.Wait(30 * time.Second); err != nil {
					errs <- err
					return
				}
				rows := 0
				for _, t := range q.Results() {
					rows += len(t.Rows)
				}
				if rows != 1 {
					lost.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	cell.ElapsedMs = float64(elapsed.Microseconds()) / 1e3
	if elapsed > 0 {
		cell.QPS = float64(cell.Queries) / elapsed.Seconds()
	}
	cell.LostRows = int(lost.Load())
	for key, sn := range d.SiteSnapshots() {
		if strings.HasPrefix(key, repSite) && sn.Evaluations > 0 {
			cell.ReplicasUsed++
		}
	}
	return cell, nil
}

// repKillCell runs the same closed loop against 3 replicas and kills
// `kills` of them at the third points of the run (by completed-query
// count, so the schedule is load-relative, not wall-clock guesswork).
func repKillCell(kills, perWorker int) (*ReplicaKillCell, error) {
	d, err := core.NewDeployment(core.Config{
		Web: repWeb(),
		Net: netsim.Options{BytesPerSecond: repBW},
		Server: server.Options{
			CacheDBs: true,
			WireV1:   true, // same calibrated uplink-bound regime as repScaleCell
			Retry:    server.RetryPolicy{Attempts: 3, Base: time.Millisecond, Max: 10 * time.Millisecond, Timeout: 200 * time.Millisecond},
		},
		NoDocService: true,
		Replicas:     repKillReplicas,
		Cluster:      cluster.Options{SuspectAfter: 1, DownAfter: 1},
		ReapGrace:    250 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	sess, err := d.Client().NewSession()
	if err != nil {
		return nil, err
	}
	defer sess.Close()

	warm, err := disql.Parse(repDISQL())
	if err != nil {
		return nil, err
	}
	if q, err := sess.Submit(warm); err != nil {
		return nil, err
	} else if err := q.Wait(30 * time.Second); err != nil {
		return nil, err
	}

	cell := &ReplicaKillCell{Kills: kills, Queries: repWorkers * perWorker}
	killAt := []int64{int64(cell.Queries) / 3, int64(cell.Queries) * 2 / 3}
	var done atomic.Int64
	var killMu sync.Mutex
	nextKill := 0
	maybeKill := func(n int64) {
		killMu.Lock()
		defer killMu.Unlock()
		for nextKill < kills && n >= killAt[nextKill] {
			// Kill replicas 1 then 2; replica 0 survives every cell.
			d.Network().Kill(cluster.ReplicaEndpoint(repSite, nextKill+1))
			nextKill++
		}
	}

	var clean, partial, failed atomic.Int64
	errs := make(chan error, repWorkers)
	var wg sync.WaitGroup
	for i := 0; i < repWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wq, err := disql.Parse(repDISQL())
			if err != nil {
				errs <- err
				return
			}
			for k := 0; k < perWorker; k++ {
				q, err := sess.Submit(wq)
				if err != nil {
					errs <- err
					return
				}
				waitErr := q.Wait(30 * time.Second)
				rows := 0
				for _, t := range q.Results() {
					rows += len(t.Rows)
				}
				switch {
				case waitErr != nil:
					failed.Add(1)
				case q.Partial() || rows != 1:
					partial.Add(1)
				default:
					clean.Add(1)
				}
				maybeKill(done.Add(1))
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	cell.Clean = int(clean.Load())
	cell.Partial = int(partial.Load())
	cell.Failed = int(failed.Load())
	cell.AvailabilityPct = 100 * float64(cell.Clean) / float64(cell.Queries)
	// The deployment aggregate covers both halves of recovery: the
	// client's dispatch/replay counters and the servers' re-resolved
	// forwards.
	sn := d.Metrics().Snapshot()
	cell.Failovers = sn.Failovers
	cell.Replays = sn.ReplicaReplays
	cell.StaleRejected = sn.StaleRejected
	cell.Reaped = sn.CHTReaped
	return cell, nil
}
