package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"webdis/internal/server"
	"webdis/internal/webgraph"
)

// WorkerRow is one concurrency level of experiment T9.
type WorkerRow struct {
	Workers int
	Elapsed time.Duration
	Evals   int64
	Rows    int
}

// Workers runs experiment T9: the sequential-processor design-choice
// ablation. The paper's query server processes its clone queue with a
// single thread; on a site hosting many documents this serializes every
// Database Constructor run and node-query evaluation. This experiment
// measures the same heavy single-site walk at increasing processor
// concurrency.
func Workers(w io.Writer) ([]WorkerRow, error) {
	fmt.Fprintln(w, "T9: query-processor concurrency ablation (paper §4.4 design choice)")
	// One large site: 300 pages, all local links, so every clone lands in
	// the same server's queue.
	web := webgraph.Random(webgraph.RandomOpts{
		Sites: 1, PagesPerSite: 300, LocalOut: 3,
		MarkerFrac: 0.2, FillerWords: 400, Seed: 23,
	})
	src := fmt.Sprintf(`select d.url from document d such that %q N|L* d where d.text contains %q`,
		web.First(), webgraph.Marker)
	fmt.Fprintf(w, "workload: one site with %d pages (~%s each), full local walk\n\n",
		web.NumPages(), fmtBytes(web.TotalBytes()/int64(web.NumPages())))

	var out []WorkerRow
	var rows [][]string
	for _, workers := range []int{1, 2, 4, 8} {
		// NoBatch splits the walk into many independent clones, so the
		// queue actually holds parallelizable work (the paper's batching
		// folds one wave into one queue entry).
		run, err := runDistributed(web, netZero(),
			server.Options{Workers: workers, NoBatch: true}, src)
		if err != nil {
			return nil, err
		}
		nrows := 0
		for _, t := range run.results {
			nrows += len(t.Rows)
		}
		r := WorkerRow{Workers: workers, Elapsed: run.elapsed, Evals: run.metrics.Evaluations, Rows: nrows}
		out = append(out, r)
		rows = append(rows, []string{
			fmt.Sprintf("%d", workers),
			r.Elapsed.Round(100 * time.Microsecond).String(),
			fmt.Sprintf("%d", r.Evals),
			fmt.Sprintf("%d", r.Rows),
		})
	}
	table(w, []string{"processor workers", "response time", "evaluations", "result rows"}, rows)
	fmt.Fprintf(w, "\n(host has %d CPU core(s))\n", runtime.NumCPU())
	fmt.Fprintln(w, "shape check: answers and evaluation counts are identical at every level —")
	fmt.Fprintln(w, "the engine's shared structures (log table, metrics, transport) are safe under")
	fmt.Fprintln(w, "concurrent processors. Response time improves with workers only on multi-core")
	fmt.Fprintln(w, "hosts; per-site work is CPU-bound (document parsing), so on a single core the")
	fmt.Fprintln(w, "paper's sequential processor costs nothing, which is presumably why its")
	fmt.Fprintln(w, "simplicity won in 1999.")
	return out, nil
}
