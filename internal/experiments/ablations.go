package experiments

import (
	"fmt"
	"io"

	"webdis/internal/nodeproc"
	"webdis/internal/pre"
	"webdis/internal/server"
	"webdis/internal/webgraph"
	"webdis/internal/wire"
)

// DedupRow is one log-table mode of experiment T3.
type DedupRow struct {
	Mode      nodeproc.DedupMode
	Evals     int64
	Drops     int64
	Rewrites  int64
	CloneMsgs int64
	Rows      int
}

// dedupWeb is a densely cross-linked web of single-page sites: every link
// is global, so duplicate arrivals at a node come from different sites
// through separate clone messages — the per-site batching cannot absorb
// them, and only the Node-query Log Table stands between the engine and
// the paper's "mirror clone chasing a processed clone" cascade.
func dedupWeb() *webgraph.Web {
	return webgraph.Random(webgraph.RandomOpts{
		Sites:        24,
		PagesPerSite: 1,
		LocalOut:     0,
		GlobalOut:    3,
		MarkerFrac:   0.4,
		FillerWords:  60,
		Seed:         31,
	})
}

// Dedup runs experiment T3: the Node-query Log Table ablation across all
// four modes. Result rows must be identical in every mode — the paper's
// point that the log table affects performance, never answers.
func Dedup(w io.Writer) ([]DedupRow, error) {
	fmt.Fprintln(w, "T3: Node-query Log Table ablation (paper §3.1)")
	web := dedupWeb()
	src := fmt.Sprintf(`select d.url from document d such that %q N|G*6 d where d.text contains %q`,
		web.First(), webgraph.Marker)
	fmt.Fprintf(w, "workload: %d single-page sites, 3-4 global links each, query N|G*6 for a token\n\n", web.NumPages())

	modes := []nodeproc.DedupMode{nodeproc.DedupOff, nodeproc.DedupExact, nodeproc.DedupSubsume, nodeproc.DedupStrong}
	var out []DedupRow
	var rows [][]string
	for _, mode := range modes {
		opts := server.Options{Dedup: mode, DedupSet: true}
		if mode == nodeproc.DedupOff {
			opts.MaxHops = 10 // safety: unbounded recomputation otherwise
		}
		run, err := runDistributed(web, netZero(), opts, src)
		if err != nil {
			return nil, err
		}
		nrows := 0
		for _, t := range run.results {
			nrows += len(t.Rows)
		}
		r := DedupRow{
			Mode:      mode,
			Evals:     run.metrics.Evaluations + run.metrics.DeadEnds,
			Drops:     run.metrics.DupDropped,
			Rewrites:  run.metrics.DupRewritten,
			CloneMsgs: run.metrics.ClonesForwarded + run.metrics.LocalClones,
			Rows:      nrows,
		}
		out = append(out, r)
		rows = append(rows, []string{
			mode.String(),
			fmt.Sprintf("%d", run.metrics.Evaluations),
			fmt.Sprintf("%d", r.Drops),
			fmt.Sprintf("%d", r.Rewrites),
			fmt.Sprintf("%d", r.CloneMsgs),
			fmt.Sprintf("%d", r.Rows),
		})
	}
	table(w, []string{"mode", "evaluations", "dropped", "rewritten", "clone msgs", "result rows"}, rows)
	fmt.Fprintln(w, "\nshape check: identical result rows in every mode; evaluations and clone")
	fmt.Fprintln(w, "messages fall sharply from off to exact, further with the paper's star-bound")
	fmt.Fprintln(w, "subsumption, and at most marginally again with full language containment.")
	return out, nil
}

// BatchRow is one configuration of experiment T4.
type BatchRow struct {
	Config    string
	CloneMsgs int64
	NetMsgs   int64
	Bytes     int64
}

// Batching runs experiment T4: per-site clone batching (Section 3.2,
// items 3 and 4) on and off, over a tree whose sibling pages share a site
// — the layout where one page fans out to many same-site, same-state
// targets, which is exactly what the paper's optimization merges into a
// single message.
func Batching(w io.Writer) ([]BatchRow, error) {
	fmt.Fprintln(w, "T4: clone batching ablation (paper §3.2, items 3-4)")
	web := webgraph.Tree(webgraph.TreeOpts{Fanout: 4, Depth: 4, PagesPerSite: 4, Seed: 7})
	src := fmt.Sprintf(`select d.url from document d such that %q N|(L|G)* d where d.url contains "p"`, web.First())
	fmt.Fprintf(w, "workload: 4-ary depth-4 tree (%d pages, %d sites, siblings share a site)\n\n",
		web.NumPages(), web.NumSites())

	var out []BatchRow
	var rows [][]string
	for _, cfg := range []struct {
		name string
		opts server.Options
	}{
		{"batched (paper)", server.Options{}},
		{"one clone per node", server.Options{NoBatch: true}},
	} {
		run, err := runDistributed(web, netZero(), cfg.opts, src)
		if err != nil {
			return nil, err
		}
		r := BatchRow{
			Config:    cfg.name,
			CloneMsgs: run.metrics.ClonesForwarded + run.metrics.LocalClones,
			NetMsgs:   run.net.Messages,
			Bytes:     run.net.Bytes,
		}
		out = append(out, r)
		rows = append(rows, []string{cfg.name,
			fmt.Sprintf("%d", r.CloneMsgs),
			fmt.Sprintf("%d", r.NetMsgs),
			fmtBytes(r.Bytes)})
	}
	table(w, []string{"configuration", "clone dispatches", "network msgs", "network bytes"}, rows)
	fmt.Fprintln(w, "\nshape check: batching cuts clone dispatches and bytes by roughly the mean")
	fmt.Fprintln(w, "number of same-site same-state targets per hop.")
	return out, nil
}

// RewriteCase is one row of the T7 subsumption/rewrite walkthrough.
type RewriteCase struct {
	Logged  string
	Arrives string
	Action  string
	Rem     string
}

// Rewrite runs experiment T7: the Section 3.1.1 rules replayed through a
// real log table, including the multi-rewrite cascade on a live chain.
func Rewrite(w io.Writer) ([]RewriteCase, error) {
	fmt.Fprintln(w, "T7: star-bound subsumption and query rewriting (paper §3.1.1)")
	fmt.Fprintln(w, "\nlog-table decision table (node n, one query):")
	lt := nodeproc.NewLogTable(nodeproc.DedupSubsume)
	id := wire.QueryID{User: "t7", Site: "user/q1", Num: 1}
	arrivals := []string{"L*2·G", "L*1·G", "L*2·G", "L*4·G", "L*3·G", "L*·G", "G·L"}
	var out []RewriteCase
	var rows [][]string
	for _, a := range arrivals {
		rem := pre.MustParse(a)
		v := lt.Check("http://n.example/x.html", id, 1, rem, "")
		c := RewriteCase{Arrives: a, Action: v.Action.String()}
		if v.Action == nodeproc.Rewrite {
			c.Rem = v.Rem.String()
		}
		out = append(out, c)
		rows = append(rows, []string{a, c.Action, c.Rem})
	}
	table(w, []string{"arriving rem(p)", "verdict", "processed as"}, rows)

	// The multi-rewrite cascade, replayed deterministically: a chain of
	// nodes first explored under L*2 (logging L*2, L*1, N at successive
	// depths), then revisited by a clone carrying L*5. Per the paper, the
	// bigger clone is rewritten "at the first n nodes it subsequently
	// encounters" and only then proceeds unrewritten.
	fmt.Fprintln(w, "\nmulti-rewrite cascade along a chain (L*2 explored, then L*5 arrives):")
	cascade := nodeproc.NewLogTable(nodeproc.DedupSubsume)
	// First exploration: the L*2 clone's arrival states at depths 0..2.
	small := pre.MustParse("L*2")
	for depth, rem := 0, small; ; depth++ {
		cascade.Check(chainNode(depth), id, 1, rem, "")
		if len(pre.First(rem)) == 0 {
			break
		}
		rem = pre.Derive(rem, pre.Local)
	}
	// Second arrival: the L*5 clone walks the same chain.
	var crows [][]string
	rewrites := 0
	rem := pre.MustParse("L*5")
	for depth := 0; depth < 6; depth++ {
		v := cascade.Check(chainNode(depth), id, 1, rem, "")
		processedAs := rem.String()
		if v.Action == nodeproc.Rewrite {
			rewrites++
			processedAs = v.Rem.String()
		}
		crows = append(crows, []string{
			fmt.Sprintf("depth %d", depth), rem.String(), v.Action.String(), processedAs,
		})
		if v.Action == nodeproc.Drop {
			break
		}
		next := v.Rem
		if v.Action != nodeproc.Rewrite {
			next = rem
		}
		if len(pre.First(next)) == 0 {
			break
		}
		rem = pre.Derive(next, pre.Local)
	}
	table(w, []string{"node", "arriving rem(p)", "verdict", "processed as"}, crows)
	fmt.Fprintf(w, "\nrewritten %d times — exactly the paper's n (the depth of the earlier\n", rewrites)
	fmt.Fprintln(w, "exploration with a comparable star shape); beyond it the clone runs free.")
	return out, nil
}

func chainNode(depth int) string {
	return fmt.Sprintf("http://chain.example/p%d.html", depth)
}

// DeadEndsOut summarizes the dead-end semantics comparison.
type DeadEndsOut struct {
	WeakQ2Rows   int
	StrictQ2Rows int
}

// DeadEnds contrasts the dead-end semantics the paper's worked examples
// require (a failed node-query cancels only the stage advance) with the
// literal Figure-4 pseudocode (a failed node-query forwards nothing),
// on the paper's own campus query.
func DeadEnds(w io.Writer) (*DeadEndsOut, error) {
	fmt.Fprintln(w, "dead-end semantics (paper §2.5 vs its Figure-4 pseudocode)")
	fmt.Fprintln(w)
	weak, err := runDistributed(webgraph.Campus(), netZero(), server.Options{}, webgraph.CampusDISQL)
	if err != nil {
		return nil, err
	}
	strict, err := runDistributed(webgraph.Campus(), netZero(), server.Options{StrictDeadEnds: true}, webgraph.CampusDISQL)
	if err != nil {
		return nil, err
	}
	out := &DeadEndsOut{}
	for _, t := range weak.results {
		if t.Stage == 1 {
			out.WeakQ2Rows = len(t.Rows)
		}
	}
	for _, t := range strict.results {
		if t.Stage == 1 {
			out.StrictQ2Rows = len(t.Rows)
		}
	}
	table(w, []string{"semantics", "q2 rows (conveners found)"}, [][]string{
		{"examples-consistent (default)", fmt.Sprintf("%d", out.WeakQ2Rows)},
		{"literal Figure-4 pseudocode", fmt.Sprintf("%d", out.StrictQ2Rows)},
	})
	fmt.Fprintln(w, "\nunder the literal pseudocode the lab homepages whose own q2 fails would")
	fmt.Fprintln(w, "never forward the L*1 continuation, and the paper's own Figure-8 rows for")
	fmt.Fprintln(w, "the DSL and Compiler labs (conveners one local link deep) would be lost.")
	return out, nil
}
