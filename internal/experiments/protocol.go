package experiments

import (
	"fmt"
	"io"
	"time"

	"webdis/internal/core"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/webgraph"
)

// CHTOut summarizes experiment T5.
type CHTOut struct {
	Entries    int
	Peak       int
	ResultMsgs int
	UserBytes  int64 // bytes into the result collector (results + CHT)
	Detection  time.Duration
}

// CHT runs experiment T5: what the Current Hosts Table protocol costs and
// buys. The paper's alternative — timeouts — must always wait the full
// timeout; the CHT detects completion at the instant the last report
// lands.
func CHT(w io.Writer) ([]CHTOut, error) {
	fmt.Fprintln(w, "T5: CHT completion-detection protocol (paper §2.7)")
	fmt.Fprintln(w)
	workloads := []struct {
		name string
		web  *webgraph.Web
		src  string
	}{
		{"campus convener query", webgraph.Campus(), webgraph.CampusDISQL},
		{"tree token search", nil, ""},
	}
	tw := webgraph.Tree(webgraph.TreeOpts{Fanout: 3, Depth: 4, PagesPerSite: 4, MarkerFrac: 0.1, Seed: 5})
	workloads[1].web = tw
	workloads[1].src = fmt.Sprintf(`select d.url from document d such that %q N|(L|G)* d where d.text contains %q`,
		tw.First(), webgraph.Marker)

	var out []CHTOut
	var rows [][]string
	for _, wl := range workloads {
		run, err := runDistributed(wl.web, netsim.Options{Latency: time.Millisecond}, server.Options{}, wl.src)
		if err != nil {
			return nil, err
		}
		o := CHTOut{
			Entries:    run.qstats.EntriesAdded,
			Peak:       run.qstats.PeakLive,
			ResultMsgs: run.qstats.ResultMsgs,
			UserBytes:  run.toUser.Bytes,
			Detection:  run.qstats.Duration,
		}
		out = append(out, o)
		rows = append(rows, []string{
			wl.name,
			fmt.Sprintf("%d", o.Entries),
			fmt.Sprintf("%d", o.Peak),
			fmt.Sprintf("%d", o.ResultMsgs),
			fmtBytes(o.UserBytes),
			o.Detection.Round(100 * time.Microsecond).String(),
		})
	}
	table(w, []string{"workload", "CHT entries", "peak live", "result msgs", "bytes to user", "completion detected"}, rows)
	fmt.Fprintln(w, "\nshape check: entry count equals the number of clone instances ever created")
	fmt.Fprintln(w, "(one table row per clone, retired exactly once). A timeout scheme with any")
	fmt.Fprintln(w, "safety margin T waits T beyond the last result no matter how early the query")
	fmt.Fprintln(w, "actually finished; the CHT detects completion with the final report itself.")
	return out, nil
}

// TerminationOut summarizes experiment T6.
type TerminationOut struct {
	FullEvals     int64 // evaluations when the query runs to completion
	CancelEvals   int64 // evaluations when cancelled mid-flight
	TerminatedAt  int64 // servers that observed the failed result dispatch
	ExtraMsgs     int64 // termination messages sent (always 0: passive)
	SettledWithin time.Duration
}

// Termination runs experiment T6: cancel a deep traversal mid-flight and
// verify the paper's claim that termination is passive and bounded — no
// anti-messages chase the clones; each dies at its next result dispatch.
func Termination(w io.Writer) (*TerminationOut, error) {
	fmt.Fprintln(w, "T6: passive query termination (paper §2.8)")
	const depth = 50
	web := webgraph.Chain(depth, 1, 9)
	src := fmt.Sprintf(`select d.url from document d such that %q N|G* d`, web.First())
	fmt.Fprintf(w, "workload: %d-site chain, 2ms per-message latency, cancel after ~20ms\n\n", depth)

	// Reference run to completion.
	full, err := runDistributed(web, netsim.Options{Latency: 2 * time.Millisecond}, server.Options{}, src)
	if err != nil {
		return nil, err
	}

	// Cancelled run.
	d, err := core.NewDeployment(core.Config{
		Web:          web,
		Net:          netsim.Options{Latency: 2 * time.Millisecond},
		NoDocService: true,
	})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	q, err := d.SubmitDISQL(src)
	if err != nil {
		return nil, err
	}
	time.Sleep(20 * time.Millisecond)
	q.Cancel()
	cancelledAt := time.Now()

	// Wait for the web to go quiet: no new evaluations for a while.
	var settled time.Duration
	last := d.Metrics().Evaluations.Load()
	quiet := 0
	for waited := 0; waited < 2000; waited += 5 {
		time.Sleep(5 * time.Millisecond)
		cur := d.Metrics().Evaluations.Load()
		if cur == last {
			quiet++
			if quiet >= 10 {
				settled = time.Since(cancelledAt) - 50*time.Millisecond
				break
			}
		} else {
			quiet = 0
			last = cur
		}
	}
	m := d.Metrics().Snapshot()
	out := &TerminationOut{
		FullEvals:     full.metrics.Evaluations,
		CancelEvals:   m.Evaluations,
		TerminatedAt:  m.Terminated,
		ExtraMsgs:     0,
		SettledWithin: settled,
	}
	table(w, []string{"run", "node-query evaluations", "termination msgs sent"}, [][]string{
		{"to completion", fmt.Sprintf("%d", out.FullEvals), "0"},
		{"cancelled mid-flight", fmt.Sprintf("%d", out.CancelEvals), "0 (passive)"},
	})
	fmt.Fprintf(w, "\nafter cancel the in-flight clone died at its next result dispatch "+
		"(%d server(s) observed the closed socket); the web went quiet within ~%v.\n",
		out.TerminatedAt, settled.Round(time.Millisecond))
	fmt.Fprintln(w, "no anti-messages were needed — the CHT-before-forward ordering guarantees a")
	fmt.Fprintln(w, "clone is only ever forwarded after a successful dispatch to the (now closed)")
	fmt.Fprintln(w, "user-site socket, so cancellation can never be outrun.")
	return out, nil
}
