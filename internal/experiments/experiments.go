// Package experiments regenerates the WEBDIS paper's figures and the
// quantitative experiments derived from its claims (see DESIGN.md's
// experiment index). Each experiment writes a human-readable report to an
// io.Writer and returns structured numbers so the benchmark suite can
// assert the expected shapes. The cmd/webdis-bench tool is a thin CLI
// over this package.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"webdis/internal/centralized"
	"webdis/internal/client"
	"webdis/internal/core"
	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/webgraph"
)

// Experiment is one registered, runnable experiment.
type Experiment struct {
	Name  string
	Paper string // figure/section of the paper it reproduces
	Brief string
	Run   func(w io.Writer) error
}

// All lists every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"f1", "Figure 1", "traversal roles: PureRouters, ServerRouters, dead ends, duplicate arrivals", func(w io.Writer) error { _, err := Figure1(w); return err }},
		{"f5", "Figure 5 / §3.1", "multiple visits to a node: log-table suppression of equivalent arrivals", func(w io.Writer) error { _, err := Figure5(w); return err }},
		{"campus", "Figures 7 & 8 / §5", "the sample campus execution: traversal states and result rows", func(w io.Writer) error { _, err := Campus(w); return err }},
		{"shipping", "§1, §3.2", "query shipping vs data shipping: bytes and messages vs web size", func(w io.Writer) error { _, err := Shipping(w); return err }},
		{"latency", "§1", "response time under per-hop latency: distributed vs centralized", func(w io.Writer) error { _, err := Latency(w); return err }},
		{"dedup", "§3.1 ablation", "node-query log table modes: off / exact / subsume / strong", func(w io.Writer) error { _, err := Dedup(w); return err }},
		{"batching", "§3.2 items 3-4 ablation", "per-site clone batching on/off: message counts", func(w io.Writer) error { _, err := Batching(w); return err }},
		{"cht", "§2.7", "CHT protocol cost: entries, bytes, completion detection latency", func(w io.Writer) error { _, err := CHT(w); return err }},
		{"migration", "§7.1", "hybrid migration path: participation fraction vs traffic and placement of work", func(w io.Writer) error { _, err := Migration(w); return err }},
		{"termination", "§2.8", "passive termination: work done after cancel, no anti-messages", func(w io.Writer) error { _, err := Termination(w); return err }},
		{"workers", "§4.4 ablation", "query-processor concurrency: the sequential design choice quantified", func(w io.Writer) error { _, err := Workers(w); return err }},
		{"rewrite", "§3.1.1", "star-bound subsumption and the query-multiple-rewrite rule", func(w io.Writer) error { _, err := Rewrite(w); return err }},
		{"anytime", "§2.6 / §7.1", "progressive results: partial answers accumulate before completion", func(w io.Writer) error { _, err := Anytime(w); return err }},
		{"deadends", "§2.5 semantics", "dead-end scope: paper's examples vs literal Figure-4 pseudocode", func(w io.Writer) error { _, err := DeadEnds(w); return err }},
		{"faults", "robustness / §2.8, §7.1", "fault injection: answer completeness under message loss, with retry, bounce and CHT reaping", func(w io.Writer) error { _, err := Faults(w); return err }},
		{"trace", "observability / Figure 7", "causal tracing: journey reconstruction, tracing overhead, fault localization", func(w io.Writer) error { _, err := Tracing(w); return err }},
		{"perf", "hot path / T13", "hot-path overhaul: pooled connections, parallel fan-out, parse cache, singleflight DB builds — before/after ablations (writes BENCH_PR3.json)", func(w io.Writer) error { _, err := Perf(w); return err }},
		{"load", "scheduling / T14", "multi-query load: weighted-fair vs FIFO latency, admission-control shedding, wire-carried deadline expiry (writes BENCH_PR4.json)", func(w io.Writer) error { _, err := Load(w); return err }},
		{"stream", "streaming / T15", "streaming delivery: first-row latency, result-frame batching, active early termination via FirstN (writes BENCH_PR5.json)", func(w io.Writer) error { _, err := Stream(w); return err }},
		{"replicas", "robustness / T16", "replicated sites: hot-site throughput scaling 1/2/4, availability under mid-run replica kills (writes BENCH_PR6.json)", func(w io.Writer) error { _, err := Replicas(w); return err }},
		{"planner", "distribution / T17", "cost-based distributed planner: aggregate pushdown and ship-query-vs-ship-data edge decisions vs naive shipping, bytes and latency (writes BENCH_PR7.json)", func(w io.Writer) error { _, err := Planner(w); return err }},
		{"wire", "wire format / T18", "wire format v2: binary codec vs framed gob message throughput, with batching and adaptive-tuning variants (writes BENCH_PR8.json)", func(w io.Writer) error { _, err := Wire(w); return err }},
		{"store", "storage / T19", "persistent site store: slotted-page heap files + bounded buffer pool vs in-RAM databases — heap ceiling, p95, indexed contains (writes BENCH_PR9.json)", func(w io.Writer) error { _, err := Store(w); return err }},
		{"watch", "continuous queries / T20", "standing queries over a mutating web: incremental delta maintenance vs naive re-execution — bytes, epoch latency, full re-run oracle at every step (writes BENCH_PR10.json)", func(w io.Writer) error { _, err := Watch(w); return err }},
	}
}

// Lookup returns the named experiment.
func Lookup(name string) (Experiment, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// runOut bundles everything one distributed run produces.
type runOut struct {
	query   *client.Query
	results []client.ResultTable
	qstats  client.Stats
	metrics server.Snapshot
	sites   map[string]server.Snapshot // per-site attribution of metrics
	net     netsim.Counters
	toUser  netsim.Counters // traffic into the user-site's result collector
	trace   []server.Event
	elapsed time.Duration
}

// runDistributed executes src over web with the given options and full
// instrumentation.
func runDistributed(web *webgraph.Web, netOpts netsim.Options, srvOpts server.Options, src string) (*runOut, error) {
	var mu sync.Mutex
	var trace []server.Event
	prev := srvOpts.Trace
	srvOpts.Trace = func(e server.Event) {
		mu.Lock()
		trace = append(trace, e)
		mu.Unlock()
		if prev != nil {
			prev(e)
		}
	}
	d, err := core.NewDeployment(core.Config{Web: web, Net: netOpts, Server: srvOpts, NoDocService: true})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	start := time.Now()
	q, err := d.Run(src, 30*time.Second)
	if err != nil {
		return nil, err
	}
	sn := d.Network().Stats().Snapshot()
	out := &runOut{
		query:   q,
		results: q.Results(),
		qstats:  q.Stats(),
		metrics: d.Metrics().Snapshot(),
		sites:   d.SiteSnapshots(),
		net:     sn.Total(),
		toUser:  sn.To(q.ID().Site),
		elapsed: time.Since(start),
	}
	mu.Lock()
	out.trace = append(out.trace, trace...)
	mu.Unlock()
	return out, nil
}

// centOut bundles a centralized run's instrumentation.
type centOut struct {
	res     *centralized.Result
	net     netsim.Counters
	elapsed time.Duration
}

// runCentralized executes src by data shipping over a fresh fabric
// hosting web's documents.
func runCentralized(web *webgraph.Web, netOpts netsim.Options, opts centralized.Options, src string) (*centOut, error) {
	w, err := disql.Parse(src)
	if err != nil {
		return nil, err
	}
	d, err := core.NewDeployment(core.Config{Web: web, Net: netOpts})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	d.Network().Stats().Reset()
	start := time.Now()
	res, err := centralized.Run(d.Network(), "user/central", w, opts)
	if err != nil {
		return nil, err
	}
	return &centOut{
		res:     res,
		net:     d.Network().Stats().Snapshot().Total(),
		elapsed: time.Since(start),
	}, nil
}

// table prints an aligned text table.
func table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// siteTable prints one row per site with the scheduler- and
// planner-facing counters: where work queued, where admission control
// engaged, what was shed or budget-terminated, and what the operator
// pipeline scanned vs emitted (with pushdown hits and the bytes they
// kept off the wire). Sites with no activity at all are elided.
func siteTable(w io.Writer, title string, sites map[string]server.Snapshot) {
	names := make([]string, 0, len(sites))
	for site := range sites {
		names = append(names, site)
	}
	sort.Strings(names)
	var rows [][]string
	for _, site := range names {
		s := sites[site]
		if s.Evaluations+s.LocalClones+s.ClonesForwarded+s.QueueDepth+
			s.QueueHighWater+s.Shed+s.BudgetExpired+s.RowsScanned == 0 {
			continue
		}
		rows = append(rows, []string{
			site,
			fmt.Sprint(s.Evaluations),
			fmt.Sprint(s.ClonesForwarded),
			fmt.Sprint(s.LocalClones),
			fmt.Sprint(s.QueueDepth),
			fmt.Sprint(s.QueueHighWater),
			fmt.Sprint(s.Shed),
			fmt.Sprint(s.BudgetExpired),
			fmt.Sprintf("%d/%d", s.RowsScanned, s.RowsEmitted),
			fmt.Sprint(s.PushdownHits),
			fmt.Sprint(s.PushdownBytesSaved),
			fmt.Sprint(s.BytesV2Saved),
		})
	}
	fmt.Fprintln(w, title)
	table(w, []string{"site", "evals", "fwd", "local", "qdepth", "qhigh", "shed", "expired", "scan/emit", "push", "saved", "v2saved"}, rows)
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%d B", n)
}

// eventsByNode groups non-virtual trace events per node, preserving order.
func eventsByNode(events []server.Event) map[string][]server.Event {
	out := make(map[string][]server.Event)
	for _, e := range events {
		if e.Detail == "virtual" {
			continue
		}
		if e.Node == "" {
			continue
		}
		out[e.Node] = append(out[e.Node], e)
	}
	return out
}

// netZero is the default instant fabric.
func netZero() netsim.Options { return netsim.Options{} }
