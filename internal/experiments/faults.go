package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"webdis/internal/centralized"
	"webdis/internal/client"
	"webdis/internal/core"
	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/webgraph"
)

// FaultsRow is one cell of the T11 recovery sweep: one engine
// configuration at one message-drop rate, averaged over the seeds.
type FaultsRow struct {
	Drop         float64
	Config       string
	Completeness float64 // delivered rows / true answer, mean over seeds
	Retries      int64
	Bounced      int64
	Reaped       int64
	Dropped      int64 // frames killed by the fault injector
	Failed       int   // runs that could not even deliver the initial clone
}

// FaultsOut is the T11 result.
type FaultsOut struct {
	Sweep []FaultsRow

	// Degraded mode: one site down for the whole run, retry+bounce engine.
	DownExpected  int
	DownReachable int
	DownRows      int
	DownPartial   bool

	// Silent crash: a site that accepts clones but whose reports never
	// arrive; only the reaper can terminate the query.
	CrashRows    int
	CrashReaped  int
	CrashPartial bool
}

var faultRetry = server.RetryPolicy{
	Attempts: 5,
	Base:     time.Millisecond,
	Max:      20 * time.Millisecond,
	Timeout:  500 * time.Millisecond,
}

func faultsWeb(seed int64) *webgraph.Web {
	return webgraph.Tree(webgraph.TreeOpts{
		Fanout: 3, Depth: 3, PagesPerSite: 1,
		MarkerFrac: 0.6, FillerWords: 30, Seed: seed,
	})
}

func faultsQuery(start string) string {
	return fmt.Sprintf(`select d.url from document d such that %q N|(G*3) d where d.text contains %q`,
		start, webgraph.Marker)
}

// faultsTruth computes the true answer size over a clean deployment.
func faultsTruth(web *webgraph.Web, src string) (int, error) {
	d, err := core.NewDeployment(core.Config{Web: web})
	if err != nil {
		return 0, err
	}
	defer d.Close()
	w, err := disql.Parse(src)
	if err != nil {
		return 0, err
	}
	res, err := centralized.Run(d.Network(), "user/central", w, centralized.Options{})
	if err != nil {
		return 0, err
	}
	rows := 0
	for _, t := range res.Tables {
		rows += len(t.Rows)
	}
	return rows, nil
}

// faultsRun executes one faulty run and returns the delivered row count
// (0 when even the initial dispatch was lost) plus the query handle.
func faultsRun(cfg core.Config, src string) (int, *client.Query, *core.Deployment, error) {
	d, err := core.NewDeployment(cfg)
	if err != nil {
		return 0, nil, nil, err
	}
	q, err := d.Run(src, 30*time.Second)
	if err != nil {
		if q == nil {
			return 0, nil, d, nil // initial dispatch dropped: total loss
		}
		d.Close()
		return 0, nil, nil, err
	}
	rows := 0
	for _, t := range q.Results() {
		rows += len(t.Rows)
	}
	return rows, q, d, nil
}

// Faults runs experiment T11: recovery from injected message loss. Three
// engine configurations — the classic engine, forward retry with backoff,
// and retry plus degraded-mode bounce — face the same seeded fault
// schedules at increasing drop rates; every configuration keeps the
// orphan reaper so runs always terminate. The paper's protocol (§2.8)
// only *detects* failure passively; this experiment measures how much of
// the answer each recovery layer preserves.
func Faults(w io.Writer) (*FaultsOut, error) {
	fmt.Fprintln(w, "T11: fault injection and recovery (robustness; paper §2.8, §7.1)")
	out := &FaultsOut{}
	seeds := []int64{1, 2, 3}

	configs := []struct {
		name   string
		srv    server.Options
		hybrid bool
	}{
		{"classic", server.Options{}, false},
		{"retry", server.Options{Retry: faultRetry}, false},
		{"retry+bounce", server.Options{Retry: faultRetry}, true},
	}

	var rows [][]string
	for _, drop := range []float64{0, 0.05, 0.10, 0.20} {
		for _, cfg := range configs {
			cell := FaultsRow{Drop: drop, Config: cfg.name}
			var completeness float64
			for _, seed := range seeds {
				web := faultsWeb(seed)
				src := faultsQuery(web.First())
				want, err := faultsTruth(web, src)
				if err != nil {
					return nil, err
				}
				got, q, d, err := faultsRun(core.Config{
					Web:       web,
					Net:       netsim.Options{Faults: netsim.FaultPlan{Seed: seed, Drop: drop, Sever: drop / 5}},
					Server:    cfg.srv,
					Hybrid:    cfg.hybrid,
					ReapGrace: 400 * time.Millisecond,
				}, src)
				if err != nil {
					return nil, err
				}
				completeness += float64(got) / float64(want)
				sn := d.Metrics().Snapshot()
				cell.Retries += sn.Retries
				cell.Bounced += sn.Bounced
				cell.Reaped += sn.CHTReaped
				cell.Dropped += d.Network().Stats().Snapshot().Total().Dropped
				if q == nil {
					cell.Failed++
				}
				d.Close()
			}
			cell.Completeness = completeness / float64(len(seeds))
			out.Sweep = append(out.Sweep, cell)
			rows = append(rows, []string{
				fmt.Sprintf("%.0f%%", drop*100),
				cell.Config,
				fmt.Sprintf("%.1f%%", cell.Completeness*100),
				fmt.Sprintf("%d", cell.Retries),
				fmt.Sprintf("%d", cell.Bounced),
				fmt.Sprintf("%d", cell.Reaped),
				fmt.Sprintf("%d", cell.Dropped),
				fmt.Sprintf("%d", cell.Failed),
			})
		}
	}
	fmt.Fprintf(w, "\nrecovery sweep (%d seeds per cell, 40-site tree, selective query):\n", len(seeds))
	table(w, []string{"drop", "engine", "answer", "retries", "bounced", "reaped", "frames lost", "no answer"}, rows)

	// Degraded mode: one leaf site down for the whole run. Retries
	// exhaust, the clone bounces, the fallback's downloads fail too — the
	// engine returns exactly the reachable fraction, cleanly accounted.
	web := webgraph.Tree(webgraph.TreeOpts{Fanout: 2, Depth: 3, PagesPerSite: 1, MarkerFrac: 1.0, Seed: 5})
	src := faultsQuery(web.First())
	const victim = "t14.example"
	want, err := faultsTruth(web, src)
	if err != nil {
		return nil, err
	}
	out.DownExpected = want
	got, q, d, err := faultsRun(core.Config{
		Web: web,
		Net: netsim.Options{Faults: netsim.FaultPlan{
			Windows: []netsim.DownWindow{{Endpoint: victim, From: 0, Until: time.Hour}},
		}},
		Server:    server.Options{Retry: faultRetry},
		Hybrid:    true,
		ReapGrace: 400 * time.Millisecond,
	}, src)
	if err != nil {
		return nil, err
	}
	out.DownRows = got
	// One page per site and every page carries the marker, so the victim
	// hosts exactly one of the answer rows.
	out.DownReachable = want - 1
	if q != nil {
		out.DownPartial = q.Partial()
	}
	d.Close()
	fmt.Fprintf(w, "\ndegraded mode (site %s down, retry+bounce engine):\n", victim)
	fmt.Fprintf(w, "  delivered %d of %d rows (reachable: %d); Partial=%v — the bounce path retired\n",
		out.DownRows, out.DownExpected, out.DownReachable, out.DownPartial)
	fmt.Fprintln(w, "  every entry itself, so the reaper had nothing to do.")

	// Silent crash: the site receives clones but its reports are
	// partitioned away. Only the client-side reaper can finish the query.
	dep, err := core.NewDeployment(core.Config{
		Web:       webgraph.Campus(),
		Server:    server.Options{Retry: server.RetryPolicy{Attempts: 2, Base: time.Millisecond}},
		ReapGrace: 300 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	defer dep.Close()
	const crashed = "dsl.serc.iisc.ernet.in"
	dep.Network().Block(crashed, "user", true)
	cq, err := dep.Run(webgraph.CampusDISQL, 30*time.Second)
	if err != nil {
		return nil, err
	}
	for _, t := range cq.Results() {
		out.CrashRows += len(t.Rows)
	}
	out.CrashReaped = cq.Stats().Reaped
	out.CrashPartial = cq.Partial()
	fmt.Fprintf(w, "\nsilent crash (campus run, %s cut off from the user mid-query):\n", crashed)
	fmt.Fprintf(w, "  delivered %d rows, reaped %d orphaned CHT entries, Partial=%v, unreachable=[%s]\n",
		out.CrashRows, out.CrashReaped, out.CrashPartial, strings.Join(cq.Unreachable(), " "))
	return out, nil
}
