package experiments

import (
	"fmt"
	"io"
	"strings"
	"testing"
)

// The experiment suite doubles as the repository's shape regression tests:
// each test asserts the qualitative outcome the paper predicts.

func TestFigure1Shape(t *testing.T) {
	out, err := Figure1(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 2, 3} {
		if out.Roles[i] != "PureRouter" {
			t.Errorf("node %d role = %q", i, out.Roles[i])
		}
	}
	if !strings.Contains(out.Roles[4], "q1") || !strings.Contains(out.Roles[4], "q2") {
		t.Errorf("node 4 must act twice: %q", out.Roles[4])
	}
	if !strings.Contains(out.Roles[7], "dead-end") {
		t.Errorf("node 7 must dead-end: %q", out.Roles[7])
	}
	if !strings.Contains(out.Roles[8], "duplicate-dropped") {
		t.Errorf("node 8 must drop a duplicate: %q", out.Roles[8])
	}
	if out.Q1Rows != 3 || out.Q2Rows != 2 || out.Drops != 1 {
		t.Errorf("q1=%d q2=%d drops=%d", out.Q1Rows, out.Q2Rows, out.Drops)
	}
}

func TestFigure5Shape(t *testing.T) {
	out, err := Figure5(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if out.ArrivalsAtX != 5 {
		t.Errorf("arrivals = %d, want 5 (a..e)", out.ArrivalsAtX)
	}
	if out.ProcessedAtX != 3 || out.DroppedAtX != 2 {
		t.Errorf("processed=%d dropped=%d, want 3 and 2", out.ProcessedAtX, out.DroppedAtX)
	}
	if out.EvalsNoDedup != 4 {
		t.Errorf("evals without dedup = %d, want 4 (b..e)", out.EvalsNoDedup)
	}
}

func TestCampusShape(t *testing.T) {
	out, err := Campus(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if out.Q1Rows != 1 || out.Q2Rows != 3 {
		t.Fatalf("q1=%d q2=%d", out.Q1Rows, out.Q2Rows)
	}
	for url, text := range out.Conveners {
		if !strings.Contains(strings.ToLower(text), "convener") {
			t.Errorf("%s: %q", url, text)
		}
	}
}

func TestShippingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	out, err := Shipping(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range [][]ShippingRow{out.Selective, out.Gather} {
		for _, r := range rows {
			if r.BytesRatio <= 1.5 {
				t.Errorf("depth %d: reduction %.2f, want query shipping to win clearly", r.Depth, r.BytesRatio)
			}
		}
	}
	// The reduction must grow with document size.
	sizes := out.BySize
	if len(sizes) < 3 {
		t.Fatal("missing size sweep")
	}
	if !(sizes[len(sizes)-1].BytesRatio > 2*sizes[0].BytesRatio) {
		t.Errorf("size sweep ratios do not grow: first %.1f last %.1f",
			sizes[0].BytesRatio, sizes[len(sizes)-1].BytesRatio)
	}
}

func TestDedupShape(t *testing.T) {
	out, err := Dedup(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("rows = %d", len(out))
	}
	off, exact, subsume, strong := out[0], out[1], out[2], out[3]
	// Identical answers in every mode.
	for _, r := range out {
		if r.Rows != off.Rows {
			t.Errorf("mode %s rows = %d, want %d", r.Mode, r.Rows, off.Rows)
		}
	}
	// Monotonic work reduction.
	if !(off.Evals > 2*exact.Evals) {
		t.Errorf("exact should cut evaluations sharply: off=%d exact=%d", off.Evals, exact.Evals)
	}
	if !(exact.Evals > subsume.Evals) {
		t.Errorf("subsumption should beat exact: exact=%d subsume=%d", exact.Evals, subsume.Evals)
	}
	if strong.Evals > subsume.Evals {
		t.Errorf("strong should not do more work than subsume: %d vs %d", strong.Evals, subsume.Evals)
	}
	if subsume.Drops == 0 {
		t.Error("subsumption mode should drop covered arrivals")
	}
	// Rewrite counts are timing-dependent here (a superset arrival must
	// race in after a smaller bound was logged); their determinism is
	// covered by the T7 replay and the log-table unit tests.
}

func TestBatchingShape(t *testing.T) {
	out, err := Batching(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	batched, unbatched := out[0], out[1]
	if !(float64(unbatched.CloneMsgs) >= 2*float64(batched.CloneMsgs)) {
		t.Errorf("batching should cut dispatches: %d vs %d", batched.CloneMsgs, unbatched.CloneMsgs)
	}
	if !(unbatched.Bytes > batched.Bytes) {
		t.Errorf("batching should cut bytes: %d vs %d", batched.Bytes, unbatched.Bytes)
	}
}

func TestCHTShape(t *testing.T) {
	out, err := CHT(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range out {
		if o.Entries <= 0 || o.Peak <= 0 || o.ResultMsgs <= 0 {
			t.Errorf("degenerate CHT run: %+v", o)
		}
		if o.Peak > o.Entries {
			t.Errorf("peak %d exceeds entries %d", o.Peak, o.Entries)
		}
	}
}

func TestTerminationShape(t *testing.T) {
	out, err := Termination(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if out.FullEvals != 50 {
		t.Errorf("full run evals = %d", out.FullEvals)
	}
	if out.CancelEvals >= out.FullEvals {
		t.Errorf("cancel had no effect: %d", out.CancelEvals)
	}
	if out.TerminatedAt == 0 {
		t.Error("no server observed the passive termination signal")
	}
	if out.ExtraMsgs != 0 {
		t.Error("passive termination must send no messages")
	}
}

func TestRewriteShape(t *testing.T) {
	out, err := Rewrite(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"L*2·G": "process", // first arrival
		"L*1·G": "drop",
		"L*4·G": "rewrite",
		"L*3·G": "drop",
		"L*·G":  "rewrite",
		"G·L":   "process",
	}
	seen := map[string]bool{}
	for _, c := range out {
		if seen[c.Arrives] {
			continue // the duplicate L*2·G row
		}
		seen[c.Arrives] = true
		if w, ok := want[c.Arrives]; ok && c.Action != w {
			t.Errorf("%s: action %s, want %s", c.Arrives, c.Action, w)
		}
	}
}

func TestDeadEndsShape(t *testing.T) {
	out, err := DeadEnds(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if out.WeakQ2Rows != 3 || out.StrictQ2Rows != 1 {
		t.Errorf("weak=%d strict=%d", out.WeakQ2Rows, out.StrictQ2Rows)
	}
}

func TestLatencyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	out, err := Latency(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	last := out[len(out)-1]
	if last.Cent < 3*last.Dist {
		t.Errorf("at %v latency centralized should be much slower: dist=%v cent=%v",
			last.Latency, last.Dist, last.Cent)
	}
}

func TestAllRegistered(t *testing.T) {
	names := map[string]bool{}
	for _, e := range All() {
		if names[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		names[e.Name] = true
		if e.Paper == "" || e.Brief == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
	}
	if _, ok := Lookup("campus"); !ok {
		t.Error("Lookup(campus) failed")
	}
	if _, ok := Lookup("nosuch"); ok {
		t.Error("Lookup(nosuch) should fail")
	}
}

func TestMigrationShape(t *testing.T) {
	out, err := Migration(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("rows = %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		prev, cur := out[i-1], out[i]
		if cur.Bytes >= prev.Bytes {
			t.Errorf("bytes must fall with participation: %d%% %d vs %d%% %d",
				prev.Percent, prev.Bytes, cur.Percent, cur.Bytes)
		}
		if cur.ServerEvals < prev.ServerEvals || cur.UserEvals > prev.UserEvals {
			t.Errorf("work must migrate to the servers: %+v -> %+v", prev, cur)
		}
	}
	full := out[len(out)-1]
	if full.UserEvals != 0 || full.Fetches != 0 || full.Bounces != 0 {
		t.Errorf("full participation should need no fallback: %+v", full)
	}
	none := out[0]
	if none.ServerEvals != 0 {
		t.Errorf("zero participation should use no servers: %+v", none)
	}
}

func TestWorkersShape(t *testing.T) {
	out, err := Workers(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("rows = %d", len(out))
	}
	for _, r := range out[1:] {
		if r.Rows != out[0].Rows || r.Evals != out[0].Evals {
			t.Errorf("answers must be invariant under processor concurrency: %+v vs %+v", out[0], r)
		}
	}
}

func TestAnytimeShape(t *testing.T) {
	out, err := Anytime(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if out.FinalRows == 0 {
		t.Fatal("no final rows")
	}
	prev := 0
	sawPartial := false
	for _, s := range out.Samples {
		if s.Rows < prev {
			t.Errorf("row count regressed: %d -> %d", prev, s.Rows)
		}
		prev = s.Rows
		if s.Rows > 0 && s.Rows < out.FinalRows {
			sawPartial = true
		}
		if s.Progress < 0 || s.Progress > 1 {
			t.Errorf("progress out of range: %v", s.Progress)
		}
	}
	if !sawPartial {
		t.Error("never observed a partial answer; latency too low to sample?")
	}
}

func TestFaultsShape(t *testing.T) {
	out, err := Faults(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// Per (drop, engine) cell: completeness in range, and the qualitative
	// ordering the experiment exists to show.
	byKey := make(map[string]FaultsRow)
	for _, r := range out.Sweep {
		if r.Completeness < 0 || r.Completeness > 1 {
			t.Errorf("%s@%.0f%%: completeness %v out of range", r.Config, r.Drop*100, r.Completeness)
		}
		if r.Drop == 0 && (r.Completeness != 1 || r.Retries != 0 || r.Dropped != 0) {
			t.Errorf("fault-free cell not clean: %+v", r)
		}
		byKey[fmt.Sprintf("%s@%v", r.Config, r.Drop)] = r
	}
	if r := byKey["retry+bounce@0.05"]; r.Completeness != 1 || r.Retries == 0 {
		t.Errorf("retry+bounce at 5%% must recover the full answer via retries: %+v", r)
	}
	if r := byKey["classic@0.2"]; r.Completeness >= 1 {
		t.Errorf("classic engine at 20%% drop lost nothing; ablation shows nothing: %+v", r)
	}
	if classic, fT := byKey["classic@0.2"], byKey["retry+bounce@0.2"]; fT.Completeness <= classic.Completeness {
		t.Errorf("recovery layers did not help at 20%%: classic %v vs retry+bounce %v",
			classic.Completeness, fT.Completeness)
	}
	if out.DownRows != out.DownReachable || out.DownPartial {
		t.Errorf("degraded mode: rows=%d want %d, partial=%v", out.DownRows, out.DownReachable, out.DownPartial)
	}
	if out.CrashReaped == 0 || !out.CrashPartial {
		t.Errorf("silent crash: reaped=%d partial=%v, want reaping and a Partial mark", out.CrashReaped, out.CrashPartial)
	}
}

func TestPerfShape(t *testing.T) {
	if testing.Short() {
		t.Skip("perf grid is slow")
	}
	// Few measured runs, no artifact: the shape, not the speedup, is under
	// test (single-machine CI numbers are too noisy to gate on).
	out, err := perfRun(io.Discard, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	want := len(perfConfigs()) * len(perfWorkloads()) * 2 // x transports
	if len(out.Rows) != want {
		t.Fatalf("grid has %d rows, want %d", len(out.Rows), want)
	}
	rowsBy := make(map[string]int)
	for _, r := range out.Rows {
		if r.MeanMs <= 0 || r.P50Ms <= 0 {
			t.Errorf("%s/%s/%s: non-positive latency %+v", r.Transport, r.Topology, r.Config, r)
		}
		// Every configuration must deliver the same complete answer.
		key := r.Transport + "/" + r.Topology
		if prev, ok := rowsBy[key]; ok && prev != r.Rows {
			t.Errorf("%s: %s delivered %d rows, other configs %d", key, r.Config, r.Rows, prev)
		}
		rowsBy[key] = r.Rows
		switch r.Config {
		case "baseline":
			if r.ConnReused != 0 || r.ParseCacheHits != 0 || r.DBBuildCoalesced != 0 {
				t.Errorf("baseline cell used optimized machinery: %+v", r)
			}
		case "optimized":
			if r.ConnReused == 0 {
				t.Errorf("%s/%s optimized never reused a connection", r.Transport, r.Topology)
			}
			if r.ParseCacheHits == 0 {
				t.Errorf("%s/%s optimized never hit the parse cache", r.Transport, r.Topology)
			}
			if r.DocsParsed != 0 {
				t.Errorf("%s/%s optimized re-parsed %d documents in steady state", r.Transport, r.Topology, r.DocsParsed)
			}
		}
	}
}

func TestLoadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness is slow")
	}
	// Few probes, no artifact: the structure of the result is under test,
	// not the latency ratios (those are recorded from a quiet machine in
	// BENCH_PR4.json; CI noise would make gating on them flaky).
	out, err := loadRun(io.Discard, 4, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Cells) != 4 {
		t.Fatalf("grid has %d cells, want 4 (pipe/tcp x fifo/fair)", len(out.Cells))
	}
	for _, c := range out.Cells {
		if c.UnloadedP50Ms <= 0 || c.LoadedP50Ms <= 0 || c.RatioP95 <= 0 {
			t.Errorf("%s/%s: non-positive latency %+v", c.Transport, c.Sched, c)
		}
		if c.LightRows == 0 {
			t.Errorf("%s/%s: probe delivered no rows", c.Transport, c.Sched)
		}
		if c.HeavyCompleted == 0 {
			t.Errorf("%s/%s: loaded phase completed no heavy queries", c.Transport, c.Sched)
		}
	}
	// Shedding: some of the volley must bounce with a typed SHED, the
	// client and server counts must agree, and no admitted query may lose
	// rows — in-flight work is never shed.
	s := out.Shed
	if s.ShedQueries == 0 {
		t.Error("shed segment never shed a query")
	}
	if int64(s.ShedQueries) != s.ShedMetric {
		t.Errorf("client saw %d sheds, server counted %d", s.ShedQueries, s.ShedMetric)
	}
	if s.Submitted != s.Admitted+s.ShedQueries {
		t.Errorf("submitted %d != admitted %d + shed %d", s.Submitted, s.Admitted, s.ShedQueries)
	}
	if s.LostRows != 0 {
		t.Errorf("admitted queries lost %d rows under shedding", s.LostRows)
	}
	// Expiry: the deadline must cut the scan short and the server-side
	// expiry count must reconcile 1:1 with EXPIRED fates in the journey.
	e := out.Expiry
	if !e.Reconciled {
		t.Errorf("expiry not reconciled: %d budget-expired vs %d EXPIRED fates", e.BudgetExpired, e.FateExpired)
	}
	if e.DeliveredRows >= e.TruthRows {
		t.Errorf("deadline did not clip the scan: delivered %d of %d", e.DeliveredRows, e.TruthRows)
	}
}

func TestStreamShape(t *testing.T) {
	if testing.Short() {
		t.Skip("stream grid is slow")
	}
	// Few measured runs, no artifact: structure and invariants, not the
	// ratios (single-machine CI numbers are too noisy to gate on).
	out, err := streamRun(io.Discard, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Latency) != 4 { // campus+tree40 x pipe+tcp
		t.Fatalf("latency grid has %d rows, want 4", len(out.Latency))
	}
	for _, r := range out.Latency {
		if r.FirstRowMs <= 0 || r.CompleteMs <= 0 || r.FirstRowMs > r.CompleteMs {
			t.Errorf("%s/%s: first-row %v / complete %v", r.Transport, r.Topology, r.FirstRowMs, r.CompleteMs)
		}
		// Streamed/buffered parity is asserted per run inside the cell;
		// the counts surface here.
		if r.Rows == 0 || r.Streamed != r.Rows {
			t.Errorf("%s/%s: streamed %d of %d rows", r.Transport, r.Topology, r.Streamed, r.Rows)
		}
	}
	if len(out.Batch) != 2 {
		t.Fatalf("batch grid has %d rows, want 2", len(out.Batch))
	}
	off, on := out.Batch[0], out.Batch[1]
	if off.Rows != on.Rows {
		t.Errorf("batching changed the answer: %d vs %d rows", off.Rows, on.Rows)
	}
	if off.ResultMsgs != off.ResultReports {
		t.Errorf("batch-off coalesced: %d msgs, %d reports", off.ResultMsgs, off.ResultReports)
	}
	if on.ResultMsgs >= on.ResultReports {
		t.Errorf("batch-on did not coalesce: %d msgs, %d reports", on.ResultMsgs, on.ResultReports)
	}
	if on.WireFrames != on.ResultMsgs {
		t.Errorf("fabric saw %d result frames, metrics counted %d", on.WireFrames, on.ResultMsgs)
	}
	if len(out.Stop) != 2 {
		t.Fatalf("stop grid has %d rows, want 2", len(out.Stop))
	}
	quota, firstn := out.Stop[0], out.Stop[1]
	if quota.Rows != firstn.Rows {
		t.Errorf("termination policies answered differently: %d vs %d rows", quota.Rows, firstn.Rows)
	}
	if quota.StopsSent != 0 || quota.Stopped != 0 {
		t.Errorf("quota-only cell stopped clones: %+v", quota)
	}
	if firstn.StopsSent == 0 {
		t.Errorf("first-n cell sent no stops: %+v", firstn)
	}
	if firstn.Bytes >= quota.Bytes {
		t.Errorf("active stop saved no bytes: %d vs %d", firstn.Bytes, quota.Bytes)
	}
}

func TestReplicasShape(t *testing.T) {
	if testing.Short() {
		t.Skip("replica grid is slow")
	}
	// Few queries per worker, no artifact: structure and invariants, not
	// the exact speedups (single-machine CI numbers are too noisy to
	// gate on tight ratios).
	out, err := replicasRun(io.Discard, 6, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Scale) != 3 {
		t.Fatalf("scale grid has %d rows, want 3", len(out.Scale))
	}
	for _, c := range out.Scale {
		if c.LostRows != 0 {
			t.Errorf("%d replicas: lost %d rows", c.Replicas, c.LostRows)
		}
		if c.ReplicasUsed < 1 || c.ReplicasUsed > c.Replicas {
			t.Errorf("%d replicas: %d used", c.Replicas, c.ReplicasUsed)
		}
	}
	if out.Scale[0].Replicas != 1 || out.Scale[1].Replicas != 2 || out.Scale[2].Replicas != 4 {
		t.Fatalf("scale grid rows are %d/%d/%d replicas, want 1/2/4",
			out.Scale[0].Replicas, out.Scale[1].Replicas, out.Scale[2].Replicas)
	}
	if out.Scale[2].ReplicasUsed < 2 {
		t.Errorf("4-replica cell used only %d replicas", out.Scale[2].ReplicasUsed)
	}
	// The uplink is the bottleneck, so adding replicas must add
	// throughput. Lenient floors: the full-size run shows ~2x and ~3.6x.
	if out.Scale[1].QPS < 1.3*out.Scale[0].QPS {
		t.Errorf("2 replicas did not scale: %.0f vs %.0f qps", out.Scale[1].QPS, out.Scale[0].QPS)
	}
	if out.Scale[2].QPS < 1.8*out.Scale[0].QPS {
		t.Errorf("4 replicas did not scale: %.0f vs %.0f qps", out.Scale[2].QPS, out.Scale[0].QPS)
	}
	if len(out.Kills) != 3 {
		t.Fatalf("kill grid has %d rows, want 3", len(out.Kills))
	}
	for _, c := range out.Kills {
		if c.Clean+c.Partial+c.Failed != c.Queries {
			t.Errorf("%d kills: %d+%d+%d fates for %d queries", c.Kills, c.Clean, c.Partial, c.Failed, c.Queries)
		}
		if c.Failed != 0 {
			t.Errorf("%d kills: %d queries failed outright", c.Kills, c.Failed)
		}
		if c.Kills == 0 {
			if c.AvailabilityPct != 100 || c.Failovers+c.Replays != 0 {
				t.Errorf("kill-free cell not clean: %+v", c)
			}
		} else if c.Failovers+c.Replays == 0 {
			t.Errorf("%d kills left no failover or replay trace: %+v", c.Kills, c)
		}
	}
}

func TestPlannerShape(t *testing.T) {
	if testing.Short() {
		t.Skip("planner grid is slow")
	}
	// Few measured runs, no artifact: the qualitative claim — pushdown
	// engages and moves fewer bytes for the same answer — not the exact
	// ratios recorded in BENCH_PR7.json.
	out, err := plannerRun(io.Discard, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rows) != 2*len(plannerConfigs()) {
		t.Fatalf("grid has %d rows, want %d", len(out.Rows), 2*len(plannerConfigs()))
	}
	rowsBy := make(map[string]int)
	for _, r := range out.Rows {
		if r.MeanMs < 0 || r.Bytes <= 0 || r.Rows <= 0 {
			t.Errorf("%s/%s: degenerate cell %+v", r.Topology, r.Config, r)
		}
		if prev, ok := rowsBy[r.Topology]; ok && prev != r.Rows {
			t.Errorf("%s: %s delivered %d rows, other configs %d", r.Topology, r.Config, r.Rows, prev)
		}
		rowsBy[r.Topology] = r.Rows
		switch r.Config {
		case "naive":
			if r.PushdownHits != 0 || r.PushdownSavedBytes != 0 || r.ShipDataEdges != 0 {
				t.Errorf("%s naive cell used planner machinery: %+v", r.Topology, r)
			}
		default: // pushdown, planner
			if r.PushdownHits == 0 || r.PushdownSavedBytes <= 0 {
				t.Errorf("%s/%s: pushdown never engaged: %+v", r.Topology, r.Config, r)
			}
		}
		if r.RowsScanned < r.RowsEmitted || r.RowsScanned == 0 {
			t.Errorf("%s/%s: scan/emit accounting off: %d/%d", r.Topology, r.Config, r.RowsScanned, r.RowsEmitted)
		}
	}
	// The headline claim: planner-on moves fewer bytes than naive shipping
	// on both topologies.
	if out.CampusBytesRatio <= 1 {
		t.Errorf("campus bytes ratio = %.2f, want > 1", out.CampusBytesRatio)
	}
	if out.TreeBytesRatio <= 1 {
		t.Errorf("tree40 bytes ratio = %.2f, want > 1", out.TreeBytesRatio)
	}
}

func TestWireShape(t *testing.T) {
	if testing.Short() {
		t.Skip("wire grid is slow")
	}
	// Few measured runs, no artifact: the structure — identical answers
	// down every column, the batching/tuning machinery engaging where
	// configured — not the speedup ratios recorded in BENCH_PR8.json.
	out, err := wireRun(io.Discard, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	want := len(wireConfigs()) * len(wireWorkloads()) * 2 // x transports
	if len(out.Rows) != want {
		t.Fatalf("grid has %d rows, want %d", len(out.Rows), want)
	}
	rowsBy := make(map[string]int)
	for _, r := range out.Rows {
		if r.MeanMs <= 0 || r.Messages <= 0 || r.MsgsPerSec <= 0 {
			t.Errorf("%s/%s/%s: degenerate cell %+v", r.Transport, r.Topology, r.Config, r)
		}
		// Every wire configuration must deliver the same complete answer
		// (wireRun also enforces the full canonical-row comparison).
		key := r.Transport + "/" + r.Topology
		if prev, ok := rowsBy[key]; ok && prev != r.Rows {
			t.Errorf("%s: %s delivered %d rows, other configs %d", key, r.Config, r.Rows, prev)
		}
		rowsBy[key] = r.Rows
		switch r.Config {
		case "gob", "v2":
			if r.ResultMsgs != r.ResultReports {
				t.Errorf("%s/%s unbatched cell coalesced frames: %d reports in %d messages",
					key, r.Config, r.ResultReports, r.ResultMsgs)
			}
			if r.TunesSent != 0 || r.BatchTunes != 0 {
				t.Errorf("%s/%s tuned without adaptive batching: %+v", key, r.Config, r)
			}
		case "gob-batch", "v2-batch":
			if r.ResultMsgs >= r.ResultReports {
				t.Errorf("%s/%s batching never coalesced: %d reports in %d messages",
					key, r.Config, r.ResultReports, r.ResultMsgs)
			}
		case "v2-adaptive":
			// Sent and applied counts skew at low run counts (a query's
			// final TUNE broadcast can land after its Wait returns), so
			// only their union is stable: the loop must engage somewhere.
			if r.Topology == "tree40" && r.TunesSent == 0 && r.BatchTunes == 0 {
				t.Errorf("%s adaptive cell never tuned: sent=%d applied=%d",
					key, r.TunesSent, r.BatchTunes)
			}
		}
	}
	if out.SpeedupTCPTree <= 1 {
		t.Errorf("tcp/tree40 v2 speedup = %.2f, want > 1", out.SpeedupTCPTree)
	}
}

func TestStoreShape(t *testing.T) {
	if testing.Short() {
		t.Skip("store grid is slow")
	}
	// Few measured runs, no artifact: the structure — identical answers
	// down every column, store arms serving cold-opened pages without a
	// single parse (storeCell enforces the counters), the eviction and
	// index machinery engaging — not the memory/latency headlines
	// recorded in BENCH_PR9.json (single-machine CI heap numbers are
	// too noisy to gate on).
	out, err := storeRun(io.Discard, 2, "")
	if err != nil {
		t.Fatal(err)
	}
	want := len(storeConfigs()) * len(storeWorkloads())
	if len(out.Rows) != want {
		t.Fatalf("grid has %d rows, want %d", len(out.Rows), want)
	}
	if out.WebScale < 10 {
		t.Errorf("big web is only %.1fx the previous largest corpus, want >= 10x", out.WebScale)
	}
	rowsBy := make(map[string]int)
	for _, r := range out.Rows {
		if r.MeanMs <= 0 || r.Rows <= 0 {
			t.Errorf("%s/%s: degenerate cell %+v", r.Topology, r.Config, r)
		}
		if prev, ok := rowsBy[r.Topology]; ok && prev != r.Rows {
			t.Errorf("%s: %s delivered %d rows, other configs %d", r.Topology, r.Config, r.Rows, prev)
		}
		rowsBy[r.Topology] = r.Rows
		switch r.Config {
		case "ram":
			if r.PagesRead != 0 || r.ColdOpens != 0 {
				t.Errorf("%s/ram touched the store: %+v", r.Topology, r)
			}
		case "ram-bounded":
			if r.DBCacheEvicted == 0 {
				t.Errorf("%s/ram-bounded never evicted from the DB cache", r.Topology)
			}
		case "store", "store-noindex":
			if r.DocsParsed != 0 {
				t.Errorf("%s/%s parsed %d documents", r.Topology, r.Config, r.DocsParsed)
			}
			if r.PagesRead == 0 || r.ColdOpens == 0 {
				t.Errorf("%s/%s served nothing from pages: %+v", r.Topology, r.Config, r)
			}
			if r.Topology == "bigtree" && r.PagesEvicted == 0 {
				t.Errorf("%s/%s big web fit the %d-frame pool; eviction untested", r.Topology, r.Config, storePoolPages)
			}
			if r.Config == "store" && r.Topology == "bigtree" && r.IndexHits == 0 {
				t.Error("bigtree/store never consulted the text index")
			}
			if r.Config == "store-noindex" && r.IndexHits != 0 {
				t.Errorf("%s/store-noindex hit the index %d times", r.Topology, r.IndexHits)
			}
		}
	}
}

func TestWatchShape(t *testing.T) {
	// Short schedule, no artifact: correctness is enforced inside
	// watchRun (it errors on the first divergence from the full re-run
	// oracle), so the shape test asserts the structure — the watch
	// engaged, deltas flowed, and incremental maintenance moved fewer
	// bytes than naive re-execution. The 2x headline is asserted over
	// the full 60-step schedule in CI's bench job, not here.
	out, err := watchRun(io.Discard, 25, "")
	if err != nil {
		t.Fatal(err)
	}
	if !out.OracleOK {
		t.Error("oracle_ok = false")
	}
	if out.Epochs < out.Steps {
		t.Errorf("epochs = %d, want >= steps (%d)", out.Epochs, out.Steps)
	}
	if out.Baseline == 0 {
		t.Error("baseline standing set is empty")
	}
	if out.Edits+out.Rewires+out.Births+out.Removals != out.Steps {
		t.Errorf("op mix %d/%d/%d/%d does not sum to %d steps",
			out.Edits, out.Rewires, out.Births, out.Removals, out.Steps)
	}
	if out.IncrementalBytes <= 0 || out.NaiveBytes <= 0 {
		t.Fatalf("degenerate byte counts: incremental %d, naive %d", out.IncrementalBytes, out.NaiveBytes)
	}
	if out.SavingsX <= 1 {
		t.Errorf("savings = %.2fx, want > 1x", out.SavingsX)
	}
}
