package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"webdis/internal/client"
	"webdis/internal/core"
	"webdis/internal/server"
	"webdis/internal/webgraph"
)

// PlannerRow is one cell of the T17 grid: one topology/query pair under
// one engine configuration, bytes and latency per query at steady state.
type PlannerRow struct {
	Topology string
	Query    string
	Config   string // naive, pushdown (ship-query pinned), planner (full)

	MeanMs   float64 // mean end-to-end latency per measured query
	Bytes    int64   // fabric bytes per query (all messages, both ways)
	Messages int64   // fabric messages per query
	Rows     int     // delivered result rows (identical across configs)

	RowsScanned        int64 // tuples read by operator-pipeline scans
	RowsEmitted        int64 // distinct rows emitted by evaluations
	PushdownHits       int64 // tables reduced in place by a plan fragment
	PushdownSavedBytes int64 // result-cell bytes the pushdown kept off the wire
	ShipDataEdges      int64 // traversal edges flipped to data shipping
	ShipDataBytes      int64 // document bytes fetched for those edges
}

// PlannerOut is the T17 result: the grid plus the headline byte ratios
// (naive bytes / full-planner bytes, > 1 means the planner saved wire).
type PlannerOut struct {
	Rows []PlannerRow

	CampusBytesRatio float64
	TreeBytesRatio   float64
}

// plannerCampusDISQL is the campus convener census: Example Query 2
// reshaped into the PR-7 grammar — one row per convener page, counting
// the matching documents by their text. The aggregate argument is the
// page text, so naive shipping hauls every matching lab page to the
// user-site as the count's base rows; the pushed-down partial aggregate
// folds them at the lab sites and ships one counter instead.
const plannerCampusDISQL = `
select d1.url, count(d1.text)
from document d0 such that "http://csa.iisc.ernet.in/index.html" L d0,
where d0.title contains "lab"
     document d1 such that d0 G·(L*1) d1,
     relinfon r such that r.delimiter = "hr",
where (r.text contains "convener")
group by d1.url
order by d1.url
`

// plannerTreeDISQL counts the marker pages of the 40-site tree by their
// document text — the paper's query-shipping motivation in one line:
// naive shipping hauls every matching page's full text (~5000 filler
// words) to the user-site just to count it; the pushed-down partial
// aggregate ships one counter per node instead.
func plannerTreeDISQL(root string) string {
	return fmt.Sprintf(
		`select count(d.text) from document d such that %q N|(G*3) d where d.text contains %q`,
		root, webgraph.Marker)
}

func plannerConfigs() []struct {
	Name string
	Opts server.Options
} {
	return []struct {
		Name string
		Opts server.Options
	}{
		{"naive", server.Options{}},
		{"pushdown", server.Options{Planner: server.PlannerOptions{Enabled: true, NoShipData: true}}},
		{"planner", server.Options{Planner: server.PlannerOptions{Enabled: true}}},
	}
}

// plannerCell measures one configuration: a fresh deployment with the
// per-site document hosts running (ship-data edges must be able to
// fetch), two warmup queries that also seed the statistics loop
// (result frames carry per-site stats to the client, the next root
// clone carries them back out), then `runs` measured queries.
func plannerCell(topology, qname, config string, web *webgraph.Web, opts server.Options, src string, runs int) (*PlannerRow, string, error) {
	d, err := core.NewDeployment(core.Config{Web: web, Server: opts})
	if err != nil {
		return nil, "", err
	}
	defer d.Close()

	var last *client.Query
	runOne := func() (time.Duration, error) {
		start := time.Now()
		q, err := d.Run(src, 30*time.Second)
		if err != nil {
			return 0, err
		}
		last = q
		return time.Since(start), nil
	}
	for i := 0; i < 2; i++ {
		if _, err := runOne(); err != nil {
			return nil, "", err
		}
	}
	// Cells run back to back in one process; collect the previous cell's
	// garbage (naive cells churn megabytes of shipped document text) so a
	// GC pause paid mid-measurement doesn't bill the wrong configuration.
	runtime.GC()
	netBefore := d.Network().Stats().Snapshot().Total()
	metBefore := d.Metrics().Snapshot()
	var total time.Duration
	for i := 0; i < runs; i++ {
		el, err := runOne()
		if err != nil {
			return nil, "", err
		}
		total += el
	}
	netAfter := d.Network().Stats().Snapshot().Total()
	metAfter := d.Metrics().Snapshot()

	nrows := 0
	var rendered strings.Builder
	for _, t := range last.Results() {
		nrows += len(t.Rows)
		fmt.Fprintf(&rendered, "stage %d %v %q\n", t.Stage, t.Cols, t.Rows)
	}
	row := &PlannerRow{
		Topology:           topology,
		Query:              qname,
		Config:             config,
		MeanMs:             float64(total.Milliseconds()) / float64(runs),
		Bytes:              (netAfter.Bytes - netBefore.Bytes) / int64(runs),
		Messages:           (netAfter.Messages - netBefore.Messages) / int64(runs),
		Rows:               nrows,
		RowsScanned:        (metAfter.RowsScanned - metBefore.RowsScanned) / int64(runs),
		RowsEmitted:        (metAfter.RowsEmitted - metBefore.RowsEmitted) / int64(runs),
		PushdownHits:       (metAfter.PushdownHits - metBefore.PushdownHits) / int64(runs),
		PushdownSavedBytes: (metAfter.PushdownBytesSaved - metBefore.PushdownBytesSaved) / int64(runs),
		ShipDataEdges:      (metAfter.ShipDataEdges - metBefore.ShipDataEdges) / int64(runs),
		ShipDataBytes:      (metAfter.ShipDataBytes - metBefore.ShipDataBytes) / int64(runs),
	}
	return row, rendered.String(), nil
}

// Planner runs T17: the cost-based distributed planner measured against
// naive shipping on the campus and 40-site-tree topologies, writing the
// grid to BENCH_PR7.json. Every cell must deliver the identical answer —
// the experiment fails loudly if any plan choice changes the results.
func Planner(w io.Writer) (*PlannerOut, error) {
	return plannerRun(w, 5, "BENCH_PR7.json")
}

func plannerRun(w io.Writer, runs int, outPath string) (*PlannerOut, error) {
	out := &PlannerOut{}
	workloads := []struct {
		Topology string
		Query    string
		Web      func() *webgraph.Web
		Src      func(web *webgraph.Web) string
	}{
		{"campus", "conveners/group-by", webgraph.Campus,
			func(*webgraph.Web) string { return plannerCampusDISQL }},
		{"tree40", "marker-count", perfTreeWeb,
			func(web *webgraph.Web) string { return plannerTreeDISQL(web.First()) }},
	}

	fmt.Fprintln(w, "T17: cost-based distributed planner — pushdown and edge decisions vs naive shipping")
	fmt.Fprintln(w, "(per cell: fresh deployment with document hosts, 2 warmups seed the statistics,", runs, "measured queries)")
	fmt.Fprintln(w)

	ratios := make(map[string]float64)
	for _, wl := range workloads {
		web := wl.Web()
		src := wl.Src(web)
		var naiveBytes, plannerBytes int64
		var baseline string
		for _, cfg := range plannerConfigs() {
			row, rendered, err := plannerCell(wl.Topology, wl.Query, cfg.Name, web, cfg.Opts, src, runs)
			if err != nil {
				return nil, fmt.Errorf("planner %s/%s: %w", wl.Topology, cfg.Name, err)
			}
			switch cfg.Name {
			case "naive":
				naiveBytes = row.Bytes
				baseline = rendered
			case "planner":
				plannerBytes = row.Bytes
			}
			if baseline != "" && rendered != baseline {
				return nil, fmt.Errorf("planner %s/%s changed the answer:\n%s\nvs naive:\n%s",
					wl.Topology, cfg.Name, rendered, baseline)
			}
			out.Rows = append(out.Rows, *row)
		}
		if plannerBytes > 0 {
			ratios[wl.Topology] = float64(naiveBytes) / float64(plannerBytes)
		}
	}
	out.CampusBytesRatio = ratios["campus"]
	out.TreeBytesRatio = ratios["tree40"]

	var rows [][]string
	for _, r := range out.Rows {
		rows = append(rows, []string{
			r.Topology, r.Config,
			fmt.Sprintf("%.2f", r.MeanMs),
			fmtBytes(r.Bytes), fmt.Sprintf("%d", r.Messages),
			fmt.Sprintf("%d", r.Rows),
			fmt.Sprintf("%d/%d", r.RowsScanned, r.RowsEmitted),
			fmt.Sprintf("%d", r.PushdownHits), fmtBytes(r.PushdownSavedBytes),
			fmt.Sprintf("%d", r.ShipDataEdges), fmtBytes(r.ShipDataBytes),
		})
	}
	table(w, []string{"topology", "config", "mean ms", "bytes/q", "msgs/q", "rows", "scan/emit", "push", "saved", "sd edges", "sd bytes"}, rows)
	fmt.Fprintf(w, "\nheadline: planner-on moves %.2fx fewer bytes on campus, %.2fx fewer on tree40, same answers\n",
		out.CampusBytesRatio, out.TreeBytesRatio)

	if outPath != "" {
		blob, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "machine-readable grid written to %s\n", outPath)
	}
	return out, nil
}
