package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"webdis/internal/core"
	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/webgraph"
	"webdis/internal/wire"
)

// StreamLatencyRow is one cell of the T15 first-row grid: how long until
// the first streamed row reaches the user-site versus full completion.
// Streamed counts rows pulled through Query.Rows concurrently with the
// run; it must equal Rows (streamed/buffered parity).
type StreamLatencyRow struct {
	Transport  string  `json:"transport"` // pipe | tcp
	Topology   string  `json:"topology"`  // campus | tree40
	Runs       int     `json:"runs"`
	FirstRowMs float64 `json:"first_row_ms"`
	CompleteMs float64 `json:"complete_ms"`
	Ratio      float64 `json:"ratio"` // first-row / completion (acceptance: < 0.5 on tree40)
	Rows       int     `json:"rows"`
	Streamed   int     `json:"streamed"`
}

// StreamBatchRow is one cell of the batching ablation on the fan-in
// power-law web: logical reports versus result frames actually sent.
type StreamBatchRow struct {
	Config        string  `json:"config"` // batch-off | batch-on
	Runs          int     `json:"runs"`
	ResultMsgs    int64   `json:"result_msgs"`    // frames dispatched (server metric delta)
	ResultReports int64   `json:"result_reports"` // logical reports carried (delta)
	WireFrames    int64   `json:"wire_frames"`    // "result"-kind frames observed on the fabric
	Coalescing    float64 `json:"coalescing"`     // reports per frame
	MeanMs        float64 `json:"mean_ms"`
	Rows          int     `json:"rows"`
}

// StreamStopRow is one cell of the early-termination ablation on the
// chain web: the same row budget enforced passively (Rows quota clips
// server-side, traversal runs on) versus actively (FirstN arms a StopMsg
// broadcast once the user-site has its rows).
type StreamStopRow struct {
	Config    string  `json:"config"` // quota-only | first-n
	Runs      int     `json:"runs"`
	Rows      int     `json:"rows"`
	Bytes     int64   `json:"bytes"`      // total fabric bytes, mean per run
	Messages  int64   `json:"messages"`   // total fabric messages, mean per run
	CloneMsgs int64   `json:"clone_msgs"` // "clone"-kind frames, mean per run
	StopsSent int     `json:"stops_sent"` // StopMsg broadcasts from the user-site, mean
	Stopped   int64   `json:"stopped"`    // clones terminated with a STOPPED fate, mean
	MeanMs    float64 `json:"mean_ms"`
}

// StreamOut is the T15 result.
type StreamOut struct {
	Latency []StreamLatencyRow `json:"latency"`
	Batch   []StreamBatchRow   `json:"batch"`
	Stop    []StreamStopRow    `json:"stop"`

	// TreeFirstRowRatio is the worst (largest) pipe/tcp tree40 ratio —
	// the headline streaming number (acceptance: < 0.5).
	TreeFirstRowRatio float64 `json:"tree40_first_row_ratio"`
	// BatchReduction is result-frame count off/on on the fan-in web
	// (acceptance: >= 2).
	BatchReduction float64 `json:"batch_msg_reduction"`
	// StopBytesSaved is 1 - bytes(first-n)/bytes(quota-only) on the
	// chain web (acceptance: > 0).
	StopBytesSaved float64 `json:"stop_bytes_saved_frac"`
}

// streamFanInWeb builds the batching segment's topology: a power-law web
// whose hub pages receive clone messages from many distinct parent
// sites. Per-site clone batching (Section 3.2) already coalesces
// *outgoing* clones, so a tree — one parent per site — produces little
// result traffic to merge; fan-in is where result batching pays, because
// every duplicate arrival still owes the user-site a CHT retirement
// report.
func streamFanInWeb() *webgraph.Web {
	return webgraph.PowerLaw(webgraph.PowerLawOpts{
		Pages: 240, PagesPerSite: 4, OutLinks: 4,
		MarkerFrac: 0.3, FillerWords: 60, Seed: 6,
	})
}

// streamChainWeb builds the early-termination segment's topology: a
// linear chain of single-page sites, every page carrying the marker, so
// each hop yields exactly one result row and the traversal frontier is
// always one clone deep. Documents are padded heavy enough that per-site
// processing dominates the user-site's stop round-trip — the regime
// where an active stop can outrun the frontier (with weightless pages
// the clone always wins the race and FirstN degenerates to the quota).
func streamChainWeb(sites, fillerWords int) *webgraph.Web {
	var filler strings.Builder
	for i := 0; i < fillerWords; i++ {
		fmt.Fprintf(&filler, " w%d", i)
	}
	w := webgraph.NewWeb()
	urls := make([]string, sites)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://s%d.chain.example/p.html", i)
	}
	for i := 0; i < sites; i++ {
		p := w.NewPage(urls[i], fmt.Sprintf("Stream chain %d", i))
		p.AddText("This page holds the token " + webgraph.Marker + "." + filler.String())
		if i+1 < sites {
			p.AddLink(urls[i+1], "next")
		}
	}
	return w
}

// Stream runs T15: streaming result delivery measured three ways —
// first-row versus completion latency, result-frame batching on a fan-in
// web, and active early termination versus the passive row quota —
// writing the grid to BENCH_PR5.json.
func Stream(w io.Writer) (*StreamOut, error) {
	return streamRun(w, 7, "BENCH_PR5.json")
}

// streamRun is the parameterized body; outPath == "" skips the JSON
// artifact (the shape test's mode).
func streamRun(w io.Writer, runs int, outPath string) (*StreamOut, error) {
	out := &StreamOut{}

	// Segment 1: first-row vs completion latency, campus and tree40 over
	// pipe and tcp, rows consumed through Query.Rows while the query runs.
	for _, transport := range []string{"pipe", "tcp"} {
		for _, wl := range perfWorkloads() {
			web := wl.Web()
			row, err := streamLatencyCell(transport, wl.Name, web, wl.Query(web), runs)
			if err != nil {
				return nil, fmt.Errorf("stream latency %s/%s: %w", transport, wl.Name, err)
			}
			out.Latency = append(out.Latency, *row)
			if wl.Name == "tree40" && row.Ratio > out.TreeFirstRowRatio {
				out.TreeFirstRowRatio = row.Ratio
			}
		}
	}

	// Segment 2: result-frame batching on the fan-in web, pipe fabric
	// (frame counts need the instrumented transport).
	batchConfigs := []struct {
		Name  string
		Batch server.BatchOptions
	}{
		{"batch-off", server.BatchOptions{}},
		{"batch-on", server.BatchOptions{MaxRows: 128, MaxAge: 5 * time.Millisecond}},
	}
	fanWeb := streamFanInWeb()
	fanSrc := fmt.Sprintf(
		`select d.url from document d such that %q N|(G*4) d where d.text contains %q`,
		fanWeb.First(), webgraph.Marker)
	for _, bc := range batchConfigs {
		opts := server.Options{CacheDBs: true, Workers: 4, ResultBatch: bc.Batch}
		row, err := streamBatchCell(bc.Name, fanWeb, opts, fanSrc, runs)
		if err != nil {
			return nil, fmt.Errorf("stream batch %s: %w", bc.Name, err)
		}
		out.Batch = append(out.Batch, *row)
	}
	if off, on := out.Batch[0], out.Batch[1]; on.ResultMsgs > 0 {
		out.BatchReduction = float64(off.ResultMsgs) / float64(on.ResultMsgs)
	}

	// Segment 3: active early termination vs the passive quota on a
	// 40-site chain, pipe fabric, fresh deployment per run (warm DB
	// caches would erase the per-site work the stop is racing).
	const chainSites, firstN, stopRuns = 40, 5, 3
	chainWeb := streamChainWeb(chainSites, 2500)
	chainSrc := fmt.Sprintf(
		`select d.url from document d such that %q N|(G*%d) d where d.text contains %q`,
		chainWeb.First(), chainSites-1, webgraph.Marker)
	stopConfigs := []struct {
		Name   string
		Budget wire.Budget
	}{
		{"quota-only", wire.Budget{Rows: firstN}},
		{"first-n", wire.Budget{FirstN: firstN}},
	}
	for _, sc := range stopConfigs {
		row, err := streamStopCell(sc.Name, chainWeb, chainSrc, sc.Budget, stopRuns)
		if err != nil {
			return nil, fmt.Errorf("stream stop %s: %w", sc.Name, err)
		}
		out.Stop = append(out.Stop, *row)
	}
	if quota, first := out.Stop[0], out.Stop[1]; quota.Bytes > 0 {
		out.StopBytesSaved = 1 - float64(first.Bytes)/float64(quota.Bytes)
	}

	fmt.Fprintln(w, "T15: streaming result delivery — first-row latency, frame batching, active early termination")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "first-row vs completion (rows consumed through Query.Rows during the run):")
	var rows [][]string
	for _, r := range out.Latency {
		rows = append(rows, []string{
			r.Transport, r.Topology,
			fmt.Sprintf("%.2f", r.FirstRowMs), fmt.Sprintf("%.2f", r.CompleteMs),
			fmt.Sprintf("%.2f", r.Ratio),
			fmt.Sprintf("%d", r.Rows), fmt.Sprintf("%d", r.Streamed),
		})
	}
	table(w, []string{"transport", "topology", "first-row ms", "complete ms", "ratio", "rows", "streamed"}, rows)

	fmt.Fprintln(w, "\nresult-frame batching on the fan-in power-law web (pipe):")
	rows = rows[:0]
	for _, r := range out.Batch {
		rows = append(rows, []string{
			r.Config,
			fmt.Sprintf("%d", r.ResultMsgs), fmt.Sprintf("%d", r.ResultReports),
			fmt.Sprintf("%d", r.WireFrames),
			fmt.Sprintf("%.1f", r.Coalescing), fmt.Sprintf("%.2f", r.MeanMs),
			fmt.Sprintf("%d", r.Rows),
		})
	}
	table(w, []string{"config", "result msgs", "reports", "wire frames", "reports/frame", "mean ms", "rows"}, rows)

	fmt.Fprintf(w, "\nfirst-%d on the %d-site chain: active stop vs passive row quota (pipe):\n", firstN, chainSites)
	rows = rows[:0]
	for _, r := range out.Stop {
		rows = append(rows, []string{
			r.Config, fmt.Sprintf("%d", r.Rows),
			fmtBytes(r.Bytes), fmt.Sprintf("%d", r.Messages), fmt.Sprintf("%d", r.CloneMsgs),
			fmt.Sprintf("%d", r.StopsSent), fmt.Sprintf("%d", r.Stopped),
			fmt.Sprintf("%.2f", r.MeanMs),
		})
	}
	table(w, []string{"config", "rows", "bytes", "msgs", "clones", "stops", "stopped", "mean ms"}, rows)

	fmt.Fprintf(w, "\nheadlines: tree40 first row at %.2fx of completion; batching cuts result frames %.1fx; FirstN saves %.0f%% of bytes vs the quota\n",
		out.TreeFirstRowRatio, out.BatchReduction, 100*out.StopBytesSaved)

	if outPath != "" {
		blob, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "machine-readable grid written to %s\n", outPath)
	}
	return out, nil
}

// streamLatencyCell measures first-row and completion latency on one
// shared deployment (2 warmups, then timed repeats), consuming rows via
// the pull iterator concurrently and asserting streamed/buffered parity.
func streamLatencyCell(transport, topology string, web *webgraph.Web, src string, runs int) (*StreamLatencyRow, error) {
	cfg := core.Config{Web: web, Server: server.Options{CacheDBs: true, Workers: 4}, NoDocService: true}
	if transport == "tcp" {
		cfg.Transport = netsim.NewTCP()
	}
	d, err := core.NewDeployment(cfg)
	if err != nil {
		return nil, err
	}
	defer d.Close()

	row := &StreamLatencyRow{Transport: transport, Topology: topology, Runs: runs}
	runOne := func() (first, complete time.Duration, err error) {
		q, err := d.SubmitDISQL(src)
		if err != nil {
			return 0, 0, err
		}
		streamed := make(chan int, 1)
		go func() {
			n := 0
			for range q.Rows() {
				n++
			}
			streamed <- n
		}()
		if err := q.Wait(30 * time.Second); err != nil {
			return 0, 0, err
		}
		n := <-streamed
		nrows := 0
		for _, t := range q.Results() {
			nrows += len(t.Rows)
		}
		if n != nrows {
			return 0, 0, fmt.Errorf("parity: streamed %d rows, buffered %d", n, nrows)
		}
		if nrows == 0 {
			return 0, 0, fmt.Errorf("query delivered no rows")
		}
		row.Rows, row.Streamed = nrows, n
		st := q.Stats()
		return st.FirstRow, st.Duration, nil
	}

	for i := 0; i < 2; i++ {
		if _, _, err := runOne(); err != nil {
			return nil, err
		}
	}
	var firsts, completes []time.Duration
	for i := 0; i < runs; i++ {
		f, c, err := runOne()
		if err != nil {
			return nil, err
		}
		firsts, completes = append(firsts, f), append(completes, c)
	}
	row.FirstRowMs = meanMs(firsts)
	row.CompleteMs = meanMs(completes)
	if row.CompleteMs > 0 {
		row.Ratio = row.FirstRowMs / row.CompleteMs
	}
	return row, nil
}

// streamBatchCell measures one batching configuration on the pipe
// fabric: metric and frame-count deltas over the measured runs.
func streamBatchCell(config string, web *webgraph.Web, opts server.Options, src string, runs int) (*StreamBatchRow, error) {
	d, err := core.NewDeployment(core.Config{Web: web, Server: opts, NoDocService: true})
	if err != nil {
		return nil, err
	}
	defer d.Close()

	row := &StreamBatchRow{Config: config, Runs: runs}
	runOne := func() (time.Duration, error) {
		start := time.Now()
		q, err := d.Run(src, 30*time.Second)
		if err != nil {
			return 0, err
		}
		el := time.Since(start)
		nrows := 0
		for _, t := range q.Results() {
			nrows += len(t.Rows)
		}
		if nrows == 0 {
			return 0, fmt.Errorf("query delivered no rows")
		}
		row.Rows = nrows
		return el, nil
	}

	if _, err := runOne(); err != nil {
		return nil, err
	}
	mBefore := d.Metrics().Snapshot()
	nBefore := d.Network().Stats().Snapshot().Total()
	var durs []time.Duration
	for i := 0; i < runs; i++ {
		el, err := runOne()
		if err != nil {
			return nil, err
		}
		durs = append(durs, el)
	}
	mAfter := d.Metrics().Snapshot()
	nAfter := d.Network().Stats().Snapshot().Total()

	row.ResultMsgs = mAfter.ResultMsgs - mBefore.ResultMsgs
	row.ResultReports = mAfter.ResultReports - mBefore.ResultReports
	row.WireFrames = nAfter.ByKind["result"] - nBefore.ByKind["result"]
	if row.ResultMsgs > 0 {
		row.Coalescing = float64(row.ResultReports) / float64(row.ResultMsgs)
	}
	row.MeanMs = meanMs(durs)
	return row, nil
}

// streamStopCell measures one termination policy: a fresh deployment per
// run (cold per-site databases keep the frontier slower than the stop
// round-trip), whole-fabric byte and message counts per run, averaged.
func streamStopCell(config string, web *webgraph.Web, src string, b wire.Budget, runs int) (*StreamStopRow, error) {
	row := &StreamStopRow{Config: config, Runs: runs}
	var durs []time.Duration
	for i := 0; i < runs; i++ {
		d, err := core.NewDeployment(core.Config{Web: web, NoDocService: true})
		if err != nil {
			return nil, err
		}
		wq, err := disql.Parse(src)
		if err != nil {
			d.Close()
			return nil, err
		}
		start := time.Now()
		q, err := d.SubmitBudget(wq, b)
		if err != nil {
			d.Close()
			return nil, err
		}
		if err := q.Wait(30 * time.Second); err != nil && q.Err() == nil {
			d.Close()
			return nil, err
		}
		durs = append(durs, time.Since(start))
		nrows := 0
		for _, t := range q.Results() {
			nrows += len(t.Rows)
		}
		row.Rows = nrows
		st := q.Stats()
		net := d.Network().Stats().Snapshot().Total()
		met := d.Metrics().Snapshot()
		row.Bytes += net.Bytes
		row.Messages += net.Messages
		row.CloneMsgs += net.ByKind["clone"]
		row.StopsSent += st.StopsSent
		row.Stopped += met.Stopped
		d.Close()
	}
	n := int64(runs)
	row.Bytes /= n
	row.Messages /= n
	row.CloneMsgs /= n
	row.StopsSent /= runs
	row.Stopped /= n
	row.MeanMs = meanMs(durs)
	return row, nil
}

// meanMs is the mean of durs in milliseconds.
func meanMs(durs []time.Duration) float64 {
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, k int) bool { return sorted[i] < sorted[k] })
	var total time.Duration
	for _, el := range sorted {
		total += el
	}
	if len(sorted) == 0 {
		return 0
	}
	return float64(total.Microseconds()) / float64(len(sorted)) / 1e3
}
