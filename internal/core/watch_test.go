package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"webdis/internal/client"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/webgraph"
	"webdis/internal/wire"
)

// watchWeb is the continuous-query workload: a 13-site, 39-page tree
// with half the pages carrying the marker, so content edits genuinely
// flip answers in and out of the standing result set.
func watchWeb() *webgraph.Web {
	return webgraph.Tree(webgraph.TreeOpts{
		Fanout: 3, Depth: 2, PagesPerSite: 3,
		MarkerFrac: 0.5, FillerWords: 40, Seed: 7,
	})
}

const watchRoot = "http://t0.example/p0.html"

// watchSrcs are the standing queries under test: a one-stage content
// query (edits flip rows) and a two-stage uncorrelated traversal (both
// stages observable, so flip-promotion stays exact).
func watchSrcs() []string {
	return []string{
		`select d.url from document d such that "` + watchRoot + `" N|(G*2) d
		 where d.text contains "` + webgraph.Marker + `"`,
		`select d0.url, d1.url
		 from document d0 such that "` + watchRoot + `" G d0,
		      document d1 such that d0 L d1
		 where d1.text contains "` + webgraph.Marker + `"`,
	}
}

func renderTables(tables []client.ResultTable) string {
	var b strings.Builder
	for _, t := range tables {
		fmt.Fprintf(&b, "stage %d [%s]\n", t.Stage, strings.Join(t.Cols, ","))
		for _, r := range t.Rows {
			fmt.Fprintf(&b, "  %q\n", r)
		}
	}
	return b.String()
}

// deltaKey identifies a standing row for replaying a delta stream.
func deltaKey(stage int, row []string) string {
	return fmt.Sprintf("%d\x01%s", stage, strings.Join(row, "\x00"))
}

// replayState converts a result snapshot into the keyed form deltas
// apply to.
func replayState(tables []client.ResultTable) map[string][]string {
	out := make(map[string][]string)
	for _, t := range tables {
		for _, r := range t.Rows {
			out[deltaKey(t.Stage, r)] = r
		}
	}
	return out
}

// testWatchOracle is the subsystem's central acceptance property: at
// every step of a seeded mutation schedule, each watch's delta-maintained
// result set must equal a from-scratch re-run of the same query against
// the mutated web, and the emitted delta stream must replay the baseline
// snapshot into the final one.
func testWatchOracle(t *testing.T, tr netsim.Transport, srv server.Options, steps int) {
	t.Helper()
	if testing.Short() {
		steps = min(steps, 10)
	}
	d, err := NewDeployment(Config{
		Web:       watchWeb(),
		Transport: tr,
		Server:    srv,
		Watch:     WatchConfig{Mutations: webgraph.MutationPlan{Seed: 42}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	type armWatch struct {
		src      string
		w        *client.Watch
		baseline map[string][]string
		deltas   []client.Delta
		done     chan struct{}
	}
	var watches []*armWatch
	for _, src := range watchSrcs() {
		w, err := d.Watch(ctx, src, WatchOptions{})
		if err != nil {
			t.Fatalf("watch %q: %v", src, err)
		}
		t.Cleanup(func() { w.Close() })
		aw := &armWatch{src: src, w: w, baseline: replayState(w.Results()), done: make(chan struct{})}
		// Baseline must equal a one-shot run before any mutation.
		q := run(t, d, src)
		if got, want := renderTables(w.Results()), renderResults(q); got != want {
			t.Fatalf("baseline mismatch\nwatch:\n%s\noneshot:\n%s", got, want)
		}
		go func() {
			defer close(aw.done)
			for delta, err := range aw.w.Deltas() {
				if err != nil {
					if !errors.Is(err, client.ErrWatchClosed) {
						t.Errorf("delta stream: %v", err)
					}
					return
				}
				aw.deltas = append(aw.deltas, delta)
			}
		}()
		watches = append(watches, aw)
	}

	want := 0
	applied := 0
	for step := 0; step < steps; step++ {
		muts, notified := d.Mutate(1)
		if len(muts) == 0 {
			t.Fatalf("step %d: mutation schedule dried up", step)
		}
		applied += len(muts)
		want += notified
		for _, aw := range watches {
			if err := aw.w.WaitEpoch(ctx, want); err != nil {
				t.Fatalf("step %d (%v): WaitEpoch(%d): %v", step, muts[0], want, err)
			}
			oracle := run(t, d, aw.src)
			if got, wantR := renderTables(aw.w.Results()), renderResults(oracle); got != wantR {
				t.Fatalf("step %d (%v): watch diverged from re-run oracle\nwatch:\n%s\noracle:\n%s",
					step, muts[0], got, wantR)
			}
		}
	}
	if applied < steps {
		t.Fatalf("applied %d mutations, want %d", applied, steps)
	}
	if want == 0 {
		t.Fatal("no change notifications were delivered (vacuous run)")
	}

	// The delta stream replays the baseline into the final snapshot,
	// with nondecreasing epochs.
	totalDeltas := 0
	for _, aw := range watches {
		final := replayState(aw.w.Results())
		aw.w.Close()
		select {
		case <-aw.done:
		case <-ctx.Done():
			t.Fatal("delta collector did not finish")
		}
		state := aw.baseline
		epoch := 0
		totalDeltas += len(aw.deltas)
		for _, delta := range aw.deltas {
			if delta.Epoch < epoch {
				t.Fatalf("delta epochs went backwards: %d after %d", delta.Epoch, epoch)
			}
			epoch = delta.Epoch
			switch delta.Op {
			case client.DeltaAdd:
				state[deltaKey(delta.Stage, delta.Row)] = delta.Row
			case client.DeltaRemove:
				delete(state, deltaKey(delta.Stage, delta.Row))
			default:
				t.Fatalf("unknown delta op %v", delta.Op)
			}
		}
		if len(state) != len(final) {
			t.Fatalf("delta replay has %d rows, final snapshot %d", len(state), len(final))
		}
		for k := range final {
			if _, ok := state[k]; !ok {
				t.Fatalf("delta replay missing row %q", k)
			}
		}
	}
	if steps >= 20 && totalDeltas == 0 {
		t.Fatal("mutation schedule produced zero deltas (vacuous run)")
	}
}

func TestWatchOraclePipe(t *testing.T)    { testWatchOracle(t, nil, server.Options{}, 100) }
func TestWatchOraclePlanner(t *testing.T) { testWatchOracle(t, nil, plannerOn(), 40) }
func TestWatchOracleTCP(t *testing.T)     { testWatchOracle(t, netsim.NewTCP(), server.Options{}, 40) }
func TestWatchOracleTCPPlanner(t *testing.T) {
	testWatchOracle(t, netsim.NewTCP(), plannerOn(), 25)
}

// TestWatchRejects pins the API contract: grouped/ordered and correlated
// queries cannot be watched.
func TestWatchRejects(t *testing.T) {
	d := deploy(t, watchWeb(), server.Options{})
	ctx := context.Background()
	_, err := d.Watch(ctx, `select d.url from document d such that "`+watchRoot+`" N|(G*1) d
		order by d.url`, WatchOptions{})
	if !errors.Is(err, client.ErrWatchOutput) {
		t.Errorf("ordered watch: err = %v, want ErrWatchOutput", err)
	}
	_, err = d.Watch(ctx, `select d0.url, d1.url
		from document d0 such that "`+watchRoot+`" G d0,
		     document d1 such that d0 L d1
		where d1.title contains d0.title`, WatchOptions{})
	if !errors.Is(err, client.ErrWatchCorrelated) {
		t.Errorf("correlated watch: err = %v, want ErrWatchCorrelated", err)
	}
}

// TestMutateStoreInvalidation checks site-local change detection against
// the persistent store: after a burst of mutations, queries over the
// invalidated store must be byte-identical to a cold store rebuilt from
// the mutated web — over pipe and over TCP.
func TestMutateStoreInvalidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   func() netsim.Transport
	}{
		{"pipe", func() netsim.Transport { return nil }},
		{"tcp", func() netsim.Transport { return netsim.NewTCP() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			web := watchWeb()
			warm, err := NewDeployment(Config{
				Web:       web,
				Transport: tc.tr(),
				Storage:   server.StoreOptions{Dir: t.TempDir(), PoolPages: 64},
				Watch:     WatchConfig{Mutations: webgraph.MutationPlan{Seed: 99}},
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(warm.Close)
			src := watchSrcs()[0]
			run(t, warm, src) // populate store pages and caches pre-mutation
			if muts, _ := warm.Mutate(30); len(muts) != 30 {
				t.Fatalf("applied %d mutations, want 30", len(muts))
			}
			qWarm := run(t, warm, src)

			// Cold arm: a fresh store built from the already-mutated web.
			cold, err := NewDeployment(Config{
				Web:       web,
				Transport: tc.tr(),
				Storage:   server.StoreOptions{Dir: t.TempDir(), PoolPages: 64},
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(cold.Close)
			qCold := run(t, cold, src)
			if got, want := renderResults(qWarm), renderResults(qCold); got != want {
				t.Errorf("invalidated store diverged from cold rebuild\nwarm:\n%s\ncold:\n%s", got, want)
			}
		})
	}
}

// countGoroutines samples the goroutine count after a settling period,
// retrying until it stops above the floor or the deadline passes.
func settledGoroutines(floor int) int {
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > floor && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
		runtime.Gosched()
		n = runtime.NumGoroutine()
	}
	return n
}

// TestStreamAbandonNoLeak pins the Query.Stream lifecycle fix: a consumer
// that abandons the stream channel without cancelling must not leak the
// pump goroutine once the owning deployment closes.
func TestStreamAbandonNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		d := deploy(t, watchWeb(), server.Options{})
		for i := 0; i < 4; i++ {
			q := run(t, d, watchSrcs()[0])
			// Abandon immediately: never read, never cancel. The pump
			// must be bounded by the deployment's done channel alone.
			_ = q.Stream(context.Background())
		}
		d.Close()
	}()
	after := settledGoroutines(before)
	if after > before+2 {
		t.Errorf("goroutines: %d before, %d after abandoning streams (leak)", before, after)
	}
}

// TestWatchAbandonedStreamNoLeak is the same property for Watch.Stream.
func TestWatchAbandonedStreamNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		d := deploy(t, watchWeb(), server.Options{})
		w, err := d.Watch(context.Background(), watchSrcs()[0], WatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		_ = w.Stream(context.Background())
		d.Close()
	}()
	after := settledGoroutines(before)
	if after > before+2 {
		t.Errorf("goroutines: %d before, %d after abandoning watch stream (leak)", before, after)
	}
}

// TestWatchBudgetOption checks the per-watch budget override plumbs
// through: an already-expired deadline must fail the baseline run.
func TestWatchBudgetOption(t *testing.T) {
	d := deploy(t, watchWeb(), server.Options{})
	ctx, cancel := context.WithTimeout(context.Background(), waitFor)
	defer cancel()
	_, err := d.Watch(ctx, watchSrcs()[0], WatchOptions{Budget: wire.Budget{Deadline: 1}})
	if !errors.Is(err, client.ErrExpired) {
		t.Errorf("expired baseline: err = %v, want ErrExpired", err)
	}
}
