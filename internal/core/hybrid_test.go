package core

import (
	"strings"
	"testing"
	"time"

	"webdis/internal/client"
	"webdis/internal/webgraph"
)

// participants builds a Participate function admitting only the listed
// sites.
func participants(sites ...string) func(string) bool {
	set := make(map[string]bool, len(sites))
	for _, s := range sites {
		set[s] = true
	}
	return func(site string) bool { return set[site] }
}

func runHybrid(t *testing.T, participate func(string) bool) (*Deployment, *queryResult) {
	t.Helper()
	d, err := NewDeployment(Config{Web: webgraph.Campus(), Participate: participate})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	q, err := d.Run(webgraph.CampusDISQL, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return d, &queryResult{q.Results(), q.FallbackStats()}
}

type queryResult struct {
	results []client.ResultTable
	fstats  client.FallbackStats
}

func checkCampusAnswers(t *testing.T, res []client.ResultTable) {
	t.Helper()
	if len(res) != 2 {
		t.Fatalf("results = %+v", res)
	}
	if len(res[0].Rows) != 1 || res[0].Rows[0][0] != webgraph.CampusLabs {
		t.Errorf("q1 = %+v", res[0])
	}
	if len(res[1].Rows) != len(webgraph.CampusConveners) {
		t.Fatalf("q2 rows = %+v", res[1].Rows)
	}
	for _, row := range res[1].Rows {
		want := webgraph.CampusConveners[row[0]]
		if want == "" || !strings.Contains(row[1], want) {
			t.Errorf("row = %v", row)
		}
	}
}

func TestHybridAllSitesParticipate(t *testing.T) {
	d, r := runHybrid(t, func(string) bool { return true })
	checkCampusAnswers(t, r.results)
	if r.fstats.Bounces != 0 || r.fstats.Fetches != 0 {
		t.Errorf("no fallback expected: %+v", r.fstats)
	}
	if d.Metrics().Bounced.Load() != 0 {
		t.Error("no bounces expected")
	}
}

func TestHybridNoSiteParticipates(t *testing.T) {
	// Fully centralized: every clone is processed at the user-site.
	d, r := runHybrid(t, func(string) bool { return false })
	checkCampusAnswers(t, r.results)
	if r.fstats.Fetches == 0 || r.fstats.Evaluations == 0 {
		t.Errorf("fallback did no work: %+v", r.fstats)
	}
	if d.Metrics().Evaluations.Load() != 0 {
		t.Error("no server should have evaluated anything")
	}
	// All fetch traffic flowed to the user-site.
	tot := d.Network().Stats().Snapshot().Total()
	if tot.ByKind["fetch-resp"] == 0 {
		t.Errorf("kinds = %+v", tot.ByKind)
	}
}

func TestHybridPartialParticipation(t *testing.T) {
	// The CSA department and the DSL participate; the other labs do not.
	d, r := runHybrid(t, participants("csa.iisc.ernet.in", "dsl.serc.iisc.ernet.in"))
	checkCampusAnswers(t, r.results)
	m := d.Metrics().Snapshot()
	if m.Bounced == 0 {
		t.Error("servers should have bounced clones for non-participants")
	}
	if m.Evaluations == 0 {
		t.Error("participating servers should have evaluated locally")
	}
	if r.fstats.Fetches == 0 || r.fstats.Evaluations == 0 {
		t.Errorf("fallback stats = %+v", r.fstats)
	}
}

func TestHybridRejoinsDistributedMode(t *testing.T) {
	// A chain of sites where a non-participating site sits in the middle:
	// the clone must pass through the fallback and rejoin the servers.
	web := webgraph.Chain(6, 1, 4)
	d, err := NewDeployment(Config{
		Web:         web,
		Participate: func(site string) bool { return site != "c2.example" && site != "c3.example" },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	q, err := d.Run(`select d.url from document d such that "http://c0.example/p0.html" N|G* d`, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rows := q.Results()[0].Rows
	if len(rows) != 6 {
		t.Fatalf("rows = %v", rows)
	}
	fs := q.FallbackStats()
	if fs.Fetches != 2 {
		t.Errorf("fallback fetched %d documents, want 2 (the gap)", fs.Fetches)
	}
	if fs.Rejoined == 0 {
		t.Error("the clone never rejoined distributed mode")
	}
	if got := d.Metrics().Evaluations.Load(); got != 4 {
		t.Errorf("server evaluations = %d, want 4", got)
	}
}

func TestHybridStartSiteNotParticipating(t *testing.T) {
	d, r := runHybrid(t, participants(
		"dsl.serc.iisc.ernet.in", "www-compiler.csa.iisc.ernet.in",
		"www2.csa.iisc.ernet.in", "archit.csa.iisc.ernet.in", "www.iisc.ernet.in"))
	// The CSA department itself (the StartNode's site) does not
	// participate: both stage-1 hops happen at the user-site.
	checkCampusAnswers(t, r.results)
	if r.fstats.Bounces == 0 && r.fstats.LocalClones == 0 {
		t.Errorf("fallback stats = %+v", r.fstats)
	}
	if d.Metrics().Evaluations.Load() == 0 {
		t.Error("lab servers should still evaluate q2")
	}
}

func TestHybridMatchesDistributedTraffic(t *testing.T) {
	// Monotonic migration path: more participation, fewer bytes.
	bytesAt := func(frac int) int64 {
		web := webgraph.Tree(webgraph.TreeOpts{Fanout: 3, Depth: 3, PagesPerSite: 2, MarkerFrac: 0.2, Seed: 12})
		hosts := web.Hosts()
		cut := len(hosts) * frac / 100
		set := make(map[string]bool)
		for _, h := range hosts[:cut] {
			set[h] = true
		}
		d, err := NewDeployment(Config{Web: web, Participate: func(s string) bool { return set[s] }})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		src := `select d.url from document d such that "` + web.First() + `" N|(L|G)* d where d.text contains "` + webgraph.Marker + `"`
		if _, err := d.Run(src, 15*time.Second); err != nil {
			t.Fatal(err)
		}
		return d.Network().Stats().Snapshot().Total().Bytes
	}
	b0, b100 := bytesAt(0), bytesAt(100)
	if b0 <= b100 {
		t.Errorf("full participation should cost less: 0%%=%d bytes, 100%%=%d bytes", b0, b100)
	}
}

func TestParticipateRequiresDocService(t *testing.T) {
	_, err := NewDeployment(Config{
		Web:          webgraph.Campus(),
		NoDocService: true,
		Participate:  func(string) bool { return true },
	})
	if err == nil {
		t.Fatal("Participate without doc service should be rejected")
	}
}
