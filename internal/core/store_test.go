package core

import (
	"testing"
	"time"

	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/webgraph"
)

// storeWeb is a marker-dense tree whose answers are exact; the text
// markers make every query exercise the persisted inverted index.
func storeWeb() *webgraph.Web {
	return webgraph.Tree(webgraph.TreeOpts{
		Fanout: 2, Depth: 3, PagesPerSite: 2,
		MarkerFrac: 0.5, FillerWords: 60, Seed: 11,
	})
}

const storeRoot = "http://t0.example/p0.html"

func storeQueries() []string {
	return []string{
		// Indexed contains over the whole reachable set.
		`select d.url from document d such that "` + storeRoot + `" N|(G*3) d
		 where d.text contains "` + webgraph.Marker + `"`,
		// Negated contains plus a residual (unfoldable) predicate.
		`select d.url, d.length from document d such that "` + storeRoot + `" N|(G*2) d
		 where d.text not contains "nosuchtokenever" and d.length > "1"`,
		// Anchor/relinfon relations come off the same slotted pages.
		`select a.href, a.label from document d such that "` + storeRoot + `" N|(G*1) d, anchor a
		 where a.ltype = "global"`,
	}
}

// storeArm deploys web with every server reading its site from a
// persistent store rooted at dir (replica 0 builds it on first start).
func storeArm(t *testing.T, web *webgraph.Web, dir string, tr netsim.Transport, base server.Options) *Deployment {
	t.Helper()
	base.Store = server.StoreOptions{Dir: dir, PoolPages: 64}
	d, err := NewDeployment(Config{Web: web, Server: base, Transport: tr})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// TestStoreDifferential is the subsystem's central acceptance property:
// store-backed execution must be invisible in the answers — byte-for-byte
// identical result tables against the in-RAM Database Constructor, over
// the in-process pipe transport and over real TCP sockets.
func TestStoreDifferential(t *testing.T) {
	for i, src := range storeQueries() {
		ram := deploy(t, storeWeb(), server.Options{})
		qr := run(t, ram, src)

		pipe := storeArm(t, storeWeb(), t.TempDir(), nil, server.Options{})
		qp := run(t, pipe, src)
		if got, want := renderResults(qp), renderResults(qr); got != want {
			t.Errorf("query %d over pipe: store changed the answer\nstore:\n%s\nram:\n%s", i, got, want)
		}

		tcp := storeArm(t, storeWeb(), t.TempDir(), netsim.NewTCP(), server.Options{})
		qt, err := tcp.Run(src, waitFor)
		if err != nil {
			t.Fatalf("query %d over TCP: %v", i, err)
		}
		if got, want := renderResults(qt), renderResults(qr); got != want {
			t.Errorf("query %d over TCP: store changed the answer\nstore:\n%s\nram:\n%s", i, got, want)
		}
		if m := pipe.Metrics(); m.PagesRead.Load() == 0 {
			t.Errorf("query %d: store arm read no pages", i)
		}
	}

	// Campus, the paper's own workload, end to end.
	ram := deploy(t, webgraph.Campus(), server.Options{})
	qr := run(t, ram, webgraph.CampusDISQL)
	st := storeArm(t, webgraph.Campus(), t.TempDir(), nil, server.Options{})
	qs := run(t, st, webgraph.CampusDISQL)
	if got, want := renderResults(qs), renderResults(qr); got != want {
		t.Errorf("campus: store changed the answer\nstore:\n%s\nram:\n%s", got, want)
	}
	if m := st.Metrics(); m.IndexHits.Load() == 0 {
		t.Error("campus contains-predicates never consulted the text index")
	}
}

// TestStoreDifferentialUnderFaults reruns the differential under the T11
// fault schedule: 20% message drops with bounded retries. Fault handling
// must not interact with where databases come from.
func TestStoreDifferentialUnderFaults(t *testing.T) {
	src := storeQueries()[0]
	want := rowSet(run(t, deploy(t, storeWeb(), server.Options{}), src).Results())

	faulty := netsim.Options{Faults: netsim.FaultPlan{Seed: 7, Drop: 0.20}}
	dir := t.TempDir()
	base := server.Options{Retry: chaosRetry, Store: server.StoreOptions{Dir: dir, PoolPages: 64}}
	d, err := NewDeployment(Config{Web: storeWeb(), Server: base, Net: faulty, ReapGrace: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	q, err := d.Run(src, 30*time.Second)
	if err != nil {
		t.Fatalf("store arm under faults: %v", err)
	}
	got := rowSet(q.Results())
	if missing, ok := subset(want, got); !ok {
		t.Errorf("store arm under faults lost row %s", missing)
	}
	if extra, ok := subset(got, want); !ok {
		t.Errorf("store arm under faults invented row %s", extra)
	}
}

// TestStoreReopen: a second deployment over the same store directory must
// serve identical answers from a cold open — ColdOpens counts every site,
// and not one document is fetched or parsed.
func TestStoreReopen(t *testing.T) {
	web := storeWeb()
	dir := t.TempDir()
	src := storeQueries()[0]

	first := storeArm(t, web, dir, nil, server.Options{})
	qf := run(t, first, src)
	want := renderResults(qf)
	if b := first.Metrics().StoreBuilds.Load(); b != int64(web.NumSites()) {
		t.Fatalf("first deployment built %d stores, want %d", b, web.NumSites())
	}
	first.Close()

	// The second deployment serves documents too (webgen-style restart),
	// but must never ask for one: cold start is open, not rebuild.
	second := storeArm(t, web, dir, nil, server.Options{})
	qs := run(t, second, src)
	if got := renderResults(qs); got != want {
		t.Errorf("reopened store changed the answer\ngot:\n%s\nwant:\n%s", got, want)
	}
	m := second.Metrics()
	if m.ColdOpens.Load() != int64(web.NumSites()) {
		t.Errorf("ColdOpens = %d, want %d", m.ColdOpens.Load(), web.NumSites())
	}
	if m.StoreBuilds.Load() != 0 {
		t.Errorf("reopen rebuilt %d stores", m.StoreBuilds.Load())
	}
	if m.DocsParsed.Load() != 0 {
		t.Errorf("reopen parsed %d documents, want 0", m.DocsParsed.Load())
	}
}
