package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"webdis/internal/centralized"
	"webdis/internal/client"
	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/nodeproc"
	"webdis/internal/server"
	"webdis/internal/webgraph"
	"webdis/internal/webserver"
)

const waitFor = 10 * time.Second

// collector gathers server trace events for assertions.
type collector struct {
	mu     sync.Mutex
	events []server.Event
}

func (c *collector) trace(e server.Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// count tallies events for node with the given action, skipping "virtual"
// records (stage advances at the same node, which are not clone arrivals).
func (c *collector) count(node, action string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if (node == "" || e.Node == node) && e.Action == action && !strings.Contains(e.Detail, "virtual") {
			n++
		}
	}
	return n
}

func deploy(t *testing.T, web *webgraph.Web, opts server.Options) *Deployment {
	t.Helper()
	d, err := NewDeployment(Config{Web: web, Server: opts})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func run(t *testing.T, d *Deployment, src string) *client.Query {
	t.Helper()
	q, err := d.Run(src, waitFor)
	if err != nil {
		t.Fatalf("query failed: %v", err)
	}
	return q
}

func TestCampusQueryReproducesFigure8(t *testing.T) {
	d := deploy(t, webgraph.Campus(), server.Options{})
	q := run(t, d, webgraph.CampusDISQL)

	results := q.Results()
	if len(results) != 2 {
		t.Fatalf("result tables = %+v", results)
	}
	// Stage 1 (q1): exactly the laboratories page.
	q1 := results[0]
	if q1.Stage != 0 || len(q1.Rows) != 1 || q1.Rows[0][0] != webgraph.CampusLabs {
		t.Errorf("q1 = %+v", q1)
	}
	// Stage 2 (q2): the three convener rows of Figure 8.
	q2 := results[1]
	if len(q2.Cols) != 2 || q2.Cols[0] != "d1.url" || q2.Cols[1] != "r.text" {
		t.Errorf("q2 cols = %v", q2.Cols)
	}
	got := make(map[string]string)
	for _, row := range q2.Rows {
		got[row[0]] = row[1]
	}
	if len(got) != len(webgraph.CampusConveners) {
		t.Errorf("q2 rows = %+v, want %d labs", q2.Rows, len(webgraph.CampusConveners))
	}
	for url, line := range webgraph.CampusConveners {
		if !strings.Contains(got[url], line) {
			t.Errorf("%s: text %q missing %q", url, got[url], line)
		}
	}
	// The CHT protocol balanced: everything added was retired.
	st := q.Stats()
	if st.EntriesAdded != st.EntriesRetired {
		t.Errorf("CHT imbalance: added %d retired %d", st.EntriesAdded, st.EntriesRetired)
	}
	if q.LiveEntries() != 0 {
		t.Errorf("live entries = %d", q.LiveEntries())
	}
}

func TestFigure1Roles(t *testing.T) {
	var tr collector
	d := deploy(t, webgraph.Figure1(), server.Options{Trace: tr.trace})
	q := run(t, d, webgraph.Figure1DISQL)

	n := webgraph.Figure1Nodes
	// Nodes 1, 2, 3 are PureRouters.
	for _, i := range []int{1, 2, 3} {
		if tr.count(n[i], "route") != 1 || tr.count(n[i], "eval") != 0 {
			t.Errorf("node %d: routes=%d evals=%d", i, tr.count(n[i], "route"), tr.count(n[i], "eval"))
		}
	}
	// Node 4 acts twice as a ServerRouter (q1 and q2).
	if got := tr.count(n[4], "eval"); got != 2 {
		t.Errorf("node 4 evals = %d, want 2", got)
	}
	// Nodes 5 and 6 answer q1; node 8 answers q2.
	for _, i := range []int{5, 6, 8} {
		if got := tr.count(n[i], "eval"); got != 1 {
			t.Errorf("node %d evals = %d, want 1", i, got)
		}
	}
	// Node 7 is a dead end.
	if tr.count(n[7], "dead-end") != 1 {
		t.Errorf("node 7 dead-ends = %d", tr.count(n[7], "dead-end"))
	}
	// Node 8 receives a duplicate arrival (from nodes 4 and 6) and drops
	// one.
	if got := tr.count(n[8], "drop"); got != 1 {
		t.Errorf("node 8 drops = %d, want 1", got)
	}

	// Result rows: q1 answered by nodes 4, 5, 6; q2 by nodes 4 and 8.
	results := q.Results()
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	wantQ1 := map[string]bool{n[4]: true, n[5]: true, n[6]: true}
	if len(results[0].Rows) != 3 {
		t.Errorf("q1 rows = %+v", results[0].Rows)
	}
	for _, row := range results[0].Rows {
		if !wantQ1[row[0]] {
			t.Errorf("unexpected q1 row %v", row)
		}
	}
	wantQ2 := map[string]bool{n[4]: true, n[8]: true}
	if len(results[1].Rows) != 2 {
		t.Errorf("q2 rows = %+v", results[1].Rows)
	}
	for _, row := range results[1].Rows {
		if !wantQ2[row[0]] {
			t.Errorf("unexpected q2 row %v", row)
		}
	}

	m := d.Metrics().Snapshot()
	if m.DupDropped != 1 || m.DeadEnds != 1 {
		t.Errorf("metrics = %+v", m)
	}
}

func TestFigure5DuplicateSuppression(t *testing.T) {
	var tr collector
	d := deploy(t, webgraph.Figure5(), server.Options{Trace: tr.trace})
	run(t, d, webgraph.Figure5DISQL)

	x := webgraph.Figure5X
	visits := tr.count(x, "route") + tr.count(x, "eval") + tr.count(x, "drop") + tr.count(x, "dead-end")
	if visits != 5 {
		t.Errorf("arrivals at X = %d, want 5 (a..e)", visits)
	}
	// a is a PureRouter pass, b evaluates q1, c evaluates q2; d, e dropped.
	if got := tr.count(x, "route"); got != 1 {
		t.Errorf("X routes = %d, want 1 (arrival a)", got)
	}
	if got := tr.count(x, "eval"); got != 2 {
		t.Errorf("X evals = %d, want 2 (arrivals b, c)", got)
	}
	if got := tr.count(x, "drop"); got != 2 {
		t.Errorf("X drops = %d, want 2 (arrivals d, e)", got)
	}
}

func TestFigure5WithoutLogTableRecomputes(t *testing.T) {
	var tr collector
	d := deploy(t, webgraph.Figure5(), server.Options{
		Dedup: nodeproc.DedupOff, DedupSet: true, MaxHops: 16, Trace: tr.trace,
	})
	run(t, d, webgraph.Figure5DISQL)

	// Without the log table, arrivals d and e are recomputed.
	if got := tr.count(webgraph.Figure5X, "eval"); got != 4 {
		t.Errorf("X evals without dedup = %d, want 4 (b, c, d, e)", got)
	}
	if got := tr.count(webgraph.Figure5X, "drop"); got != 0 {
		t.Errorf("X drops without dedup = %d", got)
	}
}

func TestGlobalLinkExtraction(t *testing.T) {
	// The paper's Example Query 1 shape on the campus web: walk all local
	// links of the CSA site and return every global link.
	d := deploy(t, webgraph.Campus(), server.Options{})
	q := run(t, d, `
select a.base, a.href
from document d such that "http://csa.iisc.ernet.in/index.html" N|L* d,
     anchor a
where a.ltype = "G"`)
	results := q.Results()
	if len(results) != 1 {
		t.Fatalf("results = %+v", results)
	}
	// The CSA site's global links: homepage -> IISc, labs -> 5 lab/institute links.
	bases := map[string]int{}
	for _, row := range results[0].Rows {
		bases[row[0]]++
	}
	if bases[webgraph.CampusStart] != 1 {
		t.Errorf("homepage global links = %d, want 1", bases[webgraph.CampusStart])
	}
	if bases[webgraph.CampusLabs] != 5 {
		t.Errorf("labs global links = %d, want 5", bases[webgraph.CampusLabs])
	}
}

func TestDistributedMatchesCentralized(t *testing.T) {
	webs := map[string]*webgraph.Web{
		"campus":  webgraph.Campus(),
		"figure1": webgraph.Figure1(),
		"random":  webgraph.Random(webgraph.RandomOpts{Sites: 5, PagesPerSite: 4, LocalOut: 2, GlobalOut: 2, MarkerFrac: 0.4, Seed: 11}),
	}
	queries := map[string]string{
		"campus":  webgraph.CampusDISQL,
		"figure1": webgraph.Figure1DISQL,
		"random": `
select d.url
from document d such that "http://r0.example/p0.html" N|(L|G)*3 d
where d.text contains "` + webgraph.Marker + `"`,
	}
	for name, web := range webs {
		d := deploy(t, web, server.Options{})
		q := run(t, d, queries[name])
		distRes := q.Results()

		w := disql.MustParse(queries[name])
		centRes, err := centralized.Run(d.Network(), "central/results", w, centralized.Options{})
		if err != nil {
			t.Fatalf("%s: centralized: %v", name, err)
		}
		if len(distRes) != len(centRes.Tables) {
			t.Fatalf("%s: table count %d vs %d", name, len(distRes), len(centRes.Tables))
		}
		for i := range distRes {
			a, b := distRes[i], centRes.Tables[i]
			if a.Stage != b.Stage || len(a.Rows) != len(b.Rows) {
				t.Fatalf("%s stage %d: %d rows vs %d rows\n%v\n%v", name, a.Stage, len(a.Rows), len(b.Rows), a.Rows, b.Rows)
			}
			for j := range a.Rows {
				if strings.Join(a.Rows[j], "|") != strings.Join(b.Rows[j], "|") {
					t.Errorf("%s stage %d row %d: %v vs %v", name, a.Stage, j, a.Rows[j], b.Rows[j])
				}
			}
		}
	}
}

func TestQueryShippingMovesNoDocuments(t *testing.T) {
	web := webgraph.Campus()
	d := deploy(t, web, server.Options{})
	run(t, d, webgraph.CampusDISQL)

	// No fetch traffic at all in a distributed run.
	dist := d.Network().Stats().Snapshot().Total()
	if dist.ByKind["fetch-req"] != 0 || dist.ByKind["fetch-resp"] != 0 {
		t.Errorf("document fetches in distributed run: %+v", dist.ByKind)
	}

	// The same query by data shipping moves the visited documents across
	// the network; query shipping must transfer substantially less.
	d.Network().Stats().Reset()
	w := disql.MustParse(webgraph.CampusDISQL)
	res, err := centralized.Run(d.Network(), "central/results", w, centralized.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cent := d.Network().Stats().Snapshot().Total()
	if res.Stats.BytesDownloaded == 0 {
		t.Fatal("centralized run downloaded nothing")
	}
	if dist.Bytes*2 >= cent.Bytes {
		t.Errorf("query shipping %d B vs data shipping %d B: want at least 2x less", dist.Bytes, cent.Bytes)
	}
}

func TestCancelPassiveTermination(t *testing.T) {
	// A long chain with per-message latency: cancel mid-flight and verify
	// the clone dies at the next site without any termination messages.
	web := webgraph.Chain(40, 1, 3)
	d, err := NewDeployment(Config{
		Web: web,
		Net: netsim.Options{Latency: 3 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	q, err := d.SubmitDISQL(`
select d.url
from document d such that "http://c0.example/p0.html" N|G* d`)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let it get a few hops in
	q.Cancel()
	if err := q.Wait(time.Second); err != client.ErrCancelled {
		t.Fatalf("Wait = %v", err)
	}

	// Within a bounded time every clone is purged: some server observed a
	// failed result dispatch.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if d.Metrics().Terminated.Load() > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	m := d.Metrics().Snapshot()
	if m.Terminated == 0 {
		t.Error("no server observed the passive termination signal")
	}
	// The query never reached the end of the chain.
	if m.Evaluations >= 40 {
		t.Errorf("evaluations = %d; cancellation had no effect", m.Evaluations)
	}
}

func TestMultipleStartNodes(t *testing.T) {
	d := deploy(t, webgraph.Figure1(), server.Options{})
	q := run(t, d, `
select d.url
from document d such that ("http://s2.example/n2.html", "http://s3.example/n3.html") G|L d
where d.url contains "example"`)
	rows := q.Results()[0].Rows
	if len(rows) != 4 {
		t.Errorf("rows = %+v, want nodes 4,5,6,7", rows)
	}
}

func TestStrictDeadEndsSuppressContinuation(t *testing.T) {
	// Under the literal Figure-4 pseudocode the campus query loses the
	// conveners that sit one local link behind a lab homepage without its
	// own convener.
	d := deploy(t, webgraph.Campus(), server.Options{StrictDeadEnds: true})
	q := run(t, d, webgraph.CampusDISQL)
	results := q.Results()
	var q2rows int
	for _, rt := range results {
		if rt.Stage == 1 {
			q2rows = len(rt.Rows)
		}
	}
	if q2rows != 1 {
		t.Errorf("strict mode q2 rows = %d, want only the on-homepage convener", q2rows)
	}
}

func TestSequentialQueriesOnOneDeployment(t *testing.T) {
	d := deploy(t, webgraph.Campus(), server.Options{})
	for i := 0; i < 3; i++ {
		q := run(t, d, webgraph.CampusDISQL)
		if len(q.Results()) != 2 {
			t.Fatalf("iteration %d: results = %+v", i, q.Results())
		}
	}
	// Each query has a distinct ID, so the log table kept them apart.
	m := d.Metrics().Snapshot()
	if m.DupDropped != 0 {
		t.Errorf("cross-query false duplicates: %d", m.DupDropped)
	}
}

func TestConcurrentQueries(t *testing.T) {
	d := deploy(t, webgraph.Campus(), server.Options{})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q, err := d.SubmitDISQL(webgraph.CampusDISQL)
			if err != nil {
				errs <- err
				return
			}
			if err := q.Wait(waitFor); err != nil {
				errs <- err
				return
			}
			if len(q.Results()) != 2 {
				errs <- fmt.Errorf("got %d result tables", len(q.Results()))
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestUnknownStartSiteFails(t *testing.T) {
	d := deploy(t, webgraph.Campus(), server.Options{})
	_, err := d.Run(`select d.url from document d such that "http://nowhere.example/x.html" L d`, waitFor)
	if err == nil {
		t.Fatal("dispatch to unknown site should fail")
	}
}

func TestFloatingLinkDetection(t *testing.T) {
	// The paper's maintenance application: a site with a link to a
	// non-existent document. The engine records a DocError and the query
	// still completes.
	web := webgraph.NewWeb()
	p := web.NewPage("http://a.example/index.html", "Home")
	p.AddText("has a floating link")
	p.AddLink("/gone.html", "missing")
	d := deploy(t, web, server.Options{})
	q := run(t, d, `
select d.url
from document d such that "http://a.example/index.html" N|L d`)
	if got := d.Metrics().DocErrors.Load(); got != 1 {
		t.Errorf("DocErrors = %d", got)
	}
	if rows := q.Results()[0].Rows; len(rows) != 1 {
		t.Errorf("rows = %v", rows)
	}
}

func TestDocServiceOptional(t *testing.T) {
	d, err := NewDeployment(Config{Web: webgraph.Campus(), NoDocService: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	q, err := d.Run(webgraph.CampusDISQL, waitFor)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Results()) != 2 {
		t.Error("distributed engine must not depend on the doc service")
	}
	// But the centralized baseline does.
	w := disql.MustParse(webgraph.CampusDISQL)
	res, err := centralized.Run(d.Network(), "central/results", w, centralized.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 0 {
		t.Error("centralized run without doc service should find nothing")
	}
}

func TestCentralizedCacheAblation(t *testing.T) {
	web := webgraph.Figure5()
	w := disql.MustParse(webgraph.Figure5DISQL)
	d := deploy(t, web, server.Options{})

	with, err := centralized.Run(d.Network(), "c1/results", w, centralized.Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := centralized.Run(d.Network(), "c2/results", w, centralized.Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Stats.Fetches >= without.Stats.Fetches {
		t.Errorf("cache should reduce fetches: %d vs %d", with.Stats.Fetches, without.Stats.Fetches)
	}
	if with.Stats.CacheHits == 0 {
		t.Error("expected cache hits on the multiply-visited node")
	}
}

func TestFetcherSeesSameBytes(t *testing.T) {
	web := webgraph.Campus()
	d := deploy(t, web, server.Options{})
	f := webserver.NewFetcher(d.Network(), "probe")
	got, err := f.Get(webgraph.CampusLabs)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := web.HTML(webgraph.CampusLabs)
	if string(got) != string(want) {
		t.Error("fetched bytes differ from corpus")
	}
}

func TestIndexStartNodes(t *testing.T) {
	// The paper's Section 1.1 automated StartNode path: the index resolves
	// "laboratories" to the Labs page, and the convener query runs from
	// there without the user knowing any URL.
	d := deploy(t, webgraph.Campus(), server.Options{})
	q := run(t, d, `
select d0.url, d1.url, r.text
from document d0 such that index("laboratories department") N d0,
where d0.title contains "lab"
     document d1 such that d0 G·(L*1) d1,
     relinfon r such that r.delimiter = "hr",
where (r.text contains "convener")`)
	results := q.Results()
	if len(results) != 2 || len(results[1].Rows) != 3 {
		t.Fatalf("results = %+v", results)
	}
	// A term matching nothing fails at submission.
	if _, err := d.Run(`select d.url from document d such that index("zzzznope") N d`, waitFor); err == nil {
		t.Error("unresolvable index term should fail")
	}
}

// TestCorrelatedStages exercises the footnote-2 extension end to end: the
// second node-query's predicate references the first stage's document.
func TestCorrelatedStages(t *testing.T) {
	web := webgraph.NewWeb()
	hub := web.NewPage("http://hub.example/index.html", "Hub")
	hub.AddLink("http://alpha.example/t.html", "topic alpha")
	hub.AddLink("http://beta.example/t.html", "topic beta")
	a := web.NewPage("http://alpha.example/t.html", "Alpha Topic")
	a.AddText("About alpha things.")
	a.AddLink("/alpha-deep.html", "deep")
	a.AddLink("/other.html", "other")
	web.NewPage("http://alpha.example/alpha-deep.html", "More Alpha Topic detail").AddText("deep alpha")
	web.NewPage("http://alpha.example/other.html", "Unrelated").AddText("nothing")
	b := web.NewPage("http://beta.example/t.html", "Beta Topic")
	b.AddText("About beta things.")
	b.AddLink("/beta-deep.html", "deep")
	web.NewPage("http://beta.example/beta-deep.html", "More Beta Topic detail").AddText("deep beta")

	d := deploy(t, web, server.Options{})
	// Find pages one local link behind each topic page whose title
	// contains the *topic page's own title* — a correlated join across
	// stages: alpha-deep matches only under alpha, beta-deep only under
	// beta, "Unrelated" never.
	q := run(t, d, `
select d0.url, d1.url
from document d0 such that "http://hub.example/index.html" G d0,
where d0.title contains "Topic"
     document d1 such that d0 L d1
where d1.title contains d0.title`)
	results := q.Results()
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	got := map[string]bool{}
	for _, row := range results[1].Rows {
		got[row[0]] = true
	}
	want := []string{"http://alpha.example/alpha-deep.html", "http://beta.example/beta-deep.html"}
	if len(got) != len(want) {
		t.Fatalf("q2 rows = %+v", results[1].Rows)
	}
	for _, u := range want {
		if !got[u] {
			t.Errorf("missing correlated match %s", u)
		}
	}

	// The centralized baseline computes the same correlated join.
	w := disql.MustParse(`
select d0.url, d1.url
from document d0 such that "http://hub.example/index.html" G d0,
where d0.title contains "Topic"
     document d1 such that d0 L d1
where d1.title contains d0.title`)
	if len(w.Stages[1].Query.Outer) != 1 || w.Stages[0].Export[0] != "title" {
		t.Fatalf("outer/export wiring: %+v / %+v", w.Stages[1].Query.Outer, w.Stages[0].Export)
	}
	cent, err := centralized.Run(d.Network(), "central/results", w, centralized.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cent.Tables) != 2 || len(cent.Tables[1].Rows) != 2 {
		t.Fatalf("centralized = %+v", cent.Tables)
	}
}

// TestCorrelatedStagesHybrid runs the correlated join through the hybrid
// fallback: bindings must survive the bounce to the user-site.
func TestCorrelatedStagesHybrid(t *testing.T) {
	web := webgraph.NewWeb()
	hub := web.NewPage("http://hub.example/index.html", "Hub")
	hub.AddLink("http://alpha.example/t.html", "alpha")
	a := web.NewPage("http://alpha.example/t.html", "Alpha Topic")
	a.AddLink("/deep.html", "deep")
	web.NewPage("http://alpha.example/deep.html", "Alpha Topic deep").AddText("x")

	d, err := NewDeployment(Config{
		Web:         web,
		Participate: func(site string) bool { return site == "hub.example" },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	q, err := d.Run(`
select d1.url
from document d0 such that "http://hub.example/index.html" G d0,
where d0.title contains "Topic"
     document d1 such that d0 L d1
where d1.title contains d0.title`, waitFor)
	if err != nil {
		t.Fatal(err)
	}
	rows := q.Results()[0].Rows
	if len(rows) != 1 || rows[0][0] != "http://alpha.example/deep.html" {
		t.Fatalf("rows = %v", rows)
	}
	if q.FallbackStats().Evaluations == 0 {
		t.Error("the fallback should have evaluated the correlated stage")
	}
}

func TestDeploymentAccessors(t *testing.T) {
	web := webgraph.Campus()
	d := deploy(t, web, server.Options{})
	if d.Web() != web {
		t.Error("Web accessor")
	}
	if d.Client() == nil || d.Network() == nil || d.Metrics() == nil {
		t.Error("nil accessor")
	}
	if s := d.Server("csa.iisc.ernet.in"); s == nil || s.Site() != "csa.iisc.ernet.in" {
		t.Error("Server accessor")
	}
	if s := d.Server("nosuch.example"); s != nil {
		t.Error("unknown site should be nil")
	}
	if h := d.Host("csa.iisc.ernet.in"); h == nil || len(h.URLs()) != 5 {
		t.Error("Host accessor")
	}
	if lt := d.Server("csa.iisc.ernet.in").LogTable(); lt == nil || lt.Mode() != nodeproc.DedupSubsume {
		t.Error("LogTable accessor")
	}
	if _, err := NewDeployment(Config{}); err == nil {
		t.Error("nil web should be rejected")
	}
}
