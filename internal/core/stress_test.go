package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"webdis/internal/server"
	"webdis/internal/webgraph"
)

// TestConcurrentQueryStress hammers one deployment with overlapping
// queries from many goroutines while every PR-3 hot-path structure is
// live — the per-site log tables, the singleflight DB cache, the shared
// parse cache and the connection pools. Run under -race (the CI race job
// covers this package) it is the regression net for the check-then-insert
// and map races those structures replaced; functionally each query must
// deliver the same complete answer regardless of interleaving.
func TestConcurrentQueryStress(t *testing.T) {
	web := webgraph.Random(webgraph.RandomOpts{
		Sites: 10, PagesPerSite: 2, LocalOut: 2, GlobalOut: 2,
		MarkerFrac: 0.5, FillerWords: 12, Seed: 11,
	})
	src := fmt.Sprintf(`select d.url from document d such that %q N|(G|L)*2 d where d.text contains %q`,
		web.First(), webgraph.Marker)

	goroutines, perG := 6, 3
	if testing.Short() {
		goroutines, perG = 3, 2
	}
	for _, cacheDBs := range []bool{false, true} {
		t.Run(fmt.Sprintf("CacheDBs=%v", cacheDBs), func(t *testing.T) {
			d, err := NewDeployment(Config{
				Web:          web,
				Server:       server.Options{Workers: 4, CacheDBs: cacheDBs},
				NoDocService: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()

			// One clean run establishes the expected answer.
			q, err := d.Run(src, 30*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			want := 0
			for _, tbl := range q.Results() {
				want += len(tbl.Rows)
			}
			if want == 0 {
				t.Fatal("workload yields no rows; stress is vacuous")
			}

			var wg sync.WaitGroup
			errs := make(chan error, goroutines*perG)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						q, err := d.Run(src, 30*time.Second)
						if err != nil {
							errs <- err
							return
						}
						got := 0
						for _, tbl := range q.Results() {
							got += len(tbl.Rows)
						}
						if got != want {
							errs <- fmt.Errorf("concurrent run delivered %d rows, want %d", got, want)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}
