package core

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/webgraph"
)

// wireProfiles enumerates the deployment wire configurations the
// differential suite sweeps: every site on v2 (the default), every site
// pinned to framed gob, and a mixed estate where roughly half the sites
// are pinned to v1 and the rest negotiate v2 per connection.
func wireProfiles() map[string]func(Config) Config {
	pinned := func(site string) bool {
		h := fnv.New32a()
		h.Write([]byte(site))
		return h.Sum32()%2 == 0
	}
	return map[string]func(Config) Config{
		"all-v2": func(c Config) Config { return c },
		"all-v1": func(c Config) Config {
			c.Server.WireV1 = true
			return c
		},
		"mixed": func(c Config) Config {
			c.SiteServerOptions = func(site string, o server.Options) server.Options {
				o.WireV1 = pinned(site)
				return o
			}
			return c
		},
	}
}

// TestWireVersionDifferential is the codec acceptance property: the wire
// format must be invisible in the answers. Every planner query must
// produce identical output on all-v2, all-v1 and mixed-version
// deployments.
func TestWireVersionDifferential(t *testing.T) {
	for i, src := range plannerQueries() {
		var baseline string
		for _, name := range []string{"all-v2", "all-v1", "mixed"} {
			cfg := wireProfiles()[name](Config{Web: plannerWeb(), Server: plannerOn()})
			d, err := NewDeployment(cfg)
			if err != nil {
				t.Fatal(err)
			}
			q, err := d.Run(src, waitFor)
			if err != nil {
				d.Close()
				t.Fatalf("query %d on %s: %v", i, name, err)
			}
			got := renderResults(q)
			d.Close()
			if name == "all-v2" {
				baseline = got
				continue
			}
			if got != baseline {
				t.Errorf("query %d: %s differs from all-v2\n%s:\n%s\nall-v2:\n%s",
					i, name, name, got, baseline)
			}
		}
	}
}

// TestWireVersionDifferentialTCP repeats the version sweep over real
// sockets: negotiation (the pipelined hello and its lazy ack) must
// survive a transport that fragments and coalesces writes.
func TestWireVersionDifferentialTCP(t *testing.T) {
	src := plannerQueries()[1] // group by: exercises frags, stats and batching
	var baseline string
	for _, name := range []string{"all-v2", "all-v1", "mixed"} {
		cfg := wireProfiles()[name](Config{
			Web:       plannerWeb(),
			Server:    plannerOn(),
			Transport: netsim.NewTCP(),
		})
		d, err := NewDeployment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		q, err := d.Run(src, waitFor)
		if err != nil {
			d.Close()
			t.Fatalf("%s over TCP: %v", name, err)
		}
		got := renderResults(q)
		d.Close()
		if name == "all-v2" {
			baseline = got
			continue
		}
		if got != baseline {
			t.Errorf("%s over TCP differs from all-v2\ngot:\n%s\nwant:\n%s", name, got, baseline)
		}
	}
}

// TestWireVersionDifferentialFaults replays the T11 fault schedule
// against every wire profile: drops and severs hit mid-frame and
// mid-handshake, and the recovery machinery (retries, reaper) must still
// deliver the complete, identical answer on every profile.
func TestWireVersionDifferentialFaults(t *testing.T) {
	retry := server.RetryPolicy{
		Attempts: 5,
		Base:     time.Millisecond,
		Max:      20 * time.Millisecond,
		Timeout:  500 * time.Millisecond,
	}
	for _, seed := range []int64{1, 2} {
		web := func() *webgraph.Web {
			return webgraph.Tree(webgraph.TreeOpts{
				Fanout: 3, Depth: 3, PagesPerSite: 1,
				MarkerFrac: 0.6, FillerWords: 30, Seed: seed,
			})
		}
		src := fmt.Sprintf(
			`select d.url, count(*) from document d such that %q N|(G*3) d where d.text contains %q group by d.url order by d.url`,
			web().First(), webgraph.Marker)

		var baseline string
		for _, name := range []string{"all-v2", "all-v1", "mixed"} {
			cfg := wireProfiles()[name](Config{
				Web:       web(),
				Net:       netsim.Options{Faults: netsim.FaultPlan{Seed: seed, Drop: 0.05, Sever: 0.01}},
				Server:    server.Options{Retry: retry},
				ReapGrace: 2 * time.Second,
			})
			d, err := NewDeployment(cfg)
			if err != nil {
				t.Fatal(err)
			}
			q, err := d.Run(src, 30*time.Second)
			if err != nil {
				d.Close()
				t.Fatalf("seed %d on %s: %v", seed, name, err)
			}
			got := renderResults(q)
			d.Close()
			if name == "all-v2" {
				baseline = got
				continue
			}
			if got != baseline {
				t.Errorf("seed %d: %s differs from all-v2 under faults\ngot:\n%s\nwant:\n%s",
					seed, name, got, baseline)
			}
		}
	}
}

// TestWireOracleBooksSavings runs a deployment with the per-frame gob
// oracle armed and asserts the BytesV2Saved counter accumulates: v2
// frames must actually be smaller than their gob rendering.
func TestWireOracleBooksSavings(t *testing.T) {
	d := deploy(t, plannerWeb(), server.Options{WireOracle: true})
	run(t, d, plannerQueries()[1])
	if sn := d.Metrics().Snapshot(); sn.BytesV2Saved <= 0 {
		t.Fatalf("BytesV2Saved = %d with the oracle armed, want > 0", sn.BytesV2Saved)
	}
}

// TestAdaptiveBatchTunes drives a wide result stream with no consumer so
// the collector's lag crosses the tune threshold, and asserts the
// feedback loop fired end to end: TUNE frames sent by the client and
// applied by the servers' batchers.
func TestAdaptiveBatchTunes(t *testing.T) {
	// A deep tree with sites holding 10 pages each: parent→child links
	// inside a site are local, so the traversal follows both link types.
	// 364 marker pages → 364 merged rows, far past the tune-up threshold.
	web := webgraph.Tree(webgraph.TreeOpts{
		Fanout: 3, Depth: 5, PagesPerSite: 10,
		MarkerFrac: 1.0, FillerWords: 10, Seed: 5,
	})
	d, err := NewDeployment(Config{
		Web: web,
		Server: server.Options{
			ResultBatch: server.BatchOptions{MaxRows: 8, MaxAge: 2 * time.Millisecond},
		},
		AdaptiveBatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	src := fmt.Sprintf(
		`select d.url from document d such that %q N|(L|G)*5 d where d.text contains %q`,
		web.First(), webgraph.Marker)
	q, err := d.Run(src, waitFor)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Stats().TunesSent; got == 0 {
		t.Fatalf("no TUNE frames sent (high-water %d)", q.Stats().StreamHighWater)
	}
	if sn := d.Metrics().Snapshot(); sn.BatchTunes == 0 {
		t.Fatal("no server applied a TUNE frame")
	}
	// The answer must be unaffected by the tuning.
	res := q.Results()
	if len(res) == 0 || len(res[len(res)-1].Rows) != 364 {
		t.Fatalf("tuned query lost rows: %d tables, last has %d rows",
			len(res), len(res[len(res)-1].Rows))
	}
}
