package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"webdis/internal/client"
	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/trace"
	"webdis/internal/webgraph"
	"webdis/internal/wire"
)

// streamTestWeb is the faults-sized tree: 40 single-page sites, every
// tree edge a Global link, 60% of pages carrying the marker.
func streamTestWeb() *webgraph.Web {
	return webgraph.Tree(webgraph.TreeOpts{
		Fanout: 3, Depth: 3, PagesPerSite: 1,
		MarkerFrac: 0.6, FillerWords: 30, Seed: 2,
	})
}

func streamTestQuery(w *webgraph.Web) string {
	return fmt.Sprintf(`select d.url from document d such that %q N|(G*3) d where d.text contains %q`,
		w.First(), webgraph.Marker)
}

// streamChain builds a chain of single-page marker sites with documents
// heavy enough that per-site processing dominates the user-site's stop
// round-trip (the regime where an active stop can outrun the frontier).
func streamChain(sites, fillerWords int) *webgraph.Web {
	var filler strings.Builder
	for i := 0; i < fillerWords; i++ {
		fmt.Fprintf(&filler, " w%d", i)
	}
	w := webgraph.NewWeb()
	urls := make([]string, sites)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://s%d.chain.example/p.html", i)
	}
	for i := 0; i < sites; i++ {
		p := w.NewPage(urls[i], fmt.Sprintf("Chain %d", i))
		p.AddText("This page holds the token " + webgraph.Marker + "." + filler.String())
		if i+1 < sites {
			p.AddLink(urls[i+1], "next")
		}
	}
	return w
}

// sortedRows flattens (stage, row) pairs into a canonical sorted form so
// streamed and buffered views can be compared as multisets.
func sortedRows(pairs []client.StreamRow) []string {
	out := make([]string, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, fmt.Sprintf("%d|%s", p.Stage, strings.Join(p.Row, "\x1f")))
	}
	sort.Strings(out)
	return out
}

func bufferedRows(q *client.Query) []string {
	var out []string
	for _, t := range q.Results() {
		for _, r := range t.Rows {
			out = append(out, fmt.Sprintf("%d|%s", t.Stage, strings.Join(r, "\x1f")))
		}
	}
	sort.Strings(out)
	return out
}

// testStreamParity runs a fan-in query with result batching on, consumes
// the stream concurrently through Query.Rows, and checks the streamed
// rows are exactly the buffered result tables. (A fan-in web, unlike a
// tree, gives sites multiple arrivals per query, so batched frames carry
// several reports and the multi-report merge path is exercised.)
func testStreamParity(t *testing.T, transport netsim.Transport) {
	t.Helper()
	web := webgraph.PowerLaw(webgraph.PowerLawOpts{
		Pages: 60, PagesPerSite: 2, OutLinks: 2,
		MarkerFrac: 0.5, FillerWords: 30, Seed: 3,
	})
	cfg := Config{
		Web: web,
		Server: server.Options{
			ResultBatch: server.BatchOptions{MaxRows: 8, MaxAge: time.Millisecond},
		},
		NoDocService: true,
		Transport:    transport,
	}
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	q, err := d.SubmitDISQL(streamTestQuery(web))
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan []client.StreamRow, 1)
	go func() {
		var pairs []client.StreamRow
		for stage, row := range q.Rows() {
			pairs = append(pairs, client.StreamRow{Stage: stage, Row: row})
		}
		got <- pairs
	}()
	if err := q.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	streamed := sortedRows(<-got)
	buffered := bufferedRows(q)
	if len(buffered) == 0 {
		t.Fatal("query delivered no rows")
	}
	if strings.Join(streamed, "\n") != strings.Join(buffered, "\n") {
		t.Errorf("streamed rows != buffered rows:\nstreamed: %v\nbuffered: %v", streamed, buffered)
	}
	st := q.Stats()
	if st.RowsStreamed != len(buffered) {
		t.Errorf("RowsStreamed = %d, want %d", st.RowsStreamed, len(buffered))
	}
	if st.ConsumerLag != 0 {
		t.Errorf("ConsumerLag = %d after full drain, want 0", st.ConsumerLag)
	}
	if st.FirstRow <= 0 || st.FirstRow > st.Duration {
		t.Errorf("FirstRow = %v not within (0, %v]", st.FirstRow, st.Duration)
	}
	// Frames never outnumber the logical reports they carry (strict
	// coalescing is asserted at the server level, where arrival timing
	// is controlled).
	if st.ResultMsgs > st.Reports || st.Reports == 0 {
		t.Errorf("ResultMsgs = %d, Reports = %d, want 0 < msgs <= reports", st.ResultMsgs, st.Reports)
	}
}

func TestStreamParityPipe(t *testing.T) { testStreamParity(t, nil) }

func TestStreamParityTCP(t *testing.T) { testStreamParity(t, netsim.NewTCP()) }

// TestStreamChannelParity covers the channel form, Query.Stream, with
// the same multiset check against the buffered tables.
func TestStreamChannelParity(t *testing.T) {
	web := streamTestWeb()
	d, err := NewDeployment(Config{Web: web, NoDocService: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	q, err := d.SubmitDISQL(streamTestQuery(web))
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan []client.StreamRow, 1)
	go func() {
		var pairs []client.StreamRow
		for sr := range q.Stream(context.Background()) {
			pairs = append(pairs, sr)
		}
		got <- pairs
	}()
	if err := q.Wait(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	streamed := sortedRows(<-got)
	buffered := bufferedRows(q)
	if len(buffered) == 0 {
		t.Fatal("query delivered no rows")
	}
	if strings.Join(streamed, "\n") != strings.Join(buffered, "\n") {
		t.Errorf("channel-streamed rows != buffered rows:\nstreamed: %v\nbuffered: %v", streamed, buffered)
	}
}

// TestBatchingResultParity checks batching changes the wire framing
// only: same result tables with and without it.
func TestBatchingResultParity(t *testing.T) {
	web := streamTestWeb()
	src := streamTestQuery(web)
	var rows [2][]string
	for i, batch := range []server.BatchOptions{{}, {MaxRows: 4, MaxAge: time.Millisecond}} {
		d, err := NewDeployment(Config{Web: web, Server: server.Options{ResultBatch: batch}, NoDocService: true})
		if err != nil {
			t.Fatal(err)
		}
		q, err := d.Run(src, 30*time.Second)
		if err != nil {
			d.Close()
			t.Fatal(err)
		}
		rows[i] = bufferedRows(q)
		d.Close()
	}
	if strings.Join(rows[0], "\n") != strings.Join(rows[1], "\n") {
		t.Errorf("batched results differ from unbatched:\noff: %v\non: %v", rows[0], rows[1])
	}
}

// TestFirstNActiveStop runs a FirstN query on a slow chain with tracing
// on and checks the full active-termination story: the user-site
// broadcast StopMsgs, clones died with typed STOPPED fates visible in
// both the metrics and the reconstructed journey, and the CHT still
// reconciled to a clean (non-reaped, non-partial) completion.
func TestFirstNActiveStop(t *testing.T) {
	// The stop racing the frontier is real concurrency: the user-site's
	// StopMsg must land while some chain site is still mid-evaluation.
	// Heavy documents make each window milliseconds wide, so losing all
	// ~28 windows in one run is rare — but under full-suite CPU
	// contention (and with the v2 codec shortening every hop) it
	// happens, so the racy half of the assertion gets a few
	// fresh-deployment attempts. The accounting invariants must hold on
	// every attempt, won race or lost.
	web := streamChain(30, 9000)
	src := fmt.Sprintf(`select d.url from document d such that %q N|(G*29) d where d.text contains %q`,
		web.First(), webgraph.Marker)
	won := false
	for attempt := 0; attempt < 6 && !won; attempt++ {
		d, err := NewDeployment(Config{Web: web, NoDocService: true, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		q, err := d.SubmitBudget(disql.MustParse(src), wire.Budget{FirstN: 3})
		if err != nil {
			d.Close()
			t.Fatal(err)
		}
		if err := q.Wait(30 * time.Second); err != nil {
			d.Close()
			t.Fatal(err)
		}
		st := q.Stats()
		if n := len(bufferedRows(q)); n != 3 {
			t.Errorf("rows = %d, want FirstN = 3", n)
		}
		if !q.Stopped() {
			t.Error("Stopped() = false after FirstN satisfied")
		}
		if st.StopsSent == 0 {
			t.Error("no StopMsg broadcasts recorded")
		}
		// Accounting: every CHT entry retired by reports, none reaped.
		if q.Partial() {
			t.Error("FirstN completion marked partial")
		}
		if st.Reaped != 0 {
			t.Errorf("Reaped = %d, want 0 (stop reports must retire entries)", st.Reaped)
		}
		if st.EntriesAdded != st.EntriesRetired {
			t.Errorf("CHT did not reconcile: %d added, %d retired", st.EntriesAdded, st.EntriesRetired)
		}
		met := d.Metrics().Snapshot()
		if met.Stopped > 0 {
			won = true
			// The journey agrees: stopped spans carry the typed fate,
			// and their count matches the metric.
			jy := d.Journey(q)
			stopped := 0
			jy.Walk(func(n *trace.SpanNode, _ int) {
				if n.Fate == trace.FateStopped {
					stopped++
				}
			})
			if int64(stopped) != met.Stopped {
				t.Errorf("journey has %d stopped spans, metrics counted %d", stopped, met.Stopped)
			}
		}
		d.Close()
	}
	if !won {
		t.Error("no clones terminated with a STOPPED fate in 6 attempts")
	}
}

// TestRunContextCancelStopsQuery checks an explicit ctx cancel surfaces
// as ErrCancelled and actively stops the traversal.
func TestRunContextCancelStopsQuery(t *testing.T) {
	web := streamChain(30, 2500)
	d, err := NewDeployment(Config{Web: web, NoDocService: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	src := fmt.Sprintf(`select d.url from document d such that %q N|(G*29) d where d.text contains %q`,
		web.First(), webgraph.Marker)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q, err := d.SubmitContext(ctx, disql.MustParse(src))
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := q.WaitContext(ctx); !errors.Is(err, client.ErrCancelled) {
		t.Fatalf("WaitContext err = %v, want ErrCancelled", err)
	}
	if !errors.Is(q.Err(), client.ErrCancelled) {
		t.Errorf("q.Err() = %v, want ErrCancelled", q.Err())
	}
}
