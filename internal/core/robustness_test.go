package core

import (
	"strings"
	"sync"
	"testing"
	"time"

	"webdis/internal/client"
	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/webgraph"
	"webdis/internal/webserver"
	"webdis/internal/wire"
)

// TestSiteFailureMidQuery injects a site failure while the query runs:
// forwards to the dead site fail, their CHT entries are retired, and the
// query still completes with the reachable part of the answer.
func TestSiteFailureMidQuery(t *testing.T) {
	web := webgraph.Campus()
	d, err := NewDeployment(Config{
		Web: web,
		Net: netsim.Options{Latency: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Kill the DSL site's query server before the stage-2 clones reach it.
	d.Network().SetDown(server.Endpoint("dsl.serc.iisc.ernet.in"), true)
	q, err := d.Run(webgraph.CampusDISQL, 10*time.Second)
	if err != nil {
		t.Fatalf("query did not complete despite the failure: %v", err)
	}
	var q2 client.ResultTable
	for _, rt := range q.Results() {
		if rt.Stage == 1 {
			q2 = rt
		}
	}
	// Two of the three conveners remain reachable.
	if len(q2.Rows) != 2 {
		t.Errorf("q2 rows = %+v", q2.Rows)
	}
	for _, row := range q2.Rows {
		if strings.Contains(row[0], "dsl.serc") {
			t.Errorf("row from the dead site: %v", row)
		}
	}
	if d.Metrics().ForwardFailed.Load() == 0 {
		t.Error("no forward failure recorded")
	}
}

// TestLogPurgeDuringQuery purges every server's log table aggressively
// while a query runs. The paper: an over-eager purge "only affects the
// performance of the system but not the correctness of the results".
func TestLogPurgeDuringQuery(t *testing.T) {
	web := webgraph.Random(webgraph.RandomOpts{Sites: 10, PagesPerSite: 2, GlobalOut: 2, MarkerFrac: 0.5, Seed: 77})
	d, err := NewDeployment(Config{
		Web: web,
		Server: server.Options{
			MaxHops:       8, // purged logs allow recomputation; bound it
			LogPurgeAge:   time.Microsecond,
			LogPurgeEvery: time.Millisecond,
		},
		NoDocService: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	src := `select d.url from document d such that "` + web.First() + `" N|(G*4) d where d.text contains "` + webgraph.Marker + `"`
	q, err := d.Run(src, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, row := range q.Results()[0].Rows {
		got[row[0]] = true
	}
	// Reference run with sane log tables.
	ref, err := NewDeployment(Config{Web: web, NoDocService: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	qr, err := ref.Run(src, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range qr.Results()[0].Rows {
		if !got[row[0]] {
			t.Errorf("purged run lost row %v", row)
		}
	}
	if len(got) != len(qr.Results()[0].Rows) {
		t.Errorf("row sets differ: %d vs %d", len(got), len(qr.Results()[0].Rows))
	}
}

// TestInteriorLinksTraverseInPlace exercises the I link category: an
// interior link leads back to the same web resource.
func TestInteriorLinksTraverseInPlace(t *testing.T) {
	web := webgraph.NewWeb()
	p := web.NewPage("http://a.example/doc.html", "Doc")
	p.AddText("token-alpha")
	p.AddLink("#section", "go to section") // interior
	p.AddLink("/other.html", "other")      // local
	o := web.NewPage("http://a.example/other.html", "Other")
	o.AddText("token-beta")

	var tr collector
	d := deploy(t, web, server.Options{Trace: tr.trace})
	// I·L: one interior hop (staying on doc.html), then one local hop.
	q := run(t, d, `
select d.url
from document d such that "http://a.example/doc.html" I·L d
where d.text contains "token-beta"`)
	rows := q.Results()[0].Rows
	if len(rows) != 1 || rows[0][0] != "http://a.example/other.html" {
		t.Fatalf("rows = %v", rows)
	}
	// The interior hop revisited doc.html in a new state.
	if tr.count("http://a.example/doc.html", "route") != 2 {
		t.Errorf("doc.html routes = %d, want 2 (arrival + interior revisit)", tr.count("http://a.example/doc.html", "route"))
	}
}

func TestInteriorStarTerminates(t *testing.T) {
	// I* would loop forever without the log table: the second interior
	// arrival carries the same state and is purged.
	web := webgraph.NewWeb()
	p := web.NewPage("http://a.example/doc.html", "Doc")
	p.AddText("token-alpha")
	p.AddLink("#top", "top")
	d := deploy(t, web, server.Options{})
	q := run(t, d, `
select d.url
from document d such that "http://a.example/doc.html" N|I* d
where d.text contains "token-alpha"`)
	if rows := q.Results()[0].Rows; len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if d.Metrics().DupDropped.Load() == 0 {
		t.Error("the interior loop should have been cut by the log table")
	}
}

// TestBandwidthShapesTransfer runs the campus query over a very slow
// fabric and checks that finite bandwidth actually slows delivery, by
// comparison with an unshaped run of the same query.
func TestBandwidthShapesTransfer(t *testing.T) {
	elapsed := func(bps int64) time.Duration {
		d, err := NewDeployment(Config{
			Web:          webgraph.Campus(),
			Net:          netsim.Options{BytesPerSecond: bps},
			NoDocService: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		// Take the best of three to damp scheduler noise.
		best := time.Duration(1 << 62)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := d.Run(webgraph.CampusDISQL, 30*time.Second); err != nil {
				t.Fatal(err)
			}
			if e := time.Since(start); e < best {
				best = e
			}
		}
		return best
	}
	fast := elapsed(0)        // unlimited
	slow := elapsed(16 << 10) // 16 KiB/s: even v2's compact frames need real time
	if slow < 2*fast {
		t.Errorf("bandwidth shaping had no effect: unlimited %v vs 64KiB/s %v", fast, slow)
	}
}

// TestTCPDeploymentEndToEnd runs the full campus query over real TCP
// sockets inside one process: six servers, six document hosts and a
// client on a TCPTransport — the same wiring the webdisd/webdis commands
// use across processes.
func TestTCPDeploymentEndToEnd(t *testing.T) {
	web := webgraph.Campus()
	tr := netsim.NewTCP()
	met := &server.Metrics{}
	for _, site := range web.Hosts() {
		h := webserver.NewHost(site, web)
		if err := h.Start(tr); err != nil {
			t.Fatal(err)
		}
		defer h.Stop()
		s := server.New(site, h, tr, met, server.Options{})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		defer s.Stop()
	}
	c := client.New(tr, "tcp-test", "tcp://127.0.0.1:0")
	// tcp://127.0.0.1:0 binds an ephemeral port; the collector's actual
	// address must be re-announced, so use a fixed port instead.
	c = client.New(tr, "tcp-test", "tcp://127.0.0.1:7411")
	q, err := c.Submit(disql.MustParse(webgraph.CampusDISQL))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	res := q.Results()
	if len(res) != 2 || len(res[1].Rows) != 3 {
		t.Fatalf("results = %+v", res)
	}
	// Real bytes crossed loopback sockets.
	tot := tr.Stats().Snapshot().Total()
	if tot.Bytes == 0 || tot.ByKind[wire.KindClone] == 0 || tot.ByKind[wire.KindResult] == 0 {
		t.Errorf("tcp traffic = %+v", tot)
	}
}

// TestManyConcurrentQueriesUnderLatency stresses the full stack: many
// concurrent queries over a latency-injected fabric, all completing with
// balanced CHTs.
func TestManyConcurrentQueriesUnderLatency(t *testing.T) {
	d, err := NewDeployment(Config{
		Web:          webgraph.Campus(),
		Net:          netsim.Options{Latency: time.Millisecond},
		NoDocService: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q, err := d.SubmitDISQL(webgraph.CampusDISQL)
			if err != nil {
				errs <- err
				return
			}
			if err := q.Wait(20 * time.Second); err != nil {
				errs <- err
				return
			}
			if st := q.Stats(); st.EntriesAdded != st.EntriesRetired {
				errs <- errImbalance(st)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type errImbalance client.Stats

func (e errImbalance) Error() string {
	return "CHT imbalance"
}
