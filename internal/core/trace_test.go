package core

import (
	"sync"
	"testing"
	"time"

	"webdis/internal/client"
	"webdis/internal/disql"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/trace"
	"webdis/internal/webgraph"
	"webdis/internal/webserver"
)

// TestCampusJourneyReconstruction runs the Section-5 campus query with
// tracing on and checks the reconstructed journey: every clone exactly
// once, hops consistent with parentage, all fates processed, and the
// regenerated traversal matching the legacy tracer's Figure-7 sequence
// from the same run.
func TestCampusJourneyReconstruction(t *testing.T) {
	var mu sync.Mutex
	var legacy []server.Event
	d, err := NewDeployment(Config{
		Web: webgraph.Campus(),
		Server: server.Options{Trace: func(e server.Event) {
			mu.Lock()
			legacy = append(legacy, e)
			mu.Unlock()
		}},
		NoDocService: true,
		Trace:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if !d.Tracing() {
		t.Fatal("Tracing() = false with Config.Trace set")
	}
	q, err := d.Run(webgraph.CampusDISQL, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	jy := d.Journey(q)
	if !jy.Complete() {
		t.Errorf("clean campus run not complete: %d lost spans", len(jy.Lost()))
	}
	if len(jy.Roots) != 1 {
		t.Fatalf("roots = %d, want 1 (single StartNode site)", len(jy.Roots))
	}
	if len(jy.Spans) < 6 {
		t.Errorf("spans = %d, suspiciously few for the campus query", len(jy.Spans))
	}
	jy.Walk(func(n *trace.SpanNode, _ int) {
		if n.Fate != trace.FateProcessed {
			t.Errorf("span %s: fate %q, want processed", n.Span, n.Fate)
		}
		if n.Site == "" {
			t.Errorf("span %s: no processing site", n.Span)
		}
		for _, c := range n.Children {
			if c.Hop != n.Hop+1 {
				t.Errorf("span %s hop=%d but parent %s hop=%d", c.Span, c.Hop, n.Span, n.Hop)
			}
			if c.FromSite != n.Site {
				t.Errorf("span %s from %q but parent processed at %q", c.Span, c.FromSite, n.Site)
			}
		}
	})
	// Each clone message is created exactly once: one Dispatch or Forward
	// event per span.
	created := make(map[string]int)
	for _, e := range jy.Events {
		if e.Kind == trace.Dispatch || e.Kind == trace.Forward {
			created[e.Span.String()]++
		}
	}
	if len(created) != len(jy.Spans) {
		t.Errorf("creation events for %d spans, journey has %d", len(created), len(jy.Spans))
	}
	for s, n := range created {
		if n != 1 {
			t.Errorf("span %s created %d times", s, n)
		}
	}

	// The journaled traversal and the legacy tracer watched the same run,
	// so up to cross-site ordering ties they must record the same multiset
	// of (node, state, action) visits — the paper's Figure-7 sequence.
	journaled := make(map[string]int)
	for _, l := range jy.Traversal() {
		journaled[l.Node+"|"+l.State+"|"+l.Action]++
	}
	mu.Lock()
	legacySeq := make(map[string]int)
	for _, e := range legacy {
		switch e.Action {
		case "eval", "route", "dead-end", "drop", "rewrite", "missing":
			legacySeq[e.Node+"|"+e.State.String()+"|"+e.Action]++
		}
	}
	mu.Unlock()
	if len(legacySeq) == 0 {
		t.Fatal("legacy tracer recorded nothing")
	}
	if len(journaled) != len(legacySeq) {
		t.Errorf("traversal: %d distinct visits journaled, legacy saw %d", len(journaled), len(legacySeq))
	}
	for k, n := range legacySeq {
		if journaled[k] != n {
			t.Errorf("visit %q: journaled %d, legacy %d", k, journaled[k], n)
		}
	}
}

// compareJourneys asserts that two views of the same run reconstruct the
// same clone tree: same spans, same parentage, sites, hops and fates.
func compareJourneys(t *testing.T, full, stitched *trace.Journey) {
	t.Helper()
	if len(stitched.Spans) != len(full.Spans) {
		t.Errorf("stitched view has %d spans, full journals %d", len(stitched.Spans), len(full.Spans))
	}
	for id, fn := range full.Spans {
		sn := stitched.Spans[id]
		if sn == nil {
			t.Errorf("span %s missing from the stitched view", id)
			continue
		}
		if sn.Parent != fn.Parent {
			t.Errorf("span %s: stitched parent %s, full %s", id, sn.Parent, fn.Parent)
		}
		if sn.Site != fn.Site {
			t.Errorf("span %s: stitched site %q, full %q", id, sn.Site, fn.Site)
		}
		if sn.Hop != fn.Hop {
			t.Errorf("span %s: stitched hop %d, full %d", id, sn.Hop, fn.Hop)
		}
		if sn.Fate != fn.Fate {
			t.Errorf("span %s: stitched fate %q, full %q", id, sn.Fate, fn.Fate)
		}
	}
}

// TestStitchedJourneyParityPipe checks that the user-site's
// report-stitched view — Dispatch events plus the span ids and spawn
// links echoed on result messages — reconstructs the same journey as the
// full site journals, over the in-process pipe transport.
func TestStitchedJourneyParityPipe(t *testing.T) {
	d, err := NewDeployment(Config{
		Web:          webgraph.Campus(),
		NoDocService: true,
		Trace:        true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	q, err := d.Run(webgraph.CampusDISQL, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	full := d.Journey(q)
	stitched := trace.BuildJourney(q.ID().String(), q.TraceEvents())
	if !full.Complete() || !stitched.Complete() {
		t.Errorf("complete: full=%v stitched=%v", full.Complete(), stitched.Complete())
	}
	compareJourneys(t, full, stitched)
}

// TestStitchedJourneyParityTCP runs the same parity check over real TCP
// sockets: the daemons journal locally, the client sees only its own
// journal plus what the result messages echo, and both views must agree.
// This is the wiring `webdis -trace` relies on across processes.
func TestStitchedJourneyParityTCP(t *testing.T) {
	web := webgraph.Campus()
	tr := netsim.NewTCP()
	met := &server.Metrics{}
	journals := []*trace.Journal{trace.NewJournal("tcp://127.0.0.1:7412", 0)}
	for _, site := range web.Hosts() {
		h := webserver.NewHost(site, web)
		if err := h.Start(tr); err != nil {
			t.Fatal(err)
		}
		defer h.Stop()
		j := trace.NewJournal(site, 0)
		journals = append(journals, j)
		s := server.New(site, h, tr, met, server.Options{Journal: j})
		if err := s.Start(); err != nil {
			t.Fatal(err)
		}
		defer s.Stop()
	}
	c := client.New(tr, "tcp-trace-test", "tcp://127.0.0.1:7412")
	c.SetJournal(journals[0])
	q, err := c.Submit(disql.MustParse(webgraph.CampusDISQL))
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Wait(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	if res := q.Results(); len(res) != 2 || len(res[1].Rows) != 3 {
		t.Fatalf("results = %+v", res)
	}
	var all []trace.Event
	for _, j := range journals {
		all = append(all, j.Events()...)
	}
	full := trace.BuildJourney(q.ID().String(), all)
	stitched := trace.BuildJourney(q.ID().String(), q.TraceEvents())
	if !full.Complete() || !stitched.Complete() {
		t.Errorf("complete: full=%v stitched=%v", full.Complete(), stitched.Complete())
	}
	if len(full.Spans) == 0 {
		t.Fatal("no spans journaled over TCP")
	}
	compareJourneys(t, full, stitched)
}

// TestSiteMetricsSplit checks the per-site metrics split: site snapshots
// attribute work to individual sites and sum exactly to the aggregate
// Metrics() view.
func TestSiteMetricsSplit(t *testing.T) {
	d, err := NewDeployment(Config{
		Web:          webgraph.Campus(),
		NoDocService: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Run(webgraph.CampusDISQL, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	snaps := d.SiteSnapshots()
	if _, ok := snaps["user"]; !ok {
		t.Error("no client snapshot under the user name")
	}
	var busy int
	var sum server.Snapshot
	for site, s := range snaps {
		if site != "user" && s.Evaluations+s.PureRoutes+s.DupDropped > 0 {
			busy++
		}
		sum = sum.Add(s)
	}
	if busy < 2 {
		t.Errorf("only %d sites show work; the split is not per-site", busy)
	}
	if agg := d.Metrics().Snapshot(); sum != agg {
		t.Errorf("site snapshots sum to %+v\naggregate is %+v", sum, agg)
	}
	if sum.Evaluations == 0 || sum.ResultMsgs == 0 {
		t.Errorf("campus run recorded no work: %+v", sum)
	}
}
