package core

import (
	"strings"
	"testing"
	"time"

	"webdis/internal/cluster"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/webgraph"
)

// TestReplicatedDeploymentBasics checks that a replicated deployment is
// observably the same engine: the answer matches the unreplicated run,
// every site runs its configured replica count, and the per-replica
// metrics keys appear alongside the seed's per-site keys.
func TestReplicatedDeploymentBasics(t *testing.T) {
	web := webgraph.Campus()

	ref, err := NewDeployment(Config{Web: web})
	if err != nil {
		t.Fatal(err)
	}
	rq, err := ref.Run(webgraph.CampusDISQL, waitFor)
	if err != nil {
		t.Fatal(err)
	}
	want := rowSet(rq.Results())
	ref.Close()
	if len(want) == 0 {
		t.Fatal("empty unreplicated answer")
	}

	d, err := NewDeployment(Config{Web: web, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.Cluster() == nil {
		t.Fatal("replicated deployment has no membership table")
	}
	for _, site := range web.Hosts() {
		reps := d.Replicas(site)
		if len(reps) != 2 {
			t.Fatalf("site %s runs %d replicas, want 2", site, len(reps))
		}
		if d.Server(site) != reps[0] {
			t.Fatalf("site %s: Server() is not replica 0", site)
		}
	}
	if got, want := len(d.Cluster().Snapshot()), 2*len(web.Hosts()); got != want {
		t.Fatalf("membership tracks %d endpoints, want %d", got, want)
	}

	q, err := d.Run(webgraph.CampusDISQL, waitFor)
	if err != nil {
		t.Fatal(err)
	}
	got := rowSet(q.Results())
	if k, ok := subset(got, want); !ok {
		t.Fatalf("replicated answer has extra row %q", k)
	}
	if k, ok := subset(want, got); !ok {
		t.Fatalf("replicated answer missing row %q", k)
	}

	sn := d.SiteSnapshots()
	found := false
	for key := range sn {
		if strings.Contains(key, "@1") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("SiteSnapshots has no per-replica key: %v", keysOf(sn))
	}
}

func keysOf(m map[string]server.Snapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestReplicaKillStrandedCloneReplayed kills the root site's hashed
// replica while the very first clone is still in flight to it (the
// fabric's latency guarantees the frame has not landed): the clone dies
// with the replica, no report ever arrives, and after a silent grace
// window the reaper must reconstruct the stranded clone from the CHT
// mirror and replay it into the surviving replica. The full traversal
// then runs from there — the query completes CLEAN, with exactly the
// baseline rows and a zeroed ledger, not Partial.
func TestReplicaKillStrandedCloneReplayed(t *testing.T) {
	web := chaosWeb(21)
	want := baselineRows(t, web, chaosDISQL)
	if len(want) == 0 {
		t.Fatal("empty baseline")
	}

	d, err := NewDeployment(Config{
		Web:       web,
		Net:       netsim.Options{Latency: 5 * time.Millisecond},
		Server:    server.Options{Retry: chaosRetry},
		Replicas:  2,
		Cluster:   cluster.Options{SuspectAfter: 1, DownAfter: 1},
		ReapGrace: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	q, err := d.SubmitDISQL(chaosDISQL)
	if err != nil {
		t.Fatal(err)
	}
	// The dispatch resolved the root site through the same rendezvous hash;
	// killing that replica now severs the in-flight clone with it.
	victim, ok := d.Cluster().Pick("t0.example", q.ID().String(), nil)
	if !ok {
		t.Fatal("pick failed")
	}
	d.Cluster().ReportSuccess(victim) // balance the peek's load increment
	d.Network().Kill(victim)

	if err := q.Wait(waitFor); err != nil {
		t.Fatalf("query did not complete after replica kill: %v", err)
	}
	got := rowSet(q.Results())
	if k, ok := subset(got, want); !ok {
		t.Fatalf("delivered row %q not in the baseline", k)
	}
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want the full baseline %d (stats %+v)", len(got), len(want), q.Stats())
	}
	if q.Partial() {
		t.Errorf("replayed run marked Partial: %+v", q.Stats())
	}
	st := q.Stats()
	if st.Replays < 1 {
		t.Errorf("Replays = %d, want >= 1 (the stranded clone was never replayed)", st.Replays)
	}
	if q.LiveEntries() != 0 {
		t.Errorf("LiveEntries = %d after completion, want 0", q.LiveEntries())
	}
	if n := d.Metrics().Snapshot().ReplicaReplays; n < 1 {
		t.Errorf("metrics ReplicaReplays = %d, want >= 1", n)
	}
}

// TestReplicaKillMidTraversalFailsOver kills the hashed replica of a
// depth-1 site before the root's forward to it goes out: the server's
// send exhausts its retries against the corpse, re-resolves through the
// membership table, and delivers to the sibling — mid-traversal failover
// with zero lost rows and a clean (non-Partial) completion.
func TestReplicaKillMidTraversalFailsOver(t *testing.T) {
	web := chaosWeb(22)
	want := baselineRows(t, web, chaosDISQL)
	if len(want) == 0 {
		t.Fatal("empty baseline")
	}

	d, err := NewDeployment(Config{
		Web:      web,
		Net:      netsim.Options{Latency: 5 * time.Millisecond},
		Server:   server.Options{Retry: chaosRetry},
		Replicas: 2,
		// Park the prober: this test pins the send-outcome failover path,
		// and a probe demoting the corpse first would route around it
		// before any send ever failed.
		Cluster:   cluster.Options{SuspectAfter: 1, DownAfter: 1, ProbeEvery: time.Hour},
		ReapGrace: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	q, err := d.SubmitDISQL(chaosDISQL)
	if err != nil {
		t.Fatal(err)
	}
	// t1.example is a depth-1 child of the root: its clone is forwarded by
	// t0's server with the query id as the routing key — the same pick.
	victim, ok := d.Cluster().Pick("t1.example", q.ID().String(), nil)
	if !ok {
		t.Fatal("pick failed")
	}
	d.Cluster().ReportSuccess(victim)
	d.Network().Kill(victim)

	if err := q.Wait(waitFor); err != nil {
		t.Fatalf("query did not complete after mid-traversal kill: %v", err)
	}
	got := rowSet(q.Results())
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want the full baseline %d (lost rows on failover; stats %+v)",
			len(got), len(want), q.Stats())
	}
	if k, ok := subset(got, want); !ok {
		t.Fatalf("delivered row %q not in the baseline", k)
	}
	if q.Partial() {
		t.Errorf("failover run marked Partial: %+v", q.Stats())
	}
	if q.LiveEntries() != 0 {
		t.Errorf("LiveEntries = %d after completion, want 0", q.LiveEntries())
	}
	if n := d.Metrics().Snapshot().Failovers; n < 1 {
		t.Errorf("metrics Failovers = %d, want >= 1 (forward never re-resolved)", n)
	}
}

// TestReplicaStopOverTCP runs the replicated engine over real loopback
// sockets and stops one replica server mid-query. Whatever the exact
// interleaving (the clone may beat the stop, die with it, or never reach
// it), the invariants hold: delivered rows are a subset of the baseline,
// the query terminates with a drained ledger, and any shortfall is
// booked as an explicit Partial completion — rows never vanish silently.
func TestReplicaStopOverTCP(t *testing.T) {
	web := webgraph.Tree(webgraph.TreeOpts{
		Fanout: 2, Depth: 2, PagesPerSite: 1, MarkerFrac: 1.0, Seed: 9,
	})
	const src = `
select d.url
from document d such that "http://t0.example/p0.html" N|(G*2) d
where d.text contains "` + webgraph.Marker + `"`
	want := baselineRows(t, web, src)
	if len(want) == 0 {
		t.Fatal("empty baseline")
	}

	d, err := NewDeployment(Config{
		Web:       web,
		Transport: netsim.NewTCP(),
		Server:    server.Options{Retry: chaosRetry},
		Replicas:  2,
		Cluster:   cluster.Options{SuspectAfter: 1, DownAfter: 1},
		ReapGrace: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	q, err := d.SubmitDISQL(src)
	if err != nil {
		t.Fatal(err)
	}
	victim, ok := d.Cluster().Pick("t1.example", q.ID().String(), nil)
	if !ok {
		t.Fatal("pick failed")
	}
	d.Cluster().ReportSuccess(victim)
	idx := 0
	if strings.Contains(victim, "@1") {
		idx = 1
	}
	d.Replicas("t1.example")[idx].Stop()

	if err := q.Wait(waitFor); err != nil {
		t.Fatalf("query did not terminate after replica stop over TCP: %v", err)
	}
	got := rowSet(q.Results())
	if k, ok := subset(got, want); !ok {
		t.Fatalf("delivered row %q not in the baseline", k)
	}
	if q.LiveEntries() != 0 {
		t.Errorf("LiveEntries = %d after completion, want 0", q.LiveEntries())
	}
	if len(got) != len(want) && !q.Partial() && q.Stats().Reaped == 0 {
		t.Errorf("lost %d rows with no Partial marking or reap accounting (stats %+v)",
			len(want)-len(got), q.Stats())
	}
}
