// Package core assembles complete WEBDIS deployments: it takes a
// (synthetic) web, starts one document host and one query server per site
// on a shared transport, and exposes a user-site client — everything
// needed to run the paper's distributed query processing end to end in
// one process, with full traffic accounting.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"webdis/internal/client"
	"webdis/internal/disql"
	"webdis/internal/index"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/trace"
	"webdis/internal/webgraph"
	"webdis/internal/webserver"
	"webdis/internal/wire"
)

// Config describes a deployment.
type Config struct {
	// Web is the document corpus; one query server and one document host
	// start per site. Required.
	Web *webgraph.Web
	// Net configures the simulated fabric (latency, bandwidth).
	Net netsim.Options
	// Transport, when set, runs the deployment over this transport (e.g.
	// netsim.NewTCP for real sockets within one process) instead of a
	// fresh simulated fabric. Network() then returns nil: the fabric's
	// fault injection, traffic stats and transport-level trace observer
	// are unavailable, and Net is ignored.
	Transport netsim.Transport
	// Server configures every query server (dedup mode, batching, trace).
	Server server.Options
	// User names the user submitting queries; defaults to "user".
	User string
	// NoDocService skips starting the per-site fetch services; the
	// distributed engine reads documents co-located, so only runs that
	// also use the centralized baseline need them.
	NoDocService bool
	// Participate, when non-nil, selects which sites run a query server —
	// the paper's Section 7.1 world where only some of the web has
	// adopted WEBDIS. Non-participating sites keep their document host,
	// servers bounce undeliverable clones back to the user-site, and the
	// client's hybrid fallback processes them centrally. Incompatible
	// with NoDocService (the fallback must be able to download).
	Participate func(site string) bool
	// Hybrid enables the bounce/fallback path even when every site
	// participates: a clone whose forward attempts are exhausted under
	// Server.Retry is returned to the user-site and evaluated centrally —
	// per-edge degraded-mode recovery from query shipping to data
	// shipping. Implied by Participate. Incompatible with NoDocService.
	Hybrid bool
	// ReapGrace arms the client's orphan-CHT reaper: a query that has
	// seen no report for this long while entries remain outstanding is
	// completed as Partial, its orphans retired. Zero disables reaping.
	ReapGrace time.Duration
	// Trace arms causal tracing: every site (and the user-site) gets a
	// trace.Journal, clones carry span ids, and transport-level events
	// (dials, refusals, dropped and severed frames) are journaled via the
	// fabric's observer hook. Journeys are reconstructed with Journey.
	Trace bool
	// TraceCapacity sizes each journal's event ring; <= 0 uses
	// trace.DefaultCapacity.
	TraceCapacity int
}

// Deployment is a running WEBDIS installation over a simulated web.
type Deployment struct {
	web     *webgraph.Web
	network *netsim.Network  // nil when Config.Transport was supplied
	tr      netsim.Transport // the transport everything runs over
	hosts   map[string]*webserver.Host
	servers map[string]*server.Server
	client  *client.Client
	user    string

	// Per-site engine metrics: one instance per query server, plus one
	// for the client under the user name. Metrics aggregates them.
	siteMetrics   map[string]*server.Metrics
	clientMetrics *server.Metrics

	// Trace journals, present when Config.Trace is set: one per query
	// server, one for the client, one for the fabric ("(net)").
	journals      map[string]*trace.Journal
	clientJournal *trace.Journal
	netJournal    *trace.Journal

	ixOnce sync.Once
	ix     *index.Index
	ixErr  error
}

// NewDeployment builds and starts a deployment.
func NewDeployment(cfg Config) (*Deployment, error) {
	if cfg.Web == nil {
		return nil, fmt.Errorf("core: Config.Web is required")
	}
	if (cfg.Participate != nil || cfg.Hybrid) && cfg.NoDocService {
		return nil, fmt.Errorf("core: Participate/Hybrid requires the document service (the hybrid fallback downloads)")
	}
	user := cfg.User
	if user == "" {
		user = "user"
	}
	srvOpts := cfg.Server
	if cfg.Participate != nil || cfg.Hybrid {
		srvOpts.Hybrid = true
	}
	netOpts := cfg.Net
	var netJournal *trace.Journal
	if cfg.Trace {
		// Transport-level events ride in their own journal, hooked into
		// the fabric's observer (netsim cannot import trace).
		netJournal = trace.NewJournal("(net)", cfg.TraceCapacity)
		prev := netOpts.Observer
		netOpts.Observer = func(kind, from, to string) {
			netJournal.Append(trace.Event{Kind: trace.Kind(kind), Node: from, Detail: to})
			if prev != nil {
				prev(kind, from, to)
			}
		}
	}
	tr := cfg.Transport
	var network *netsim.Network
	if tr == nil {
		network = netsim.New(netOpts)
		tr = network
	}
	d := &Deployment{
		web:           cfg.Web,
		network:       network,
		tr:            tr,
		hosts:         make(map[string]*webserver.Host),
		servers:       make(map[string]*server.Server),
		user:          user,
		siteMetrics:   make(map[string]*server.Metrics),
		clientMetrics: &server.Metrics{},
		journals:      make(map[string]*trace.Journal),
		netJournal:    netJournal,
	}
	for _, site := range cfg.Web.Hosts() {
		h := webserver.NewHost(site, cfg.Web)
		d.hosts[site] = h
		if !cfg.NoDocService {
			if err := h.Start(tr); err != nil {
				d.Close()
				return nil, err
			}
		}
		if cfg.Participate != nil && !cfg.Participate(site) {
			continue // the site hosts documents but runs no query server
		}
		met := &server.Metrics{}
		d.siteMetrics[site] = met
		opts := srvOpts
		if cfg.Trace {
			j := trace.NewJournal(site, cfg.TraceCapacity)
			d.journals[site] = j
			opts.Journal = j
		}
		s := server.New(site, h, tr, met, opts)
		d.servers[site] = s
		if err := s.Start(); err != nil {
			d.Close()
			return nil, err
		}
	}
	if cfg.Trace {
		d.clientJournal = trace.NewJournal(user, cfg.TraceCapacity)
	}
	d.client = client.NewWith(tr, user, user, client.Options{
		Hybrid:    cfg.Participate != nil || cfg.Hybrid,
		ReapGrace: cfg.ReapGrace,
		Metrics:   d.clientMetrics,
		Journal:   d.clientJournal,
		// Resolve index("term") StartNode sources against the deployment's
		// search index, built lazily on first use.
		IndexResolver: func(term string) []string {
			ix, err := d.Index()
			if err != nil {
				return nil
			}
			return ix.URLs(term, 0)
		},
	})
	return d, nil
}

// Index returns the deployment's search index over its web, building it
// on first use — the "existing search-index" that resolves index("term")
// StartNode sources.
func (d *Deployment) Index() (*index.Index, error) {
	d.ixOnce.Do(func() {
		d.ix, d.ixErr = index.Build(d.web)
	})
	return d.ix, d.ixErr
}

// Submit dispatches a parsed web-query from the deployment's user-site.
func (d *Deployment) Submit(w *disql.WebQuery) (*client.Query, error) {
	return d.client.Submit(w)
}

// SubmitBudget dispatches a parsed web-query carrying an execution
// budget (deadline, hop/clone/row quotas, scheduling weight); the budget
// travels on every clone and is inherited, decremented, by its children.
func (d *Deployment) SubmitBudget(w *disql.WebQuery, b wire.Budget) (*client.Query, error) {
	return d.client.SubmitBudget(w, b)
}

// NewSession opens a multi-query session at the user-site: one result
// endpoint shared by many concurrent queries, the client side of the
// multi-user workload the scheduler exists for. Close it when done.
func (d *Deployment) NewSession() (*client.Session, error) {
	return d.client.NewSession()
}

// SubmitDISQL parses and dispatches a DISQL query.
func (d *Deployment) SubmitDISQL(src string) (*client.Query, error) {
	w, err := disql.Parse(src)
	if err != nil {
		return nil, err
	}
	return d.Submit(w)
}

// Run submits a DISQL query and waits for completion (timeout <= 0 waits
// forever), returning the finished query. A query that exceeds the
// timeout is cancelled before Run returns: the collector endpoint closes,
// so passive termination drains the in-flight clones instead of leaking
// the endpoint, the collector goroutine and any fallback worker. The
// partial results gathered before the deadline remain readable.
func (d *Deployment) Run(src string, timeout time.Duration) (*client.Query, error) {
	q, err := d.SubmitDISQL(src)
	if err != nil {
		return nil, err
	}
	if err := q.Wait(timeout); err != nil {
		if errors.Is(err, client.ErrTimeout) {
			q.Cancel()
		}
		return q, err
	}
	return q, nil
}

// RunContext submits a DISQL query bound to ctx and waits for it. A ctx
// that ends first actively stops the query's in-flight clones (typed
// StopMsg broadcast) and cancels collection; the partial results
// gathered remain readable on the returned query. The context-first form
// of Run.
func (d *Deployment) RunContext(ctx context.Context, src string) (*client.Query, error) {
	w, err := disql.Parse(src)
	if err != nil {
		return nil, err
	}
	q, err := d.client.SubmitContext(ctx, w)
	if err != nil {
		return nil, err
	}
	if err := q.WaitContext(ctx); err != nil {
		if errors.Is(err, client.ErrTimeout) {
			// A ctx deadline, unlike an explicit cancel, does not cancel
			// the query from inside WaitContext; match Run's contract.
			q.Cancel()
		}
		return q, err
	}
	return q, nil
}

// SubmitContext dispatches a parsed web-query bound to ctx (see
// client.Client.SubmitContext).
func (d *Deployment) SubmitContext(ctx context.Context, w *disql.WebQuery) (*client.Query, error) {
	return d.client.SubmitContext(ctx, w)
}

// Web returns the deployment's document corpus.
func (d *Deployment) Web() *webgraph.Web { return d.web }

// Network returns the simulated fabric (for stats and failure
// injection), or nil when the deployment runs over Config.Transport.
func (d *Deployment) Network() *netsim.Network { return d.network }

// Transport returns the transport the deployment runs over: the
// simulated fabric, or Config.Transport when one was supplied.
func (d *Deployment) Transport() netsim.Transport { return d.tr }

// Metrics returns the deployment-wide engine metrics: a fresh aggregate
// of every site's instance plus the client's, materialized per call —
// callers that poll must call Metrics again for updated counts (all
// existing callers already do).
func (d *Deployment) Metrics() *server.Metrics {
	agg := &server.Metrics{}
	for _, m := range d.siteMetrics {
		agg.Absorb(m)
	}
	agg.Absorb(d.clientMetrics)
	return agg
}

// SiteSnapshots returns one metrics snapshot per query server, keyed by
// site, plus the client's counters under the user name — the per-site
// attribution the single aggregate cannot give (which site evaluated,
// which site's forwards failed).
func (d *Deployment) SiteSnapshots() map[string]server.Snapshot {
	out := make(map[string]server.Snapshot, len(d.siteMetrics)+1)
	for site, m := range d.siteMetrics {
		out[site] = m.Snapshot()
	}
	out[d.user] = d.clientMetrics.Snapshot()
	return out
}

// Tracing reports whether the deployment was built with Config.Trace.
func (d *Deployment) Tracing() bool { return d.netJournal != nil }

// Journal returns the trace journal of one site (the user name returns
// the client's journal, "(net)" the fabric's), or nil when tracing is
// off or the site runs no query server.
func (d *Deployment) Journal(site string) *trace.Journal {
	switch site {
	case d.user:
		return d.clientJournal
	case "(net)":
		return d.netJournal
	}
	return d.journals[site]
}

// TraceEvents merges every journal — all sites, the client, the fabric —
// into one time-ordered stream.
func (d *Deployment) TraceEvents() []trace.Event {
	var out []trace.Event
	for _, site := range d.web.Hosts() {
		out = append(out, d.journals[site].Events()...)
	}
	out = append(out, d.clientJournal.Events()...)
	out = append(out, d.netJournal.Events()...)
	sort.SliceStable(out, func(i, k int) bool { return out[i].At < out[k].At })
	return out
}

// Journey reconstructs the causal clone tree of one query from the
// deployment's journals. Call after the query completes (or at least
// quiesces) for a stable tree.
func (d *Deployment) Journey(q *client.Query) *trace.Journey {
	return trace.BuildJourney(q.ID().String(), d.TraceEvents())
}

// FlushTraces drains and resets every journal, returning the merged
// events. Use between measured runs so each query reads a clean slate;
// it must not race with an in-flight query.
func (d *Deployment) FlushTraces() []trace.Event {
	var out []trace.Event
	for _, site := range d.web.Hosts() {
		out = append(out, d.journals[site].Flush()...)
	}
	out = append(out, d.clientJournal.Flush()...)
	out = append(out, d.netJournal.Flush()...)
	sort.SliceStable(out, func(i, k int) bool { return out[i].At < out[k].At })
	return out
}

// Client returns the deployment's user-site client.
func (d *Deployment) Client() *client.Client { return d.client }

// Server returns the query server of site, or nil.
func (d *Deployment) Server(site string) *server.Server { return d.servers[site] }

// Host returns the document host of site, or nil.
func (d *Deployment) Host(site string) *webserver.Host { return d.hosts[site] }

// Close stops every server and document host.
func (d *Deployment) Close() {
	for _, s := range d.servers {
		s.Stop()
	}
	for _, h := range d.hosts {
		h.Stop()
	}
}
