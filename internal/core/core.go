// Package core assembles complete WEBDIS deployments: it takes a
// (synthetic) web, starts one document host and one query server per site
// on a shared transport, and exposes a user-site client — everything
// needed to run the paper's distributed query processing end to end in
// one process, with full traffic accounting.
package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"time"

	"webdis/internal/client"
	"webdis/internal/cluster"
	"webdis/internal/disql"
	"webdis/internal/index"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/trace"
	"webdis/internal/webgraph"
	"webdis/internal/webserver"
	"webdis/internal/wire"
)

// ExecConfig groups a deployment's execution-path knobs: how query
// servers run, which sites participate, how the user-site degrades and
// observes. Preferred over the equivalent deprecated flat Config
// fields; when both are set, the flat field wins (it predates the
// group).
type ExecConfig struct {
	// Server configures every query server (dedup mode, batching, trace).
	Server server.Options
	// Transport runs the deployment over this transport instead of a
	// fresh simulated fabric (see Config.Transport).
	Transport netsim.Transport
	// User names the user submitting queries; defaults to "user".
	User string
	// NoDocService skips starting the per-site fetch services.
	NoDocService bool
	// Participate selects which sites run a query server.
	Participate func(site string) bool
	// Hybrid enables the bounce/fallback path even when every site
	// participates.
	Hybrid bool
	// ReapGrace arms the client's orphan-CHT reaper.
	ReapGrace time.Duration
	// Replicas runs every participating site as N replica servers.
	Replicas int
	// ReplicasFor overrides Replicas per site.
	ReplicasFor map[string]int
	// Cluster tunes the membership table's health machinery.
	Cluster cluster.Options
	// SiteServerOptions rewrites one site's server options.
	SiteServerOptions func(site string, o server.Options) server.Options
	// AdaptiveBatch arms the client's batching feedback loop.
	AdaptiveBatch bool
	// Trace arms causal tracing.
	Trace bool
	// TraceCapacity sizes each journal's event ring.
	TraceCapacity int
}

// WatchConfig groups the continuous-query knobs: the seeded mutation
// schedule the deployment's web evolves under, and the budget standing
// queries run their initial traversal with. The zero value is a frozen
// web — full back-compat with every one-shot deployment.
type WatchConfig struct {
	// Mutations drives Deployment.Mutate: a seeded, deterministic
	// schedule of page edits, link rewires, page births and deaths.
	// The zero plan mutates nothing.
	Mutations webgraph.MutationPlan
	// Budget applies to every watch's initial run (incremental re-runs
	// always ship as low-weight flows regardless).
	Budget wire.Budget
}

// Config describes a deployment. The network, execution, storage and
// continuous-query knobs live in the Net, Exec, Storage and Watch
// groups; the remaining flat fields are deprecated aliases kept for one
// release.
type Config struct {
	// Web is the document corpus; one query server and one document host
	// start per site. Required.
	Web *webgraph.Web
	// Net groups the simulated fabric's knobs (latency, bandwidth,
	// fault plan, observer).
	Net netsim.Options
	// Exec groups the execution-path knobs (server options, hybrid
	// fallback, replicas, tracing, ...).
	Exec ExecConfig
	// Storage groups the persistent site-store knobs, applied to every
	// query server (equivalent to Exec.Server.Store).
	Storage server.StoreOptions
	// Watch groups the continuous-query knobs (mutation schedule, watch
	// budget).
	Watch WatchConfig
	// Transport, when set, runs the deployment over this transport (e.g.
	// netsim.NewTCP for real sockets within one process) instead of a
	// fresh simulated fabric. Network() then returns nil: the fabric's
	// fault injection, traffic stats and transport-level trace observer
	// are unavailable, and Net is ignored.
	//
	// Deprecated: set Exec.Transport instead.
	Transport netsim.Transport
	// Server configures every query server (dedup mode, batching, trace).
	//
	// Deprecated: set Exec.Server instead.
	Server server.Options
	// User names the user submitting queries; defaults to "user".
	//
	// Deprecated: set Exec.User instead.
	User string
	// NoDocService skips starting the per-site fetch services; the
	// distributed engine reads documents co-located, so only runs that
	// also use the centralized baseline need them.
	//
	// Deprecated: set Exec.NoDocService instead.
	NoDocService bool
	// Participate, when non-nil, selects which sites run a query server —
	// the paper's Section 7.1 world where only some of the web has
	// adopted WEBDIS. Non-participating sites keep their document host,
	// servers bounce undeliverable clones back to the user-site, and the
	// client's hybrid fallback processes them centrally. Incompatible
	// with NoDocService (the fallback must be able to download).
	//
	// Deprecated: set Exec.Participate instead.
	Participate func(site string) bool
	// Hybrid enables the bounce/fallback path even when every site
	// participates: a clone whose forward attempts are exhausted under
	// Server.Retry is returned to the user-site and evaluated centrally —
	// per-edge degraded-mode recovery from query shipping to data
	// shipping. Implied by Participate. Incompatible with NoDocService.
	//
	// Deprecated: set Exec.Hybrid instead.
	Hybrid bool
	// ReapGrace arms the client's orphan-CHT reaper: a query that has
	// seen no report for this long while entries remain outstanding is
	// completed as Partial, its orphans retired. Zero disables reaping.
	//
	// Deprecated: set Exec.ReapGrace instead.
	ReapGrace time.Duration
	// Replicas runs every participating site as N replica query servers
	// behind a shared cluster membership table (see internal/cluster):
	// replica 0 listens on the classic "<site>/query" endpoint, replicas
	// 1..N-1 on "<site>/query@i", and every forward path picks a live
	// replica with failover. 0 or 1 is the classic unreplicated
	// deployment.
	//
	// Deprecated: set Exec.Replicas instead.
	Replicas int
	// ReplicasFor overrides Replicas per site — e.g. replicate only the
	// hot site of a skewed workload. Sites not in the map use Replicas.
	//
	// Deprecated: set Exec.ReplicasFor instead.
	ReplicasFor map[string]int
	// Cluster tunes the membership table's health machinery (probe
	// cadence, demotion thresholds, seed). Only consulted when some site
	// has more than one replica.
	//
	// Deprecated: set Exec.Cluster instead.
	Cluster cluster.Options
	// SiteServerOptions, when non-nil, rewrites one site's server options
	// just before its query servers are built — the hook mixed-version
	// deployments use to pin a subset of sites to wire v1 while the rest
	// negotiate v2. It receives the site name and the options every
	// server would get (after deployment-wide adjustments) and returns
	// the options that site actually runs with.
	//
	// Deprecated: set Exec.SiteServerOptions instead.
	SiteServerOptions func(site string, o server.Options) server.Options
	// AdaptiveBatch arms the client's collector-side batching feedback
	// loop (see client.Options.AdaptiveBatch); effective when
	// Server.ResultBatch is enabled too.
	//
	// Deprecated: set Exec.AdaptiveBatch instead.
	AdaptiveBatch bool
	// Trace arms causal tracing: every site (and the user-site) gets a
	// trace.Journal, clones carry span ids, and transport-level events
	// (dials, refusals, dropped and severed frames) are journaled via the
	// fabric's observer hook. Journeys are reconstructed with Journey.
	//
	// Deprecated: set Exec.Trace instead.
	Trace bool
	// TraceCapacity sizes each journal's event ring; <= 0 uses
	// trace.DefaultCapacity.
	//
	// Deprecated: set Exec.TraceCapacity instead.
	TraceCapacity int
}

// merged resolves one deprecated flat knob against its Exec-group
// counterpart: the flat field wins when set (it predates the group),
// the nested value applies otherwise. Zero-ness is structural, so knob
// types carrying funcs and maps resolve too.
func merged[T any](flat, nested T) T {
	if reflect.ValueOf(&flat).Elem().IsZero() {
		return nested
	}
	return flat
}

// normalized folds the nested option groups onto the deprecated flat
// fields, so the deployment builder reads one coherent shape whichever
// way the caller configured it.
func (cfg Config) normalized() Config {
	cfg.Transport = merged(cfg.Transport, cfg.Exec.Transport)
	cfg.Server = merged(cfg.Server, cfg.Exec.Server)
	cfg.User = merged(cfg.User, cfg.Exec.User)
	cfg.NoDocService = cfg.NoDocService || cfg.Exec.NoDocService
	if cfg.Participate == nil {
		cfg.Participate = cfg.Exec.Participate
	}
	cfg.Hybrid = cfg.Hybrid || cfg.Exec.Hybrid
	cfg.ReapGrace = merged(cfg.ReapGrace, cfg.Exec.ReapGrace)
	cfg.Replicas = merged(cfg.Replicas, cfg.Exec.Replicas)
	cfg.ReplicasFor = merged(cfg.ReplicasFor, cfg.Exec.ReplicasFor)
	cfg.Cluster = merged(cfg.Cluster, cfg.Exec.Cluster)
	if cfg.SiteServerOptions == nil {
		cfg.SiteServerOptions = cfg.Exec.SiteServerOptions
	}
	cfg.AdaptiveBatch = cfg.AdaptiveBatch || cfg.Exec.AdaptiveBatch
	cfg.Trace = cfg.Trace || cfg.Exec.Trace
	cfg.TraceCapacity = merged(cfg.TraceCapacity, cfg.Exec.TraceCapacity)
	cfg.Server.Store = merged(cfg.Server.Store, cfg.Storage)
	return cfg
}

// Deployment is a running WEBDIS installation over a simulated web.
type Deployment struct {
	web     *webgraph.Web
	network *netsim.Network  // nil when Config.Transport was supplied
	tr      netsim.Transport // the transport everything runs over
	hosts   map[string]*webserver.Host
	servers map[string][]*server.Server // per site, replica 0 first
	cluster *cluster.Membership         // nil when no site is replicated
	client  *client.Client
	user    string

	// Per-site engine metrics: one instance per query server, plus one
	// for the client under the user name. Metrics aggregates them.
	siteMetrics   map[string]*server.Metrics
	clientMetrics *server.Metrics

	// Trace journals, present when Config.Trace is set: one per query
	// server, one for the client, one for the fabric ("(net)").
	journals      map[string]*trace.Journal
	clientJournal *trace.Journal
	netJournal    *trace.Journal

	ixOnce sync.Once
	ix     *index.Index
	ixErr  error

	// Continuous-query machinery: the seeded web mutator (nil plan gives
	// an inert one), the budget watches run their initial traversal
	// with, and the deployment-lifetime done channel that bounds every
	// client-side pump goroutine.
	mut         *webgraph.Mutator
	watchBudget wire.Budget
	done        chan struct{}
	closeOnce   sync.Once
}

// NewDeployment builds and starts a deployment.
func NewDeployment(cfg Config) (*Deployment, error) {
	cfg = cfg.normalized()
	if cfg.Web == nil {
		return nil, fmt.Errorf("core: Config.Web is required")
	}
	if (cfg.Participate != nil || cfg.Hybrid) && cfg.NoDocService {
		return nil, fmt.Errorf("core: Participate/Hybrid requires the document service (the hybrid fallback downloads)")
	}
	user := cfg.User
	if user == "" {
		user = "user"
	}
	srvOpts := cfg.Server
	if cfg.Participate != nil || cfg.Hybrid {
		srvOpts.Hybrid = true
	}
	if cfg.NoDocService {
		// A ship-data edge downloads documents from their home site's
		// fetch service; without the service such an edge would dead-end.
		// Pin every edge to ship-query — pushdown and statistics still run.
		srvOpts.Planner.NoShipData = true
	}
	netOpts := cfg.Net
	var netJournal *trace.Journal
	if cfg.Trace {
		// Transport-level events ride in their own journal, hooked into
		// the fabric's observer (netsim cannot import trace).
		netJournal = trace.NewJournal("(net)", cfg.TraceCapacity)
		prev := netOpts.Observer
		netOpts.Observer = func(kind, from, to string) {
			netJournal.Append(trace.Event{Kind: trace.Kind(kind), Node: from, Detail: to})
			if prev != nil {
				prev(kind, from, to)
			}
		}
	}
	tr := cfg.Transport
	var network *netsim.Network
	if tr == nil {
		network = netsim.New(netOpts)
		tr = network
	}
	d := &Deployment{
		web:           cfg.Web,
		network:       network,
		tr:            tr,
		hosts:         make(map[string]*webserver.Host),
		servers:       make(map[string][]*server.Server),
		user:          user,
		siteMetrics:   make(map[string]*server.Metrics),
		clientMetrics: &server.Metrics{},
		journals:      make(map[string]*trace.Journal),
		netJournal:    netJournal,
		mut:           webgraph.NewMutator(cfg.Web, cfg.Watch.Mutations),
		watchBudget:   cfg.Watch.Budget,
		done:          make(chan struct{}),
	}

	// One membership table serves the whole deployment — every server and
	// the client consult the same health state. It exists only when some
	// participating site actually runs more than one replica; otherwise
	// everything stays on the seed's one-endpoint-per-site path.
	replicated := false
	for _, site := range cfg.Web.Hosts() {
		if cfg.Participate != nil && !cfg.Participate(site) {
			continue
		}
		if replicasOf(cfg, site) > 1 {
			replicated = true
			break
		}
	}
	if replicated {
		d.cluster = cluster.New(cfg.Cluster)
		srvOpts.Cluster = d.cluster
	}

	for _, site := range cfg.Web.Hosts() {
		h := webserver.NewHost(site, cfg.Web)
		d.hosts[site] = h
		if !cfg.NoDocService {
			if err := h.Start(tr); err != nil {
				d.Close()
				return nil, err
			}
		}
		if cfg.Participate != nil && !cfg.Participate(site) {
			continue // the site hosts documents but runs no query server
		}
		n := replicasOf(cfg, site)
		if d.cluster != nil {
			d.cluster.AddSite(site, n)
		}
		for i := 0; i < n; i++ {
			key := replicaKey(site, i)
			met := &server.Metrics{}
			d.siteMetrics[key] = met
			opts := srvOpts
			opts.Replica = i
			if cfg.SiteServerOptions != nil {
				opts = cfg.SiteServerOptions(site, opts)
			}
			if cfg.Trace {
				j := trace.NewJournal(key, cfg.TraceCapacity)
				d.journals[key] = j
				opts.Journal = j
			}
			s := server.New(site, h, tr, met, opts)
			d.servers[site] = append(d.servers[site], s)
			if err := s.Start(); err != nil {
				d.Close()
				return nil, err
			}
		}
	}
	if d.cluster != nil {
		d.cluster.StartProber(tr)
	}
	if cfg.Trace {
		d.clientJournal = trace.NewJournal(user, cfg.TraceCapacity)
	}
	d.client = client.NewWith(tr, user, user, client.Options{
		Hybrid:    cfg.Participate != nil || cfg.Hybrid,
		ReapGrace: cfg.ReapGrace,
		Metrics:   d.clientMetrics,
		Journal:   d.clientJournal,
		Cluster:   d.cluster,
		// The user-site half of the planner follows the servers': frags
		// on root clones, statistics learned and re-hinted.
		Planner: cfg.Server.Planner.Enabled,
		// The wire profile follows the servers': a deployment pinned to
		// v1 pins its user-site too (per-site mixes go through
		// SiteServerOptions and negotiate per connection).
		WireV1:        cfg.Server.WireV1,
		AdaptiveBatch: cfg.AdaptiveBatch,
		Done:          d.done,
		// Resolve index("term") StartNode sources against the deployment's
		// search index, built lazily on first use.
		IndexResolver: func(term string) []string {
			ix, err := d.Index()
			if err != nil {
				return nil
			}
			return ix.URLs(term, 0)
		},
	})
	return d, nil
}

// replicasOf resolves the configured replica count of one site (at least
// 1).
func replicasOf(cfg Config, site string) int {
	n := cfg.Replicas
	if o, ok := cfg.ReplicasFor[site]; ok {
		n = o
	}
	if n < 1 {
		n = 1
	}
	return n
}

// replicaKey names one replica's metrics and journal: the bare site for
// replica 0 (so unreplicated deployments keep their seed keys), "site@i"
// beyond.
func replicaKey(site string, i int) string {
	if i <= 0 {
		return site
	}
	return site + "@" + fmt.Sprint(i)
}

// Index returns the deployment's search index over its web, building it
// on first use — the "existing search-index" that resolves index("term")
// StartNode sources.
func (d *Deployment) Index() (*index.Index, error) {
	d.ixOnce.Do(func() {
		d.ix, d.ixErr = index.Build(d.web)
	})
	return d.ix, d.ixErr
}

// Submit dispatches a parsed web-query from the deployment's user-site.
func (d *Deployment) Submit(w *disql.WebQuery) (*client.Query, error) {
	return d.client.Submit(w)
}

// SubmitBudget dispatches a parsed web-query carrying an execution
// budget (deadline, hop/clone/row quotas, scheduling weight); the budget
// travels on every clone and is inherited, decremented, by its children.
func (d *Deployment) SubmitBudget(w *disql.WebQuery, b wire.Budget) (*client.Query, error) {
	return d.client.SubmitBudget(w, b)
}

// NewSession opens a multi-query session at the user-site: one result
// endpoint shared by many concurrent queries, the client side of the
// multi-user workload the scheduler exists for. Close it when done.
func (d *Deployment) NewSession() (*client.Session, error) {
	return d.client.NewSession()
}

// SubmitDISQL parses and dispatches a DISQL query.
func (d *Deployment) SubmitDISQL(src string) (*client.Query, error) {
	w, err := disql.Parse(src)
	if err != nil {
		return nil, err
	}
	return d.Submit(w)
}

// Run submits a DISQL query and waits for completion (timeout <= 0 waits
// forever), returning the finished query. A query that exceeds the
// timeout is cancelled before Run returns: the collector endpoint closes,
// so passive termination drains the in-flight clones instead of leaking
// the endpoint, the collector goroutine and any fallback worker. The
// partial results gathered before the deadline remain readable.
func (d *Deployment) Run(src string, timeout time.Duration) (*client.Query, error) {
	q, err := d.SubmitDISQL(src)
	if err != nil {
		return nil, err
	}
	if err := q.Wait(timeout); err != nil {
		if errors.Is(err, client.ErrTimeout) {
			q.Cancel()
		}
		return q, err
	}
	return q, nil
}

// RunContext submits a DISQL query bound to ctx and waits for it. A ctx
// that ends first actively stops the query's in-flight clones (typed
// StopMsg broadcast) and cancels collection; the partial results
// gathered remain readable on the returned query. The context-first form
// of Run.
func (d *Deployment) RunContext(ctx context.Context, src string) (*client.Query, error) {
	w, err := disql.Parse(src)
	if err != nil {
		return nil, err
	}
	q, err := d.client.SubmitContext(ctx, w)
	if err != nil {
		return nil, err
	}
	if err := q.WaitContext(ctx); err != nil {
		if errors.Is(err, client.ErrTimeout) {
			// A ctx deadline, unlike an explicit cancel, does not cancel
			// the query from inside WaitContext; match Run's contract.
			q.Cancel()
		}
		return q, err
	}
	return q, nil
}

// SubmitContext dispatches a parsed web-query bound to ctx (see
// client.Client.SubmitContext).
func (d *Deployment) SubmitContext(ctx context.Context, w *disql.WebQuery) (*client.Query, error) {
	return d.client.SubmitContext(ctx, w)
}

// Web returns the deployment's document corpus.
func (d *Deployment) Web() *webgraph.Web { return d.web }

// Done returns the deployment-lifetime channel, closed by Close. Every
// client-side pump goroutine (query streams, watches) is bounded by it.
func (d *Deployment) Done() <-chan struct{} { return d.done }

// Mutator returns the deployment's seeded web mutator (inert unless
// Config.Watch.Mutations is set), for callers that need step-level
// control; most should use Mutate.
func (d *Deployment) Mutator() *webgraph.Mutator { return d.mut }

// Mutate applies up to n steps of the configured mutation schedule and
// propagates the changes: every touched site's query servers (all
// replicas) evict exactly the mutated documents from their retained-DB
// caches and mark the matching store entries and text-index postings
// stale, and every registered watch is sent one change notification per
// touched site. It returns the applied mutations and the notification
// count — the WaitEpoch barrier increment for any watch registered
// across the whole deployment.
func (d *Deployment) Mutate(n int) ([]webgraph.Mutation, int) {
	muts := d.mut.Apply(n)
	edited := make(map[string][]string)
	rewired := make(map[string][]string)
	var sites []string
	note := func(urls []string, into map[string][]string) {
		for _, u := range urls {
			site := webgraph.Host(u)
			if _, ok := edited[site]; !ok {
				if _, ok := rewired[site]; !ok {
					sites = append(sites, site)
				}
			}
			into[site] = append(into[site], u)
		}
	}
	for _, m := range muts {
		ed, rw := m.Touched()
		note(ed, edited)
		note(rw, rewired)
	}
	sort.Strings(sites)
	notified := 0
	for _, site := range sites {
		reps := d.servers[site]
		if len(reps) == 0 {
			continue // non-participating site: nothing caches its documents
		}
		for _, s := range reps {
			s.InvalidateDocs(edited[site], rewired[site])
		}
		notified++
	}
	return muts, notified
}

// WatchOptions configure one standing query.
type WatchOptions struct {
	// Budget applies to the watch's initial run, overriding the
	// deployment-wide Config.Watch.Budget when non-zero.
	Budget wire.Budget
}

// Watch parses src and registers it as a standing query: the initial
// result set is computed with a normal distributed run, every
// participating site is asked to push change notifications, and from
// then on Deployment.Mutate drives incremental re-derivation — typed
// add/remove row deltas on the returned Watch, one epoch per
// notification. ctx bounds the initial run and, when cancellable, the
// watch itself. Close the watch when done; Close'ing the deployment
// releases it too.
func (d *Deployment) Watch(ctx context.Context, src string, opts WatchOptions) (*client.Watch, error) {
	w, err := disql.Parse(src)
	if err != nil {
		return nil, err
	}
	return d.WatchQuery(ctx, w, opts)
}

// WatchQuery is Watch for an already-parsed web-query.
func (d *Deployment) WatchQuery(ctx context.Context, w *disql.WebQuery, opts WatchOptions) (*client.Watch, error) {
	b := opts.Budget
	if b.IsZero() {
		b = d.watchBudget
	}
	sites := make([]string, 0, len(d.servers))
	for site := range d.servers {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	return d.client.WatchBudget(ctx, w, sites, b)
}

// Network returns the simulated fabric (for stats and failure
// injection), or nil when the deployment runs over Config.Transport.
func (d *Deployment) Network() *netsim.Network { return d.network }

// Transport returns the transport the deployment runs over: the
// simulated fabric, or Config.Transport when one was supplied.
func (d *Deployment) Transport() netsim.Transport { return d.tr }

// Metrics returns the deployment-wide engine metrics: a fresh aggregate
// of every site's instance plus the client's, materialized per call —
// callers that poll must call Metrics again for updated counts (all
// existing callers already do).
func (d *Deployment) Metrics() *server.Metrics {
	agg := &server.Metrics{}
	for _, m := range d.siteMetrics {
		agg.Absorb(m)
	}
	agg.Absorb(d.clientMetrics)
	return agg
}

// SiteSnapshots returns one metrics snapshot per query server, keyed by
// site, plus the client's counters under the user name — the per-site
// attribution the single aggregate cannot give (which site evaluated,
// which site's forwards failed).
func (d *Deployment) SiteSnapshots() map[string]server.Snapshot {
	out := make(map[string]server.Snapshot, len(d.siteMetrics)+1)
	for site, m := range d.siteMetrics {
		out[site] = m.Snapshot()
	}
	out[d.user] = d.clientMetrics.Snapshot()
	return out
}

// Tracing reports whether the deployment was built with Config.Trace.
func (d *Deployment) Tracing() bool { return d.netJournal != nil }

// Journal returns the trace journal of one site (the user name returns
// the client's journal, "(net)" the fabric's), or nil when tracing is
// off or the site runs no query server.
func (d *Deployment) Journal(site string) *trace.Journal {
	switch site {
	case d.user:
		return d.clientJournal
	case "(net)":
		return d.netJournal
	}
	return d.journals[site]
}

// journalKeys returns every server journal key (sites plus "site@i"
// replica keys), sorted for deterministic merge order.
func (d *Deployment) journalKeys() []string {
	keys := make([]string, 0, len(d.journals))
	for k := range d.journals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TraceEvents merges every journal — all sites (every replica), the
// client, the fabric — into one time-ordered stream.
func (d *Deployment) TraceEvents() []trace.Event {
	var out []trace.Event
	for _, key := range d.journalKeys() {
		out = append(out, d.journals[key].Events()...)
	}
	out = append(out, d.clientJournal.Events()...)
	out = append(out, d.netJournal.Events()...)
	sort.SliceStable(out, func(i, k int) bool { return out[i].At < out[k].At })
	return out
}

// Journey reconstructs the causal clone tree of one query from the
// deployment's journals. Call after the query completes (or at least
// quiesces) for a stable tree.
func (d *Deployment) Journey(q *client.Query) *trace.Journey {
	return trace.BuildJourney(q.ID().String(), d.TraceEvents())
}

// FlushTraces drains and resets every journal, returning the merged
// events. Use between measured runs so each query reads a clean slate;
// it must not race with an in-flight query.
func (d *Deployment) FlushTraces() []trace.Event {
	var out []trace.Event
	for _, key := range d.journalKeys() {
		out = append(out, d.journals[key].Flush()...)
	}
	out = append(out, d.clientJournal.Flush()...)
	out = append(out, d.netJournal.Flush()...)
	sort.SliceStable(out, func(i, k int) bool { return out[i].At < out[k].At })
	return out
}

// Client returns the deployment's user-site client.
func (d *Deployment) Client() *client.Client { return d.client }

// Server returns the primary query server of site (replica 0), or nil.
func (d *Deployment) Server(site string) *server.Server {
	if reps := d.servers[site]; len(reps) > 0 {
		return reps[0]
	}
	return nil
}

// Replicas returns every query-server replica of site (replica 0 first),
// or nil. Unreplicated sites return a one-element slice.
func (d *Deployment) Replicas(site string) []*server.Server { return d.servers[site] }

// Cluster returns the deployment's replica membership table, or nil when
// no site is replicated.
func (d *Deployment) Cluster() *cluster.Membership { return d.cluster }

// Host returns the document host of site, or nil.
func (d *Deployment) Host(site string) *webserver.Host { return d.hosts[site] }

// Close stops the health prober, every server replica and document
// host, and closes the deployment's done channel — releasing every
// stream pump and watch whose consumer abandoned it. Idempotent.
func (d *Deployment) Close() {
	d.closeOnce.Do(func() { close(d.done) })
	if d.cluster != nil {
		d.cluster.StopProber()
	}
	for _, reps := range d.servers {
		for _, s := range reps {
			s.Stop()
		}
	}
	for _, h := range d.hosts {
		h.Stop()
	}
}
