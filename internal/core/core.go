// Package core assembles complete WEBDIS deployments: it takes a
// (synthetic) web, starts one document host and one query server per site
// on a shared transport, and exposes a user-site client — everything
// needed to run the paper's distributed query processing end to end in
// one process, with full traffic accounting.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"webdis/internal/client"
	"webdis/internal/disql"
	"webdis/internal/index"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/webgraph"
	"webdis/internal/webserver"
)

// Config describes a deployment.
type Config struct {
	// Web is the document corpus; one query server and one document host
	// start per site. Required.
	Web *webgraph.Web
	// Net configures the simulated fabric (latency, bandwidth).
	Net netsim.Options
	// Server configures every query server (dedup mode, batching, trace).
	Server server.Options
	// User names the user submitting queries; defaults to "user".
	User string
	// NoDocService skips starting the per-site fetch services; the
	// distributed engine reads documents co-located, so only runs that
	// also use the centralized baseline need them.
	NoDocService bool
	// Participate, when non-nil, selects which sites run a query server —
	// the paper's Section 7.1 world where only some of the web has
	// adopted WEBDIS. Non-participating sites keep their document host,
	// servers bounce undeliverable clones back to the user-site, and the
	// client's hybrid fallback processes them centrally. Incompatible
	// with NoDocService (the fallback must be able to download).
	Participate func(site string) bool
	// Hybrid enables the bounce/fallback path even when every site
	// participates: a clone whose forward attempts are exhausted under
	// Server.Retry is returned to the user-site and evaluated centrally —
	// per-edge degraded-mode recovery from query shipping to data
	// shipping. Implied by Participate. Incompatible with NoDocService.
	Hybrid bool
	// ReapGrace arms the client's orphan-CHT reaper: a query that has
	// seen no report for this long while entries remain outstanding is
	// completed as Partial, its orphans retired. Zero disables reaping.
	ReapGrace time.Duration
}

// Deployment is a running WEBDIS installation over a simulated web.
type Deployment struct {
	web     *webgraph.Web
	network *netsim.Network
	metrics *server.Metrics
	hosts   map[string]*webserver.Host
	servers map[string]*server.Server
	client  *client.Client
	user    string

	ixOnce sync.Once
	ix     *index.Index
	ixErr  error
}

// NewDeployment builds and starts a deployment.
func NewDeployment(cfg Config) (*Deployment, error) {
	if cfg.Web == nil {
		return nil, fmt.Errorf("core: Config.Web is required")
	}
	if (cfg.Participate != nil || cfg.Hybrid) && cfg.NoDocService {
		return nil, fmt.Errorf("core: Participate/Hybrid requires the document service (the hybrid fallback downloads)")
	}
	user := cfg.User
	if user == "" {
		user = "user"
	}
	srvOpts := cfg.Server
	if cfg.Participate != nil || cfg.Hybrid {
		srvOpts.Hybrid = true
	}
	d := &Deployment{
		web:     cfg.Web,
		network: netsim.New(cfg.Net),
		metrics: &server.Metrics{},
		hosts:   make(map[string]*webserver.Host),
		servers: make(map[string]*server.Server),
		user:    user,
	}
	for _, site := range cfg.Web.Hosts() {
		h := webserver.NewHost(site, cfg.Web)
		d.hosts[site] = h
		if !cfg.NoDocService {
			if err := h.Start(d.network); err != nil {
				d.Close()
				return nil, err
			}
		}
		if cfg.Participate != nil && !cfg.Participate(site) {
			continue // the site hosts documents but runs no query server
		}
		s := server.New(site, h, d.network, d.metrics, srvOpts)
		d.servers[site] = s
		if err := s.Start(); err != nil {
			d.Close()
			return nil, err
		}
	}
	d.client = client.New(d.network, user, user)
	if cfg.Participate != nil || cfg.Hybrid {
		d.client.SetHybrid(true)
	}
	d.client.SetReapGrace(cfg.ReapGrace)
	d.client.SetMetrics(d.metrics)
	// Resolve index("term") StartNode sources against the deployment's
	// search index, built lazily on first use.
	d.client.SetIndexResolver(func(term string) []string {
		ix, err := d.Index()
		if err != nil {
			return nil
		}
		return ix.URLs(term, 0)
	})
	return d, nil
}

// Index returns the deployment's search index over its web, building it
// on first use — the "existing search-index" that resolves index("term")
// StartNode sources.
func (d *Deployment) Index() (*index.Index, error) {
	d.ixOnce.Do(func() {
		d.ix, d.ixErr = index.Build(d.web)
	})
	return d.ix, d.ixErr
}

// Submit dispatches a parsed web-query from the deployment's user-site.
func (d *Deployment) Submit(w *disql.WebQuery) (*client.Query, error) {
	return d.client.Submit(w)
}

// SubmitDISQL parses and dispatches a DISQL query.
func (d *Deployment) SubmitDISQL(src string) (*client.Query, error) {
	w, err := disql.Parse(src)
	if err != nil {
		return nil, err
	}
	return d.Submit(w)
}

// Run submits a DISQL query and waits for completion (timeout <= 0 waits
// forever), returning the finished query. A query that exceeds the
// timeout is cancelled before Run returns: the collector endpoint closes,
// so passive termination drains the in-flight clones instead of leaking
// the endpoint, the collector goroutine and any fallback worker. The
// partial results gathered before the deadline remain readable.
func (d *Deployment) Run(src string, timeout time.Duration) (*client.Query, error) {
	q, err := d.SubmitDISQL(src)
	if err != nil {
		return nil, err
	}
	if err := q.Wait(timeout); err != nil {
		if errors.Is(err, client.ErrTimeout) {
			q.Cancel()
		}
		return q, err
	}
	return q, nil
}

// Web returns the deployment's document corpus.
func (d *Deployment) Web() *webgraph.Web { return d.web }

// Network returns the simulated fabric (for stats and failure injection).
func (d *Deployment) Network() *netsim.Network { return d.network }

// Metrics returns the shared engine metrics.
func (d *Deployment) Metrics() *server.Metrics { return d.metrics }

// Client returns the deployment's user-site client.
func (d *Deployment) Client() *client.Client { return d.client }

// Server returns the query server of site, or nil.
func (d *Deployment) Server(site string) *server.Server { return d.servers[site] }

// Host returns the document host of site, or nil.
func (d *Deployment) Host(site string) *webserver.Host { return d.hosts[site] }

// Close stops every server and document host.
func (d *Deployment) Close() {
	for _, s := range d.servers {
		s.Stop()
	}
	for _, h := range d.hosts {
		h.Stop()
	}
}
