package core

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"webdis/internal/client"
	"webdis/internal/netsim"
	"webdis/internal/server"
	"webdis/internal/webgraph"
)

func plannerOn() server.Options {
	return server.Options{Planner: server.PlannerOptions{Enabled: true}}
}

// renderResults flattens a query's result tables into a canonical,
// order-insensitive string for cross-configuration comparison (row
// order within a stage is already deterministic — sorted or
// order-by-driven — so this keeps it).
func renderResults(q *client.Query) string {
	var b strings.Builder
	for _, t := range q.Results() {
		fmt.Fprintf(&b, "stage %d [%s]\n", t.Stage, strings.Join(t.Cols, ","))
		for _, r := range t.Rows {
			fmt.Fprintf(&b, "  %q\n", r)
		}
	}
	return b.String()
}

// plannerWeb is a small three-level tree where every page carries the
// marker token, so expected answers are exact.
func plannerWeb() *webgraph.Web {
	return webgraph.Tree(webgraph.TreeOpts{
		Fanout: 2, Depth: 2, PagesPerSite: 1,
		MarkerFrac: 1.0, FillerWords: 30, Seed: 3,
	})
}

const plannerRoot = "http://t0.example/p0.html"

// plannerQueries covers the PR-7 grammar end-to-end: scalar aggregate,
// group-by, order-by+limit and a two-variable self-join, all over the
// same reachable set of 7 marker pages.
func plannerQueries() []string {
	contains := fmt.Sprintf("d.text contains %q", webgraph.Marker)
	return []string{
		// scalar count over every reachable page
		fmt.Sprintf(`select count(d.url) from document d such that %q N|(G*2) d where %s`, plannerRoot, contains),
		// group by a final-stage key
		fmt.Sprintf(`select d.url, count(*) from document d such that %q N|(G*2) d where %s group by d.url`, plannerRoot, contains),
		// non-grouped order-by + limit (per-node top-K pushdown)
		fmt.Sprintf(`select d.url from document d such that %q N|(G*2) d where %s order by d.url desc limit 3`, plannerRoot, contains),
		// min/max aggregates
		fmt.Sprintf(`select min(d.url), max(d.length) from document d such that %q N|(G*2) d where %s`, plannerRoot, contains),
		// two-variable self-join on anchor labels (each page's child
		// labels are distinct, so the join pairs each anchor with itself)
		fmt.Sprintf(`select a.href, b.href from document d such that %q N|(G*1) d, anchor a, anchor b where a.label = b.label`, plannerRoot),
	}
}

// TestPlannerDifferential is the central acceptance property: for every
// query shape, the cost-based planner must be invisible in the results —
// planner-on output equals naive-shipping output, on the tree web and
// on campus.
func TestPlannerDifferential(t *testing.T) {
	webs := []struct {
		name  string
		build func() *webgraph.Web
		srcs  []string
	}{
		{"tree", plannerWeb, plannerQueries()},
		{"campus", webgraph.Campus, []string{
			webgraph.CampusDISQL,
			`select d1.url, count(r.text) from document d0 such that "http://csa.iisc.ernet.in/index.html" L d0,
			 where d0.title contains "lab"
			      document d1 such that d0 G·(L*1) d1,
			      relinfon r such that r.delimiter = "hr",
			 where (r.text contains "convener")
			 group by d1.url order by d1.url`,
		}},
	}
	for _, wb := range webs {
		for i, src := range wb.srcs {
			naive := deploy(t, wb.build(), server.Options{})
			qn := run(t, naive, src)
			planned := deploy(t, wb.build(), plannerOn())
			qp := run(t, planned, src)
			if got, want := renderResults(qp), renderResults(qn); got != want {
				t.Errorf("%s query %d: planner changed the answer\nplanner:\n%s\nnaive:\n%s", wb.name, i, got, want)
			}
		}
	}
}

// TestGroupedQueryValues pins the actual aggregate values so the
// differential test cannot pass vacuously.
func TestGroupedQueryValues(t *testing.T) {
	for _, opts := range []server.Options{{}, plannerOn()} {
		d := deploy(t, plannerWeb(), opts)

		// All 7 pages hold the marker.
		q := run(t, d, plannerQueries()[0])
		res := q.Results()
		last := res[len(res)-1]
		if len(last.Rows) != 1 || last.Rows[0][0] != "7" {
			t.Fatalf("count(d.url) = %+v, want one row [7]", last)
		}
		if last.Cols[0] != "count(d.url)" {
			t.Errorf("cols = %v", last.Cols)
		}

		// Group by url: one group per page, count(*) = 1 each.
		q = run(t, d, plannerQueries()[1])
		res = q.Results()
		last = res[len(res)-1]
		if len(last.Rows) != 7 {
			t.Fatalf("group-by rows = %+v", last.Rows)
		}
		for _, r := range last.Rows {
			if r[1] != "1" {
				t.Errorf("group %q count = %q, want 1", r[0], r[1])
			}
		}

		// Top-3 urls descending.
		q = run(t, d, plannerQueries()[2])
		res = q.Results()
		last = res[len(res)-1]
		urls := append([]string{}, d.Web().URLs()...)
		sort.Sort(sort.Reverse(sort.StringSlice(urls)))
		want := urls[:3]
		var got []string
		for _, r := range last.Rows {
			got = append(got, r[0])
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("top-3 desc = %v, want %v", got, want)
		}

		// Self-join at the root: one row per anchor, href paired with
		// itself (labels are distinct per page).
		q = run(t, d, plannerQueries()[4])
		res = q.Results()
		last = res[len(res)-1]
		for _, r := range last.Rows {
			if r[0] != r[1] {
				t.Errorf("join row %v: labels are unique, hrefs must match", r)
			}
		}
		if len(last.Rows) == 0 {
			t.Error("self-join produced no rows")
		}
	}
}

// TestPlannerParityTCP runs the full query set over real sockets and
// requires byte-identical output with the in-process pipe transport,
// planner on — gob-carried plan fragments and stats must survive the
// wire.
func TestPlannerParityTCP(t *testing.T) {
	for i, src := range plannerQueries() {
		pipe := deploy(t, plannerWeb(), plannerOn())
		qp := run(t, pipe, src)

		tcp, err := NewDeployment(Config{
			Web:       plannerWeb(),
			Server:    plannerOn(),
			Transport: netsim.NewTCP(),
		})
		if err != nil {
			t.Fatal(err)
		}
		qt, err := tcp.Run(src, waitFor)
		if err != nil {
			tcp.Close()
			t.Fatalf("query %d over TCP: %v", i, err)
		}
		if got, want := renderResults(qt), renderResults(qp); got != want {
			t.Errorf("query %d: TCP differs from pipe\ntcp:\n%s\npipe:\n%s", i, got, want)
		}
		tcp.Close()
	}
}

// TestPlannerDifferentialFaults replays the T11 fault schedule (5%
// drop, seeded, retry policy that is known to recover fully) with the
// planner on and off: both must still deliver the complete answer.
func TestPlannerDifferentialFaults(t *testing.T) {
	retry := server.RetryPolicy{
		Attempts: 5,
		Base:     time.Millisecond,
		Max:      20 * time.Millisecond,
		Timeout:  500 * time.Millisecond,
	}
	for _, seed := range []int64{1, 2} {
		web := func() *webgraph.Web {
			return webgraph.Tree(webgraph.TreeOpts{
				Fanout: 3, Depth: 3, PagesPerSite: 1,
				MarkerFrac: 0.6, FillerWords: 30, Seed: seed,
			})
		}
		src := fmt.Sprintf(
			`select d.url, count(*) from document d such that %q N|(G*3) d where d.text contains %q group by d.url order by d.url`,
			web().First(), webgraph.Marker)

		var rendered []string
		for _, opts := range []server.Options{{Retry: retry}, {Retry: retry, Planner: server.PlannerOptions{Enabled: true}}} {
			d, err := NewDeployment(Config{
				Web:       web(),
				Net:       netsim.Options{Faults: netsim.FaultPlan{Seed: seed, Drop: 0.05, Sever: 0.01}},
				Server:    opts,
				ReapGrace: 2 * time.Second,
			})
			if err != nil {
				t.Fatal(err)
			}
			q, err := d.Run(src, 30*time.Second)
			if err != nil {
				d.Close()
				t.Fatalf("seed %d: %v", seed, err)
			}
			rendered = append(rendered, renderResults(q))
			d.Close()
		}
		if rendered[0] != rendered[1] {
			t.Errorf("seed %d: planner changed the answer under faults\nnaive:\n%s\nplanner:\n%s",
				seed, rendered[0], rendered[1])
		}
	}
}

// TestShipDataEdges exercises the other half of the cost model: with
// document hosts running (NoDocService false), warmed statistics and a
// bias that makes fetching cheap, some traversal edges flip to data
// shipping — and the answer still matches naive shipping.
func TestShipDataEdges(t *testing.T) {
	build := func(opts server.Options) (*Deployment, *client.Query) {
		d, err := NewDeployment(Config{Web: plannerWeb(), Server: opts})
		if err != nil {
			t.Fatal(err)
		}
		src := plannerQueries()[0]
		var q *client.Query
		// First run seeds the per-site statistics (cold start always
		// ships the query); later runs let the cost model see document
		// sizes. The client re-sends its learned stats on each submit.
		for i := 0; i < 3; i++ {
			q = run(t, d, src)
		}
		return d, q
	}

	naive, qn := build(server.Options{})
	defer naive.Close()
	planned, qp := build(server.Options{Planner: server.PlannerOptions{
		Enabled: true,
		// Strong bias toward data shipping so small tree documents lose
		// to clone overhead deterministically.
		ShipDataBias: 0.01,
	}})
	defer planned.Close()

	if got, want := renderResults(qp), renderResults(qn); got != want {
		t.Fatalf("ship-data changed the answer\nplanner:\n%s\nnaive:\n%s", got, want)
	}
	sn := planned.Metrics().Snapshot()
	if sn.ShipDataEdges == 0 {
		t.Fatalf("no traversal edge chose data shipping: %+v", sn)
	}
	if sn.ShipDataBytes == 0 {
		t.Error("ship-data edges fetched no foreign documents")
	}
	if n := naive.Metrics().Snapshot().ShipDataEdges; n != 0 {
		t.Errorf("naive deployment shipped data on %d edges", n)
	}
}

// TestScalarCountStar pins count(*): the parser synthesizes a base
// projection for it, so every matching node still contributes one row.
func TestScalarCountStar(t *testing.T) {
	for _, opts := range []server.Options{{}, plannerOn()} {
		d := deploy(t, plannerWeb(), opts)
		src := fmt.Sprintf(`select count(*) from document d such that %q N|(G*2) d where d.text contains %q`, plannerRoot, webgraph.Marker)
		q := run(t, d, src)
		res := q.Results()
		last := res[len(res)-1]
		if len(last.Rows) != 1 || last.Rows[0][0] != "7" {
			t.Errorf("planner=%v: count(*) = %+v, want [7]", opts.Planner.Enabled, last)
		}
	}
}

// TestPushdownMetrics asserts the statistics satellite: grouped queries
// with the planner on record pushdown hits and bytes saved, and row
// scan/emit counters accumulate on every deployment.
func TestPushdownMetrics(t *testing.T) {
	d := deploy(t, plannerWeb(), plannerOn())
	run(t, d, plannerQueries()[1]) // group by d.url
	sn := d.Metrics().Snapshot()
	if sn.PushdownHits == 0 {
		t.Errorf("PushdownHits = 0 for a grouped query with planner on: %+v", sn)
	}
	if sn.RowsScanned == 0 || sn.RowsEmitted == 0 {
		t.Errorf("row counters empty: scanned=%d emitted=%d", sn.RowsScanned, sn.RowsEmitted)
	}
	if sn.RowsEmitted > sn.RowsScanned {
		t.Errorf("emitted %d > scanned %d", sn.RowsEmitted, sn.RowsScanned)
	}

	// Naive deployment: evaluation still counts rows, but no pushdown.
	dn := deploy(t, plannerWeb(), server.Options{})
	run(t, dn, plannerQueries()[1])
	snn := dn.Metrics().Snapshot()
	if snn.PushdownHits != 0 {
		t.Errorf("naive deployment recorded %d pushdown hits", snn.PushdownHits)
	}
	if snn.RowsScanned == 0 {
		t.Error("naive deployment recorded no scanned rows")
	}
}
